(* parcae_demo: command-line driver for the Parcae system.

   Subcommands:
     serve    — run a server workload under a mechanism at a load factor
     top      — serve with a live metrics dashboard on the virtual clock
     batch    — run a batch workload under a mechanism, report throughput
     compile  — compile an IR kernel with Nona and show PDG/SCC/pipeline
     run      — execute a compiled kernel under the closed-loop controller
     doctor   — sweep DoP on a known pipeline and diagnose the scaling curve
     latency  — attribute tail-latency quantiles to phases via request spans

   Examples:
     parcae_demo serve -a x264 -m wq-linear -l 0.8 --metrics-out m.prom
     parcae_demo serve -a ferret -m tbf --listen 127.0.0.1:9090 --linger 30
     parcae_demo top -a ferret -m static -i 2
     parcae_demo batch -a ferret -m tbf --profile-out ferret.folded
     parcae_demo compile -k crc32
     parcae_demo run -k kmeans --budget 12
     parcae_demo doctor --backend native --json
     parcae_demo latency -a ferret -m tbf --slo-ms 500 --json *)

open Cmdliner
open Parcae_sim
open Parcae_workloads

(* The demo drives everything through the platform layer so one binary can
   execute on either backend; [Machine] and [Power] stay sim modules. *)
module Engine = Parcae_platform.Engine
module Mech = Parcae_mechanisms
module R = Parcae_runtime
module Config = Parcae_core.Config
module Obs = Parcae_obs

(* ------------------------------------------------------------------ *)
(* Shared argument definitions.                                        *)
(* ------------------------------------------------------------------ *)

let machine_of = function
  | "xeon24" -> Machine.xeon_x7460
  | "xeon8" -> Machine.xeon_e5310
  | s -> failwith ("unknown machine " ^ s ^ " (xeon24 | xeon8)")

let machine_arg =
  let doc = "Simulated platform: xeon24 (Intel Xeon X7460) or xeon8 (Intel Xeon E5310)." in
  Arg.(value & opt string "xeon24" & info [ "machine" ] ~docv:"MACHINE" ~doc)

let backend_arg =
  let doc =
    "Execution backend: sim (the deterministic simulator with $(b,--machine)'s cost \
     model) or native (OCaml 5 domains on the host's real cores; $(b,--machine) then \
     only sizes budgets)."
  in
  Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let pool_arg =
  let doc = "Domain-pool size for the native backend (default: host cores - 1)." in
  Arg.(value & opt (some int) None & info [ "pool" ] ~docv:"N" ~doc)

let backend_of name pool : Experiments.backend =
  match name with
  | "sim" -> `Sim
  | "native" -> `Native pool
  | s -> failwith ("unknown backend " ^ s ^ " (sim | native)")

let seed_arg =
  let doc = "Random seed for the load generator." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc = "Thread budget for the region (defaults to the machine's cores)." in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)

let app_arg =
  let doc = "Application: x264, swaptions, bzip, gimp, ferret, dedup." in
  Arg.(value & opt string "x264" & info [ "a"; "app" ] ~docv:"APP" ~doc)

let mech_arg =
  let doc = "Mechanism: static, wqt-h, wq-linear, tbf, tb, fdp, seda, tpc." in
  Arg.(value & opt string "static" & info [ "m"; "mechanism" ] ~docv:"MECH" ~doc)

let load_arg =
  let doc = "Load factor (arrival rate / max sustainable throughput)." in
  Arg.(value & opt float 0.8 & info [ "l"; "load" ] ~docv:"LOAD" ~doc)

let requests_arg =
  let doc = "Number of requests to process." in
  Arg.(value & opt int 500 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let kernel_arg =
  let doc =
    "IR kernel: blackscholes, crc32, url, kmeans, histogram, montecarlo, stringsearch, \
     recurrence, adaptive."
  in
  Arg.(value & opt string "blackscholes" & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc)

let file_arg =
  let doc = "Parse the loop from a .loop source file instead of a built-in kernel." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record a runtime event trace and write it to $(docv) in Chrome trace_event JSON \
     (load it in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] with tracing directed at a fresh sink, then export the trace as
   a Chrome trace_event file and report the oracle's verdict on it. *)
let with_trace ?require_flush ?check_budget path f =
  match path with
  | None -> f ()
  | Some file ->
      let sink = Obs.Sink.create ~capacity:1_000_000 () in
      let result = Obs.Trace.with_sink sink f in
      let events = Obs.Sink.events sink in
      (* [chrome_of_sink] prepends a trace-overflow marker carrying the
         ring's drop count, so saturated recordings are self-describing. *)
      Obs.Export.write_file file (Obs.Export.chrome_of_sink sink);
      Printf.printf "\ntrace: wrote %d events to %s" (List.length events) file;
      if Obs.Sink.dropped sink > 0 then
        Printf.printf " (ring overflowed: %d oldest events dropped)" (Obs.Sink.dropped sink);
      print_newline ();
      (match Obs.Oracle.check ?require_flush ?check_budget events with
      | Ok st ->
          Printf.printf
            "oracle: OK (%d regions, %d ctrl transitions, %d pauses, %d DoP changes, %d flushes)\n"
            st.Obs.Oracle.regions st.Obs.Oracle.ctrl_transitions st.Obs.Oracle.pauses
            st.Obs.Oracle.dop_changes st.Obs.Oracle.flushes
      | Error vs ->
          Printf.printf "oracle: %d violation(s)\n%s\n" (List.length vs)
            (Obs.Oracle.violations_to_string vs));
      result

let flight_out_arg =
  let doc =
    "Record the controller flight log — one JSONL decision per controller/daemon/morta \
     epoch plus reconfiguration overhead entries — to $(docv).  Inspect it with \
     $(b,parcae_demo explain)."
  in
  Arg.(value & opt (some string) None & info [ "flight-out" ] ~docv:"FILE" ~doc)

(* Run [f] with a flight recorder installed, then write the JSONL log and
   immediately replay it: a recording whose replay diverges would be useless
   as a regression reference, so the divergence is reported at record time. *)
let with_flight path f =
  match path with
  | None -> f ()
  | Some file ->
      let rc = Obs.Flight.create () in
      let result = Obs.Flight.with_recorder rc f in
      let entries = Obs.Flight.entries rc in
      Obs.Export.write_file file (Obs.Flight.to_jsonl entries);
      let decisions =
        List.length
          (List.filter (function Obs.Flight.Decision _ -> true | _ -> false) entries)
      in
      Printf.printf "flight: wrote %d decisions, %d overhead entries to %s\n" decisions
        (List.length entries - decisions)
        file;
      let rr = Obs.Flight.replay entries in
      if rr.Obs.Flight.mismatches = [] then
        Printf.printf "replay: OK (%d decisions reproduce the recorded moves)\n"
          rr.Obs.Flight.decisions
      else begin
        Printf.printf "replay: %d mismatch(es)\n" (List.length rr.Obs.Flight.mismatches);
        List.iter
          (fun (epoch, what) -> Printf.printf "  epoch %d: %s\n" epoch what)
          rr.Obs.Flight.mismatches
      end;
      result

let metrics_out_arg =
  let doc =
    "Write a final metrics snapshot to $(docv): Prometheus text format 0.0.4, or a JSON \
     document when $(docv) ends in .json."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let profile_out_arg =
  let doc =
    "Write a folded-stack compute profile (region;scheme;task lines) to $(docv) — feed it \
     to flamegraph.pl or speedscope."
  in
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let write_metrics_file reg file =
  let json = Filename.check_suffix file ".json" in
  let data = if json then Obs.Metrics.to_json_string reg else Obs.Metrics.to_prometheus reg in
  Obs.Export.write_file file data;
  Printf.printf "metrics: wrote %s snapshot (%d families) to %s\n"
    (if json then "JSON" else "Prometheus")
    (List.length (Obs.Metrics.snapshot reg))
    file

let write_profile_file reg file =
  let folded = Obs.Profile.folded reg in
  Obs.Export.write_file file folded;
  Printf.printf "profile: wrote %d stacks to %s\n"
    (List.length (Obs.Profile.parse folded))
    file

(* Run [f] with a fresh metrics registry installed when any metrics output
   was requested (mirrors [with_trace]); dump the requested files after. *)
let with_metrics ?metrics_out ?profile_out f =
  match (metrics_out, profile_out) with
  | None, None -> f ()
  | _ ->
      let reg = Obs.Metrics.create () in
      let result = Obs.Metrics.with_registry reg f in
      Option.iter (write_metrics_file reg) metrics_out;
      Option.iter (write_profile_file reg) profile_out;
      result

let app_factory name : budget:int -> Engine.t -> App.t =
  match name with
  | "x264" -> fun ~budget eng -> Transcode.make ~budget eng
  | "swaptions" -> fun ~budget eng -> Swaptions.make ~budget eng
  | "bzip" -> fun ~budget eng -> Bzip.make ~budget eng
  | "gimp" -> fun ~budget eng -> Gimp_oilify.make ~budget eng
  | "ferret" -> fun ~budget eng -> Ferret.make ~budget eng
  | "dedup" -> fun ~budget eng -> Dedup.make ~budget eng
  | s -> failwith ("unknown app " ^ s)

let is_flat name = name = "ferret" || name = "dedup"

let kernel_of name : unit -> Parcae_ir.Loop.t =
  match name with
  | "blackscholes" -> fun () -> Parcae_ir.Kernels.blackscholes ~n:40_000 ()
  | "crc32" -> fun () -> Parcae_ir.Kernels.crc32 ~n:60_000 ()
  | "url" -> fun () -> Parcae_ir.Kernels.url ~n:50_000 ()
  | "kmeans" -> fun () -> Parcae_ir.Kernels.kmeans ~n:40_000 ()
  | "histogram" -> fun () -> Parcae_ir.Kernels.histogram ~n:60_000 ()
  | "montecarlo" -> fun () -> Parcae_ir.Kernels.montecarlo ~n:50_000 ()
  | "stringsearch" -> fun () -> Parcae_ir.Kernels.stringsearch ~n:40_000 ()
  | "recurrence" -> fun () -> Parcae_ir.Kernels.recurrence ~n:200_000 ()
  | "adaptive" -> fun () -> Parcae_ir.Kernels.adaptive ~n:200_000 ()
  | s -> failwith ("unknown kernel " ^ s)

(* Build a mechanism factory for an app. *)
let mechanism_for name (flat : bool) : Experiments.mech =
  match name with
  | "static" -> None
  | "wqt-h" ->
      Some
        (fun app ->
          if flat then
            Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:6.0 ~non:2 ~noff:2
              ~light:(App.config app "even") ~heavy:(App.config app "oversubscribed") ()
          else
            Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:8.0 ~non:3 ~noff:3
              ~light:(App.config app "inner-max") ~heavy:(App.config app "outer-only") ())
  | "wq-linear" ->
      Some
        (fun app ->
          if flat then
            Mech.Wq_linear.per_task ~loads:app.App.per_task_loads ~per_item:0.6 ~dpmin:2
              ~dpmax:24 ()
          else
            Mech.Wq_linear.nested ~load:app.App.wq_load ~dpmin:1 ~dpmax:app.App.dpmax
              ~qmax:20.0 ~make_config:(Option.get app.App.inner_dop_config) ())
  | "tbf" -> Some (fun app -> Mech.Tbf.make ?fused_choice:app.App.fused_choice ())
  | "tb" -> Some (fun _ -> Mech.Tbf.make ())
  | "fdp" -> Some (fun _ -> Mech.Fdp.make ())
  | "seda" -> Some (fun _ -> Mech.Seda.make ~threshold:6.0 ~max_per_stage:8 ())
  | "tpc" ->
      Some
        (fun app ->
          let sim_eng =
            match Engine.sim_engine app.App.eng with
            | Some e -> e
            | None -> failwith "tpc needs the simulator's power model (run with --backend sim)"
          in
          let machine = Engine.machine app.App.eng in
          let sensor = Power.create ~period_ns:2_000_000_000 sim_eng in
          Mech.Tpc.make ~sensor ~target_watts:(0.9 *. Machine.peak_power machine) ())
  | s -> failwith ("unknown mechanism " ^ s)

let print_result (r : Experiments.result) =
  Printf.printf "completed:          %d / %d requests\n" r.Experiments.completed
    r.Experiments.submitted;
  Printf.printf "mean response time: %.3f s\n" r.Experiments.mean_response_s;
  Printf.printf "p95 response time:  %.3f s\n" r.Experiments.p95_response_s;
  Printf.printf "mean execution:     %.3f s\n" r.Experiments.mean_exec_s;
  Printf.printf "throughput:         %.2f requests/s\n" r.Experiments.throughput_rps;
  Printf.printf "energy:             %.1f J\n" r.Experiments.energy_j;
  Printf.printf "virtual time:       %.2f s\n" r.Experiments.sim_end_s;
  Printf.printf "reconfigurations:   %d\n" r.Experiments.reconfigurations

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

(* Shared serve-like setup: calibrate max throughput, pick the initial
   config, and run the server experiment.  [wrap] runs around the measured
   server run only (not the calibration run), which is where the trace and
   metrics wrappers go; [on_start] lets `top` attach its dashboard thread
   to the live region. *)
let run_serve ?on_start ?(wrap = fun f -> f ()) ?(backend = `Sim) ?(quiet = false) app
    mech load m machine seed =
  let mk = app_factory app in
  let flat = is_flat app in
  let maxthr =
    if flat then Experiments.max_throughput_flat ~machine ~seed ~backend mk
    else Experiments.max_throughput ~machine ~seed ~backend mk
  in
  if not quiet then begin
    Printf.printf "%s on %s: max sustainable throughput %.2f requests/s\n" app
      (match backend with
      | `Sim -> machine.Machine.name
      | `Native _ -> "native cores")
      maxthr;
    Printf.printf "running %d requests at load %.2f under %s...\n\n" m load mech
  end;
  let config = if flat then `Named "even" else `Named "inner-max" in
  wrap (fun () ->
      Experiments.run_server ~m ~seed ~machine ~backend ~rate_per_s:(load *. maxthr)
        ?mechanism:(mechanism_for mech flat) ?on_start ~config mk)

let listen_arg =
  let doc =
    "Expose the run over HTTP at $(docv) (HOST:PORT, or just PORT on 127.0.0.1; port 0 \
     picks an ephemeral port): $(b,/metrics) serves the live Prometheus snapshot, \
     $(b,/healthz) a liveness probe, and $(b,/latency.json) the span collector's \
     tail-latency report.  Implies a live metrics registry and span collector."
  in
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT" ~doc)

let linger_arg =
  let doc =
    "With $(b,--listen), keep serving the endpoints for $(docv) wall seconds after the \
     run completes, so external scrapers can read the final state."
  in
  Arg.(value & opt float 0.0 & info [ "linger" ] ~docv:"SECONDS" ~doc)

let parse_listen spec =
  match String.rindex_opt spec ':' with
  | Some i ->
      let host = String.sub spec 0 i in
      let port =
        try int_of_string (String.sub spec (i + 1) (String.length spec - i - 1))
        with Failure _ -> failwith ("bad --listen port in " ^ spec)
      in
      ((if host = "" then "127.0.0.1" else host), port)
  | None -> (
      match int_of_string_opt spec with
      | Some port -> ("127.0.0.1", port)
      | None -> failwith ("bad --listen address " ^ spec ^ " (expected HOST:PORT)"))

(* The live exposition wrapper: force-install a metrics registry and a span
   collector (the endpoints read both), serve /metrics, /healthz, and
   /latency.json for the whole measured run plus [linger] wall seconds.
   [reg] may be shared with --metrics-out so one snapshot serves both. *)
let with_exposition ~listen ~linger ~reg ~sc f =
  match listen with
  | None -> f ()
  | Some spec ->
      let host, port = parse_listen spec in
      let routes =
        [
          ( "/metrics",
            fun () ->
              Obs.Httpd.ok ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                (Obs.Metrics.to_prometheus reg) );
          ("/healthz", fun () -> Obs.Httpd.ok "ok\n");
          ( "/latency.json",
            fun () ->
              Obs.Httpd.ok ~content_type:"application/json"
                (Obs.Json.to_string (Obs.Span.report_json sc)) );
        ]
      in
      let srv = Obs.Httpd.start ~host ~port ~routes () in
      Printf.printf "listening on http://%s:%d (/metrics /healthz /latency.json)\n%!" host
        (Obs.Httpd.port srv);
      Fun.protect
        ~finally:(fun () -> Obs.Httpd.stop srv)
        (fun () ->
          let r = f () in
          if linger > 0.0 then begin
            Printf.printf "lingering %gs for scrapes on port %d...\n%!" linger
              (Obs.Httpd.port srv);
            Unix.sleepf linger
          end;
          r)

let serve app mech load m machine_name backend pool seed trace metrics_out profile_out
    flight_out listen linger =
  let machine = machine_of machine_name in
  let backend = backend_of backend pool in
  (* With --listen, the registry and span collector are installed
     unconditionally (the endpoints need them live); --metrics-out then
     reuses the same registry rather than installing a second one. *)
  let reg = Obs.Metrics.create () in
  let sc = Obs.Span.create () in
  let wrap f =
    match listen with
    | None ->
        (* A metrics snapshot should include the latency summaries, so a
           requested --metrics-out/--profile-out also installs the span
           collector (inside the registry scope: the summary handles bind
           to the ambient registry at emission). *)
        let body () =
          match (metrics_out, profile_out) with
          | None, None -> with_trace trace (fun () -> with_flight flight_out f)
          | _ ->
              Obs.Span.with_collector sc (fun () ->
                  with_trace trace (fun () -> with_flight flight_out f))
        in
        with_metrics ?metrics_out ?profile_out body
    | Some _ ->
        Obs.Metrics.with_registry reg (fun () ->
            Obs.Span.with_collector sc (fun () ->
                let r = with_trace trace (fun () -> with_flight flight_out f) in
                Option.iter (write_metrics_file reg) metrics_out;
                Option.iter (write_profile_file reg) profile_out;
                r))
  in
  with_exposition ~listen ~linger ~reg ~sc (fun () ->
      let r = run_serve ~wrap ~backend app mech load m machine seed in
      print_result r;
      (match Obs.Span.completed sc with
      | 0 -> ()
      | n ->
          Printf.printf "request spans:      %d completed, p99 %.3f ms (%d dropped)\n" n
            (float_of_int (Obs.Span.quantile_ns sc 0.99) /. 1e6)
            (Obs.Span.drops sc)))

let serve_cmd =
  let term =
    Term.(
      const serve $ app_arg $ mech_arg $ load_arg $ requests_arg $ machine_arg $ backend_arg
      $ pool_arg $ seed_arg $ trace_arg $ metrics_out_arg $ profile_out_arg $ flight_out_arg
      $ listen_arg $ linger_arg)
  in
  Cmd.v (Cmd.info "serve" ~doc:"Run a server workload at a load factor under a mechanism.") term

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

let interval_arg =
  let doc = "Dashboard refresh interval in virtual seconds." in
  Arg.(value & opt float 1.0 & info [ "i"; "interval" ] ~docv:"SECONDS" ~doc)

let top app mech load m machine_name seed interval metrics_out profile_out =
  if interval <= 0.0 then failwith "interval must be positive";
  let machine = machine_of machine_name in
  let interval_ns = int_of_float (interval *. 1e9) in
  (* `top` always runs with a registry installed — the dashboard renders
     it — while --metrics-out / --profile-out remain optional extras. *)
  let reg = Obs.Metrics.create () in
  let r =
    run_serve
      ~wrap:(Obs.Metrics.with_registry reg)
      ~on_start:(fun (a : App.t) region ->
        (* Install a per-core timeline for the measured run so the
           dashboard's scheduler panel has data to show. *)
        Obs.Timeline.set
          (Obs.Timeline.create
             ~lanes:(max 1 (Engine.machine a.App.eng).Machine.cores)
             ~now:(Engine.time a.App.eng) ());
        ignore
          (Dashboard.spawn ~interval_ns
             ~title:(Printf.sprintf "parcae top — %s under %s" app mech)
             ~stop:(fun () -> R.Region.is_done region)
             a.App.eng))
      app mech load m machine seed
  in
  Obs.Timeline.clear ();
  print_result r;
  Option.iter (write_metrics_file reg) metrics_out;
  Option.iter (write_profile_file reg) profile_out

let top_cmd =
  let term =
    Term.(
      const top $ app_arg $ mech_arg $ load_arg $ requests_arg $ machine_arg $ seed_arg
      $ interval_arg $ metrics_out_arg $ profile_out_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run a server workload with a live metrics dashboard refreshed every virtual \
          interval.")
    term

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

let batch app mech m machine_name seed trace metrics_out profile_out flight_out =
  let machine = machine_of machine_name in
  let mk = app_factory app in
  let flat = is_flat app in
  let config = if flat then `Named "even" else `Named "outer-only" in
  Printf.printf "running %d requests in batch mode under %s...\n\n" m mech;
  let r, _, _ =
    with_metrics ?metrics_out ?profile_out (fun () ->
        with_trace trace (fun () ->
            with_flight flight_out (fun () ->
                Experiments.run_batch ~m ~seed ~machine ?mechanism:(mechanism_for mech flat)
                  ~config mk)))
  in
  print_result r

let batch_cmd =
  let term =
    Term.(
      const batch $ app_arg $ mech_arg $ requests_arg $ machine_arg $ seed_arg $ trace_arg
      $ metrics_out_arg $ profile_out_arg $ flight_out_arg)
  in
  Cmd.v (Cmd.info "batch" ~doc:"Run a batch workload under a mechanism and report throughput.") term

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let loop_source kernel file =
  match file with
  | Some path -> (
      try Parcae_ir.Parser.parse_file path
      with Parcae_ir.Parser.Parse_error m ->
        prerr_endline m;
        exit 1)
  | None -> (kernel_of kernel) ()

let compile kernel file =
  let open Parcae_ir in
  let open Parcae_pdg in
  let open Parcae_nona in
  let loop = loop_source kernel file in
  Format.printf "%a@." Loop.pp loop;
  let c = Compiler.compile loop in
  Format.printf "%a@." Pdg.pp c.Compiler.pdg;
  Format.printf "%a@." Scc.pp c.Compiler.scc;
  (match Doany.inhibitors c.Compiler.pdg with
  | [] -> Format.printf "DOANY: applicable@."
  | deps ->
      Format.printf "DOANY: inhibited by:@.";
      List.iter (fun d -> Format.printf "  %s@." (Dep.to_string d)) deps);
  match c.Compiler.pipeline with
  | Some pipe -> Format.printf "PS-DSWP:@.%a@." Mtcg.pp pipe
  | None -> Format.printf "PS-DSWP: not applicable@."

let compile_cmd =
  let term = Term.(const compile $ kernel_arg $ file_arg) in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile an IR kernel (built-in or from a .loop file) and print the analysis.")
    term

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let json_arg =
  let doc = "Emit the report as JSON instead of human-readable text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let check_file_arg =
  let doc = "A .loop source file to check (alternative to -k)." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

(* Static diagnostics only: parse, compile, verify, lint — never run.
   Exit 1 when any error diagnostic (including a parse error) is present;
   warnings and infos alone exit 0. *)
let check kernel pos_file file json =
  let open Parcae_ir in
  let open Parcae_nona in
  let module Diag = Parcae_analysis.Diag in
  let fail_with diags =
    if json then
      print_endline
        (Printf.sprintf "{\"loop\": null, \"schemes\": [], \"diagnostics\": %s}"
           (Diag.list_to_json diags))
    else List.iter (fun d -> print_endline (Diag.to_string d)) diags;
    exit 1
  in
  let loop =
    match (match pos_file with Some _ -> pos_file | None -> file) with
    | Some path -> (
        try Parser.parse_file path
        with Parser.Parse_error m -> fail_with [ Diag.error "P001" "%s" m ])
    | None -> (
        try (kernel_of kernel) ()
        with Failure m -> fail_with [ Diag.error "P002" "%s" m ])
  in
  let report =
    try Check.run loop
    with Invalid_argument m -> fail_with [ Diag.error "P003" "invalid loop: %s" m ]
  in
  if json then print_endline (Check.to_json report)
  else print_string (Check.render report);
  exit (if Diag.count_errors report.Check.diags > 0 then 1 else 0)

let check_cmd =
  let term = Term.(const check $ kernel_arg $ check_file_arg $ file_arg $ json_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze a loop: applicable schemes, verified plan legality, \
          parallelization inhibitors explained in source terms, and lints.")
    term

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run kernel file machine_name backend pool budget trace metrics_out profile_out
    flight_out =
  let open Parcae_ir in
  let open Parcae_nona in
  let machine = machine_of machine_name in
  let backend = backend_of backend pool in
  let loop = loop_source kernel file in
  let c = Compiler.compile loop in
  let h, done_at, budget =
    with_metrics ?metrics_out ?profile_out @@ fun () ->
    with_trace ~check_budget:true trace @@ fun () ->
    with_flight flight_out (fun () ->
        let eng =
          match backend with
          | `Sim -> Engine.create machine
          | `Native pool -> Engine.create_native ?pool ()
        in
        let budget =
          Option.value budget
            ~default:
              (if Engine.is_native eng then max 4 (Engine.online_cores eng)
               else machine.Machine.cores)
        in
        let h = Compiler.launch ~budget eng c in
        let ctl =
          R.Controller.create
            ~params:
              {
                R.Controller.default_params with
                R.Controller.npar_factor = 16;
                monitor_ns = 50_000_000;
              }
            h.Compiler.region
        in
        ignore (R.Controller.spawn eng ctl);
        let done_at = ref 0 in
        let _ =
          Engine.spawn eng ~name:"watch" (fun () ->
              R.Executor.await h.Compiler.region;
              done_at := Engine.now ())
        in
        ignore (Engine.run ~until:600_000_000_000 eng);
        Engine.shutdown eng;
        (h, !done_at, budget))
  in
  let done_at = ref done_at in
  let seq = (Interp.run loop).Interp.work_ns in
  Printf.printf "kernel:      %s (%d iterations)\n" loop.Loop.name h.Compiler.rs.Flex.next_iter;
  Printf.printf "schemes:     %s\n" (String.concat ", " h.Compiler.names);
  Printf.printf "chosen:      %s %s\n"
    (R.Region.scheme_name h.Compiler.region)
    (Config.to_string (R.Region.config h.Compiler.region));
  Printf.printf "sequential:  %.3f s\n" (float_of_int seq *. 1e-9);
  Printf.printf "parallel:    %.3f s (speedup %.2fx on %d threads)\n"
    (float_of_int !done_at *. 1e-9)
    (float_of_int seq /. float_of_int (max 1 !done_at))
    budget;
  Printf.printf "semantics:   %s\n"
    (if Compiler.preserves_semantics h then "preserved" else "VIOLATED")

let run_cmd =
  let term =
    Term.(
      const run $ kernel_arg $ file_arg $ machine_arg $ backend_arg $ pool_arg $ budget_arg
      $ trace_arg $ metrics_out_arg $ profile_out_arg $ flight_out_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile a kernel and execute it under the closed-loop controller.")
    term

(* ------------------------------------------------------------------ *)
(* doctor                                                              *)
(* ------------------------------------------------------------------ *)

let dops_arg =
  let doc = "Comma-separated degrees of parallelism to sweep (default 1,2,4,8)." in
  Arg.(value & opt (some (list int)) None & info [ "dops" ] ~docv:"D1,D2,..." ~doc)

let doctor_items_arg =
  let doc = "Items pushed through the diagnostic pipeline per DoP." in
  Arg.(value & opt int 240 & info [ "items" ] ~docv:"N" ~doc)

let doctor_work_arg =
  let doc = "Transform cost per item in nanoseconds (the consumer costs a quarter)." in
  Arg.(value & opt int 1_500_000 & info [ "work-ns" ] ~docv:"NS" ~doc)

(* Exit codes: 0 diagnosis produced, 3 a Runtime_events cursor leaked —
   the CI smoke job treats a leak as a hard failure. *)
let doctor machine_name backend pool dops items work_ns json =
  let machine = machine_of machine_name in
  let backend : Doctor.backend =
    match backend_of backend pool with
    | `Sim -> `Sim machine
    | `Native pool -> `Native pool
  in
  let r = Doctor.run ~items ~work_ns ?dops ~backend () in
  if json then print_endline (Obs.Json.to_string (Doctor.report_to_json r))
  else print_string (Doctor.render r);
  exit (if r.Doctor.leaked_cursors > 0 then 3 else 0)

let doctor_cmd =
  let term =
    Term.(
      const doctor $ machine_arg $ backend_arg $ pool_arg $ dops_arg $ doctor_items_arg
      $ doctor_work_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Sweep the degree of parallelism on a known three-stage pipeline with the \
          scheduler observatory attached (per-domain timelines, GC attribution, \
          critical-path analysis) and diagnose why the scaling curve looks the way it \
          does.")
    term

(* ------------------------------------------------------------------ *)
(* latency                                                             *)
(* ------------------------------------------------------------------ *)

let slo_ms_arg =
  let doc =
    "Arm the SLO tracker: requests slower than $(docv) milliseconds end-to-end consume \
     error budget, and a burn rate above 1.0 makes the command exit 2."
  in
  Arg.(value & opt (some float) None & info [ "slo-ms" ] ~docv:"MS" ~doc)

let slo_budget_arg =
  let doc = "Tolerated over-SLO fraction of requests (the error budget)." in
  Arg.(value & opt float 0.001 & info [ "slo-budget" ] ~docv:"FRACTION" ~doc)

let top_k_arg =
  let doc = "How many slowest-request exemplars to include in the report." in
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc)

(* Run a server workload with the full latency observatory attached —
   span collector, flight recorder, and (on native) the runtime-events GC
   consumer — then attribute the tail quantiles to phases.  Exit codes:
   0 report produced, 2 the SLO burn rate exceeded 1.0. *)
let latency app mech load m machine_name backend pool seed slo_ms slo_budget top_k json =
  let machine = machine_of machine_name in
  let backend = backend_of backend pool in
  let sc = Obs.Span.create () in
  (match slo_ms with
  | Some ms -> Obs.Span.configure_slo sc ~target_ns:(int_of_float (ms *. 1e6)) ~budget:slo_budget
  | None -> ());
  let rc = Obs.Flight.create () in
  (* GC carving needs the runtime-events feed; its timestamps are wall
     nanoseconds, so it only makes sense against the native clock. *)
  let consumer =
    match backend with `Native _ -> Some (Obs.Runtime_ev.start ()) | `Sim -> None
  in
  (* [wrap] scopes the observatory to the measured run only — the
     calibration run must not contribute spans. *)
  let wrap f = Obs.Span.with_collector sc (fun () -> Obs.Flight.with_recorder rc f) in
  let r = run_serve ~wrap ~backend ~quiet:json app mech load m machine seed in
  (match consumer with
  | Some c ->
      ignore (Obs.Runtime_ev.poll c);
      Obs.Runtime_ev.stop c
  | None -> ());
  let report = Latency.analyze ~flight:(Obs.Flight.entries rc) ~top:top_k sc in
  if json then print_endline (Obs.Json.to_string (Latency.to_json report))
  else begin
    print_result r;
    print_newline ();
    print_string (Latency.render report)
  end;
  exit (if report.Latency.r_slo_breached then 2 else 0)

let latency_cmd =
  let term =
    Term.(
      const latency $ app_arg $ mech_arg $ load_arg $ requests_arg $ machine_arg
      $ backend_arg $ pool_arg $ seed_arg $ slo_ms_arg $ slo_budget_arg $ top_k_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:
         "Run a server workload with request-level span tracing attached and attribute \
          the tail-latency quantiles to phases: admission queueing, inter-stage channel \
          wait, per-stage compute, reconfiguration stall, and GC overlap.  Reports the \
          slowest requests with their span timelines and the nearest \
          reconfiguration/GC event, findings codes L100-L1xx, and exits 2 on an SLO \
          breach.")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let flight_log_arg =
  let doc = "A flight log recorded with $(b,--flight-out)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG" ~doc)

let sec_of_ns ns = float_of_int ns *. 1e-9

let explain_text entries (rr : Obs.Flight.replay_result) =
  let module F = Obs.Flight in
  let decisions = List.filter_map (function F.Decision d -> Some d | _ -> None) entries in
  let overheads = List.filter_map (function F.Overhead o -> Some o | _ -> None) entries in
  Printf.printf "flight log: %d decisions, %d overhead entries\n\n" (List.length decisions)
    (List.length overheads);
  Printf.printf "%5s %10s  %-10s %-14s %-9s %-22s %s\n" "epoch" "t(s)" "actor" "region"
    "state" "reason" "move";
  List.iter
    (fun (d : F.decision) ->
      let state =
        match d.F.state with Some s -> Obs.Event.ctrl_state_to_string s | None -> "-"
      in
      let move =
        if d.F.candidate = d.F.chosen then
          Printf.sprintf "stay at %d (%d threads, budget %d)" d.F.chosen d.F.threads
            d.F.budget
        else
          Printf.sprintf "%d -> %d (%d threads, budget %d)" d.F.candidate d.F.chosen
            d.F.threads d.F.budget
      in
      Printf.printf "%5d %10.3f  %-10s %-14s %-9s %-22s %s\n" d.F.epoch (sec_of_ns d.F.t)
        d.F.actor d.F.region state d.F.reason move;
      if d.F.probes <> [] then
        Printf.printf "%56s probes: %s\n" ""
          (String.concat ", "
             (List.map (fun (dp, f) -> Printf.sprintf "%d:%.2f" dp f) d.F.probes));
      match d.F.gradient with
      | Some g -> Printf.printf "%56s gradient: %+.3f\n" "" g
      | None -> ())
    decisions;
  if overheads <> [] then begin
    (* Aggregate the per-phase costs the ledger attributed during the run. *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (o : F.overhead) ->
        let key = (o.F.o_region, o.F.o_phase) in
        let cur = try Hashtbl.find tbl key with Not_found -> 0 in
        Hashtbl.replace tbl key (cur + o.F.o_ns))
      overheads;
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
    in
    Printf.printf "\nreconfiguration overhead (summed over the run):\n";
    Printf.printf "%-14s %-8s %12s\n" "region" "phase" "ns";
    List.iter
      (fun ((region, phase), ns) -> Printf.printf "%-14s %-8s %12d\n" region phase ns)
      rows
  end;
  print_newline ();
  if rr.Obs.Flight.mismatches = [] then
    Printf.printf "replay: OK (%d decisions reproduce the recorded moves)\n"
      rr.Obs.Flight.decisions
  else begin
    Printf.printf "replay: %d mismatch(es)\n" (List.length rr.Obs.Flight.mismatches);
    List.iter
      (fun (epoch, what) -> Printf.printf "  epoch %d: %s\n" epoch what)
      rr.Obs.Flight.mismatches
  end

let explain_json entries (rr : Obs.Flight.replay_result) =
  let module F = Obs.Flight in
  let module J = Obs.Json in
  let moves =
    J.Obj
      (List.map (fun (region, ms) -> (region, J.List (List.map (fun m -> J.Int m) ms)))
         rr.F.moves)
  in
  let doc =
    J.Obj
      [
        ("entries", J.List (List.map F.entry_to_json entries));
        ( "replay",
          J.Obj
            [
              ("ok", J.Bool (rr.F.mismatches = []));
              ("decisions", J.Int rr.F.decisions);
              ( "mismatches",
                J.List
                  (List.map
                     (fun (epoch, what) -> J.List [ J.Int epoch; J.Str what ])
                     rr.F.mismatches) );
              ("moves", moves);
            ] );
      ]
  in
  print_endline (J.to_string doc)

(* Exit codes: 0 clean replay, 1 replay mismatch, 2 unreadable log. *)
let explain log json =
  let contents =
    try In_channel.with_open_text log In_channel.input_all
    with Sys_error m ->
      prerr_endline m;
      exit 2
  in
  let entries =
    try Obs.Flight.parse_jsonl contents
    with Obs.Json.Parse_error m ->
      Printf.eprintf "%s: not a flight log: %s\n" log m;
      exit 2
  in
  let rr = Obs.Flight.replay entries in
  if json then explain_json entries rr else explain_text entries rr;
  exit (if rr.Obs.Flight.mismatches = [] then 0 else 1)

let explain_cmd =
  let term = Term.(const explain $ flight_log_arg $ json_arg) in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Render a recorded flight log as a decision timeline with reasons and the \
          reconfiguration overhead ledger, then replay the decisions offline and verify \
          they reproduce the recorded moves.")
    term

(* ------------------------------------------------------------------ *)
(* sanitize                                                            *)
(* ------------------------------------------------------------------ *)

(* Small kernel instances for sanitizing: the sanitizer shadows every
   load/store, and a few hundred iterations already exercise every
   collision pattern the kernels contain (histogram's bins wrap at 64,
   so 256 iterations give four hits per bin). *)
let sanitize_kernel_of n name : unit -> Parcae_ir.Loop.t =
  let open Parcae_ir in
  match name with
  | "blackscholes" -> fun () -> Kernels.blackscholes ~n ()
  | "crc32" -> fun () -> Kernels.crc32 ~n ()
  | "url" -> fun () -> Kernels.url ~n ()
  | "kmeans" -> fun () -> Kernels.kmeans ~n ()
  | "histogram" -> fun () -> Kernels.histogram ~n ()
  | "montecarlo" -> fun () -> Kernels.montecarlo ~n ()
  | "stringsearch" -> fun () -> Kernels.stringsearch ~n ()
  | "recurrence" -> fun () -> Kernels.recurrence ~n ()
  | "adaptive" -> fun () -> Kernels.adaptive ~n ()
  | s -> failwith ("unknown kernel " ^ s)

let sanitize_suite_arg =
  let doc = "Sanitize every built-in kernel instead of a single one." in
  Arg.(value & flag & info [ "suite" ] ~doc)

let sanitize_corpus_arg =
  let doc = "Additionally sanitize $(docv) seeded random kernels (see $(b,--seed))." in
  Arg.(value & opt int 0 & info [ "corpus" ] ~docv:"N" ~doc)

let sanitize_n_arg =
  let doc = "Iteration count for built-in kernels." in
  Arg.(value & opt int 256 & info [ "iters" ] ~docv:"N" ~doc)

let sanitize_dop_arg =
  let doc = "Degree of parallelism for the parallel schemes." in
  Arg.(value & opt int 3 & info [ "dop" ] ~docv:"D" ~doc)

let inject_arg =
  let doc =
    "Fault injection: strip every loop-carried memory dependence from the PDG before \
     planning, simulating an unsound alias analysis.  The sanitizer must then report \
     S701 on any kernel whose parallel execution actually races."
  in
  Arg.(value & flag & info [ "inject-race" ] ~doc)

let sanitize_file_arg =
  let doc = "A .loop source file to sanitize (alternative to -k)." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

(* Exit-code contract matches [check]: 1 iff any error diagnostic (S701 /
   S702 / a parse failure), 0 otherwise. *)
let sanitize kernel pos_file file suite corpus n seed dop backend pool inject json =
  let open Parcae_ir in
  let open Parcae_nona in
  let module Diag = Parcae_analysis.Diag in
  let backend =
    match backend_of backend pool with
    | `Sim -> Sanitize.Sim_backend
    | `Native pool -> Sanitize.Native_backend pool
  in
  let fail_with msg =
    if json then
      print_endline
        (Printf.sprintf "{\"errors\": 1, \"reports\": [], \"diagnostics\": %s}"
           (Diag.list_to_json [ Diag.error "P001" "%s" msg ]))
    else print_endline msg;
    exit 1
  in
  let named =
    match (match pos_file with Some _ -> pos_file | None -> file) with
    | Some path -> ( try [ Parser.parse_file path ] with Parser.Parse_error m -> fail_with m)
    | None when suite ->
        List.map (fun k -> sanitize_kernel_of n k.Kernels.k_name ()) Kernels.suite
    | None -> ( try [ sanitize_kernel_of n kernel () ] with Failure m -> fail_with m)
  in
  let generated =
    List.map
      (fun g -> g.Kgen.g_loop)
      (if corpus > 0 then Kgen.corpus ~seed ~n:corpus else [])
  in
  let reports =
    List.map (fun loop -> Sanitize.run ~backend ~dop ~inject loop) (named @ generated)
  in
  let errors =
    List.fold_left (fun acc r -> acc + Diag.count_errors r.Sanitize.diags) 0 reports
  in
  if json then
    print_endline
      (Printf.sprintf "{\"errors\": %d, \"reports\": [%s]}" errors
         (String.concat ", " (List.map Sanitize.to_json reports)))
  else List.iter (fun r -> print_string (Sanitize.render r)) reports;
  exit (if errors > 0 then 1 else 0)

let sanitize_cmd =
  let term =
    Term.(
      const sanitize $ kernel_arg $ sanitize_file_arg $ file_arg $ sanitize_suite_arg
      $ sanitize_corpus_arg $ sanitize_n_arg $ seed_arg $ sanitize_dop_arg $ backend_arg
      $ pool_arg $ inject_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Execute a loop under every emitted scheme with the happens-before race \
          sanitizer attached, and cross-validate the dynamic dependences it observes \
          against the static PDG: races under verifier-passed plans (S701) and dynamic \
          collisions without a static dependence (S702) are soundness errors; static \
          may-dependences that never materialize are precision gaps (G711).")
    term

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Parcae: a system for flexible parallel execution (simulated reproduction)" in
  let info = Cmd.info "parcae_demo" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            serve_cmd;
            top_cmd;
            batch_cmd;
            compile_cmd;
            check_cmd;
            run_cmd;
            doctor_cmd;
            latency_cmd;
            sanitize_cmd;
            explain_cmd;
          ]))
