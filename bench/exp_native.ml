(* Native-backend experiments: real wall-clock numbers, not virtual time.

   [native_speedup] runs a three-stage pipeline (produce | transform^DoP |
   consume) on the native OCaml 5 backend at increasing transform DoP and
   reports wall-clock speedup over DoP 1.  Each configuration gets a fresh
   engine whose domain pool is sized to the configuration (parallelism
   across systhreads needs distinct domains), so the measurement is the
   paper's flexible-pipeline claim on real cores: more lanes on the PAR
   stage shorten the run until the host runs out of cores.

   [sim_headline] re-measures a small set of headline simulator numbers
   and writes them to BENCH_sim.json so CI can diff both backends from the
   same artifact format. *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Task_status = Parcae_core.Task_status
module Pipeline = Parcae_core.Pipeline
module Executor = Parcae_runtime.Executor
module Region = Parcae_runtime.Region
module Json = Parcae_obs.Json
module Timeline = Parcae_obs.Timeline
module Table = Parcae_util.Table
open Parcae_workloads

(* Artifact provenance lives in [Prov] (shared with Exp_allocs). *)
let provenance = Prov.provenance

(* ---- request-latency ladders ----

   Both artifacts carry the HDR tail-latency ladder (p50/p99/p999 ns) for
   ferret and x264 server runs, measured from the workload's always-on
   latency distribution (Metrics.latency_quantile_ns), so latency
   regressions are auditable per-commit next to throughput and
   allocation. *)

let latency_fields prefix (r : Experiments.result) =
  [
    (prefix ^ "_latency_p50_ns", Json.Int r.Experiments.latency_p50_ns);
    (prefix ^ "_latency_p99_ns", Json.Int r.Experiments.latency_p99_ns);
    (prefix ^ "_latency_p999_ns", Json.Int r.Experiments.latency_p999_ns);
  ]

(* Calibrate max throughput with a halved request count, then serve at 0.8
   load — the same shape as `parcae_demo serve`, sized down so the native
   runs (real wall-clock) stay cheap in CI. *)
let measure_serve_latency ?backend ~machine ~flat ~m mk =
  let thr =
    if flat then Experiments.max_throughput_flat ~m:(max 20 (m / 2)) ~machine ?backend mk
    else Experiments.max_throughput ~m:(max 20 (m / 2)) ~machine ?backend mk
  in
  Experiments.run_server ~m ~machine ?backend ~rate_per_s:(0.8 *. thr)
    ~config:(`Named (if flat then "even" else "inner-max"))
    mk

(* ---- native_speedup ---- *)

let items = 400
let work_ns = 1_500_000 (* per-item transform cost: 1.5ms of real spinning *)

(* DoP sweep: 1..4 by default (the acceptance target is DoP 4), overridable
   for CI smokes via PARCAE_NATIVE_DOPS="1,2". *)
let dops () =
  match Sys.getenv_opt "PARCAE_NATIVE_DOPS" with
  | None -> [ 1; 2; 4 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun x -> int_of_string_opt (String.trim x))

(* Pool sizing for a measured run at transform DoP [dop].  The
   work-stealing scheduler multiplexes fibers, so correctness never needs
   more domains than the host has — but *overlap* needs one domain per
   concurrently-spinning lane (dop transform lanes + produce + consume +
   the controller).  We request that, clamp to the host's recommended
   count, and report both numbers so the artifact is honest about what
   actually ran. *)
let requested_domains ~dop = dop + 3

let spawnable_domains ~dop =
  min (requested_domains ~dop) (Domain.recommended_domain_count ())

(* Fail the run loudly when the host cannot supply the requested domains:
   always warn on stderr; exit non-zero under PARCAE_BENCH_STRICT=1 (the
   CI artifact job keeps strictness off so a 1-core runner still produces
   an honest BENCH_native.json instead of nothing). *)
let check_domains ~dop ~spawned =
  let requested = requested_domains ~dop in
  if spawned < requested then begin
    Printf.eprintf
      "WARNING: DoP %d requested %d domains but the host spawned %d \
       (recommended_domain_count = %d); lanes are time-multiplexed, not \
       parallel\n%!"
      dop requested spawned
      (Domain.recommended_domain_count ());
    if Sys.getenv_opt "PARCAE_BENCH_STRICT" = Some "1" then begin
      Printf.eprintf
        "PARCAE_BENCH_STRICT=1: failing bench run on domain divergence\n%!";
      exit 1
    end
  end

(* One measured run: fresh native engine, 3-stage pipeline, transform at
   [dop] lanes.  Returns wall-clock seconds from region launch to engine
   drain (excludes domain-pool spawn and spin calibration), plus the
   domain count the engine actually spawned. *)
let measure_native ~dop =
  let eng = Engine.create_native ~pool:(spawnable_domains ~dop) () in
  let spawned =
    match Engine.native_engine eng with
    | Some ne -> Parcae_native.Engine.pool_size ne
    | None -> assert false
  in
  check_domains ~dop ~spawned;
  (* A per-domain timeline for the run, so the artifact records where each
     lane's wall time went alongside the headline wall-clock number. *)
  let tl = Timeline.create ~lanes:(max 1 spawned) ~now:(Engine.time eng) () in
  Timeline.with_timeline tl @@ fun () ->
  let q1 = Chan.create ~capacity:64 eng "q1" and q2 = Chan.create ~capacity:64 eng "q2" in
  let produced = ref 0 and consumed = ref 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= items then Task_status.Complete
        else begin
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(Pipeline.forward_to q2)
      (fun _ctx v ->
        Engine.compute work_ns;
        Pipeline.send q2 v;
        Task_status.Iterating)
  in
  let consume =
    Pipeline.stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx _ ->
        incr consumed;
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"pipeline"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset = Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ] in
  let config = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ] in
  let t0 = Unix.gettimeofday () in
  ignore (Executor.launch ~budget:(dop + 2) ~name:"native-pipe" eng [ pd ] ~on_reset config);
  ignore (Engine.run eng);
  let dt = Unix.gettimeofday () -. t0 in
  let steals =
    match Engine.native_engine eng with
    | Some ne -> Parcae_native.Engine.steal_count ne
    | None -> 0
  in
  let shares = Timeline.merged_shares (Timeline.breakdown tl ~until:(Engine.time eng)) in
  Engine.shutdown eng;
  if !consumed <> items then
    failwith (Printf.sprintf "native_speedup: consumed %d of %d items" !consumed items);
  (dt, spawned, steals, shares)

let native_speedup () =
  let dops = dops () in
  let host = Domain.recommended_domain_count () in
  Printf.printf "host: %d recommended domains; %d items x %.1fms transform\n%!" host items
    (float_of_int work_ns *. 1e-6);
  let t =
    Table.create
      ~title:"Native backend: pipeline wall-clock vs transform DoP"
      ~header:[ "DoP"; "domains"; "wall (s)"; "speedup"; "run%"; "steals" ]
  in
  let results =
    List.map
      (fun dop ->
        let dt, spawned, steals, shares = measure_native ~dop in
        Printf.printf "  DoP %d (%d domains): %.3fs, %d steals\n%!" dop spawned dt steals;
        (dop, dt, spawned, steals, shares))
      dops
  in
  let base = match results with (_, dt, _, _, _) :: _ -> dt | [] -> 1.0 in
  List.iter
    (fun (dop, dt, spawned, steals, shares) ->
      Table.add_row t
        [
          string_of_int dop;
          string_of_int spawned;
          Printf.sprintf "%.3f" dt;
          Printf.sprintf "%.2fx" (base /. dt);
          Printf.sprintf "%.1f" (100.0 *. List.assoc Timeline.Run shares);
          string_of_int steals;
        ])
    results;
  Table.print t;
  let degraded =
    List.exists (fun (dop, _, spawned, _, _) -> spawned < requested_domains ~dop) results
  in
  (* Per-item allocator tax on the same pipeline shape, so the native
     artifact carries its own allocation number next to the wall-clock. *)
  let alloc = Exp_allocs.measure_native () in
  (* Request-latency ladders on real cores (sized down: wall-clock). *)
  let lat_m =
    match Option.bind (Sys.getenv_opt "PARCAE_NATIVE_LATENCY_M") int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> 80
  in
  Printf.printf "measuring native request-latency ladders (m=%d)...\n%!" lat_m;
  let machine = Parcae_sim.Machine.xeon_x7460 in
  let ferret_r =
    measure_serve_latency ~backend:(`Native None) ~machine ~flat:true ~m:lat_m
      (fun ~budget eng -> Ferret.make ~budget eng)
  in
  let x264_r =
    measure_serve_latency ~backend:(`Native None) ~machine ~flat:false ~m:lat_m
      (fun ~budget eng -> Transcode.make ~budget eng)
  in
  Printf.printf "  ferret p99 %.3fms, x264 p99 %.3fms\n%!"
    (float_of_int ferret_r.Experiments.latency_p99_ns /. 1e6)
    (float_of_int x264_r.Experiments.latency_p99_ns /. 1e6);
  let shares_json shares =
    Json.Obj
      (List.map (fun (st, v) -> (Timeline.state_name st, Json.Float v)) shares)
  in
  let json =
    Json.Obj
      (provenance ()
      @ [
          ("backend", Json.Str "native");
          ("host_domains", Json.Int host);
          ("degraded", Json.Bool degraded);
          ("items", Json.Int items);
          ("work_ns_per_item", Json.Int work_ns);
          ("dops", Json.List (List.map (fun (d, _, _, _, _) -> Json.Int d) results));
          ( "requested_domains",
            Json.List
              (List.map (fun (d, _, _, _, _) -> Json.Int (requested_domains ~dop:d)) results)
          );
          ( "spawned_domains",
            Json.List (List.map (fun (_, _, s, _, _) -> Json.Int s) results) );
          ("wall_s", Json.List (List.map (fun (_, dt, _, _, _) -> Json.Float dt) results));
          ( "speedup",
            Json.List (List.map (fun (_, dt, _, _, _) -> Json.Float (base /. dt)) results)
          );
          ("steals", Json.List (List.map (fun (_, _, _, st, _) -> Json.Int st) results));
          ( "utilization",
            Json.List (List.map (fun (_, _, _, _, sh) -> shares_json sh) results) );
          ( "minor_words_per_item",
            Json.Float alloc.Exp_allocs.s_words_per_req );
          ("latency_m", Json.Int lat_m);
        ]
      @ latency_fields "ferret" ferret_r
      @ latency_fields "x264" x264_r)
  in
  Parcae_obs.Export.write_file "BENCH_native.json" (Json.to_string json ^ "\n");
  Printf.printf "wrote BENCH_native.json\n"

(* ---- sim headline numbers ---- *)

(* Pre-pooling reference points, measured at the commit before the
   zero-allocation serve path landed (same machine model, same m): the
   artifact carries before/after so the allocation work is auditable
   without checking out the old tree. *)
let ferret_words_per_req_before = 1831.0
let ferret_thr_before = 500.83
let x264_thr_before = 14.44

let sim_headline () =
  let machine = Parcae_sim.Machine.xeon_x7460 in
  let mk_x264 ~budget eng = Transcode.make ~budget eng in
  let mk_ferret ~budget eng = Ferret.make ~budget eng in
  let x264_thr = Experiments.max_throughput ~m:200 ~machine mk_x264 in
  let ferret_thr = Experiments.max_throughput_flat ~m:300 ~machine mk_ferret in
  let serve =
    Experiments.run_server ~m:250 ~machine ~rate_per_s:(0.8 *. x264_thr)
      ~config:(`Named "inner-max") mk_x264
  in
  let ferret_serve =
    Experiments.run_server ~m:250 ~machine ~rate_per_s:(0.8 *. ferret_thr)
      ~config:(`Named "even") mk_ferret
  in
  let ferret_alloc = Exp_allocs.measure_sim_ferret () in
  let x264_alloc = Exp_allocs.measure_sim_x264 () in
  let t =
    Table.create ~title:"Headline simulated numbers (xeon24)"
      ~header:[ "metric"; "value" ]
  in
  Table.add_row t [ "x264 max throughput (req/s)"; Printf.sprintf "%.2f" x264_thr ];
  Table.add_row t [ "ferret max throughput (req/s)"; Printf.sprintf "%.2f" ferret_thr ];
  Table.add_row t [ "x264 p95 response @ 0.8 load (s)"; Printf.sprintf "%.3f" serve.Experiments.p95_response_s ];
  Table.add_row t
    [ "x264 latency p99 @ 0.8 load (ms)";
      Printf.sprintf "%.3f" (float_of_int serve.Experiments.latency_p99_ns /. 1e6) ];
  Table.add_row t
    [ "ferret latency p99 @ 0.8 load (ms)";
      Printf.sprintf "%.3f" (float_of_int ferret_serve.Experiments.latency_p99_ns /. 1e6) ];
  Table.add_row t
    [ "ferret minor words/request"; Printf.sprintf "%.1f (was %.1f)"
        ferret_alloc.Exp_allocs.s_words_per_req ferret_words_per_req_before ];
  Table.add_row t
    [ "x264 minor words/request"; Printf.sprintf "%.1f"
        x264_alloc.Exp_allocs.s_words_per_req ];
  Table.print t;
  let json =
    Json.Obj
      (provenance ()
      @ [
        ("backend", Json.Str "sim");
        ("machine", Json.Str machine.Parcae_sim.Machine.name);
        ("x264_max_throughput_rps", Json.Float x264_thr);
        ("ferret_max_throughput_rps", Json.Float ferret_thr);
        ("x264_max_throughput_rps_before", Json.Float x264_thr_before);
        ("ferret_max_throughput_rps_before", Json.Float ferret_thr_before);
        ("ferret_minor_words_per_request", Json.Float ferret_alloc.Exp_allocs.s_words_per_req);
        ("ferret_minor_words_per_request_before", Json.Float ferret_words_per_req_before);
        ("x264_minor_words_per_request", Json.Float x264_alloc.Exp_allocs.s_words_per_req);
        ("x264_p95_response_s_load08", Json.Float serve.Experiments.p95_response_s);
        ("x264_mean_response_s_load08", Json.Float serve.Experiments.mean_response_s);
        ("completed", Json.Int serve.Experiments.completed);
      ]
      @ latency_fields "x264" serve
      @ latency_fields "ferret" ferret_serve)
  in
  Parcae_obs.Export.write_file "BENCH_sim.json" (Json.to_string json ^ "\n");
  Printf.printf "wrote BENCH_sim.json\n"
