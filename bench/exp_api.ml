(* Experiments over the Parcae API workloads: Figure 2.4 (motivation),
   Figures 8.1-8.5 (response time vs load), Table 8.5 and Figures 8.6-8.7
   (throughput and power goals), Table 6.1 (mechanism sizes).

   Every experiment prints the same rows/series the paper's figure plots;
   EXPERIMENTS.md records the paper-vs-measured comparison. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_workloads
module Mech = Parcae_mechanisms
module Table = Parcae_util.Table
module Series = Parcae_util.Series

let machine = Machine.xeon_x7460
let load_factors = [ 0.2; 0.4; 0.6; 0.8; 1.0; 1.2 ]

let mk_transcode ~budget eng = Transcode.make ~budget eng
let mk_swaptions ~budget eng = Swaptions.make ~budget eng
let mk_bzip ~budget eng = Bzip.make ~budget eng
let mk_gimp ~budget eng = Gimp_oilify.make ~budget eng
let mk_ferret ~budget eng = Ferret.make ~budget eng
let mk_dedup ~budget eng = Dedup.make ~budget eng

let fmt3 v = Printf.sprintf "%.3f" v
let fmt2 v = Printf.sprintf "%.2f" v

(* ---- Mechanisms for the two-level (nested) servers ---- *)

let wqt_h_nested (app : App.t) =
  (* Threshold and hysteresis derived from the acceptable response-time
     degradation (Section 6.3.1): flip to throughput mode only when the
     queue has clearly built up, and require several consecutive
     observations so transient bursts don't toggle the state. *)
  Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:8.0 ~non:3 ~noff:3
    ~light:(App.config app "inner-max") ~heavy:(App.config app "outer-only") ()

let wq_linear_nested (app : App.t) =
  let make_config = Option.get app.App.inner_dop_config in
  Mech.Wq_linear.nested ~load:app.App.wq_load ~dpmin:1 ~dpmax:app.App.dpmax ~qmax:20.0
    ~make_config ()

(* ---- Mechanisms for ferret (flat pipeline) ---- *)

let wqt_h_flat (app : App.t) =
  Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:6.0 ~non:2 ~noff:2
    ~light:(App.config app "even") ~heavy:(App.config app "oversubscribed") ()

let wq_linear_flat (app : App.t) =
  (* Stage queues are bounded at 8 entries, so the per-item weight must be
     small enough that a full queue maps to a large DoP. *)
  Mech.Wq_linear.per_task ~loads:app.App.per_task_loads ~per_item:0.6 ~dpmin:2 ~dpmax:24 ()

(* ------------------------------------------------------------------ *)
(* Figure 2.4: execution time / throughput / response time vs load.    *)
(* ------------------------------------------------------------------ *)

let fig2_4 () =
  let maxthr = Experiments.max_throughput ~m:200 ~machine mk_transcode in
  let ta = Table.create ~title:"Figure 2.4(a): x264 execution time (s) vs load"
      ~header:[ "load"; Transcode.static_outer_name; Transcode.static_inner_name ] in
  let tb = Table.create ~title:"Figure 2.4(b): x264 throughput (videos/s) vs load"
      ~header:[ "load"; Transcode.static_outer_name; Transcode.static_inner_name ] in
  let tc = Table.create ~title:"Figure 2.4(c): x264 response time (s) vs load, with DoP oracle"
      ~header:[ "load"; Transcode.static_outer_name; Transcode.static_inner_name; "oracle"; "oracle <l>" ] in
  List.iter
    (fun lf ->
      let rate = lf *. maxthr in
      let outer = Experiments.run_server ~m:250 ~machine ~rate_per_s:rate ~config:(`Named "outer-only") mk_transcode in
      let inner = Experiments.run_server ~m:250 ~machine ~rate_per_s:rate ~config:(`Named "inner-max") mk_transcode in
      (* Oracle: exhaustive search over feasible inner DoPs. *)
      let feasible = [ 1; 2; 3; 4; 6; 8; 12 ] in
      let best =
        List.fold_left
          (fun best dp ->
            let cfg = (Two_level.make_config ~budget:24 Transcode.kind) dp in
            let r = Experiments.run_server ~m:250 ~machine ~rate_per_s:rate ~config:(`Config cfg) mk_transcode in
            match best with
            | Some (_, b) when b.Experiments.mean_response_s <= r.Experiments.mean_response_s -> best
            | _ -> Some (dp, r))
          None feasible
      in
      let odp, obest = Option.get best in
      Table.add_row ta [ fmt2 lf; fmt3 outer.Experiments.mean_exec_s; fmt3 inner.Experiments.mean_exec_s ];
      Table.add_row tb [ fmt2 lf; fmt2 outer.Experiments.throughput_rps; fmt2 inner.Experiments.throughput_rps ];
      Table.add_row tc
        [ fmt2 lf; fmt3 outer.Experiments.mean_response_s; fmt3 inner.Experiments.mean_response_s;
          fmt3 obest.Experiments.mean_response_s; Printf.sprintf "<%d,%d>" (24 / max 1 odp) odp ])
    load_factors;
  Table.print ta;
  Table.print tb;
  Table.print tc

(* ------------------------------------------------------------------ *)
(* Figures 8.1-8.4: response time vs load for the two-level servers.   *)
(* ------------------------------------------------------------------ *)

let response_sweep_nested ~title ~static_outer ~static_inner mk =
  let maxthr = Experiments.max_throughput ~m:200 ~machine mk in
  let t = Table.create ~title
      ~header:[ "load"; static_outer; static_inner; "WQT-H"; "WQ-Linear" ] in
  List.iter
    (fun lf ->
      let rate = lf *. maxthr in
      let run ?mechanism config =
        (Experiments.run_server ~m:250 ~machine ~rate_per_s:rate ?mechanism ~config mk)
          .Experiments.mean_response_s
      in
      Table.add_row t
        [ fmt2 lf;
          fmt3 (run (`Named "outer-only"));
          fmt3 (run (`Named "inner-max"));
          fmt3 (run ~mechanism:wqt_h_nested (`Named "inner-max"));
          fmt3 (run ~mechanism:wq_linear_nested (`Named "inner-max"))
        ])
    load_factors;
  Table.print t

let fig8_1 () =
  response_sweep_nested ~title:"Figure 8.1: video transcoding response time (s) vs load"
    ~static_outer:Transcode.static_outer_name ~static_inner:Transcode.static_inner_name
    mk_transcode

let fig8_2 () =
  response_sweep_nested ~title:"Figure 8.2: option pricing response time (s) vs load"
    ~static_outer:Swaptions.static_outer_name ~static_inner:Swaptions.static_inner_name
    mk_swaptions

let fig8_3 () =
  response_sweep_nested ~title:"Figure 8.3: data compression response time (s) vs load"
    ~static_outer:Bzip.static_outer_name ~static_inner:Bzip.static_inner_name mk_bzip

let fig8_4 () =
  response_sweep_nested ~title:"Figure 8.4: image editing response time (s) vs load"
    ~static_outer:Gimp_oilify.static_outer_name ~static_inner:Gimp_oilify.static_inner_name
    mk_gimp

(* ------------------------------------------------------------------ *)
(* Figure 8.5: ferret response time vs load.                           *)
(* ------------------------------------------------------------------ *)

let fig8_5 () =
  let maxthr = Experiments.max_throughput_flat ~m:300 ~machine mk_ferret in
  let t =
    Table.create ~title:"Figure 8.5: image search response time (s) vs load"
      ~header:[ "load"; "(PIPE,<1,6,6,6,6,1>)"; "(PIPE,<1,24,24,24,24,1>)"; "WQT-H"; "WQ-Linear" ]
  in
  List.iter
    (fun lf ->
      let rate = lf *. maxthr in
      let run ?mechanism config =
        (Experiments.run_server ~m:1500 ~machine ~rate_per_s:rate ?mechanism
           ~period_ns:100_000_000 ~config mk_ferret)
          .Experiments.mean_response_s
      in
      Table.add_row t
        [ fmt2 lf;
          fmt3 (run (`Named "even"));
          fmt3 (run (`Named "oversubscribed"));
          fmt3 (run ~mechanism:wqt_h_flat (`Named "even"));
          fmt3 (run ~mechanism:wq_linear_flat (`Named "even"))
        ])
    load_factors;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 8.5: throughput improvement over the static even distribution. *)
(* ------------------------------------------------------------------ *)

let tab8_5 () =
  let t =
    Table.create
      ~title:"Table 8.5: throughput improvement over static even thread distribution"
      ~header:[ "mechanism"; "ferret"; "dedup"; "ferret (paper)"; "dedup (paper)" ]
  in
  let m = 12_000 in
  let measure mk =
    let base, _, _ = Experiments.run_batch ~m ~machine ~config:(`Named "even") mk in
    let base = base.Experiments.throughput_rps in
    let ratio ?mechanism ?(period_ns = 100_000_000) config =
      let r, _, _ = Experiments.run_batch ~m ~machine ?mechanism ~period_ns ~config mk in
      r.Experiments.throughput_rps /. base
    in
    [
      ("Pthreads-Baseline", 1.0);
      ("Pthreads-OS", ratio (`Named "oversubscribed"));
      ("Parcae-SEDA", ratio ~mechanism:(fun _ -> Mech.Seda.make ~threshold:6.0 ~max_per_stage:8 ())
         ~period_ns:50_000_000 (`Named "single"));
      ("Parcae-FDP", ratio ~mechanism:(fun _ -> Mech.Fdp.make ()) ~period_ns:50_000_000 (`Named "even"));
      ("Parcae-TB", ratio ~mechanism:(fun _ -> Mech.Tbf.make ()) (`Named "even"));
      ("Parcae-TBF",
       ratio ~mechanism:(fun app -> Mech.Tbf.make ?fused_choice:app.App.fused_choice ())
         (`Named "even"));
    ]
  in
  let ferret = measure mk_ferret and dedup = measure mk_dedup in
  let paper = [ ("Pthreads-Baseline", (1.00, 1.00)); ("Pthreads-OS", (2.12, 0.89));
                ("Parcae-SEDA", (1.64, 1.16)); ("Parcae-FDP", (2.14, 2.08));
                ("Parcae-TB", (1.96, 1.75)); ("Parcae-TBF", (2.35, 2.36)) ] in
  List.iter2
    (fun (name, f) (_, d) ->
      let pf, pd = List.assoc name paper in
      Table.add_row t
        [ name; fmt2 f ^ "x"; fmt2 d ^ "x"; fmt2 pf ^ "x"; fmt2 pd ^ "x" ])
    ferret dedup;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 8.6: ferret throughput timeline under TBF.                   *)
(* ------------------------------------------------------------------ *)

let print_series title unit series ~buckets =
  let t = Table.create ~title ~header:[ "time (s)"; unit ] in
  (match (Series.length series, Series.last series) with
  | 0, _ | _, None -> ()
  | _, Some (t1, _) ->
      let pts = Series.bucketed series ~t0:0.0 ~t1 ~buckets in
      Array.iter (fun (time, v) -> Table.add_row t [ fmt2 time; fmt2 v ]) pts);
  Table.print t

let fig8_6 () =
  let _, thr, _ =
    Experiments.run_batch ~m:30_000 ~machine ~config:(`Named "single")
      ~period_ns:500_000_000 ~sample_ns:1_000_000_000
      ~mechanism:(fun app -> Mech.Tbf.make ?fused_choice:app.App.fused_choice ~warmup:100 ())
      mk_ferret
  in
  print_series "Figure 8.6: ferret throughput (queries/s) under TBF" "queries/s" thr ~buckets:24

(* ------------------------------------------------------------------ *)
(* Figure 8.7: ferret power-throughput under TPC.                      *)
(* ------------------------------------------------------------------ *)

let fig8_7 () =
  let eng_holder = ref None in
  let target = 0.9 *. Machine.peak_power machine in
  let res, thr, power =
    Experiments.run_batch ~m:120_000 ~machine ~config:(`Named "single")
      ~period_ns:2_000_000_000 ~sample_ns:4_000_000_000 ~power_sensor_period:2_000_000_000
      ~mechanism:(fun app ->
        eng_holder := Some app.App.eng;
        let sim_eng = Option.get (Engine.sim_engine app.App.eng) in
        let sensor = Power.create ~period_ns:2_000_000_000 sim_eng in
        Mech.Tpc.make ~sensor ~target_watts:target ())
      mk_ferret
  in
  Printf.printf "Figure 8.7: target power %.0f W (90%% of peak %.0f W); achieved %.0f queries/s\n"
    target (Machine.peak_power machine) res.Experiments.throughput_rps;
  print_series "Figure 8.7a: ferret throughput (queries/s) under TPC" "queries/s" thr ~buckets:24;
  print_series "Figure 8.7b: platform power (W) under TPC" "watts" power ~buckets:24

(* ------------------------------------------------------------------ *)
(* Table 6.1 / 8.4: lines of code per mechanism.                       *)
(* ------------------------------------------------------------------ *)

let count_loc path =
  try
    let ic = open_in path in
    let n = ref 0 in
    let in_comment = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let starts p = String.length line >= String.length p && String.sub line 0 (String.length p) = p in
         if !in_comment then begin
           if String.length line >= 2 && String.sub line (String.length line - 2) 2 = "*)" then
             in_comment := false
         end
         else if line = "" then ()
         else if starts "(*" then begin
           if not (String.length line >= 2 && String.sub line (String.length line - 2) 2 = "*)") then
             in_comment := true
         end
         else incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  with Sys_error _ -> None

let tab6_1 () =
  let t =
    Table.create ~title:"Table 6.1 / 8.4: mechanism implementation size (non-comment LoC)"
      ~header:[ "mechanism"; "LoC (this repo)"; "LoC (paper)" ]
  in
  let roots = [ "lib/mechanisms"; "../lib/mechanisms"; "../../lib/mechanisms" ] in
  let find file =
    List.fold_left
      (fun acc root -> match acc with Some _ -> acc | None -> count_loc (Filename.concat root file))
      None roots
  in
  List.iter
    (fun (name, file, paper) ->
      let loc = match find file with Some n -> string_of_int n | None -> "n/a" in
      Table.add_row t [ name; loc; string_of_int paper ])
    [
      ("WQT-H", "wqt_h.ml", 28);
      ("WQ-Linear", "wq_linear.ml", 9);
      ("TBF", "tbf.ml", 89);
      ("FDP", "fdp.ml", 94);
      ("SEDA", "seda.ml", 30);
      ("TPC", "tpc.ml", 154);
    ];
  Table.print t
