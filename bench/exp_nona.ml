(* Experiments over Nona-compiled programs: Figure 8.8 (run-time control),
   Figure 8.9 (platform-wide optimization of multiple programs),
   Table 8.6 (compiler benchmark speedups), the Morta/Decima overhead
   measurements of Section 8.3.6, and the Chapter 7 ablations. *)

open Parcae_ir
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_nona
module R = Parcae_runtime
module Config = Parcae_core.Config
module Table = Parcae_util.Table
module Series = Parcae_util.Series

let machine = Machine.xeon_x7460
let fmt2 v = Printf.sprintf "%.2f" v

let controller_params =
  {
    R.Controller.default_params with
    R.Controller.nseq = 16;
    npar_factor = 16;
    poll_ns = 20_000;
    monitor_ns = 20_000_000;
    change_frac = 0.3;
  }

let state_name code =
  match int_of_float code with 0 -> "INIT" | 1 -> "CALIB" | 2 -> "OPT" | _ -> "MONITOR"

(* Print the controller's state/throughput timeline in the style of
   Figure 8.8: throughput normalized to the INIT-state measurement. *)
let print_controller_timeline title ctl ~t1 =
  let thr = R.Controller.throughputs ctl in
  let states = R.Controller.states ctl in
  let base =
    if Series.length thr > 0 then snd (Series.get thr 0) else 1.0
  in
  let base = if base <= 0.0 then 1.0 else base in
  let t = Table.create ~title ~header:[ "time (s)"; "state"; "normalized throughput" ] in
  let pts = Series.bucketed thr ~t0:0.0 ~t1 ~buckets:20 in
  Array.iter
    (fun (time, v) ->
      (* state = last controller state entered at or before this time *)
      let st = ref 0.0 in
      Series.iter states (fun ts v -> if ts <= time then st := v);
      Table.add_row t [ fmt2 time; state_name !st; fmt2 (v /. base) ])
    pts;
  Table.print t;
  (* The optimization episodes are much shorter than a bucket; list the
     raw state transitions (the solid vertical lines of Figure 8.8). *)
  let transitions = Buffer.create 128 in
  let prev = ref (-1.0) in
  Series.iter states (fun ts v ->
      if v <> !prev then begin
        Buffer.add_string transitions (Printf.sprintf " %.3fs->%s" ts (state_name v));
        prev := v
      end);
  Printf.printf "state transitions:%s
" (Buffer.contents transitions)

(* ------------------------------------------------------------------ *)
(* Figure 8.8: the controller adapting a compiled program.             *)
(* ------------------------------------------------------------------ *)

let fig8_8 () =
  (* (a) Workload change (Section 8.3.2): per-iteration work quadruples at
     t = 0.5 s; the controller must leave MONITOR and re-optimize. *)
  let c = Compiler.compile (Kernels.adaptive ~n:800_000 ~work:60_000 ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
  ignore (R.Controller.spawn eng ctl);
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        Engine.sleep 1_500_000_000;
        (List.assoc "knob" h.Compiler.rs.Flex.arrays).(0) <- 240_000)
  in
  ignore (Engine.run ~until:120_000_000_000 eng);
  Printf.printf
    "Figure 8.8(a): workload change at t=1.50s (work 60us -> 240us); final scheme %s, config %s\n"
    (R.Region.scheme_name h.Compiler.region)
    (Config.to_string (R.Region.config h.Compiler.region));
  print_controller_timeline "Figure 8.8(a): controller states and normalized throughput" ctl
    ~t1:(Engine.seconds_of_ns (Engine.time eng));

  (* (b) Scheme selection (Section 8.3.3): url admits both DOANY and
     PS-DSWP; the controller measures both and keeps the best. *)
  let c = Compiler.compile (Kernels.url ~n:30_000 ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
  ignore (R.Controller.spawn eng ctl);
  ignore (Engine.run ~until:120_000_000_000 eng);
  Printf.printf
    "Figure 8.8(b): scheme selection on url: schemes {%s}; controller chose %s with config %s\n"
    (String.concat ", " h.Compiler.names)
    (R.Region.scheme_name h.Compiler.region)
    (Config.to_string (R.Region.config h.Compiler.region));
  ignore ctl;

  (* (c) Resource change (Section 8.3.4): the platform withdraws threads at
     t = 0.5 s (budget 24 -> 8). *)
  let c = Compiler.compile (Kernels.blackscholes ~n:900_000 ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
  ignore (R.Controller.spawn eng ctl);
  let sampled = ref [] in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        Engine.sleep 500_000_000;
        R.Region.set_budget h.Compiler.region 8;
        R.Controller.notify_resource_change ctl;
        let rec sample () =
          Engine.sleep 500_000_000;
          if not (R.Region.is_done h.Compiler.region) then begin
            sampled :=
              (Engine.seconds_of_ns (Engine.now ()), Config.threads (R.Region.config h.Compiler.region))
              :: !sampled;
            sample ()
          end
        in
        sample ())
  in
  ignore (Engine.run ~until:120_000_000_000 eng);
  Printf.printf "Figure 8.8(c): resource change at t=0.50s (budget 24 -> 8):\n";
  List.iter
    (fun (t, threads) -> Printf.printf "  t=%.2fs threads in use: %d\n" t threads)
    (List.rev !sampled)

(* ------------------------------------------------------------------ *)
(* Figure 8.9: platform-wide optimization of two programs.             *)
(* ------------------------------------------------------------------ *)

let fig8_9 () =
  let eng = Engine.create machine in
  let daemon = R.Daemon.create eng ~total_threads:24 in
  let launch kernel name =
    let c = Compiler.compile kernel in
    let h = Compiler.launch ~budget:24 ~name eng c in
    let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
    R.Daemon.register daemon h.Compiler.region ctl;
    ignore (R.Controller.spawn eng ctl);
    h
  in
  let h1 = launch (Kernels.blackscholes ~n:700_000 ()) "program-1" in
  let h2 = launch (Kernels.kmeans ~n:400_000 ()) "program-2" in
  ignore (R.Daemon.spawn eng daemon);
  let tl = Table.create ~title:"Figure 8.9: two co-scheduled programs under the platform daemon"
      ~header:[ "time (s)"; "p1 budget"; "p1 threads"; "p2 budget"; "p2 threads" ] in
  let _ =
    Engine.spawn eng ~name:"sampler" (fun () ->
        let stop = ref false in
        while not !stop do
          Engine.sleep 400_000_000;
          let row r =
            if R.Region.is_done r then ("-", "-")
            else (string_of_int (R.Region.budget r), string_of_int (Config.threads (R.Region.config r)))
          in
          let b1, t1 = row h1.Compiler.region and b2, t2 = row h2.Compiler.region in
          Table.add_row tl [ fmt2 (Engine.seconds_of_ns (Engine.now ())); b1; t1; b2; t2 ];
          if R.Region.is_done h1.Compiler.region && R.Region.is_done h2.Compiler.region then
            stop := true
        done)
  in
  ignore (Engine.run ~until:200_000_000_000 eng);
  Table.print tl;
  Printf.printf "p1 done=%b semantics=%b; p2 done=%b semantics=%b\n"
    (R.Region.is_done h1.Compiler.region) (Compiler.preserves_semantics h1)
    (R.Region.is_done h2.Compiler.region) (Compiler.preserves_semantics h2)

(* ------------------------------------------------------------------ *)
(* Table 8.6: Nona benchmark speedups.                                 *)
(* ------------------------------------------------------------------ *)

let bench_kernels =
  [
    ("blackscholes", fun () -> Kernels.blackscholes ~n:20_000 ());
    ("crc32", fun () -> Kernels.crc32 ~n:40_000 ());
    ("url", fun () -> Kernels.url ~n:30_000 ());
    ("kmeans", fun () -> Kernels.kmeans ~n:25_000 ());
    ("histogram", fun () -> Kernels.histogram ~n:50_000 ());
    ("montecarlo", fun () -> Kernels.montecarlo ~n:30_000 ());
    ("stringsearch", fun () -> Kernels.stringsearch ~n:30_000 ());
    ("recurrence", fun () -> Kernels.recurrence ~n:1_500_000 ());
  ]

(* Run one compiled kernel under a fixed scheme, returning sim ns. *)
let timed_run ?dop kernel scheme =
  let c = Compiler.compile (kernel ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  if List.mem scheme h.Compiler.names then begin
    let cfg = Compiler.config_for h ?dop scheme in
    let _ =
      Engine.spawn eng ~name:"driver" (fun () ->
          R.Executor.reconfigure h.Compiler.region cfg;
          R.Executor.await h.Compiler.region)
    in
    ignore (Engine.run eng);
    assert (Compiler.preserves_semantics h);
    Some (Engine.time eng)
  end
  else None

let timed_controller_run kernel =
  let c = Compiler.compile (kernel ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
  ignore (R.Controller.spawn eng ctl);
  (* Time the region's completion, not the controller's trailing sleep. *)
  let done_at = ref 0 in
  let _ =
    Engine.spawn eng ~name:"watch" (fun () ->
        R.Executor.await h.Compiler.region;
        done_at := Engine.now ())
  in
  ignore (Engine.run ~until:600_000_000_000 eng);
  assert (Compiler.preserves_semantics h);
  (!done_at, R.Region.scheme_name h.Compiler.region, R.Region.config h.Compiler.region)

let tab8_6 () =
  let t =
    Table.create
      ~title:"Table 8.6: Nona kernel speedups over sequential execution (24-thread platform)"
      ~header:
        [ "kernel"; "DOANY x24"; "DOACROSS x24"; "PS-DSWP x22"; "Parcae (controller)";
          "Parcae scheme" ]
  in
  List.iter
    (fun (name, kernel) ->
      let seq = Option.get (timed_run kernel "SEQ") in
      let sp = function None -> "-" | Some ns -> fmt2 (float_of_int seq /. float_of_int ns) ^ "x" in
      let doany = timed_run ~dop:24 kernel "DOANY" in
      let doacross = timed_run ~dop:24 kernel "DOACROSS" in
      let psdswp = timed_run ~dop:22 kernel "PS-DSWP" in
      let ctl_ns, scheme, cfg = timed_controller_run kernel in
      Table.add_row t
        [ name; sp doany; sp doacross; sp psdswp;
          fmt2 (float_of_int seq /. float_of_int ctl_ns) ^ "x";
          Printf.sprintf "%s %s" scheme (Config.to_string cfg) ])
    bench_kernels;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Section 8.3.6: Morta and Decima overheads.                          *)
(* ------------------------------------------------------------------ *)

let tab_overheads () =
  let t =
    Table.create ~title:"Section 8.3.6: Morta/Decima recurring-operation overheads (simulated)"
      ~header:[ "operation"; "cost"; "notes" ]
  in
  (* Monitoring hooks: per rdtsc-pair cost on the evaluation platform. *)
  Table.add_row t
    [ "Decima begin/end hook"; Printf.sprintf "%d ns" machine.Machine.hook;
      "charged per hook invocation (rdtsc)" ];
  Table.add_row t
    [ "Morta status query (get_status)"; "~0 ns"; "shared-memory flag read" ];
  (* Pause latency: force reconfigurations on a pipelined kernel. *)
  let c = Compiler.compile (Kernels.crc32 ~n:60_000 ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:8 "PS-DSWP");
        let d = ref 8 in
        while not (R.Region.is_done region) do
          Engine.sleep 10_000_000;
          d := (if !d = 8 then 10 else 8);
          if not (R.Region.is_done region) then
            R.Executor.reconfigure region (Compiler.config_for h ~dop:!d "PS-DSWP")
        done)
  in
  ignore (Engine.run eng);
  let reconfigs = R.Region.reconfig_count h.Compiler.region in
  let pause_us =
    if reconfigs = 0 then 0.0
    else float_of_int (R.Region.pause_wait_ns h.Compiler.region) /. float_of_int reconfigs /. 1000.0
  in
  Table.add_row t
    [ "pause + pipeline drain (PS-DSWP crc32)";
      Printf.sprintf "%.0f us avg over %d reconfigs" pause_us reconfigs;
      "bounded channels keep drains short" ];
  let d = R.Region.decima h.Compiler.region in
  Table.add_row t
    [ "Decima iteration accounting";
      Printf.sprintf "%d instances tracked" (R.Decima.iters d 0);
      "one shared-memory increment each" ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Chapter 7 ablations.                                                *)
(* ------------------------------------------------------------------ *)

let timed_flags_run ~flags kernel scheme dop =
  let c = Compiler.compile (kernel ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~flags ~budget:24 eng c in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        R.Executor.reconfigure h.Compiler.region (Compiler.config_for h ~dop scheme);
        R.Executor.await h.Compiler.region)
  in
  ignore (Engine.run eng);
  assert (Compiler.preserves_semantics h);
  Engine.time eng

let tab7_ablation () =
  let t =
    Table.create ~title:"Chapter 7 ablations: run time with each overhead optimization on/off"
      ~header:[ "optimization"; "kernel/scheme"; "off"; "on"; "improvement" ]
  in
  let on = Flex.default_flags in
  (* 7.4: privatize-and-merge reductions vs per-iteration critical section. *)
  let off = { on with Flex.privatize_reductions = false } in
  let t_off = timed_flags_run ~flags:off Kernels.finegrain "DOANY" 23 in
  let t_on = timed_flags_run ~flags:on Kernels.finegrain "DOANY" 23 in
  Table.add_row t
    [ "reduction privatization (7.4)"; "finegrain / DOANY x23";
      Printf.sprintf "%.1f ms" (float_of_int t_off /. 1e6);
      Printf.sprintf "%.1f ms" (float_of_int t_on /. 1e6);
      fmt2 (float_of_int t_off /. float_of_int t_on) ^ "x" ];
  (* 7.1: hoisting cross-iteration state save/restore out of the loop. *)
  let off = { on with Flex.hoist_state = false } in
  let t_off = timed_flags_run ~flags:off Kernels.statecarry "SEQ" 1 in
  let t_on = timed_flags_run ~flags:on Kernels.statecarry "SEQ" 1 in
  Table.add_row t
    [ "state hoisting (7.1)"; "statecarry / SEQ";
      Printf.sprintf "%.1f ms" (float_of_int t_off /. 1e6);
      Printf.sprintf "%.1f ms" (float_of_int t_on /. 1e6);
      fmt2 (float_of_int t_off /. float_of_int t_on) ^ "x" ];
  (* 7.2/7.3: periodic DoP changes through the full barrier pause vs the
     barrier-less epoch protocol (Figure 7.6). *)
  let steady = timed_flags_run ~flags:on (fun () -> Kernels.blackscholes ~n:30_000 ()) "PS-DSWP" 10 in
  let churn ~light =
    let c = Compiler.compile (Kernels.blackscholes ~n:30_000 ()) in
    let eng = Engine.create machine in
    let h = Compiler.launch ~budget:24 eng c in
    let _ =
      Engine.spawn eng ~name:"driver" (fun () ->
          let region = h.Compiler.region in
          R.Executor.reconfigure region (Compiler.config_for h ~dop:10 "PS-DSWP");
          let d = ref 10 in
          while not (R.Region.is_done region) do
            Engine.sleep 20_000_000;
            d := (if !d = 10 then 9 else 10);
            if (not (R.Region.is_done region)) && R.Region.status region = R.Region.Running
            then begin
              let cfg = Compiler.config_for h ~dop:!d "PS-DSWP" in
              if light then R.Executor.reconfigure region cfg
              else if R.Executor.pause region then R.Executor.resume ~config:cfg region
            end
          done)
    in
    ignore (Engine.run eng);
    let n =
      R.Region.light_resizes h.Compiler.region + R.Region.reconfig_count h.Compiler.region - 1
    in
    (Engine.time eng, max 1 n)
  in
  let full_ns, n_full = churn ~light:false in
  let light_ns, n_light = churn ~light:true in
  Table.add_row t
    [ "barrier-less DoP change (7.2)";
      Printf.sprintf "blackscholes / PS-DSWP, %d + %d reconfigs" n_full n_light;
      Printf.sprintf "%.1f ms (%.0f us/reconfig, full pause)"
        (float_of_int full_ns /. 1e6)
        (float_of_int (full_ns - steady) /. float_of_int n_full /. 1e3);
      Printf.sprintf "%.1f ms (%.0f us/reconfig, epoch switch)"
        (float_of_int light_ns /. 1e6)
        (float_of_int (light_ns - steady) /. float_of_int n_light /. 1e3);
      fmt2 (float_of_int (full_ns - steady) /. float_of_int (max 1 (light_ns - steady))) ^ "x" ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Both evaluation platforms (Table 8.1): the paper demonstrates gains  *)
(* on two real machines; here the same flexible binaries run on both    *)
(* simulated platforms and the controller adapts to each.               *)
(* ------------------------------------------------------------------ *)

let tab_platforms () =
  let t =
    Table.create
      ~title:"Both platforms: controller-managed speedup over sequential (Table 8.1 machines)"
      ~header:
        [ "kernel"; "Xeon E5310 (8 thr)"; "config"; "Xeon X7460 (24 thr)"; "config" ]
  in
  let run machine kernel =
    let c = Compiler.compile (kernel ()) in
    let eng = Engine.create machine in
    let h = Compiler.launch ~budget:machine.Machine.cores eng c in
    let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
    ignore (R.Controller.spawn eng ctl);
    let done_at = ref 0 in
    let _ =
      Engine.spawn eng ~name:"watch" (fun () ->
          R.Executor.await h.Compiler.region;
          done_at := Engine.now ())
    in
    ignore (Engine.run ~until:600_000_000_000 eng);
    assert (Compiler.preserves_semantics h);
    let seq = (Interp.run (kernel ())).Interp.work_ns in
    ( float_of_int seq /. float_of_int (max 1 !done_at),
      Printf.sprintf "%s %s"
        (R.Region.scheme_name h.Compiler.region)
        (Config.to_string (R.Region.config h.Compiler.region)) )
  in
  List.iter
    (fun (name, kernel) ->
      let s8, c8 = run Machine.xeon_e5310 kernel in
      let s24, c24 = run Machine.xeon_x7460 kernel in
      Table.add_row t [ name; fmt2 s8 ^ "x"; c8; fmt2 s24 ^ "x"; c24 ])
    [
      ("blackscholes", fun () -> Kernels.blackscholes ~n:20_000 ());
      ("crc32", fun () -> Kernels.crc32 ~n:40_000 ());
      ("kmeans", fun () -> Kernels.kmeans ~n:25_000 ());
      ("stringsearch", fun () -> Kernels.stringsearch ~n:30_000 ());
    ];
  Table.print t
