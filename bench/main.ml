(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index and
   EXPERIMENTS.md for paper-vs-measured).

   Usage:
     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe fig8_1 ... # run selected experiments
     dune exec bench/main.exe --list     # list experiment names *)

let experiments =
  [
    ("fig2_4", "x264 execution time / throughput / response vs load + DoP oracle", Exp_api.fig2_4);
    ("tab6_1", "mechanism implementation sizes", Exp_api.tab6_1);
    ("fig8_1", "video transcoding response time vs load", Exp_api.fig8_1);
    ("fig8_2", "option pricing response time vs load", Exp_api.fig8_2);
    ("fig8_3", "data compression response time vs load", Exp_api.fig8_3);
    ("fig8_4", "image editing response time vs load", Exp_api.fig8_4);
    ("fig8_5", "image search response time vs load", Exp_api.fig8_5);
    ("tab8_5", "throughput improvements (ferret, dedup)", Exp_api.tab8_5);
    ("fig8_6", "ferret throughput timeline under TBF", Exp_api.fig8_6);
    ("fig8_7", "ferret power/throughput under TPC", Exp_api.fig8_7);
    ("fig8_8", "run-time controller adaptation (workload/scheme/resources)", Exp_nona.fig8_8);
    ("fig8_9", "platform-wide optimization of two programs", Exp_nona.fig8_9);
    ("tab8_6", "Nona kernel speedups", Exp_nona.tab8_6);
    ("tab_overheads", "Morta/Decima overheads (Section 8.3.6)", Exp_nona.tab_overheads);
    ("tab_platforms", "controller speedups on both Table 8.1 platforms", Exp_nona.tab_platforms);
    ("tab7_ablation", "Chapter 7 overhead-optimization ablations", Exp_nona.tab7_ablation);
    ("microbench", "host-time micro-benchmarks of runtime primitives", Microbench.run);
    ("bechamel", "alias of microbench (historical name)", Microbench.run);
    ("allocs", "minor words per request on the serve path -> BENCH_alloc.json", Exp_allocs.run);
    ("native_speedup", "native-backend pipeline wall-clock speedup vs DoP", Exp_native.native_speedup);
    ("headline", "headline simulated numbers -> BENCH_sim.json", Exp_native.sim_headline);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] ->
      List.iter (fun (name, desc, _) -> Printf.printf "%-16s %s\n" name desc) experiments
  | [] ->
      List.iter
        (fun (name, desc, f) ->
          (* "bechamel" is an alias of "microbench"; don't run it twice. *)
          if name <> "bechamel" then begin
            Printf.printf "\n### %s | %s\n\n%!" name desc;
            let t0 = Sys.time () in
            f ();
            Printf.printf "[%s finished in %.1fs cpu]\n%!" name (Sys.time () -. t0)
          end)
        experiments
  | names ->
      List.iter
        (fun n ->
          match List.find_opt (fun (name, _, _) -> name = n) experiments with
          | Some (name, desc, f) ->
              Printf.printf "\n### %s | %s\n\n%!" name desc;
              f ()
          | None -> Printf.eprintf "unknown experiment %S (try --list)\n" n)
        names
