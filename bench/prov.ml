(* Artifact provenance shared by every BENCH_*.json writer.

   The commit is read from .git directly so the bench binary needs no git
   at run time; GITHUB_SHA (set by CI) wins when present. *)

module Json = Parcae_obs.Json

let commit_hash () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
      try
        let head =
          String.trim (In_channel.with_open_text ".git/HEAD" In_channel.input_all)
        in
        match String.split_on_char ' ' head with
        | [ "ref:"; r ] ->
            String.trim
              (In_channel.with_open_text (Filename.concat ".git" (String.trim r))
                 In_channel.input_all)
        | _ -> head
      with Sys_error _ -> "unknown")

let timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let provenance () =
  [
    ("schema_version", Json.Int 2);
    ("commit", Json.Str (commit_hash ()));
    ("ocaml_version", Json.Str Sys.ocaml_version);
    ("timestamp", Json.Str (timestamp ()));
  ]
