(* Allocation microbench: minor words per request on the serve path.

   The zero-allocation work (DESIGN.md section 14) is only honest if it is
   measured: this experiment runs the ferret and x264 serve loops on the
   simulator backend and a produce|transform|consume pipeline on the
   native backend, bracketing each run with [Gc] counters, and reports
   minor words allocated per completed request (host-side allocation —
   the tax the OCaml allocator charges the runtime itself, independent of
   the virtual-time cost model).

   Output: a table, plus BENCH_alloc.json for CI.  When a baseline file
   exists (bench/alloc_baseline.json, overridable via
   PARCAE_ALLOC_BASELINE), any workload whose words/request exceeds the
   committed baseline by more than 10% fails the run — the allocation
   regression gate. *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Task_status = Parcae_core.Task_status
module Pipeline = Parcae_core.Pipeline
module Pool = Parcae_core.Pool
module Executor = Parcae_runtime.Executor
module Json = Parcae_obs.Json
module Table = Parcae_util.Table
module Rng = Parcae_util.Rng
open Parcae_workloads

type sample = {
  s_name : string;
  s_backend : string;
  s_requests : int;
  s_minor_words : float;  (* allocator delta across the serve loop *)
  s_words_per_req : float;
  s_pool_hits : int;
  s_pool_misses : int;
}

(* Aggregate minor words across every domain: [Gc.minor_words] reads only
   the calling domain, which misses worker-domain allocation on the native
   backend.  [Gc.stat] performs a heap walk, so take it outside the timed
   region on the sim too for symmetry. *)
let minor_words_all () = (Gc.stat ()).Gc.minor_words

(* ---- simulator serve loops ---- *)

(* Run [m] batch requests through [make_app] under the named configuration
   and return the allocator delta around the serve loop (generation +
   pipeline + completion: everything [Engine.run] executes). *)
let measure_sim ~name ~config ~m make_app =
  let machine = Parcae_sim.Machine.xeon_x7460 in
  let eng = Engine.create machine in
  let budget = machine.Parcae_sim.Machine.cores in
  let app : App.t = make_app ~budget eng in
  let rng = Rng.create 17 in
  ignore
    (Load_gen.spawn_batch ~rng ~m ~queue:app.App.queue ~metrics:app.App.metrics eng);
  let horizon_ns = (m * app.App.seq_request_ns) + 20_000_000_000 in
  ignore
    (Executor.launch ~budget ~name eng app.App.schemes (App.config app config)
       ~on_pause:app.App.on_pause ~on_reset:app.App.on_reset);
  let hits0 = Pool.total_hits () and misses0 = Pool.total_misses () in
  let w0 = minor_words_all () in
  ignore (Engine.run ~until:horizon_ns eng);
  let dw = minor_words_all () -. w0 in
  let completed = Metrics.completed app.App.metrics in
  Engine.shutdown eng;
  if completed < m then
    failwith (Printf.sprintf "allocs/%s: completed %d of %d requests" name completed m);
  {
    s_name = name;
    s_backend = "sim";
    s_requests = completed;
    s_minor_words = dw;
    s_words_per_req = dw /. float_of_int completed;
    s_pool_hits = Pool.total_hits () - hits0;
    s_pool_misses = Pool.total_misses () - misses0;
  }

let measure_sim_ferret ?(m = 200) () =
  measure_sim ~name:"ferret" ~config:"even" ~m (fun ~budget eng ->
      Ferret.make ~budget eng)

let measure_sim_x264 ?(m = 150) () =
  measure_sim ~name:"x264" ~config:"outer-only" ~m (fun ~budget eng ->
      Transcode.make ~budget eng)

(* ---- native pipeline ---- *)

(* A small real-time run: produce | transform | consume over [items]
   requests with a light spin per item, allocation measured across every
   domain.  Mirrors exp_native's pipeline so the words/item number tracks
   the same code path BENCH_native times. *)
let measure_native ?(items = 400) () =
  let eng = Engine.create_native ~pool:2 () in
  let q1 = Chan.create ~capacity:64 eng "aq1" and q2 = Chan.create ~capacity:64 eng "aq2" in
  let produced = ref 0 and consumed = ref 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= items then Task_status.Complete
        else begin
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.drain_stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~next:q2
      ~forward:(Pipeline.forward_to q2)
      (fun _ctx _v ->
        Engine.compute 20_000;
        Task_status.Iterating)
  in
  let consume =
    Pipeline.drain_stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx _ ->
        incr consumed;
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"alloc-pipe"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  let config = Config.make [ Config.seq_task; Config.task 2; Config.seq_task ] in
  let w0 = minor_words_all () in
  ignore (Executor.launch ~budget:4 ~name:"alloc-pipe" eng [ pd ] ~on_reset config);
  ignore (Engine.run eng);
  let dw = minor_words_all () -. w0 in
  Engine.shutdown eng;
  if !consumed <> items then
    failwith (Printf.sprintf "allocs/native: consumed %d of %d items" !consumed items);
  {
    s_name = "native-pipe";
    s_backend = "native";
    s_requests = items;
    s_minor_words = dw;
    s_words_per_req = dw /. float_of_int items;
    s_pool_hits = 0;
    s_pool_misses = 0;
  }

(* ---- baseline gate ---- *)

let baseline_path () =
  match Sys.getenv_opt "PARCAE_ALLOC_BASELINE" with
  | Some p -> p
  | None -> Filename.concat "bench" "alloc_baseline.json"

(* The committed baseline is a flat {name: words_per_request} object.  A
   sample regresses when it exceeds its baseline by more than 10%;
   workloads without a baseline entry pass (and should be added once
   their number stabilizes). *)
let check_baseline ~samples path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ ->
      Printf.printf "no baseline at %s; skipping regression gate\n" path;
      true
  | text -> (
      match Json.parse text with
      | Json.Obj fields ->
          let slack = 1.10 in
          List.for_all
            (fun s ->
              let base =
                match List.assoc_opt s.s_name fields with
                | Some (Json.Float f) -> Some f
                | Some (Json.Int i) -> Some (float_of_int i)
                | _ -> None
              in
              match base with
              | Some base ->
                  let ok = s.s_words_per_req <= base *. slack in
                  if not ok then
                    Printf.eprintf
                      "ALLOC REGRESSION: %s at %.1f words/request exceeds baseline \
                       %.1f by >10%%\n"
                      s.s_name s.s_words_per_req base;
                  ok
              | None ->
                  Printf.printf "no baseline entry for %s (%.1f words/request)\n"
                    s.s_name s.s_words_per_req;
                  true)
            samples
      | _ | (exception Json.Parse_error _) ->
          Printf.eprintf "malformed baseline %s\n" path;
          false)

let run () =
  let samples =
    [ measure_sim_ferret (); measure_sim_x264 (); measure_native () ]
  in
  let t =
    Table.create ~title:"Allocation on the serve path (host minor words)"
      ~header:[ "workload"; "backend"; "requests"; "minor words"; "words/req"; "pool hit"; "pool miss" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.s_name;
          s.s_backend;
          string_of_int s.s_requests;
          Printf.sprintf "%.0f" s.s_minor_words;
          Printf.sprintf "%.1f" s.s_words_per_req;
          string_of_int s.s_pool_hits;
          string_of_int s.s_pool_misses;
        ])
    samples;
  Table.print t;
  let json =
    Json.Obj
      (Prov.provenance ()
      @ [
          ( "samples",
            Json.List
              (List.map
                 (fun s ->
                   Json.Obj
                     [
                       ("name", Json.Str s.s_name);
                       ("backend", Json.Str s.s_backend);
                       ("requests", Json.Int s.s_requests);
                       ("minor_words", Json.Float s.s_minor_words);
                       ("minor_words_per_request", Json.Float s.s_words_per_req);
                       ("pool_hits", Json.Int s.s_pool_hits);
                       ("pool_misses", Json.Int s.s_pool_misses);
                     ])
                 samples) );
        ])
  in
  Parcae_obs.Export.write_file "BENCH_alloc.json" (Json.to_string json ^ "\n");
  Printf.printf "wrote BENCH_alloc.json\n";
  if not (check_baseline ~samples (baseline_path ())) then exit 1
