(* Bechamel micro-benchmarks of the runtime primitives (host time).

   These complement the virtual-time experiments: they measure what the
   *implementation* costs on the host — how fast the simulator processes
   events, how expensive PDG construction and SCC formation are, the cost
   of the deterministic RNG and priority queue underneath everything, and
   the native backend's primitives (domain spawn, channel ops, and how
   accurately the calibrated spin kernel converts ns to real work). *)

open Bechamel
open Toolkit
module Pqueue = Parcae_util.Pqueue
module Rng = Parcae_util.Rng
module Engine = Parcae_sim.Engine
module Machine = Parcae_sim.Machine
module Pdg = Parcae_pdg.Pdg
module Scc = Parcae_pdg.Scc
module Kernels = Parcae_ir.Kernels

let test_rng =
  let rng = Rng.create 1 in
  Test.make ~name:"rng: float draw" (Staged.stage (fun () -> ignore (Rng.float rng)))

let test_pqueue =
  let q = Pqueue.create () in
  let i = ref 0 in
  Test.make ~name:"pqueue: push+pop"
    (Staged.stage (fun () ->
         incr i;
         Pqueue.push q !i ();
         ignore (Pqueue.pop q)))

let test_engine_events =
  Test.make ~name:"engine: 1000 sim events"
    (Staged.stage (fun () ->
         let eng = Engine.create (Machine.test_machine ~cores:4 ()) in
         for w = 0 to 3 do
           ignore
             (Engine.spawn eng
                ~name:(Printf.sprintf "w%d" w)
                (fun () ->
                  for _ = 1 to 125 do
                    Engine.compute 100
                  done))
         done;
         ignore (Engine.run eng)))

let test_pdg_build =
  let loop = Kernels.crc32 ~n:10 () in
  Test.make ~name:"nona: PDG build (crc32)" (Staged.stage (fun () -> ignore (Pdg.build loop)))

let test_scc_build =
  let loop = Kernels.crc32 ~n:10 () in
  let pdg = Pdg.build loop in
  Test.make ~name:"nona: SCC build (crc32)" (Staged.stage (fun () -> ignore (Scc.build pdg)))

(* ---- Native-backend primitives ---- *)

let test_domain_spawn =
  Test.make ~name:"native: domain spawn+join"
    (Staged.stage (fun () -> Domain.join (Domain.spawn (fun () -> ()))))

(* One shared native engine for the channel benchmarks: channels only need
   it for the clock, and monitor operations are callable from any host
   thread, so the bench loop exercises the real send/recv path. *)
let native_eng = lazy (Parcae_native.Engine.create ~pool:1 ())

let native_chan = lazy (Parcae_native.Chan.create (Lazy.force native_eng) "bench")

let test_native_chan =
  Test.make ~name:"native: chan send+recv"
    (Staged.stage (fun () ->
         let module NC = Parcae_native.Chan in
         let ch = Lazy.force native_chan in
         NC.send ch 1;
         ignore (NC.recv ch)))

let batch16 = List.init 16 Fun.id

let test_native_chan_batch =
  Test.make ~name:"native: chan send_batch+recv_batch (16 items)"
    (Staged.stage (fun () ->
         let module NC = Parcae_native.Chan in
         let ch = Lazy.force native_chan in
         NC.send_batch ch batch16;
         ignore (NC.recv_batch ~max:16 ch)))

(* Owner-side deque throughput: the fast path every worker iteration
   takes.  push+pop on an otherwise-empty deque, no contention. *)
let test_deque_owner =
  let dq = Parcae_native.Deque.create () in
  Test.make ~name:"native: deque push+pop (owner path)"
    (Staged.stage (fun () ->
         Parcae_native.Deque.push dq 1;
         ignore (Parcae_native.Deque.pop dq)))

(* Thief-side path: push as owner, take from the top with the CAS the
   stealers use.  Still uncontended — the point is the instruction cost of
   the protocol, not cache-line ping-pong. *)
let test_deque_steal =
  let dq = Parcae_native.Deque.create () in
  Test.make ~name:"native: deque push+steal (thief path)"
    (Staged.stage (fun () ->
         Parcae_native.Deque.push dq 1;
         ignore (Parcae_native.Deque.steal dq)))

(* ns/op here should read close to 100_000: the calibrated spin kernel is
   asked for 100us of work, so the estimate measures calibration accuracy
   directly. *)
let test_spin_accuracy =
  Test.make ~name:"native: calibrated spin (asked 100000ns)"
    (Staged.stage (fun () ->
         ignore (Lazy.force native_eng);
         ignore (Parcae_native.Calibrate.spin_ns 100_000)))

let run () =
  let tests =
    Test.make_grouped ~name:"primitives"
      [
        test_rng;
        test_pqueue;
        test_engine_events;
        test_pdg_build;
        test_scc_build;
        test_domain_spawn;
        test_native_chan;
        test_native_chan_batch;
        test_deque_owner;
        test_deque_steal;
        test_spin_accuracy;
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Parcae_util.Table.create ~title:"Host-time micro-benchmarks (Bechamel, ns/op)"
      ~header:[ "operation"; "ns/op" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name o ->
      let est =
        match Analyze.OLS.estimates o with Some (x :: _) -> Printf.sprintf "%.1f" x | _ -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter (fun (n, e) -> Parcae_util.Table.add_row t [ n; e ])
    (List.sort compare !rows);
  Parcae_util.Table.print t
