(** Blocking FIFO channels over the platform abstraction.

    The same contract as {!Parcae_sim.Chan} (bounded/unbounded,
    MPMC, order-preserving point-to-point, [force_send]/[filter]/[drain]
    for the pause/flush protocol), dispatched over the backend of the
    engine the channel was created on.  Creation takes the engine; every
    other operation dispatches on the channel value. *)

type 'a t

val create : ?capacity:int -> ?op_cost:int -> Engine.t -> string -> 'a t
(** [create eng name] makes an unbounded channel; [capacity > 0] bounds
    it.  [op_cost] overrides the sim machine's per-operation cost and is
    ignored on native (real costs are measured, not modelled). *)

val name : 'a t -> string
val length : 'a t -> int
val is_empty : 'a t -> bool
val total_sent : 'a t -> int
val total_received : 'a t -> int
val send : 'a t -> 'a -> unit
val recv : 'a t -> 'a
val force_send : 'a t -> 'a -> unit
val try_recv : 'a t -> 'a option
val try_send : 'a t -> 'a -> bool

val send_batch : 'a t -> 'a list -> unit
(** Amortized communication: one [chan_op] charge (sim) or one monitor
    entry (native) for the whole batch. *)

val recv_batch : ?max:int -> 'a t -> 'a list
(** At least one, at most [max] items (default: all queued) for one
    charge; blocks only while the channel is empty. *)

val filter : 'a t -> ('a -> bool) -> int
val drain : 'a t -> int
