module Sl = Parcae_sim.Lock
module Nl = Parcae_native.Lock

type t = S of Sl.t | N of Nl.t

let create ?op_cost eng name =
  match Engine.native_engine eng with
  | None -> S (Sl.create ?op_cost name)
  | Some ne -> N (Nl.create ne name)

let acquire = function S l -> Sl.acquire l | N l -> Nl.acquire l
let release = function S l -> Sl.release l | N l -> Nl.release l
let with_lock t f = match t with S l -> Sl.with_lock l f | N l -> Nl.with_lock l f
let acquisitions = function S l -> Sl.acquisitions l | N l -> Nl.acquisitions l
let contended = function S l -> Sl.contended l | N l -> Nl.contended l
