module Sb = Parcae_sim.Barrier
module Nb = Parcae_native.Barrier

type t = S of Sb.t | N of Nb.t

let create eng ~parties name =
  match Engine.native_engine eng with
  | None -> S (Sb.create ~parties name)
  | Some ne -> N (Nb.create ne ~parties name)

let wait = function S b -> Sb.wait b | N b -> Nb.wait b
let total_wait_ns = function S b -> Sb.total_wait_ns b | N b -> Nb.total_wait_ns b
let parties = function S b -> Sb.parties b | N b -> Nb.parties b
