(** Reusable synchronization barrier over the platform abstraction:
    the contract of {!Parcae_sim.Barrier}, dispatched on the engine the
    barrier was created on. *)

type t

val create : Engine.t -> parties:int -> string -> t
val wait : t -> bool
val total_wait_ns : t -> int
val parties : t -> int
