(* Channel dispatch over the two backends.  The sim arm keeps the
   pre-abstraction Chan untouched (and therefore bit-identical); the
   native arm is the monitor implementation in Parcae_native.Chan. *)

module Sc = Parcae_sim.Chan
module Nc = Parcae_native.Chan

type 'a t = { cname : string; repr : 'a repr }
and 'a repr = S of 'a Sc.t | N of 'a Nc.t

let create ?capacity ?op_cost eng name =
  match Engine.sim_engine eng with
  | Some se -> { cname = name; repr = S (Sc.create ?capacity ?op_cost se name) }
  | None -> (
      match Engine.native_engine eng with
      | Some ne -> { cname = name; repr = N (Nc.create ?capacity ne name) }
      | None -> assert false)

let name ch = ch.cname
let length ch = match ch.repr with S c -> Sc.length c | N c -> Nc.length c
let is_empty ch = match ch.repr with S c -> Sc.is_empty c | N c -> Nc.is_empty c
let total_sent ch = match ch.repr with S c -> Sc.total_sent c | N c -> Nc.total_sent c

let total_received ch =
  match ch.repr with S c -> Sc.total_received c | N c -> Nc.total_received c

let send ch v = match ch.repr with S c -> Sc.send c v | N c -> Nc.send c v
let recv ch = match ch.repr with S c -> Sc.recv c | N c -> Nc.recv c
let force_send ch v = match ch.repr with S c -> Sc.force_send c v | N c -> Nc.force_send c v
let try_recv ch = match ch.repr with S c -> Sc.try_recv c | N c -> Nc.try_recv c
let try_send ch v = match ch.repr with S c -> Sc.try_send c v | N c -> Nc.try_send c v
let send_batch ch vs = match ch.repr with S c -> Sc.send_batch c vs | N c -> Nc.send_batch c vs

let recv_batch ?max ch =
  match ch.repr with S c -> Sc.recv_batch ?max c | N c -> Nc.recv_batch ?max c

let filter ch keep = match ch.repr with S c -> Sc.filter c keep | N c -> Nc.filter c keep
let drain ch = match ch.repr with S c -> Sc.drain c | N c -> Nc.drain c
