(** The execution engine behind the platform abstraction.

    Every engine operation the runtime and workloads use — spawn/join,
    compute, condition wait/signal, clock, core counts — dispatches here
    over the backend chosen at engine creation: the deterministic
    discrete-event simulator ({!Parcae_sim.Engine}) or the native OCaml 5
    multicore backend ({!Parcae_native.Engine}).

    Engines, threads and conditions are tagged values, so operations that
    receive one dispatch directly.  The ambient operations ({!compute},
    {!now}, {!yield}, ...) have no argument to dispatch on; they resolve
    the calling context through the native backend's thread registry — an
    O(1) atomic check when no native task is live — and otherwise fall
    through to the simulator's effect handlers.  Sim behaviour is
    therefore bit-identical to calling {!Parcae_sim.Engine} directly. *)

type t
type thread
type cond
type monitor

exception Thread_failure of string * exn
(** Raised out of {!run} on either backend when a thread fails: the
    thread's name and the original exception. *)

(** {1 Construction} *)

val create : Parcae_sim.Machine.t -> t
(** A simulator engine — the deterministic default, source-compatible
    with the pre-abstraction API. *)

val create_native : ?pool:int -> unit -> t
(** A native engine over [pool] OCaml 5 domains (default: the host's
    recommended domain count minus one, at least 1). *)

val backend : t -> string
(** ["sim"] or ["native"] — used as a metrics label. *)

val is_native : t -> bool

val sim_engine : t -> Parcae_sim.Engine.t option
(** The underlying simulator engine, for sim-only subsystems (the power
    sensor, virtual-platform experiments).  [None] on native. *)

val native_engine : t -> Parcae_native.Engine.t option

val machine : t -> Parcae_sim.Machine.t
(** The platform cost model.  On native, a synthetic descriptor: [cores]
    is the domain-pool size, every virtual cost is 0 (real costs land in
    wall time), powers are 0. *)

(** {1 Execution} *)

val spawn : t -> name:string -> (unit -> unit) -> thread
val run : ?until:int -> t -> int
(** Sim: process events up to [until] virtual ns.  Native: wait until
    live tasks drain or the host clock passes [until] ns. *)

val shutdown : t -> unit
(** Stop a native engine's domain pool; no-op on sim. *)

(** {1 Ambient operations (inside an engine thread)} *)

val compute : int -> unit
val now : unit -> int
val yield : unit -> unit
val sleep : int -> unit
val sleep_until : int -> unit
val spawn_thread : name:string -> (unit -> unit) -> thread
val self : unit -> thread

val self_busy_ns : unit -> int
(** Total CPU consumed by the calling thread — virtual ns on sim, measured
    spin ns on native.  What Decima's begin/end hooks read. *)

val charge : t -> int -> unit
(** Consume [n] ns of CPU with deferred accounting on the simulator: the
    cost accumulates on the calling thread and folds into a later compute
    burst ({!Parcae_sim.Engine.charge}, skew bounded by the 5µs quantum),
    so sub-microsecond costs avoid an effect suspension each.  On native
    the cost is spun immediately, same as {!compute}. *)

val compute_in : t -> int -> unit
(** {!compute}, engine-aware: on the simulator the burst goes through a
    constant payload-free effect staged in a thread field
    ({!Parcae_sim.Engine.compute_in}), so a suspension allocates no
    effect block.  Identical semantics to {!compute}; the serve path's
    stage bursts use this. *)

val busy_ns_in : t -> int
(** {!self_busy_ns} for the calling thread of [eng], without the [Self]
    effect the ambient read pays on the simulator; includes any cost
    deferred by {!charge}.  Hot monitor hooks use this. *)

val engine : unit -> t
(** The engine of the calling thread. *)

val current_lane : unit -> int option
(** The timeline lane of the calling context: the worker-domain index on
    native, the occupied core index on sim.  Safe from any context —
    answers [None] outside an engine thread or when the simulated caller
    holds no core. *)

val current_task_id : unit -> int option
(** The engine task id of the calling context (native task id or simulated
    thread id), or [None] on a plain thread.  The race sanitizer keys its
    vector clocks on this. *)

(** {1 Value-dispatched operations}

    Monitors are the cross-backend mutual-exclusion primitive.  On the
    simulator a monitor is free: cooperative scheduling already makes
    code between blocking points atomic, so {!locked} just runs the
    closure.  On native it is a real per-structure mutex from the
    work-stealing engine, and protocols that were implicitly atomic
    under the old big lock must hold the right monitor explicitly. *)

val monitor_create : t -> monitor
val locked : monitor -> (unit -> 'a) -> 'a
val monitor_held : monitor -> bool

val cond_in : monitor -> cond
(** A condition tied to [monitor]: check-then-wait protocols hold the
    monitor across the predicate check and {!wait_on} so a concurrent
    signal cannot be lost (native); on sim this is an ordinary
    cooperative condition. *)

val wait_on : cond -> unit
(** Sim: cooperative wait.  Native: atomically release the condition's
    monitor and suspend the fiber; reacquires before returning.  Acquires
    the monitor first when the caller does not already hold it.  Mesa
    semantics on both backends: re-check the predicate in a loop. *)

val signal : cond -> unit
val broadcast : cond -> unit
val join : thread -> unit

val cond_create : t -> cond
(** A condition on a fresh private monitor (native) or a plain
    cooperative condition (sim).  Prefer {!cond_in} when the waiter's
    predicate involves shared state. *)

val thread_name : thread -> string
val thread_busy_ns : thread -> int

(** {1 Introspection} *)

val time : t -> int
val busy_cores : t -> int
val runnable_count : t -> int
val online_cores : t -> int
val live_threads : t -> int
val spawned_threads : t -> int
val instant_power : t -> float
val energy_joules : t -> float

val set_online_cores : t -> int -> unit
(** Models resource-availability change on sim; on native only records
    the request for reporting (OS cores cannot be revoked). *)

val hook_cost : t -> int
(** Virtual cost of one Decima begin/end hook: the machine's [hook] on
    sim, 0 on native (the real hook cost is measured, not modelled). *)

val live_thread_names : t -> string list
val seconds_of_ns : int -> float
