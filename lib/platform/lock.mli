(** Mutual exclusion over the platform abstraction: the contract of
    {!Parcae_sim.Lock}, dispatched on the engine the lock was created
    on. *)

type t

val create : ?op_cost:int -> Engine.t -> string -> t
(** [op_cost] overrides the sim machine's lock cost; ignored on native. *)

val acquire : t -> unit
val release : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
val acquisitions : t -> int
val contended : t -> int
