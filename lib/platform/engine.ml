(* Backend dispatch for the execution engine.

   Engines, threads, conditions and monitors are tagged sums over the
   simulator and the native backend; operations that receive one dispatch
   on the tag.  Ambient operations resolve their context via the native
   backend's domain-local worker slot: a single O(1) lookup that returns
   [None] on any non-pool domain, so the simulator hot path (effects) is
   untaxed.

   Monitors are the cross-backend mutual-exclusion primitive: on native
   they are real per-structure mutexes ({!Parcae_native.Engine.Monitor});
   on the simulator they are free — cooperative scheduling already makes
   code between blocking points atomic — so [locked] just runs the
   closure. *)

module Sim = Parcae_sim.Engine
module Machine = Parcae_sim.Machine
module Nat = Parcae_native.Engine

type t = S of Sim.t | N of Nat.t
type thread = St of Sim.thread | Nt of Nat.task
type cond = Sc of Sim.cond | Nc of Nat.Monitor.c
type monitor = Sm | Nm of Nat.Monitor.m

exception Thread_failure of string * exn

let create m = S (Sim.create m)
let create_native ?pool () = N (Nat.create ?pool ())
let backend = function S _ -> "sim" | N _ -> "native"
let is_native = function S _ -> false | N _ -> true
let sim_engine = function S e -> Some e | N _ -> None
let native_engine = function S _ -> None | N e -> Some e

(* The cost model a native engine reports: real cores, zero virtual
   costs (the real ones land in wall time), no power model. *)
let native_machine e =
  {
    Machine.name = Printf.sprintf "native-%dd" (Nat.pool_size e);
    cores = Nat.pool_size e;
    ghz = 0.0;
    time_slice = 0;
    ctx_switch = 0;
    chan_op = 0;
    lock_op = 0;
    hook = 0;
    idle_power = 0.0;
    core_power = 0.0;
  }

let machine = function S e -> Sim.machine e | N e -> native_machine e

let spawn t ~name body =
  match t with
  | S e -> St (Sim.spawn e ~name body)
  | N e -> Nt (Nat.spawn e ~name body)

let run ?until t =
  match t with
  | S e -> (
      try Sim.run ?until e
      with Sim.Thread_failure (name, exn) -> raise (Thread_failure (name, exn)))
  | N e -> (
      try Nat.run ?until e
      with Nat.Thread_failure (name, exn) -> raise (Thread_failure (name, exn)))

let shutdown = function S _ -> () | N e -> Nat.shutdown e

(* Ambient operations: native task context wins when present; otherwise
   the call must come from a simulated thread and the sim effect fires. *)
let compute n =
  match Nat.self_opt () with Some task -> Nat.compute task n | None -> Sim.compute n

let now () =
  match Nat.self_opt () with
  | Some task -> Nat.now (Nat.task_engine task)
  | None -> Sim.now ()

let yield () =
  match Nat.self_opt () with
  | Some task -> Nat.yield (Nat.task_engine task)
  | None -> Sim.yield ()

let sleep ns =
  match Nat.self_opt () with
  | Some task -> Nat.sleep (Nat.task_engine task) ns
  | None -> Sim.sleep ns

let sleep_until t =
  match Nat.self_opt () with
  | Some task -> Nat.sleep_until (Nat.task_engine task) t
  | None -> Sim.sleep_until t

let spawn_thread ~name body =
  match Nat.self_opt () with
  | Some task -> Nt (Nat.spawn (Nat.task_engine task) ~name body)
  | None -> St (Sim.spawn_thread ~name body)

let self () =
  match Nat.self_opt () with Some task -> Nt task | None -> St (Sim.self ())

let self_busy_ns () =
  match Nat.self_opt () with
  | Some task -> Nat.task_busy_ns task
  | None -> (Sim.self ()).Sim.busy_ns

(* Deferred cost accounting: on the simulator the cost accumulates on the
   calling thread and folds into a later burst (bounded skew); on native
   virtual costs are real spins, so charge immediately. *)
let charge eng n =
  match eng with
  | S e -> Sim.charge e n
  | N _ -> ( match Nat.self_opt () with Some task -> Nat.compute task n | None -> ())

(* Engine-aware compute: on the simulator the burst suspends through a
   constant payload-free effect (no per-suspension effect block); on
   native it is the usual spin. *)
let compute_in eng n =
  match eng with
  | S e -> Sim.compute_in e n
  | N _ -> ( match Nat.self_opt () with Some task -> Nat.compute task n | None -> ())

(* Busy time of the calling context, without the [Self] effect the
   ambient [self_busy_ns] pays on the simulator. *)
let busy_ns_in eng =
  match eng with
  | S e -> Sim.current_busy e
  | N _ -> ( match Nat.self_opt () with Some task -> Nat.task_busy_ns task | None -> 0)

(* The timeline lane of the calling context: the worker domain index on
   native, the occupied core index on sim.  Unlike the other ambient ops
   this is safe to call from anywhere — a plain (non-engine) thread, or a
   simulated thread currently off-core — and answers [None] there. *)
let current_lane () =
  match Nat.worker_id_opt () with
  | Some wid -> Some wid
  | None -> (
      match Sim.self () with
      | th ->
          let core = if th.Sim.core >= 0 then th.Sim.core else th.Sim.last_core in
          if core >= 0 then Some core else None
      | exception _ -> None)

(* The engine task id of the calling context, for the race sanitizer's
   per-task vector clocks.  Like [current_lane] this is safe to call from
   anywhere and answers [None] on a plain (non-engine) thread. *)
let current_task_id () =
  match Nat.self_opt () with
  | Some task -> Some (Nat.task_id task)
  | None -> ( match Sim.self () with th -> Some th.Sim.tid | exception _ -> None)

let engine () =
  match Nat.self_opt () with
  | Some task -> N (Nat.task_engine task)
  | None -> S (Sim.engine ())

let monitor_create = function S _ -> Sm | N _ -> Nm (Nat.Monitor.create ())
let locked m f = match m with Sm -> f () | Nm m -> Nat.Monitor.locked m f
let monitor_held = function Sm -> true | Nm m -> Nat.Monitor.held m

let cond_in = function
  | Sm -> Sc (Sim.cond_create ())
  | Nm m -> Nc (Nat.Monitor.cond m)

(* A native wait acquires the condition's monitor when the caller does
   not already hold it; callers with check-then-wait protocols should
   hold it across the check ([locked] around predicate + [wait_on]). *)
let wait_on = function
  | Sc c -> Sim.wait_on c
  | Nc c ->
      let m = Nat.Monitor.monitor_of c in
      if Nat.Monitor.held m then Nat.Monitor.wait c
      else Nat.Monitor.locked m (fun () -> Nat.Monitor.wait c)

let signal = function Sc c -> Sim.signal c | Nc c -> Nat.Monitor.signal c
let broadcast = function Sc c -> Sim.broadcast c | Nc c -> Nat.Monitor.broadcast c
let join th =
  let joined_tid = match th with St th -> th.Sim.tid | Nt task -> Nat.task_id task in
  (match th with St th -> Sim.join th | Nt task -> Nat.join task);
  (* Joining a finished task acquires its completion clock: everything the
     joined task did happens-before the joiner from here on. *)
  if Parcae_obs.Hb.enabled () then
    match current_task_id () with
    | Some me -> Parcae_obs.Hb.on_join ~task:me ~joined:joined_tid
    | None -> ()

let cond_create = function
  | S _ -> Sc (Sim.cond_create ())
  | N _ -> Nc (Nat.Monitor.cond (Nat.Monitor.create ()))

let thread_name = function St th -> th.Sim.tname | Nt task -> Nat.task_name task
let thread_busy_ns = function St th -> th.Sim.busy_ns | Nt task -> Nat.task_busy_ns task
let time = function S e -> Sim.time e | N e -> Nat.time e
let busy_cores = function S e -> Sim.busy_cores e | N e -> Nat.busy_cores e
let runnable_count = function S e -> Sim.runnable_count e | N e -> Nat.runnable_count e
let online_cores = function S e -> Sim.online_cores e | N e -> Nat.online_cores e
let live_threads = function S e -> Sim.live_threads e | N e -> Nat.live_threads e
let spawned_threads = function S e -> Sim.spawned_threads e | N e -> Nat.spawned_threads e
let instant_power = function S e -> Sim.instant_power e | N e -> Nat.instant_power e
let energy_joules = function S e -> Sim.energy_joules e | N e -> Nat.energy_joules e

let set_online_cores t n =
  match t with S e -> Sim.set_online_cores e n | N e -> Nat.set_online_cores e n

let hook_cost = function S e -> (Sim.machine e).Machine.hook | N _ -> 0

let live_thread_names = function
  | S e -> Sim.live_thread_names e
  | N e -> Nat.live_thread_names e

let seconds_of_ns = Sim.seconds_of_ns
