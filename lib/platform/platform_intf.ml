(* The PLATFORM signature: the engine operations the runtime and
   workloads actually use, extracted so a backend is a pluggable module.

   Three implementations are type-checked against it below:
   [Sim_backend] (the deterministic discrete-event simulator),
   [Native_backend] (OCaml 5 domains), and [Dispatch] (the tagged-value
   layer in {!Engine}/{!Chan}/{!Lock}/{!Barrier} that the runtime links
   against so sim and native code coexist in one binary).  The functor
   route would work too; the dispatch route was chosen because it keeps
   engine values first-class — a CLI flag, not a build, selects the
   backend. *)

module type PLATFORM = sig
  val name : string

  type engine
  type thread
  type cond

  type config
  (** Backend-specific creation parameter: a {!Parcae_sim.Machine.t} cost
      model for the simulator, a domain-pool size for native. *)

  val create : config -> engine
  val spawn : engine -> name:string -> (unit -> unit) -> thread
  val run : ?until:int -> engine -> int
  val shutdown : engine -> unit

  (** Ambient operations, callable only from inside an engine thread. *)

  val compute : int -> unit
  val now : unit -> int
  val yield : unit -> unit
  val sleep : int -> unit
  val self_busy_ns : unit -> int
  val spawn_thread : name:string -> (unit -> unit) -> thread

  (** Synchronisation.  A [monitor] is the cross-backend mutual-exclusion
      primitive: a real per-structure mutex on native, free on the
      simulator (cooperative atomicity).  Check-then-wait protocols hold
      the monitor across predicate check and [wait_on]. *)

  type monitor

  val monitor_create : engine -> monitor
  val locked : monitor -> (unit -> 'a) -> 'a
  val cond_in : monitor -> cond
  val cond_create : engine -> cond
  val wait_on : cond -> unit
  val signal : cond -> unit
  val broadcast : cond -> unit
  val join : thread -> unit

  (** Clock and cores. *)

  val time : engine -> int
  val online_cores : engine -> int
  val live_threads : engine -> int
  val seconds_of_ns : int -> float

  module Chan : sig
    type 'a t

    val create : ?capacity:int -> engine -> string -> 'a t
    val length : 'a t -> int
    val is_empty : 'a t -> bool
    val send : 'a t -> 'a -> unit
    val recv : 'a t -> 'a
    val force_send : 'a t -> 'a -> unit
    val try_recv : 'a t -> 'a option
    val try_send : 'a t -> 'a -> bool
    val send_batch : 'a t -> 'a list -> unit
    val recv_batch : ?max:int -> 'a t -> 'a list
    val filter : 'a t -> ('a -> bool) -> int
    val drain : 'a t -> int
  end

  module Lock : sig
    type t

    val create : engine -> string -> t
    val acquire : t -> unit
    val release : t -> unit
    val with_lock : t -> (unit -> 'a) -> 'a
  end

  module Barrier : sig
    type t

    val create : engine -> parties:int -> string -> t
    val wait : t -> bool
  end
end

module Sim_backend : PLATFORM with type config = Parcae_sim.Machine.t = struct
  let name = "sim"

  module E = Parcae_sim.Engine

  type engine = E.t
  type thread = E.thread
  type cond = E.cond
  type config = Parcae_sim.Machine.t

  let create = E.create
  let spawn = E.spawn
  let run = E.run
  let shutdown _ = ()
  let compute = E.compute
  let now = E.now
  let yield = E.yield
  let sleep = E.sleep
  let self_busy_ns () = (E.self ()).E.busy_ns
  let spawn_thread = E.spawn_thread

  type monitor = unit

  let monitor_create _ = ()
  let locked () f = f ()
  let cond_in () = E.cond_create ()
  let cond_create _ = E.cond_create ()
  let wait_on = E.wait_on
  let signal = E.signal
  let broadcast = E.broadcast
  let join = E.join
  let time = E.time
  let online_cores = E.online_cores
  let live_threads = E.live_threads
  let seconds_of_ns = E.seconds_of_ns

  module Chan = struct
    include Parcae_sim.Chan

    let create ?capacity eng name = create ?capacity eng name
  end

  module Lock = struct
    include Parcae_sim.Lock

    let create _eng name = create name
  end

  module Barrier = struct
    include Parcae_sim.Barrier

    let create _eng ~parties name = create ~parties name
  end
end

module Native_backend : PLATFORM with type config = int option = struct
  let name = "native"

  module E = Parcae_native.Engine

  type engine = E.t
  type thread = E.task
  type cond = E.Monitor.c
  type config = int option

  let create pool = E.create ?pool ()
  let spawn = E.spawn
  let run = E.run
  let shutdown = E.shutdown

  let ambient op_name =
    match E.self_opt () with
    | Some task -> task
    | None -> invalid_arg (op_name ^ ": not called from a native task")

  let compute n = E.compute (ambient "Native.compute") n
  let now () = E.now (E.task_engine (ambient "Native.now"))
  let yield () = E.yield (E.task_engine (ambient "Native.yield"))
  let sleep ns = E.sleep (E.task_engine (ambient "Native.sleep")) ns
  let self_busy_ns () = E.task_busy_ns (ambient "Native.self_busy_ns")

  let spawn_thread ~name body =
    E.spawn (E.task_engine (ambient "Native.spawn_thread")) ~name body

  type monitor = E.Monitor.m

  let monitor_create _ = E.Monitor.create ()
  let locked = E.Monitor.locked
  let cond_in = E.Monitor.cond
  let cond_create _ = E.Monitor.cond (E.Monitor.create ())

  let wait_on c =
    let m = E.Monitor.monitor_of c in
    if E.Monitor.held m then E.Monitor.wait c
    else E.Monitor.locked m (fun () -> E.Monitor.wait c)

  let signal = E.Monitor.signal
  let broadcast = E.Monitor.broadcast
  let join = E.join
  let time = E.time
  let online_cores = E.online_cores
  let live_threads = E.live_threads
  let seconds_of_ns = E.seconds_of_ns

  module Chan = Parcae_native.Chan

  module Lock = struct
    include Parcae_native.Lock

    let create eng name = create eng name
  end

  module Barrier = Parcae_native.Barrier
end

(** Which backend a dispatched engine should be created on. *)
type dispatch_config = Sim_cfg of Parcae_sim.Machine.t | Native_cfg of int option

module Dispatch : PLATFORM with type config = dispatch_config = struct
  let name = "dispatch"

  type engine = Engine.t
  type thread = Engine.thread
  type cond = Engine.cond
  type config = dispatch_config

  let create = function
    | Sim_cfg m -> Engine.create m
    | Native_cfg pool -> Engine.create_native ?pool ()

  let spawn = Engine.spawn
  let run = Engine.run
  let shutdown = Engine.shutdown
  let compute = Engine.compute
  let now = Engine.now
  let yield = Engine.yield
  let sleep = Engine.sleep
  let self_busy_ns = Engine.self_busy_ns
  let spawn_thread = Engine.spawn_thread

  type monitor = Engine.monitor

  let monitor_create = Engine.monitor_create
  let locked = Engine.locked
  let cond_in = Engine.cond_in
  let cond_create = Engine.cond_create
  let wait_on = Engine.wait_on
  let signal = Engine.signal
  let broadcast = Engine.broadcast
  let join = Engine.join
  let time = Engine.time
  let online_cores = Engine.online_cores
  let live_threads = Engine.live_threads
  let seconds_of_ns = Engine.seconds_of_ns

  module Chan = struct
    include Chan

    let create ?capacity eng name = create ?capacity eng name
  end

  module Lock = struct
    include Lock

    let create eng name = create eng name
  end

  module Barrier = Barrier
end
