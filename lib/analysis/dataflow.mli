(** Interval + congruence dataflow analysis over a loop iteration, with
    phi widening across iterations.

    A {!fact} over-approximates every value a register takes during any
    iteration of the loop: an integer interval with optionally-open ends,
    refined by a congruence "value = base (mod stride)" (stride [0] means
    the register is the constant [base]).  [Alias] uses facts to fold
    provably-constant subscripts, recognize strided chains, and prove
    range- or congruence-disjointness; [Lint] uses them for value
    diagnostics (possibly-zero divisors, unconditional breaks). *)

open Parcae_ir

type fact = {
  lo : int option;  (** greatest known lower bound; [None] = unbounded *)
  hi : int option;  (** least known upper bound; [None] = unbounded *)
  stride : int;  (** [0]: constant [base]; [s > 0]: value = base (mod s) *)
  base : int;  (** canonical residue, [0 <= base < stride] when [stride > 0] *)
}

val top : fact
val const : int -> fact
val range : int option -> int option -> fact
val const_of : fact -> int option

val contains : fact -> int -> bool
(** Could the value set contain this integer? *)

val may_be_zero : fact -> bool
val is_nonzero : fact -> bool

val disjoint : fact -> fact -> bool
(** Are the two value sets provably disjoint (no common integer), by
    interval separation or by incompatible congruences? *)

val join : fact -> fact -> fact
val widen : fact -> fact -> fact
val equal : fact -> fact -> bool
val to_string : fact -> string

val binop : Instr.binop -> fact -> fact -> fact
(** Transfer function matching {!Instr.eval_binop} exactly (truncating
    division with [x/0 = 0], masked shifts, comparisons in [{0,1}]). *)

(** {1 Whole-loop analysis} *)

type summary

val analyze : Loop.t -> summary
(** Fixpoint facts for every register of the loop.  Counted-loop
    inductions are seeded with their exact value set (including the trip
    bound); other phis join init and carry with widening. *)

val reg_fact : summary -> Instr.reg -> fact
(** [top] for registers the analysis knows nothing about. *)

val operand_fact : summary -> Instr.operand -> fact
