(** Dataflow-powered lints over a single loop.  All findings are warnings
    with stable [W6xx] codes: dead stores (W601), loop-invariant live-outs
    (W602), possibly-zero divisors (W603), unreachable code after an
    unconditional break (W604), never-used registers (W605), and breaks
    that can never fire (W606). *)

open Parcae_ir

val run : ?summary:Dataflow.summary -> Loop.t -> Diag.t list
(** Analyze the loop (or reuse a precomputed [summary]) and report all
    findings in body order per rule. *)
