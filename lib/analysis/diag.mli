(** Structured diagnostics with stable codes, severities, and source
    locations, rendered human-readable or as JSON.

    Code families: [P0xx] parse errors, [V1xx]/[V2xx]/[V3xx] DOANY /
    DOACROSS / PS-DSWP legality violations, [V0xx] PDG integrity, [N4xx]
    scheme-inhibitor explanations, [W6xx] lint warnings, [S7xx] race
    sanitizer soundness violations, [G7xx] sanitizer precision gaps. *)

open Parcae_ir

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable, e.g. ["V302"] *)
  severity : severity;
  loc : Loop.loc option;
  message : string;
}

val make :
  ?loc:Loop.loc -> code:string -> severity:severity -> ('a, unit, string, t) format4 -> 'a

val error : ?loc:Loop.loc -> string -> ('a, unit, string, t) format4 -> 'a
val warning : ?loc:Loop.loc -> string -> ('a, unit, string, t) format4 -> 'a
val info : ?loc:Loop.loc -> string -> ('a, unit, string, t) format4 -> 'a

val severity_to_string : severity -> string
val is_error : t -> bool
val count_errors : t list -> int

val to_string : t -> string
(** GCC-style: ["file:line: severity[CODE]: message"]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val to_json : t -> string
val list_to_json : t list -> string

val sort : t list -> t list
(** Errors first, then warnings, then infos; stable within a class. *)
