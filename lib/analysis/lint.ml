(* Dataflow-powered lints over a single loop.  All findings are warnings:
   the loop still compiles and runs, but something is probably not what
   the author intended.

     W601  dead store (overwritten later in the same iteration, unread)
     W602  loop-invariant live-out
     W603  possibly-zero divisor
     W604  unreachable code after an unconditional break_if
     W605  register computed but never used
     W606  break_if that can never fire *)

open Parcae_ir

let loc_at loop ~nphis bi = Loop.loc_of loop (nphis + bi)

(* Same-cell test for two subscripts of one array within one iteration:
   syntactically identical operands (a register holds one value per
   iteration) or equal constant folds. *)
let definitely_same_cell s idx1 idx2 =
  idx1 = idx2
  ||
  match
    (Dataflow.const_of (Dataflow.operand_fact s idx1), Dataflow.const_of (Dataflow.operand_fact s idx2))
  with
  | Some a, Some b -> a = b
  | _ -> false

let may_overlap s idx1 idx2 =
  not (Dataflow.disjoint (Dataflow.operand_fact s idx1) (Dataflow.operand_fact s idx2))

(* W601: a store whose cell is definitely overwritten by a later store in
   the same iteration, with no possibly-aliasing load in between.  Arrays
   are observable only after the overwrite, so the first store is dead. *)
let dead_stores loop ~nphis s =
  let body = Array.of_list loop.Loop.body in
  let n = Array.length body in
  let out = ref [] in
  for i = 0 to n - 1 do
    match body.(i) with
    | Instr.Store { arr; idx; _ } ->
        let killed = ref None in
        (try
           for j = i + 1 to n - 1 do
             match body.(j) with
             | Instr.Store { arr = arr2; idx = idx2; _ }
               when arr2 = arr && definitely_same_cell s idx idx2 ->
                 killed := Some j;
                 raise Exit
             | Instr.Load { arr = arr2; idx = idx2; _ } when arr2 = arr && may_overlap s idx idx2
               ->
                 raise Exit  (* the value may be read before the overwrite *)
             | Instr.Break_if _ -> raise Exit  (* overwrite may not execute *)
             | _ -> ()
           done
         with Exit -> ());
        (match !killed with
        | Some j ->
            out :=
              Diag.warning ?loc:(loc_at loop ~nphis i) "W601"
                "dead store: %s[%s] is overwritten at %s before any read"
                arr
                (Instr.operand_to_string idx)
                (match loc_at loop ~nphis j with
                | Some l -> Loop.loc_to_string l
                | None -> Printf.sprintf "instruction %d" j)
              :: !out
        | None -> ())
    | _ -> ()
  done;
  List.rev !out

(* W602: a live-out whose value is provably the same constant on every
   iteration: the surrounding code could use the constant directly. *)
let invariant_live_outs loop s =
  List.filter_map
    (fun r ->
      match Dataflow.const_of (Dataflow.reg_fact s r) with
      | Some c ->
          let phi_id = ref None in
          List.iteri
            (fun i (p : Instr.phi) -> if p.Instr.pdst = r then phi_id := Some i)
            loop.Loop.phis;
          let loc = Option.bind !phi_id (Loop.loc_of loop) in
          Some (Diag.warning ?loc "W602" "live-out r%d is always the constant %d" r c)
      | None -> None)
    loop.Loop.live_out

(* W603: a divisor that may be zero (the IR defines x/0 = x mod 0 = 0,
   which is rarely what the author meant). *)
let zero_divisors loop ~nphis s =
  List.concat
    (List.mapi
       (fun i instr ->
         match instr with
         | Instr.Binop { op = Instr.Div | Instr.Rem; b; _ } ->
             let f = Dataflow.operand_fact s b in
             if Dataflow.const_of f = Some 0 then
               [
                 Diag.warning ?loc:(loc_at loop ~nphis i) "W603"
                   "division by the constant zero always yields 0";
               ]
             else if Dataflow.may_be_zero f then
               [
                 Diag.warning ?loc:(loc_at loop ~nphis i) "W603"
                   "divisor %s may be zero (the IR defines x / 0 = x mod 0 = 0)"
                   (Instr.operand_to_string b);
               ]
             else []
         | _ -> [])
       loop.Loop.body)

(* W604/W606: break conditions decided by the analysis.  A provably
   non-zero condition exits during the first iteration and makes the rest
   of the body unreachable; a provably-zero one can never fire. *)
let break_lints loop ~nphis s =
  let n = List.length loop.Loop.body in
  List.concat
    (List.mapi
       (fun i instr ->
         match instr with
         | Instr.Break_if { cond } ->
             let f = Dataflow.operand_fact s cond in
             if Dataflow.is_nonzero f then
               [
                 Diag.warning ?loc:(loc_at loop ~nphis i) "W604"
                   "break_if condition %s is always non-zero: the loop exits in the first \
                    iteration and the %d following instruction(s) are unreachable"
                   (Instr.operand_to_string cond) (n - i - 1);
               ]
             else if Dataflow.const_of f = Some 0 then
               [
                 Diag.warning ?loc:(loc_at loop ~nphis i) "W606"
                   "break_if condition %s is always zero: this exit never fires%s"
                   (Instr.operand_to_string cond)
                   (if loop.Loop.trip = Loop.While then " and the loop cannot terminate" else "");
               ]
             else []
         | _ -> [])
       loop.Loop.body)

(* W605: a register computed by a side-effect-free instruction but never
   consumed by any instruction, phi carry, or live-out. *)
let unused_regs loop ~nphis =
  let used = Hashtbl.create 32 in
  List.iter (fun i -> List.iter (fun r -> Hashtbl.replace used r ()) (Instr.uses i)) loop.Loop.body;
  List.iter (fun (p : Instr.phi) -> Hashtbl.replace used p.Instr.carry ()) loop.Loop.phis;
  List.iter (fun r -> Hashtbl.replace used r ()) loop.Loop.live_out;
  List.concat
    (List.mapi
       (fun i instr ->
         match instr with
         | (Instr.Binop { dst; _ } | Instr.Load { dst; _ }) when not (Hashtbl.mem used dst) ->
             [
               Diag.warning ?loc:(loc_at loop ~nphis i) "W605" "r%d is computed but never used"
                 dst;
             ]
         | _ -> [])
       loop.Loop.body)

let run ?summary loop =
  let s = match summary with Some s -> s | None -> Dataflow.analyze loop in
  let nphis = List.length loop.Loop.phis in
  dead_stores loop ~nphis s
  @ invariant_live_outs loop s
  @ zero_divisors loop ~nphis s
  @ break_lints loop ~nphis s
  @ unused_regs loop ~nphis
