(* Structured diagnostics for the static-analysis suite.

   Every finding carries a stable code so tests, CI greps, and users can
   key on it:

     P0xx  parse/frontend errors (emitted by the CLI around Parse_error)
     V1xx  DOANY legality violations
     V2xx  DOACROSS legality violations
     V3xx  PS-DSWP legality violations
     V0xx  PDG integrity violations (scheme-independent)
     N4xx  scheme-inhibitor explanations (informational)
     W6xx  lint warnings

   Rendering is GCC-style one-per-line text ("file:line: severity[CODE]:
   message") or a JSON array for tooling. *)

open Parcae_ir

type severity = Error | Warning | Info

type t = {
  code : string;  (* stable, e.g. "V302" *)
  severity : severity;
  loc : Loop.loc option;
  message : string;
}

let make ?loc ~code ~severity fmt =
  Printf.ksprintf (fun message -> { code; severity; loc; message }) fmt

let error ?loc code fmt = make ?loc ~code ~severity:Error fmt
let warning ?loc code fmt = make ?loc ~code ~severity:Warning fmt
let info ?loc code fmt = make ?loc ~code ~severity:Info fmt

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let is_error d = d.severity = Error

let count_errors ds = List.length (List.filter is_error ds)

let to_string d =
  let prefix = match d.loc with Some l -> Loop.loc_to_string l ^ ": " | None -> "" in
  Printf.sprintf "%s%s[%s]: %s" prefix (severity_to_string d.severity) d.code d.message

(* Minimal JSON string escaping: the messages only ever contain ASCII from
   instruction printers, but escape control characters anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let loc_fields =
    match d.loc with
    | Some l ->
        Printf.sprintf {|,"file":"%s","line":%d|} (json_escape l.Loop.loc_file) l.Loop.loc_line
    | None -> ""
  in
  Printf.sprintf {|{"code":"%s","severity":"%s","message":"%s"%s}|} (json_escape d.code)
    (severity_to_string d.severity) (json_escape d.message) loc_fields

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"

(* Errors first, then warnings, then infos; stable within a class. *)
let sort ds =
  let rank d = match d.severity with Error -> 0 | Warning -> 1 | Info -> 2 in
  List.stable_sort (fun a b -> compare (rank a) (rank b)) ds
