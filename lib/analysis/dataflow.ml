(* A lattice-based dataflow analysis over one loop iteration, with phi
   widening across iterations.

   Each register is mapped to a [fact]: an integer interval (with open
   ends) refined by a congruence ("value = base (mod stride)").  The
   product domain is cheap, and is exactly what index reasoning needs:
   constants fold ("stride 0"), strided affine chains through Mul/Shl keep
   their stride, and masked values get tight ranges, so [Alias] can prove
   range- or congruence-disjointness of array subscripts and drop spurious
   May_conflict edges from the PDG.

   The analysis runs the straight-line body to a fixpoint: body facts are
   recomputed from the phi facts each round, and phi facts join their
   initial value with the previous iteration's carry, widening unstable
   bounds away after a couple of rounds so termination is immediate.
   Counted-loop inductions are seeded with their exact value set (from,
   from + step, ..., capped by the trip count) and pinned.

   Arithmetic is modelled without overflow: any bound whose magnitude
   exceeds [max_mag] is dropped to "unknown", so no analysis-side or
   runtime-side wraparound can ever be mistaken for a precise bound. *)

open Parcae_ir

type fact = {
  lo : int option;  (* greatest known lower bound; None = unbounded *)
  hi : int option;  (* least known upper bound; None = unbounded *)
  stride : int;  (* 0: constant [base]; s > 0: value = base (mod s) *)
  base : int;  (* canonical residue, 0 <= base < stride when stride > 0 *)
}

let max_mag = 1 lsl 40

let top = { lo = None; hi = None; stride = 1; base = 0 }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Smart constructor enforcing the representation invariants: residues are
   canonical, overlarge bounds degrade to unbounded, and a fact that admits
   exactly one value collapses to a constant. *)
let norm lo hi stride base =
  let clamp = function Some v when abs v > max_mag -> None | b -> b in
  let lo = clamp lo and hi = clamp hi in
  if stride = 0 then
    if abs base > max_mag then top else { lo = Some base; hi = Some base; stride = 0; base }
  else
    let stride = if stride < 0 || stride > max_mag then 1 else stride in
    let base = ((base mod stride) + stride) mod stride in
    match (lo, hi) with
    | Some l, Some h when l > h ->
        (* empty range: only reachable through dead comparisons; keep a
           harmless over-approximation instead of tracking bottom *)
        { lo = None; hi = None; stride; base }
    | Some l, Some h when stride > 1 ->
        (* smallest admissible value at or above l *)
        let v = l + (((base - l) mod stride) + stride) mod stride in
        if v > h then { lo; hi; stride; base }
        else if v + stride > h then { lo = Some v; hi = Some v; stride = 0; base = v }
        else { lo; hi; stride; base }
    | _ -> { lo; hi; stride; base }

let const c = norm (Some c) (Some c) 0 c
let range lo hi = norm lo hi 1 0
let bool_fact = range (Some 0) (Some 1)
let const_of f = if f.stride = 0 then Some f.base else None

(* Could the fact's value set contain [v]? *)
let contains f v =
  (match f.lo with Some l -> v >= l | None -> true)
  && (match f.hi with Some h -> v <= h | None -> true)
  && (if f.stride = 0 then v = f.base else (v - f.base) mod f.stride = 0)

let may_be_zero f = contains f 0
let is_nonzero f = not (may_be_zero f)
let nonneg f = match f.lo with Some l -> l >= 0 | None -> false

(* Are the two value sets provably disjoint (no common integer)? *)
let disjoint f1 f2 =
  let range_apart =
    match (f1.hi, f2.lo) with
    | Some h, Some l when h < l -> true
    | _ -> ( match (f2.hi, f1.lo) with Some h, Some l -> h < l | _ -> false)
  in
  let cong_apart =
    let g = gcd f1.stride f2.stride in
    (* stride 0 participates as "exactly base", so gcd treats it right:
       gcd 0 s = s, and two constants give g = 0, handled below *)
    if g = 0 then f1.base <> f2.base else (f1.base - f2.base) mod g <> 0
  in
  range_apart || cong_apart

let cong_join (s1, b1) (s2, b2) =
  let g = gcd (gcd s1 s2) (abs (b1 - b2)) in
  if g = 0 then (0, b1) else (g, b1)

let join f1 f2 =
  let lo = match (f1.lo, f2.lo) with Some a, Some b -> Some (min a b) | _ -> None in
  let hi = match (f1.hi, f2.hi) with Some a, Some b -> Some (max a b) | _ -> None in
  let s, b = cong_join (f1.stride, f1.base) (f2.stride, f2.base) in
  norm lo hi s b

(* Widening: keep only the bounds [next] did not move past, so repeated
   widening stabilizes after one step per bound; congruences stabilize on
   their own because gcd chains strictly decrease. *)
let widen old next =
  let lo =
    match (old.lo, next.lo) with Some o, Some n when n >= o -> Some o | _, _ -> None
  in
  let hi =
    match (old.hi, next.hi) with Some o, Some n when n <= o -> Some o | _, _ -> None
  in
  let s, b = cong_join (old.stride, old.base) (next.stride, next.base) in
  norm lo hi s b

let equal (f1 : fact) (f2 : fact) = f1 = f2

let to_string f =
  let b = function Some v -> string_of_int v | None -> "_" in
  match const_of f with
  | Some c -> string_of_int c
  | None ->
      Printf.sprintf "[%s..%s]%s" (b f.lo) (b f.hi)
        (if f.stride > 1 then Printf.sprintf " =%d (mod %d)" f.base f.stride else "")

(* ------------------------ transfer functions ------------------------- *)

let ok v = if abs v > max_mag then None else Some v
let ( +? ) a b = match (a, b) with Some a, Some b -> ok (a + b) | _ -> None
let ( *? ) a b =
  match (a, b) with
  | Some a, Some b when abs a <= max_mag && abs b <= max_mag && abs a < 1 lsl 30 && abs b < 1 lsl 30
    ->
      ok (a * b)
  | Some 0, _ | _, Some 0 -> Some 0
  | _ -> None

let add_f f1 f2 =
  let s, b =
    let g = gcd f1.stride f2.stride in
    if g = 0 then (0, f1.base + f2.base) else (g, f1.base + f2.base)
  in
  norm (f1.lo +? f2.lo) (f1.hi +? f2.hi) s b

let neg_f f =
  let s, b = if f.stride = 0 then (0, -f.base) else (f.stride, -f.base) in
  norm (match f.hi with Some h -> Some (-h) | None -> None)
    (match f.lo with Some l -> Some (-l) | None -> None)
    s b

let sub_f f1 f2 = add_f f1 (neg_f f2)

(* Multiply a fact by a compile-time constant. *)
let scale_f c f =
  if c = 0 then const 0
  else
    let lo = Some c *? f.lo and hi = Some c *? f.hi in
    let lo, hi = if c > 0 then (lo, hi) else (hi, lo) in
    let s, b = if f.stride = 0 then (0, c * f.base) else (abs (c * f.stride), c * f.base) in
    if abs c > 1 lsl 20 || f.stride > 1 lsl 20 then norm lo hi 1 0 else norm lo hi s b

let mul_f f1 f2 =
  match (const_of f1, const_of f2) with
  | Some c, _ -> scale_f c f2
  | _, Some c -> scale_f c f1
  | None, None ->
      let lo, hi =
        match (f1.lo, f1.hi, f2.lo, f2.hi) with
        | Some a, Some b, Some c, Some d ->
            let ps = [ Some a *? Some c; Some a *? Some d; Some b *? Some c; Some b *? Some d ] in
            if List.exists (( = ) None) ps then (None, None)
            else
              let vs = List.filter_map Fun.id ps in
              (Some (List.fold_left min max_int vs), Some (List.fold_left max min_int vs))
        | _ ->
            if nonneg f1 && nonneg f2 then (Some 0, f1.hi *? f2.hi) else (None, None)
      in
      let s, b =
        let { stride = s1; base = b1; _ } = f1 and { stride = s2; base = b2; _ } = f2 in
        if s1 <= 1 lsl 20 && s2 <= 1 lsl 20 && abs b1 <= 1 lsl 20 && abs b2 <= 1 lsl 20 then
          let g = gcd (gcd (s1 * s2) (s1 * b2)) (s2 * b1) in
          if g = 0 then (0, b1 * b2) else (g, b1 * b2)
        else (1, 0)
      in
      norm lo hi s b

(* Truncating division by a non-zero constant (monotone in the dividend). *)
let div_const_f f c =
  let q v = v / c in
  let lo = Option.map q f.lo and hi = Option.map q f.hi in
  let lo, hi = if c > 0 then (lo, hi) else (hi, lo) in
  if f.stride > 0 && f.stride mod c = 0 && f.base mod c = 0 then
    (* c divides every admissible value, so the division is exact *)
    norm lo hi (abs (f.stride / c)) (f.base / c)
  else if f.stride = 0 then const (f.base / c)
  else norm lo hi 1 0

let div_f f1 f2 =
  match const_of f2 with
  | Some 0 -> const 0  (* division by zero yields 0 by IR definition *)
  | Some c -> div_const_f f1 c
  | None -> if nonneg f1 && nonneg f2 then norm (Some 0) f1.hi 1 0 else top

let rem_f f1 f2 =
  match const_of f2 with
  | Some 0 -> const 0
  | Some c ->
      let m = abs c in
      let inside =
        match (f1.lo, f1.hi) with Some l, Some h -> l >= 0 && h < m | _ -> false
      in
      if inside then f1  (* x mod c = x on [0, m) *)
      else
        let lo, hi = if nonneg f1 then (Some 0, Some (m - 1)) else (Some (-(m - 1)), Some (m - 1)) in
        (* remainder is congruent to the dividend modulo |c| *)
        if f1.stride > 0 && f1.stride mod m = 0 && nonneg f1 then norm lo hi m f1.base
        else norm lo hi 1 0
  | None -> (
      match (f2.lo, f2.hi) with
      | Some l, Some h ->
          let m = max (abs l) (abs h) in
          let bound = max 0 (m - 1) in
          if nonneg f1 then range (Some 0) (Some bound) else range (Some (-bound)) (Some bound)
      | _ -> top)

let min_f f1 f2 =
  let lo = match (f1.lo, f2.lo) with Some a, Some b -> Some (min a b) | _ -> None in
  let hi =
    match (f1.hi, f2.hi) with
    | Some a, Some b -> Some (min a b)
    | (Some _ as h), None | None, (Some _ as h) -> h
    | None, None -> None
  in
  let s, b = cong_join (f1.stride, f1.base) (f2.stride, f2.base) in
  norm lo hi s b

let max_f f1 f2 =
  let hi = match (f1.hi, f2.hi) with Some a, Some b -> Some (max a b) | _ -> None in
  let lo =
    match (f1.lo, f2.lo) with
    | Some a, Some b -> Some (max a b)
    | (Some _ as l), None | None, (Some _ as l) -> l
    | None, None -> None
  in
  let s, b = cong_join (f1.stride, f1.base) (f2.stride, f2.base) in
  norm lo hi s b

(* Number of known-fixed low bits: a stride that is a multiple of 2^k pins
   the dividend's k lowest bits to those of the base. *)
let fixed_low_bits f =
  if f.stride = 0 then 62
  else
    let rec tz k s = if s land 1 = 0 && k < 62 then tz (k + 1) (s lsr 1) else k in
    tz 0 f.stride

let bitwise_cong op f1 f2 =
  let j = min (fixed_low_bits f1) (fixed_low_bits f2) in
  if j >= 62 then (0, op f1.base f2.base)
  else if j = 0 then (1, 0)
  else (1 lsl j, op f1.base f2.base)

let and_f f1 f2 =
  (* a non-negative operand bounds the result in [0, that operand] no
     matter what the other side is (the sign bit is masked off) *)
  let pos_hi f = match (f.lo, f.hi) with Some l, Some h when l >= 0 -> Some h | _ -> None in
  let lo, hi =
    match (pos_hi f1, pos_hi f2) with
    | Some a, Some b -> (Some 0, Some (min a b))
    | Some h, None | None, Some h -> (Some 0, Some h)
    | None, None -> if nonneg f1 && nonneg f2 then (Some 0, None) else (None, None)
  in
  let s, b = bitwise_cong ( land ) f1 f2 in
  norm lo hi s b

let or_f f1 f2 =
  let lo, hi =
    if nonneg f1 && nonneg f2 then
      let lo =
        match (f1.lo, f2.lo) with Some a, Some b -> Some (max a b) | _ -> Some 0
      in
      (lo, f1.hi +? f2.hi)
    else (None, None)
  in
  let s, b = bitwise_cong ( lor ) f1 f2 in
  norm lo hi s b

let xor_f f1 f2 =
  let lo, hi =
    if nonneg f1 && nonneg f2 then
      match (f1.hi, f2.hi) with
      | Some a, Some b ->
          let m = max a b in
          let rec pow2 p = if p > m then p else pow2 (p * 2) in
          (Some 0, Some (pow2 1 - 1))
      | _ -> (Some 0, None)
    else (None, None)
  in
  let s, b = bitwise_cong ( lxor ) f1 f2 in
  norm lo hi s b

let shl_f f1 f2 =
  match const_of f2 with
  | Some c ->
      let k = c land 62 in
      if k > 40 then if nonneg f1 then norm (Some 0) None 1 0 else top
      else scale_f (1 lsl k) f1
  | None -> if nonneg f1 then norm (Some 0) None 1 0 else top

let shr_f f1 f2 =
  if not (nonneg f1) then top  (* logical shift of negatives explodes *)
  else
    match const_of f2 with
    | Some c ->
        let k = c land 62 in
        if k = 0 then f1 else norm (Some 0) (Option.map (fun h -> h lsr k) f1.hi) 1 0
    | None -> norm (Some 0) f1.hi 1 0

let cmp_f op f1 f2 =
  let decide =
    match op with
    | Instr.Lt -> (
        match (f1.hi, f2.lo) with
        | Some h, Some l when h < l -> Some 1
        | _ -> ( match (f1.lo, f2.hi) with Some l, Some h when l >= h -> Some 0 | _ -> None))
    | Instr.Le -> (
        match (f1.hi, f2.lo) with
        | Some h, Some l when h <= l -> Some 1
        | _ -> ( match (f1.lo, f2.hi) with Some l, Some h when l > h -> Some 0 | _ -> None))
    | Instr.Eq -> if disjoint f1 f2 then Some 0 else None
    | Instr.Ne -> if disjoint f1 f2 then Some 1 else None
    | _ -> None
  in
  match decide with Some v -> const v | None -> bool_fact

let binop op f1 f2 =
  match (const_of f1, const_of f2) with
  | Some a, Some b -> const (Instr.eval_binop op a b)
  | _ -> (
      match op with
      | Instr.Add -> add_f f1 f2
      | Instr.Sub -> sub_f f1 f2
      | Instr.Mul -> mul_f f1 f2
      | Instr.Div -> div_f f1 f2
      | Instr.Rem -> rem_f f1 f2
      | Instr.Min -> min_f f1 f2
      | Instr.Max -> max_f f1 f2
      | Instr.And -> and_f f1 f2
      | Instr.Or -> or_f f1 f2
      | Instr.Xor -> xor_f f1 f2
      | Instr.Shl -> shl_f f1 f2
      | Instr.Shr -> shr_f f1 f2
      | (Instr.Eq | Instr.Ne | Instr.Lt | Instr.Le) as c -> cmp_f c f1 f2)

(* --------------------------- loop analysis --------------------------- *)

type summary = { facts : (Instr.reg, fact) Hashtbl.t }

let reg_fact s r = match Hashtbl.find_opt s.facts r with Some f -> f | None -> top

let operand_fact s = function Instr.Const c -> const c | Instr.Reg r -> reg_fact s r

(* The exact value set of a counted or open induction i = phi [from, i +-
   step]: seeded once and pinned, which is both maximally precise and
   keeps the trip bound (for counted loops) in the interval. *)
let induction_fact ~trip ~from ~step =
  if step = 0 then const from
  else
    let last =
      match trip with
      | Loop.Count n -> Some (from + ((max n 1 - 1) * step))
      | Loop.While -> None
    in
    let lo, hi = if step > 0 then (Some from, last) else (last, Some from) in
    norm lo hi (abs step) from

(* Recognize i = phi [Const from, i +- Const step] without depending on the
   PDG library (which itself builds on this analysis). *)
let induction_step (loop : Loop.t) (p : Instr.phi) =
  match p.Instr.init with
  | Instr.Reg _ -> None
  | Instr.Const from ->
      let def =
        List.find_opt
          (fun i -> match Instr.defs i with Some d -> d = p.Instr.carry | None -> false)
          loop.Loop.body
      in
      ( match def with
      | Some (Instr.Binop { op = Instr.Add; a = Instr.Reg r; b = Instr.Const c; _ })
        when r = p.Instr.pdst ->
          Some (from, c)
      | Some (Instr.Binop { op = Instr.Add; a = Instr.Const c; b = Instr.Reg r; _ })
        when r = p.Instr.pdst ->
          Some (from, c)
      | Some (Instr.Binop { op = Instr.Sub; a = Instr.Reg r; b = Instr.Const c; _ })
        when r = p.Instr.pdst ->
          Some (from, -c)
      | _ -> None )

let max_rounds = 50

let analyze (loop : Loop.t) =
  let s = { facts = Hashtbl.create 32 } in
  let pinned = Hashtbl.create 8 in
  List.iter
    (fun (p : Instr.phi) ->
      match induction_step loop p with
      | Some (from, step) ->
          Hashtbl.replace s.facts p.Instr.pdst (induction_fact ~trip:loop.Loop.trip ~from ~step);
          Hashtbl.replace pinned p.Instr.pdst ()
      | None -> Hashtbl.replace s.facts p.Instr.pdst (operand_fact s p.Instr.init))
    loop.Loop.phis;
  let run_body () =
    List.iter
      (fun instr ->
        match instr with
        | Instr.Binop { dst; op; a; b } ->
            Hashtbl.replace s.facts dst (binop op (operand_fact s a) (operand_fact s b))
        | Instr.Load { dst; _ } -> Hashtbl.replace s.facts dst top
        | Instr.Call { dst = Some dst; _ } -> Hashtbl.replace s.facts dst top
        | Instr.Call { dst = None; _ } | Instr.Store _ | Instr.Work _ | Instr.Break_if _ -> ())
      loop.Loop.body
  in
  let rec fix round =
    run_body ();
    let changed = ref false in
    List.iter
      (fun (p : Instr.phi) ->
        if not (Hashtbl.mem pinned p.Instr.pdst) then begin
          let cur = reg_fact s p.Instr.pdst in
          let joined = join (operand_fact s p.Instr.init) (reg_fact s p.Instr.carry) in
          let next = if round >= 2 then widen cur joined else join cur joined in
          if not (equal cur next) then begin
            changed := true;
            Hashtbl.replace s.facts p.Instr.pdst next
          end
        end)
      loop.Loop.phis;
    if !changed then
      if round < max_rounds then fix (round + 1)
      else begin
        (* should be unreachable given the widening; fail safe to top *)
        List.iter
          (fun (p : Instr.phi) ->
            if not (Hashtbl.mem pinned p.Instr.pdst) then Hashtbl.replace s.facts p.Instr.pdst top)
          loop.Loop.phis;
        run_body ()
      end
  in
  fix 0;
  s
