(** The Parcae application-developer API (the paper's Chapter 5).

    A task packages a functor executing one dynamic instance, optional
    load/init/fini callbacks, a task type, and optional nested-parallelism
    choices.  The control-flow abstraction repeatedly invoking the functor
    (Figure 5.2a) lives in the Morta executor. *)

type ttype = Seq | Par

(** Execution context passed to a functor for each dynamic instance: the
    OCaml rendering of the paper's [Task::*] methods. *)
type ctx = {
  lane : int;  (** which replica of a parallel task this worker is *)
  dop : int;  (** current degree of parallelism of this task *)
  mutable iter : int;  (** per-lane instance counter *)
  mutable items : int;
      (** dynamic instances completed by this invocation; the executor
          resets it to [-1] (= count by status: one per [Iterating]) before
          each call, batch-draining bodies overwrite it with the number of
          items processed *)
  get_status : unit -> Task_status.t;  (** poll Morta for a pause signal *)
  hook_begin : unit -> unit;  (** bracket the CPU-intensive part... *)
  hook_end : unit -> unit;  (** ...for Decima (Section 4.7) *)
  nested_cfg : Config.t option;
      (** configuration chosen for this task's nested parallelism;
          [None] means run inline, sequentially *)
  run_nested : Config.t -> unit;
      (** run the chosen nested descriptor to completion (Task::wait) *)
}

type t = {
  name : string;
  ttype : ttype;
  body : ctx -> Task_status.t;  (** one dynamic instance *)
  load : (unit -> float) option;  (** current workload (LoadCB) *)
  init : (unit -> unit) option;  (** once per worker activation (Tinit) *)
  fini : (unit -> unit) option;  (** once per worker on pause/complete *)
  nested : nested_choice list;  (** alternative inner parallelizations *)
}

and par_descriptor = { pd_name : string; tasks : t list }
(** A ParDescriptor: tasks that execute in parallel and interact
    (Figure 5.1).  The first task is the master: the one the runtime
    signals to pause, and whose completion terminates the region. *)

and nested_choice = {
  nc_name : string;
  nc_seq : bool list;  (** per inner task: [true] if sequential *)
  nc_make : unit -> par_descriptor;
      (** factory invoked per dynamic instance — inner regions typically
          close over per-instance state *)
}

val create :
  ?ttype:ttype ->
  ?load:(unit -> float) ->
  ?init:(unit -> unit) ->
  ?fini:(unit -> unit) ->
  ?nested:nested_choice list ->
  name:string ->
  (ctx -> Task_status.t) ->
  t

val sequential :
  ?load:(unit -> float) ->
  ?init:(unit -> unit) ->
  ?fini:(unit -> unit) ->
  ?nested:nested_choice list ->
  name:string ->
  (ctx -> Task_status.t) ->
  t

val parallel :
  ?load:(unit -> float) ->
  ?init:(unit -> unit) ->
  ?fini:(unit -> unit) ->
  ?nested:nested_choice list ->
  name:string ->
  (ctx -> Task_status.t) ->
  t

val descriptor : name:string -> t list -> par_descriptor
(** @raise Invalid_argument on an empty task list. *)

val nested_choice : name:string -> seq:bool list -> (unit -> par_descriptor) -> nested_choice

val is_master : par_descriptor -> t -> bool
val arity : par_descriptor -> int
val nth_task : par_descriptor -> int -> t

val default_config : par_descriptor -> Config.t
(** Every task at DoP 1, nested parallelism off: the conservative starting
    point the runtime calibrates away from. *)

val validate_config : par_descriptor -> Config.t -> unit
(** Matching arity, DoP 1 for sequential tasks, nested choices in range.
    @raise Invalid_argument otherwise. *)
