(* The Parcae application-developer API (Chapter 5).

   A [Task] packages:
   - a functor [body] executing one dynamic instance of the task and
     returning its status,
   - an optional load callback exposing the task's current workload
     (e.g. input queue occupancy),
   - optional init/fini callbacks bringing the task into / out of a globally
     consistent state around pauses (Tinit and FiniCB of Sections 4.5-4.6),
   - a task type (sequential or parallel), and
   - optional nested parallelism choices the runtime may switch on and off
     (Section 5.1.1's TaskDescriptor.pd[]).

   The control-flow abstraction of Figure 5.2(a) — the loop repeatedly
   invoking the functor — lives in the Morta executor
   ([Parcae_runtime.Executor]), exactly as in the paper where the
   TaskExecutor template is provided by the system. *)

type ttype = Seq | Par

(* Execution context passed to a functor for each dynamic instance.  It is
   the OCaml rendering of the paper's [Task::*] methods: [get_status] polls
   for a pause signal, [hook_begin]/[hook_end] bracket the CPU-intensive part
   for Decima, and [run_nested] launches the configured nested region and
   waits for it (Task::wait). *)
type ctx = {
  lane : int;  (** which replica of a parallel task this worker is (0-based) *)
  dop : int;  (** current degree of parallelism of this task *)
  mutable iter : int;  (** per-lane instance counter *)
  mutable items : int;
      (** dynamic instances completed by this invocation.  The executor
          resets it to [-1] before each call; a body that leaves it there
          is counted by status (one instance per [Iterating], the classic
          protocol), while batch-draining bodies overwrite it with the
          number of items actually processed so Decima's per-instance
          accounting survives batching. *)
  get_status : unit -> Task_status.t;
  hook_begin : unit -> unit;
  hook_end : unit -> unit;
  nested_cfg : Config.t option;
      (** configuration chosen by the runtime for this task's nested
          parallelism; [None] means run inline, sequentially *)
  run_nested : Config.t -> unit;
      (** execute the task's chosen nested descriptor under the given
          configuration, blocking until it completes *)
}

type t = {
  name : string;
  ttype : ttype;
  body : ctx -> Task_status.t;
  load : (unit -> float) option;
  init : (unit -> unit) option;  (** run once per worker activation (Tinit) *)
  fini : (unit -> unit) option;  (** run once per worker on pause/complete *)
  nested : nested_choice list;  (** alternative inner parallelizations *)
}

(* A ParDescriptor: a set of tasks that execute in parallel and interact
   (Figure 5.1).  The first task is the master task: it is the one the
   runtime signals to pause, and its completion terminates the region. *)
and par_descriptor = { pd_name : string; tasks : t list }

(* A nested-parallelism alternative.  Inner regions typically close over
   per-instance state (a fresh pipeline is built for each video to
   transcode), so the descriptor is produced by a factory invoked once per
   dynamic instance.  [nc_seq] records which inner tasks are sequential so
   configurations can be validated without instantiating the descriptor. *)
and nested_choice = {
  nc_name : string;
  nc_seq : bool list;  (** per inner task: [true] if sequential *)
  nc_make : unit -> par_descriptor;
}

let create ?(ttype = Par) ?load ?init ?fini ?(nested = []) ~name body =
  { name; ttype; body; load; init; fini; nested }

let sequential ?load ?init ?fini ?nested ~name body =
  create ~ttype:Seq ?load ?init ?fini ?nested ~name body

let parallel ?load ?init ?fini ?nested ~name body =
  create ~ttype:Par ?load ?init ?fini ?nested ~name body

let descriptor ~name tasks =
  if tasks = [] then invalid_arg "Task.descriptor: empty task list";
  { pd_name = name; tasks }

let nested_choice ~name ~seq make = { nc_name = name; nc_seq = seq; nc_make = make }

let is_master pd task = match pd.tasks with [] -> false | m :: _ -> m == task

(* Number of tasks in a descriptor. *)
let arity pd = List.length pd.tasks

let nth_task pd i = List.nth pd.tasks i

(* The default configuration for a descriptor: every task at DoP 1, nested
   parallelism off.  This is the conservative starting point the runtime
   calibrates away from. *)
let default_config pd = Config.make (List.map (fun _ -> Config.seq_task) pd.tasks)

(* Validate a configuration against a descriptor: matching arity, DoP 1 for
   sequential tasks, and nested choices in range. *)
let validate_config pd (cfg : Config.t) =
  let check_nested (choices : nested_choice list) (inner : Config.t) =
    if inner.Config.choice < 0 || inner.Config.choice >= List.length choices then
      invalid_arg "nested choice out of range";
    let nc = List.nth choices inner.Config.choice in
    if Array.length inner.Config.tasks <> List.length nc.nc_seq then
      invalid_arg (nc.nc_name ^ ": nested config arity mismatch");
    List.iteri
      (fun i is_seq ->
        let tc = inner.Config.tasks.(i) in
        if tc.Config.dop < 1 then invalid_arg (nc.nc_name ^ ": dop must be >= 1");
        if is_seq && tc.Config.dop <> 1 then
          invalid_arg (nc.nc_name ^ ": sequential inner task requires dop = 1");
        (* Deeper nesting is validated dynamically when instantiated. *)
        ignore tc.Config.nested)
      nc.nc_seq
  in
  if Array.length cfg.Config.tasks <> arity pd then
    invalid_arg
      (Printf.sprintf "config for %s: %d task configs for %d tasks" pd.pd_name
         (Array.length cfg.Config.tasks) (arity pd));
  List.iteri
    (fun i task ->
      let tc = cfg.Config.tasks.(i) in
      if tc.Config.dop < 1 then invalid_arg (task.name ^ ": dop must be >= 1");
      if task.ttype = Seq && tc.Config.dop <> 1 then
        invalid_arg (task.name ^ ": sequential task requires dop = 1");
      match tc.Config.nested with
      | None -> ()
      | Some inner ->
          if task.nested = [] then invalid_arg (task.name ^ ": no nested parallelism declared");
          check_nested task.nested inner)
    pd.tasks
