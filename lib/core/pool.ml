(* Object pools for the serve path (DESIGN.md section 14).

   Steady-state serving must not pay the allocator per request, so the
   descriptors and request records that flow through the pipelines are
   recycled through striped freelists instead of being garbage.  Each
   stripe is a fixed array used as a stack: release pushes into a slot,
   acquire pops — neither path allocates.  Stripes are keyed by the
   calling worker's lane so concurrent lanes rarely share a stripe, and
   each stripe is guarded by a tiny test-and-set spinlock (the critical
   section is a couple of loads and stores; on the simulator backend it
   is never even contended, since simulated threads are cooperative).

   The pool is deliberately forgiving: releasing more objects than a
   stripe can hold simply drops the extras back to the GC, and objects
   lost to a failed task are ordinary garbage — the pool holds no
   reference to objects in flight, so it cannot leak them (the qcheck
   suite pins these invariants down).

   Hit/miss counters are plain atomics on the hot path; they reach the
   metrics registry only through [sample_allocs], which the dashboard
   refresher calls at human frequency. *)

module Engine = Parcae_platform.Engine
module Metrics = Parcae_obs.Metrics

type 'a stripe = {
  lock : bool Atomic.t;
  slots : 'a array;  (* slots.(0 .. top-1) are free objects *)
  mutable top : int;
}

type 'a t = {
  name : string;
  dummy : 'a;  (* fills vacated slots so the pool never pins an object *)
  make : unit -> 'a;  (* miss path: fall back to the allocator *)
  stripes : 'a stripe array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

(* Stat views let the registry and the dashboard enumerate pools of any
   element type. *)
type stats = { st_name : string; st_hits : int; st_misses : int; st_free : int }

let registry : (unit -> stats) list ref = ref []

let lock st =
  while not (Atomic.compare_and_set st.lock false true) do
    Domain.cpu_relax ()
  done

let unlock st = Atomic.set st.lock false

let free_count t =
  Array.fold_left (fun acc st -> acc + st.top) 0 t.stripes

let create ?(stripes = 8) ?(capacity = 512) ~name ~dummy make =
  if stripes < 1 then invalid_arg "Pool.create: stripes must be >= 1";
  if capacity < 1 then invalid_arg "Pool.create: capacity must be >= 1";
  let t =
    {
      name;
      dummy;
      make;
      stripes =
        Array.init stripes (fun _ ->
            { lock = Atomic.make false; slots = Array.make capacity dummy; top = 0 });
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }
  in
  registry :=
    (fun () ->
      {
        st_name = t.name;
        st_hits = Atomic.get t.hits;
        st_misses = Atomic.get t.misses;
        st_free = free_count t;
      })
    :: !registry;
  t

(* Stripe of the calling worker: lanes map round-robin onto stripes, and
   callers outside any region (the load generator, tests) share stripe 0. *)
let stripe_of t =
  match Engine.current_lane () with
  | Some lane when lane >= 0 -> t.stripes.(lane mod Array.length t.stripes)
  | _ -> t.stripes.(0)

(* Slow path for a locally empty stripe: scan the other stripes for a
   free object before giving up on the freelist.  Producer/consumer
   topologies free from a different lane than they allocate in (the load
   generator acquires on stripe 0, the tail stage releases to its lane's
   stripe), so without stealing the freelist would fill up on one side
   while the other side misses forever. *)
let steal t home =
  let n = Array.length t.stripes in
  let rec scan i =
    if i >= n then begin
      Atomic.incr t.misses;
      t.make ()
    end
    else begin
      let st = t.stripes.(i) in
      if st == home then scan (i + 1)
      else begin
        lock st;
        if st.top > 0 then begin
          let j = st.top - 1 in
          let v = st.slots.(j) in
          st.slots.(j) <- t.dummy;
          st.top <- j;
          unlock st;
          Atomic.incr t.hits;
          v
        end
        else begin
          unlock st;
          scan (i + 1)
        end
      end
    end
  in
  scan 0

let acquire t =
  let st = stripe_of t in
  lock st;
  if st.top > 0 then begin
    let i = st.top - 1 in
    let v = st.slots.(i) in
    st.slots.(i) <- t.dummy;
    st.top <- i;
    unlock st;
    Atomic.incr t.hits;
    v
  end
  else begin
    unlock st;
    steal t st
  end

let release t v =
  let st = stripe_of t in
  lock st;
  if st.top < Array.length st.slots then begin
    st.slots.(st.top) <- v;
    st.top <- st.top + 1;
    unlock st
  end
  else
    (* Stripe full: drop the object back to the GC.  Harmless — the pool
       only bounds how much it retains, never how much exists. *)
    unlock st

let name t = t.name
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

(* ---- Global accounting (all pools, any element type) ---- *)

let stats () = List.rev_map (fun f -> f ()) !registry

let total_hits () = List.fold_left (fun acc s -> acc + s.st_hits) 0 (stats ())
let total_misses () = List.fold_left (fun acc s -> acc + s.st_misses) 0 (stats ())

(* Raise a cumulative registry counter to [total] (counters are monotonic;
   registry swaps restart the series from zero, which is the Prometheus
   contract for process restarts). *)
let publish_total c total =
  let cur = Metrics.counter_value c in
  if total > cur then Metrics.inc_by c (total - cur)

(* Push pool hit/miss totals and the process's cumulative minor-word count
   into the metrics registry.  Cold path: the dashboard refresher calls it
   once per render. *)
let sample_allocs () =
  if Metrics.enabled () then begin
    let reg = Metrics.current () in
    publish_total
      (Metrics.counter reg "parcae_alloc_minor_words_total"
         ~help:"Minor words allocated by this process (Gc.minor_words).")
      (int_of_float (Gc.quick_stat ()).Gc.minor_words);
    List.iter
      (fun s ->
        let labels = [ ("pool", s.st_name) ] in
        publish_total
          (Metrics.counter reg "parcae_pool_hits_total" ~labels
             ~help:"Objects served from a pool freelist (no allocation).")
          s.st_hits;
        publish_total
          (Metrics.counter reg "parcae_pool_misses_total" ~labels
             ~help:"Pool acquires that fell back to the allocator.")
          s.st_misses;
        Metrics.set_gauge
          (Metrics.gauge reg "parcae_pool_free" ~labels
             ~help:"Objects currently held by a pool freelist.")
          (float_of_int s.st_free))
      (stats ())
  end
