(** Pipeline-stage helpers implementing the pause/flush protocol of the
    paper's Section 4.6 for API-level (hand-written) parallelizations.

    Stages communicate through shared channels carrying work items or one
    of two sentinels: [Flush] (a pause is in progress; stripped on reset)
    and [Eos] (end of stream; persists across reconfigurations).  A lane
    that consumes a sentinel puts it back for its sibling lanes; the
    {e last} lane of a stage to exit forwards the sentinel downstream,
    which guarantees every in-flight item precedes the sentinel — the
    ordering hazard of the paper's Section 7.2.2 cannot occur. *)

type 'a msg =
  | Item of 'a
  | Flush  (** pause sentinel *)
  | Eos  (** end of stream *)

val send : 'a msg Parcae_platform.Chan.t -> 'a -> unit
(** Send a work item. *)

val load : 'a Parcae_platform.Chan.t -> unit -> float
(** Queue occupancy as a load callback. *)

val reset_channel : 'a msg Parcae_platform.Chan.t -> unit
(** Strip pause sentinels, keeping work items and any [Eos]. *)

val inject_flush : 'a msg Parcae_platform.Chan.t -> unit
(** Inject a pause sentinel (typically from a region's [on_pause]
    callback, to wake lanes blocked on an empty work queue).  Sentinel
    sends bypass channel capacity so the protocol can never deadlock. *)

val inject_eos : 'a msg Parcae_platform.Chan.t -> unit
(** Inject an end-of-stream sentinel (the load generator does this after
    the last request). *)

type sentinel = S_flush | S_eos

val forward_to : 'a msg Parcae_platform.Chan.t -> sentinel -> unit
(** Forward a sentinel into a downstream channel. *)

type 'a stage_handle = {
  task : Task.t;
  reset : unit -> unit;  (** clear exit bookkeeping between pause/resume *)
}

val stage :
  ?ttype:Task.ttype ->
  ?poll:bool ->
  ?load:(unit -> float) ->
  ?init:(unit -> unit) ->
  ?nested:Task.nested_choice list ->
  name:string ->
  input:'a msg Parcae_platform.Chan.t ->
  forward:(sentinel -> unit) ->
  (Task.ctx -> 'a -> Task_status.t) ->
  'a stage_handle
(** A pipeline stage: receives items from [input], processes them with the
    body, exits on a sentinel.  [poll] makes the stage check [get_status]
    before blocking on input — master stages use this.  [forward] is
    invoked once, by the last exiting lane, to propagate the sentinel
    downstream (pass [fun _ -> ()] for sinks). *)

val drain_stage :
  ?ttype:Task.ttype ->
  ?poll:bool ->
  ?max_batch:int ->
  ?load:(unit -> float) ->
  ?init:(unit -> unit) ->
  ?nested:Task.nested_choice list ->
  ?next:'a msg Parcae_platform.Chan.t ->
  ?span_of:('a -> Parcae_obs.Span.span) ->
  ?span_clock:(unit -> int) ->
  name:string ->
  input:'a msg Parcae_platform.Chan.t ->
  forward:(sentinel -> unit) ->
  (Task.ctx -> 'a -> Task_status.t) ->
  'a stage_handle
(** A batch-draining stage: each invocation claims up to [max_batch]
    (default 32) messages with one [recv_batch] — never more than this
    lane's share of the input's current depth (depth / DoP), so batching
    cannot starve sibling lanes and light load degenerates to per-item
    behaviour — runs the body on each item, and (when [next] is given)
    forwards the processed items downstream with one [send_batch],
    reusing the received list cells and [Item] boxes so the stage
    boundary allocates nothing on the fast path.  The body must not send
    the item itself when [next] is used.  Reports the processed count
    through [ctx.items] so Decima still counts per-item instances.  A
    sentinel or a pause cuts the claim: the unprocessed suffix is
    returned to the input (surviving reconfiguration), the processed
    prefix is flushed downstream before the exit is counted, and the
    sentinel protocol proceeds exactly as in {!stage}.

    When both [span_of] (item → its request span) and [span_clock] (a
    non-allocating monotonic-ns read, typically [fun () -> Engine.time
    eng]) are given, each body call is bracketed with
    {!Parcae_obs.Span.enter}/{!Parcae_obs.Span.exit} so per-stage compute
    and inter-stage waits land on the request's span; with no collector
    installed this costs one atomic load per item.
    @raise Invalid_argument if [max_batch < 1]. *)

val source :
  ?ttype:Task.ttype ->
  ?load:(unit -> float) ->
  ?init:(unit -> unit) ->
  name:string ->
  forward:(sentinel -> unit) ->
  (Task.ctx -> Task_status.t) ->
  'a stage_handle
(** A source task: generates work with no input channel; the body returns
    [Iterating] after emitting an item and [Complete] at end of stream. *)

val make_reset :
  stages:'a stage_handle list -> channels:'b msg Parcae_platform.Chan.t list -> unit -> unit
(** Combine stage resets and channel sentinel-stripping into a region
    [on_reset] callback. *)
