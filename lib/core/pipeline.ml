(* Pipeline-stage helpers implementing the pause/flush protocol of
   Section 4.6 for API-level (hand-written) parallelizations.

   Stages communicate through shared channels carrying work items or one of
   two sentinels: [Flush] (a pause is in progress) and [Eos] (end of
   stream).  The protocol mirrors the paper's ferret/x264 ports
   (Figure 5.7), where FiniCB callbacks enqueue sentinel NULL tokens:

   - The master task polls [get_status] at the top of each instance
     (Section 4.6: master tasks query Morta directly).
   - A pause (or end-of-stream) reaches a stage as a sentinel in its input
     channel.  The receiving lane puts the sentinel back for its sibling
     lanes and exits.
   - The *last* lane of a stage to exit forwards the sentinel downstream.
     Forwarding from the last lane — rather than from every lane's fini —
     guarantees that every in-flight item of this stage has been sent
     downstream before the sentinel, so a downstream stage never observes
     the sentinel ahead of real data (the ordering hazard of
     Section 7.2.2).
   - Between pause and resume, the runtime strips leftover [Flush]
     sentinels from the channels ([reset_channel]) while keeping pending
     work items and any [Eos], and resets the per-stage exit counters. *)

module Chan = Parcae_platform.Chan
module Span = Parcae_obs.Span

type 'a msg =
  | Item of 'a
  | Flush  (* pause sentinel: stripped on reset *)
  | Eos  (* end of stream: persists across reconfigurations *)

(* Send a work item. *)
let send ch v = Chan.send ch (Item v)

(* Queue occupancy counting only real items; the natural load callback. *)
let load ch () =
  float_of_int (Chan.length ch)

(* Remove pause sentinels (only) from a channel. *)
let reset_channel ch =
  ignore (Chan.filter ch (function Flush -> false | Item _ | Eos -> true) : int)

(* Inject a pause sentinel, waking any lane blocked on an empty channel;
   the region's [on_pause] callback typically does this for the master
   stage's input queue.  Sentinel sends bypass channel capacity so the
   protocol can never deadlock on a full channel. *)
let inject_flush ch = Chan.force_send ch Flush

(* Inject an end-of-stream sentinel (the load generator does this after the
   last request). *)
let inject_eos ch = Chan.force_send ch Eos

type sentinel = S_flush | S_eos

(* Forward a sentinel into a downstream channel. *)
let forward_to ch = function
  | S_flush -> Chan.force_send ch Flush
  | S_eos -> Chan.force_send ch Eos

type 'a stage_handle = {
  task : Task.t;
  reset : unit -> unit;  (* clear exit bookkeeping between pause and resume *)
}

(* Shared exit bookkeeping: count exiting lanes; the last one forwards the
   strongest sentinel seen ([Eos] wins over [Flush]).  Atomics, not refs:
   on the native backend lanes exit concurrently, and the eos flag must be
   published before the increment that elects the forwarder (SC atomics)
   so the last lane cannot miss another lane's Eos. *)
let make_exit ~forward =
  let exited = Atomic.make 0 in
  let saw_eos = Atomic.make false in
  let exit_path (ctx : Task.ctx) ?(eos = false) status =
    if eos then Atomic.set saw_eos true;
    let n = Atomic.fetch_and_add exited 1 + 1 in
    if n >= ctx.Task.dop then forward (if Atomic.get saw_eos then S_eos else S_flush);
    status
  in
  let reset () =
    Atomic.set exited 0;
    Atomic.set saw_eos false
  in
  (exit_path, reset)

(* Build a pipeline stage task.

   [poll] — poll [get_status] before blocking on input (master stages).
   [input] — the stage's input channel.
   [forward] — invoked once, by the last exiting lane, to propagate the
   sentinel downstream (e.g. [forward_to q2]); pass [ignore] for sinks.
   [body ctx v] — process one work item. *)
let stage ?(ttype = Task.Par) ?(poll = false) ?load ?init ?nested ~name ~input
    ~forward (body : Task.ctx -> 'a -> Task_status.t) : 'a stage_handle =
  let exit_path, reset = make_exit ~forward in
  let task_body (ctx : Task.ctx) =
    if poll && ctx.Task.get_status () = Task_status.Paused then exit_path ctx Task_status.Paused
    else
      match Chan.recv input with
      | Flush ->
          (* Put the sentinel back for sibling lanes before exiting. *)
          Chan.force_send input Flush;
          let status =
            match ctx.Task.get_status () with
            | Task_status.Paused -> Task_status.Paused
            | _ -> Task_status.Complete
          in
          exit_path ctx status
      | Eos ->
          Chan.force_send input Eos;
          exit_path ctx ~eos:true Task_status.Complete
      | Item v -> (
          match body ctx v with
          | Task_status.Iterating -> Task_status.Iterating
          | Task_status.Complete -> exit_path ctx ~eos:true Task_status.Complete
          | Task_status.Paused -> exit_path ctx Task_status.Paused)
  in
  let task = Task.create ~ttype ?load ?init ?nested ~name task_body in
  { task; reset }

(* Build a batch-draining pipeline stage (DESIGN.md section 14).

   Like [stage], but each invocation claims up to [max_batch] messages in
   one [Chan.recv_batch] — one synchronization charge for the whole claim,
   the serve-side mirror of the load generator's [send_batch] — and, when
   [next] is given, forwards the processed items downstream with one
   [Chan.send_batch].  The batch size adapts to the input's current depth
   divided by the stage's DoP — claiming only this lane's share of the
   backlog, so batching never steals parallelism from sibling lanes (a
   greedy claim would let one lane serialize work the team could overlap)
   and a slow trickle degenerates to per-item behaviour.  [max_batch]
   additionally caps the claim to bound the latency a
   claimed-but-unprocessed item can suffer.

   Allocation discipline: on the fast path (a claim of plain items, every
   body call Iterating) the *same* list cells and [Item] boxes received
   from [recv_batch] are handed to [send_batch] — the stage boundary adds
   zero words per item.  The slow paths (sentinel mid-claim, body exit,
   pause poll between items) allocate a prefix list once per exit.

   Claims never straddle a reconfiguration barrier: a sentinel cuts the
   claim where it stands, everything behind it is force-sent back to the
   input (items first re-ordered behind the sentinel exactly as [stage]'s
   single-item put-back does), and the processed prefix is flushed
   downstream *before* this lane's exit is counted, preserving the
   last-lane-forwards ordering invariant.  A pause observed between items
   (with [poll]) likewise returns the claimed-but-unprocessed suffix to
   the input channel, where [reset_channel] keeps items across the DoP
   change. *)
let drain_stage ?(ttype = Task.Par) ?(poll = false) ?(max_batch = 4) ?load ?init
    ?nested ?next ?span_of ?span_clock ~name ~input ~forward
    (body : Task.ctx -> 'a -> Task_status.t) : 'a stage_handle =
  if max_batch < 1 then invalid_arg "Pipeline.drain_stage: max_batch must be >= 1";
  (* Span stamping wraps the body only when a builder supplied both the
     item→span projection and a clock (builders close over [Engine.time
     eng] — a field read, not the allocating ambient-now effect).  With no
     collector installed the wrapper costs one atomic load per item; with
     one installed it is pure int mutation on the pooled span.  The token
     returned by [enter] makes the trailing [exit] a no-op if the request
     completed and its record was re-allocated inside the body. *)
  let body =
    match (span_of, span_clock) with
    | Some span_of, Some clock ->
        fun ctx v ->
          if Span.enabled () then begin
            let sp = span_of v in
            let tok = Span.enter sp ~now:(clock ()) in
            let st = body ctx v in
            Span.exit sp ~token:tok ~now:(clock ());
            st
          end
          else body ctx v
    | _ -> body
  in
  let exit_path, reset = make_exit ~forward in
  let flush_downstream msgs =
    match next with Some ch -> if msgs <> [] then Chan.send_batch ch msgs | None -> ()
  in
  (* First [n] messages of [msgs]: the processed prefix a slow path must
     flush downstream before exiting. *)
  let prefix msgs n =
    let rec take acc k = function
      | m :: tl when k > 0 -> take (m :: acc) (k - 1) tl
      | _ -> List.rev acc
    in
    take [] n msgs
  in
  (* Return claimed-but-unprocessed messages to the input.  [force_send]
     appends, so survivors line up behind the sentinel that cut the claim
     (reset strips the sentinel and keeps them) — same re-ordering window
     the single-item protocol already has. *)
  let give_back msgs = List.iter (fun m -> Chan.force_send input m) msgs in
  let task_body (ctx : Task.ctx) =
    if poll && ctx.Task.get_status () = Task_status.Paused then exit_path ctx Task_status.Paused
    else begin
      let b =
        match Chan.length input with
        | 0 -> 1 (* empty: recv_batch blocks, then delivers what arrived *)
        | d ->
            (* Share the backlog with sibling lanes: a greedy claim would
               let one lane serialize work the whole team could run in
               parallel, so batch only the surplus beyond one item per
               lane. *)
            let share = d / ctx.Task.dop in
            if share < 1 then 1 else if share > max_batch then max_batch else share
      in
      if b = 1 then begin
        (* Singleton claim — the common case under light load or many
           lanes.  Taking [recv]'s single message avoids building and
           tearing down a one-element list per item; the received [Item]
           box itself is forwarded downstream. *)
        match Chan.recv input with
        | (Flush | Eos) as s -> (
            Chan.force_send input s;
            ctx.Task.items <- 0;
            match s with
            | Eos -> exit_path ctx ~eos:true Task_status.Complete
            | _ -> (
                match ctx.Task.get_status () with
                | Task_status.Paused -> exit_path ctx Task_status.Paused
                | _ -> exit_path ctx Task_status.Complete))
        | Item v as m -> (
            match body ctx v with
            | Task_status.Iterating ->
                ctx.Task.items <- 1;
                (match next with Some ch -> Chan.send ch m | None -> ());
                Task_status.Iterating
            | status -> (
                ctx.Task.items <- 1;
                (match next with Some ch -> Chan.send ch m | None -> ());
                match status with
                | Task_status.Complete -> exit_path ctx ~eos:true Task_status.Complete
                | _ -> exit_path ctx Task_status.Paused))
      end
      else begin
      let msgs = Chan.recv_batch ~max:b input in
      let rec go n = function
        | [] ->
            (* Clean claim: every cell processed; forward the received
               list itself downstream. *)
            ctx.Task.items <- n;
            flush_downstream msgs;
            Task_status.Iterating
        | (Flush | Eos) :: rest as cut -> (
            (* Put the sentinel back for sibling lanes, return anything
               claimed behind it, flush our prefix, then exit. *)
            let s = List.hd cut in
            Chan.force_send input s;
            give_back rest;
            ctx.Task.items <- n;
            flush_downstream (prefix msgs n);
            match s with
            | Eos -> exit_path ctx ~eos:true Task_status.Complete
            | _ ->
                let status =
                  match ctx.Task.get_status () with
                  | Task_status.Paused -> Task_status.Paused
                  | _ -> Task_status.Complete
                in
                exit_path ctx status)
        | Item v :: rest -> (
            match body ctx v with
            | Task_status.Iterating ->
                if poll && rest <> [] && ctx.Task.get_status () = Task_status.Paused
                then begin
                  (* Pause mid-claim: the unprocessed suffix survives in
                     the input channel across the reconfiguration. *)
                  give_back rest;
                  ctx.Task.items <- n + 1;
                  flush_downstream (prefix msgs (n + 1));
                  exit_path ctx Task_status.Paused
                end
                else go (n + 1) rest
            | status ->
                give_back rest;
                ctx.Task.items <- n + 1;
                flush_downstream (prefix msgs (n + 1));
                (match status with
                | Task_status.Complete -> exit_path ctx ~eos:true Task_status.Complete
                | _ -> exit_path ctx Task_status.Paused))
      in
      go 0 msgs
      end
    end
  in
  let task = Task.create ~ttype ?load ?init ?nested ~name task_body in
  { task; reset }

(* Build a source task: it generates work (no input channel) and signals
   end-of-stream / pause downstream via [forward].  [body] returns
   [Iterating] after emitting an item and [Complete] when the stream
   ends. *)
let source ?(ttype = Task.Seq) ?load ?init ~name ~forward
    (body : Task.ctx -> Task_status.t) : 'a stage_handle =
  let exit_path, reset = make_exit ~forward in
  let task_body (ctx : Task.ctx) =
    match ctx.Task.get_status () with
    | Task_status.Paused -> exit_path ctx Task_status.Paused
    | _ -> (
        match body ctx with
        | Task_status.Iterating -> Task_status.Iterating
        | Task_status.Complete -> exit_path ctx ~eos:true Task_status.Complete
        | Task_status.Paused -> exit_path ctx Task_status.Paused)
  in
  let task = Task.create ~ttype ?load ?init ~name task_body in
  { task; reset }

(* Combine stage resets and channel sentinel-stripping into a region
   [on_reset] callback. *)
let make_reset ~stages ~channels () =
  List.iter (fun s -> s.reset ()) stages;
  List.iter (fun ch -> reset_channel ch) channels
