(* Pipeline-stage helpers implementing the pause/flush protocol of
   Section 4.6 for API-level (hand-written) parallelizations.

   Stages communicate through shared channels carrying work items or one of
   two sentinels: [Flush] (a pause is in progress) and [Eos] (end of
   stream).  The protocol mirrors the paper's ferret/x264 ports
   (Figure 5.7), where FiniCB callbacks enqueue sentinel NULL tokens:

   - The master task polls [get_status] at the top of each instance
     (Section 4.6: master tasks query Morta directly).
   - A pause (or end-of-stream) reaches a stage as a sentinel in its input
     channel.  The receiving lane puts the sentinel back for its sibling
     lanes and exits.
   - The *last* lane of a stage to exit forwards the sentinel downstream.
     Forwarding from the last lane — rather than from every lane's fini —
     guarantees that every in-flight item of this stage has been sent
     downstream before the sentinel, so a downstream stage never observes
     the sentinel ahead of real data (the ordering hazard of
     Section 7.2.2).
   - Between pause and resume, the runtime strips leftover [Flush]
     sentinels from the channels ([reset_channel]) while keeping pending
     work items and any [Eos], and resets the per-stage exit counters. *)

module Chan = Parcae_platform.Chan

type 'a msg =
  | Item of 'a
  | Flush  (* pause sentinel: stripped on reset *)
  | Eos  (* end of stream: persists across reconfigurations *)

(* Send a work item. *)
let send ch v = Chan.send ch (Item v)

(* Queue occupancy counting only real items; the natural load callback. *)
let load ch () =
  float_of_int (Chan.length ch)

(* Remove pause sentinels (only) from a channel. *)
let reset_channel ch =
  ignore (Chan.filter ch (function Flush -> false | Item _ | Eos -> true) : int)

(* Inject a pause sentinel, waking any lane blocked on an empty channel;
   the region's [on_pause] callback typically does this for the master
   stage's input queue.  Sentinel sends bypass channel capacity so the
   protocol can never deadlock on a full channel. *)
let inject_flush ch = Chan.force_send ch Flush

(* Inject an end-of-stream sentinel (the load generator does this after the
   last request). *)
let inject_eos ch = Chan.force_send ch Eos

type sentinel = S_flush | S_eos

(* Forward a sentinel into a downstream channel. *)
let forward_to ch = function
  | S_flush -> Chan.force_send ch Flush
  | S_eos -> Chan.force_send ch Eos

type 'a stage_handle = {
  task : Task.t;
  reset : unit -> unit;  (* clear exit bookkeeping between pause and resume *)
}

(* Shared exit bookkeeping: count exiting lanes; the last one forwards the
   strongest sentinel seen ([Eos] wins over [Flush]).  Atomics, not refs:
   on the native backend lanes exit concurrently, and the eos flag must be
   published before the increment that elects the forwarder (SC atomics)
   so the last lane cannot miss another lane's Eos. *)
let make_exit ~forward =
  let exited = Atomic.make 0 in
  let saw_eos = Atomic.make false in
  let exit_path (ctx : Task.ctx) ?(eos = false) status =
    if eos then Atomic.set saw_eos true;
    let n = Atomic.fetch_and_add exited 1 + 1 in
    if n >= ctx.Task.dop then forward (if Atomic.get saw_eos then S_eos else S_flush);
    status
  in
  let reset () =
    Atomic.set exited 0;
    Atomic.set saw_eos false
  in
  (exit_path, reset)

(* Build a pipeline stage task.

   [poll] — poll [get_status] before blocking on input (master stages).
   [input] — the stage's input channel.
   [forward] — invoked once, by the last exiting lane, to propagate the
   sentinel downstream (e.g. [forward_to q2]); pass [ignore] for sinks.
   [body ctx v] — process one work item. *)
let stage ?(ttype = Task.Par) ?(poll = false) ?load ?init ?nested ~name ~input
    ~forward (body : Task.ctx -> 'a -> Task_status.t) : 'a stage_handle =
  let exit_path, reset = make_exit ~forward in
  let task_body (ctx : Task.ctx) =
    if poll && ctx.Task.get_status () = Task_status.Paused then exit_path ctx Task_status.Paused
    else
      match Chan.recv input with
      | Flush ->
          (* Put the sentinel back for sibling lanes before exiting. *)
          Chan.force_send input Flush;
          let status =
            match ctx.Task.get_status () with
            | Task_status.Paused -> Task_status.Paused
            | _ -> Task_status.Complete
          in
          exit_path ctx status
      | Eos ->
          Chan.force_send input Eos;
          exit_path ctx ~eos:true Task_status.Complete
      | Item v -> (
          match body ctx v with
          | Task_status.Iterating -> Task_status.Iterating
          | Task_status.Complete -> exit_path ctx ~eos:true Task_status.Complete
          | Task_status.Paused -> exit_path ctx Task_status.Paused)
  in
  let task = Task.create ~ttype ?load ?init ?nested ~name task_body in
  { task; reset }

(* Build a source task: it generates work (no input channel) and signals
   end-of-stream / pause downstream via [forward].  [body] returns
   [Iterating] after emitting an item and [Complete] when the stream
   ends. *)
let source ?(ttype = Task.Seq) ?load ?init ~name ~forward
    (body : Task.ctx -> Task_status.t) : 'a stage_handle =
  let exit_path, reset = make_exit ~forward in
  let task_body (ctx : Task.ctx) =
    match ctx.Task.get_status () with
    | Task_status.Paused -> exit_path ctx Task_status.Paused
    | _ -> (
        match body ctx with
        | Task_status.Iterating -> Task_status.Iterating
        | Task_status.Complete -> exit_path ctx ~eos:true Task_status.Complete
        | Task_status.Paused -> exit_path ctx Task_status.Paused)
  in
  let task = Task.create ~ttype ?load ?init ~name task_body in
  { task; reset }

(* Combine stage resets and channel sentinel-stripping into a region
   [on_reset] callback. *)
let make_reset ~stages ~channels () =
  List.iter (fun s -> s.reset ()) stages;
  List.iter (fun ch -> reset_channel ch) channels
