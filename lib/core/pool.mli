(** Striped object pools for the serve path (DESIGN.md section 14).

    A pool recycles objects through per-lane freelists backed by fixed
    arrays, so steady-state acquire/release allocates nothing.  Misses
    (empty freelist) fall back to the [make] callback; releases into a
    full stripe drop the object back to the GC.  The pool holds no
    reference to objects in flight, so an object lost to a failed task is
    ordinary garbage — the pool cannot leak. *)

type 'a t

val create : ?stripes:int -> ?capacity:int -> name:string -> dummy:'a -> (unit -> 'a) -> 'a t
(** [create ~name ~dummy make] builds a pool of [stripes] freelists
    (default 8) of [capacity] slots each (default 512).  [dummy] fills
    vacated slots so the pool never pins a released-then-acquired object;
    [make] services misses.
    @raise Invalid_argument if [stripes] or [capacity] is not positive. *)

val acquire : 'a t -> 'a
(** Pop from the caller's stripe; when it is empty, steal from the other
    stripes (producer and consumer lanes need not match) and only call
    [make] (counting a miss) when every stripe is dry.  Allocation-free
    on a hit. *)

val release : 'a t -> 'a -> unit
(** Push back into the caller's stripe; drops the object to the GC when
    the stripe is full.  Allocation-free.  The caller must not use the
    object afterwards — it may be handed to another lane immediately. *)

val name : 'a t -> string
val hits : 'a t -> int
val misses : 'a t -> int

val free_count : 'a t -> int
(** Objects currently held across all stripes. *)

(** {1 Global accounting}

    Every pool self-registers at creation; these enumerate all of them,
    across element types. *)

type stats = { st_name : string; st_hits : int; st_misses : int; st_free : int }

val stats : unit -> stats list
val total_hits : unit -> int
val total_misses : unit -> int

val sample_allocs : unit -> unit
(** Push [parcae_alloc_minor_words_total], [parcae_pool_hits_total],
    [parcae_pool_misses_total] and [parcae_pool_free] into the installed
    metrics registry (no-op when none is).  Cold path — call at render
    frequency, not per request. *)
