(* A textual frontend for the loop IR: parse ".loop" source into a
   validated [Loop.t].  This is the sequential-source entry of the paper's
   Path-2 workflow (Figure 3.2): users write the region in a small
   imperative syntax and Nona compiles it.

   Syntax (one statement per line; '#' starts a comment):

     loop NAME (count N | while) {
       array data[SIZE] = zero | iota | fill C | hash | { v, v, ... }
       i   = induction FROM step STEP
       acc = phi INIT carry next          # 'next' may be defined later
       x   = load data[i]
       y   = add x, 0x5a5a                # add sub mul div rem min max
                                          # xor and or shl shr eq ne lt le
       store data[i], y
       work 30000                         # consume operand ns of CPU
       r   = call rand(0) commutative     # rand acc insert emit
       call emit(y)
       break_if y                         # exit when operand is non-zero
       liveout acc
     }

   Operands are integer literals (decimal, hex, negative) or register
   names.  Registers are single-assignment; phi carries resolve in a
   second pass so recurrences read naturally. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* A located parse error: "FILE:LINE: message". *)
let err file line fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s:%d: %s" file line m))) fmt

(* ------------------------------- Lexer ------------------------------- *)

type token =
  | Ident of string
  | Int of int
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Equals
  | Comma
  | Eof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize ~file src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = '{' then (push Lbrace; incr i)
    else if c = '}' then (push Rbrace; incr i)
    else if c = '[' then (push Lbracket; incr i)
    else if c = ']' then (push Rbracket; incr i)
    else if c = '=' then (push Equals; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let start = !i in
      if c = '-' then incr i;
      if !i < n && !i + 1 < n && src.[!i] = '0' && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        i := !i + 2;
        while !i < n && (is_ident_char src.[!i]) do
          incr i
        done
      end
      else
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          incr i
        done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> push (Int v)
      | None -> err file !line "bad integer literal %S" text
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (Ident (String.sub src start (!i - start)))
    end
    else err file !line "unexpected character %C" c
  done;
  push Eof;
  List.rev !tokens

(* ------------------------------ Parser ------------------------------- *)

type stream = { file : string; mutable toks : (token * int) list }

let peek s = match s.toks with [] -> (Eof, 0) | t :: _ -> t

let next s =
  match s.toks with
  | [] -> (Eof, 0)
  | t :: rest ->
      s.toks <- rest;
      t

let token_to_string = function
  | Ident x -> Printf.sprintf "identifier %S" x
  | Int v -> Printf.sprintf "integer %d" v
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Equals -> "'='"
  | Comma -> "','"
  | Eof -> "end of input"

let expect s tok what =
  let t, line = next s in
  if t <> tok then err s.file line "expected %s, got %s" what (token_to_string t)

let expect_ident s what =
  match next s with
  | Ident x, _ -> x
  | t, line -> err s.file line "expected %s, got %s" what (token_to_string t)

let expect_int s what =
  match next s with
  | Int v, _ -> v
  | t, line -> err s.file line "expected %s, got %s" what (token_to_string t)

let binop_of_name = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "div" -> Some Instr.Div
  | "rem" -> Some Instr.Rem
  | "min" -> Some Instr.Min
  | "max" -> Some Instr.Max
  | "xor" -> Some Instr.Xor
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | "eq" -> Some Instr.Eq
  | "ne" -> Some Instr.Ne
  | "lt" -> Some Instr.Lt
  | "le" -> Some Instr.Le
  | _ -> None

(* Register environment: name -> Builder register, plus deferred phi-carry
   fixups resolved after the body is parsed. *)
type env = {
  b : Builder.t;
  file : string;
  regs : (string, Instr.reg) Hashtbl.t;
  mutable carries : (string * Instr.reg * int) list;  (* (carry name, phi, line) *)
}

let define env line name r =
  if Hashtbl.mem env.regs name then err env.file line "register %s defined twice" name;
  Hashtbl.replace env.regs name r

let operand env line = function
  | Int v, _ -> Instr.Const v
  | Ident x, _ -> (
      match Hashtbl.find_opt env.regs x with
      | Some r -> Instr.Reg r
      | None -> err env.file line "unknown register %s" x)
  | t, l -> err env.file l "expected an operand, got %s" (token_to_string t)

let parse_operand env s =
  let t, line = next s in
  operand env line (t, line)

(* array NAME [ SIZE ] = zero | iota | fill C | hash *)
let parse_array env s =
  let name = expect_ident s "array name" in
  expect s Lbracket "'['";
  let size = expect_int s "array size" in
  if size <= 0 then fail "%s: array %s: size must be positive" s.file name;
  expect s Rbracket "']'";
  expect s Equals "'='";
  let kind, kline = next s in
  let contents =
    match kind with
    | Ident "zero" -> Array.make size 0
    | Ident "iota" -> Array.init size (fun i -> i)
    | Ident "fill" ->
        let c = expect_int s "fill value" in
        Array.make size c
    | Ident "hash" -> Array.init size (fun i -> i * 2654435761 land 0xfffff)
    | Lbrace ->
        (* explicit element list: { v, v, ... } *)
        let values = ref [] in
        let rec elems () =
          match peek s with
          | Rbrace, _ -> ignore (next s)
          | _ ->
              values := expect_int s "array element" :: !values;
              (match peek s with
              | Comma, _ ->
                  ignore (next s);
                  elems ()
              | Rbrace, _ -> ignore (next s)
              | t, l -> err s.file l "expected ',' or '}', got %s" (token_to_string t))
        in
        elems ();
        let values = Array.of_list (List.rev !values) in
        if Array.length values <> size then
          err s.file kline "array %s declares %d elements but lists %d" name size
            (Array.length values);
        values
    | t -> err s.file kline "expected zero|iota|fill|hash|{...}, got %s" (token_to_string t)
  in
  Builder.array env.b name contents

(* A statement that defines a register: NAME = ... *)
let parse_definition env s name line =
  expect s Equals "'='";
  let op, opline = next s in
  match op with
  | Ident "induction" ->
      let from = expect_int s "induction start" in
      (match next s with
      | Ident "step", _ -> ()
      | t, l -> err s.file l "expected 'step', got %s" (token_to_string t));
      let step = expect_int s "induction step" in
      define env line name (Builder.induction env.b ~from ~step)
  | Ident "phi" ->
      let init = expect_int s "phi initial value" in
      (match next s with
      | Ident "carry", _ -> ()
      | t, l -> err s.file l "expected 'carry', got %s" (token_to_string t));
      let carry_name = expect_ident s "carry register" in
      let r = Builder.phi env.b ~init:(Instr.Const init) in
      env.carries <- (carry_name, r, line) :: env.carries;
      define env line name r
  | Ident "load" ->
      let arr = expect_ident s "array name" in
      expect s Lbracket "'['";
      let idx = parse_operand env s in
      expect s Rbracket "']'";
      define env line name (Builder.load env.b arr idx)
  | Ident "call" ->
      let fn = expect_ident s "function name" in
      expect s Lparen "'('";
      let arg = parse_operand env s in
      expect s Rparen "')'";
      let commutative =
        match peek s with
        | Ident "commutative", _ ->
            ignore (next s);
            true
        | _ -> false
      in
      let r = Option.get (Builder.call ~commutative ~returns:true env.b fn arg) in
      define env line name r
  | Ident opname -> (
      match binop_of_name opname with
      | Some bop ->
          let a = parse_operand env s in
          expect s Comma "','";
          let b' = parse_operand env s in
          define env line name (Builder.binop env.b bop a b')
      | None -> err s.file opline "unknown operation %s" opname)
  | t -> err s.file opline "expected an operation, got %s" (token_to_string t)

let parse_statement env s =
  let t, line = next s in
  Builder.at env.b (Some { Loop.loc_file = s.file; loc_line = line });
  match t with
  | Ident "array" -> parse_array env s
  | Ident "store" ->
      let arr = expect_ident s "array name" in
      expect s Lbracket "'['";
      let idx = parse_operand env s in
      expect s Rbracket "']'";
      expect s Comma "','";
      let v = parse_operand env s in
      Builder.store env.b arr idx v
  | Ident "work" ->
      let amount = parse_operand env s in
      Builder.work env.b amount
  | Ident "call" ->
      let fn = expect_ident s "function name" in
      expect s Lparen "'('";
      let arg = parse_operand env s in
      expect s Rparen "')'";
      let commutative =
        match peek s with
        | Ident "commutative", _ ->
            ignore (next s);
            true
        | _ -> false
      in
      ignore (Builder.call ~commutative ~returns:false env.b fn arg)
  | Ident "break_if" ->
      let cond = parse_operand env s in
      Builder.break_if env.b cond
  | Ident "liveout" -> (
      let name = expect_ident s "register" in
      match Hashtbl.find_opt env.regs name with
      | Some r -> Builder.live_out env.b r
      | None -> err env.file line "unknown register %s" name)
  | Ident name -> parse_definition env s name line
  | t -> err env.file line "expected a statement, got %s" (token_to_string t)

(* Parse a full loop from source text.  [file] labels error messages and
   the per-node locations recorded on the resulting loop. *)
let parse ?(file = "<input>") src =
  let s = { file; toks = tokenize ~file src } in
  (match next s with
  | Ident "loop", _ -> ()
  | t, l -> err file l "expected 'loop', got %s" (token_to_string t));
  let name = expect_ident s "loop name" in
  expect s Lparen "'('";
  let trip =
    match next s with
    | Ident "count", _ -> Loop.Count (expect_int s "trip count")
    | Ident "while", _ -> Loop.While
    | t, l -> err file l "expected count|while, got %s" (token_to_string t)
  in
  expect s Rparen "')'";
  expect s Lbrace "'{'";
  let env = { b = Builder.create name; file; regs = Hashtbl.create 16; carries = [] } in
  let rec stmts () =
    match peek s with
    | Rbrace, _ -> ignore (next s)
    | Eof, l -> err file l "missing '}'"
    | _ ->
        parse_statement env s;
        stmts ()
  in
  stmts ();
  (match next s with
  | Eof, _ -> ()
  | t, l -> err file l "trailing input: %s" (token_to_string t));
  (* Second pass: resolve phi carries. *)
  List.iter
    (fun (carry_name, phi, line) ->
      match Hashtbl.find_opt env.regs carry_name with
      | Some carry -> Builder.set_carry env.b ~phi ~carry
      | None -> err file line "carry register %s never defined" carry_name)
    env.carries;
  try Builder.finish ~trip env.b
  with Invalid_argument m -> fail "%s: %s" file m

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse ~file:path src

(* ----------------------------- Printer ------------------------------ *)

(* Render a loop back to parseable source.  [parse (to_source l)] yields a
   loop with identical semantics (registers are renamed canonically). *)
let to_source (loop : Loop.t) =
  let buf = Buffer.create 512 in
  let reg r = Printf.sprintf "r%d" r in
  let operand = function Instr.Const c -> string_of_int c | Instr.Reg r -> reg r in
  Buffer.add_string buf
    (Printf.sprintf "loop %s (%s) {\n" loop.Loop.name
       (match loop.Loop.trip with
       | Loop.Count n -> Printf.sprintf "count %d" n
       | Loop.While -> "while"));
  List.iter
    (fun (name, contents) ->
      (* Array contents are emitted element-wise only when they fit a
         recognizable initializer; otherwise as a fill of the first value
         would be lossy, so iota/zero/general arrays are detected. *)
      let n = Array.length contents in
      let all p = Array.for_all p contents in
      let init =
        if all (fun v -> v = 0) then "zero"
        else if contents = Array.init n (fun i -> i) then "iota"
        else if all (fun v -> v = contents.(0)) then Printf.sprintf "fill %d" contents.(0)
        else if contents = Array.init n (fun i -> i * 2654435761 land 0xfffff) then "hash"
        else
          Printf.sprintf "{ %s }"
            (String.concat ", " (Array.to_list (Array.map string_of_int contents)))
      in
      Buffer.add_string buf (Printf.sprintf "  array %s[%d] = %s\n" name n init))
    loop.Loop.arrays;
  (* Inductions print as induction statements (their carry add is part of
     the sugar); other phis print explicitly.  The recognizer mirrors the
     PDG library's induction detection but lives here to keep the IR
     library self-contained. *)
  let induction_of (p : Instr.phi) =
    match p.Instr.init with
    | Instr.Reg _ -> None
    | Instr.Const from -> (
        let def =
          List.find_opt
            (fun i -> match Instr.defs i with Some d -> d = p.Instr.carry | None -> false)
            loop.Loop.body
        in
        match def with
        | Some (Instr.Binop { op = Instr.Add; a = Instr.Reg r; b = Instr.Const c; _ })
          when r = p.Instr.pdst && c <> 0 ->
            Some (from, c)
        | Some (Instr.Binop { op = Instr.Add; a = Instr.Const c; b = Instr.Reg r; _ })
          when r = p.Instr.pdst && c <> 0 ->
            Some (from, c)
        | Some (Instr.Binop { op = Instr.Sub; a = Instr.Reg r; b = Instr.Const c; _ })
          when r = p.Instr.pdst && c <> 0 ->
            Some (from, -c)
        | _ -> None)
  in
  let induction_carry_defs =
    List.filter_map
      (fun (p : Instr.phi) -> if induction_of p <> None then Some p.Instr.carry else None)
      loop.Loop.phis
  in
  List.iter
    (fun (p : Instr.phi) ->
      match induction_of p with
      | Some (from, step) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s = induction %d step %d\n" (reg p.Instr.pdst) from step)
      | None ->
          let init =
            match p.Instr.init with
            | Instr.Const c -> c
            | Instr.Reg _ -> invalid_arg "Parser.to_source: non-constant phi init"
          in
          Buffer.add_string buf
            (Printf.sprintf "  %s = phi %d carry %s\n" (reg p.Instr.pdst) init (reg p.Instr.carry)))
    loop.Loop.phis;
  List.iter
    (fun instr ->
      let skip =
        (* the induction's carry add is implied by the sugar *)
        match Instr.defs instr with
        | Some d -> List.mem d induction_carry_defs
        | None -> false
      in
      if not skip then
        Buffer.add_string buf
          (match instr with
          | Instr.Binop { dst; op; a; b } ->
              Printf.sprintf "  %s = %s %s, %s\n" (reg dst) (Instr.binop_to_string op)
                (operand a) (operand b)
          | Instr.Load { dst; arr; idx } ->
              Printf.sprintf "  %s = load %s[%s]\n" (reg dst) arr (operand idx)
          | Instr.Store { arr; idx; v } ->
              Printf.sprintf "  store %s[%s], %s\n" arr (operand idx) (operand v)
          | Instr.Work { amount } -> Printf.sprintf "  work %s\n" (operand amount)
          | Instr.Call { dst; fn; arg; commutative } ->
              Printf.sprintf "  %s%s(%s)%s\n"
                (match dst with Some d -> Printf.sprintf "%s = call " (reg d) | None -> "call ")
                fn (operand arg)
                (if commutative then " commutative" else "")
          | Instr.Break_if { cond } -> Printf.sprintf "  break_if %s\n" (operand cond)))
    loop.Loop.body;
  List.iter (fun r -> Buffer.add_string buf (Printf.sprintf "  liveout %s\n" (reg r))) loop.Loop.live_out;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
