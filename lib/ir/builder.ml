(* A small fluent DSL for writing IR kernels.

     let b = Builder.create "dot" in
     let i = Builder.induction b ~from:0 ~step:1 in
     let x = Builder.load b "a" (Reg i) in
     ...

   The builder allocates registers, records phis and instructions in order,
   and assembles a validated [Loop.t]. *)

open Instr

type t = {
  name : string;
  mutable next_reg : reg;
  mutable phis : phi list;  (* reversed *)
  mutable phi_locs : Loop.loc option list;  (* reversed, parallel to phis *)
  mutable body : Instr.t list;  (* reversed *)
  mutable body_locs : Loop.loc option list;  (* reversed, parallel to body *)
  mutable arrays : (string * int array) list;
  mutable live_out : reg list;
  mutable cur_loc : Loop.loc option;
      (* source position stamped onto nodes pushed from here on *)
  mutable next_line : int;
      (* emission counter backing the synthetic locs of unstamped nodes *)
  mutable pending_carries : (reg * (unit -> reg)) list;
      (* phis whose carry is fixed up at finish time *)
}

let create name =
  {
    name;
    next_reg = 0;
    phis = [];
    phi_locs = [];
    body = [];
    body_locs = [];
    arrays = [];
    live_out = [];
    cur_loc = None;
    next_line = 0;
    pending_carries = [];
  }

let at b loc = b.cur_loc <- loc

(* Every emitted node carries a loc so dynamic findings (sanitizer races,
   runtime diagnostics) are always attributable: nodes not covered by an
   explicit [at] get a synthetic "<name>:k" position, where k is the
   node's 1-based emission order. *)
let stamp b =
  b.next_line <- b.next_line + 1;
  match b.cur_loc with
  | Some _ as loc -> loc
  | None -> Some { Loop.loc_file = "<" ^ b.name ^ ">"; loc_line = b.next_line }

let fresh b =
  let r = b.next_reg in
  b.next_reg <- r + 1;
  r

let push b i =
  b.body <- i :: b.body;
  b.body_locs <- stamp b :: b.body_locs

(* Declare a named array with initial contents. *)
let array b name contents = b.arrays <- (name, contents) :: b.arrays

(* A phi whose carry register is supplied later via [set_carry]. *)
let phi b ~init =
  let r = fresh b in
  b.phis <- { pdst = r; init; carry = r (* placeholder *) } :: b.phis;
  b.phi_locs <- stamp b :: b.phi_locs;
  r

let set_carry b ~phi:p ~carry =
  b.phis <-
    List.map
      (fun (ph : phi) -> if ph.pdst = p then { ph with carry } else ph)
      b.phis

(* The canonical induction variable: i = phi [from, i + step]. *)
let induction b ~from ~step =
  let p = phi b ~init:(Const from) in
  let next = fresh b in
  push b (Binop { dst = next; op = Add; a = Reg p; b = Const step });
  set_carry b ~phi:p ~carry:next;
  p

let binop b op a b' =
  let dst = fresh b in
  push b (Binop { dst; op; a; b = b' });
  dst

let add b a b' = binop b Add a b'
let sub b a b' = binop b Sub a b'
let mul b a b' = binop b Mul a b'

let load b arr idx =
  let dst = fresh b in
  push b (Load { dst; arr; idx });
  dst

let store b arr idx v = push b (Store { arr; idx; v })
let work b amount = push b (Work { amount })

let call ?(commutative = false) ?(returns = true) b fn arg =
  if returns then begin
    let dst = fresh b in
    push b (Call { dst = Some dst; fn; arg; commutative });
    Some dst
  end
  else begin
    push b (Call { dst = None; fn; arg; commutative });
    None
  end

let break_if b cond = push b (Break_if { cond })

let live_out b r = b.live_out <- r :: b.live_out

(* A reduction phi: acc = phi [init, acc `op` v].  Returns the phi register;
   the combining instruction is appended where [reduce] is called. *)
let reduce b op ~init v =
  let p = phi b ~init in
  let next = fresh b in
  push b (Binop { dst = next; op; a = Reg p; b = v });
  set_carry b ~phi:p ~carry:next;
  p

let finish ~trip b =
  let locs = Array.of_list (List.rev b.phi_locs @ List.rev b.body_locs) in
  let loop =
    Loop.create ~name:b.name ~phis:(List.rev b.phis) ~arrays:(List.rev b.arrays)
      ~live_out:(List.rev b.live_out) ~locs ~trip (List.rev b.body)
  in
  Loop.validate loop;
  loop
