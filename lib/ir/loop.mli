(** A compilable parallel region: one loop with phi-carried state, a
    straight-line body, and a counted or data-dependent trip. *)

type trip =
  | Count of int  (** execute exactly n iterations *)
  | While  (** run until some Break_if fires *)

type loc = { loc_file : string; loc_line : int }
(** A source position carried from the [.loop] frontend. *)

val loc_to_string : loc -> string
(** ["file:line"]. *)

type t = {
  name : string;
  phis : Instr.phi list;
  body : Instr.t list;
  trip : trip;
  arrays : (string * int array) list;
      (** named arrays with initial contents; part of the observable
          result *)
  live_out : Instr.reg list;
      (** phi destinations whose final values the surrounding code
          consumes *)
  locs : loc option array;
      (** per-node source locations, indexed like {!nodes}; [[||]] when the
          region was built programmatically *)
}

val create :
  ?phis:Instr.phi list ->
  ?arrays:(string * int array) list ->
  ?live_out:Instr.reg list ->
  ?locs:loc option array ->
  name:string ->
  trip:trip ->
  Instr.t list ->
  t

val loc_of : t -> int -> loc option
(** Source location of node [id], if the frontend recorded one. *)

(** Instruction-level nodes: phis first, then body instructions.  Node ids
    index into {!nodes} everywhere downstream (PDG, SCCs, stages). *)
type node = Phi_node of Instr.phi | Instr_node of Instr.t

val nodes : t -> node array
val node_to_string : node -> string
val node_defs : node -> Instr.reg option
val node_uses : node -> Instr.reg list

val validate : t -> unit
(** Single assignment, all uses defined, carries defined, live-outs are
    phi destinations, arrays declared.
    @raise Invalid_argument otherwise. *)

val pp : Format.formatter -> t -> unit
