(** A fluent DSL for writing IR kernels: allocates registers, records phis
    and instructions in order, and assembles a validated {!Loop.t}. *)

type t

val create : string -> t
(** A builder for a loop with the given name. *)

val at : t -> Loop.loc option -> unit
(** Set the source position stamped onto subsequently pushed phis and
    instructions ([None] to stop stamping).  Used by the parser. *)

val fresh : t -> Instr.reg
(** Allocate a fresh register. *)

val array : t -> string -> int array -> unit
(** Declare a named array with initial contents. *)

val phi : t -> init:Instr.operand -> Instr.reg
(** A phi whose carry register is fixed later via {!set_carry}. *)

val set_carry : t -> phi:Instr.reg -> carry:Instr.reg -> unit

val induction : t -> from:int -> step:int -> Instr.reg
(** The canonical induction variable: [i = phi \[from, i + step\]]. *)

val binop : t -> Instr.binop -> Instr.operand -> Instr.operand -> Instr.reg
val add : t -> Instr.operand -> Instr.operand -> Instr.reg
val sub : t -> Instr.operand -> Instr.operand -> Instr.reg
val mul : t -> Instr.operand -> Instr.operand -> Instr.reg

val load : t -> string -> Instr.operand -> Instr.reg
val store : t -> string -> Instr.operand -> Instr.operand -> unit
val work : t -> Instr.operand -> unit

val call :
  ?commutative:bool -> ?returns:bool -> t -> string -> Instr.operand -> Instr.reg option
(** An opaque call; returns the destination register when [returns]. *)

val break_if : t -> Instr.operand -> unit

val live_out : t -> Instr.reg -> unit

val reduce : t -> Instr.binop -> init:Instr.operand -> Instr.operand -> Instr.reg
(** A reduction phi: [acc = phi \[init, acc `op` v\]].  Returns the phi
    register; the combining instruction is appended at the call point. *)

val finish : trip:Loop.trip -> t -> Loop.t
(** Assemble and validate the loop. *)
