(* A compilable parallel region: one loop with phi-carried state, a
   straight-line body, and either a counted or a data-dependent trip. *)

type trip =
  | Count of int  (* execute exactly n iterations *)
  | While  (* run until some Break_if in the body fires *)

(* A source position carried from the .loop frontend; regions built
   programmatically (Builder/Kernels) have none. *)
type loc = { loc_file : string; loc_line : int }

let loc_to_string l = Printf.sprintf "%s:%d" l.loc_file l.loc_line

type t = {
  name : string;
  phis : Instr.phi list;
  body : Instr.t list;
  trip : trip;
  arrays : (string * int array) list;
      (* named arrays with their initial contents; the loop reads and
         mutates these, and they are part of the observable result *)
  live_out : Instr.reg list;
      (* registers whose final (last-iteration) values the surrounding code
         consumes, e.g. reduction results; must be phi destinations *)
  locs : loc option array;
      (* per-node source locations, indexed like [nodes] (phis first);
         [||] when the region was not parsed from source *)
}

let create ?(phis = []) ?(arrays = []) ?(live_out = []) ?(locs = [||]) ~name ~trip body =
  { name; phis; body; trip; arrays; live_out; locs }

(* Source location of node [id], if the frontend recorded one. *)
let loc_of t id = if id >= 0 && id < Array.length t.locs then t.locs.(id) else None

(* All instruction-level nodes of the region, phis first.  Node ids index
   into this array everywhere downstream (PDG, SCCs, task partitions). *)
type node = Phi_node of Instr.phi | Instr_node of Instr.t

let nodes t =
  Array.of_list
    (List.map (fun p -> Phi_node p) t.phis @ List.map (fun i -> Instr_node i) t.body)

let node_to_string = function
  | Phi_node { Instr.pdst; init; carry } ->
      Printf.sprintf "r%d = phi [%s, r%d]" pdst (Instr.operand_to_string init) carry
  | Instr_node i -> Instr.to_string i

let node_defs = function
  | Phi_node { Instr.pdst; _ } -> Some pdst
  | Instr_node i -> Instr.defs i

let node_uses = function
  | Phi_node _ -> []  (* the carry is a loop-carried use, handled separately *)
  | Instr_node i -> Instr.uses i

(* Validation: single assignment per register, all uses defined, carries
   defined, live-outs are phi destinations. *)
let validate t =
  let defined = Hashtbl.create 16 in
  let define ctx r =
    if Hashtbl.mem defined r then
      invalid_arg (Printf.sprintf "%s: r%d defined twice (%s)" t.name r ctx);
    Hashtbl.replace defined r ()
  in
  List.iter (fun (p : Instr.phi) -> define "phi" p.Instr.pdst) t.phis;
  List.iter
    (fun i -> match Instr.defs i with Some r -> define (Instr.to_string i) r | None -> ())
    t.body;
  let check_use ctx r =
    if not (Hashtbl.mem defined r) then
      invalid_arg (Printf.sprintf "%s: r%d used but never defined (%s)" t.name r ctx)
  in
  List.iter (fun i -> List.iter (check_use (Instr.to_string i)) (Instr.uses i)) t.body;
  List.iter (fun (p : Instr.phi) -> check_use "phi carry" p.Instr.carry) t.phis;
  List.iter
    (fun r ->
      if not (List.exists (fun (p : Instr.phi) -> p.Instr.pdst = r) t.phis) then
        invalid_arg (Printf.sprintf "%s: live-out r%d is not a phi destination" t.name r))
    t.live_out;
  (match t.trip with
  | Count n when n < 0 -> invalid_arg (t.name ^ ": negative trip count")
  | Count _ -> ()
  | While ->
      if not (List.exists (function Instr.Break_if _ -> true | _ -> false) t.body) then
        invalid_arg (t.name ^ ": While loop without Break_if"));
  (* Arrays referenced by loads/stores must be declared. *)
  let declared a = List.mem_assoc a t.arrays in
  List.iter
    (fun i ->
      match i with
      | Instr.Load { arr; _ } | Instr.Store { arr; _ } ->
          if not (declared arr) then invalid_arg (t.name ^ ": undeclared array " ^ arr)
      | _ -> ())
    t.body

let pp fmt t =
  Format.fprintf fmt "loop %s:@." t.name;
  List.iter
    (fun (p : Instr.phi) ->
      Format.fprintf fmt "  r%d = phi [%s, r%d]@." p.Instr.pdst
        (Instr.operand_to_string p.Instr.init)
        p.Instr.carry)
    t.phis;
  List.iter (fun i -> Format.fprintf fmt "  %s@." (Instr.to_string i)) t.body;
  match t.trip with
  | Count n -> Format.fprintf fmt "  (count %d)@." n
  | While -> Format.fprintf fmt "  (while)@."
