(** Seeded random-kernel generator for the race-sanitizer differential.

    Each generated kernel is racy or race-free {e by construction}: the
    shape decides whether a loop-carried memory conflict exists, so the
    generator's label is ground truth the sanitizer and the static PDG
    classification can both be checked against.  Fully deterministic — a
    private LCG, no [Random] state — so CI corpora are reproducible from
    the seed alone. *)

type gen = {
  g_loop : Loop.t;
  g_racy : bool;
      (** [true]: the kernel carries a cross-iteration memory conflict
          (same cell written by different iterations); parallelizing it
          without ordering races.  [false]: iterations touch disjoint
          cells (or only reduce), so every legal plan is race-free. *)
  g_desc : string;  (** human-readable shape summary *)
}

val generate : seed:int -> gen
(** The kernel for [seed].  Equal seeds yield identical kernels. *)

val corpus : seed:int -> n:int -> gen list
(** [n] kernels derived from [seed] (seeds [seed], [seed+1], ...). *)
