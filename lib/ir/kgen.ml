(* Seeded random kernels, racy or race-free by construction. *)

type gen = { g_loop : Loop.t; g_racy : bool; g_desc : string }

(* A private 48-bit LCG (the POSIX drand48 constants) so generation is
   reproducible and independent of the global Random state. *)
type rng = { mutable s : int }

let mk_rng seed = { s = (seed * 2654435761) lxor 0x5DEECE66D }

let next r =
  r.s <- ((r.s * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  (r.s lsr 17) land 0x3FFFFFFF

let range r lo hi = lo + (next r mod (hi - lo + 1))

let init_array r n bound = Array.init n (fun _ -> next r mod bound)

(* Shape 0 (race-free): stride-1 map — out[i] = f(in[i], in2[i]). *)
let map_kernel r seed =
  let n = range r 12 40 in
  let b = Builder.create (Printf.sprintf "kgen-map-%d" seed) in
  Builder.array b "in" (init_array r n 1000);
  Builder.array b "in2" (init_array r n 1000);
  Builder.array b "out" (Array.make n 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let a = Builder.load b "in" (Instr.Reg i) in
  let c = Builder.load b "in2" (Instr.Reg i) in
  let op = match range r 0 2 with 0 -> Instr.Add | 1 -> Instr.Xor | _ -> Instr.Mul in
  let v = Builder.binop b op (Instr.Reg a) (Instr.Reg c) in
  let v2 = Builder.add b (Instr.Reg v) (Instr.Const (range r 1 9)) in
  Builder.work b (Instr.Const (range r 50 400));
  Builder.store b "out" (Instr.Reg i) (Instr.Reg v2);
  let loop = Builder.finish ~trip:(Loop.Count n) b in
  { g_loop = loop; g_racy = false; g_desc = Printf.sprintf "stride-1 map, n=%d" n }

(* Shape 1 (race-free): pure reduction — acc op= in[i] * c. *)
let reduce_kernel r seed =
  let n = range r 12 40 in
  let b = Builder.create (Printf.sprintf "kgen-reduce-%d" seed) in
  Builder.array b "in" (init_array r n 1000);
  let i = Builder.induction b ~from:0 ~step:1 in
  let a = Builder.load b "in" (Instr.Reg i) in
  let v = Builder.mul b (Instr.Reg a) (Instr.Const (range r 1 7)) in
  Builder.work b (Instr.Const (range r 50 400));
  let op = match range r 0 2 with 0 -> Instr.Add | 1 -> Instr.Min | _ -> Instr.Max in
  let acc = Builder.reduce b op ~init:(Instr.Const 0) (Instr.Reg v) in
  Builder.live_out b acc;
  let loop = Builder.finish ~trip:(Loop.Count n) b in
  { g_loop = loop; g_racy = false; g_desc = Printf.sprintf "pure reduction, n=%d" n }

(* Shape 2 (race-free): strided gather, disjoint stores — reads roam via
   a modular index, writes stay at out[i]. *)
let gather_kernel r seed =
  let n = range r 12 40 in
  let stride = range r 2 7 in
  let b = Builder.create (Printf.sprintf "kgen-gather-%d" seed) in
  Builder.array b "in" (init_array r n 1000);
  Builder.array b "out" (Array.make n 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.mul b (Instr.Reg i) (Instr.Const stride) in
  let j = Builder.binop b Instr.Rem (Instr.Reg x) (Instr.Const n) in
  let a = Builder.load b "in" (Instr.Reg j) in
  Builder.work b (Instr.Const (range r 50 400));
  Builder.store b "out" (Instr.Reg i) (Instr.Reg a);
  let loop = Builder.finish ~trip:(Loop.Count n) b in
  {
    g_loop = loop;
    g_racy = false;
    g_desc = Printf.sprintf "strided gather (stride %d), disjoint stores, n=%d" stride n;
  }

(* Shape 3 (racy): indirect read-modify-write through a colliding index
   map — out[map[i]] += 1 with map[i] = i mod k, k < n, so different
   iterations hit the same cell. *)
let scatter_kernel r seed =
  let n = range r 12 40 in
  (* Collision distance k: never a multiple of the sanitizer's default
     DoP 3, or the deterministic simulator's round-robin claims put every
     colliding iteration pair on the same lane and the conflict is
     (correctly) ordered — racy-by-construction then couldn't be
     demonstrated dynamically. *)
  let k = [| 2; 4; 5 |].(next r mod 3) in
  let b = Builder.create (Printf.sprintf "kgen-scatter-%d" seed) in
  Builder.array b "map" (Array.init n (fun i -> i mod k));
  Builder.array b "out" (Array.make n 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let j = Builder.load b "map" (Instr.Reg i) in
  let v = Builder.load b "out" (Instr.Reg j) in
  let v' = Builder.add b (Instr.Reg v) (Instr.Const 1) in
  Builder.work b (Instr.Const (range r 50 400));
  Builder.store b "out" (Instr.Reg j) (Instr.Reg v');
  let loop = Builder.finish ~trip:(Loop.Count n) b in
  {
    g_loop = loop;
    g_racy = true;
    g_desc = Printf.sprintf "indirect scatter via map (i mod %d), n=%d" k n;
  }

let generate ~seed =
  let r = mk_rng seed in
  match next r mod 4 with
  | 0 -> map_kernel r seed
  | 1 -> reduce_kernel r seed
  | 2 -> gather_kernel r seed
  | _ -> scatter_kernel r seed

let corpus ~seed ~n = List.init n (fun i -> generate ~seed:(seed + i))
