(** A textual frontend for the loop IR: parse ".loop" source into a
    validated {!Loop.t} — the sequential-source entry of the paper's
    Path-2 workflow (Figure 3.2).  See the implementation header for the
    grammar; [examples/kernels/] holds sample programs. *)

exception Parse_error of string
(** Raised with a ["file:line:"]-annotated message on any lexical,
    syntactic, or binding error. *)

val parse : ?file:string -> string -> Loop.t
(** Parse loop source text.  [file] (default ["<input>"]) labels error
    messages and the per-node {!Loop.loc}s recorded on the result.
    @raise Parse_error on malformed input. *)

val parse_file : string -> Loop.t
(** Parse a file; the path becomes the location label.
    @raise Parse_error on malformed input;
    @raise Sys_error if the file cannot be read. *)

val to_source : Loop.t -> string
(** Render a loop back to parseable source; [parse (to_source l)] has
    identical semantics (registers rename canonically).  Arrays print as a
    recognized initializer (zero/iota/fill/hash) or an explicit element
    list.
    @raise Invalid_argument for loops with non-constant phi initializers
    (the builder cannot create those either). *)
