(** The typed trace-event vocabulary of the runtime protocol.

    Each event carries the simulated time (virtual ns) of emission.  The
    vocabulary covers the observable protocol of the paper: region
    lifecycle, controller FSM transitions (Figure 6.3), the
    pause/reconfigure/resume sequence with channel flushes (Sections 6.2
    and 4.5), barrier-less DoP resizes (Section 7.2), the daemon's
    platform partitioning (Section 6.4.3), and Decima samples
    (Section 4.7). *)

(** Controller FSM states, duplicated below the runtime in the dependency
    order so traces decode without it; {!Parcae_runtime.Controller} maps
    its own state type onto this one. *)
type ctrl_state = Init | Calibrate | Optimize | Monitor

val ctrl_state_to_string : ctrl_state -> string
val ctrl_state_of_string : string -> ctrl_state
val ctrl_state_code : ctrl_state -> int
(** INIT=0 CALIB=1 OPT=2 MONITOR=3, matching Figure 8.8's state track. *)

type kind =
  | Region_start of { region : string; scheme : string; threads : int; budget : int }
  | Region_stop of { region : string }
  | Ctrl_state of { region : string; state : ctrl_state }
  | Dop_change of {
      region : string;
      scheme : string;
      old_dop : int;  (** total threads before the change *)
      new_dop : int;  (** total threads after the change *)
      budget : int;  (** region budget at the moment of the change *)
      light : bool;  (** barrier-less resize vs full pause/resume *)
    }
  | Pause of { region : string }
  | Resume of { region : string; scheme : string; threads : int }
  | Chan_flush of { chan : string; dropped : int }
  | Budget_grant of { region : string; budget : int }
  | Daemon_repartition of { shares : (string * int) list; total : int }
  | Hook_sample of { task : int; dt_ns : int }
  | Feature_sample of { name : string; value : float }
  | Cores_online of { cores : int }
  | Trace_overflow of { dropped : int }
      (** the sink ring filled and overwrote [dropped] older events;
          prepended by the exporters so loss is never silent *)
  | Span_overflow of { dropped : int }
      (** the completed-span ring filled and began overwriting exemplars;
          quantiles stay exact, only per-request timelines are lost *)
  | Task_spawn of { task : int; parent : int; name : string }
      (** a scheduler task/fiber was created; [parent] is the spawning
          task id, or [-1] when spawned from outside the engine *)
  | Task_done of { task : int; busy_ns : int }
      (** a task completed having accumulated [busy_ns] of compute *)
  | Chan_send_ev of { chan : string; seq : int; task : int; busy_ns : int }
      (** task enqueued the [seq]-th item (0-based) into [chan], with
          cumulative compute [busy_ns] at the send *)
  | Chan_recv_ev of { chan : string; seq : int; task : int; busy_ns : int }
      (** task dequeued the [seq]-th item of [chan]; FIFO delivery makes
          [(chan, seq)] the send→recv causal edge {!Critpath} follows *)
  | Steal_ev of { task : int; from_lane : int; to_lane : int }
      (** a task migrated between execution lanes via a successful steal *)

type t = { t : int;  (** virtual time, ns *) kind : kind }

val make : t:int -> kind -> t

val kind_name : kind -> string
(** Stable snake_case tag used in the JSONL encoding. *)

val to_json : t -> Json.t
val of_json : Json.t -> t
(** Inverse of {!to_json}. @raise Json.Parse_error on unknown shapes. *)

val to_string : t -> string
(** Compact one-line JSON rendering (one JSONL record). *)
