(** The reconfiguration overhead ledger.

    The paper's Chapter 7 decomposes the cost of acting on a controller
    decision into phases; the executor stamps those phases on every full
    pause/resume reconfiguration and reports them here:

    - ["signal"] — pause request to the first worker parking (signal
      propagation);
    - ["barrier"] — first worker parked to the last (barrier wait);
    - ["flush"] — channel flush and state reset while paused;
    - ["restart"] — resume to the first post-resume iteration completing;
    - ["total"] — pause request to that first iteration.

    Each measurement fans out to up to three consumers, each independently
    optional: the installed ledger (per-(region, phase) accumulators for
    programmatic access), the {!Metrics} registry (counter
    [parcae_reconfig_phase_ns_total{region,phase}]), and the {!Flight}
    recorder (an [Overhead] entry per measurement).  {!active} tells the
    executor whether anyone is listening, so with everything off the
    reconfiguration path pays one load per phase.

    Durations are virtual ns on the simulator and wall-clock ns on the
    native backend — whatever the engine's clock reads. *)

val phases : string list
(** [["signal"; "barrier"; "flush"; "restart"]] — the disjoint phases;
    ["total"] is reported alongside but is not a member. *)

type t

val create : unit -> t
val null : t
val is_null : t -> bool
val set : t -> unit
val clear : unit -> unit
val current : unit -> t
val enabled : unit -> bool

val with_ledger : t -> (unit -> 'a) -> 'a
(** Run [f] with the ledger installed, restoring the previous one on exit
    (also on exception). *)

val active : unit -> bool
(** True when a ledger, a metrics registry, or a flight recorder is
    installed — the executor's gate for stamping phase timestamps. *)

val note : t:int -> region:string -> phase:string -> int -> unit
(** [note ~t ~region ~phase ns] attributes [ns] (clamped at 0) of
    reconfiguration time; [t] is the clock reading when the phase closed. *)

val phase_ns : t -> region:string -> phase:string -> int
(** Accumulated ns for a (region, phase); 0 when never noted. *)

val snapshot : t -> (string * string * int) list
(** All (region, phase, ns) accumulators, sorted. *)
