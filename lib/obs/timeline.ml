(* Per-domain scheduler timelines.

   Each lane is a little state machine plus three preallocated int arrays
   forming a span ring (state / start / end), so recording a transition is
   a handful of array writes and never allocates.  Lane mutation is
   single-writer by contract — only the lane's own domain transitions it —
   which is what lets the native scheduler record transitions without any
   synchronisation.  Readers ([breakdown], [spans]) are meant to run after
   the engine drains (or accept a benignly-torn in-flight snapshot; the
   doctor and the dashboard both tolerate that).

   Attribution ([attribute]) is the retroactive channel: measured waits
   (GC pauses, channel blocks, barrier parks, reconfiguration phases) are
   *explanations* of time the live stream already recorded as Run or as
   idle.  They are applied only at breakdown time as zero-sum transfers
   out of donor states, clamped at what the donors hold, so the partition
   invariant — per-lane state time sums to wall time — survives arbitrary
   over-reporting by the explaining instruments. *)

type state = Run | Steal_search | Park | Gc | Barrier_wait | Chan_wait | Reconfig

let n_states = 7

let state_index = function
  | Run -> 0
  | Steal_search -> 1
  | Park -> 2
  | Gc -> 3
  | Barrier_wait -> 4
  | Chan_wait -> 5
  | Reconfig -> 6

let all_states = [ Run; Steal_search; Park; Gc; Barrier_wait; Chan_wait; Reconfig ]

let state_name = function
  | Run -> "run"
  | Steal_search -> "steal_search"
  | Park -> "park"
  | Gc -> "gc"
  | Barrier_wait -> "barrier_wait"
  | Chan_wait -> "chan_wait"
  | Reconfig -> "reconfig"

let state_of_string = function
  | "run" -> Run
  | "steal_search" -> Steal_search
  | "park" -> Park
  | "gc" -> Gc
  | "barrier_wait" -> Barrier_wait
  | "chan_wait" -> Chan_wait
  | "reconfig" -> Reconfig
  | s -> invalid_arg ("Timeline.state_of_string: " ^ s)

let state_of_index i = List.nth all_states i

(* Donor order for attribution.  A GC pause happens inside running code,
   so it displaces Run first.  A channel or barrier wait only ever
   displaces idle time: while a fiber waits, its domain either ran other
   fibers (real compute, not the wait's to claim) or idled — so waits
   draw from Park/Steal_search only, and on a saturated lane the clamp
   correctly reports ~zero wait even if many fibers blocked concurrently.
   Reconfiguration is control-plane code that executes on the lane, so it
   may claim Run after the idle states.  States not listed keep what the
   live stream gave them. *)
let donors = function
  | Gc -> [ Run; Park; Steal_search ]
  | Chan_wait | Barrier_wait -> [ Park; Steal_search ]
  | Reconfig -> [ Park; Steal_search; Run ]
  | Run | Steal_search | Park -> []

type lane = {
  mutable cur : int;  (* state_index of the open span *)
  mutable since : int;  (* open span start *)
  acc : int array;  (* closed-span ns per state *)
  attr : int array;  (* retroactive attribution requests, ns per state *)
  (* Span ring: parallel arrays, preallocated. *)
  r_state : int array;
  r_t0 : int array;
  r_t1 : int array;
  mutable r_len : int;  (* spans retained, <= capacity *)
  mutable r_start : int;  (* index of the oldest retained span *)
  mutable r_drops : int;
}

type t = { cap : int; t0 : int; lanes_ : lane array }

let create ?(capacity = 4096) ?(initial = Park) ~lanes ~now () =
  if lanes < 1 then invalid_arg "Timeline.create: lanes must be >= 1";
  if capacity < 1 then invalid_arg "Timeline.create: capacity must be >= 1";
  let mk () =
    {
      cur = state_index initial;
      since = now;
      acc = Array.make n_states 0;
      attr = Array.make n_states 0;
      r_state = Array.make capacity 0;
      r_t0 = Array.make capacity 0;
      r_t1 = Array.make capacity 0;
      r_len = 0;
      r_start = 0;
      r_drops = 0;
    }
  in
  { cap = capacity; t0 = now; lanes_ = Array.init lanes (fun _ -> mk ()) }

let lanes t = Array.length t.lanes_
let origin t = t.t0

let push_span t l st t0 t1 =
  let i =
    if l.r_len < t.cap then begin
      let i = (l.r_start + l.r_len) mod t.cap in
      l.r_len <- l.r_len + 1;
      i
    end
    else begin
      let i = l.r_start in
      l.r_start <- (l.r_start + 1) mod t.cap;
      l.r_drops <- l.r_drops + 1;
      i
    end
  in
  l.r_state.(i) <- st;
  l.r_t0.(i) <- t0;
  l.r_t1.(i) <- t1

let enter t ~lane ~now st =
  let l = t.lanes_.(lane) in
  let si = state_index st in
  if si <> l.cur then begin
    (* Clamp a racing clock so spans stay non-negative and contiguous. *)
    let now = if now < l.since then l.since else now in
    l.acc.(l.cur) <- l.acc.(l.cur) + (now - l.since);
    push_span t l l.cur l.since now;
    l.cur <- si;
    l.since <- now
  end

let attribute t ~lane st ns =
  if ns > 0 then begin
    let l = t.lanes_.(lane) in
    let i = state_index st in
    l.attr.(i) <- l.attr.(i) + ns
  end

type span = { s_state : state; s_t0 : int; s_t1 : int }

let spans t ~lane =
  let l = t.lanes_.(lane) in
  List.init l.r_len (fun k ->
      let i = (l.r_start + k) mod t.cap in
      { s_state = state_of_index l.r_state.(i); s_t0 = l.r_t0.(i); s_t1 = l.r_t1.(i) })

let span_drops t ~lane = t.lanes_.(lane).r_drops

(* ------------------------------------------------------------------ *)
(* Aggregation.                                                        *)
(* ------------------------------------------------------------------ *)

type lane_breakdown = {
  lane : int;
  wall_ns : int;
  by_state : int array;
  shares : float array;
}

let breakdown t ~until =
  Array.mapi
    (fun i l ->
      let ns = Array.copy l.acc in
      (* Close the open span virtually at [until]. *)
      let until = if until < l.since then l.since else until in
      ns.(l.cur) <- ns.(l.cur) + (until - l.since);
      (* Apply attribution transfers: pull each requested amount out of
         the donor states in order, clamped at what they hold. *)
      List.iter
        (fun st ->
          let si = state_index st in
          let want = ref (min l.attr.(si) max_int) in
          List.iter
            (fun donor ->
              let di = state_index donor in
              if !want > 0 && di <> si then begin
                let take = min !want ns.(di) in
                ns.(di) <- ns.(di) - take;
                ns.(si) <- ns.(si) + take;
                want := !want - take
              end)
            (donors st))
        all_states;
      let wall = until - t.t0 in
      let shares =
        if wall <= 0 then Array.make n_states 0.0
        else Array.map (fun v -> float_of_int v /. float_of_int wall) ns
      in
      { lane = i; wall_ns = wall; by_state = ns; shares })
    t.lanes_

let merged_shares bds =
  let total_wall =
    Array.fold_left (fun acc b -> acc +. float_of_int b.wall_ns) 0.0 bds
  in
  List.map
    (fun st ->
      let i = state_index st in
      let ns =
        Array.fold_left (fun acc b -> acc +. float_of_int b.by_state.(i)) 0.0 bds
      in
      (st, if total_wall > 0.0 then ns /. total_wall else 0.0))
    all_states

let shares_obj shares =
  Json.Obj
    (List.map
       (fun st -> (state_name st, Json.Float shares.(state_index st)))
       all_states)

let breakdown_to_json bds =
  Json.Obj
    [
      ( "lanes",
        Json.List
          (Array.to_list
             (Array.map
                (fun b ->
                  Json.Obj
                    [
                      ("lane", Json.Int b.lane);
                      ("wall_ns", Json.Int b.wall_ns);
                      ("shares", shares_obj b.shares);
                    ])
                bds)) );
      ( "merged",
        Json.Obj
          (List.map
             (fun (st, v) -> (state_name st, Json.Float v))
             (merged_shares bds)) );
    ]

(* ------------------------------------------------------------------ *)
(* The installed timeline.                                             *)
(* ------------------------------------------------------------------ *)

(* An Atomic because native pool domains read the cell concurrently with
   installation from the driver thread. *)
let cell : t option Atomic.t = Atomic.make None

let set tl = Atomic.set cell (Some tl)
let clear () = Atomic.set cell None
let get () = Atomic.get cell
let enabled () = Atomic.get cell <> None

let with_timeline tl f =
  let prev = Atomic.get cell in
  Atomic.set cell (Some tl);
  Fun.protect ~finally:(fun () -> Atomic.set cell prev) f
