(** In-process [Runtime_events] consumer: GC pauses onto the timelines.

    OCaml 5 publishes per-domain runtime activity (minor collections,
    major slices, ...) into a lock-free ring buffer per domain.  This
    module starts that instrumentation, opens a cursor onto the current
    process's own rings, and on every {!poll} folds the minor/major GC
    spans it finds into

    - the installed {!Timeline} — each top-level pause becomes a
      {!Timeline.attribute} of [Gc] time on the lane the domain maps to —
      and
    - the installed {!Metrics} registry, as
      [parcae_gc_pauses_total{phase}] and [parcae_gc_pause_ns{phase}].

    Nested runtime phases are depth-tracked per ring so only top-level
    spans count as pauses (a minor collection inside a major slice is one
    pause, not two).

    {b Lane mapping.}  [Runtime_events] identifies domains by ring id,
    which for a process that spawns its pool once is the spawn order: the
    initial domain is ring 0 and pool worker [i] is ring [i + 1].  That
    heuristic is [default_map_lane]; pass [map_lane] to override.  Spans
    on rings that map to no lane (the main domain, expired domains) are
    still counted in {!stats} but attributed to no timeline lane.

    {b Lifecycle.}  A cursor is an OS-level resource; {!stop} frees it.
    {!live_cursors} counts cursors opened but not yet freed — the doctor
    smoke test fails if it is non-zero after shutdown, so consumers must
    not leak across repeated runs in one process. *)

type t

val start : ?map_lane:(int -> int option) -> unit -> t
(** Enable runtime instrumentation ([Runtime_events.start]) and open a
    cursor onto this process's rings.  [map_lane] maps a ring id to a
    timeline lane (default {!default_map_lane} over the installed
    timeline's lane count). *)

val default_map_lane : lanes:int -> int -> int option
(** [Some (ring - 1)] for rings [1 .. lanes], [None] otherwise. *)

val poll : t -> int
(** Drain currently available events; returns how many were consumed.
    Call periodically while the engine runs and once after it drains. *)

val stop : t -> unit
(** Final {!poll}, then free the cursor.  Idempotent. *)

type stats = {
  minor_pauses : int;
  major_pauses : int;
  pause_ns : int;  (** total top-level GC pause time across all rings *)
  unattributed_ns : int;  (** pause time on rings that map to no lane *)
  events : int;  (** raw runtime events consumed *)
}

val stats : t -> stats

val live_cursors : unit -> int
(** Cursors opened by {!start} and not yet freed by {!stop}, process-wide.
    Zero after a clean shutdown. *)
