(** The Decima metrics registry: counters, gauges, and log-bucketed
    histograms with labeled series, Prometheus and JSON exposition.

    The registry is the aggregated counterpart of the event trace: always-on
    telemetry a controller (or a dashboard) can read while a run is in
    flight.  It is dependency-free and deterministic — families and series
    are exposed in sorted order with fixed float formatting, so same-seed
    runs produce byte-identical snapshots.

    Disabled mode mirrors {!Trace}: a physical [null] registry makes
    {!enabled} one load and one pointer comparison, and every emitter in the
    runtime guards with

    {[ if Metrics.enabled () then Metrics.inc (handles ()).something ]}

    so that with metrics off the hot path allocates nothing. *)

(** {1 Instruments} *)

type counter
(** A monotonically increasing integer (e.g. total sends, total busy ns). *)

type gauge
(** A float that can go up and down (e.g. queue depth, busy cores). *)

type histogram
(** A log-bucketed (HDR-style) distribution with a sum and a count.
    Recording is O(log #buckets) with at most a few dozen buckets. *)

val inc : counter -> unit
val inc_by : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val observe_ns : histogram -> int -> unit
(** [observe] on [float_of_int ns] — the common case for virtual-time
    durations. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

type summary = Hdr.t
(** A fixed-precision HDR-backed distribution over integer nanoseconds
    with a bounded-relative-error quantile API ({!Hdr}).  Summaries
    replace reservoir sampling for serve-path latency: a reservoir
    percentile depends on the sampling seed, an HDR quantile is a
    deterministic function of the observations. *)

val observe_summary : summary -> int -> unit
(** Record one integer observation (nanoseconds).  Allocation-free. *)

val summary_quantile : summary -> float -> int
(** Bounded-relative-error quantile estimate in the observed unit
    (nanoseconds throughout Parcae); see {!Hdr.quantile}. *)

val summary_count : summary -> int
val summary_sum : summary -> int

val summary_export_quantiles : float list
(** Quantiles emitted for every summary series in snapshots and
    Prometheus exposition: 0.5, 0.9, 0.99, 0.999. *)

val log_buckets : base:float -> lo:float -> count:int -> float array
(** [count] upper bounds starting at [lo], each [base] times the previous.
    @raise Invalid_argument unless [base > 1], [lo > 0], [count > 0]. *)

val duration_ns_buckets : float array
(** Default buckets for nanosecond durations: 256 ns to ~4.6 hours, x4. *)

val seconds_buckets : float array
(** Default buckets for response times in seconds: 1 ms to ~65 s, x2. *)

(** {1 Registries} *)

type t

val create : unit -> t

val null : t
(** The disabled registry: instruments created against it are inert
    dummies, and {!enabled} is [false] while it is installed. *)

val is_null : t -> bool

(** {1 The installed registry}

    One global current-registry cell, race-free because the simulator is
    cooperative and single-threaded (see {!Trace}). *)

val set : t -> unit
val clear : unit -> unit
val current : unit -> t
val enabled : unit -> bool

val with_registry : t -> (unit -> 'a) -> 'a
(** Run [f] with [r] installed, restoring the previous registry on exit
    (also on exception). *)

val cached : (t -> 'a) -> unit -> 'a
(** [cached build] memoizes [build reg] against the installed registry:
    the thunk rebuilds only when a different registry is installed.
    Instrumented modules use this to create their handle records once per
    run instead of once per event. *)

(** {1 Families}

    An instrument is identified by a family name plus label key/value
    pairs; requesting the same (name, labels) again returns the same
    instrument.  A family's kind and label arity are fixed at first
    creation ([Invalid_argument] on mismatch). *)

val counter : ?help:string -> ?labels:(string * string) list -> t -> string -> counter
val gauge : ?help:string -> ?labels:(string * string) list -> t -> string -> gauge

val histogram :
  ?help:string -> ?buckets:float array -> ?labels:(string * string) list -> t -> string -> histogram
(** [buckets] defaults to {!duration_ns_buckets}; only the first creation
    of a family determines its buckets. *)

val summary :
  ?help:string -> ?labels:(string * string) list -> ?sub_bits:int -> t -> string -> summary
(** [sub_bits] (default 7: relative error <= 1/128) is fixed by the first
    creation of a family, like histogram buckets. *)

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { bounds : float array; counts : int array; sum : float; count : int }
      (** [counts] are per-bucket (not cumulative) and include the overflow
          bucket, so [Array.length counts = Array.length bounds + 1]. *)
  | Summary_v of { quantiles : (float * float) list; sum : float; count : int }
      (** [(q, value)] pairs for {!summary_export_quantiles}. *)

type sample = { labels : (string * string) list; value : value }

type kind = Counter_kind | Gauge_kind | Histogram_kind | Summary_kind

type fam_snapshot = { name : string; help : string; skind : kind; samples : sample list }

val kind_name : kind -> string

val snapshot : t -> fam_snapshot list
(** Deep copy of the registry, families sorted by name and series by label
    values — deterministic given deterministic recording. *)

val quantile : bounds:float array -> counts:int array -> float -> float
(** [quantile ~bounds ~counts q] is the upper bound of the bucket holding
    the [q]-quantile (bucket-resolution, like PromQL's histogram_quantile);
    the largest finite bound for overflow samples, [nan] when empty. *)

(** {1 Exposition} *)

val to_prometheus : t -> string
(** Prometheus text format 0.0.4: HELP/TYPE lines per family, cumulative
    histogram buckets ending at [le="+Inf"], [_sum]/[_count] series. *)

val to_json : t -> Json.t
val to_json_string : t -> string
(** Self-contained JSON snapshot (parses back with {!Json.parse}). *)
