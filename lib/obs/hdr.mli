(* Fixed-precision streaming histogram with log-linear HDR-style buckets.

   Tracks non-negative integer values (nanoseconds throughout Parcae) in
   a fixed-size bucket array: one bucket per integer below 2^sub_bits,
   then 2^sub_bits equal sub-buckets per power-of-two octave.  Quantile
   estimates carry a bounded relative error of at most 1/2^sub_bits
   (under 1% at the default sub_bits = 7), observation is allocation-free,
   and histograms with matching resolution merge by bucket addition. *)

type t

(* [create ?sub_bits ()] makes an empty histogram.  [sub_bits] (default 7,
   valid 1..14) sets the resolution: relative error <= 1/2^sub_bits at a
   memory cost of (64 - sub_bits) * 2^sub_bits words. *)
val create : ?sub_bits:int -> unit -> t

(* Upper bound on the relative error of any [quantile] estimate. *)
val relative_error : t -> float

(* Record one value.  Negative values clamp to 0.  Never allocates. *)
val observe : t -> int -> unit

val count : t -> int
val sum : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

(* [quantile t q] estimates the q-quantile (q in [0,1], clamped) as the
   inclusive upper bound of the bucket holding the rank-⌈q·count⌉
   observation, clamped to the observed maximum — so the estimate [est]
   of an exact value [x] satisfies x <= est <= x·(1 + relative_error)
   rounded up to the next integer.  Returns 0 on an empty histogram. *)
val quantile : t -> float -> int

(* [merge ~into src] adds [src]'s counts into [into].  Raises
   [Invalid_argument] if the two resolutions differ. *)
val merge : into:t -> t -> unit

val clear : t -> unit
