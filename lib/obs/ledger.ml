(* Reconfiguration overhead ledger: per-(region, phase) accumulators with
   fan-out to Metrics and Flight.  See ledger.mli. *)

let phases = [ "signal"; "barrier"; "flush"; "restart" ]

type t = { table : (string * string, int ref) Hashtbl.t }

let create () = { table = Hashtbl.create 17 }
let null = { table = Hashtbl.create 0 }
let is_null l = l == null
let cur = ref null
let set l = cur := l
let clear () = cur := null
let current () = !cur
let enabled () = not (is_null !cur)

let with_ledger l f =
  let prev = !cur in
  cur := l;
  Fun.protect ~finally:(fun () -> cur := prev) f

let active () = enabled () || Metrics.enabled () || Flight.enabled ()

let note ~t ~region ~phase ns =
  let ns = max 0 ns in
  let l = !cur in
  if not (is_null l) then begin
    let key = (region, phase) in
    match Hashtbl.find_opt l.table key with
    | Some r -> r := !r + ns
    | None -> Hashtbl.add l.table key (ref ns)
  end;
  if Metrics.enabled () then
    Metrics.inc_by
      (Metrics.counter (Metrics.current ()) "parcae_reconfig_phase_ns_total"
         ~labels:[ ("region", region); ("phase", phase) ]
         ~help:"Reconfiguration time attributed to phases (signal, barrier, flush, restart, total)")
      ns;
  if Flight.enabled () then Flight.overhead ~t ~region ~phase ~ns

let phase_ns l ~region ~phase =
  match Hashtbl.find_opt l.table (region, phase) with Some r -> !r | None -> 0

let snapshot l =
  Hashtbl.fold (fun (region, phase) r acc -> (region, phase, !r) :: acc) l.table []
  |> List.sort compare
