(** Minimal JSON values, printer, and parser for the trace exporters.

    Self-contained so the observability layer adds no build dependency;
    the printer emits compact standard JSON and the parser accepts the
    subset needed to round-trip our own output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val to_buf : Buffer.t -> t -> unit

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val get_int : string -> t -> int
val get_float : string -> t -> float
val get_str : string -> t -> string
val get_bool : string -> t -> bool
val get_list : string -> t -> t list
(** Field accessors. @raise Parse_error when absent or mistyped. *)
