(* A minimal dependency-free HTTP/1.1 exposition server.

   Just enough protocol for a Prometheus scrape loop or a curl: GET
   routing over blocking sockets, one OS thread accepting and serving
   connections sequentially, Connection: close on every response.  This
   is the first outward-facing surface of the daemon, so it is
   deliberately boring — no keep-alive, no chunking, no request bodies,
   an 8 KB header cap, and every handler runs under a per-connection
   exception guard so a malformed request can never take the server (or
   the serving run next to it) down.

   Handlers run on the server thread and read shared state that is
   already safe to read concurrently: registry snapshots take the
   registry mutex, span-collector reads take the collector mutex.  Unix
   and Thread both ship with the compiler, keeping the no-new-deps rule
   intact. *)

type response = { status : int; content_type : string; body : string }

let ok ?(content_type = "text/plain; charset=utf-8") body =
  { status = 200; content_type; body }

type t = {
  sock : Unix.file_descr;
  port : int;
  thread : Thread.t;
  stop_flag : bool Atomic.t;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (status_text status) content_type (String.length body)
  in
  let send s =
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write_substring fd s !off (n - !off)
    done
  in
  send head;
  send body

(* Read until the blank line ending the request head, capped at 8 KB —
   we never need a body, so anything past the head is ignored. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then None
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* A lone "\n\n" is accepted too: curl-by-hand friendliness. *)
        if
          (String.length s >= 4
          && String.sub s (String.length s - 4) 4 = "\r\n\r\n")
          || String.index_opt s '\n' <> None
             && String.length s >= 2
             && String.sub s (String.length s - 2) 2 = "\n\n"
        then Some s
        else go ()
      end
  in
  try go () with Unix.Unix_error _ -> None

let parse_request head =
  match String.index_opt head '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub head 0 i) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ ->
          (* Strip any query string: routes key on the path alone. *)
          let path =
            match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target
          in
          Some (meth, path)
      | _ -> None)

let serve_connection routes fd =
  let resp =
    match read_head fd with
    | None -> { status = 400; content_type = "text/plain"; body = "bad request\n" }
    | Some head -> (
        match parse_request head with
        | None -> { status = 400; content_type = "text/plain"; body = "bad request\n" }
        | Some (meth, path) when meth <> "GET" ->
            ignore path;
            { status = 405; content_type = "text/plain"; body = "method not allowed\n" }
        | Some (_, path) -> (
            match List.assoc_opt path routes with
            | None -> { status = 404; content_type = "text/plain"; body = "not found\n" }
            | Some handler -> (
                try handler ()
                with e ->
                  {
                    status = 500;
                    content_type = "text/plain";
                    body = "internal error: " ^ Printexc.to_string e ^ "\n";
                  })))
  in
  try write_response fd resp with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ~port ~routes () =
  (* A peer that disconnects mid-response (aborted curl, scrape timeout)
     must surface as EPIPE — swallowed by the Unix_error handlers below —
     not as a process-killing SIGPIPE with default disposition. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> invalid_arg ("Httpd.start: bad host " ^ host)
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p  (* port 0 resolves to the ephemeral pick *)
    | _ -> port
  in
  let stop_flag = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let continue = ref true in
        while !continue do
          match Unix.accept sock with
          | conn, _ ->
              (* Connections are served sequentially on this one thread,
                 so a client that connects and then trickles (or sends
                 nothing) must not wedge /metrics for everyone else:
                 reads and writes time out, surfacing as a Unix_error
                 that read_head/write_response already treat as a dead
                 connection. *)
              (try
                 Unix.setsockopt_float conn Unix.SO_RCVTIMEO 5.0;
                 Unix.setsockopt_float conn Unix.SO_SNDTIMEO 5.0
               with Unix.Unix_error _ -> ());
              Fun.protect
                ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
                (fun () -> try serve_connection routes conn with _ -> ())
          | exception Unix.Unix_error _ ->
              (* EBADF/EINVAL after [stop] closed the socket, or a stray
                 accept failure: exit iff stopping, else keep serving. *)
              if Atomic.get stop_flag then continue := false
        done)
      ()
  in
  { sock; port; thread; stop_flag }

let port t = t.port

let stop t =
  Atomic.set t.stop_flag true;
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  Thread.join t.thread
