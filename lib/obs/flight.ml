(* Flight recorder: decision log, overhead entries, JSONL codec, and the
   offline replayer.  See flight.mli for the model. *)

type task_obs = { task : string; iters : int; ips : float; exec_ns : float }

type decision = {
  epoch : int;
  t : int;
  actor : string;
  region : string;
  state : Event.ctrl_state option;
  reason : string;
  tasks : task_obs list;
  probes : (int * float) list;
  gradient : float option;
  inputs : (string * float) list;
  candidate : int;
  chosen : int;
  threads : int;
  budget : int;
  slack : (string * int) list;
}

type overhead = { o_t : int; o_region : string; o_phase : string; o_ns : int }
type entry = Decision of decision | Overhead of overhead

(* ------------------------------------------------------------------ *)
(* The recorder.                                                      *)

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable count : int;
  mutable next_epoch : int;
}

let create () = { entries = []; count = 0; next_epoch = 0 }
let null = { entries = []; count = 0; next_epoch = 0 }
let is_null r = r == null
let cur : t ref = ref null
let set r = cur := r
let clear () = cur := null
let current () = !cur
let enabled () = not (is_null !cur)

let with_recorder r f =
  let prev = !cur in
  cur := r;
  Fun.protect ~finally:(fun () -> cur := prev) f

let entries r = List.rev r.entries
let count r = r.count

let push r e =
  r.entries <- e :: r.entries;
  r.count <- r.count + 1

let decision ~t ~actor ~region ?state ~reason ?(tasks = []) ?(probes = []) ?gradient
    ?(inputs = []) ?(slack = []) ~candidate ~chosen ~threads ~budget () =
  let r = !cur in
  if not (is_null r) then begin
    let epoch = r.next_epoch in
    r.next_epoch <- epoch + 1;
    push r
      (Decision
         {
           epoch;
           t;
           actor;
           region;
           state;
           reason;
           tasks;
           probes;
           gradient;
           inputs;
           candidate;
           chosen;
           threads;
           budget;
           slack;
         })
  end

let overhead ~t ~region ~phase ~ns =
  let r = !cur in
  if not (is_null r) then push r (Overhead { o_t = t; o_region = region; o_phase = phase; o_ns = ns })

(* ------------------------------------------------------------------ *)
(* JSONL codec.                                                       *)

let num = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> raise (Json.Parse_error "expected a number")

let task_to_json o =
  Json.List [ Json.Str o.task; Json.Int o.iters; Json.Float o.ips; Json.Float o.exec_ns ]

let task_of_json = function
  | Json.List [ Json.Str task; Json.Int iters; ips; exec_ns ] ->
      { task; iters; ips = num ips; exec_ns = num exec_ns }
  | _ -> raise (Json.Parse_error "bad task entry")

let pair_if name l = if l = [] then [] else [ (name, Json.List l) ]

let decision_to_json d =
  Json.Obj
    ([ ("rec", Json.Str "decision"); ("epoch", Json.Int d.epoch); ("t", Json.Int d.t);
       ("actor", Json.Str d.actor); ("region", Json.Str d.region) ]
    @ (match d.state with
      | None -> []
      | Some s -> [ ("state", Json.Str (Event.ctrl_state_to_string s)) ])
    @ [ ("reason", Json.Str d.reason) ]
    @ pair_if "tasks" (List.map task_to_json d.tasks)
    @ pair_if "probes"
        (List.map (fun (dop, f) -> Json.List [ Json.Int dop; Json.Float f ]) d.probes)
    @ (match d.gradient with None -> [] | Some g -> [ ("gradient", Json.Float g) ])
    @ pair_if "inputs" (List.map (fun (k, v) -> Json.List [ Json.Str k; Json.Float v ]) d.inputs)
    @ pair_if "slack" (List.map (fun (n, b) -> Json.List [ Json.Str n; Json.Int b ]) d.slack)
    @ [ ("candidate", Json.Int d.candidate); ("chosen", Json.Int d.chosen);
        ("threads", Json.Int d.threads); ("budget", Json.Int d.budget) ])

let opt_list name of_item j =
  match Json.member name j with
  | None -> []
  | Some (Json.List l) -> List.map of_item l
  | Some _ -> raise (Json.Parse_error (name ^ " must be a list"))

let decision_of_json j =
  {
    epoch = Json.get_int "epoch" j;
    t = Json.get_int "t" j;
    actor = Json.get_str "actor" j;
    region = Json.get_str "region" j;
    state =
      (match Json.member "state" j with
      | Some (Json.Str s) -> Some (Event.ctrl_state_of_string s)
      | Some _ -> raise (Json.Parse_error "state must be a string")
      | None -> None);
    reason = Json.get_str "reason" j;
    tasks = opt_list "tasks" task_of_json j;
    probes =
      opt_list "probes"
        (function
          | Json.List [ Json.Int dop; f ] -> (dop, num f)
          | _ -> raise (Json.Parse_error "bad probe entry"))
        j;
    gradient = (match Json.member "gradient" j with None -> None | Some g -> Some (num g));
    inputs =
      opt_list "inputs"
        (function
          | Json.List [ Json.Str k; v ] -> (k, num v)
          | _ -> raise (Json.Parse_error "bad input entry"))
        j;
    candidate = Json.get_int "candidate" j;
    chosen = Json.get_int "chosen" j;
    threads = Json.get_int "threads" j;
    budget = Json.get_int "budget" j;
    slack =
      opt_list "slack"
        (function
          | Json.List [ Json.Str n; Json.Int b ] -> (n, b)
          | _ -> raise (Json.Parse_error "bad slack entry"))
        j;
  }

let overhead_to_json o =
  Json.Obj
    [ ("rec", Json.Str "overhead"); ("t", Json.Int o.o_t); ("region", Json.Str o.o_region);
      ("phase", Json.Str o.o_phase); ("ns", Json.Int o.o_ns) ]

let overhead_of_json j =
  {
    o_t = Json.get_int "t" j;
    o_region = Json.get_str "region" j;
    o_phase = Json.get_str "phase" j;
    o_ns = Json.get_int "ns" j;
  }

let entry_to_json = function
  | Decision d -> decision_to_json d
  | Overhead o -> overhead_to_json o

let entry_of_json j =
  match Json.member "rec" j with
  | Some (Json.Str "decision") -> Decision (decision_of_json j)
  | Some (Json.Str "overhead") -> Overhead (overhead_of_json j)
  | _ -> raise (Json.Parse_error "flight entry without a rec tag")

let to_jsonl es =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buf buf (entry_to_json e);
      Buffer.add_char buf '\n')
    es;
  Buffer.contents buf

let parse_jsonl s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None else Some (entry_of_json (Json.parse line)))

(* ------------------------------------------------------------------ *)
(* The pure gradient-ascent rule (Algorithm 4).                       *)

module Ascent = struct
  type outcome = { probes : (int * float) list; chosen : int; fitness : float; reason : string }

  let climb ~measure ~d0 ~cap =
    let acc = ref [] in
    let probe d =
      match measure d with
      | None -> None
      | Some f ->
          acc := (d, f) :: !acc;
          Some f
    in
    match probe d0 with
    | None -> None
    | Some f0 -> (
        let up = if d0 + 1 <= cap then probe (d0 + 1) else None in
        let down = if d0 - 1 >= 1 then probe (d0 - 1) else None in
        (* Direction choice ties break upward: more parallelism at equal
           throughput is preferred while climbing, the reverse while
           descending (fewer threads at equal throughput). *)
        let dir, d1, f1 =
          match (up, down) with
          | Some fu, Some fd when fu >= f0 && fu >= fd -> (1, d0 + 1, fu)
          | Some fu, None when fu >= f0 -> (1, d0 + 1, fu)
          | _, Some fd when fd > f0 -> (-1, d0 - 1, fd)
          | _ -> (0, d0, f0)
        in
        let finish chosen fitness reason =
          Some { probes = List.rev !acc; chosen; fitness; reason }
        in
        if dir = 0 then finish d0 f0 "gradient_flat"
        else
          let reason = if dir = 1 then "gradient_positive" else "gradient_negative" in
          let rec go d_prev f_prev =
            let d_next = d_prev + dir in
            if d_next < 1 || d_next > cap then finish d_prev f_prev reason
            else
              match probe d_next with
              | None -> None
              | Some f_next ->
                  let keep = if dir = 1 then f_next > f_prev else f_next >= f_prev in
                  if keep then go d_next f_next else finish d_prev f_prev reason
          in
          go d1 f1)

  let gradient ~d0 probes =
    match
      (List.assoc_opt d0 probes, List.assoc_opt (d0 + 1) probes, List.assoc_opt (d0 - 1) probes)
    with
    | Some f0, Some fu, _ -> Some (fu -. f0)
    | Some f0, None, Some fd -> Some (f0 -. fd)
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Offline replay.                                                    *)

type replay_result = {
  decisions : int;
  mismatches : (int * string) list;
  moves : (string * int list) list;
}

let is_gradient = function
  | "gradient_positive" | "gradient_negative" | "gradient_flat" -> true
  | _ -> false

let input d k = List.assoc_opt k d.inputs

(* Replaying one decision yields the thread total of the configuration it
   applies ([None] when it applies nothing) plus an optional mismatch. *)
let replay_decision d : int option * string option =
  if is_gradient d.reason then
    let cap = match input d "cap" with Some c -> int_of_float c | None -> max_int in
    match
      Ascent.climb ~measure:(fun dop -> List.assoc_opt dop d.probes) ~d0:d.candidate ~cap
    with
    | None -> (Some d.threads, Some "gradient replay hit a DoP missing from the calibration table")
    | Some oc ->
        let move = Some (d.threads - d.chosen + oc.chosen) in
        if oc.chosen <> d.chosen then
          ( move,
            Some
              (Printf.sprintf "gradient replay chose DoP %d where the log says %d" oc.chosen
                 d.chosen) )
        else if oc.reason <> d.reason then
          (move, Some (Printf.sprintf "gradient replay took direction %s, log says %s" oc.reason d.reason))
        else (move, None)
  else
    match d.reason with
    | "adopt_best" -> (
        match d.probes with
        | [] -> (Some d.threads, Some "adopt_best carries an empty scheme table")
        | (c0, f0) :: rest -> (
            (* First maximum wins, mirroring the controller's [bt >= thr]
               keep rule: a later scheme replaces the best only when
               strictly better. *)
            let win, _ =
              List.fold_left (fun (bc, bf) (c, f) -> if f > bf then (c, f) else (bc, bf)) (c0, f0)
                rest
            in
            match input d "choice" with
            | Some ch when int_of_float ch = win -> (Some d.threads, None)
            | Some ch ->
                ( Some d.threads,
                  Some
                    (Printf.sprintf "adopt_best replay picked scheme %d, log says %d" win
                       (int_of_float ch)) )
            | None -> (Some d.threads, Some "adopt_best decision lacks its chosen scheme")))
    | "baseline" | "calibration_point" | "cache_hit" ->
        if d.chosen = d.candidate then (Some d.threads, None)
        else (Some d.threads, Some "applied configuration differs from its candidate")
    | "workload_slowed" | "workload_sped_up" -> (
        match (input d "base", input d "thr", input d "change_frac") with
        | Some base, Some thr, Some frac when base > 0.0 ->
            let drift = abs_float (thr -. base) /. base in
            if drift <= frac then (None, Some "recorded drift does not exceed the change threshold")
            else if d.reason = "workload_slowed" <> (thr < base) then
              (None, Some "drift direction contradicts the reason")
            else (None, None)
        | _ -> (None, Some "workload-change decision lacks base/thr/change_frac"))
    | "resources_grew" | "resources_shrank" -> (
        match (input d "old_budget", input d "new_budget") with
        | Some ob, Some nb ->
            if d.reason = "resources_grew" = (nb > ob) then (None, None)
            else (None, Some "budget delta contradicts the reason")
        | _ -> (None, Some "resource-change decision lacks old/new budgets"))
    | "rounds_exhausted" | "finished" -> (None, None)
    | "equal_share" | "slack_reclaimed" ->
        if List.exists (fun (_, b) -> b < 1) d.slack then
          (None, Some "daemon granted a program no threads")
        else if
          List.length d.slack <= d.budget
          && List.fold_left (fun a (_, b) -> a + b) 0 d.slack > d.budget
        then (None, Some "daemon shares exceed the platform total")
        else (None, None)
    | _ ->
        (* Mechanism proposals: the move is the proposal itself. *)
        if d.chosen = d.candidate then (Some d.chosen, None)
        else (Some d.chosen, Some "mechanism move differs from its proposal")

let collect_moves move_of es =
  let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 7 in
  let order = ref [] in
  List.iter
    (function
      | Overhead _ -> ()
      | Decision d -> (
          match move_of d with
          | None -> ()
          | Some threads -> (
              match Hashtbl.find_opt tbl d.region with
              | Some l -> l := threads :: !l
              | None ->
                  Hashtbl.add tbl d.region (ref [ threads ]);
                  order := d.region :: !order)))
    es;
  List.rev_map (fun r -> (r, List.rev !(Hashtbl.find tbl r))) !order

let recorded_move d =
  let applies =
    is_gradient d.reason
    ||
    match d.reason with
    | "adopt_best" | "baseline" | "calibration_point" | "cache_hit" -> true
    | "workload_slowed" | "workload_sped_up" | "resources_grew" | "resources_shrank"
    | "rounds_exhausted" | "finished" | "equal_share" | "slack_reclaimed" ->
        false
    | _ -> d.actor = "morta"
  in
  if applies then Some d.threads else None

let recorded_moves es = collect_moves recorded_move es

let replay es =
  let decisions = ref 0 and mismatches = ref [] in
  let replayed : (decision, int option) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (function
      | Overhead _ -> ()
      | Decision d ->
          incr decisions;
          let move, err = replay_decision d in
          Hashtbl.replace replayed d move;
          (match err with
          | None -> ()
          | Some what -> mismatches := (d.epoch, what) :: !mismatches))
    es;
  let moves =
    collect_moves (fun d -> match Hashtbl.find_opt replayed d with Some m -> m | None -> None) es
  in
  { decisions = !decisions; mismatches = List.rev !mismatches; moves }
