(** Per-domain scheduler timelines: where does each execution lane's wall
    time go?

    A timeline holds one lane per scheduler execution unit — a pool domain
    on the native backend, a core on the simulator.  Each lane is a state
    machine over {!state}: the backend records a transition whenever the
    lane changes what it is doing (picked up a task, started a steal sweep,
    parked, ...), and the timeline accumulates time-weighted totals per
    state plus a preallocated ring of completed spans for inspection.

    Two recording channels feed a lane:

    - {!enter} — the live transition stream.  Only the lane's own domain
      calls it, so lane mutation needs no synchronisation.  Consecutive
      transitions partition the lane's wall time exactly: closing span [n]
      opens span [n+1] at the same instant.
    - {!attribute} — retroactive {e explanation} of time already recorded:
      a GC pause measured by {!Runtime_ev}, a channel wait, a barrier
      wait, a reconfiguration phase.  Attribution is a zero-sum transfer
      in {!breakdown} — the explained nanoseconds move out of donor states
      into the explaining state, clamped at what the donors actually hold
      — so per-lane shares always sum to 1 regardless of how much was
      attributed.  GC displaces [Run] first (pauses happen inside running
      code); channel and barrier waits displace idle states only (a
      blocked fiber's domain either ran other work or idled — the wait
      never consumed compute), so on a saturated lane over-reported waits
      clamp to ~zero instead of eating [Run].

    Like {!Trace} and {!Metrics} there is one globally installed timeline
    ({!set}/{!get}/{!with_timeline}); emitters guard with {!enabled} so a
    disabled timeline costs one load and one comparison. *)

type state =
  | Run  (** executing task / fiber code *)
  | Steal_search  (** idle: sweeping victim deques / spinning for work *)
  | Park  (** idle: sleeping (exponential backoff), or a core with no thread *)
  | Gc  (** attributed: minor/major GC pause (from {!Runtime_ev}) *)
  | Barrier_wait  (** attributed: blocked at a barrier *)
  | Chan_wait  (** attributed: blocked on an empty/full channel *)
  | Reconfig  (** attributed: executing the pause/reconfigure/resume protocol *)

val n_states : int
val state_index : state -> int
val state_name : state -> string
val state_of_string : string -> state
val all_states : state list

type t

val create : ?capacity:int -> ?initial:state -> lanes:int -> now:int -> unit -> t
(** [capacity] is the per-lane span ring size (default 4096); the rings
    are preallocated at creation so recording never allocates.  [initial]
    is the state every lane is in at [now] (default [Park]).
    @raise Invalid_argument if [lanes < 1] or [capacity < 1]. *)

val lanes : t -> int
val origin : t -> int
(** The [now] the timeline was created with; breakdowns cover
    [origin, until]. *)

val enter : t -> lane:int -> now:int -> state -> unit
(** Transition [lane] to a new state at [now], closing the current span.
    A transition into the current state is a no-op (spans merge).  Clock
    readings that race backwards are clamped to the span start.  Must only
    be called from the lane's own domain. *)

val attribute : t -> lane:int -> state -> int -> unit
(** [attribute t ~lane st ns] explains [ns] nanoseconds of [lane]'s
    already-recorded time as [st].  Applied at {!breakdown} as a zero-sum
    transfer from donor states; negative [ns] is ignored. *)

type span = { s_state : state; s_t0 : int; s_t1 : int }

val spans : t -> lane:int -> span list
(** Completed spans retained in [lane]'s ring, oldest first (the open
    span is not included). *)

val span_drops : t -> lane:int -> int
(** Completed spans overwritten after [lane]'s ring filled.  The
    per-state accumulators are exact regardless. *)

(** {1 Aggregation} *)

type lane_breakdown = {
  lane : int;
  wall_ns : int;  (** [until - origin] *)
  by_state : int array;  (** ns per state, indexed by {!state_index} *)
  shares : float array;  (** [by_state / wall_ns]; all zero when wall is 0 *)
}

val breakdown : t -> until:int -> lane_breakdown array
(** Per-lane totals over [origin, until], attribution transfers applied.
    Each lane's [by_state] sums to [wall_ns] exactly (shares sum to 1). *)

val merged_shares : lane_breakdown array -> (state * float) list
(** Wall-weighted average share per state across lanes, every state
    listed (including zeros), in declaration order. *)

val breakdown_to_json : lane_breakdown array -> Json.t
(** [{"lanes": [{"lane": i, "wall_ns": w, "shares": {"run": 0.42, ...}},
    ...], "merged": {"run": ..., ...}}] *)

(** {1 The installed timeline} *)

val set : t -> unit
val clear : unit -> unit
val get : unit -> t option
val enabled : unit -> bool

val with_timeline : t -> (unit -> 'a) -> 'a
(** Install [tl] for the duration of the callback, restoring the previous
    installation afterwards (exception-safe). *)
