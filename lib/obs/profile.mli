(** Folded-stack profiles derived from the metrics registry.

    Decima attributes per-task compute time into the
    [parcae_task_compute_ns_total] counter family with [region], [scheme],
    and [task] labels; {!folded} collapses those series into the
    "frame;frame;frame value" lines flamegraph.pl and speedscope consume:

    {v ferret;ferret-pipe;rank 123456789 v}

    Feed the output to [flamegraph.pl profile.folded > flame.svg] or drop
    it into https://speedscope.app. *)

val default_family : string
(** ["parcae_task_compute_ns_total"]. *)

val default_frames : string list
(** [\["region"; "scheme"; "task"\]]. *)

val folded : ?family:string -> ?frames:string list -> Metrics.t -> string
(** Render the [family] counter series whose labels cover every name in
    [frames] as sorted folded-stack lines (newline-terminated; [""] when
    the family is absent or all-zero).  Byte-deterministic whenever the
    underlying counters are. *)

val parse : string -> (string list * int) list
(** Inverse of {!folded}: [(frames, value)] per line.
    @raise Invalid_argument on a malformed line. *)
