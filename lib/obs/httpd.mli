(** A minimal dependency-free HTTP/1.1 exposition server.

    Just enough protocol for a Prometheus scrape loop or a curl: GET
    routing over blocking sockets on one OS thread, Connection: close on
    every response, 404 for unknown paths, 405 for non-GET methods, and
    a per-connection exception guard so a malformed request can never
    take down the serving run next to it.  Built on [Unix] and [Thread]
    only — both ship with the compiler. *)

type response = { status : int; content_type : string; body : string }

val ok : ?content_type:string -> string -> response
(** A 200 response; [content_type] defaults to
    ["text/plain; charset=utf-8"]. *)

type t

val start :
  ?host:string -> port:int -> routes:(string * (unit -> response)) list -> unit -> t
(** Bind [host] (default 127.0.0.1, must be a literal address) on [port]
    (0 picks an ephemeral port — read it back with {!port}) and serve
    [routes] — an exact-path → handler association; query strings are
    stripped before matching.  Handlers run on the server thread.
    @raise Unix.Unix_error when the bind fails (port in use, bad perms). *)

val port : t -> int

val stop : t -> unit
(** Close the listening socket and join the server thread. *)
