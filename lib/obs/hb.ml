(* FastTrack-style happens-before tracking over IR array cells.

   Vector clocks are sparse hashtables keyed by task id; each task also
   keeps a scalar release clock.  A task's logical clock vector is its
   table plus the implicit binding [tid -> clk].  Release-type events
   (lock release, channel send, barrier arrival, park, spawn, completion)
   publish that vector into a sync object and then bump the scalar, so an
   access epoch [(tid, c)] happens-before a task iff the task has acquired
   a publication with [vc(tid) >= c].

   Shadow memory keeps, per (array, index) cell, the last write epoch and
   the last read epoch per (task, node).  Writes are checked against the
   last write and every recorded read; reads against the last write.  A
   successful (race-free) write resets the read set — the checked reads
   are ordered before it, so later accesses ordered after the write are
   transitively ordered after them (the FastTrack read-set reset).

   Every check is also recorded as an observed collision between the two
   IR nodes involved, whether ordered or not: ordered collisions are
   dynamically-materialized dependences (the differential auditor compares
   them against the static PDG), raced ones are candidate soundness
   violations.

   One mutex guards the whole tracker: the sanitizer is an opt-in audit
   mode, so cross-domain contention on the native backend is an accepted
   cost, not a hot path. *)

type epoch = { e_task : int; e_clk : int; e_node : int }

type task_state = {
  vc : (int, int) Hashtbl.t;  (* acquired clocks, excluding self *)
  mutable clk : int;  (* own release clock *)
}

type cell = {
  mutable w : epoch option;  (* last write *)
  mutable w_was_write : bool;
  mutable readers : ((int * int) * epoch) list;  (* (task, node) -> last read *)
}

type pair_key = { pk_arr : string; pk_src : int; pk_dst : int }

type pair_stat = {
  mutable s_count : int;
  mutable s_raced : int;
  mutable s_src_write : bool;
  mutable s_dst_write : bool;
  mutable s_idx : int;
  mutable s_task_src : int;
  mutable s_task_dst : int;
}

type t = {
  mu : Mutex.t;
  tasks : (int, task_state) Hashtbl.t;
  cells : (string * int, cell) Hashtbl.t;
  syncs : (string, (int, int) Hashtbl.t) Hashtbl.t;  (* cumulative per key *)
  msgs : (string * int, (int, int) Hashtbl.t) Hashtbl.t;  (* (chan, seq) snapshots *)
  pair_stats : (pair_key, pair_stat) Hashtbl.t;
  mutable accesses : int;
  mutable race_occurrences : int;
}

let create () =
  {
    mu = Mutex.create ();
    tasks = Hashtbl.create 64;
    cells = Hashtbl.create 1024;
    syncs = Hashtbl.create 32;
    msgs = Hashtbl.create 256;
    pair_stats = Hashtbl.create 64;
    accesses = 0;
    race_occurrences = 0;
  }

(* ------------------------------------------------------------------ *)
(* Installation (the Trace ambient-cell pattern).                      *)
(* ------------------------------------------------------------------ *)

let current : t option ref = ref None

let set tr = current := Some tr
let clear () = current := None
let get () = !current
let enabled () = match !current with Some _ -> true | None -> false

let with_tracker tr f =
  set tr;
  Fun.protect ~finally:clear f

let locked tr f =
  Mutex.lock tr.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock tr.mu) f

(* ------------------------------------------------------------------ *)
(* Vector-clock plumbing.                                              *)
(* ------------------------------------------------------------------ *)

let task_state tr tid =
  match Hashtbl.find_opt tr.tasks tid with
  | Some st -> st
  | None ->
      let st = { vc = Hashtbl.create 8; clk = 0 } in
      Hashtbl.replace tr.tasks tid st;
      st

(* The task's full clock vector as a fresh table (self entry included). *)
let snapshot_of tid (st : task_state) =
  let s = Hashtbl.copy st.vc in
  Hashtbl.replace s tid st.clk;
  s

let join_into dst src =
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt dst k with
      | Some v0 when v0 >= v -> ()
      | _ -> Hashtbl.replace dst k v)
    src

let sync_table tr key =
  match Hashtbl.find_opt tr.syncs key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace tr.syncs key s;
      s

let release_locked tr ~task ~key =
  let st = task_state tr task in
  join_into (sync_table tr key) (snapshot_of task st);
  st.clk <- st.clk + 1

let acquire_locked tr ~task ~key =
  match Hashtbl.find_opt tr.syncs key with
  | None -> ()
  | Some s ->
      let st = task_state tr task in
      join_into st.vc s

(* Did epoch [e] happen before the current state of [task]? *)
let ordered st ~task (e : epoch) =
  e.e_task = task
  ||
  match Hashtbl.find_opt st.vc e.e_task with
  | Some v -> e.e_clk <= v
  | None -> false

(* ------------------------------------------------------------------ *)
(* Causal-event hooks.                                                 *)
(* ------------------------------------------------------------------ *)

let on_spawn ~parent ~child =
  match !current with
  | None -> ()
  | Some tr ->
      locked tr (fun () ->
          let pst = task_state tr parent in
          let cst = task_state tr child in
          join_into cst.vc (snapshot_of parent pst);
          pst.clk <- pst.clk + 1)

let done_key tid = "task-done:" ^ string_of_int tid

let on_task_done ~task =
  match !current with
  | None -> ()
  | Some tr -> locked tr (fun () -> release_locked tr ~task ~key:(done_key task))

let on_join ~task ~joined =
  match !current with
  | None -> ()
  | Some tr -> locked tr (fun () -> acquire_locked tr ~task ~key:(done_key joined))

let on_release ~task ~key =
  match !current with
  | None -> ()
  | Some tr -> locked tr (fun () -> release_locked tr ~task ~key)

let on_acquire ~task ~key =
  match !current with
  | None -> ()
  | Some tr -> locked tr (fun () -> acquire_locked tr ~task ~key)

let chan_key chan = "chan:" ^ chan

let on_send ~task ~chan ~seq =
  match !current with
  | None -> ()
  | Some tr ->
      locked tr (fun () ->
          let st = task_state tr task in
          let snap = snapshot_of task st in
          if seq >= 0 then Hashtbl.replace tr.msgs (chan, seq) snap;
          join_into (sync_table tr (chan_key chan)) snap;
          st.clk <- st.clk + 1)

let on_recv ~task ~chan ~seq =
  match !current with
  | None -> ()
  | Some tr ->
      locked tr (fun () ->
          let st = task_state tr task in
          match if seq >= 0 then Hashtbl.find_opt tr.msgs (chan, seq) else None with
          | Some snap ->
              Hashtbl.remove tr.msgs (chan, seq);
              join_into st.vc snap
          | None -> acquire_locked tr ~task ~key:(chan_key chan))

(* ------------------------------------------------------------------ *)
(* Shadow-memory accesses.                                             *)
(* ------------------------------------------------------------------ *)

(* Sanitizer throughput counters; handle cached against the installed
   registry like every other instrumented module. *)
type san_metrics = { sm_accesses : Metrics.counter; sm_races : Metrics.counter }

let smx : (Metrics.t * san_metrics) option ref = ref None

let san_handles () =
  let reg = Metrics.current () in
  match !smx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let h =
        {
          sm_accesses =
            Metrics.counter reg "parcae_sanitizer_accesses_total"
              ~help:"Array loads/stores checked by the race sanitizer.";
          sm_races =
            Metrics.counter reg "parcae_sanitizer_races_total"
              ~help:"Unordered conflicting access pairs the sanitizer observed.";
        }
      in
      smx := Some (reg, h);
      h

let find_cell tr arr idx =
  let key = (arr, idx) in
  match Hashtbl.find_opt tr.cells key with
  | Some c -> c
  | None ->
      let c = { w = None; w_was_write = false; readers = [] } in
      Hashtbl.replace tr.cells key c;
      c

(* Record the collision (prior -> current) and return whether it raced. *)
let note_pair tr ~arr ~idx ~(prior : epoch) ~prior_write ~task ~node ~write ~is_ordered =
  let key = { pk_arr = arr; pk_src = prior.e_node; pk_dst = node } in
  let s =
    match Hashtbl.find_opt tr.pair_stats key with
    | Some s -> s
    | None ->
        let s =
          {
            s_count = 0;
            s_raced = 0;
            s_src_write = false;
            s_dst_write = false;
            s_idx = idx;
            s_task_src = prior.e_task;
            s_task_dst = task;
          }
        in
        Hashtbl.replace tr.pair_stats key s;
        s
  in
  s.s_count <- s.s_count + 1;
  s.s_src_write <- s.s_src_write || prior_write;
  s.s_dst_write <- s.s_dst_write || write;
  if not is_ordered then begin
    (* Prefer a raced occurrence as the reported example. *)
    s.s_idx <- idx;
    s.s_task_src <- prior.e_task;
    s.s_task_dst <- task;
    s.s_raced <- s.s_raced + 1;
    tr.race_occurrences <- tr.race_occurrences + 1;
    if Metrics.enabled () then Metrics.inc (san_handles ()).sm_races
  end

let on_access ~task ~arr ~idx ~node ~write =
  match !current with
  | None -> ()
  | Some tr ->
      locked tr (fun () ->
          tr.accesses <- tr.accesses + 1;
          if Metrics.enabled () then Metrics.inc (san_handles ()).sm_accesses;
          let st = task_state tr task in
          let cell = find_cell tr arr idx in
          (* Check against the last write (conflicts for both reads and
             writes). *)
          (match cell.w with
          | Some e ->
              note_pair tr ~arr ~idx ~prior:e ~prior_write:cell.w_was_write ~task ~node
                ~write ~is_ordered:(ordered st ~task e)
          | None -> ());
          if write then begin
            (* A write also conflicts with every recorded read. *)
            List.iter
              (fun ((rt, _), e) ->
                if not (rt = task && e.e_node = node) then
                  note_pair tr ~arr ~idx ~prior:e ~prior_write:false ~task ~node ~write
                    ~is_ordered:(ordered st ~task e))
              cell.readers;
            cell.w <- Some { e_task = task; e_clk = st.clk; e_node = node };
            cell.w_was_write <- true;
            cell.readers <- []
          end
          else begin
            let k = (task, node) in
            let e = { e_task = task; e_clk = st.clk; e_node = node } in
            cell.readers <- (k, e) :: List.remove_assoc k cell.readers
          end)

(* ------------------------------------------------------------------ *)
(* Results.                                                            *)
(* ------------------------------------------------------------------ *)

type pair = {
  p_arr : string;
  p_src : int;
  p_dst : int;
  p_src_write : bool;
  p_dst_write : bool;
  p_count : int;
  p_raced : int;
  p_idx : int;
  p_task_src : int;
  p_task_dst : int;
}

let pairs tr =
  locked tr (fun () ->
      Hashtbl.fold
        (fun k (s : pair_stat) acc ->
          {
            p_arr = k.pk_arr;
            p_src = k.pk_src;
            p_dst = k.pk_dst;
            p_src_write = s.s_src_write;
            p_dst_write = s.s_dst_write;
            p_count = s.s_count;
            p_raced = s.s_raced;
            p_idx = s.s_idx;
            p_task_src = s.s_task_src;
            p_task_dst = s.s_task_dst;
          }
          :: acc)
        tr.pair_stats [])
  |> List.sort (fun a b ->
         match compare a.p_arr b.p_arr with
         | 0 -> compare (a.p_src, a.p_dst) (b.p_src, b.p_dst)
         | c -> c)

let races tr = List.filter (fun p -> p.p_raced > 0) (pairs tr)
let access_count tr = locked tr (fun () -> tr.accesses)
let race_count tr = locked tr (fun () -> tr.race_occurrences)
let task_count tr = locked tr (fun () -> Hashtbl.length tr.tasks)
