(* Minimal JSON values, printer, and parser.

   The observability layer serializes traces to JSONL and Chrome
   trace_event JSON without pulling a JSON dependency into the build: the
   emitted subset is small and fully under our control, and the parser
   accepts standard JSON (enough for round-tripping our own output and for
   tests that validate the Chrome export is well-formed). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print via %.17g so parsing the output recovers the exact value
   (shortest exact round-trip is overkill here; byte-stability matters for
   the determinism tests, and a fixed format gives it). *)
let float_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_to_string v)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buf buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buf buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            (* Traces only escape control characters, so the code point is
               always in the single-byte range. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else fail c "non-ASCII \\u escape unsupported";
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec run () =
    match peek c with Some ch when is_num_char ch -> advance c; run () | _ -> ()
  in
  run ();
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c ("bad number " ^ text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((k, v) :: acc)
          | Some '}' -> advance c; List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elements (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors used by the event decoder.                                *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let get_int name j =
  match member name j with
  | Some (Int i) -> i
  | _ -> raise (Parse_error ("missing int field " ^ name))

let get_float name j =
  match member name j with
  | Some (Float f) -> f
  | Some (Int i) -> float_of_int i
  | _ -> raise (Parse_error ("missing float field " ^ name))

let get_str name j =
  match member name j with
  | Some (Str s) -> s
  | _ -> raise (Parse_error ("missing string field " ^ name))

let get_bool name j =
  match member name j with
  | Some (Bool b) -> b
  | _ -> raise (Parse_error ("missing bool field " ^ name))

let get_list name j =
  match member name j with
  | Some (List l) -> l
  | _ -> raise (Parse_error ("missing list field " ^ name))
