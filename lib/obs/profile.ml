(* Folded-stack profiles derived from the metrics registry.

   Decima attributes compute time per (region, scheme, task) into the
   [parcae_task_compute_ns_total] counter family; folding those series into
   "frame;frame;frame value" lines yields the collapsed-stack format that
   flamegraph.pl and speedscope consume directly:

     ferret;ferret-pipe;rank 123456789

   The stack frames are label values in [frames] order; series missing a
   frame label or with a zero value are skipped.  Lines are sorted, so a
   profile is byte-deterministic whenever the underlying counters are. *)

let default_family = "parcae_task_compute_ns_total"
let default_frames = [ "region"; "scheme"; "task" ]

(* flamegraph.pl splits on the last space; ';' and ' ' inside a frame would
   corrupt the stack, so map them away. *)
let sanitize_frame s =
  String.map (fun c -> match c with ';' | ' ' | '\n' -> '_' | c -> c) s

let folded ?(family = default_family) ?(frames = default_frames) reg =
  let fams = Metrics.snapshot reg in
  let lines =
    List.concat_map
      (fun (f : Metrics.fam_snapshot) ->
        if f.Metrics.name <> family then []
        else
          List.filter_map
            (fun { Metrics.labels; value } ->
              let frame_values =
                List.map (fun k -> List.assoc_opt k labels) frames
              in
              if List.exists Option.is_none frame_values then None
              else
                let stack =
                  String.concat ";"
                    (List.map (fun v -> sanitize_frame (Option.get v)) frame_values)
                in
                match value with
                | Metrics.Counter_v n when n > 0 -> Some (Printf.sprintf "%s %d" stack n)
                | Metrics.Gauge_v g when g > 0.0 ->
                    Some (Printf.sprintf "%s %d" stack (int_of_float g))
                | _ -> None)
            f.Metrics.samples)
      fams
  in
  match List.sort compare lines with
  | [] -> ""
  | sorted -> String.concat "\n" sorted ^ "\n"

(* Parse a folded profile back into (frames, value) rows — used by tests
   and by anything that wants to aggregate profiles. *)
let parse s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line ->
         match String.rindex_opt line ' ' with
         | None -> invalid_arg ("Profile.parse: no value in line " ^ line)
         | Some i ->
             let stack = String.sub line 0 i in
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             (String.split_on_char ';' stack, int_of_string v))
