(* The typed trace-event vocabulary of the runtime protocol.

   Every event is stamped with the simulated time (virtual nanoseconds) at
   which it was emitted.  The vocabulary mirrors the observable protocol of
   the paper: region lifecycle (launch/termination), the closed-loop
   controller's FSM transitions (Figure 6.3), the pause/reconfigure/resume
   sequence (Section 6.2) with its channel flushes (Section 4.5), the
   barrier-less DoP resizes (Section 7.2), the daemon's platform-wide
   thread partitioning (Section 6.4.3), and Decima's hook and feature
   samples (Section 4.7).  [Oracle] replays a trace and checks the protocol
   invariants; [Export] renders timelines (Figure 8.8) for Perfetto. *)

(* Controller FSM states (Figure 6.3).  Defined here, below the runtime in
   the dependency order, so traces stay decodable without the runtime;
   [Controller] maps its own state type onto this one. *)
type ctrl_state = Init | Calibrate | Optimize | Monitor

let ctrl_state_to_string = function
  | Init -> "INIT"
  | Calibrate -> "CALIB"
  | Optimize -> "OPT"
  | Monitor -> "MONITOR"

let ctrl_state_of_string = function
  | "INIT" -> Init
  | "CALIB" -> Calibrate
  | "OPT" -> Optimize
  | "MONITOR" -> Monitor
  | s -> invalid_arg ("Event.ctrl_state_of_string: " ^ s)

let ctrl_state_code = function Init -> 0 | Calibrate -> 1 | Optimize -> 2 | Monitor -> 3

type kind =
  | Region_start of { region : string; scheme : string; threads : int; budget : int }
      (* a managed region launched its worker teams *)
  | Region_stop of { region : string }
      (* the region reached Done (master completed or terminated) *)
  | Ctrl_state of { region : string; state : ctrl_state }
      (* the closed-loop controller entered an FSM state *)
  | Dop_change of {
      region : string;
      scheme : string;
      old_dop : int;  (* total threads before the change *)
      new_dop : int;  (* total threads after the change *)
      budget : int;  (* region budget at the moment of the change *)
      light : bool;  (* barrier-less resize (Section 7.2) vs pause/resume *)
    }
  | Pause of { region : string }
      (* pause signalled; workers are draining toward the park barrier *)
  | Resume of { region : string; scheme : string; threads : int }
      (* region relaunched (possibly under a new configuration) *)
  | Chan_flush of { chan : string; dropped : int }
      (* a channel was drained / stripped of sentinels during reset *)
  | Budget_grant of { region : string; budget : int }
      (* the platform daemon (or an operator) changed the region's budget *)
  | Daemon_repartition of { shares : (string * int) list; total : int }
      (* the daemon re-partitioned the platform across programs *)
  | Hook_sample of { task : int; dt_ns : int }
      (* one begin/end hook pair measured [dt_ns] of task compute *)
  | Feature_sample of { name : string; value : float }
      (* a platform feature callback ("SystemPower", ...) was read *)
  | Cores_online of { cores : int }
      (* the platform changed the number of available cores *)
  | Trace_overflow of { dropped : int }
      (* the sink ring filled and overwrote [dropped] older events; the
         exporters prepend this so consumers see the loss explicitly *)
  | Span_overflow of { dropped : int }
      (* the completed-span ring filled and began overwriting exemplars;
         quantiles stay exact (aggregates absorbed every span), only
         per-request timelines are lost *)
  | Task_spawn of { task : int; parent : int; name : string }
      (* a scheduler task/fiber was created; [parent] is the spawning
         task id, or -1 when spawned from outside the engine *)
  | Task_done of { task : int; busy_ns : int }
      (* a task completed having accumulated [busy_ns] of compute *)
  | Chan_send_ev of { chan : string; seq : int; task : int; busy_ns : int }
      (* task [task] enqueued the [seq]-th item (0-based) into [chan],
         with [busy_ns] cumulative compute at the send *)
  | Chan_recv_ev of { chan : string; seq : int; task : int; busy_ns : int }
      (* task [task] dequeued the [seq]-th item of [chan]; FIFO order
         makes (chan, seq) the send->recv causal edge *)
  | Steal_ev of { task : int; from_lane : int; to_lane : int }
      (* a task migrated between execution lanes via a successful steal *)

type t = { t : int; kind : kind }

let make ~t kind = { t; kind }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Region_start _ -> "region_start"
  | Region_stop _ -> "region_stop"
  | Ctrl_state _ -> "ctrl_state"
  | Dop_change _ -> "dop_change"
  | Pause _ -> "pause"
  | Resume _ -> "resume"
  | Chan_flush _ -> "chan_flush"
  | Budget_grant _ -> "budget_grant"
  | Daemon_repartition _ -> "daemon_repartition"
  | Hook_sample _ -> "hook_sample"
  | Feature_sample _ -> "feature_sample"
  | Cores_online _ -> "cores_online"
  | Trace_overflow _ -> "trace_overflow"
  | Span_overflow _ -> "span_overflow"
  | Task_spawn _ -> "task_spawn"
  | Task_done _ -> "task_done"
  | Chan_send_ev _ -> "chan_send"
  | Chan_recv_ev _ -> "chan_recv"
  | Steal_ev _ -> "steal"

let to_json { t; kind } =
  let fields =
    match kind with
    | Region_start { region; scheme; threads; budget } ->
        [ ("region", Json.Str region); ("scheme", Json.Str scheme);
          ("threads", Json.Int threads); ("budget", Json.Int budget) ]
    | Region_stop { region } -> [ ("region", Json.Str region) ]
    | Ctrl_state { region; state } ->
        [ ("region", Json.Str region); ("state", Json.Str (ctrl_state_to_string state)) ]
    | Dop_change { region; scheme; old_dop; new_dop; budget; light } ->
        [ ("region", Json.Str region); ("scheme", Json.Str scheme);
          ("old_dop", Json.Int old_dop); ("new_dop", Json.Int new_dop);
          ("budget", Json.Int budget); ("light", Json.Bool light) ]
    | Pause { region } -> [ ("region", Json.Str region) ]
    | Resume { region; scheme; threads } ->
        [ ("region", Json.Str region); ("scheme", Json.Str scheme);
          ("threads", Json.Int threads) ]
    | Chan_flush { chan; dropped } ->
        [ ("chan", Json.Str chan); ("dropped", Json.Int dropped) ]
    | Budget_grant { region; budget } ->
        [ ("region", Json.Str region); ("budget", Json.Int budget) ]
    | Daemon_repartition { shares; total } ->
        [ ("total", Json.Int total);
          ("shares",
           Json.List
             (List.map (fun (n, b) -> Json.List [ Json.Str n; Json.Int b ]) shares)) ]
    | Hook_sample { task; dt_ns } -> [ ("task", Json.Int task); ("dt_ns", Json.Int dt_ns) ]
    | Feature_sample { name; value } ->
        [ ("name", Json.Str name); ("value", Json.Float value) ]
    | Cores_online { cores } -> [ ("cores", Json.Int cores) ]
    | Trace_overflow { dropped } -> [ ("dropped", Json.Int dropped) ]
    | Span_overflow { dropped } -> [ ("dropped", Json.Int dropped) ]
    | Task_spawn { task; parent; name } ->
        [ ("task", Json.Int task); ("parent", Json.Int parent);
          ("name", Json.Str name) ]
    | Task_done { task; busy_ns } ->
        [ ("task", Json.Int task); ("busy_ns", Json.Int busy_ns) ]
    | Chan_send_ev { chan; seq; task; busy_ns } ->
        [ ("chan", Json.Str chan); ("seq", Json.Int seq);
          ("task", Json.Int task); ("busy_ns", Json.Int busy_ns) ]
    | Chan_recv_ev { chan; seq; task; busy_ns } ->
        [ ("chan", Json.Str chan); ("seq", Json.Int seq);
          ("task", Json.Int task); ("busy_ns", Json.Int busy_ns) ]
    | Steal_ev { task; from_lane; to_lane } ->
        [ ("task", Json.Int task); ("from_lane", Json.Int from_lane);
          ("to_lane", Json.Int to_lane) ]
  in
  Json.Obj (("t", Json.Int t) :: ("ev", Json.Str (kind_name kind)) :: fields)

let of_json j =
  let t = Json.get_int "t" j in
  let kind =
    match Json.get_str "ev" j with
    | "region_start" ->
        Region_start
          { region = Json.get_str "region" j; scheme = Json.get_str "scheme" j;
            threads = Json.get_int "threads" j; budget = Json.get_int "budget" j }
    | "region_stop" -> Region_stop { region = Json.get_str "region" j }
    | "ctrl_state" ->
        Ctrl_state
          { region = Json.get_str "region" j;
            state = ctrl_state_of_string (Json.get_str "state" j) }
    | "dop_change" ->
        Dop_change
          { region = Json.get_str "region" j; scheme = Json.get_str "scheme" j;
            old_dop = Json.get_int "old_dop" j; new_dop = Json.get_int "new_dop" j;
            budget = Json.get_int "budget" j; light = Json.get_bool "light" j }
    | "pause" -> Pause { region = Json.get_str "region" j }
    | "resume" ->
        Resume
          { region = Json.get_str "region" j; scheme = Json.get_str "scheme" j;
            threads = Json.get_int "threads" j }
    | "chan_flush" ->
        Chan_flush { chan = Json.get_str "chan" j; dropped = Json.get_int "dropped" j }
    | "budget_grant" ->
        Budget_grant { region = Json.get_str "region" j; budget = Json.get_int "budget" j }
    | "daemon_repartition" ->
        Daemon_repartition
          { total = Json.get_int "total" j;
            shares =
              List.map
                (function
                  | Json.List [ Json.Str n; Json.Int b ] -> (n, b)
                  | _ -> raise (Json.Parse_error "bad share entry"))
                (Json.get_list "shares" j) }
    | "hook_sample" ->
        Hook_sample { task = Json.get_int "task" j; dt_ns = Json.get_int "dt_ns" j }
    | "feature_sample" ->
        Feature_sample { name = Json.get_str "name" j; value = Json.get_float "value" j }
    | "cores_online" -> Cores_online { cores = Json.get_int "cores" j }
    | "trace_overflow" -> Trace_overflow { dropped = Json.get_int "dropped" j }
    | "span_overflow" -> Span_overflow { dropped = Json.get_int "dropped" j }
    | "task_spawn" ->
        Task_spawn
          { task = Json.get_int "task" j; parent = Json.get_int "parent" j;
            name = Json.get_str "name" j }
    | "task_done" ->
        Task_done { task = Json.get_int "task" j; busy_ns = Json.get_int "busy_ns" j }
    | "chan_send" ->
        Chan_send_ev
          { chan = Json.get_str "chan" j; seq = Json.get_int "seq" j;
            task = Json.get_int "task" j; busy_ns = Json.get_int "busy_ns" j }
    | "chan_recv" ->
        Chan_recv_ev
          { chan = Json.get_str "chan" j; seq = Json.get_int "seq" j;
            task = Json.get_int "task" j; busy_ns = Json.get_int "busy_ns" j }
    | "steal" ->
        Steal_ev
          { task = Json.get_int "task" j; from_lane = Json.get_int "from_lane" j;
            to_lane = Json.get_int "to_lane" j }
    | s -> raise (Json.Parse_error ("unknown event kind " ^ s))
  in
  { t; kind }

let to_string e = Json.to_string (to_json e)
