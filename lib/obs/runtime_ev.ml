(* Runtime_events consumer: fold the OCaml runtime's own GC telemetry
   into the observatory.

   The runtime publishes begin/end span events per domain ring; minor
   collections and major slices nest (a minor can run inside a major
   slice, and both wrap inner phases we do not subscribe to).  We keep a
   per-ring depth counter over the two pause phases only, so exactly the
   outermost EV_MINOR/EV_MAJOR span of any nest is one pause — its
   duration is attributed to the mapped timeline lane as [Gc] and added
   to the pause metrics.

   Cursor hygiene matters: a cursor is a real OS resource (it maps the
   rings), and a consumer that leaks one per run grows without bound in a
   long-lived process.  [live_cursors] is the process-wide open count;
   CI's doctor smoke fails when it is non-zero after shutdown. *)

module RE = Runtime_events

type ring_state = {
  mutable depth : int;  (* nesting depth over the two pause phases *)
  mutable t0 : int64;  (* timestamp at depth 0 -> 1 *)
  mutable top_major : bool;  (* outermost phase of the current nest *)
}

type stats = {
  minor_pauses : int;
  major_pauses : int;
  pause_ns : int;
  unattributed_ns : int;
  events : int;
}

type t = {
  mutable cursor : RE.cursor option;
  mutable callbacks : RE.Callbacks.t option;
  map_lane : int -> int option;
  rings : (int, ring_state) Hashtbl.t;
  mutable minor_pauses : int;
  mutable major_pauses : int;
  mutable pause_ns : int;
  mutable unattributed_ns : int;
  mutable events : int;
}

let live = Atomic.make 0
let live_cursors () = Atomic.get live

let default_map_lane ~lanes ring =
  if ring >= 1 && ring <= lanes then Some (ring - 1) else None

type handles = {
  h_minor : Metrics.counter;
  h_major : Metrics.counter;
  h_minor_ns : Metrics.counter;
  h_major_ns : Metrics.counter;
}

let gc_metrics =
  Metrics.cached (fun reg ->
      let pauses phase =
        Metrics.counter reg "parcae_gc_pauses_total"
          ~help:"Top-level GC pauses seen by the runtime-events consumer"
          ~labels:[ ("phase", phase) ]
      and ns phase =
        Metrics.counter reg "parcae_gc_pause_ns"
          ~help:"Total nanoseconds spent in top-level GC pauses"
          ~labels:[ ("phase", phase) ]
      in
      {
        h_minor = pauses "minor";
        h_major = pauses "major";
        h_minor_ns = ns "minor";
        h_major_ns = ns "major";
      })

let is_pause = function RE.EV_MINOR | RE.EV_MAJOR -> true | _ -> false

let ring_state t ring =
  match Hashtbl.find_opt t.rings ring with
  | Some rs -> rs
  | None ->
      let rs = { depth = 0; t0 = 0L; top_major = false } in
      Hashtbl.add t.rings ring rs;
      rs

let finish_pause t ring rs ts =
  let dur = max 0 (Int64.to_int (Int64.sub ts rs.t0)) in
  if rs.top_major then t.major_pauses <- t.major_pauses + 1
  else t.minor_pauses <- t.minor_pauses + 1;
  t.pause_ns <- t.pause_ns + dur;
  (* Requests in flight during a GC pause were stalled by it: feed the
     span accumulator so completion carves the overlap into the Gc
     phase. *)
  Span.note_gc dur;
  (match Timeline.get () with
  | Some tl -> (
      match t.map_lane ring with
      | Some lane when lane >= 0 && lane < Timeline.lanes tl ->
          Timeline.attribute tl ~lane Timeline.Gc dur
      | _ -> t.unattributed_ns <- t.unattributed_ns + dur)
  | None -> t.unattributed_ns <- t.unattributed_ns + dur);
  if Metrics.enabled () then begin
    let m = gc_metrics () in
    Metrics.inc (if rs.top_major then m.h_major else m.h_minor);
    Metrics.inc_by (if rs.top_major then m.h_major_ns else m.h_minor_ns) dur
  end

let start ?map_lane () =
  let map_lane =
    match map_lane with
    | Some f -> f
    | None ->
        fun ring -> (
          match Timeline.get () with
          | Some tl -> default_map_lane ~lanes:(Timeline.lanes tl) ring
          | None -> None)
  in
  RE.start ();
  let cursor = RE.create_cursor None in
  Atomic.incr live;
  let t =
    {
      cursor = Some cursor;
      callbacks = None;
      map_lane;
      rings = Hashtbl.create 7;
      minor_pauses = 0;
      major_pauses = 0;
      pause_ns = 0;
      unattributed_ns = 0;
      events = 0;
    }
  in
  let runtime_begin ring ts phase =
    t.events <- t.events + 1;
    if is_pause phase then begin
      let rs = ring_state t ring in
      if rs.depth = 0 then begin
        rs.t0 <- RE.Timestamp.to_int64 ts;
        rs.top_major <- phase = RE.EV_MAJOR
      end;
      rs.depth <- rs.depth + 1
    end
  in
  let runtime_end ring ts phase =
    t.events <- t.events + 1;
    if is_pause phase then begin
      let rs = ring_state t ring in
      (* A cursor opened mid-nest can see an end with no begin: ignore. *)
      if rs.depth > 0 then begin
        rs.depth <- rs.depth - 1;
        if rs.depth = 0 then finish_pause t ring rs (RE.Timestamp.to_int64 ts)
      end
    end
  in
  t.callbacks <- Some (RE.Callbacks.create ~runtime_begin ~runtime_end ());
  t

let poll t =
  match (t.cursor, t.callbacks) with
  | Some cursor, Some callbacks -> RE.read_poll cursor callbacks None
  | _ -> 0

let stop t =
  match t.cursor with
  | None -> ()
  | Some cursor ->
      ignore (poll t);
      t.cursor <- None;
      RE.free_cursor cursor;
      Atomic.decr live

let stats t =
  {
    minor_pauses = t.minor_pauses;
    major_pauses = t.major_pauses;
    pause_ns = t.pause_ns;
    unattributed_ns = t.unattributed_ns;
    events = t.events;
  }
