(** Event sinks: a bounded ring buffer, plus the null (disabled) sink.

    The ring retains the most recent [capacity] events and counts
    overwrites; [null] is a physical sentinel so that disabled tracing
    costs one pointer comparison per potential event. *)

type t

val null : t
(** The disabled sink: {!record} on it is a no-op. *)

val default_capacity : int
(** 65536 events. *)

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val is_null : t -> bool

val record : t -> t:int -> Event.kind -> unit
(** Append an event stamped with virtual time [t]; overwrites the oldest
    event once the ring is full. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events overwritten since creation (0 until the ring fills). *)

val capacity : t -> int

val clear : t -> unit
(** Forget all retained events {e and} release the ring's backing storage;
    the next {!record} re-allocates lazily. *)

val allocated_slots : t -> int
(** Size of the backing array: 0 before the first event and after {!clear},
    [capacity] once recording has begun. *)

val to_array : t -> Event.t array
(** Retained events, oldest first. *)

val events : t -> Event.t list
val iter : t -> (Event.t -> unit) -> unit
