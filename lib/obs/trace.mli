(** The global trace destination.

    One current-sink cell (race-free: simulated threads are cooperative
    coroutines on one OS thread).  Emission sites guard with {!enabled} so
    disabled tracing never allocates an event payload. *)

val set : Sink.t -> unit
val clear : unit -> unit
(** Reset to {!Sink.null} (tracing off). *)

val sink : unit -> Sink.t
val enabled : unit -> bool

val emit : t:int -> Event.kind -> unit
(** Record an event at virtual time [t] into the current sink; no-op when
    tracing is disabled. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Install a sink for the duration of the callback, restoring the
    previous one afterwards (exception-safe). *)
