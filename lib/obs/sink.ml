(* Event sinks: a bounded ring buffer, and a null sink that makes tracing
   free when disabled.

   The ring keeps the most recent [capacity] events and counts what it
   overwrote, so a long run with a small sink degrades to a suffix trace
   instead of unbounded memory.  [null] is a physical sentinel: emitters
   compare against it with one load and one pointer equality, which is the
   whole cost of disabled tracing. *)

type t = {
  capacity : int;  (* 0 only for [null] *)
  mu : Mutex.t;
      (* serializes record/read/clear: native workers emit concurrently *)
  mutable buf : Event.t array;  (* ring storage, lazily allocated *)
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;  (* retained events, <= capacity *)
  mutable dropped : int;  (* events overwritten after the ring filled *)
  mutable last_t : int;  (* high-water timestamp for the monotone clamp *)
  mutable mx : (Metrics.t * Metrics.counter) option;
      (* cached drop counter, keyed on the installed registry *)
}

let null =
  { capacity = 0; mu = Mutex.create (); buf = [||]; start = 0; len = 0; dropped = 0;
    last_t = min_int; mx = None }

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  { capacity; mu = Mutex.create (); buf = [||]; start = 0; len = 0; dropped = 0;
    last_t = min_int; mx = None }

let is_null s = s == null

let length s = s.len
let dropped s = s.dropped
let capacity s = s.capacity

let clear s =
  Mutex.lock s.mu;
  (* Drop the ring storage too: a cleared sink must release the memory of
     the events it retained, not just forget their indices.  The next
     [record] re-allocates lazily, exactly as on first use. *)
  s.buf <- [||];
  s.start <- 0;
  s.len <- 0;
  s.dropped <- 0;
  s.last_t <- min_int;
  s.mx <- None;
  Mutex.unlock s.mu

(* Size of the backing array — 0 before the first event and after [clear].
   Exposed so tests can assert that clearing releases the allocation. *)
let allocated_slots s = Array.length s.buf

let record s ~t kind =
  if s.capacity > 0 then begin
    Mutex.lock s.mu;
    (* Monotone clamp: concurrent native emitters can race the ring with
       timestamps taken a hair apart; the trace contract (and the oracle)
       requires non-decreasing time, so order-of-arrival wins and a late
       reading is clamped up.  On the simulator time is already monotone
       and the clamp never fires. *)
    let t = if t < s.last_t then s.last_t else t in
    s.last_t <- t;
    let ev = Event.make ~t kind in
    if Array.length s.buf = 0 then begin
      (* First event: allocate the ring.  A dummy slot value is fine; every
         readable slot is written before it is read. *)
      s.buf <- Array.make s.capacity ev
    end;
    if s.len < s.capacity then begin
      s.buf.((s.start + s.len) mod s.capacity) <- ev;
      s.len <- s.len + 1
    end
    else begin
      (* Full: overwrite the oldest. *)
      s.buf.(s.start) <- ev;
      s.start <- (s.start + 1) mod s.capacity;
      s.dropped <- s.dropped + 1;
      if Metrics.enabled () then begin
        let reg = Metrics.current () in
        let c =
          match s.mx with
          | Some (r, c) when r == reg -> c
          | _ ->
              let c =
                Metrics.counter reg "parcae_trace_dropped_total"
                  ~help:"Trace events overwritten by a full sink ring"
              in
              s.mx <- Some (reg, c);
              c
        in
        Metrics.inc c
      end
    end;
    Mutex.unlock s.mu
  end

(* Retained events, oldest first. *)
let to_array s =
  Mutex.lock s.mu;
  let a = Array.init s.len (fun i -> s.buf.((s.start + i) mod s.capacity)) in
  Mutex.unlock s.mu;
  a

let events s = Array.to_list (to_array s)
let iter s f = Array.iter f (to_array s)
