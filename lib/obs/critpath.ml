(* Critical-path analysis over the causal trace-event graph.

   One forward pass over the events in time order, dynamic programming on
   "longest weighted path ending at this task's current position":

     cp[task]   longest path (ns of compute) reaching the task's latest
                event
     attr[task] how that path divides over task names, so the report can
                say *which* stage the pipeline is serialised on

   A task advances its own cp by the growth of its cumulative busy_ns
   between consecutive events.  A matched send->recv edge offers the
   sender's (cp, attr) snapshot to the receiver, who keeps the longer of
   the offer and its own chain.  attr rides along as a small assoc list
   (task names, not task ids — a pipeline has a handful of names), copied
   at merge points; traces are bounded by the sink ring so this stays
   cheap. *)

type report = {
  total_work_ns : int;
  critical_path_ns : int;
  bound : float;
  path : (string * int) list;
  tasks : int;
  edges : int;
  unmatched_recvs : int;
  steals : int;
}

(* (cp, attr) chain state per task. *)
type chain = {
  mutable cp : int;
  mutable attr : (string * int) list;
  mutable last_busy : int;  (* cumulative busy_ns at the previous event *)
  mutable cname : string;
}

let add_attr name ns attr =
  if ns <= 0 then attr
  else
    let rec go = function
      | [] -> [ (name, ns) ]
      | (n, v) :: rest when n = name -> (n, v + ns) :: rest
      | kv :: rest -> kv :: go rest
    in
    go attr

let analyze events =
  let events =
    List.stable_sort (fun a b -> compare a.Event.t b.Event.t) events
  in
  let chains : (int, chain) Hashtbl.t = Hashtbl.create 31 in
  let chain_of ?(name = "?") tid =
    match Hashtbl.find_opt chains tid with
    | Some c -> c
    | None ->
        let c = { cp = 0; attr = []; last_busy = 0; cname = name } in
        Hashtbl.add chains tid c;
        c
  in
  (* Advance a task's own chain to cumulative busy [busy]. *)
  let advance c busy =
    let delta = busy - c.last_busy in
    if delta > 0 then begin
      c.cp <- c.cp + delta;
      c.attr <- add_attr c.cname delta c.attr;
      c.last_busy <- busy
    end
    else if busy > c.last_busy then c.last_busy <- busy
  in
  (* Pending send snapshots, keyed by (chan, seq). *)
  let sends : (string * int, int * (string * int) list) Hashtbl.t =
    Hashtbl.create 127
  in
  let total_work = ref 0 in
  let edges = ref 0 and unmatched = ref 0 and steals = ref 0 in
  let best_cp = ref 0 and best_attr = ref [] in
  let consider c =
    if c.cp > !best_cp then begin
      best_cp := c.cp;
      best_attr := c.attr
    end
  in
  List.iter
    (fun { Event.kind; _ } ->
      match kind with
      | Event.Task_spawn { task; parent; name } ->
          let c = chain_of ~name task in
          c.cname <- name;
          (match Hashtbl.find_opt chains parent with
          | Some p ->
              c.cp <- p.cp;
              c.attr <- p.attr
          | None -> ())
      | Event.Chan_send_ev { chan; seq; task; busy_ns } ->
          let c = chain_of task in
          advance c busy_ns;
          Hashtbl.replace sends (chan, seq) (c.cp, c.attr)
      | Event.Chan_recv_ev { chan; seq; task; busy_ns } ->
          let c = chain_of task in
          advance c busy_ns;
          (match Hashtbl.find_opt sends (chan, seq) with
          | Some (cp, attr) ->
              incr edges;
              if cp > c.cp then begin
                c.cp <- cp;
                c.attr <- attr
              end
          | None -> incr unmatched)
      | Event.Task_done { task; busy_ns } ->
          let c = chain_of task in
          advance c busy_ns;
          total_work := !total_work + busy_ns;
          consider c
      | Event.Steal_ev _ -> incr steals
      | _ -> ())
    events;
  (* Tasks still open at trace end (truncation) also bound the path. *)
  Hashtbl.iter (fun _ c -> consider c) chains;
  let bound =
    if !best_cp > 0 then float_of_int !total_work /. float_of_int !best_cp
    else 1.0
  in
  {
    total_work_ns = !total_work;
    critical_path_ns = !best_cp;
    bound;
    path = List.sort (fun (_, a) (_, b) -> compare b a) !best_attr;
    tasks = Hashtbl.length chains;
    edges = !edges;
    unmatched_recvs = !unmatched;
    steals = !steals;
  }

let report_to_json r =
  Json.Obj
    [
      ("total_work_ns", Json.Int r.total_work_ns);
      ("critical_path_ns", Json.Int r.critical_path_ns);
      ("bound", Json.Float r.bound);
      ( "path",
        Json.Obj (List.map (fun (n, ns) -> (n, Json.Int ns)) r.path) );
      ("tasks", Json.Int r.tasks);
      ("edges", Json.Int r.edges);
      ("unmatched_recvs", Json.Int r.unmatched_recvs);
      ("steals", Json.Int r.steals);
    ]

let bottleneck r =
  match r.path with
  | (name, ns) :: _ when r.critical_path_ns > 0 && 2 * ns > r.critical_path_ns ->
      Some name
  | _ -> None
