(* Fixed-precision streaming histogram with log-linear (HDR-style) buckets.

   Values are non-negative integers (nanoseconds on every current call
   site).  The value range [0, 2^m) is covered by one bucket per integer
   ("linear region"); above that, each power-of-two octave [2^k, 2^(k+1))
   is split into 2^m equal sub-buckets, so the bucket width at value v is
   at most v / 2^m and any quantile estimate carries a relative error of
   at most 1/2^m.  With the default m = 7 that is under 1% at a fixed
   ~57 KB of int array — no per-observation allocation, mergeable by
   bucket-count addition, and safe to read concurrently with writers
   (reads may see a torn *distribution* mid-update but never a torn
   bucket, which is all the quantile math needs).

   Compare the registry's cumulative `histogram`, whose bucket bounds are
   chosen at family creation: this module trades configurable bounds for
   a guaranteed relative error over the full 62-bit range, which is what
   tail-latency quantiles need (DESIGN.md section 15). *)

type t = {
  sub_bits : int;  (* m: sub-bucket resolution; relative error <= 1/2^m *)
  sub_count : int;  (* 2^m *)
  counts : int array;  (* (64 - m) * 2^m buckets *)
  mutable count : int;  (* total observations *)
  mutable sum : int;  (* sum of observed values (clamped to >= 0 each) *)
  mutable min_v : int;  (* smallest observed value, max_int when empty *)
  mutable max_v : int;  (* largest observed value, -1 when empty *)
}

let create ?(sub_bits = 7) () =
  if sub_bits < 1 || sub_bits > 14 then invalid_arg "Hdr.create: sub_bits out of range";
  let sub_count = 1 lsl sub_bits in
  {
    sub_bits;
    sub_count;
    counts = Array.make ((64 - sub_bits) * sub_count) 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = -1;
  }

let relative_error t = 1.0 /. float_of_int t.sub_count

(* Index of the most significant set bit of [v] (v > 0), by shift cascade:
   no dependency on any stdlib clz, and branch-predictable on the hot
   path because latencies cluster within a few octaves. *)
let msb v =
  let v = ref v and k = ref 0 in
  if !v lsr 32 <> 0 then begin
    k := !k + 32;
    v := !v lsr 32
  end;
  if !v lsr 16 <> 0 then begin
    k := !k + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 <> 0 then begin
    k := !k + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 <> 0 then begin
    k := !k + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 <> 0 then begin
    k := !k + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 <> 0 then k := !k + 1;
  !k

(* Bucket index for value [v] >= 0.  Linear below 2^m; above, octave k
   contributes 2^m sub-buckets of width 2^(k-m). *)
let index t v =
  if v < t.sub_count then v
  else
    let k = msb v in
    let shift = k - t.sub_bits in
    (shift * t.sub_count) + ((v lsr shift) - t.sub_count) + t.sub_count

(* Inclusive upper bound of bucket [idx] — the value reported for any
   quantile landing in that bucket, so estimates never undershoot. *)
let bucket_upper t idx =
  if idx < t.sub_count then idx
  else
    let off = idx - t.sub_count in
    let shift = off / t.sub_count and sub = off mod t.sub_count in
    ((t.sub_count + sub) lsl shift) + (1 lsl shift) - 1

let observe t v =
  let v = if v < 0 then 0 else v in
  t.counts.(index t v) <- t.counts.(index t v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Quantile estimate: the inclusive upper bound of the bucket holding the
   rank-(ceil q*count) observation, clamped to the observed max so p100
   is exact and no estimate exceeds any observed value's octave bound. *)
let quantile t q =
  if t.count = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and idx = ref (-1) and i = ref 0 in
    let n = Array.length t.counts in
    while !idx < 0 && !i < n do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then idx := !i;
      incr i
    done;
    let v = if !idx < 0 then t.max_v else bucket_upper t !idx in
    if v > t.max_v then t.max_v else v
  end

let merge ~into src =
  if into.sub_bits <> src.sub_bits then invalid_arg "Hdr.merge: sub_bits mismatch";
  Array.iteri (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- -1
