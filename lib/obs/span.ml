(* Request-level span tracing: where did each request's latency go?

   Every pooled request record (lib/workloads/request.ml) carries one
   [span] — a flat mutable record of int-ns stamps that is reset on
   pool alloc and mutated in place as the request crosses stages, so
   stamping allocates nothing and survives PR-9's allocation gate.

   Phase accounting is difference-based and therefore exact by
   construction: every stamp is a monotonic engine timestamp, each gap
   between successive stamps is attributed to exactly one phase
   (admission/queue wait before the first stage, channel wait between
   stages, compute inside a stage body), so

     queue + chan + compute = finish - arrival

   with no residue.  Reconfiguration stalls and GC pauses are *carved
   out* of those three by clamped zero-sum transfers at completion time
   (executor pause/resume windows and Runtime_ev GC lanes bump global
   counters; the span remembers the counter values at admission), so the
   five reported phases still sum to the total exactly — the "clamp
   tolerance" of the latency analyzer is about float rendering, not
   about the integer accounting (DESIGN.md section 15).

   Completed spans land in a preallocated ring (parallel int arrays, no
   boxing) with drop accounting mirroring the trace sink, plus per-phase
   HDR histograms and an SLO burn counter.  A generation token guards
   the pooled-record race: a worker still unwinding [drain_stage] after
   the request was completed and re-allocated on another domain will
   fail the token check and no-op rather than corrupt the fresh span. *)

module Metrics = Metrics

let max_stages = 16

type span = {
  mutable s_id : int;
  mutable s_arrival_ns : int;
  mutable s_last_ns : int;  (* previous observation point *)
  mutable s_seg_start : int;  (* -1 outside a stage body *)
  mutable s_queue_ns : int;
  mutable s_chan_ns : int;
  mutable s_compute_ns : int;
  mutable s_stages : int;
  mutable s_open : bool;
  s_gen : int Atomic.t;
      (* generation seqlock: even when idle, odd while [reset] (or a
         racing [exit]) holds the span; bumped by two on every reset so
         a stale token from the record's previous life can never match *)
  mutable s_stall_mark : int;  (* stall_total at admission *)
  mutable s_gc_mark : int;  (* gc_total at admission *)
  s_stage_ns : int array;  (* per-stage compute, capacity max_stages *)
}

let make_span () =
  {
    s_id = -1;
    s_arrival_ns = 0;
    s_last_ns = 0;
    s_seg_start = -1;
    s_queue_ns = 0;
    s_chan_ns = 0;
    s_compute_ns = 0;
    s_stages = 0;
    s_open = false;
    s_gen = Atomic.make 0;
    s_stall_mark = 0;
    s_gc_mark = 0;
    s_stage_ns = Array.make max_stages 0;
  }

(* Shared placeholder for records built while no collector is installed
   (every hook no-ops on a disabled collector, so it is never mutated).
   Pool misses on an untraced serve path graft it instead of paying
   [make_span]'s ~25 words; the first traced alloc upgrades the record
   to a private span. *)
let null = make_span ()

(* ---- Global stall/GC accumulators. ----

   Executor pause/resume windows and Runtime_ev GC pauses add here; a
   span captures both values at admission and reads the delta at
   completion — "how much stall/GC elapsed during my lifetime".  The
   carve at completion clamps to the span's own wait time, so a stall
   that did not actually delay a request is not charged to it. *)

let stall_acc = Atomic.make 0
let gc_acc = Atomic.make 0

let stall_total () = Atomic.get stall_acc
let gc_total () = Atomic.get gc_acc

(* ---- The completed-span ring + aggregates. ---- *)

type phase = Queue | Chan | Compute | Reconfig | Gc

let all_phases = [ Queue; Chan; Compute; Reconfig; Gc ]

let phase_name = function
  | Queue -> "queue"
  | Chan -> "chan"
  | Compute -> "compute"
  | Reconfig -> "reconfig"
  | Gc -> "gc"

type t = {
  cap : int;
  r_id : int array;
  r_end : int array;
  r_total : int array;
  r_queue : int array;
  r_chan : int array;
  r_compute : int array;
  r_reconfig : int array;
  r_gc : int array;
  r_stages : int array;
  r_stage_ns : int array;  (* cap * max_stages, flattened *)
  mutable r_len : int;
  mutable r_head : int;  (* next write slot *)
  mutable drops : int;
  mutable completed : int;
  mutable double_finishes : int;
  hdr_total : Hdr.t;
  hdr_queue : Hdr.t;
  hdr_chan : Hdr.t;
  hdr_compute : Hdr.t;
  hdr_reconfig : Hdr.t;
  hdr_gc : Hdr.t;
  mutable slo_target_ns : int;  (* <= 0 disables the tracker *)
  mutable slo_budget : float;  (* tolerated over-target fraction *)
  mutable slo_total : int;
  mutable slo_over : int;
  mutable stage_names : string array;
  mu : Mutex.t;
      (* guards completion: ring push, HDR observes, SLO counters, and
         the registry summary observes.  Two two_level masters can
         finish requests concurrently on native. *)
}

let create ?(capacity = 4096) ?(sub_bits = 7) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  let h () = Hdr.create ~sub_bits () in
  {
    cap = capacity;
    r_id = Array.make capacity 0;
    r_end = Array.make capacity 0;
    r_total = Array.make capacity 0;
    r_queue = Array.make capacity 0;
    r_chan = Array.make capacity 0;
    r_compute = Array.make capacity 0;
    r_reconfig = Array.make capacity 0;
    r_gc = Array.make capacity 0;
    r_stages = Array.make capacity 0;
    r_stage_ns = Array.make (capacity * max_stages) 0;
    r_len = 0;
    r_head = 0;
    drops = 0;
    completed = 0;
    double_finishes = 0;
    hdr_total = h ();
    hdr_queue = h ();
    hdr_chan = h ();
    hdr_compute = h ();
    hdr_reconfig = h ();
    hdr_gc = h ();
    slo_target_ns = 0;
    slo_budget = 0.001;
    slo_total = 0;
    slo_over = 0;
    stage_names = [||];
    mu = Mutex.create ();
  }

(* ---- The installed collector (Timeline's global-cell idiom). ---- *)

let cell : t option Atomic.t = Atomic.make None

let set t = Atomic.set cell (Some t)
let clear () = Atomic.set cell None
let get () = Atomic.get cell
let enabled () = Atomic.get cell <> None

let with_collector t f =
  set t;
  Fun.protect ~finally:clear f

let configure_slo t ~target_ns ~budget =
  t.slo_target_ns <- target_ns;
  t.slo_budget <- budget

let set_stage_names t names = t.stage_names <- names

(* ---- Registry handles (null-object cached, like every emitter). ---- *)

type handles = {
  m_latency : Metrics.summary;
  m_queue : Metrics.summary;
  m_chan : Metrics.summary;
  m_compute : Metrics.summary;
  m_reconfig : Metrics.summary;
  m_gc : Metrics.summary;
  m_dropped : Metrics.counter;
  m_slo_total : Metrics.counter;
  m_slo_over : Metrics.counter;
}

let handles =
  Metrics.cached (fun reg ->
      let phase p =
        Metrics.summary reg "parcae_request_phase_ns"
          ~help:"Per-phase request latency attribution in virtual nanoseconds"
          ~labels:[ ("phase", phase_name p) ]
      in
      {
        m_latency =
          Metrics.summary reg "parcae_request_latency_ns"
            ~help:"End-to-end request latency in virtual nanoseconds";
        m_queue = phase Queue;
        m_chan = phase Chan;
        m_compute = phase Compute;
        m_reconfig = phase Reconfig;
        m_gc = phase Gc;
        m_dropped =
          Metrics.counter reg "parcae_spans_dropped_total"
            ~help:"Completed spans overwritten in the span ring before export";
        m_slo_total =
          Metrics.counter reg "parcae_slo_requests_total"
            ~help:"Requests counted against the latency SLO";
        m_slo_over =
          Metrics.counter reg "parcae_slo_over_target_total"
            ~help:"Requests that exceeded the SLO latency target";
      })

(* ---- Stall/GC feeds (executor + Runtime_ev call these). ---- *)

let note_stall ns = if ns > 0 && enabled () then ignore (Atomic.fetch_and_add stall_acc ns)
let note_gc ns = if ns > 0 && enabled () then ignore (Atomic.fetch_and_add gc_acc ns)

(* ---- Span lifecycle. ---- *)

(* Reset on pool alloc: ~a dozen int stores and a few atomic ops, no
   allocation — cheap enough to run unconditionally so a collector
   installed mid-run sees well-formed spans.  The shared [null] span is
   inert here and in every hook below: records minted while tracing was
   disabled stay untouched even after a mid-run [set].

   The generation is held odd (seqlock-style) for the duration of the
   field writes, so a stale [exit] racing in from the record's previous
   life fails its compare-and-set instead of observing a matching token
   next to half-reset fields and corrupting the fresh span.  The only
   possible contender is one such straggler, so the spin is bounded. *)
let reset sp ~id ~arrival_ns =
  if sp != null then begin
    let rec acquire () =
      let g = Atomic.get sp.s_gen in
      if g land 1 = 1 || not (Atomic.compare_and_set sp.s_gen g (g + 1))
      then begin
        Domain.cpu_relax ();
        acquire ()
      end
      else g
    in
    let g = acquire () in
    sp.s_id <- id;
    sp.s_arrival_ns <- arrival_ns;
    sp.s_last_ns <- arrival_ns;
    sp.s_seg_start <- -1;
    sp.s_queue_ns <- 0;
    sp.s_chan_ns <- 0;
    sp.s_compute_ns <- 0;
    sp.s_stages <- 0;
    sp.s_open <- true;
    sp.s_stall_mark <- Atomic.get stall_acc;
    sp.s_gc_mark <- Atomic.get gc_acc;
    Atomic.set sp.s_gen (g + 2)
  end

(* Stage entry: the gap since the last observation point is wait —
   admission queue before the first stage, channel wait after.  Returns
   the generation token the matching [exit] must present; the [null]
   span is never mutated and yields a token no exit will act on. *)
let enter sp ~now =
  if sp == null then 0
  else begin
    let gap = now - sp.s_last_ns in
    let gap = if gap < 0 then 0 else gap in
    if sp.s_stages = 0 then sp.s_queue_ns <- sp.s_queue_ns + gap
    else sp.s_chan_ns <- sp.s_chan_ns + gap;
    sp.s_seg_start <- now;
    Atomic.get sp.s_gen
  end

(* Stage exit: close the open compute segment.  No-ops when the token is
   stale (the pooled record was freed and re-allocated between the body
   and this call), when the span is already finished, or when no segment
   is open — exactly the races pooled reuse makes possible.  The CAS to
   an odd value takes the seqlock, so a concurrent [reset] on another
   domain either makes this exit fail (generation already bumped, or
   held odd mid-reset) or waits until these writes are done — a stale
   exit can never interleave with the fresh generation's fields. *)
let exit sp ~token ~now =
  if
    sp != null && token land 1 = 0
    && Atomic.compare_and_set sp.s_gen token (token + 1)
  then begin
    if sp.s_open && sp.s_seg_start >= 0 then begin
      let d = now - sp.s_seg_start in
      let d = if d < 0 then 0 else d in
      sp.s_compute_ns <- sp.s_compute_ns + d;
      if sp.s_stages < max_stages then sp.s_stage_ns.(sp.s_stages) <- d;
      sp.s_stages <- sp.s_stages + 1;
      sp.s_seg_start <- -1;
      sp.s_last_ns <- now
    end;
    Atomic.set sp.s_gen token
  end

(* Clamped zero-sum transfer: move up to [amount] out of [cell], return
   what was actually moved.  Keeps phase sums exact by construction. *)
let take cell amount =
  let t = if !cell < amount then !cell else amount in
  cell := !cell - t;
  t

let push t ~end_ns sp ~queue ~chan ~compute ~reconfig ~gc ~total =
  Mutex.lock t.mu;
  if t.r_len = t.cap then begin
    (* Overwrite the oldest entry, mirroring the trace sink's drop
       accounting; the aggregates (HDRs, SLO) already absorbed it, so
       drops cost exemplar detail, never quantile accuracy. *)
    t.drops <- t.drops + 1;
    if Metrics.enabled () then Metrics.inc (handles ()).m_dropped;
    if t.drops = 1 && Trace.enabled () then
      Trace.emit ~t:end_ns (Event.Span_overflow { dropped = 1 })
  end
  else t.r_len <- t.r_len + 1;
  let i = t.r_head in
  t.r_head <- (t.r_head + 1) mod t.cap;
  t.r_id.(i) <- sp.s_id;
  t.r_end.(i) <- end_ns;
  t.r_total.(i) <- total;
  t.r_queue.(i) <- queue;
  t.r_chan.(i) <- chan;
  t.r_compute.(i) <- compute;
  t.r_reconfig.(i) <- reconfig;
  t.r_gc.(i) <- gc;
  let stages = if sp.s_stages < max_stages then sp.s_stages else max_stages in
  t.r_stages.(i) <- stages;
  Array.blit sp.s_stage_ns 0 t.r_stage_ns (i * max_stages) stages;
  t.completed <- t.completed + 1;
  Hdr.observe t.hdr_total total;
  Hdr.observe t.hdr_queue queue;
  Hdr.observe t.hdr_chan chan;
  Hdr.observe t.hdr_compute compute;
  Hdr.observe t.hdr_reconfig reconfig;
  Hdr.observe t.hdr_gc gc;
  if t.slo_target_ns > 0 then begin
    t.slo_total <- t.slo_total + 1;
    if total > t.slo_target_ns then t.slo_over <- t.slo_over + 1
  end;
  (* The registry observes stay inside the critical section: summary
     observation is an unsynchronized read-modify-write, and two
     two_level masters can finish requests concurrently on native —
     outside the lock, observations would be lost and the exported
     series would drift from the collector's own HDRs.  All calls are
     allocation-free and cheap. *)
  if Metrics.enabled () then begin
    let h = handles () in
    Metrics.observe_summary h.m_latency total;
    Metrics.observe_summary h.m_queue queue;
    Metrics.observe_summary h.m_chan chan;
    Metrics.observe_summary h.m_compute compute;
    Metrics.observe_summary h.m_reconfig reconfig;
    Metrics.observe_summary h.m_gc gc;
    if t.slo_target_ns > 0 then begin
      Metrics.inc h.m_slo_total;
      if total > t.slo_target_ns then Metrics.inc h.m_slo_over
    end
  end;
  Mutex.unlock t.mu

(* Completion: close any open segment, attribute the trailing gap, carve
   stall/GC overlap out of the waits, and publish.  Exactly-once under
   pooled reuse: the first finish flips [s_open], a second finish on the
   same generation only bumps the double-finish diagnostic. *)
let finish sp ~now =
  match Atomic.get cell with
  | None -> ()
  | Some _ when sp == null -> ()
  | Some t ->
      if not sp.s_open then begin
        Mutex.lock t.mu;
        t.double_finishes <- t.double_finishes + 1;
        Mutex.unlock t.mu
      end
      else begin
        sp.s_open <- false;
        if sp.s_seg_start >= 0 then begin
          (* Finish arrived from inside a stage body (the tail stage
             completes the request before drain_stage's exit runs): close
             the segment here; the later exit no-ops on [s_open]. *)
          let d = now - sp.s_seg_start in
          let d = if d < 0 then 0 else d in
          sp.s_compute_ns <- sp.s_compute_ns + d;
          if sp.s_stages < max_stages then sp.s_stage_ns.(sp.s_stages) <- d;
          sp.s_stages <- sp.s_stages + 1;
          sp.s_seg_start <- -1;
          sp.s_last_ns <- now
        end
        else begin
          let gap = now - sp.s_last_ns in
          let gap = if gap < 0 then 0 else gap in
          if sp.s_stages = 0 then sp.s_queue_ns <- sp.s_queue_ns + gap
          else sp.s_chan_ns <- sp.s_chan_ns + gap;
          sp.s_last_ns <- now
        end;
        let total = now - sp.s_arrival_ns in
        let total = if total < 0 then 0 else total in
        let queue = ref sp.s_queue_ns
        and chan = ref sp.s_chan_ns
        and compute = ref sp.s_compute_ns in
        (* Stall and GC that elapsed during this request's lifetime,
           carved out of the phases they actually inflated: reconfig
           stalls manifest as wait (workers parked at the barrier), GC
           pauses inflate compute first.  Clamping guarantees the five
           phases still sum to [total] exactly. *)
        let stall_raw = Atomic.get stall_acc - sp.s_stall_mark in
        let gc_raw = Atomic.get gc_acc - sp.s_gc_mark in
        let reconfig =
          if stall_raw <= 0 then 0
          else
            let a = take chan stall_raw in
            a + take queue (stall_raw - a)
        in
        let gc =
          if gc_raw <= 0 then 0
          else
            let a = take compute gc_raw in
            let b = take chan (gc_raw - a) in
            a + b + take queue (gc_raw - a - b)
        in
        push t ~end_ns:now sp ~queue:!queue ~chan:!chan ~compute:!compute
          ~reconfig ~gc ~total
      end

(* ---- Reads (latency analyzer, /latency.json, dashboard panel). ---- *)

type rec_view = {
  rv_id : int;
  rv_end_ns : int;
  rv_total : int;
  rv_queue : int;
  rv_chan : int;
  rv_compute : int;
  rv_reconfig : int;
  rv_gc : int;
  rv_stage_ns : int array;
}

let records t =
  Mutex.lock t.mu;
  let n = t.r_len in
  let start = if n = t.cap then t.r_head else 0 in
  let out =
    List.init n (fun k ->
        let i = (start + k) mod t.cap in
        {
          rv_id = t.r_id.(i);
          rv_end_ns = t.r_end.(i);
          rv_total = t.r_total.(i);
          rv_queue = t.r_queue.(i);
          rv_chan = t.r_chan.(i);
          rv_compute = t.r_compute.(i);
          rv_reconfig = t.r_reconfig.(i);
          rv_gc = t.r_gc.(i);
          rv_stage_ns = Array.sub t.r_stage_ns (i * max_stages) t.r_stages.(i);
        })
  in
  Mutex.unlock t.mu;
  out

let completed t = t.completed
let drops t = t.drops
let double_finishes t = t.double_finishes

let quantile_ns t q = Hdr.quantile t.hdr_total q

let phase_hdr t = function
  | Queue -> t.hdr_queue
  | Chan -> t.hdr_chan
  | Compute -> t.hdr_compute
  | Reconfig -> t.hdr_reconfig
  | Gc -> t.hdr_gc

let phase_quantile_ns t p q = Hdr.quantile (phase_hdr t p) q
let phase_mean_ns t p = Hdr.mean (phase_hdr t p)
let mean_ns t = Hdr.mean t.hdr_total
let max_ns t = Hdr.max_value t.hdr_total

let slo_target_ns t = t.slo_target_ns
let slo_budget t = t.slo_budget
let slo_requests t = t.slo_total
let slo_over t = t.slo_over

(* Burn rate: fraction of requests over target, relative to budget —
   1.0 means the error budget is being consumed exactly at the tolerated
   rate, above 1.0 the SLO is burning down. *)
let slo_burn_rate t =
  if t.slo_target_ns <= 0 || t.slo_total = 0 || t.slo_budget <= 0.0 then 0.0
  else float_of_int t.slo_over /. float_of_int t.slo_total /. t.slo_budget

let slo_breached t = t.slo_target_ns > 0 && t.slo_total > 0 && slo_burn_rate t > 1.0

let stage_name t i =
  if i < Array.length t.stage_names then t.stage_names.(i)
  else Printf.sprintf "stage%d" i

(* The /latency.json wire format: quantile ladder per phase, counts,
   drops, SLO state.  Self-contained and stable (DESIGN.md section 15). *)
let report_json t =
  let qs = [ 0.5; 0.9; 0.99; 0.999 ] in
  let qname q =
    (* 0.5 -> "p50", 0.999 -> "p999" *)
    let s = Printf.sprintf "%g" (q *. 100.0) in
    "p" ^ String.concat "" (String.split_on_char '.' s)
  in
  let ladder h =
    Json.Obj
      (List.map (fun q -> (qname q, Json.Int (Hdr.quantile h q))) qs
      @ [ ("mean", Json.Float (Hdr.mean h)); ("max", Json.Int (Hdr.max_value h)) ])
  in
  Json.Obj
    [
      ("completed", Json.Int t.completed);
      ("dropped", Json.Int t.drops);
      ("double_finishes", Json.Int t.double_finishes);
      ("latency_ns", ladder t.hdr_total);
      ( "phases_ns",
        Json.Obj (List.map (fun p -> (phase_name p, ladder (phase_hdr t p))) all_phases)
      );
      ( "slo",
        Json.Obj
          [
            ("target_ns", Json.Int t.slo_target_ns);
            ("budget", Json.Float t.slo_budget);
            ("requests", Json.Int t.slo_total);
            ("over_target", Json.Int t.slo_over);
            ("burn_rate", Json.Float (slo_burn_rate t));
            ("breached", Json.Bool (slo_breached t));
          ] );
    ]
