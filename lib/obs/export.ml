(* Trace exporters.

   JSONL: one event per line, the canonical machine format; [parse_jsonl]
   is its exact inverse, which the round-trip tests and the determinism
   regression rely on.

   Chrome trace_event: the JSON object format understood by
   chrome://tracing and Perfetto (https://ui.perfetto.dev).  Regions map to
   threads of one "parcae" process; region lifetimes and pause windows
   become duration (B/E) slices, controller state / DoP / cores / features
   become counter tracks, and the remaining protocol events become instants
   with their payload in [args].  Timestamps are microseconds as the format
   requires. *)

(* ------------------------------------------------------------------ *)
(* JSONL.                                                              *)
(* ------------------------------------------------------------------ *)

let jsonl_to_buf buf events =
  List.iter
    (fun ev ->
      Json.to_buf buf (Event.to_json ev);
      Buffer.add_char buf '\n')
    events

let jsonl events =
  let buf = Buffer.create 4096 in
  jsonl_to_buf buf events;
  Buffer.contents buf

let parse_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line -> Event.of_json (Json.parse line))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event.                                                 *)
(* ------------------------------------------------------------------ *)

(* Fixed tids for the non-region tracks. *)
let tid_daemon = 1000
let tid_decima = 1001
let tid_platform = 1002
let tid_channels = 1003
let tid_scheduler = 1004

(* All internal timestamps are integer nanoseconds; the trace_event format
   wants microseconds, so this is the single conversion point. *)
let us_of_ns ns = float_of_int ns /. 1000.0
let ts_us ns = Json.Float (us_of_ns ns)

let chrome ?(process = "parcae") events =
  (* Assign region tids in order of first appearance so the layout is
     stable across runs of the same experiment. *)
  let region_tids = Hashtbl.create 7 in
  let next_tid = ref 0 in
  let tid_of_region r =
    match Hashtbl.find_opt region_tids r with
    | Some tid -> tid
    | None ->
        incr next_tid;
        Hashtbl.add region_tids r !next_tid;
        !next_tid
  in
  let out = ref [] in
  let push e = out := e :: !out in
  let record ?(args = []) ~name ~ph ~tid t =
    let base =
      [ ("name", Json.Str name); ("ph", Json.Str ph); ("ts", ts_us t);
        ("pid", Json.Int 1); ("tid", Json.Int tid) ]
    in
    let args = match args with [] -> [] | a -> [ ("args", Json.Obj a) ] in
    push (Json.Obj (base @ args))
  in
  let counter ~name ~tid t v =
    record ~args:[ ("value", v) ] ~name ~ph:"C" ~tid t
  in
  List.iter
    (fun { Event.t; kind } ->
      match kind with
      | Event.Region_start { region; scheme; threads; budget } ->
          let tid = tid_of_region region in
          record ~name:("region " ^ scheme) ~ph:"B" ~tid t
            ~args:[ ("threads", Json.Int threads); ("budget", Json.Int budget) ];
          counter ~name:("dop:" ^ region) ~tid t (Json.Int threads)
      | Event.Region_stop { region } ->
          record ~name:"region" ~ph:"E" ~tid:(tid_of_region region) t
      | Event.Ctrl_state { region; state } ->
          counter ~name:("ctrl:" ^ region) ~tid:(tid_of_region region) t
            (Json.Int (Event.ctrl_state_code state))
      | Event.Dop_change { region; scheme; old_dop; new_dop; budget; light } ->
          let tid = tid_of_region region in
          record ~name:"dop-change" ~ph:"i" ~tid t
            ~args:
              [ ("scheme", Json.Str scheme); ("old", Json.Int old_dop);
                ("new", Json.Int new_dop); ("budget", Json.Int budget);
                ("light", Json.Bool light) ];
          counter ~name:("dop:" ^ region) ~tid t (Json.Int new_dop)
      | Event.Pause { region } ->
          record ~name:"paused" ~ph:"B" ~tid:(tid_of_region region) t
      | Event.Resume { region; scheme; threads } ->
          record ~name:"paused" ~ph:"E" ~tid:(tid_of_region region) t
            ~args:[ ("scheme", Json.Str scheme); ("threads", Json.Int threads) ]
      | Event.Chan_flush { chan; dropped } ->
          record ~name:"chan-flush" ~ph:"i" ~tid:tid_channels t
            ~args:[ ("chan", Json.Str chan); ("dropped", Json.Int dropped) ]
      | Event.Budget_grant { region; budget } ->
          counter ~name:("budget:" ^ region) ~tid:(tid_of_region region) t
            (Json.Int budget)
      | Event.Daemon_repartition { shares; total } ->
          record ~name:"repartition" ~ph:"i" ~tid:tid_daemon t
            ~args:
              (("total", Json.Int total)
              :: List.map (fun (n, b) -> (n, Json.Int b)) shares)
      | Event.Hook_sample { task; dt_ns } ->
          counter ~name:(Printf.sprintf "exec-ns:task%d" task) ~tid:tid_decima t
            (Json.Int dt_ns)
      | Event.Feature_sample { name; value } ->
          counter ~name ~tid:tid_decima t (Json.Float value)
      | Event.Cores_online { cores } ->
          counter ~name:"online-cores" ~tid:tid_platform t (Json.Int cores)
      | Event.Trace_overflow { dropped } ->
          record ~name:"trace-overflow" ~ph:"i" ~tid:tid_platform t
            ~args:[ ("dropped", Json.Int dropped) ]
      | Event.Span_overflow { dropped } ->
          record ~name:"span-overflow" ~ph:"i" ~tid:tid_platform t
            ~args:[ ("dropped", Json.Int dropped) ]
      | Event.Task_spawn { task; parent; name } ->
          record ~name:("spawn " ^ name) ~ph:"i" ~tid:tid_scheduler t
            ~args:[ ("task", Json.Int task); ("parent", Json.Int parent) ]
      | Event.Task_done { task; busy_ns } ->
          record ~name:"task-done" ~ph:"i" ~tid:tid_scheduler t
            ~args:[ ("task", Json.Int task); ("busy_ns", Json.Int busy_ns) ]
      | Event.Chan_send_ev { chan; seq; task; _ } ->
          (* Flow-event arrows: one send (s) to one recv (f) per (chan, seq). *)
          record ~name:("send " ^ chan) ~ph:"s" ~tid:tid_channels t
            ~args:[ ("seq", Json.Int seq); ("task", Json.Int task) ]
      | Event.Chan_recv_ev { chan; seq; task; _ } ->
          record ~name:("recv " ^ chan) ~ph:"f" ~tid:tid_channels t
            ~args:[ ("seq", Json.Int seq); ("task", Json.Int task) ]
      | Event.Steal_ev { task; from_lane; to_lane } ->
          record ~name:"steal" ~ph:"i" ~tid:tid_scheduler t
            ~args:
              [ ("task", Json.Int task); ("from", Json.Int from_lane);
                ("to", Json.Int to_lane) ])
    events;
  (* Metadata: process and track names make the Perfetto view readable. *)
  let meta name tid label =
    Json.Obj
      [ ("name", Json.Str name); ("ph", Json.Str "M"); ("pid", Json.Int 1);
        ("tid", Json.Int tid); ("args", Json.Obj [ ("name", Json.Str label) ]) ]
  in
  let metas =
    meta "process_name" 0 process
    :: Hashtbl.fold (fun r tid acc -> meta "thread_name" tid r :: acc) region_tids []
    @ [ meta "thread_name" tid_daemon "daemon"; meta "thread_name" tid_decima "decima";
        meta "thread_name" tid_platform "platform"; meta "thread_name" tid_channels "channels";
        meta "thread_name" tid_scheduler "scheduler" ]
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List (metas @ List.rev !out));
         ("displayTimeUnit", Json.Str "ms") ])

(* ------------------------------------------------------------------ *)
(* Sink-aware wrappers: drops are reported, never silent.              *)
(* ------------------------------------------------------------------ *)

let events_of_sink sink =
  let events = Sink.events sink in
  let d = Sink.dropped sink in
  if d = 0 then events
  else
    (* Stamp the overflow marker at the oldest retained time so it sorts
       first: everything before it was lost. *)
    let t0 = match events with e :: _ -> e.Event.t | [] -> 0 in
    Event.make ~t:t0 (Event.Trace_overflow { dropped = d }) :: events

let jsonl_of_sink sink = jsonl (events_of_sink sink)
let chrome_of_sink ?process sink = chrome ?process (events_of_sink sink)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
