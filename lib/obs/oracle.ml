(* The trace invariant checker: replays an event trace and asserts the
   runtime-protocol invariants, turning any traced workload run into a
   protocol test.

   Invariants checked (violations carry the event index and time):

   - time is monotone: events are stamped with non-decreasing virtual time;
   - controller FSM (Figure 6.3): per region, the first state is INIT and
     every transition is one of
       INIT -> CALIB | MONITOR        (straight to MONITOR when a region
                                       exposes no parallel scheme)
       CALIB -> CALIB | OPT | MONITOR (CALIB -> CALIB on a config-cache hit,
                                       CALIB/OPT -> MONITOR adopting best)
       OPT -> CALIB | MONITOR
       MONITOR -> INIT                (workload/resource change re-triggers)
   - pause/resume protocol (Section 6.2): pauses and resumes of a region
     alternate; a Resume without a preceding Pause, or a Pause while
     already paused, is a violation.  A Pause may be closed by Region_stop
     (the terminate path) or left dangling by trace truncation (counted,
     not a violation);
   - channel flush (Section 4.5), with [require_flush]: every
     Pause ... Resume window contains at least one Chan_flush;
   - region lifecycle: no duplicate Region_start, no Pause/Resume/
     Dop_change after Region_stop, Ctrl/Pause/Resume only for started
     regions;
   - budget (Section 6.4.3), with [check_budget]: the thread total of every
     launch, resume, and DoP change is within the region budget recorded
     at the moment of the change.  Opt-in because administrator-selected
     mechanisms (e.g. WQT-H's Pthreads-OS oversubscription point) may
     deliberately exceed the hardware budget — the closed-loop controller
     must never do so;
   - daemon shares (Algorithm 5): every repartition grants each program at
     least one thread, and shares sum to at most the platform total
     (whenever the platform has at least one thread per program);
   - sample sanity: hook samples have non-negative task index and compute
     time, budget grants and core counts are non-negative.

   A sink that overflowed holds only a suffix of the run, in which the
   protocol context of the first events is lost; check [Sink.dropped]
   before drawing conclusions from a failing suffix trace. *)

type violation = { index : int; time : int; what : string }

type stats = {
  events : int;
  regions : int;  (* distinct regions observed *)
  ctrl_transitions : int;  (* Ctrl_state events *)
  pauses : int;
  resumes : int;
  dop_changes : int;
  flushes : int;
  repartitions : int;
  hook_samples : int;
  dangling_pauses : int;  (* pauses open at end of trace (truncation) *)
}

let violation_to_string v =
  Printf.sprintf "[%d] t=%d: %s" v.index v.time v.what

let violations_to_string vs = String.concat "\n" (List.map violation_to_string vs)

(* Per-region protocol state accumulated during replay. *)
type region_state = {
  mutable started : bool;
  mutable stopped : bool;
  mutable paused : bool;
  mutable ctrl : Event.ctrl_state option;
  mutable flushes_at_pause : int;  (* global flush count when Pause seen *)
}

let fresh_region () =
  { started = false; stopped = false; paused = false; ctrl = None; flushes_at_pause = 0 }

let fsm_ok (from : Event.ctrl_state) (to_ : Event.ctrl_state) =
  match (from, to_) with
  | Event.Init, (Event.Calibrate | Event.Monitor) -> true
  | Event.Calibrate, (Event.Calibrate | Event.Optimize | Event.Monitor) -> true
  | Event.Optimize, (Event.Calibrate | Event.Monitor) -> true
  | Event.Monitor, Event.Init -> true
  | _ -> false

let check ?(require_flush = false) ?(check_budget = false) events =
  let regions : (string, region_state) Hashtbl.t = Hashtbl.create 7 in
  let state_of region =
    match Hashtbl.find_opt regions region with
    | Some s -> s
    | None ->
        let s = fresh_region () in
        Hashtbl.add regions region s;
        s
  in
  let violations = ref [] in
  let n = ref 0 in
  let ctrl_transitions = ref 0 and pauses = ref 0 and resumes = ref 0 in
  let dop_changes = ref 0 and flushes = ref 0 and repartitions = ref 0 in
  let hook_samples = ref 0 in
  let prev_time = ref min_int in
  List.iter
    (fun { Event.t; kind } ->
      let index = !n in
      incr n;
      let bad fmt = Printf.ksprintf (fun what -> violations := { index; time = t; what } :: !violations) fmt in
      if t < !prev_time then bad "time went backwards (%d after %d)" t !prev_time;
      prev_time := max !prev_time t;
      match kind with
      | Event.Region_start { region; threads; budget; _ } ->
          let s = state_of region in
          if s.started && not s.stopped then bad "duplicate region_start for %s" region
          else begin
            (* A stopped name may be reused by a later region. *)
            Hashtbl.replace regions region
              { (fresh_region ()) with started = true }
          end;
          if threads < 1 then bad "region %s launched with %d threads" region threads;
          if check_budget && threads > budget then
            bad "region %s launched with %d threads over budget %d" region threads budget
      | Event.Region_stop { region } ->
          let s = state_of region in
          if not s.started then bad "region_stop for %s without region_start" region
          else if s.stopped then bad "duplicate region_stop for %s" region;
          s.stopped <- true;
          (* A stop closes any open pause (the terminate path). *)
          s.paused <- false
      | Event.Ctrl_state { region; state } ->
          incr ctrl_transitions;
          let s = state_of region in
          (match s.ctrl with
          | None ->
              if state <> Event.Init then
                bad "controller for %s started in %s, not INIT" region
                  (Event.ctrl_state_to_string state)
          | Some prev ->
              if not (fsm_ok prev state) then
                bad "controller for %s made illegal transition %s -> %s" region
                  (Event.ctrl_state_to_string prev)
                  (Event.ctrl_state_to_string state));
          s.ctrl <- Some state
      | Event.Pause { region } ->
          incr pauses;
          let s = state_of region in
          if not s.started then bad "pause of unstarted region %s" region;
          if s.stopped then bad "pause of stopped region %s" region;
          if s.paused then bad "pause of already-paused region %s" region;
          s.paused <- true;
          s.flushes_at_pause <- !flushes
      | Event.Resume { region; threads; _ } ->
          incr resumes;
          let s = state_of region in
          if s.stopped then bad "resume of stopped region %s" region;
          if not s.paused then bad "resume of %s without a matching pause" region;
          if require_flush && s.paused && !flushes <= s.flushes_at_pause then
            bad "resume of %s with no channel flush since its pause" region;
          if threads < 1 then bad "resume of %s with %d threads" region threads;
          s.paused <- false
      | Event.Dop_change { region; old_dop; new_dop; budget; light; _ } ->
          incr dop_changes;
          let s = state_of region in
          if s.stopped then bad "dop_change on stopped region %s" region;
          if light && s.paused then bad "light resize of %s while paused" region;
          if (not light) && not s.paused then
            bad "non-light dop_change of %s outside a pause window" region;
          if new_dop < 1 then bad "dop_change of %s to %d threads" region new_dop;
          if old_dop < 1 then bad "dop_change of %s from %d threads" region old_dop;
          if check_budget && new_dop > budget then
            bad "dop_change of %s to %d threads over budget %d" region new_dop budget
      | Event.Chan_flush { dropped; _ } ->
          incr flushes;
          if dropped < 0 then bad "chan_flush with negative dropped count %d" dropped
      | Event.Budget_grant { region; budget } ->
          if budget < 1 then bad "budget_grant of %d to %s" budget region
      | Event.Daemon_repartition { shares; total } ->
          incr repartitions;
          let sum = List.fold_left (fun acc (_, b) -> acc + b) 0 shares in
          List.iter
            (fun (p, b) -> if b < 1 then bad "daemon granted %s only %d threads" p b)
            shares;
          if List.length shares <= total && sum > total then
            bad "daemon shares sum to %d > total %d" sum total
      | Event.Hook_sample { task; dt_ns } ->
          incr hook_samples;
          if task < 0 then bad "hook_sample with task index %d" task;
          if dt_ns < 0 then bad "hook_sample with negative compute time %d" dt_ns
      | Event.Feature_sample _ -> ()
      | Event.Cores_online { cores } ->
          if cores < 0 then bad "cores_online with %d cores" cores
      | Event.Trace_overflow { dropped } ->
          if dropped <= 0 then bad "trace_overflow marker with %d dropped" dropped
      | Event.Span_overflow { dropped } ->
          if dropped <= 0 then bad "span_overflow marker with %d dropped" dropped
      | Event.Task_spawn { task; parent; _ } ->
          if task < 0 then bad "task_spawn with task id %d" task;
          if parent < -1 then bad "task_spawn with parent id %d" parent
      | Event.Task_done { task; busy_ns } ->
          if task < 0 then bad "task_done with task id %d" task;
          if busy_ns < 0 then bad "task_done with negative busy time %d" busy_ns
      | Event.Chan_send_ev { seq; busy_ns; _ } | Event.Chan_recv_ev { seq; busy_ns; _ } ->
          if seq < 0 then bad "channel event with sequence number %d" seq;
          if busy_ns < 0 then bad "channel event with negative busy time %d" busy_ns
      | Event.Steal_ev { task; from_lane; to_lane } ->
          if task < 0 then bad "steal with task id %d" task;
          if from_lane < 0 || to_lane < 0 then
            bad "steal between lanes %d -> %d" from_lane to_lane)
    events;
  let dangling =
    Hashtbl.fold (fun _ s acc -> if s.paused then acc + 1 else acc) regions 0
  in
  match List.rev !violations with
  | [] ->
      Ok
        {
          events = !n;
          regions = Hashtbl.length regions;
          ctrl_transitions = !ctrl_transitions;
          pauses = !pauses;
          resumes = !resumes;
          dop_changes = !dop_changes;
          flushes = !flushes;
          repartitions = !repartitions;
          hook_samples = !hook_samples;
          dangling_pauses = dangling;
        }
  | vs -> Error vs

let check_sink ?require_flush ?check_budget sink =
  check ?require_flush ?check_budget (Sink.events sink)
