(** Critical-path analysis over the causal trace-event graph.

    The scheduler emits [Task_spawn] / [Task_done] events with cumulative
    compute time, [Chan_send_ev] / [Chan_recv_ev] pairs matched by
    [(chan, seq)] (channels are FIFO, so the [seq]-th receive got the
    [seq]-th send), and [Steal_ev] migrations.  Those events induce a DAG
    whose node weights are compute nanoseconds:

    - within a task, consecutive events are chained and weighted by the
      growth of the task's cumulative [busy_ns];
    - a spawn adds a zero-weight edge from the parent's position to the
      child's start;
    - a matched send→recv pair adds a zero-weight edge from the sender's
      position at the send to the receiver's position at the receive.

    The longest weighted path through that DAG is the critical path: no
    schedule, with any number of lanes, finishes the traced work faster.
    [total_work / critical_path] is therefore an upper bound on speedup
    over a sequential execution of the same work — when a pipeline stops
    scaling at the bound, it is depth-limited, not scheduler-limited. *)

type report = {
  total_work_ns : int;  (** sum of compute over completed tasks *)
  critical_path_ns : int;  (** longest weighted path through the DAG *)
  bound : float;  (** [total_work / critical_path]; 1.0 when path is 0 *)
  path : (string * int) list;
      (** compute on the critical path attributed per task name,
          largest contribution first *)
  tasks : int;  (** distinct task ids observed *)
  edges : int;  (** matched send→recv pairs *)
  unmatched_recvs : int;
      (** receives whose send was not in the trace (truncation, or a
          flushed channel renumbering its counters) — the edge is skipped
          and the bound is computed from what remains *)
  steals : int;  (** task migrations observed *)
}

val analyze : Event.t list -> report
(** Replay [events] (any order; they are sorted by time, ties in emission
    order) and compute the critical path.  Non-causal event kinds are
    ignored, so a full mixed protocol trace is fine. *)

val report_to_json : report -> Json.t

val bottleneck : report -> string option
(** Name of the task holding the largest share of the critical path, when
    one dominates ([> 50%] of the path). *)
