(* The global trace destination.

   The simulator is cooperative and single-threaded (simulated threads are
   effects-based coroutines), so one current-sink cell is race-free; it
   plays the role of the per-process trace agent a real runtime would own.
   Emitters follow the pattern

     if Trace.enabled () then Trace.emit ~t:(Engine.time eng) (Event.Pause ...)

   so that with tracing disabled the entire cost is one load and one
   physical comparison, and the event payload is never allocated. *)

let current = ref Sink.null

let set s = current := s
let clear () = current := Sink.null
let sink () = !current
let enabled () = not (Sink.is_null !current)

let emit ~t kind = Sink.record !current ~t kind

(* Run [f] with [s] installed, restoring the previous sink on exit (also
   on exception), so nested scopes and tests compose. *)
let with_sink s f =
  let prev = !current in
  current := s;
  Fun.protect ~finally:(fun () -> current := prev) f
