(** The trace invariant checker: replays a trace and asserts the runtime
    protocol, turning every traced workload run into a protocol test.

    Always-on invariants: monotone virtual time; the controller FSM of
    Figure 6.3 (first state INIT, transitions within
    INIT->{CALIB,MONITOR}, CALIB->{CALIB,OPT,MONITOR}, OPT->{CALIB,MONITOR},
    MONITOR->INIT); pause/resume alternation per region (a pause may be
    closed by Region_stop — the terminate path); region lifecycle (no
    duplicate starts, no protocol events after stop); daemon shares that
    grant every program at least one thread and sum to at most the
    platform total; sanity of hook/budget/core samples.

    [require_flush] additionally demands at least one channel flush inside
    every pause...resume window (the Section 4.5 reset protocol — enable it
    for workloads that communicate through channels).  [check_budget]
    additionally demands that launch/resume/DoP-change thread totals fit
    the region budget recorded on the event — enable it for closed-loop
    controller runs; administrator mechanisms may oversubscribe
    deliberately.

    A sink that overflowed holds only a suffix of the run; check
    {!Sink.dropped} before interpreting violations on truncated traces. *)

type violation = { index : int; time : int; what : string }

type stats = {
  events : int;
  regions : int;
  ctrl_transitions : int;
  pauses : int;
  resumes : int;
  dop_changes : int;
  flushes : int;
  repartitions : int;
  hook_samples : int;
  dangling_pauses : int;  (** pauses still open at end of trace *)
}

val check :
  ?require_flush:bool -> ?check_budget:bool -> Event.t list -> (stats, violation list) result

val check_sink :
  ?require_flush:bool -> ?check_budget:bool -> Sink.t -> (stats, violation list) result

val violation_to_string : violation -> string
val violations_to_string : violation list -> string
