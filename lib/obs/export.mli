(** Trace exporters: JSONL (canonical, invertible) and Chrome trace_event
    JSON (loadable in chrome://tracing and Perfetto).

    Unit convention: every timestamp and duration inside the tree is
    integer nanoseconds (virtual on the simulator, wall-clock on the
    native backend).  Exporters convert only at the edge: JSONL keeps raw
    ns, the Chrome format requires microseconds ({!us_of_ns}), and the
    Prometheus exposition in {!Metrics} keeps ns in [_ns]-suffixed
    series. *)

val jsonl : Event.t list -> string
(** One compact JSON object per line. *)

val jsonl_to_buf : Buffer.t -> Event.t list -> unit

val parse_jsonl : string -> Event.t list
(** Exact inverse of {!jsonl}; blank lines are skipped.
    @raise Json.Parse_error on malformed records. *)

val chrome : ?process:string -> Event.t list -> string
(** Chrome trace_event object format: regions become named threads with
    region-lifetime and pause duration slices; controller state, DoP,
    budget, cores, and Decima samples become counter tracks; the remaining
    protocol events become instants with their payload in [args]. *)

val us_of_ns : int -> float
(** The ns-to-us conversion the Chrome exporter applies to every [ts]:
    [us_of_ns 1_234_567 = 1234.567]. *)

val events_of_sink : Sink.t -> Event.t list
(** The sink's retained events, prepended with a {!Event.Trace_overflow}
    marker when the ring overwrote anything — exporting a saturated sink
    never hides the loss. *)

val jsonl_of_sink : Sink.t -> string
(** {!jsonl} of {!events_of_sink}. *)

val chrome_of_sink : ?process:string -> Sink.t -> string
(** {!chrome} of {!events_of_sink}. *)

val write_file : string -> string -> unit
(** [write_file path contents] — plain file dump helper for the CLI. *)
