(** Trace exporters: JSONL (canonical, invertible) and Chrome trace_event
    JSON (loadable in chrome://tracing and Perfetto). *)

val jsonl : Event.t list -> string
(** One compact JSON object per line. *)

val jsonl_to_buf : Buffer.t -> Event.t list -> unit

val parse_jsonl : string -> Event.t list
(** Exact inverse of {!jsonl}; blank lines are skipped.
    @raise Json.Parse_error on malformed records. *)

val chrome : ?process:string -> Event.t list -> string
(** Chrome trace_event object format: regions become named threads with
    region-lifetime and pause duration slices; controller state, DoP,
    budget, cores, and Decima samples become counter tracks; the remaining
    protocol events become instants with their payload in [args]. *)

val write_file : string -> string -> unit
(** [write_file path contents] — plain file dump helper for the CLI. *)
