(** Request-level span tracing and the tail-latency collector.

    Every pooled request record carries a {!span}: a flat mutable record
    of int-nanosecond stamps, reset on pool alloc and mutated in place —
    allocation-free on the serve path.  The phase accounting is
    difference-based, so queue + chan + compute equals end minus arrival
    exactly; reconfiguration stall and GC overlap are carved out of
    those phases by clamped zero-sum transfers at completion, keeping
    the five-phase sum exact (DESIGN.md section 15).

    Completed spans land in an installed {!t} collector: a preallocated
    ring with drop accounting (mirroring the trace sink), per-phase HDR
    histograms, and an SLO burn tracker.  With no collector installed,
    {!enabled} is one atomic load and every hook no-ops. *)

val max_stages : int
(** Per-stage compute segments recorded per span (extra stages still
    count toward the compute total). *)

type span = {
  mutable s_id : int;
  mutable s_arrival_ns : int;
  mutable s_last_ns : int;
  mutable s_seg_start : int;
  mutable s_queue_ns : int;
  mutable s_chan_ns : int;
  mutable s_compute_ns : int;
  mutable s_stages : int;
  mutable s_open : bool;
  s_gen : int Atomic.t;
  mutable s_stall_mark : int;
  mutable s_gc_mark : int;
  s_stage_ns : int array;
}

val make_span : unit -> span
(** A fresh, closed span — created once per pooled request record. *)

val null : span
(** Shared placeholder for records built while tracing is disabled —
    never mutated ({!reset}, {!enter}, {!exit} and {!finish} are all
    physically inert on it, even after a collector is installed
    mid-run), so an untraced pool miss does not pay {!make_span}'s
    allocation.  Compare physically ([==]) and upgrade to a private
    span on the first traced alloc. *)

val reset : span -> id:int -> arrival_ns:int -> unit
(** Re-arm the span for a new request: bumps the generation by two
    (invalidating any in-flight {!enter} token from the record's
    previous life), zeroes the phases, and marks the global stall/GC
    accumulators.  The generation is held odd for the duration of the
    field writes, so a stale {!exit} racing in from another domain can
    never interleave with the fresh fields.  A dozen int stores and a
    few atomic ops; never allocates. *)

val enter : span -> now:int -> int
(** Stage entry: attribute the gap since the last observation point to
    queue wait (before the first stage) or channel wait (after), open a
    compute segment, and return a generation token for {!exit}. *)

val exit : span -> token:int -> now:int -> unit
(** Stage exit: close the open compute segment.  No-ops on a stale token
    (pooled record re-allocated in between — detected by a generation
    compare-and-set that also excludes a concurrent {!reset}), a
    finished span, or no open segment — the races pooled reuse makes
    possible. *)

val finish : span -> now:int -> unit
(** Request completion: close any open segment, carve stall/GC overlap
    out of the waits, and publish to the installed collector.  No-op
    without a collector; a second finish on the same generation only
    bumps the collector's double-finish diagnostic (exactly-once). *)

(** {1 Stall / GC feeds} *)

val note_stall : int -> unit
(** Add a reconfiguration stall window (executor pause/resume) to the
    global accumulator in-flight spans mark against.  No-op when no
    collector is installed or [ns <= 0]. *)

val note_gc : int -> unit
(** Add a GC pause (Runtime_ev lanes) to the global accumulator. *)

val stall_total : unit -> int
val gc_total : unit -> int

(** {1 The collector} *)

type t

val create : ?capacity:int -> ?sub_bits:int -> unit -> t
(** [capacity] (default 4096) bounds the completed-span ring — overflow
    overwrites the oldest entry and counts a drop; [sub_bits] sets the
    HDR resolution ({!Hdr.create}). *)

val set : t -> unit
val clear : unit -> unit
val get : unit -> t option
val enabled : unit -> bool

val with_collector : t -> (unit -> 'a) -> 'a
(** Install [t], run [f], uninstall (also on exception). *)

val configure_slo : t -> target_ns:int -> budget:float -> unit
(** Arm the SLO tracker: requests slower than [target_ns] consume error
    budget; [budget] is the tolerated over-target fraction.  A
    [target_ns <= 0] disables the tracker. *)

val set_stage_names : t -> string array -> unit
val stage_name : t -> int -> string

(** {1 Phases} *)

type phase = Queue | Chan | Compute | Reconfig | Gc

val all_phases : phase list
val phase_name : phase -> string

(** {1 Reads} *)

type rec_view = {
  rv_id : int;
  rv_end_ns : int;
  rv_total : int;
  rv_queue : int;
  rv_chan : int;
  rv_compute : int;
  rv_reconfig : int;
  rv_gc : int;
  rv_stage_ns : int array;
}

val records : t -> rec_view list
(** Retained completed spans, oldest first.  Each record's five phases
    sum to [rv_total] exactly. *)

val completed : t -> int
val drops : t -> int
val double_finishes : t -> int

val quantile_ns : t -> float -> int
val mean_ns : t -> float
val max_ns : t -> int
val phase_quantile_ns : t -> phase -> float -> int
val phase_mean_ns : t -> phase -> float

val slo_target_ns : t -> int
val slo_budget : t -> float
val slo_requests : t -> int
val slo_over : t -> int

val slo_burn_rate : t -> float
(** Over-target fraction relative to budget: 1.0 consumes the budget
    exactly, above 1.0 the SLO is burning down. *)

val slo_breached : t -> bool

val report_json : t -> Json.t
(** The [/latency.json] wire format: quantile ladders for total and each
    phase, counts, drops, and SLO state. *)
