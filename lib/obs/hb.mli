(** Happens-before race sanitizer core (FastTrack-style).

    A tracker maintains one vector clock per engine task and shadow state
    per IR array cell (last-write epoch plus a read set).  Backends report
    the causal events the critical-path analysis already consumes — task
    spawn/completion, channel send→recv pairs, lock acquire/release,
    barrier arrivals, region park/resume — and the Flex interpreter
    reports every [load]/[store] with its IR node id.  Two accesses to the
    same cell, at least one a write, with no happens-before path between
    them constitute a race.

    The tracker is deliberately conservative in one direction only: every
    reported edge is a real synchronization, so a reported race is a true
    unordered pair under the recorded causal model; joins that
    over-approximate (the native channels' cumulative per-channel clock)
    can hide races but never invent them. *)

type t

val create : unit -> t

(** {1 Installation} — same ambient-cell discipline as {!Trace}. *)

val set : t -> unit
val clear : unit -> unit
val get : unit -> t option
val enabled : unit -> bool

val with_tracker : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback (always uninstalls). *)

(** {1 Causal-event hooks} — no-ops unless a tracker is installed.
    [task] is the engine task id of the acting thread. *)

val on_spawn : parent:int -> child:int -> unit
(** The child task starts with (a copy of) the parent's vector clock. *)

val on_task_done : task:int -> unit
(** Release into the task's completion key; {!on_join} acquires it. *)

val on_join : task:int -> joined:int -> unit
(** [task] returned from joining task [joined]. *)

val on_release : task:int -> key:string -> unit
(** Generic release: lock release, region-worker park, barrier arrival. *)

val on_acquire : task:int -> key:string -> unit
(** Generic acquire: lock acquisition, region pause/await, barrier exit. *)

val on_send : task:int -> chan:string -> seq:int -> unit
(** Channel send.  [seq >= 0] snapshots the sender's clock under
    [(chan, seq)] for exact FIFO pairing (the simulator); [seq < 0] joins
    only the channel's cumulative clock (the native backend, where the
    item becomes visible before its sequence number is known). *)

val on_recv : task:int -> chan:string -> seq:int -> unit
(** Channel receive: acquire the [(chan, seq)] snapshot when present,
    falling back to the channel's cumulative clock. *)

val on_access : task:int -> arr:string -> idx:int -> node:int -> write:bool -> unit
(** A dynamic [load] ([write = false]) or [store] ([write = true]) of
    [arr.(idx)] executed by IR node [node].  Updates the
    [parcae_sanitizer_accesses_total] / [parcae_sanitizer_races_total]
    counters when a metrics registry is installed. *)

(** {1 Results} *)

type pair = {
  p_arr : string;
  p_src : int;  (** IR node id of the earlier access *)
  p_dst : int;  (** IR node id of the later access *)
  p_src_write : bool;
  p_dst_write : bool;
  p_count : int;  (** dynamic occurrences of this (src, dst) collision *)
  p_raced : int;  (** occurrences with no happens-before path *)
  p_idx : int;  (** an example cell index *)
  p_task_src : int;  (** example task pair (from a raced occurrence when any) *)
  p_task_dst : int;
}
(** A same-cell collision between two IR nodes with at least one write,
    aggregated over the run.  [p_raced = 0] means every occurrence was
    ordered — an observed (materialized) dependence, not a race. *)

val pairs : t -> pair list
(** All recorded collisions, sorted by array then node ids. *)

val races : t -> pair list
(** The subset of {!pairs} with [p_raced > 0]. *)

val access_count : t -> int
val race_count : t -> int

val task_count : t -> int
(** Number of distinct tasks that performed at least one tracked event. *)
