(* The Decima metrics registry.

   Aggregated, queryable telemetry for the runtime: monotonic counters,
   gauges, and log-bucketed histograms, organized into labeled families the
   way Prometheus models them.  The registry complements the event trace
   (Sink/Trace): traces answer "what happened, in order", the registry
   answers "how much, how fast, how distributed" while a run is in flight.

   Design constraints, mirroring [Trace]:

   - Dependency-free: only the stdlib and the in-tree [Json] printer.
   - A [null] registry is a physical sentinel; emitters guard with

       if Metrics.enabled () then Metrics.inc (handles ()).sends

     so disabled metrics cost one load and one pointer comparison, and no
     label lists or handle records are ever allocated.
   - Deterministic exposition: families and series are emitted in sorted
     order, and floats print through a fixed format, so two same-seed runs
     produce byte-identical snapshots.
   - Recording is O(1): counters and gauges are single mutable fields;
     histograms locate their bucket by binary search over at most a few
     dozen bounds.  The simulator is cooperative and single-threaded, so
     plain mutation is race-free — the moral equivalent of the paper's
     unsynchronized shared-memory counters (Section 4.7). *)

(* ------------------------------------------------------------------ *)
(* Instruments.                                                        *)
(* ------------------------------------------------------------------ *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (* strictly increasing finite upper bounds *)
  counts : int array;  (* per-bucket counts; length = bounds + 1 (+Inf) *)
  mutable h_sum : float;
  mutable h_count : int;
}

let inc_by c n = c.c <- c.c + n
let inc c = inc_by c 1
let counter_value c = c.c

let set_gauge g v = g.g <- v
let add_gauge g v = g.g <- g.g +. v
let gauge_value g = g.g

(* First bucket whose upper bound admits [v]; the overflow bucket if none
   does.  Binary search keeps recording O(log #buckets) ~ O(1). *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let observe_ns h ns = observe h (float_of_int ns)

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* Summaries are HDR histograms (lib/obs/hdr.ml): fixed-precision
   log-linear buckets over integer nanoseconds with a bounded-relative-
   error quantile estimate.  They replace reservoir sampling for latency
   on the serve path — a reservoir's percentile jitters with the sampling
   seed, an HDR quantile is a deterministic function of the observations
   (DESIGN.md section 15). *)
type summary = Hdr.t

let observe_summary (s : summary) ns = Hdr.observe s ns
let summary_quantile (s : summary) q = Hdr.quantile s q
let summary_count (s : summary) = Hdr.count s
let summary_sum (s : summary) = Hdr.sum s

(* Quantiles exported for every summary series: the Prometheus-conventional
   ladder a scrape loop expects for tail latency. *)
let summary_export_quantiles = [ 0.5; 0.9; 0.99; 0.999 ]

(* [count] log-spaced upper bounds starting at [lo], each [base] times the
   previous — the HDR-style bucketing every duration histogram uses. *)
let log_buckets ~base ~lo ~count =
  if base <= 1.0 || lo <= 0.0 || count <= 0 then invalid_arg "Metrics.log_buckets";
  Array.init count (fun i -> lo *. (base ** float_of_int i))

(* Virtual-time durations in nanoseconds: 256 ns .. ~4.6 hours. *)
let duration_ns_buckets = log_buckets ~base:4.0 ~lo:256.0 ~count:18

(* Response times in seconds: 1 ms .. ~65 s. *)
let seconds_buckets = log_buckets ~base:2.0 ~lo:0.001 ~count:17

(* ------------------------------------------------------------------ *)
(* Families and registries.                                            *)
(* ------------------------------------------------------------------ *)

type kind = Counter_kind | Gauge_kind | Histogram_kind | Summary_kind

type instrument =
  | Counter_i of counter
  | Gauge_i of gauge
  | Histogram_i of histogram
  | Summary_i of summary

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_buckets : float array;  (* histogram families only *)
  f_sub_bits : int;  (* summary families only: HDR resolution *)
  f_label_names : string list;
  f_series : (string list, instrument) Hashtbl.t;  (* keyed by label values *)
}

type t = {
  null_ : bool;
  mu : Mutex.t;
      (* guards structural mutation of the hashtables (family/series
         creation) and snapshot reads.  Instrument *updates* (inc,
         set_gauge, observe) stay unsynchronized: plain OCaml fields
         cannot tear, and lossy counts under contention are the paper's
         own unsynchronized-shared-counter discipline (Section 4.7). *)
  families : (string, family) Hashtbl.t;
}

let create () = { null_ = false; mu = Mutex.create (); families = Hashtbl.create 32 }
let null = { null_ = true; mu = Mutex.create (); families = Hashtbl.create 0 }
let is_null r = r == null

(* ---- The installed registry (mirrors Trace's current sink). ---- *)

let current_ref = ref null

let set r = current_ref := r
let clear () = current_ref := null
let current () = !current_ref
let enabled () = not (is_null !current_ref)

let with_registry r f =
  let prev = !current_ref in
  current_ref := r;
  Fun.protect ~finally:(fun () -> current_ref := prev) f

(* Memoize instrument handles against the installed registry: the returned
   thunk rebuilds only when a different registry is installed, so hot paths
   pay one physical comparison per event. *)
let cached build =
  let memo = ref None in
  fun () ->
    let reg = !current_ref in
    match !memo with
    | Some (r, v) when r == reg -> v
    | _ ->
        let v = build reg in
        memo := Some (reg, v);
        v

(* ---- Family creation / series lookup. ---- *)

let kind_name = function
  | Counter_kind -> "counter"
  | Gauge_kind -> "gauge"
  | Histogram_kind -> "histogram"
  | Summary_kind -> "summary"

let make_instrument fam =
  match fam.f_kind with
  | Counter_kind -> Counter_i { c = 0 }
  | Gauge_kind -> Gauge_i { g = 0.0 }
  | Histogram_kind ->
      Histogram_i
        {
          bounds = fam.f_buckets;
          counts = Array.make (Array.length fam.f_buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
  | Summary_kind -> Summary_i (Hdr.create ~sub_bits:fam.f_sub_bits ())

let family reg ~name ~help ~kind ~buckets ~sub_bits ~label_names =
  match Hashtbl.find_opt reg.families name with
  | Some fam ->
      if fam.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s registered as %s, requested as %s" name
             (kind_name fam.f_kind) (kind_name kind));
      if List.length fam.f_label_names <> List.length label_names then
        invalid_arg (Printf.sprintf "Metrics: %s label arity mismatch" name);
      fam
  | None ->
      let fam =
        { f_name = name; f_help = help; f_kind = kind; f_buckets = buckets;
          f_sub_bits = sub_bits; f_label_names = label_names;
          f_series = Hashtbl.create 4 }
      in
      Hashtbl.replace reg.families name fam;
      fam

(* Family/series creation takes the registry mutex: concurrent native
   workers intern handles against the same hashtables, and an unguarded
   [Hashtbl.replace] race can corrupt the table.  Creation is rare (hot
   paths cache handles), so one mutex per registry is plenty. *)
let series reg ~name ~help ~kind ~buckets ?(sub_bits = 7) labels =
  Mutex.lock reg.mu;
  let i =
    match
      let fam =
        family reg ~name ~help ~kind ~buckets ~sub_bits
          ~label_names:(List.map fst labels)
      in
      let key = List.map snd labels in
      match Hashtbl.find_opt fam.f_series key with
      | Some i -> i
      | None ->
          let i = make_instrument fam in
          Hashtbl.replace fam.f_series key i;
          i
    with
    | i -> i
    | exception e ->
        Mutex.unlock reg.mu;
        raise e
  in
  Mutex.unlock reg.mu;
  i

(* Instruments created against the null registry are free-standing dummies:
   updates mutate garbage that is never exposed, so a stray unguarded
   emitter is harmless rather than fatal. *)

let counter ?(help = "") ?(labels = []) reg name =
  if is_null reg then { c = 0 }
  else
    match series reg ~name ~help ~kind:Counter_kind ~buckets:[||] labels with
    | Counter_i c -> c
    | _ -> assert false

let gauge ?(help = "") ?(labels = []) reg name =
  if is_null reg then { g = 0.0 }
  else
    match series reg ~name ~help ~kind:Gauge_kind ~buckets:[||] labels with
    | Gauge_i g -> g
    | _ -> assert false

let histogram ?(help = "") ?(buckets = duration_ns_buckets) ?(labels = []) reg name =
  if is_null reg then
    { bounds = buckets; counts = Array.make (Array.length buckets + 1) 0;
      h_sum = 0.0; h_count = 0 }
  else
    match series reg ~name ~help ~kind:Histogram_kind ~buckets labels with
    | Histogram_i h -> h
    | _ -> assert false

let summary ?(help = "") ?(labels = []) ?(sub_bits = 7) reg name =
  if is_null reg then Hdr.create ~sub_bits ()
  else
    match series reg ~name ~help ~kind:Summary_kind ~buckets:[||] ~sub_bits labels with
    | Summary_i s -> s
    | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { bounds : float array; counts : int array; sum : float; count : int }
  | Summary_v of { quantiles : (float * float) list; sum : float; count : int }

type sample = { labels : (string * string) list; value : value }
type fam_snapshot = { name : string; help : string; skind : kind; samples : sample list }

let snapshot_instrument = function
  | Counter_i c -> Counter_v c.c
  | Gauge_i g -> Gauge_v g.g
  | Histogram_i h ->
      Histogram_v
        { bounds = Array.copy h.bounds; counts = Array.copy h.counts;
          sum = h.h_sum; count = h.h_count }
  | Summary_i s ->
      Summary_v
        {
          quantiles =
            List.map
              (fun q -> (q, float_of_int (Hdr.quantile s q)))
              summary_export_quantiles;
          sum = float_of_int (Hdr.sum s);
          count = Hdr.count s;
        }

(* Families sorted by name, series sorted by label values: exposition order
   is a function of the recorded data alone, never of hash-table layout.
   Takes the registry mutex so a concurrent handle creation cannot be
   observed mid-rehash. *)
let snapshot reg =
  Mutex.lock reg.mu;
  let fams = Hashtbl.fold (fun _ fam acc -> fam :: acc) reg.families [] in
  let snap =
    fams
  |> List.sort (fun a b -> compare a.f_name b.f_name)
  |> List.map (fun fam ->
         let samples =
           Hashtbl.fold (fun key i acc -> (key, i) :: acc) fam.f_series []
           |> List.sort (fun (a, _) (b, _) -> compare a b)
           |> List.map (fun (key, i) ->
                  { labels = List.combine fam.f_label_names key;
                    value = snapshot_instrument i })
         in
         { name = fam.f_name; help = fam.f_help; skind = fam.f_kind; samples })
  in
  Mutex.unlock reg.mu;
  snap

(* Upper bound of the bucket where the [q]-quantile falls — the standard
   bucket-resolution estimate Prometheus's histogram_quantile computes.
   Returns the largest finite bound for samples in the overflow bucket and
   nan for an empty histogram. *)
let quantile ~bounds ~counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then nan
  else begin
    let target = q *. float_of_int total in
    let n = Array.length bounds in
    let rec walk i cum =
      if i >= n then (if n = 0 then nan else bounds.(n - 1))
      else
        let cum = cum + counts.(i) in
        if float_of_int cum >= target then bounds.(i) else walk (i + 1) cum
    in
    walk 0 0
  end

(* ------------------------------------------------------------------ *)
(* Exposition: Prometheus text format 0.0.4.                           *)
(* ------------------------------------------------------------------ *)

(* Fixed float format: integral values render as integers (counters and
   bucket bounds read naturally), everything else via %.12g.  Byte-stable
   across runs by construction. *)
let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_block labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
      ^ "}"

let to_prometheus reg =
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      if fam.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam.name fam.help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam.name (kind_name fam.skind));
      List.iter
        (fun { labels; value } ->
          match value with
          | Counter_v c ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" fam.name (label_block labels) c)
          | Gauge_v g ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" fam.name (label_block labels) (fmt_float g))
          | Histogram_v { bounds; counts; sum; count } ->
              (* Buckets are cumulative and always end at le="+Inf". *)
              let cum = ref 0 in
              Array.iteri
                (fun i b ->
                  cum := !cum + counts.(i);
                  let labels = labels @ [ ("le", fmt_float b) ] in
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" fam.name (label_block labels) !cum))
                bounds;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" fam.name
                   (label_block (labels @ [ ("le", "+Inf") ]))
                   count);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" fam.name (label_block labels) (fmt_float sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" fam.name (label_block labels) count)
          | Summary_v { quantiles; sum; count } ->
              (* Prometheus summary convention: one series per quantile,
                 then _sum and _count. *)
              List.iter
                (fun (q, v) ->
                  let labels = labels @ [ ("quantile", fmt_float q) ] in
                  Buffer.add_string buf
                    (Printf.sprintf "%s%s %s\n" fam.name (label_block labels)
                       (fmt_float v)))
                quantiles;
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" fam.name (label_block labels) (fmt_float sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" fam.name (label_block labels) count))
        fam.samples)
    (snapshot reg);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exposition: self-contained JSON snapshot.                           *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Counter_v c -> Json.Int c
  | Gauge_v g -> Json.Float g
  | Histogram_v { bounds; counts; sum; count } ->
      Json.Obj
        [ ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) bounds)));
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)));
          ("sum", Json.Float sum); ("count", Json.Int count) ]
  | Summary_v { quantiles; sum; count } ->
      Json.Obj
        [ ("quantiles",
           Json.Obj (List.map (fun (q, v) -> (fmt_float q, Json.Float v)) quantiles));
          ("sum", Json.Float sum); ("count", Json.Int count) ]

let to_json reg =
  Json.Obj
    [ ("families",
       Json.List
         (List.map
            (fun fam ->
              Json.Obj
                [ ("name", Json.Str fam.name); ("kind", Json.Str (kind_name fam.skind));
                  ("help", Json.Str fam.help);
                  ("series",
                   Json.List
                     (List.map
                        (fun { labels; value } ->
                          Json.Obj
                            [ ("labels",
                               Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels));
                              ("value", value_to_json value) ])
                        fam.samples)) ])
            (snapshot reg))) ]

let to_json_string reg = Json.to_string (to_json reg)
