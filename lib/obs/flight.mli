(** The controller flight recorder: a decision log with offline replay.

    Where {!Trace} records what the runtime *did* (pauses, resumes, DoP
    changes), the flight recorder records why: one {!decision} per
    controller epoch carrying the FSM state, the per-task rates Decima
    measured, the calibration table of (DoP, fitness) probes, the gradient
    estimate, the candidate and chosen DoP, and a stable human-readable
    [reason] tag (["gradient_positive"], ["calibration_point"],
    ["slack_reclaimed"], ...).  The daemon and the Morta mechanisms log
    through the same recorder, so a single JSONL file explains every move
    of a run.

    Reconfiguration costs ride along as {!overhead} entries: {!Ledger}
    forwards each phase measurement (signal, barrier, flush, restart,
    total) here when a recorder is installed, which is what
    [parcae_demo explain] renders as the per-region overhead table.

    Because the controller's transition rules are pure given the recorded
    measurements, {!replay} can re-run them over a log and check that they
    reproduce the same moves — every recorded run doubles as a regression
    test for controller changes (see {!Ascent}).

    Times are virtual/wall nanoseconds, like everywhere else in the tree;
    exporters convert at the edge ({!Export.us_of_ns}). *)

(** {1 Records} *)

type task_obs = {
  task : string;  (** task label from Decima *)
  iters : int;  (** iterations completed so far *)
  ips : float;  (** measured iterations per second *)
  exec_ns : float;  (** mean (EWMA) per-iteration execution time, ns *)
}
(** Per-task measurement snapshot taken from Decima when a decision is
    recorded. *)

type decision = {
  epoch : int;  (** monotonic id, assigned by the recorder *)
  t : int;  (** virtual time of the decision, ns *)
  actor : string;  (** ["controller"], ["daemon"], or ["morta"] *)
  region : string;  (** region name, or ["platform"] for the daemon *)
  state : Event.ctrl_state option;  (** FSM state for controller decisions *)
  reason : string;  (** stable snake_case tag, never empty *)
  tasks : task_obs list;  (** Decima snapshot at decision time *)
  probes : (int * float) list;
      (** calibration table: (DoP, fitness) pairs in measurement order for
          gradient decisions, (scheme, throughput) for ["adopt_best"] *)
  gradient : float option;  (** finite-difference estimate at [candidate] *)
  inputs : (string * float) list;  (** named scalars the rule depended on *)
  candidate : int;  (** starting point (DoP or thread count) *)
  chosen : int;  (** what the decision settled on *)
  threads : int;  (** region thread total after the decision *)
  budget : int;  (** thread budget in force *)
  slack : (string * int) list;  (** per-program grants, daemon decisions *)
}

type overhead = {
  o_t : int;  (** virtual time the phase measurement closed, ns *)
  o_region : string;
  o_phase : string;  (** ["signal"], ["barrier"], ["flush"], ["restart"], ["total"] *)
  o_ns : int;
}

type entry = Decision of decision | Overhead of overhead

(** {1 The recorder}

    Same discipline as {!Trace}: a physical [null] sentinel makes
    {!enabled} one load and one pointer comparison, so with no recorder
    installed the runtime pays nothing. *)

type t

val create : unit -> t
val null : t
val is_null : t -> bool
val set : t -> unit
val clear : unit -> unit
val current : unit -> t
val enabled : unit -> bool

val with_recorder : t -> (unit -> 'a) -> 'a
(** Run [f] with the recorder installed, restoring the previous one on
    exit (also on exception). *)

val entries : t -> entry list
(** All recorded entries, oldest first. *)

val count : t -> int

val decision :
  t:int ->
  actor:string ->
  region:string ->
  ?state:Event.ctrl_state ->
  reason:string ->
  ?tasks:task_obs list ->
  ?probes:(int * float) list ->
  ?gradient:float ->
  ?inputs:(string * float) list ->
  ?slack:(string * int) list ->
  candidate:int ->
  chosen:int ->
  threads:int ->
  budget:int ->
  unit ->
  unit
(** Record a decision on the installed recorder (no-op when disabled).
    The epoch id is stamped by the recorder, monotonically per recorder. *)

val overhead : t:int -> region:string -> phase:string -> ns:int -> unit
(** Record an overhead ledger entry (no-op when disabled).  Called by
    {!Ledger.note}; instrumented code should go through the ledger. *)

(** {1 JSONL encoding}

    One object per line; decisions are tagged [{"rec":"decision",...}] and
    overheads [{"rec":"overhead",...}].  [parse_jsonl] is the exact
    inverse of [to_jsonl]. *)

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> entry
(** @raise Json.Parse_error on unknown shapes. *)

val to_jsonl : entry list -> string
val parse_jsonl : string -> entry list

(** {1 The pure gradient-ascent rule}

    The controller's DoP search (the paper's Algorithm 4) factored out
    over an abstract measurement function, so that the live controller and
    the offline replayer run literally the same code: live, [measure]
    reconfigures the region and samples Decima; offline, it looks the
    answer up in the recorded calibration table. *)

module Ascent : sig
  type outcome = {
    probes : (int * float) list;  (** every (DoP, fitness) measured, in order *)
    chosen : int;
    fitness : float;  (** fitness at [chosen] *)
    reason : string;
        (** ["gradient_positive"] climbed up, ["gradient_negative"] climbed
            down, ["gradient_flat"] stayed at the candidate *)
  }

  val climb : measure:(int -> float option) -> d0:int -> cap:int -> outcome option
  (** Hill-climb from [d0] within [1..cap].  Probes [d0], then [d0+1] and
      [d0-1] (when in range) to pick a direction, then walks while fitness
      improves (strictly when climbing up, weakly when climbing down —
      preferring fewer threads at equal throughput).  [None] as soon as
      [measure] returns [None] (the region finished mid-search). *)

  val gradient : d0:int -> (int * float) list -> float option
  (** Finite-difference estimate at [d0] from a probe table:
      [f(d0+1) - f(d0)] when the up-probe exists, else [f(d0) - f(d0-1)]. *)
end

(** {1 Offline replay} *)

type replay_result = {
  decisions : int;  (** decision entries examined *)
  mismatches : (int * string) list;  (** (epoch, what went wrong) *)
  moves : (string * int list) list;
      (** per region, the thread totals of replayed configuration moves,
          in log order *)
}

val replay : entry list -> replay_result
(** Re-run the pure decision rules over a recorded log.  Gradient
    decisions re-execute {!Ascent.climb} against the recorded calibration
    table; ["adopt_best"] re-picks the best scheme from the recorded
    probes; monitor exits are checked against their recorded inputs;
    daemon grants are checked for feasibility.  A clean replay has
    [mismatches = []] and [moves] equal to {!recorded_moves} of the same
    log. *)

val recorded_moves : entry list -> (string * int list) list
(** The thread totals the log says were applied, per region, in order —
    the reference {!replay} must reproduce. *)
