(* Common shape of a Parcae-enhanced application (Table 8.2).

   Every workload model exposes: the external work queue, the top-level
   parallelization schemes registered with Morta, pause/reset callbacks for
   the flush protocol, response/throughput metrics, and the hooks the
   mechanisms of Chapter 6 need (work-queue load, configuration
   constructors, per-task loads, dPmax). *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Pipeline = Parcae_core.Pipeline

type t = {
  name : string;
  eng : Engine.t;
  queue : Request.t Pipeline.msg Chan.t;  (* external work queue *)
  schemes : Task.par_descriptor list;
  on_pause : unit -> unit;
  on_reset : unit -> unit;
  metrics : Metrics.t;
  (* Mechanism hooks. *)
  wq_load : unit -> float;  (* work-queue occupancy *)
  inner_dop_config : (int -> Config.t) option;
      (* two-level servers: map an inner DoP (1 = inner parallelism off) to
         a full configuration under the platform budget *)
  per_task_loads : (unit -> float) option array;
      (* flat pipelines: per-task input-queue loads (None for seq tasks) *)
  fused_choice : int option;  (* scheme index with collapsed stages, if any *)
  dpmax : int;  (* DoP beyond which parallel efficiency drops below 0.5 *)
  configs : (string * Config.t) list;  (* named static configurations *)
  default_config : Config.t;
  seq_request_ns : int;  (* nominal sequential per-request work *)
}

(* Named static configuration lookup. *)
let config t name =
  match List.assoc_opt name t.configs with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "%s: no configuration %S (have: %s)" t.name name
           (String.concat ", " (List.map fst t.configs)))

(* Oversubscription penalty on compute cost: when the process keeps many
   more threads alive than there are cores, context-switch churn and cache
   pollution inflate each thread's work — the effect that makes
   "Pthreads-OS" oversubscription unprofitable for memory-bound dedup but
   still profitable for ferret (Table 8.5).  [alpha] is the per-app
   sensitivity; the factor is 1 when the thread count fits the cores.
   Live threads (not just runnable ones) drive the penalty because cache
   footprint scales with resident working sets. *)
let oversub_factor eng ~alpha =
  if Engine.is_native eng then 1.0
    (* Real hardware charges its own oversubscription penalty (scheduler
       churn lands in wall time); modelling it on top would double-count. *)
  else begin
    let online = max 1 (Engine.online_cores eng) in
    let pressure = float_of_int (Engine.live_threads eng) /. float_of_int online in
    1.0 +. (alpha *. Float.max 0.0 (pressure -. 1.0))
  end

(* [oversub_factor] in 16.16 fixed point with [alpha] pre-converted, so
   the serve path's per-stage cost scaling performs no float operation:
   factor = 1 + alpha * max 0 (live/online - 1)
          = 65536 + alpha_fp * (live - online) / online. *)
let oversub_factor_fp eng ~alpha_fp =
  if Engine.is_native eng then 65536
  else begin
    let online = max 1 (Engine.online_cores eng) in
    let over = Engine.live_threads eng - online in
    if over <= 0 then 65536 else 65536 + (alpha_fp * over / online)
  end

let alpha_fp alpha = int_of_float ((alpha *. 65536.0) +. 0.5)

(* Compute [base] ns inflated by the request scale and the current
   oversubscription factor — all-integer (16.16 fixed point, rounded to
   nearest at each step) and suspended through the payload-free effect,
   so a stage burst costs the serve path zero non-runtime allocation.
   Stage factories pre-convert alpha once ({!alpha_fp}) and close over
   it. *)
let compute_scaled_fp eng ~alpha_fp (req : Request.t) base =
  let f = oversub_factor_fp eng ~alpha_fp in
  let scaled = (((base * f) + 32768) asr 16) * req.Request.scale_fp in
  Engine.compute_in eng ((scaled + 32768) asr 16)

(* Float-API wrapper kept for callers off the serve path. *)
let compute_scaled eng ~alpha req base =
  compute_scaled_fp eng ~alpha_fp:(alpha_fp alpha) req base
