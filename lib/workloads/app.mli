(** Common shape of a Parcae-enhanced application (the paper's Table 8.2):
    the external work queue, the registered parallelization schemes,
    pause/reset callbacks for the flush protocol, metrics, and the hooks
    the Chapter 6 mechanisms need. *)

type t = {
  name : string;
  eng : Parcae_platform.Engine.t;
  queue : Request.t Parcae_core.Pipeline.msg Parcae_platform.Chan.t;
  schemes : Parcae_core.Task.par_descriptor list;
  on_pause : unit -> unit;
  on_reset : unit -> unit;
  metrics : Metrics.t;
  wq_load : unit -> float;  (** work-queue occupancy *)
  inner_dop_config : (int -> Parcae_core.Config.t) option;
      (** two-level servers: map an inner DoP (1 = inner parallelism off)
          to a full configuration under the platform budget *)
  per_task_loads : (unit -> float) option array;
      (** flat pipelines: per-task input-queue loads *)
  fused_choice : int option;  (** scheme index with collapsed stages *)
  dpmax : int;  (** DoP beyond which parallel efficiency drops below 0.5 *)
  configs : (string * Parcae_core.Config.t) list;  (** named static configs *)
  default_config : Parcae_core.Config.t;
  seq_request_ns : int;  (** nominal sequential per-request work *)
}

val config : t -> string -> Parcae_core.Config.t
(** Named static configuration lookup.
    @raise Invalid_argument if absent (the message lists the names). *)

val oversub_factor : Parcae_platform.Engine.t -> alpha:float -> float
(** Oversubscription penalty: when the process keeps many more threads
    alive than there are cores, context-switch churn and cache pollution
    inflate each thread's work (what makes "Pthreads-OS" unprofitable for
    memory-bound dedup but still profitable for ferret, Table 8.5).
    [alpha] is the per-app sensitivity; 1.0 when not oversubscribed. *)

val alpha_fp : float -> int
(** [alpha] in 16.16 fixed point, for {!compute_scaled_fp}.  Stage
    factories convert once and close over the result. *)

val compute_scaled_fp : Parcae_platform.Engine.t -> alpha_fp:int -> Request.t -> int -> unit
(** Compute [base] ns inflated by the request scale and the current
    oversubscription factor, entirely in integer fixed point — the
    allocation-free form the serve path uses. *)

val compute_scaled : Parcae_platform.Engine.t -> alpha:float -> Request.t -> int -> unit
(** Compute [base] ns inflated by the request scale and the current
    oversubscription factor.  Float wrapper over {!compute_scaled_fp}. *)
