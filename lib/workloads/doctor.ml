(* The scheduler doctor — `parcae_demo doctor`.

   A DoP sweep over a synthetic three-stage pipeline with the whole
   observatory attached, followed by rule-based diagnosis of the scaling
   curve.  The pipeline is produce | transform^DoP | consume with the
   consumer at a quarter of the transform cost, so its speedup bound is
   closed-form: with [n] items, transform cost [w] and consumer cost [c],
   total work is [n*(w+c)] and the critical path is ~[w + n*c] (the first
   item's transform, then the serial consumer chain).  The measured
   critical path from the trace should land on that analytic answer —
   which is how the doctor's own instruments are validated in the test
   suite. *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Machine = Parcae_sim.Machine
module Timeline = Parcae_obs.Timeline
module Critpath = Parcae_obs.Critpath
module Runtime_ev = Parcae_obs.Runtime_ev
module Trace = Parcae_obs.Trace
module Sink = Parcae_obs.Sink
module Json = Parcae_obs.Json
module Table = Parcae_util.Table

type backend = [ `Sim of Machine.t | `Native of int option ]

type dop_result = {
  dop : int;
  wall_ns : int;
  speedup : float;
  crit : Critpath.report;
  lanes : Timeline.lane_breakdown array;
  merged : (Timeline.state * float) list;
  steals : int;
  steal_attempts : int;
  span_drops : int;
  gc : Runtime_ev.stats option;
}

type finding = { code : string; severity : string; message : string }

type report = {
  backend_name : string;
  host_domains : int;
  requested_domains : int;
  spawned_domains : int;
  items : int;
  work_ns : int;
  sink_ns : int;
  results : dop_result list;
  findings : finding list;
  leaked_cursors : int;
}

(* One measured run: fresh engine, fresh timeline and trace sink, GC
   consumer on native.  Sentinel [-1] items stop the transforms; the
   consumer counts items, so the engine drains without a control plane. *)
let run_one ~backend ~items ~work_ns ~sink_ns ~pool dop =
  let eng =
    match backend with
    | `Sim m -> Engine.create m
    | `Native _ -> Engine.create_native ~pool ()
  in
  let lanes = max 1 (Engine.machine eng).Machine.cores in
  let tl = Timeline.create ~lanes ~now:(Engine.time eng) () in
  let sink = Sink.create ~capacity:65_536 () in
  Timeline.with_timeline tl @@ fun () ->
  Trace.with_sink sink @@ fun () ->
  let re = if Engine.is_native eng then Some (Runtime_ev.start ()) else None in
  let ch_in = Chan.create ~capacity:(4 * dop) eng "doctor-in" in
  let ch_out = Chan.create ~capacity:(4 * dop) eng "doctor-out" in
  let t0 = Engine.time eng in
  ignore
    (Engine.spawn eng ~name:"produce" (fun () ->
         for i = 1 to items do
           Chan.send ch_in i
         done;
         for _ = 1 to dop do
           Chan.send ch_in (-1)
         done));
  for k = 1 to dop do
    ignore
      (Engine.spawn eng ~name:(Printf.sprintf "transform-%d" k) (fun () ->
           let rec loop () =
             if Chan.recv ch_in >= 0 then begin
               Engine.compute work_ns;
               Chan.send ch_out ();
               loop ()
             end
           in
           loop ()))
  done;
  ignore
    (Engine.spawn eng ~name:"consume" (fun () ->
         for _ = 1 to items do
           Chan.recv ch_out;
           Engine.compute sink_ns
         done));
  ignore (Engine.run eng);
  let wall_ns = max 1 (Engine.time eng - t0) in
  (* [stop] performs the final poll before freeing the cursor. *)
  Option.iter Runtime_ev.stop re;
  let lanes_bd = Timeline.breakdown tl ~until:(Engine.time eng) in
  let crit = Critpath.analyze (Sink.events sink) in
  let steals, steal_attempts =
    match Engine.native_engine eng with
    | Some ne ->
        (Parcae_native.Engine.steal_count ne, Parcae_native.Engine.steal_attempt_count ne)
    | None -> (0, 0)
  in
  Engine.shutdown eng;
  let span_drops = ref 0 in
  Array.iteri (fun i _ -> span_drops := !span_drops + Timeline.span_drops tl ~lane:i) lanes_bd;
  {
    dop;
    wall_ns;
    speedup = float_of_int crit.Critpath.total_work_ns /. float_of_int wall_ns;
    crit;
    lanes = lanes_bd;
    merged = Timeline.merged_shares lanes_bd;
    steals;
    steal_attempts;
    span_drops = !span_drops;
    gc = Option.map Runtime_ev.stats re;
  }

let share merged st = try List.assoc st merged with Not_found -> 0.0
let pct f = 100.0 *. f

(* ------------------------------------------------------------------ *)
(* Diagnosis rules.  Stable codes so tests and CI can assert on them.  *)
(* ------------------------------------------------------------------ *)

let diagnose r =
  let fs = ref [] in
  let addf code severity fmt =
    Printf.ksprintf (fun message -> fs := { code; severity; message } :: !fs) fmt
  in
  let last = List.nth r.results (List.length r.results - 1) in
  let first = List.hd r.results in
  (* D101: the platform cannot host the parallelism the sweep asked for —
     the usual reason a native scaling curve is flat on a small host. *)
  if r.backend_name = "native" && r.spawned_domains < r.requested_domains then
    addf "D101" "error"
      "spawned_domains shortfall: %d domain(s) for %d requested (host recommends %d) — \
       DoP beyond %d adds no parallelism on this host"
      r.spawned_domains r.requested_domains r.host_domains r.spawned_domains;
  (* D100: the headline symptom, when the sweep has a curve to look at. *)
  if List.length r.results > 1 && last.speedup < 1.2 *. first.speedup then
    addf "D100" "warn" "flat scaling: %.2fx at DoP %d vs %.2fx at DoP %d" last.speedup
      last.dop first.speedup first.dop;
  (* D102: stealing mostly finds empty deques.  Informational — with a few
     coarse stages per domain that is the expected steady state. *)
  if last.steal_attempts > 100 then begin
    let fail =
      1.0 -. (float_of_int last.steals /. float_of_int last.steal_attempts)
    in
    if fail > 0.9 then
      addf "D102" "info"
        "steal failure rate %.0f%% (%d hits in %d sweeps): deques are mostly empty — \
         stages are coarse relative to the pool"
        (pct fail) last.steals last.steal_attempts
  end;
  (* D103: the lanes are mostly idle. *)
  let park = share last.merged Timeline.Park
  and search = share last.merged Timeline.Steal_search in
  if park +. search > 0.5 then
    addf "D103" "warn"
      "idle-dominated: park %.0f%% + steal-search %.0f%% of wall at DoP %d — not enough \
       runnable work per lane"
      (pct park) (pct search) last.dop;
  (* D104: GC pressure concentrated on a lane. *)
  Array.iter
    (fun (lb : Timeline.lane_breakdown) ->
      let g = lb.Timeline.shares.(Timeline.state_index Timeline.Gc) in
      if g > 0.10 then
        addf "D104" "warn" "GC %.0f%% of wall on domain %d" (pct g) lb.Timeline.lane)
    last.lanes;
  (* D105: the DAG itself caps speedup below the requested DoP. *)
  if last.crit.Critpath.bound < 0.7 *. float_of_int last.dop then
    addf "D105" "info"
      "critical-path bound %.2fx < DoP %d — the pipeline is depth-limited%s"
      last.crit.Critpath.bound last.dop
      (match Critpath.bottleneck last.crit with
      | Some name -> Printf.sprintf " (dominant path task: %s)" name
      | None -> "");
  (* D106: measured speedup sits on the bound — the scheduler is fine. *)
  if last.speedup >= 0.9 *. last.crit.Critpath.bound then
    addf "D106" "info"
      "measured %.2fx is at the critical-path bound %.2fx — the scheduler is not the \
       limiter"
      last.speedup last.crit.Critpath.bound;
  (* D108: time goes to waiting on channels rather than computing. *)
  let cw = share last.merged Timeline.Chan_wait in
  if cw > 0.3 then
    addf "D108" "warn" "channel-bound: %.0f%% of wall blocked on channels at DoP %d"
      (pct cw) last.dop;
  (* D107: an instrument leaked — the observatory must clean up after itself. *)
  if r.leaked_cursors > 0 then
    addf "D107" "error" "%d Runtime_events cursor(s) not freed on shutdown"
      r.leaked_cursors;
  List.rev !fs

let run ?(items = 240) ?(work_ns = 1_500_000) ?dops ~backend () =
  if items < 1 then invalid_arg "Doctor.run: items must be >= 1";
  if work_ns < 4 then invalid_arg "Doctor.run: work_ns must be >= 4";
  let dops =
    match dops with
    | Some (_ :: _ as l) ->
        if List.exists (fun d -> d < 1) l then invalid_arg "Doctor.run: DoPs must be >= 1";
        List.sort_uniq compare l
    | _ -> [ 1; 2; 4; 8 ]
  in
  let max_dop = List.fold_left max 1 dops in
  let sink_ns = max 1 (work_ns / 4) in
  let host_domains =
    match backend with
    | `Sim m -> m.Machine.cores
    | `Native _ -> Domain.recommended_domain_count ()
  in
  (* produce + consume + the widest transform stage. *)
  let requested_domains = max_dop + 2 in
  let pool =
    match backend with
    | `Native (Some p) -> p
    | _ -> max 1 (min requested_domains host_domains)
  in
  let results = List.map (run_one ~backend ~items ~work_ns ~sink_ns ~pool) dops in
  let r =
    {
      backend_name = (match backend with `Sim _ -> "sim" | `Native _ -> "native");
      host_domains;
      requested_domains;
      spawned_domains =
        (match backend with `Sim m -> m.Machine.cores | `Native _ -> pool);
      items;
      work_ns;
      sink_ns;
      results;
      findings = [];
      leaked_cursors = Runtime_ev.live_cursors ();
    }
  in
  { r with findings = diagnose r }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "doctor: %s backend, %d item(s), transform %.2f ms, consume %.2f ms\n"
    r.backend_name r.items
    (float_of_int r.work_ns *. 1e-6)
    (float_of_int r.sink_ns *. 1e-6);
  Printf.bprintf buf "domains: %d spawned / %d requested (host %d)\n\n" r.spawned_domains
    r.requested_domains r.host_domains;
  let sweep =
    Table.create ~title:"DoP sweep"
      ~header:
        [ "dop"; "wall(ms)"; "speedup"; "bound"; "run%"; "idle%"; "chan%"; "gc%"; "steals" ]
  in
  List.iter
    (fun d ->
      let idle =
        share d.merged Timeline.Park +. share d.merged Timeline.Steal_search
      in
      Table.add_row sweep
        [
          string_of_int d.dop;
          Printf.sprintf "%.2f" (float_of_int d.wall_ns *. 1e-6);
          Printf.sprintf "%.2f" d.speedup;
          Printf.sprintf "%.2f" d.crit.Critpath.bound;
          Printf.sprintf "%.1f" (pct (share d.merged Timeline.Run));
          Printf.sprintf "%.1f" (pct idle);
          Printf.sprintf "%.1f" (pct (share d.merged Timeline.Chan_wait));
          Printf.sprintf "%.1f" (pct (share d.merged Timeline.Gc));
          string_of_int d.steals;
        ])
    r.results;
  Buffer.add_string buf (Table.render sweep);
  Buffer.add_char buf '\n';
  (match List.rev r.results with
  | last :: _ ->
      let per_lane =
        Table.create
          ~title:(Printf.sprintf "lane breakdown at DoP %d" last.dop)
          ~header:("lane" :: List.map Timeline.state_name Timeline.all_states)
      in
      Array.iter
        (fun (lb : Timeline.lane_breakdown) ->
          Table.add_row per_lane
            (string_of_int lb.Timeline.lane
            :: List.map
                 (fun st ->
                   Printf.sprintf "%.1f%%"
                     (pct lb.Timeline.shares.(Timeline.state_index st)))
                 Timeline.all_states))
        last.lanes;
      Buffer.add_string buf (Table.render per_lane);
      Buffer.add_char buf '\n'
  | [] -> ());
  if r.findings = [] then Buffer.add_string buf "diagnosis: nothing to report\n"
  else begin
    Buffer.add_string buf "diagnosis:\n";
    List.iter
      (fun f -> Printf.bprintf buf "  [%s] %-5s %s\n" f.code f.severity f.message)
      r.findings
  end;
  Buffer.contents buf

let gc_to_json = function
  | None -> Json.Null
  | Some (s : Runtime_ev.stats) ->
      Json.Obj
        [
          ("minor_pauses", Json.Int s.Runtime_ev.minor_pauses);
          ("major_pauses", Json.Int s.Runtime_ev.major_pauses);
          ("pause_ns", Json.Int s.Runtime_ev.pause_ns);
          ("unattributed_ns", Json.Int s.Runtime_ev.unattributed_ns);
          ("events", Json.Int s.Runtime_ev.events);
        ]

let dop_result_to_json d =
  Json.Obj
    [
      ("dop", Json.Int d.dop);
      ("wall_ns", Json.Int d.wall_ns);
      ("speedup", Json.Float d.speedup);
      ("critpath", Critpath.report_to_json d.crit);
      ("timeline", Timeline.breakdown_to_json d.lanes);
      ("steals", Json.Int d.steals);
      ("steal_attempts", Json.Int d.steal_attempts);
      ("span_drops", Json.Int d.span_drops);
      ("gc", gc_to_json d.gc);
    ]

let finding_to_json f =
  Json.Obj
    [
      ("code", Json.Str f.code);
      ("severity", Json.Str f.severity);
      ("message", Json.Str f.message);
    ]

let report_to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("backend", Json.Str r.backend_name);
      ("host_domains", Json.Int r.host_domains);
      ("requested_domains", Json.Int r.requested_domains);
      ("spawned_domains", Json.Int r.spawned_domains);
      ("items", Json.Int r.items);
      ("work_ns", Json.Int r.work_ns);
      ("sink_ns", Json.Int r.sink_ns);
      ("results", Json.List (List.map dop_result_to_json r.results));
      ("findings", Json.List (List.map finding_to_json r.findings));
      ("runtime_events", Json.Obj [ ("leaked_cursors", Json.Int r.leaked_cursors) ]);
    ]
