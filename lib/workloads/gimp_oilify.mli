(** gimp: image editing with the oilify plugin (Table 8.2; Figure 8.4):
    outer DOALL over edit requests, inner DOALL over tile chunks with
    little serial work. *)

val tiles : int
val tile_ns : int
val serial_ns : int
val dpmax : int
val kind : Two_level.inner_kind
val make : ?budget:int -> Parcae_platform.Engine.t -> App.t
val static_outer_name : string
val static_inner_name : string
