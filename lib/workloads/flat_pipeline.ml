(* Builder for single-level pipeline servers (ferret, dedup — Figure 6.2).

   The first (sequential) stage pulls requests off the external work queue;
   middle stages are parallel; the last (sequential) stage completes the
   request.  Two schemes are registered:

   - choice 0: the full pipeline, one task per stage;
   - choice 1: the fused pipeline, with all parallel stages collapsed into a
     single parallel task (Figure 6.2(b)) — the task-fusion alternative the
     TBF mechanism switches to when stage throughputs are badly unbalanced.

   Fusion eliminates the inter-stage channel hops, which is precisely its
   benefit over FDP's time-multiplexed emulation (Section 6.3.2). *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Task_status = Parcae_core.Task_status
module Pipeline = Parcae_core.Pipeline

type stage_spec = {
  s_name : string;
  s_cost : int;  (* per-request ns *)
  s_par : bool;
}

let spec ~name ~cost ~par = { s_name = name; s_cost = cost; s_par = par }

(* Build the app.  [stages] must start and end with sequential stages. *)
let make ?(alpha = 0.05) ?(dpmax = 24) ~name ~stages ~budget eng =
  let specs = Array.of_list stages in
  let n = Array.length specs in
  if n < 3 then invalid_arg "Flat_pipeline.make: need at least 3 stages";
  if specs.(0).s_par || specs.(n - 1).s_par then
    invalid_arg "Flat_pipeline.make: first and last stages must be sequential";
  let queue = Chan.create eng "work-queue" in
  let metrics = Metrics.create eng in
  (* Alpha converted to fixed point once; every stage burst then runs
     all-integer (App.compute_scaled_fp). *)
  let alpha_fp = App.alpha_fp alpha in
  let work req cost = App.compute_scaled_fp eng ~alpha_fp req cost in
  (* Every drain stage stamps the request's span: item -> span projection
     plus a non-allocating clock read (Engine.time, not the ambient-now
     effect), so per-stage compute and inter-stage waits are attributed
     whenever a collector is installed (DESIGN.md section 15). *)
  let span_of (r : Request.t) = r.Request.span in
  let span_clock () = Engine.time eng in

  (* ---- Scheme 0: the full pipeline. ----

     Every stage is a batch drain (DESIGN.md section 14): one recv_batch
     claims what is queued, one send_batch forwards the same message
     cells downstream, and the tail frees each completed request back to
     the pool — the steady-state request flow allocates nothing. *)
  let q = Array.init (n - 1) (fun i -> Chan.create ~capacity:8 eng (Printf.sprintf "q%d" i)) in
  let head =
    Pipeline.drain_stage ~poll:true ~ttype:Task.Seq ~name:specs.(0).s_name ~input:queue
      ~load:(Pipeline.load queue)
      ~next:q.(0)
      ~span_of ~span_clock
      ~forward:(Pipeline.forward_to q.(0))
      (fun _ctx req ->
        Request.note_start req ~now:(Engine.time eng);
        work req specs.(0).s_cost;
        Task_status.Iterating)
  in
  let middles =
    List.init (n - 2) (fun s ->
        let i = s + 1 in
        Pipeline.drain_stage
          ~ttype:(if specs.(i).s_par then Task.Par else Task.Seq)
          ~name:specs.(i).s_name ~input:q.(i - 1)
          ~load:(Pipeline.load q.(i - 1))
          ~next:q.(i)
          ~span_of ~span_clock
          ~forward:(Pipeline.forward_to q.(i))
          (fun ctx req ->
            ctx.Task.hook_begin ();
            work req specs.(i).s_cost;
            ctx.Task.hook_end ();
            Task_status.Iterating))
  in
  let tail =
    Pipeline.drain_stage ~ttype:Task.Seq ~name:specs.(n - 1).s_name ~input:q.(n - 2)
      ~load:(Pipeline.load q.(n - 2))
      ~span_of ~span_clock
      ~forward:(fun _ -> ())
      (fun _ctx req ->
        work req specs.(n - 1).s_cost;
        Metrics.note_complete metrics req;
        Request.free req;
        Task_status.Iterating)
  in
  let pipe_stages = (head :: middles) @ [ tail ] in
  let pipe_pd =
    Task.descriptor ~name:(name ^ "-pipe") (List.map (fun s -> s.Pipeline.task) pipe_stages)
  in

  (* ---- Scheme 1: parallel stages fused into one task. ---- *)
  let fq0 = Chan.create ~capacity:8 eng "fq0" and fq1 = Chan.create ~capacity:8 eng "fq1" in
  let fused_cost =
    Array.to_list specs |> List.filteri (fun i _ -> i > 0 && i < n - 1)
    |> List.fold_left (fun acc s -> acc + s.s_cost) 0
  in
  let fhead =
    Pipeline.drain_stage ~poll:true ~ttype:Task.Seq ~name:(specs.(0).s_name ^ "-f")
      ~input:queue
      ~load:(Pipeline.load queue)
      ~next:fq0
      ~span_of ~span_clock
      ~forward:(Pipeline.forward_to fq0)
      (fun _ctx req ->
        Request.note_start req ~now:(Engine.time eng);
        work req specs.(0).s_cost;
        Task_status.Iterating)
  in
  let fmid =
    Pipeline.drain_stage ~ttype:Task.Par ~name:"combined" ~input:fq0
      ~load:(Pipeline.load fq0) ~next:fq1
      ~span_of ~span_clock
      ~forward:(Pipeline.forward_to fq1)
      (fun ctx req ->
        ctx.Task.hook_begin ();
        work req fused_cost;
        ctx.Task.hook_end ();
        Task_status.Iterating)
  in
  let ftail =
    Pipeline.drain_stage ~ttype:Task.Seq ~name:(specs.(n - 1).s_name ^ "-f") ~input:fq1
      ~load:(Pipeline.load fq1)
      ~span_of ~span_clock
      ~forward:(fun _ -> ())
      (fun _ctx req ->
        work req specs.(n - 1).s_cost;
        Metrics.note_complete metrics req;
        Request.free req;
        Task_status.Iterating)
  in
  let fused_pd =
    Task.descriptor ~name:(name ^ "-fused")
      (List.map (fun s -> s.Pipeline.task) [ fhead; fmid; ftail ])
  in

  (* ---- Configurations. ---- *)
  let n_par = Array.length (Array.of_list (List.filter (fun s -> s.s_par) stages)) in
  let seqs = n - n_par in
  let even_share = max 1 (((budget - seqs) + n_par - 1) / max 1 n_par) in
  let cfg_of per_stage =
    Config.make
      (List.map
         (fun s -> if s.s_par then Config.task per_stage else Config.seq_task)
         stages)
  in
  let cfg_even = cfg_of even_share in
  let cfg_oversub = cfg_of budget in
  let cfg_single = cfg_of 1 in
  let cfg_fused =
    { (Config.make [ Config.seq_task; Config.task (max 1 (budget - 2)); Config.seq_task ]) with
      Config.choice = 1
    }
  in
  let loads =
    Array.init n (fun i ->
        if not specs.(i).s_par then None
        else Some (Pipeline.load q.(i - 1)))
  in
  {
    App.name;
    eng;
    queue;
    schemes = [ pipe_pd; fused_pd ];
    on_pause = (fun () -> Pipeline.inject_flush queue);
    on_reset =
      Pipeline.make_reset
        ~stages:(pipe_stages @ [ fhead; fmid; ftail ])
        ~channels:((queue :: Array.to_list q) @ [ fq0; fq1 ]);
    metrics;
    wq_load = Pipeline.load queue;
    inner_dop_config = None;
    per_task_loads = loads;
    fused_choice = Some 1;
    dpmax;
    configs =
      [
        ("even", cfg_even);
        ("oversubscribed", cfg_oversub);
        ("single", cfg_single);
        ("fused", cfg_fused);
      ];
    default_config = cfg_even;
    seq_request_ns = Array.fold_left (fun acc s -> acc + s.s_cost) 0 specs;
  }
