(** A unit of server work: one video to transcode, one query to answer.
    Carries its arrival time so completion code can compute the end-user
    response time (the paper's Equation 2.1).

    Fields are mutable so records can be recycled through the process-wide
    request pool: {!alloc}/{!free} are the pooled, steady-state
    allocation-free pair the serve path uses; {!create} heap-allocates for
    everyone else. *)

type t = {
  mutable id : int;
  mutable arrival_ns : int;  (** virtual time the request entered the work queue *)
  mutable scale : float;  (** per-request work multiplier, ~1.0 *)
  mutable scale_fp : int;
      (** [scale] in 16.16 fixed point, set at construction: the serve
          path scales stage costs with int arithmetic because reading a
          float field of a mixed record boxes per access *)
  mutable start_ns : int;  (** time processing began; -1 until dequeued *)
  mutable span : Parcae_obs.Span.span;
      (** per-request latency span, re-armed on every traced {!alloc};
          {!Parcae_obs.Span.null} until the record is first handed out
          with a collector installed, so untraced serving never pays for
          span storage.  Stage stamping and completion go through
          {!Parcae_obs.Span} *)
}

val create : id:int -> arrival_ns:int -> scale:float -> t

val alloc : id:int -> arrival_ns:int -> scale:float -> t
(** Like {!create}, but drawn from the request pool — allocation-free once
    the pool is warm. *)

val free : t -> unit
(** Return a request to the pool.  The caller must hold the only live
    reference; the record may be reused for another request immediately. *)

val note_start : t -> now:int -> unit
(** Stamp the moment processing begins (idempotent). *)

val cost : t -> int -> int
(** Scale an integer cost by the request's size factor. *)
