(** Builder for single-level pipeline servers (ferret, dedup — the paper's
    Figure 6.2).  Registers two schemes: choice 0 is the full pipeline
    (one task per stage); choice 1 is the fused pipeline with all parallel
    stages collapsed into one parallel task (Figure 6.2(b)) — what TBF
    switches to on heavy stage imbalance.  Named configs: "even",
    "oversubscribed", "single", "fused". *)

type stage_spec = {
  s_name : string;
  s_cost : int;  (** per-request ns *)
  s_par : bool;
}

val spec : name:string -> cost:int -> par:bool -> stage_spec

val make :
  ?alpha:float ->
  ?dpmax:int ->
  name:string ->
  stages:stage_spec list ->
  budget:int ->
  Parcae_platform.Engine.t ->
  App.t
(** Build the app.  [stages] must start and end with sequential stages.
    @raise Invalid_argument otherwise. *)
