(** The experiment harness behind the paper's Chapter 8 figures and
    tables: max-throughput calibration, Poisson server runs, and batch
    throughput runs with optional throughput/power timelines. *)

type result = {
  mean_response_s : float;
  p95_response_s : float;
  mean_exec_s : float;
  throughput_rps : float;
  completed : int;
  submitted : int;
  energy_j : float;
  sim_end_s : float;
  reconfigurations : int;
  latency_p50_ns : int;
      (** tail-latency ladder from the workload's always-on HDR
          distribution ({!Metrics.latency_quantile_ns}); 0 when no
          request completed *)
  latency_p99_ns : int;
  latency_p999_ns : int;
}

type mech = (App.t -> Parcae_runtime.Morta.mechanism) option
(** A mechanism factory for a concrete app instance; [None] runs the
    launch configuration statically. *)

type backend = [ `Sim | `Native of int option ]
(** Where an experiment executes: the deterministic simulator with the
    [machine] cost model (default), or the native OCaml 5 backend with an
    optional domain-pool size ([machine] then only sizes budgets and
    horizons — the work really runs on domains in real time). *)

val max_throughput :
  ?m:int ->
  ?seed:int ->
  ?backend:backend ->
  machine:Parcae_sim.Machine.t ->
  (budget:int -> Parcae_platform.Engine.t -> App.t) ->
  float
(** The paper's definition of max sustainable throughput: M requests in
    batch, outer loop wide open, inner loops sequential. *)

val max_throughput_flat :
  ?m:int ->
  ?seed:int ->
  ?backend:backend ->
  machine:Parcae_sim.Machine.t ->
  (budget:int -> Parcae_platform.Engine.t -> App.t) ->
  float
(** For flat pipelines (no "outer-only" config): the even static
    distribution is the baseline. *)

val run_server :
  ?m:int ->
  ?seed:int ->
  ?mechanism:(App.t -> Parcae_runtime.Morta.mechanism) ->
  ?period_ns:int ->
  ?on_start:(App.t -> Parcae_runtime.Region.t -> unit) ->
  ?backend:backend ->
  machine:Parcae_sim.Machine.t ->
  rate_per_s:float ->
  config:[ `Named of string | `Config of Parcae_core.Config.t ] ->
  (budget:int -> Parcae_platform.Engine.t -> App.t) ->
  result
(** [m] Poisson arrivals at [rate_per_s] under the given initial
    configuration and optional mechanism (invoked every [period_ns],
    default 500 ms).  [on_start] runs after the region is launched but
    before the engine does — the hook the dashboard and mid-run metric
    samplers use to reach the live region. *)

val run_batch :
  ?m:int ->
  ?seed:int ->
  ?mechanism:(App.t -> Parcae_runtime.Morta.mechanism) ->
  ?period_ns:int ->
  ?sample_ns:int ->
  ?power_sensor_period:int ->
  ?on_start:(App.t -> Parcae_runtime.Region.t -> unit) ->
  ?backend:backend ->
  machine:Parcae_sim.Machine.t ->
  config:[ `Named of string | `Config of Parcae_core.Config.t ] ->
  (budget:int -> Parcae_platform.Engine.t -> App.t) ->
  result * Parcae_util.Series.t * Parcae_util.Series.t
(** Batch (throughput) run; when [sample_ns] is given, returns throughput
    and power timelines sampled at that period. *)
