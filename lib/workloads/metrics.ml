(* Response-time and throughput bookkeeping for the server workloads.

   Samples are held in bounded reservoirs (Stats.Reservoir), so a long
   [serve] run uses O(capacity) memory instead of growing a list per
   request: means stay exact (running sums), percentiles are exact until
   the reservoir overflows and a uniform-sample estimate after.  When a
   metrics registry is installed the same observations also feed the
   [parcae_request_*] counter and histogram families, which is what the
   live dashboard and the Prometheus exposition read. *)

module Engine = Parcae_platform.Engine
module Series = Parcae_util.Series
module Stats = Parcae_util.Stats
module Obs = Parcae_obs.Metrics
module Hdr = Parcae_obs.Hdr
module Span = Parcae_obs.Span

type req_metrics = {
  rm_submitted : Obs.counter;
  rm_completed : Obs.counter;
  rm_response : Obs.histogram;
  rm_exec : Obs.histogram;
}

type t = {
  eng : Engine.t;
  responses : Stats.Reservoir.t;  (* seconds, arrival to completion *)
  exec_times : Stats.Reservoir.t;  (* seconds of processing (no queue wait) *)
  mutable completed : int;
  mutable submitted : int;
  mutable first_completion_ns : int;
  mutable last_completion_ns : int;
  throughput_series : Series.t;  (* optional live samples *)
  lat_hdr : Hdr.t;
      (* always-on end-to-end latency distribution, integer ns: latency
         quantiles on the serve path come from here (bounded relative
         error, deterministic), not from the response reservoir, whose
         percentile estimate depends on the sampling seed once it
         overflows.  Reservoirs stay for means and workload-internal
         stats (DESIGN.md section 15). *)
  mutable mx : (Obs.t * req_metrics) option;
}

let default_reservoir_capacity = Stats.Reservoir.default_capacity

let create ?(reservoir_capacity = default_reservoir_capacity) eng =
  {
    eng;
    responses = Stats.Reservoir.create ~capacity:reservoir_capacity ();
    exec_times = Stats.Reservoir.create ~capacity:reservoir_capacity ();
    completed = 0;
    submitted = 0;
    first_completion_ns = -1;
    last_completion_ns = -1;
    throughput_series = Series.create "completions";
    lat_hdr = Hdr.create ();
    mx = None;
  }

(* Rewind to a fresh state without reallocating: the reservoirs keep their
   sample buffers, so repeated batch runs (max-throughput searches, the
   allocation bench) reuse one [t] instead of growing garbage per run.
   Registry counters are cumulative by design and are left alone. *)
let reset t =
  Stats.Reservoir.reset t.responses;
  Stats.Reservoir.reset t.exec_times;
  t.completed <- 0;
  t.submitted <- 0;
  t.first_completion_ns <- -1;
  t.last_completion_ns <- -1;
  Hdr.clear t.lat_hdr

let handles t =
  let reg = Obs.current () in
  match t.mx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let h =
        {
          rm_submitted =
            Obs.counter reg "parcae_requests_submitted_total"
              ~help:"Requests submitted to the server workload.";
          rm_completed =
            Obs.counter reg "parcae_requests_completed_total"
              ~help:"Requests completed by the server workload.";
          rm_response =
            Obs.histogram reg "parcae_response_seconds" ~buckets:Obs.seconds_buckets
              ~help:"Request response time, arrival to completion.";
          rm_exec =
            Obs.histogram reg "parcae_exec_seconds" ~buckets:Obs.seconds_buckets
              ~help:"Request execution time, processing only (no queue wait).";
        }
      in
      t.mx <- Some (reg, h);
      h

let submitted t = t.submitted
let completed t = t.completed

let note_submit t =
  t.submitted <- t.submitted + 1;
  if Obs.enabled () then Obs.inc (handles t).rm_submitted

(* Record the completion of [req] at the current virtual time. *)
let note_complete t (req : Request.t) =
  let now = Engine.time t.eng in
  (* Close the request's span first so the completion stamp matches the
     latency observed below; publishes to the installed span collector
     (no-op without one). *)
  if Span.enabled () then Span.finish req.Request.span ~now;
  let lat_ns = now - req.Request.arrival_ns in
  Hdr.observe t.lat_hdr lat_ns;
  let resp = Engine.seconds_of_ns lat_ns in
  Stats.Reservoir.observe t.responses resp;
  let started = req.Request.start_ns >= 0 in
  if started then
    Stats.Reservoir.observe t.exec_times (Engine.seconds_of_ns (now - req.Request.start_ns));
  t.completed <- t.completed + 1;
  if t.first_completion_ns < 0 then t.first_completion_ns <- now;
  t.last_completion_ns <- now;
  if Obs.enabled () then begin
    let h = handles t in
    Obs.inc h.rm_completed;
    Obs.observe h.rm_response resp;
    if started then
      Obs.observe h.rm_exec (Engine.seconds_of_ns (now - req.Request.start_ns))
  end

let responses t = Stats.Reservoir.samples t.responses
let exec_times t = Stats.Reservoir.samples t.exec_times

(* Mean per-request execution time (T_exec of Equation 2.1).  Exact: the
   reservoir keeps running sums over every observation. *)
let mean_exec t =
  if Stats.Reservoir.count t.exec_times = 0 then nan else Stats.Reservoir.mean t.exec_times

let mean_response t =
  if Stats.Reservoir.count t.responses = 0 then nan else Stats.Reservoir.mean t.responses

(* Latency quantiles read the HDR distribution: deterministic and exact
   to the configured relative error over every completion, where the
   reservoir percentile becomes a seed-dependent estimate after
   overflow. *)
let latency_quantile_ns t q = Hdr.quantile t.lat_hdr q

let response_quantile t q =
  if Hdr.count t.lat_hdr = 0 then nan
  else Engine.seconds_of_ns (Hdr.quantile t.lat_hdr q)

let p95_response t = response_quantile t 0.95

(* Sustained completion throughput in requests/second, measured from first
   to last completion (robust to warm-up). *)
let throughput t =
  if t.completed < 2 then 0.0
  else begin
    let span = t.last_completion_ns - t.first_completion_ns in
    if span <= 0 then 0.0
    else float_of_int (t.completed - 1) /. Engine.seconds_of_ns span
  end

let throughput_series t = t.throughput_series

let sample_throughput t ~window_completed ~window_ns =
  if window_ns > 0 then
    Series.add t.throughput_series
      ~time:(Engine.seconds_of_ns (Engine.time t.eng))
      ~value:(float_of_int window_completed /. Engine.seconds_of_ns window_ns)
