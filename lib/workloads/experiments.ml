(* The experiment harness behind Chapter 8's figures and tables.

   Every experiment follows the paper's methodology (Section 8):
   - The maximum sustainable throughput of an application is measured by
     running M requests in parallel across the outer loop with each request
     processed sequentially; load factor x then means a Poisson arrival rate
     of x times that maximum.
   - Server experiments attach a request generator to the work queue, run
     the region under a mechanism (or a static configuration), and report
     mean response time, throughput, execution time, and energy.
   - Batch experiments pre-fill the queue and measure sustained throughput,
     optionally sampling throughput/power timelines. *)

module Engine = Parcae_platform.Engine
module Machine = Parcae_sim.Machine

(* Which backend an experiment runs on: the deterministic simulator with
   [machine]'s cost model (the default; every figure and table in the repo
   is produced here), or the native multicore backend, where [machine]
   only sets budgets and the work really executes on OCaml 5 domains. *)
type backend = [ `Sim | `Native of int option ]
module Power = Parcae_sim.Power
module Series = Parcae_util.Series
module Rng = Parcae_util.Rng
module Config = Parcae_core.Config
module Region = Parcae_runtime.Region
module Executor = Parcae_runtime.Executor
module Morta = Parcae_runtime.Morta

type result = {
  mean_response_s : float;
  p95_response_s : float;
  mean_exec_s : float;
  throughput_rps : float;  (* completed requests per second *)
  completed : int;
  submitted : int;
  energy_j : float;
  sim_end_s : float;
  reconfigurations : int;
  latency_p50_ns : int;  (* HDR tail-latency ladder (Metrics.latency_quantile_ns) *)
  latency_p99_ns : int;
  latency_p999_ns : int;
}

let result_of app region =
  let m = app.App.metrics in
  {
    mean_response_s = Metrics.mean_response m;
    p95_response_s = Metrics.p95_response m;
    mean_exec_s = Metrics.mean_exec m;
    latency_p50_ns = Metrics.latency_quantile_ns m 0.5;
    latency_p99_ns = Metrics.latency_quantile_ns m 0.99;
    latency_p999_ns = Metrics.latency_quantile_ns m 0.999;
    throughput_rps = Metrics.throughput m;
    completed = Metrics.completed m;
    submitted = Metrics.submitted m;
    energy_j = Engine.energy_joules app.App.eng;
    sim_end_s = Engine.seconds_of_ns (Engine.time app.App.eng);
    reconfigurations = Region.reconfig_count region;
  }

(* A mechanism factory: builds the policy for a concrete app instance and
   its region budget.  [None] runs the launch configuration statically. *)
type mech = (App.t -> Morta.mechanism) option

let make_engine ?(backend = `Sim) machine =
  match backend with
  | `Sim -> Engine.create machine
  | `Native pool -> Engine.create_native ?pool ()

(* The thread budget an engine offers: the simulated machine's cores, or
   at least 4 on native so tiny domain pools still exercise parallel
   configurations (systhreads multiplex fine beyond the pool). *)
let engine_budget eng (machine : Machine.t) =
  if Engine.is_native eng then max 4 (Engine.online_cores eng) else machine.Machine.cores

(* Launch [app]'s region, attach the generator given by [feed], optionally
   attach a Morta executive, and run to completion (bounded by
   [horizon_ns]). *)
let run_app ~horizon_ns ~config ?mechanism ?(period_ns = 100_000_000) ?on_start ~feed
    ~budget app =
  let eng = app.App.eng in
  let region =
    Executor.launch ~budget ~name:app.App.name eng app.App.schemes config
      ~on_pause:app.App.on_pause ~on_reset:app.App.on_reset
  in
  (match on_start with None -> () | Some f -> f app region);
  feed app;
  (match mechanism with
  | None -> ()
  | Some f ->
      let m = f app in
      let stop () = Region.is_done region in
      ignore (Morta.spawn ~stop ~period_ns ~mechanism:m eng region));
  ignore (Engine.run ~until:horizon_ns eng);
  (app, region)

(* Measure the maximum sustainable throughput (requests/s) of the
   application: M requests in batch, outer loop wide open, inner loops
   sequential — exactly the paper's definition of max throughput. *)
let max_throughput ?(m = 300) ?(seed = 17) ?backend ~machine make_app =
  let eng = make_engine ?backend machine in
  let budget = engine_budget eng machine in
  let app : App.t = make_app ~budget eng in
  let rng = Rng.create seed in
  ignore
    (Load_gen.spawn_batch ~rng ~m ~queue:app.App.queue ~metrics:app.App.metrics eng);
  let horizon_ns =
    (* Generous: m requests, fully serialized, 4x slack. *)
    m * app.App.seq_request_ns / budget * 8 + 2_000_000_000
  in
  let app, _region =
    run_app ~horizon_ns ~config:(App.config app "outer-only") ~feed:(fun _ -> ())
      ~budget app
  in
  Engine.shutdown eng;
  Metrics.throughput app.App.metrics

(* For flat pipelines the "outer-only" config doesn't exist; their max
   throughput baseline is the even static distribution. *)
let max_throughput_flat ?(m = 300) ?(seed = 17) ?backend ~machine make_app =
  let eng = make_engine ?backend machine in
  let budget = engine_budget eng machine in
  let app : App.t = make_app ~budget eng in
  let rng = Rng.create seed in
  ignore
    (Load_gen.spawn_batch ~rng ~m ~queue:app.App.queue ~metrics:app.App.metrics eng);
  let horizon_ns = (m * app.App.seq_request_ns) + 10_000_000_000 in
  let app, _region =
    run_app ~horizon_ns ~config:(App.config app "even") ~feed:(fun _ -> ())
      ~budget app
  in
  Engine.shutdown eng;
  Metrics.throughput app.App.metrics

(* Run a server experiment: [m] Poisson arrivals at [rate_per_s], initial
   configuration [config], optional mechanism. *)
let run_server ?(m = 300) ?(seed = 42) ?mechanism ?(period_ns = 500_000_000) ?on_start
    ?backend ~machine ~rate_per_s ~config make_app =
  let eng = make_engine ?backend machine in
  let budget = engine_budget eng machine in
  let app : App.t = make_app ~budget eng in
  let rng = Rng.create seed in
  let cfg = match config with `Named n -> App.config app n | `Config c -> c in
  let feed (a : App.t) =
    ignore
      (Load_gen.spawn_generator ~rng ~rate_per_s ~m ~queue:a.App.queue
         ~metrics:a.App.metrics eng)
  in
  (* Horizon: arrival span + drain time with 6x slack. *)
  let arrival_span = float_of_int m /. rate_per_s in
  let drain = float_of_int (m * app.App.seq_request_ns) *. 1e-9 /. float_of_int budget in
  let horizon_ns = int_of_float ((arrival_span +. (6.0 *. drain) +. 30.0) *. 1e9) in
  let app, region =
    run_app ~horizon_ns ~config:cfg ?mechanism ~period_ns ?on_start ~feed ~budget app
  in
  Engine.shutdown eng;
  result_of app region

(* Run a batch (throughput) experiment, optionally sampling throughput and
   power timelines every [sample_ns]. *)
let run_batch ?(m = 500) ?(seed = 42) ?mechanism ?period_ns ?sample_ns ?power_sensor_period
    ?on_start ?backend ~machine ~config make_app =
  let eng = make_engine ?backend machine in
  let budget = engine_budget eng machine in
  let app : App.t = make_app ~budget eng in
  let rng = Rng.create seed in
  let cfg = match config with `Named n -> App.config app n | `Config c -> c in
  let throughput_tl = Series.create "throughput" in
  let power_tl = Series.create "power" in
  let feed (a : App.t) =
    ignore (Load_gen.spawn_batch ~rng ~m ~queue:a.App.queue ~metrics:a.App.metrics eng)
  in
  (match sample_ns with
  | None -> ()
  | Some w ->
      let sim_eng =
        match Engine.sim_engine eng with
        | Some e -> e
        | None -> invalid_arg "Experiments.run_batch: power sampling is sim-only"
      in
      let sensor = Power.create ?period_ns:power_sensor_period sim_eng in
      ignore
        (Engine.spawn eng ~name:"sampler" (fun () ->
             let prev = ref 0 in
             let stop = ref false in
             while not !stop do
               Engine.sleep w;
               let c = Metrics.completed app.App.metrics in
               Series.add throughput_tl
                 ~time:(Engine.seconds_of_ns (Engine.time eng))
                 ~value:(float_of_int (c - !prev) /. Engine.seconds_of_ns w);
               Series.add power_tl
                 ~time:(Engine.seconds_of_ns (Engine.time eng))
                 ~value:(Power.read sensor);
               prev := c;
               if c >= m then stop := true
             done)));
  let horizon_ns = (m * app.App.seq_request_ns) + 20_000_000_000 in
  let app, region =
    run_app ~horizon_ns ~config:cfg ?mechanism ?period_ns ?on_start ~feed ~budget app
  in
  Engine.shutdown eng;
  (result_of app region, throughput_tl, power_tl)
