(* Builder for two-level loop-nest servers (Figure 2.3 / Section 5.1).

   The outer loop iterates over user requests pulled from a work queue
   (DOALL across requests); each request can itself be processed in
   parallel, either by a pipeline over its items (x264 frames, bzip blocks)
   or by a DOALL over independent chunks (swaptions simulations, gimp
   tiles).  The configuration space is exactly the paper's
   <C_outer, C_inner> = <(k, DOALL), (l, PIPE | DOALL | SEQ)>: at any
   moment, k outer instances run with l threads each. *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Task_status = Parcae_core.Task_status
module Pipeline = Parcae_core.Pipeline
module Executor = Parcae_runtime.Executor

(* The inner (per-request) parallel structure. *)
type inner_kind =
  | Pipe of { items : int; stage_ns : int array }
      (* a pipeline over [items] work units; [stage_ns] gives per-item cost
         of each stage — first and last stages sequential, middle parallel
         (x264's read / transform / write) *)
  | Doall of { chunks : int; chunk_ns : int; serial_ns : int; beta : float }
      (* independent chunks plus a serial (critical-section) portion per
         chunk — the reduction updates that limit scaling — and a
         communication coefficient [beta] that inflates per-chunk cost by
         (1 + beta * (dop - 1)), modelling the synchronization and
         cross-core traffic that grows with team size (x264's pipeline
         dependencies between frame encoders) *)

let seq_request_ns = function
  | Pipe { items; stage_ns } -> items * Array.fold_left ( + ) 0 stage_ns
  | Doall { chunks; chunk_ns; serial_ns; _ } -> chunks * (chunk_ns + serial_ns)

(* ------------------------------------------------------------------ *)
(* Inner-region execution.                                             *)
(* ------------------------------------------------------------------ *)

(* Build the per-request inner pipeline: source feeds item indices, middle
   stages transform, sink writes.  [stage_ns] must have length >= 2; all
   middle entries form parallel stages. *)
let run_inner_pipe eng ~alpha (req : Request.t) ~items ~stage_ns (cfg : Config.t) =
  let alpha_fp = App.alpha_fp alpha in
  let nstages = Array.length stage_ns in
  let queues = Array.init (nstages - 1) (fun i -> Chan.create ~capacity:4 eng (Printf.sprintf "iq%d" i)) in
  let emitted = ref 0 in
  let head =
    Pipeline.source ~name:"read"
      ~forward:(Pipeline.forward_to queues.(0))
      (fun _ctx ->
        if !emitted >= items then Task_status.Complete
        else begin
          incr emitted;
          App.compute_scaled_fp eng ~alpha_fp req stage_ns.(0);
          Pipeline.send queues.(0) !emitted;
          Task_status.Iterating
        end)
  in
  let middles =
    List.init (nstages - 2) (fun s ->
        let i = s + 1 in
        Pipeline.stage ~name:(Printf.sprintf "stage%d" i) ~input:queues.(i - 1)
          ~forward:(Pipeline.forward_to queues.(i))
          (fun _ctx item ->
            App.compute_scaled_fp eng ~alpha_fp req stage_ns.(i);
            Pipeline.send queues.(i) item;
            Task_status.Iterating))
  in
  let tail =
    Pipeline.stage ~ttype:Task.Seq ~name:"write" ~input:queues.(nstages - 2)
      ~forward:(fun _ -> ())
      (fun _ctx _item ->
        App.compute_scaled_fp eng ~alpha_fp req stage_ns.(nstages - 1);
        Task_status.Iterating)
  in
  let stages = (head :: middles) @ [ tail ] in
  let pd =
    Task.descriptor ~name:"inner-pipe" (List.map (fun s -> s.Pipeline.task) stages)
  in
  Executor.run_subregion eng pd cfg

(* Inner DOALL: workers claim chunks from a shared countdown; each chunk has
   a parallel portion and a serial portion guarded by a lock (the reduction
   update), which is what caps scalability per Amdahl. *)
let run_inner_doall eng ~alpha (req : Request.t) ~chunks ~chunk_ns ~serial_ns ~beta
    (cfg : Config.t) =
  let alpha_fp = App.alpha_fp alpha in
  let remaining = ref chunks in
  let lock = Lock.create eng "reduction" in
  let worker =
    Task.parallel ~name:"chunk" (fun ctx ->
        if !remaining <= 0 then Task_status.Complete
        else begin
          decr remaining;
          (* Communication overhead grows with the team size. *)
          let comm = 1.0 +. (beta *. float_of_int (ctx.Task.dop - 1)) in
          let cost = int_of_float (Float.round (float_of_int chunk_ns *. comm)) in
          App.compute_scaled_fp eng ~alpha_fp req cost;
          if serial_ns > 0 then
            Lock.with_lock lock (fun () -> App.compute_scaled_fp eng ~alpha_fp req serial_ns);
          Task_status.Iterating
        end)
  in
  let pd = Task.descriptor ~name:"inner-doall" [ worker ] in
  Executor.run_subregion eng pd cfg

(* ------------------------------------------------------------------ *)
(* Configuration constructors.                                         *)
(* ------------------------------------------------------------------ *)

(* Inner configuration using [l] threads in total (the paper's inner DoP). *)
let inner_config kind l =
  match kind with
  | Pipe { stage_ns; _ } ->
      let nstages = Array.length stage_ns in
      (* first and last stage sequential; middle stages share l - 2 threads *)
      let mid = max 1 (l - 2) in
      let per_stage = max 1 (mid / max 1 (nstages - 2)) in
      Config.make
        (List.init nstages (fun i ->
             if i = 0 || i = nstages - 1 then Config.seq_task else Config.task per_stage))
  | Doall _ -> Config.make [ Config.task (max 1 l) ]

(* Threads consumed by the inner configuration for DoP [l]. *)
let inner_threads kind l =
  match kind with Pipe _ -> max 3 l | Doall _ -> max 1 l

(* Inner DoPs that tile the budget without waste: l must divide the budget
   (so k * l = budget) and, for pipelines, be at least 3 (two sequential
   stages plus one transform thread).  Requesting an infeasible l snaps
   down to the nearest feasible value. *)
let feasible_inner_dops ~budget kind =
  let min_l = match kind with Pipe _ -> 3 | Doall _ -> 2 in
  let divisors =
    List.filter (fun l -> budget mod l = 0) (List.init budget (fun i -> i + 1))
  in
  1 :: List.filter (fun l -> l >= min_l) divisors

let snap_inner_dop ~budget kind l =
  let feas = feasible_inner_dops ~budget kind in
  List.fold_left (fun best cand -> if cand <= l && cand > best then cand else best) 1 feas

(* Full <(k, DOALL), (l, ...)> configuration under [budget] threads:
   l <= 1 turns inner parallelism off and gives every thread to the outer
   loop.  l is snapped to a feasible value so k * l = budget exactly. *)
let make_config ~budget kind l =
  let l = snap_inner_dop ~budget kind l in
  if l <= 1 then Config.make [ Config.task budget ]
  else begin
    let li = inner_threads kind l in
    let k = max 1 (budget / li) in
    Config.make [ Config.task ~nested:(inner_config kind l) k ]
  end

(* ------------------------------------------------------------------ *)
(* The application.                                                    *)
(* ------------------------------------------------------------------ *)

(* Build a two-level server named [name] with the given inner structure.
   [alpha] is the oversubscription sensitivity; [dpmax] the inner DoP at
   which parallel efficiency falls to ~0.5 (the value WQT-H toggles to). *)
let make ?(alpha = 0.05) ~name ~kind ~dpmax ~budget eng =
  let alpha_fp = App.alpha_fp alpha in
  let queue = Chan.create eng "work-queue" in
  let metrics = Metrics.create eng in
  (* The outer DOALL drains its work queue in small batches: requests are
     heavy (an entire inner region each), so the claim is capped low to
     keep pause latency bounded — [drain_stage]'s mid-claim poll hands
     unprocessed requests back to the queue when a pause lands, where they
     survive the reconfiguration. *)
  let master =
    Pipeline.drain_stage ~poll:true ~max_batch:4 ~name:(name ^ "-outer") ~input:queue
      ~load:(Pipeline.load queue)
      ~span_of:(fun (r : Request.t) -> r.Request.span)
      ~span_clock:(fun () -> Engine.time eng)
      ~forward:(fun _ -> ())
      ~nested:
        [
          Task.nested_choice ~name:"inner"
            ~seq:
              (match kind with
              | Pipe { stage_ns; _ } ->
                  List.init (Array.length stage_ns) (fun i ->
                      i = 0 || i = Array.length stage_ns - 1)
              | Doall _ -> [ false ])
            (fun () -> failwith "two_level: inner descriptor is per-request");
        ]
      (fun ctx req ->
        Request.note_start req ~now:(Engine.time eng);
        ctx.Task.hook_begin ();
        (match (ctx.Task.nested_cfg, kind) with
        | None, _ ->
            (* Inner parallelism off: process the request inline. *)
            App.compute_scaled_fp eng ~alpha_fp req (seq_request_ns kind)
        | Some icfg, Pipe { items; stage_ns } ->
            run_inner_pipe eng ~alpha req ~items ~stage_ns icfg
        | Some icfg, Doall { chunks; chunk_ns; serial_ns; beta } ->
            run_inner_doall eng ~alpha req ~chunks ~chunk_ns ~serial_ns ~beta icfg);
        ctx.Task.hook_end ();
        Metrics.note_complete metrics req;
        Request.free req;
        Task_status.Iterating)
  in
  let pd = Task.descriptor ~name [ master.Pipeline.task ] in
  let mk = make_config ~budget kind in
  let cfg_outer_only = mk 1 in
  let cfg_inner_max = mk dpmax in
  {
    App.name;
    eng;
    queue;
    schemes = [ pd ];
    on_pause = (fun () -> Pipeline.inject_flush queue);
    on_reset = Pipeline.make_reset ~stages:[ master ] ~channels:[ queue ];
    metrics;
    wq_load = Pipeline.load queue;
    inner_dop_config = Some mk;
    per_task_loads = [| Some (Pipeline.load queue) |];
    fused_choice = None;
    dpmax;
    configs =
      [ ("outer-only", cfg_outer_only); ("inner-max", cfg_inner_max) ];
    default_config = cfg_outer_only;
    seq_request_ns = seq_request_ns kind;
  }
