(** Live ASCII dashboard over the metrics registry (`parcae_demo top`).

    {!render} is a pure, deterministic function of a registry snapshot;
    {!spawn} re-renders the installed registry every [interval_ns] of
    {e virtual} time.

    The refresher runs as a simulated thread, so it perturbs the engine's
    live-thread count and anything derived from it (e.g. the
    oversubscription factor): use it for interactive runs, never inside
    determinism tests. *)

val render : ?title:string -> now_s:float -> Parcae_obs.Metrics.t -> string
(** Counter, gauge, and histogram tables (quantiles at bucket resolution);
    a one-line placeholder when the registry holds no series. *)

val spawn :
  ?out:out_channel ->
  ?title:string ->
  ?interval_ns:int ->
  stop:(unit -> bool) ->
  Parcae_platform.Engine.t ->
  Parcae_platform.Engine.thread
(** Spawn the refresher; it polls [stop] after each interval (default 1 s
    of virtual time) and exits when it returns [true].  Forces the
    engine's energy/busy-time accounting up to date before each render.
    @raise Invalid_argument if [interval_ns <= 0]. *)
