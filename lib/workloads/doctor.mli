(** The scheduler doctor: a self-diagnosing DoP sweep.

    [run] executes a fixed three-stage pipeline (sequential producer, DoP
    parallel transforms, sequential consumer at a quarter of the
    transform cost) at increasing degrees of parallelism, with the full
    observatory attached: a per-lane {!Parcae_obs.Timeline}, a causal
    trace fed to {!Parcae_obs.Critpath}, and (on native) the
    {!Parcae_obs.Runtime_ev} GC consumer.  It then explains the scaling
    curve it measured: is the workload depth-limited (critical-path
    bound), scheduler-limited (steal failure, park time), allocator-
    limited (GC share), or platform-limited (spawned-domains shortfall)?

    The workload is deliberately synthetic and closed-form — with [items]
    requests, transform cost [w] and consumer cost [w/4], the speedup
    bound is [items*(w + w/4) / (w + items*w/4)] — so the doctor can
    check its own instruments against the analytic answer. *)

type backend = [ `Sim of Parcae_sim.Machine.t | `Native of int option ]

type dop_result = {
  dop : int;
  wall_ns : int;
  speedup : float;  (** traced compute / wall — vs sequential execution *)
  crit : Parcae_obs.Critpath.report;
  lanes : Parcae_obs.Timeline.lane_breakdown array;
  merged : (Parcae_obs.Timeline.state * float) list;
  steals : int;  (** native: successful steals over the run *)
  steal_attempts : int;
  span_drops : int;  (** timeline ring overwrites, summed over lanes *)
  gc : Parcae_obs.Runtime_ev.stats option;  (** native only *)
}

type finding = {
  code : string;  (** stable rule id, e.g. ["D101"] *)
  severity : string;  (** ["error"], ["warn"] or ["info"] *)
  message : string;
}

type report = {
  backend_name : string;
  host_domains : int;  (** recommended domains (native) or machine cores *)
  requested_domains : int;  (** pool the largest DoP would want *)
  spawned_domains : int;  (** pool actually used for every run *)
  items : int;
  work_ns : int;  (** transform cost per item *)
  sink_ns : int;  (** consumer cost per item ([work_ns / 4]) *)
  results : dop_result list;  (** in ascending DoP order *)
  findings : finding list;
  leaked_cursors : int;  (** {!Parcae_obs.Runtime_ev.live_cursors} after *)
}

val run :
  ?items:int -> ?work_ns:int -> ?dops:int list -> backend:backend -> unit -> report
(** Run the sweep (defaults: 240 items, 1.5 ms transform, DoPs 1 2 4 8).
    Each DoP gets a fresh engine over the same pool size.  Diagnosis rules
    are applied to the collected results. *)

val render : report -> string
(** Human-readable report: the scaling table, the per-lane share table of
    the largest-DoP run, and the findings. *)

val report_to_json : report -> Parcae_obs.Json.t
