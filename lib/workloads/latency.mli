(** The tail-latency observatory behind [parcae_demo latency].

    Pure analysis over an installed {!Parcae_obs.Span} collector, plus
    optionally a flight-recorder log and a scheduler timeline for
    exemplar correlation: a quantile ladder with per-quantile phase
    attribution, the K slowest requests with their span timelines and
    the nearest reconfiguration/GC event, and findings codes L100-L1xx.
    The demo binary renders the report and maps [r_slo_breached] to the
    exit code (DESIGN.md section 15).

    Attribution honesty: the per-quantile breakdown never averages
    phases across requests.  It picks the retained request whose total
    is nearest the HDR quantile estimate and reports that request's
    phases, which sum to its total exactly — a concrete exemplar can't
    mislead the way averaged p99 phase shares do. *)

type phase_cut = (Parcae_obs.Span.phase * int) list
(** Per-phase nanoseconds; sums exactly to the owning request's total. *)

type qbreak = {
  qb_q : float;  (** the quantile, e.g. [0.99] *)
  qb_est_ns : int;  (** HDR estimate over every completion *)
  qb_total_ns : int;  (** the exemplar request's exact total *)
  qb_phases : phase_cut;
}

type exemplar = {
  ex_id : int;
  ex_end_ns : int;
  ex_total_ns : int;
  ex_phases : phase_cut;
  ex_stages : (string * int) list;  (** per-stage compute timeline *)
  ex_nearest : string option;
      (** nearest reconfiguration/GC event relative to completion,
          human-readable; [None] without flight/timeline input *)
}

type finding = { f_code : string; f_msg : string }
(** L100 SLO breach; L101 queue-dominated p99; L102
    reconfiguration-dominated; L103 channel-wait-dominated; L104
    GC-dominated; L105 span-ring overflow; L106 heavy tail
    (p999 > 20x p50); L107 phase-sum invariant violation. *)

type report = {
  r_completed : int;
  r_drops : int;
  r_double_finishes : int;
  r_mean_ns : float;
  r_max_ns : int;
  r_quantiles : qbreak list;
  r_exemplars : exemplar list;
  r_findings : finding list;
  r_slo_target_ns : int;
  r_slo_budget : float;
  r_slo_requests : int;
  r_slo_over : int;
  r_slo_burn : float;
  r_slo_breached : bool;
}

val analysis_quantiles : float list
(** The ladder analyzed: p50, p90, p99, p999. *)

val analyze :
  ?flight:Parcae_obs.Flight.entry list ->
  ?timeline:Parcae_obs.Timeline.t ->
  ?top:int ->
  Parcae_obs.Span.t ->
  report
(** Analyze the collector's retained spans.  [flight] supplies
    reconfiguration decisions/overheads and [timeline] GC spans for
    nearest-event correlation; [top] (default 5) bounds the slowest-K
    exemplar list. *)

val render : report -> string
(** Human-readable report (the non-[--json] output). *)

val to_json : report -> Parcae_obs.Json.t
(** The [--json] / [/latency.json] analyzer payload. *)
