(* A live ASCII dashboard over the metrics registry — `parcae_demo top`.

   Rendering is a pure function of a registry snapshot, grouped by
   instrument kind into Parcae_util.Table blocks; a refresher thread on the
   simulated clock re-renders every [interval_ns] of virtual time.  The
   refresher is itself a simulated thread, so it perturbs the engine's
   live-thread count (and hence anything derived from it, like the
   oversubscription factor) — fine for an interactive top, but determinism
   tests must not run one. *)

module Engine = Parcae_platform.Engine
module Obs = Parcae_obs.Metrics
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb
module Span = Parcae_obs.Span
module Pool = Parcae_core.Pool
module Table = Parcae_util.Table

let label_string = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      ^ "}"

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

(* The scheduler panel: per-lane utilization shares from the installed
   timeline, one row per lane plus the wall-weighted merge.  Rendered only
   while a timeline is installed, so `top` without one is unchanged. *)
let scheduler_panel ~now_ns tl =
  let bds = Timeline.breakdown tl ~until:now_ns in
  let t =
    Table.create ~title:"scheduler"
      ~header:("lane" :: List.map Timeline.state_name Timeline.all_states)
  in
  let cell f = Printf.sprintf "%.1f%%" (100.0 *. f) in
  Array.iter
    (fun (lb : Timeline.lane_breakdown) ->
      Table.add_row t
        (string_of_int lb.Timeline.lane
        :: List.map
             (fun st -> cell lb.Timeline.shares.(Timeline.state_index st))
             Timeline.all_states))
    bds;
  let merged = Timeline.merged_shares bds in
  Table.add_row t
    ("all" :: List.map (fun st -> cell (List.assoc st merged)) Timeline.all_states);
  Table.render t

(* The sanitizer panel: live happens-before tracker totals, one row per
   statistic.  Rendered only while a tracker is installed (a `sanitize`
   run), so `top` without one is unchanged — the tracker's throughput
   counters additionally flow into the registry and appear in the counter
   table like any other instrument. *)
let sanitizer_panel tr =
  let t = Table.create ~title:"sanitizer" ~header:[ "statistic"; "value" ] in
  let pairs = Hb.pairs tr in
  let raced = List.length (List.filter (fun (p : Hb.pair) -> p.Hb.p_raced > 0) pairs) in
  Table.add_row t [ "accesses checked"; string_of_int (Hb.access_count tr) ];
  Table.add_row t [ "tasks tracked"; string_of_int (Hb.task_count tr) ];
  Table.add_row t [ "collision pairs"; string_of_int (List.length pairs) ];
  Table.add_row t [ "racing pairs"; string_of_int raced ];
  Table.add_row t [ "race occurrences"; string_of_int (Hb.race_count tr) ];
  Table.render t

(* The latency panel: the span collector's tail-latency ladder, one row
   per phase plus the end-to-end total, with SLO burn and span-ring drop
   accounting.  Rendered only while a collector has completions, so `top`
   without one is unchanged (DESIGN.md section 15). *)
let latency_panel sc =
  let t =
    Table.create ~title:"latency (request spans)"
      ~header:[ "phase"; "p50"; "p90"; "p99"; "p999"; "mean" ]
  in
  let ns v = Printf.sprintf "%.3fms" (float_of_int v /. 1e6) in
  let nsf v = Printf.sprintf "%.3fms" (v /. 1e6) in
  Table.add_row t
    [
      "total";
      ns (Span.quantile_ns sc 0.5);
      ns (Span.quantile_ns sc 0.9);
      ns (Span.quantile_ns sc 0.99);
      ns (Span.quantile_ns sc 0.999);
      nsf (Span.mean_ns sc);
    ];
  List.iter
    (fun p ->
      Table.add_row t
        [
          Span.phase_name p;
          ns (Span.phase_quantile_ns sc p 0.5);
          ns (Span.phase_quantile_ns sc p 0.9);
          ns (Span.phase_quantile_ns sc p 0.99);
          ns (Span.phase_quantile_ns sc p 0.999);
          nsf (Span.phase_mean_ns sc p);
        ])
    Span.all_phases;
  Table.add_row t
    [ "completed"; string_of_int (Span.completed sc); ""; ""; "";
      Printf.sprintf "drops %d" (Span.drops sc) ];
  (if Span.slo_target_ns sc > 0 then
     Table.add_row t
       [
         "slo";
         Printf.sprintf "target %s" (ns (Span.slo_target_ns sc));
         Printf.sprintf "over %d/%d" (Span.slo_over sc) (Span.slo_requests sc);
         Printf.sprintf "burn %.2f" (Span.slo_burn_rate sc);
         (if Span.slo_breached sc then "BREACHED" else "ok");
         "";
       ]);
  Table.render t

(* The pool panel: freelist hit rates and the process's minor-word total,
   one row per pool (DESIGN.md section 14).  Rendered only when at least
   one pool exists, so `top` on pool-free programs is unchanged. *)
let pool_panel () =
  match Pool.stats () with
  | [] -> None
  | stats ->
      let t =
        Table.create ~title:"pools / allocation"
          ~header:[ "pool"; "hits"; "misses"; "hit%"; "free" ]
      in
      List.iter
        (fun (s : Pool.stats) ->
          let total = s.Pool.st_hits + s.Pool.st_misses in
          let rate =
            if total = 0 then "-"
            else Printf.sprintf "%.1f%%" (100.0 *. float_of_int s.Pool.st_hits /. float_of_int total)
          in
          Table.add_row t
            [
              s.Pool.st_name;
              string_of_int s.Pool.st_hits;
              string_of_int s.Pool.st_misses;
              rate;
              string_of_int s.Pool.st_free;
            ])
        stats;
      Table.add_row t
        [
          "minor words (process)";
          Printf.sprintf "%.0f" (Gc.quick_stat ()).Gc.minor_words;
          "";
          "";
          "";
        ];
      Some (Table.render t)

(* Render one registry snapshot as counter / gauge / histogram tables.
   Series order comes from Metrics.snapshot, so the output is deterministic
   and diffable across refreshes. *)
let render ?(title = "parcae top") ~now_s reg =
  let fams = Obs.snapshot reg in
  let counters = Table.create ~title:(Printf.sprintf "%s — counters (t=%.3fs)" title now_s)
      ~header:[ "counter"; "value" ]
  and gauges = Table.create ~title:"gauges" ~header:[ "gauge"; "value" ]
  and hists =
    Table.create ~title:"histograms"
      ~header:[ "histogram"; "count"; "mean"; "p50"; "p95"; "p99" ]
  and summaries =
    Table.create ~title:"summaries"
      ~header:[ "summary"; "count"; "mean"; "p50"; "p90"; "p99"; "p999" ]
  in
  let n_counters = ref 0 and n_gauges = ref 0 and n_hists = ref 0 in
  let n_summaries = ref 0 in
  List.iter
    (fun (f : Obs.fam_snapshot) ->
      List.iter
        (fun { Obs.labels; value } ->
          let name = f.Obs.name ^ label_string labels in
          match value with
          | Obs.Counter_v n ->
              incr n_counters;
              Table.add_row counters [ name; string_of_int n ]
          | Obs.Gauge_v g ->
              incr n_gauges;
              Table.add_row gauges [ name; fmt_value g ]
          | Obs.Histogram_v { bounds; counts; sum; count } ->
              incr n_hists;
              let q p = Obs.quantile ~bounds ~counts p in
              let mean = if count = 0 then 0.0 else sum /. float_of_int count in
              Table.add_row hists
                [
                  name;
                  string_of_int count;
                  fmt_value mean;
                  fmt_value (q 0.50);
                  fmt_value (q 0.95);
                  fmt_value (q 0.99);
                ]
          | Obs.Summary_v { quantiles; sum; count } ->
              incr n_summaries;
              let q p =
                match List.assoc_opt p quantiles with
                | Some v -> fmt_value v
                | None -> "-"
              in
              let mean = if count = 0 then 0.0 else sum /. float_of_int count in
              Table.add_row summaries
                [
                  name;
                  string_of_int count;
                  fmt_value mean;
                  q 0.5;
                  q 0.9;
                  q 0.99;
                  q 0.999;
                ])
        f.Obs.samples)
    fams;
  let parts =
    List.filter_map
      (fun (n, t) -> if !n > 0 then Some (Table.render t) else None)
      [ (n_counters, counters); (n_gauges, gauges); (n_hists, hists);
        (n_summaries, summaries) ]
  in
  let parts =
    match Timeline.get () with
    | Some tl ->
        parts @ [ scheduler_panel ~now_ns:(int_of_float (now_s *. 1e9)) tl ]
    | None -> parts
  in
  let parts =
    match Hb.get () with Some tr -> parts @ [ sanitizer_panel tr ] | None -> parts
  in
  let parts =
    match Span.get () with
    | Some sc when Span.completed sc > 0 -> parts @ [ latency_panel sc ]
    | _ -> parts
  in
  let parts = match pool_panel () with Some p -> parts @ [ p ] | None -> parts in
  match parts with
  | [] -> Printf.sprintf "%s — no metrics recorded (t=%.3fs)\n" title now_s
  | parts -> String.concat "\n" parts

(* Spawn the refresher thread: every [interval_ns] of virtual time, force
   the engine's energy/busy-time accounting up to date and write a fresh
   render of the installed registry to [out]. *)
let spawn ?(out = stdout) ?title ?(interval_ns = 1_000_000_000) ~stop eng =
  if interval_ns <= 0 then invalid_arg "Dashboard.spawn: interval must be positive";
  Engine.spawn eng ~name:"dashboard" (fun () ->
      while not (stop ()) do
        Engine.sleep interval_ns;
        ignore (Engine.energy_joules eng);
        Pool.sample_allocs ();
        if Obs.enabled () then begin
          output_string out
            (render ?title ~now_s:(Engine.seconds_of_ns (Engine.time eng)) (Obs.current ()));
          output_char out '\n';
          flush out
        end
      done)
