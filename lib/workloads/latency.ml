(* The tail-latency observatory behind `parcae_demo latency`.

   Pure analysis over an installed span collector (plus, optionally, a
   flight recorder and a scheduler timeline): quantile ladder, a
   per-quantile phase breakdown, the K slowest requests as exemplars
   with their span timelines and the nearest reconfiguration/GC event,
   and findings codes L100-L107.  The demo binary renders the report and
   turns `slo_breached` into the exit code; everything here is
   deterministic given the collector's contents (DESIGN.md section 15).

   Attribution honesty: the per-quantile breakdown does not average —
   it picks the retained request whose total is nearest the HDR
   quantile estimate and shows *that request's* phases, which sum to its
   total exactly.  Averaged phase shares at p99 routinely mislead
   (queue spikes and GC pauses hit different requests); a concrete
   exemplar cannot. *)

module Span = Parcae_obs.Span
module Flight = Parcae_obs.Flight
module Timeline = Parcae_obs.Timeline
module Json = Parcae_obs.Json

type phase_cut = (Span.phase * int) list

type qbreak = {
  qb_q : float;  (* the quantile, e.g. 0.99 *)
  qb_est_ns : int;  (* HDR estimate over every completion *)
  qb_total_ns : int;  (* the exemplar request's exact total *)
  qb_phases : phase_cut;  (* the exemplar's phases; sum = qb_total_ns *)
}

type exemplar = {
  ex_id : int;
  ex_end_ns : int;
  ex_total_ns : int;
  ex_phases : phase_cut;
  ex_stages : (string * int) list;  (* per-stage compute timeline *)
  ex_nearest : string option;  (* nearest reconfig/GC event, human-readable *)
}

type finding = { f_code : string; f_msg : string }

type report = {
  r_completed : int;
  r_drops : int;
  r_double_finishes : int;
  r_mean_ns : float;
  r_max_ns : int;
  r_quantiles : qbreak list;
  r_exemplars : exemplar list;
  r_findings : finding list;
  r_slo_target_ns : int;
  r_slo_budget : float;
  r_slo_requests : int;
  r_slo_over : int;
  r_slo_burn : float;
  r_slo_breached : bool;
}

let analysis_quantiles = [ 0.5; 0.9; 0.99; 0.999 ]

let phases_of (rv : Span.rec_view) : phase_cut =
  [
    (Span.Queue, rv.Span.rv_queue);
    (Span.Chan, rv.Span.rv_chan);
    (Span.Compute, rv.Span.rv_compute);
    (Span.Reconfig, rv.Span.rv_reconfig);
    (Span.Gc, rv.Span.rv_gc);
  ]

let phase_sum cut = List.fold_left (fun acc (_, v) -> acc + v) 0 cut

(* The retained request whose total is nearest [target_ns]. *)
let nearest_record records target_ns =
  List.fold_left
    (fun best (rv : Span.rec_view) ->
      match best with
      | None -> Some rv
      | Some b ->
          if abs (rv.Span.rv_total - target_ns) < abs (b.Span.rv_total - target_ns)
          then Some rv
          else Some b)
    None records

(* ---- Nearest reconfig/GC event correlation. ----

   Candidate moments come from the flight recorder (reconfiguration
   overhead closings and controller decisions) and the timeline's GC
   spans; the exemplar is annotated with whichever landed closest to its
   completion stamp. *)

let flight_moments entries =
  List.filter_map
    (function
      | Flight.Overhead o when o.Flight.o_phase = "total" ->
          Some
            ( o.Flight.o_t,
              Printf.sprintf "reconfig of %s (%.3fms total)" o.Flight.o_region
                (float_of_int o.Flight.o_ns /. 1e6) )
      | Flight.Decision d ->
          Some
            ( d.Flight.t,
              Printf.sprintf "decision %s by %s (dop %d -> %d)" d.Flight.reason
                d.Flight.actor d.Flight.candidate d.Flight.chosen )
      | Flight.Overhead _ -> None)
    entries

let timeline_gc_moments tl =
  let out = ref [] in
  for lane = 0 to Timeline.lanes tl - 1 do
    List.iter
      (fun (s : Timeline.span) ->
        if s.Timeline.s_state = Timeline.Gc then
          out :=
            ( s.Timeline.s_t1,
              Printf.sprintf "gc pause on lane %d (%.3fms)" lane
                (float_of_int (s.Timeline.s_t1 - s.Timeline.s_t0) /. 1e6) )
            :: !out)
      (Timeline.spans tl ~lane)
  done;
  !out

let nearest_moment moments end_ns =
  List.fold_left
    (fun best (t, what) ->
      match best with
      | Some (bt, _) when abs (bt - end_ns) <= abs (t - end_ns) -> best
      | _ -> Some (t, what))
    None moments
  |> Option.map (fun (t, what) ->
         let d = end_ns - t in
         if d >= 0 then Printf.sprintf "%s %.3fms before completion" what (float_of_int d /. 1e6)
         else Printf.sprintf "%s %.3fms after completion" what (float_of_int (-d) /. 1e6))

(* ---- Findings. ---- *)

let pct part total = if total <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let findings ~collector ~(p99 : qbreak option) records =
  let fs = ref [] in
  let add code fmt = Printf.ksprintf (fun msg -> fs := { f_code = code; f_msg = msg } :: !fs) fmt in
  if Span.slo_breached collector then
    add "L100" "SLO breached: %d/%d requests over the %.3fms target (burn rate %.2fx budget)"
      (Span.slo_over collector) (Span.slo_requests collector)
      (float_of_int (Span.slo_target_ns collector) /. 1e6)
      (Span.slo_burn_rate collector);
  (match p99 with
  | Some qb ->
      let part p = try List.assoc p qb.qb_phases with Not_found -> 0 in
      let share p = pct (part p) qb.qb_total_ns in
      if share Span.Queue > 50.0 then
        add "L101" "p99 is queue-dominated: %.1f%% of the exemplar's %.3fms was admission wait"
          (share Span.Queue)
          (float_of_int qb.qb_total_ns /. 1e6);
      if share Span.Reconfig > 25.0 then
        add "L102" "p99 is reconfiguration-dominated: %.1f%% of the exemplar was pause/resume stall"
          (share Span.Reconfig);
      if share Span.Chan > 50.0 then
        add "L103" "p99 is channel-wait-dominated: %.1f%% of the exemplar was inter-stage wait"
          (share Span.Chan);
      if share Span.Gc > 25.0 then
        add "L104" "p99 is GC-dominated: %.1f%% of the exemplar overlapped collector pauses"
          (share Span.Gc)
  | None -> ());
  if Span.drops collector > 0 then
    add "L105" "span ring overflowed: %d exemplars dropped (quantiles stay exact)"
      (Span.drops collector);
  let p50 = Span.quantile_ns collector 0.5 and p999 = Span.quantile_ns collector 0.999 in
  if p50 > 0 && p999 > 20 * p50 then
    add "L106" "heavy tail: p999 (%.3fms) is %.0fx p50 (%.3fms)"
      (float_of_int p999 /. 1e6)
      (float_of_int p999 /. float_of_int p50)
      (float_of_int p50 /. 1e6);
  (* The integer accounting guarantees exact phase sums; this check is
     the analyzer auditing that guarantee over every retained record. *)
  let bad_sum =
    List.exists
      (fun (rv : Span.rec_view) -> phase_sum (phases_of rv) <> rv.Span.rv_total)
      records
  in
  if bad_sum then
    add "L107" "phase-sum invariant violated in the span ring (accounting bug — please report)";
  List.rev !fs

(* ---- The analysis. ---- *)

let analyze ?(flight = []) ?timeline ?(top = 5) collector =
  let records = Span.records collector in
  let moments =
    flight_moments flight
    @ (match timeline with Some tl -> timeline_gc_moments tl | None -> [])
  in
  let quantiles =
    List.filter_map
      (fun q ->
        let est = Span.quantile_ns collector q in
        match nearest_record records est with
        | None -> None
        | Some rv ->
            Some
              {
                qb_q = q;
                qb_est_ns = est;
                qb_total_ns = rv.Span.rv_total;
                qb_phases = phases_of rv;
              })
      analysis_quantiles
  in
  let slowest =
    List.sort (fun (a : Span.rec_view) b -> compare b.Span.rv_total a.Span.rv_total) records
  in
  let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
  let exemplars =
    List.map
      (fun (rv : Span.rec_view) ->
        {
          ex_id = rv.Span.rv_id;
          ex_end_ns = rv.Span.rv_end_ns;
          ex_total_ns = rv.Span.rv_total;
          ex_phases = phases_of rv;
          ex_stages =
            Array.to_list
              (Array.mapi
                 (fun i ns -> (Span.stage_name collector i, ns))
                 rv.Span.rv_stage_ns);
          ex_nearest = nearest_moment moments rv.Span.rv_end_ns;
        })
      (take top slowest)
  in
  let p99 = List.find_opt (fun qb -> qb.qb_q = 0.99) quantiles in
  {
    r_completed = Span.completed collector;
    r_drops = Span.drops collector;
    r_double_finishes = Span.double_finishes collector;
    r_mean_ns = Span.mean_ns collector;
    r_max_ns = Span.max_ns collector;
    r_quantiles = quantiles;
    r_exemplars = exemplars;
    r_findings = findings ~collector ~p99 records;
    r_slo_target_ns = Span.slo_target_ns collector;
    r_slo_budget = Span.slo_budget collector;
    r_slo_requests = Span.slo_requests collector;
    r_slo_over = Span.slo_over collector;
    r_slo_burn = Span.slo_burn_rate collector;
    r_slo_breached = Span.slo_breached collector;
  }

(* ---- Rendering. ---- *)

let ms ns = Printf.sprintf "%.3fms" (float_of_int ns /. 1e6)

let qlabel q =
  let s = Printf.sprintf "%g" (q *. 100.0) in
  "p" ^ String.concat "" (String.split_on_char '.' s)

let render r =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "latency observatory: %d requests (%d spans dropped, %d double finishes)\n"
    r.r_completed r.r_drops r.r_double_finishes;
  pr "  mean %.3fms  max %s\n\n" (r.r_mean_ns /. 1e6) (ms r.r_max_ns);
  pr "%-6s %10s %10s | %10s %10s %10s %10s %10s\n" "q" "estimate" "exemplar"
    "queue" "chan" "compute" "reconfig" "gc";
  List.iter
    (fun qb ->
      let part p = try List.assoc p qb.qb_phases with Not_found -> 0 in
      pr "%-6s %10s %10s | %10s %10s %10s %10s %10s\n" (qlabel qb.qb_q)
        (ms qb.qb_est_ns) (ms qb.qb_total_ns) (ms (part Span.Queue))
        (ms (part Span.Chan)) (ms (part Span.Compute)) (ms (part Span.Reconfig))
        (ms (part Span.Gc)))
    r.r_quantiles;
  if r.r_slo_target_ns > 0 then
    pr "\nSLO: target %s budget %.4f  over %d/%d  burn %.2f  %s\n"
      (ms r.r_slo_target_ns) r.r_slo_budget r.r_slo_over r.r_slo_requests r.r_slo_burn
      (if r.r_slo_breached then "BREACHED" else "ok");
  if r.r_exemplars <> [] then begin
    pr "\nslowest requests:\n";
    List.iter
      (fun ex ->
        pr "  request %d: %s (finished t=%.3fs)\n" ex.ex_id (ms ex.ex_total_ns)
          (float_of_int ex.ex_end_ns /. 1e9);
        pr "    phases: %s\n"
          (String.concat "  "
             (List.map
                (fun (p, v) -> Printf.sprintf "%s=%s" (Span.phase_name p) (ms v))
                ex.ex_phases));
        if ex.ex_stages <> [] then
          pr "    stages: %s\n"
            (String.concat "  "
               (List.map (fun (n, v) -> Printf.sprintf "%s=%s" n (ms v)) ex.ex_stages));
        match ex.ex_nearest with
        | Some what -> pr "    nearest event: %s\n" what
        | None -> ())
      r.r_exemplars
  end;
  if r.r_findings <> [] then begin
    pr "\nfindings:\n";
    List.iter (fun f -> pr "  [%s] %s\n" f.f_code f.f_msg) r.r_findings
  end
  else pr "\nfindings: none\n";
  Buffer.contents buf

let to_json r =
  let phases cut =
    Json.Obj (List.map (fun (p, v) -> (Span.phase_name p, Json.Int v)) cut)
  in
  Json.Obj
    [
      ("completed", Json.Int r.r_completed);
      ("dropped", Json.Int r.r_drops);
      ("double_finishes", Json.Int r.r_double_finishes);
      ("mean_ns", Json.Float r.r_mean_ns);
      ("max_ns", Json.Int r.r_max_ns);
      ( "quantiles",
        Json.List
          (List.map
             (fun qb ->
               Json.Obj
                 [
                   ("q", Json.Float qb.qb_q);
                   ("estimate_ns", Json.Int qb.qb_est_ns);
                   ("exemplar_total_ns", Json.Int qb.qb_total_ns);
                   ("phases_ns", phases qb.qb_phases);
                 ])
             r.r_quantiles) );
      ( "exemplars",
        Json.List
          (List.map
             (fun ex ->
               Json.Obj
                 ([
                    ("id", Json.Int ex.ex_id);
                    ("end_ns", Json.Int ex.ex_end_ns);
                    ("total_ns", Json.Int ex.ex_total_ns);
                    ("phases_ns", phases ex.ex_phases);
                    ( "stages_ns",
                      Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) ex.ex_stages) );
                  ]
                 @
                 match ex.ex_nearest with
                 | Some what -> [ ("nearest_event", Json.Str what) ]
                 | None -> []))
             r.r_exemplars) );
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj [ ("code", Json.Str f.f_code); ("message", Json.Str f.f_msg) ])
             r.r_findings) );
      ( "slo",
        Json.Obj
          [
            ("target_ns", Json.Int r.r_slo_target_ns);
            ("budget", Json.Float r.r_slo_budget);
            ("requests", Json.Int r.r_slo_requests);
            ("over_target", Json.Int r.r_slo_over);
            ("burn_rate", Json.Float r.r_slo_burn);
            ("breached", Json.Bool r.r_slo_breached);
          ] );
    ]
