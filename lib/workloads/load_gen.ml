(* Poisson request generator (Section 8's methodology).

   "The arrival of tasks was simulated using a task queuing thread that
   enqueues tasks to a work queue according to a Poisson distribution.  The
   average arrival rate determines the load factor on the system."

   The generator runs as a simulated thread: it draws exponential
   inter-arrival times at the requested rate, stamps each request with its
   arrival time, enqueues it, and injects an end-of-stream sentinel after
   the last request so batch experiments terminate cleanly. *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Pipeline = Parcae_core.Pipeline
module Rng = Parcae_util.Rng

(* Generate [m] requests at [rate_per_s] (Poisson) into [queue], recording
   submissions in [metrics].  Per-request scale factors are gaussian around
   1.0 with [jitter] relative standard deviation.  When [eos] is set, a
   flush sentinel follows the last request. *)
let generator ?(jitter = 0.08) ?(eos = true) ~rng ~rate_per_s ~m ~queue ~metrics () =
  let next_id = ref 0 in
  for _ = 1 to m do
    let gap = Rng.exponential rng ~rate:rate_per_s in
    Engine.sleep (int_of_float (gap *. 1e9));
    let scale = Float.max 0.5 (Rng.gaussian rng ~mu:1.0 ~sigma:jitter) in
    (* Pooled: the tail stage frees the record back on completion. *)
    let req = Request.alloc ~id:!next_id ~arrival_ns:(Engine.now ()) ~scale in
    incr next_id;
    Metrics.note_submit metrics;
    Pipeline.send queue req
  done;
  if eos then Pipeline.inject_eos queue

(* Enqueue [m] requests all arriving at time ~0 — the batch mode used by
   the throughput experiments (Table 8.5, Figures 8.6-8.7).  Like
   [generator], this is a simulated-thread body. *)
let batch ?(jitter = 0.08) ?(eos = true) ~rng ~m ~queue ~metrics () =
  (* One batched enqueue for the whole burst: a single [chan_op] charge
     (amortized communication) instead of m, which matters exactly here —
     the work-queue hot path every batch experiment funnels through. *)
  let reqs =
    List.init m (fun id ->
        let scale = Float.max 0.5 (Rng.gaussian rng ~mu:1.0 ~sigma:jitter) in
        (* Pooled: the tail stage frees the record back on completion. *)
        let req = Request.alloc ~id ~arrival_ns:0 ~scale in
        Metrics.note_submit metrics;
        Pipeline.Item req)
  in
  Chan.send_batch queue reqs;
  if eos then Pipeline.inject_eos queue

let spawn_generator ?jitter ?eos ~rng ~rate_per_s ~m ~queue ~metrics eng =
  Engine.spawn eng ~name:"load-generator" (fun () ->
      generator ?jitter ?eos ~rng ~rate_per_s ~m ~queue ~metrics ())

let spawn_batch ?jitter ?eos ~rng ~m ~queue ~metrics eng =
  Engine.spawn eng ~name:"batch-loader" (fun () -> batch ?jitter ?eos ~rng ~m ~queue ~metrics ())
