(** swaptions: option pricing via Monte Carlo (Table 8.2; Figure 8.2):
    outer DOALL over pricing requests, inner DOALL over simulation chunks
    with a serial reduction per chunk capping inner scalability per
    Amdahl. *)

val chunks : int
val chunk_ns : int
val serial_ns : int
val dpmax : int
val kind : Two_level.inner_kind
val make : ?budget:int -> Parcae_platform.Engine.t -> App.t
val static_outer_name : string
val static_inner_name : string
