(** Builder for two-level loop-nest servers (the paper's Figure 2.3 /
    Section 5.1): an outer DOALL over work-queue requests, each of which
    can itself be processed in parallel by a pipeline over its items or a
    DOALL over chunks.  The configuration space is the paper's
    [<(k, DOALL), (l, PIPE | DOALL | SEQ)>]. *)

type inner_kind =
  | Pipe of { items : int; stage_ns : int array }
      (** a pipeline over items; first/last stages sequential, middle
          parallel (bzip's read / compress / write) *)
  | Doall of { chunks : int; chunk_ns : int; serial_ns : int; beta : float }
      (** independent chunks with a serial (critical-section) portion and
          a communication coefficient inflating per-chunk cost by
          [1 + beta * (dop - 1)] (x264's inter-frame dependencies) *)

val seq_request_ns : inner_kind -> int
(** Sequential per-request work. *)

val inner_config : inner_kind -> int -> Parcae_core.Config.t
(** Inner configuration using [l] threads in total. *)

val inner_threads : inner_kind -> int -> int

val feasible_inner_dops : budget:int -> inner_kind -> int list
(** Inner DoPs that tile the budget exactly (k * l = budget). *)

val snap_inner_dop : budget:int -> inner_kind -> int -> int
(** Snap a requested inner DoP down to the nearest feasible value. *)

val make_config : budget:int -> inner_kind -> int -> Parcae_core.Config.t
(** The full [<(k, DOALL), (l, ...)>] configuration; [l <= 1] turns inner
    parallelism off and gives every thread to the outer loop. *)

val make :
  ?alpha:float ->
  name:string ->
  kind:inner_kind ->
  dpmax:int ->
  budget:int ->
  Parcae_platform.Engine.t ->
  App.t
(** Build the server.  [alpha] is the oversubscription sensitivity;
    [dpmax] the inner DoP at which parallel efficiency falls to ~0.5 (what
    WQT-H's light mode uses).  Named configs: "outer-only", "inner-max". *)
