(** Poisson request generation (the paper's Section 8 methodology): a task
    queuing thread enqueues requests according to a Poisson distribution;
    the average arrival rate determines the load factor. *)

val generator :
  ?jitter:float ->
  ?eos:bool ->
  rng:Parcae_util.Rng.t ->
  rate_per_s:float ->
  m:int ->
  queue:Request.t Parcae_core.Pipeline.msg Parcae_platform.Chan.t ->
  metrics:Metrics.t ->
  unit ->
  unit
(** Generate [m] requests at [rate_per_s] into [queue]; per-request scale
    factors are gaussian around 1.0 with [jitter] relative stddev; when
    [eos] (default) an end-of-stream sentinel follows the last request.
    A simulated-thread body. *)

val batch :
  ?jitter:float ->
  ?eos:bool ->
  rng:Parcae_util.Rng.t ->
  m:int ->
  queue:Request.t Parcae_core.Pipeline.msg Parcae_platform.Chan.t ->
  metrics:Metrics.t ->
  unit ->
  unit
(** Enqueue [m] requests all arriving at time ~0 — the batch mode of the
    throughput experiments (Table 8.5, Figures 8.6-8.7).  A
    simulated-thread body. *)

val spawn_generator :
  ?jitter:float ->
  ?eos:bool ->
  rng:Parcae_util.Rng.t ->
  rate_per_s:float ->
  m:int ->
  queue:Request.t Parcae_core.Pipeline.msg Parcae_platform.Chan.t ->
  metrics:Metrics.t ->
  Parcae_platform.Engine.t ->
  Parcae_platform.Engine.thread

val spawn_batch :
  ?jitter:float ->
  ?eos:bool ->
  rng:Parcae_util.Rng.t ->
  m:int ->
  queue:Request.t Parcae_core.Pipeline.msg Parcae_platform.Chan.t ->
  metrics:Metrics.t ->
  Parcae_platform.Engine.t ->
  Parcae_platform.Engine.thread
