(** bzip: block compression (Table 8.2; Figure 8.3): per-file
    read/compress/write pipeline whose minimum profitable inner DoP is 4 —
    the property that starves WQ-Linear of useful intermediate
    configurations (the paper's Section 8.2.1). *)

val blocks : int
val read_ns : int
val compress_ns : int
val write_ns : int
val dpmax : int
val kind : Two_level.inner_kind
val make : ?budget:int -> Parcae_platform.Engine.t -> App.t
val static_outer_name : string
val static_inner_name : string
