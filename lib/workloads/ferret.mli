(** ferret: image search engine (Table 8.2; Figures 6.2, 8.5-8.7,
    Table 8.5): a six-stage pipeline (load, seg, extract, vec, rank, out)
    with rank dominating; the fused scheme collapses the four parallel
    stages.  Oversubscription sensitivity calibrated against the paper's
    Pthreads-OS 2.12x. *)

val stages : Flat_pipeline.stage_spec list
val alpha : float
val make : ?budget:int -> Parcae_platform.Engine.t -> App.t
