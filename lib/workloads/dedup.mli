(** dedup: data deduplication (Table 8.2; Table 8.5): a five-stage
    pipeline with compress dominating.  Memory-bandwidth bound, so its
    oversubscription sensitivity is high — reproducing the paper's
    Pthreads-OS result of 0.89x. *)

val stages : Flat_pipeline.stage_spec list
val alpha : float
val make : ?budget:int -> Parcae_platform.Engine.t -> App.t
