(** x264 video transcoding (Table 8.2; Figures 2.3, 2.4, 8.1): outer DOALL
    over requests, per-video frame-team parallelism with communication
    overhead growing with team size.  Calibrated so 8 inner threads give
    ~6.3x intra-video speedup (dPmax = 8) and inner efficiency decreases
    smoothly — producing the throughput crossover of Figure 2.4(b). *)

val frames : int
val frame_ns : int
val beta : float
val dpmax : int
val kind : Two_level.inner_kind
val make : ?budget:int -> Parcae_platform.Engine.t -> App.t
val static_outer_name : string
val static_inner_name : string
