(* A unit of server work: one video to transcode, one query to answer...
   Requests carry their arrival time so completion code can compute the
   end-user response time (Equation 2.1), and a size scale factor so
   workloads have realistic per-request variation.

   Every field is mutable so records can be recycled through a striped
   object pool (DESIGN.md section 14): the load generators [alloc] from
   the pool and the pipeline tails [free] back into it, so steady-state
   serving reuses the same records instead of taxing the allocator per
   request.  [create] still heap-allocates for callers outside the serve
   path (tests, examples); freeing such a record simply donates it to the
   pool. *)

module Pool = Parcae_core.Pool
module Span = Parcae_obs.Span

type t = {
  mutable id : int;
  mutable arrival_ns : int;  (* virtual time the request entered the work queue *)
  mutable scale : float;  (* per-request work multiplier, ~1.0 *)
  mutable scale_fp : int;  (* [scale] in 16.16 fixed point, kept in sync *)
  mutable start_ns : int;  (* time processing began; -1 until dequeued *)
  mutable span : Span.span;  (* per-request latency span; [Span.null] until traced *)
}

(* [scale] mirrored into 16.16 fixed point once at construction, so the
   per-stage cost scaling on the serve path is pure int arithmetic — a
   float field read from a mixed record boxes on every access. *)
let fp_of_scale scale = int_of_float ((scale *. 65536.0) +. 0.5)

let create ~id ~arrival_ns ~scale =
  let span = Span.make_span () in
  Span.reset span ~id ~arrival_ns;
  { id; arrival_ns; scale; scale_fp = fp_of_scale scale; start_ns = -1; span }

(* Pool constructor: grafts the shared [Span.null] so an untraced serve
   path's pool misses stay span-free; [alloc] upgrades to a private span
   the first time the record is handed out with a collector installed. *)
let fresh () =
  { id = -1; arrival_ns = 0; scale = 1.0; scale_fp = 65536; start_ns = -1; span = Span.null }

(* One process-wide pool: requests are plain memory, so sharing across
   engines/apps is safe and keeps the pool warm between runs. *)
let pool = lazy (Pool.create ~name:"request" ~dummy:(fresh ()) fresh)

(* Pool-backed construction: allocation-free once the freelists are warm. *)
let alloc ~id ~arrival_ns ~scale =
  let r = Pool.acquire (Lazy.force pool) in
  r.id <- id;
  r.arrival_ns <- arrival_ns;
  r.scale <- scale;
  r.scale_fp <- fp_of_scale scale;
  r.start_ns <- -1;
  (* Re-arm the span only under a collector: the hooks all no-op while
     tracing is disabled, so the shared null span must never be mutated
     and stale tokens from a previous traced life cannot fire.  The
     upgrade from [Span.null] is the one-time cost of enabling tracing
     on a warm pool (and the ordinary record-construction cost of a
     traced pool miss). *)
  if Span.enabled () then begin
    if r.span == Span.null then r.span <- Span.make_span ();
    Span.reset r.span ~id ~arrival_ns
  end;
  r

(* Return a completed request to the pool.  The caller must hold the only
   live reference (the serve-path tails do: metrics copy what they need
   before freeing). *)
let free r = Pool.release (Lazy.force pool) r

(* Stamp the moment processing begins (idempotent). *)
let note_start t ~now = if t.start_ns < 0 then t.start_ns <- now

(* Scale an integer cost by the request's size factor. *)
let cost t base = int_of_float (Float.round (float_of_int base *. t.scale))
