(** Response-time and throughput bookkeeping for the server workloads.

    Memory is bounded: samples live in {!Parcae_util.Stats.Reservoir}s of
    [reservoir_capacity] entries, so means are exact (running sums) and
    percentiles are exact until the reservoir overflows, a uniform-sample
    estimate after.  When a metrics registry is installed
    ({!Parcae_obs.Metrics.set}), every observation also feeds the
    [parcae_requests_*_total] counters and the [parcae_response_seconds] /
    [parcae_exec_seconds] histograms. *)

type t

val default_reservoir_capacity : int
(** {!Parcae_util.Stats.Reservoir.default_capacity} (8192). *)

val create : ?reservoir_capacity:int -> Parcae_platform.Engine.t -> t

val reset : t -> unit
(** Rewind counts, completion stamps and both reservoirs to a fresh state,
    reusing the existing sample buffers — repeated batch runs can share
    one [t] without per-run allocation.  Cumulative registry counters are
    unaffected. *)

val submitted : t -> int
val completed : t -> int

val note_submit : t -> unit

val note_complete : t -> Request.t -> unit
(** Record the completion of a request at the current virtual time:
    updates the response-time and execution-time samples. *)

val responses : t -> float array
(** Retained response-time samples, seconds — the full history while at
    most [reservoir_capacity] requests completed, a uniform subsample
    after (order then no longer meaningful). *)

val exec_times : t -> float array
(** Retained execution-time samples (processing only, no queue wait);
    bounded like {!responses}. *)

val mean_response : t -> float

val p95_response : t -> float
(** [response_quantile t 0.95]. *)

val response_quantile : t -> float -> float
(** Latency quantile in seconds from the always-on HDR distribution —
    deterministic and within the configured relative error over {e every}
    completion, unlike the reservoir percentile, which becomes a
    seed-dependent estimate once the reservoir overflows.  [nan] before
    the first completion. *)

val latency_quantile_ns : t -> float -> int
(** The same quantile in integer nanoseconds (0 before the first
    completion) — what the bench records as [latency_p50_ns] etc. *)

val mean_exec : t -> float
(** Mean per-request execution time (T_exec of Equation 2.1); exact over
    all completions regardless of reservoir capacity. *)

val throughput : t -> float
(** Sustained completion throughput, requests/second, first to last
    completion. *)

val throughput_series : t -> Parcae_util.Series.t

val sample_throughput : t -> window_completed:int -> window_ns:int -> unit
(** Append a live throughput sample to {!throughput_series}. *)
