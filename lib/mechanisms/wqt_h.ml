(* Work Queue Threshold with Hysteresis (Section 6.3.1).

   A two-state open-loop controller for the goal "minimize response time
   with N threads".  While the master work queue stays below the threshold
   [t] for [noff] consecutive observations, the program runs in the
   latency-optimized configuration ([light], the "PAR state": e.g. inner
   parallelism on at dPmax); when occupancy stays above the threshold for
   [non] observations it switches to the throughput-optimized configuration
   ([heavy], the "SEQ state": inner parallelism off, all threads to the
   outer loop).  The hysteresis lengths keep the controller from toggling on
   transient bursts. *)

module Config = Parcae_core.Config
module Region = Parcae_runtime.Region
module Morta = Parcae_runtime.Morta

type state = Light | Heavy

let make ~load ~threshold ?(non = 3) ?(noff = 3) ~light ~heavy () : Morta.mechanism =
  let state = ref Heavy in
  (* Observation counters toward a state flip. *)
  let above = ref 0 and below = ref 0 in
  fun region ->
    let q = load () in
    if q > threshold then begin
      incr above;
      below := 0
    end
    else begin
      incr below;
      above := 0
    end;
    let next =
      match !state with
      | Light when !above >= non -> Some Heavy
      | Heavy when !below >= noff -> Some Light
      | _ -> None
    in
    match next with
    | None -> None
    | Some s ->
        state := s;
        above := 0;
        below := 0;
        let cfg, why =
          match s with
          | Light -> (light, "wq_toggle_light")
          | Heavy -> (heavy, "wq_toggle_heavy")
        in
        if Config.equal cfg (Region.config region) then None else Morta.propose ~why cfg
