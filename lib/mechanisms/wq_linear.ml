(* Work Queue Linear (Section 6.3.1).

   Instead of toggling between two configurations, WQ-Linear degrades the
   latency-oriented degree of parallelism continuously with load:

       dP = max(dPmin, dPmax - k * WQo)        (Equation 6.1)
       k  = (dPmax - dPmin) / Qmax             (Equation 6.2)

   where WQo is the instantaneous work-queue occupancy and Qmax is derived
   from the maximum response-time degradation acceptable to the user.

   Two variants are provided:
   - [nested]: the two-level loop-nest form used by the transcoding-style
     servers, where dP is the *inner* DoP and a workload-supplied
     [make_config] maps it to a full configuration (outer DoP typically
     budget / dP);
   - [per_task]: the flat-pipeline form used for ferret (Figure 8.5), where
     each parallel stage's DoP is sized from its own input-queue occupancy,
     allocating threads proportional to the load on each task. *)

module Config = Parcae_core.Config
module Region = Parcae_runtime.Region
module Morta = Parcae_runtime.Morta

(* Equation 6.1/6.2. *)
let dop_of_load ~dpmin ~dpmax ~qmax q =
  let k = float_of_int (dpmax - dpmin) /. qmax in
  let d = float_of_int dpmax -. (k *. q) in
  max dpmin (min dpmax (int_of_float (Float.round d)))

(* The work-queue occupancy is smoothed with an EWMA before Equation 6.1 is
   applied, so transient bursts don't cause reconfiguration thrash (each
   reconfiguration drains the in-flight requests, so flapping between
   adjacent DoPs is pure overhead). *)
let nested ?(smooth = 0.3) ~load ~dpmin ~dpmax ~qmax ~make_config () : Morta.mechanism =
  let ewma = Parcae_util.Stats.Ewma.create ~alpha:smooth in
  fun region ->
    Parcae_util.Stats.Ewma.observe ewma (load ());
    let q = Parcae_util.Stats.Ewma.value ewma in
    let dp = dop_of_load ~dpmin ~dpmax ~qmax q in
    let cfg = make_config dp in
    if Config.equal cfg (Region.config region) then None
    else Morta.propose ~why:"queue_linear" cfg

(* Per-task sizing for single-level pipelines: parallel task [i] gets
   dpmin + ceil(loads.(i) / per_item) threads, capped at dpmax.  Sequential
   tasks (signalled by a [None] load) stay at DoP 1.

   Queue occupancies are EWMA-smoothed and a task's DoP only moves when the
   target differs from the current value by at least [deadband] — every
   applied change pauses and drains the pipeline, so chasing queue noise
   costs more latency than it saves. *)
let per_task ~loads ?(per_item = 4.0) ?(smooth = 0.4) ?(deadband = 2) ~dpmin ~dpmax ()
    : Morta.mechanism =
  let ewmas =
    Array.map
      (fun l -> match l with None -> None | Some _ -> Some (Parcae_util.Stats.Ewma.create ~alpha:smooth))
      loads
  in
  fun region ->
    let cur = Region.config region in
    let tasks =
      Array.mapi
        (fun i tc ->
          match (loads.(i), ewmas.(i)) with
          | Some load, Some ewma ->
              Parcae_util.Stats.Ewma.observe ewma (load ());
              let q = Parcae_util.Stats.Ewma.value ewma in
              let target =
                max dpmin (min dpmax (dpmin + int_of_float (ceil (q /. per_item))))
              in
              if abs (target - tc.Config.dop) >= deadband then { tc with Config.dop = target }
              else tc
          | _ -> tc)
        cur.Config.tasks
    in
    let cfg = { cur with Config.tasks } in
    if Config.equal cfg cur then None else Morta.propose ~why:"queue_linear" cfg
