(* Throughput Balance with Fusion (Section 6.3.2).

   For the goal "maximize throughput with N threads".  TBF keeps a moving
   average of each task's throughput (Decima provides it) and, when invoked,
   assigns each parallel task a DoP inversely proportional to its average
   per-instance throughput — equivalently, proportional to its average
   execution time, the intuition of Figure 5.9 — under the global constraint
   sum(dP_i) <= N.

   If the ratio between the fastest and slowest task throughputs exceeds
   [imbalance] (paper: 0.5, i.e. slowest < half of the mean), TBF switches
   the region to a registered *fused* scheme in which the parallel stages
   have been collapsed into a single parallel task (Figure 6.2(b)),
   avoiding the inefficiency of an unbalanced pipeline. *)

module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Region = Parcae_runtime.Region
module Decima = Parcae_runtime.Decima
module Morta = Parcae_runtime.Morta

(* Proportional DoP assignment (the mechanism of Figure 5.9): give each
   parallel task of descriptor [pd] a share of [navail] threads proportional
   to its measured per-instance execution time. *)
let proportional_dops pd decima navail =
  let tasks = Array.of_list pd.Task.tasks in
  let times =
    Array.mapi
      (fun i task ->
        if task.Task.ttype = Task.Par then Float.max 1.0 (Decima.exec_time decima i) else 0.0)
      tasks
  in
  let total = Array.fold_left ( +. ) 0.0 times in
  Array.mapi
    (fun i task ->
      if task.Task.ttype = Task.Seq then 1
      else if total <= 0.0 then 1
      else max 1 (int_of_float (Float.round (float_of_int navail *. times.(i) /. total))))
    tasks

(* Measured imbalance across parallel tasks: (max - min) / max of per-stage
   execution times; 0 when balanced.  In a steady pipeline every stage
   *processes* items at the same rate, so imbalance must be judged on how
   unequal the stages' work is — a 16 ms stage next to 1 ms stages is the
   "heavily unbalanced" pipeline whose inefficiency fusion avoids. *)
let imbalance_of pd decima =
  let times =
    List.mapi (fun i task -> (i, task)) pd.Task.tasks
    |> List.filter_map (fun (i, task) ->
           if task.Task.ttype = Task.Par then Some (Decima.exec_time decima i) else None)
  in
  match times with
  | [] | [ _ ] -> 0.0
  | t :: rest ->
      let lo = List.fold_left Float.min t rest and hi = List.fold_left Float.max t rest in
      if hi <= 0.0 then 0.0 else (hi -. lo) /. hi

(* [fused_choice], if given, is the index of the scheme with collapsed
   parallel stages; [warmup] instances must complete before TBF acts. *)
let make ?fused_choice ?(imbalance = 0.5) ?(warmup = 30) () : Morta.mechanism =
 fun region ->
  let decima = Region.decima region in
  let pd = Region.scheme region in
  let cur = Region.config region in
  let budget = Region.budget region in
  (* Wait until every task has enough history to be ranked. *)
  let n_tasks = Task.arity pd in
  let ready =
    let rec check i = i >= n_tasks || (Decima.iters decima i >= warmup && check (i + 1)) in
    check 0
  in
  if not ready then None
  else begin
    let fuse =
      match fused_choice with
      | Some c when c <> cur.Config.choice && imbalance_of pd decima > imbalance -> Some c
      | _ -> None
    in
    match fuse with
    | Some choice ->
        (* Switch to the fused scheme, all spare threads on its parallel
           task. *)
        let fused_pd = List.nth region.Region.schemes choice in
        let seqs =
          List.length (List.filter (fun t -> t.Task.ttype = Task.Seq) fused_pd.Task.tasks)
        in
        let navail = max 1 (budget - seqs) in
        let tasks =
          List.map
            (fun t -> if t.Task.ttype = Task.Seq then Config.seq_task else Config.task navail)
            fused_pd.Task.tasks
        in
        Morta.propose ~why:"fused_switch" { (Config.make tasks) with Config.choice }
    | None ->
        let seqs = List.length (List.filter (fun t -> t.Task.ttype = Task.Seq) pd.Task.tasks) in
        let navail = max 1 (budget - seqs) in
        let dops = proportional_dops pd decima navail in
        let tasks =
          Array.mapi (fun i tc -> { tc with Config.dop = dops.(i) }) cur.Config.tasks
        in
        let cfg = { cur with Config.tasks } in
        if Config.equal cfg cur then None else Morta.propose ~why:"proportional_rebalance" cfg
  end
