(* Throughput-Power Controller (Section 6.3.3).

   For the goal "maximize throughput with N threads and P watts".  TPC is
   closed-loop in both throughput and power:

   - Ramp: while the measured power is under the target, grow the DoP of the
     task with the least throughput (like FDP), keeping grants that improve
     throughput.
   - On overshoot: back off to the previous total DoP and explore
     alternative distributions of the same total, keeping the
     best-throughput configuration seen within budget (the exploration
     transient visible in Figure 8.7).
   - Stable: keep monitoring; a power or throughput excursion re-enters the
     ramp.

   Power readings come from the platform power sensor, whose limited
   sampling rate (the AP7892's 13 samples/minute) bounds how fast overshoot
   can be detected — the controller is deliberately no faster than its
   sensor. *)

module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Region = Parcae_runtime.Region
module Decima = Parcae_runtime.Decima
module Morta = Parcae_runtime.Morta
module Power = Parcae_sim.Power

type phase =
  | Start
  | Ramp of { prev : Config.t option; prev_thr : float }
  | Explore of { candidates : Config.t list; best : (Config.t * float) option }
  | Stable of { thr : float; power : float }

type state = { mutable phase : phase; mutable snap : Decima.snapshot option }

let output_rate region snap =
  let d = Region.decima region in
  Decima.rate_since d snap (Decima.task_count d - 1)

let parallel_indices pd =
  List.mapi (fun i t -> (i, t)) pd.Task.tasks
  |> List.filter (fun (_, t) -> t.Task.ttype = Task.Par)
  |> List.map fst

(* Per-stage service capacity dop / exec_time; the limiter is its minimum
   (see the note in Fdp). *)
let capacity region cfg i =
  let d = Region.decima region in
  let t = Decima.exec_time d i in
  if t <= 0.0 then infinity else float_of_int (Config.dops cfg).(i) /. t

let limiter region =
  let cfg = Region.config region in
  match parallel_indices (Region.scheme region) with
  | [] -> None
  | par ->
      Some
        (List.fold_left
           (fun best i -> if capacity region cfg i < capacity region cfg best then i else best)
           (List.hd par) par)

let total_dop cfg = Array.fold_left ( + ) 0 (Config.dops cfg)

(* Alternative configurations with the same total DoP: move one thread from
   each donor task to each receiver task. *)
let same_total_alternatives region cfg =
  let par = parallel_indices (Region.scheme region) in
  List.concat_map
    (fun from_i ->
      List.filter_map
        (fun to_i ->
          if from_i = to_i || (Config.dops cfg).(from_i) <= 1 then None
          else
            let c = Config.with_dop cfg from_i ((Config.dops cfg).(from_i) - 1) in
            Some (Config.with_dop c to_i ((Config.dops c).(to_i) + 1)))
        par)
    par

let make ~sensor ~target_watts () : Morta.mechanism =
  let st = { phase = Start; snap = None } in
  fun region ->
    let d = Region.decima region in
    let cur = Region.config region in
    let thr = match st.snap with None -> 0.0 | Some s -> output_rate region s in
    st.snap <- Some (Decima.snapshot d);
    let power = Power.read sensor in
    match st.phase with
    | Start ->
        let tasks = Array.map (fun tc -> { tc with Config.dop = 1 }) cur.Config.tasks in
        st.phase <- Ramp { prev = None; prev_thr = 0.0 };
        Morta.propose ~why:"power_reset" { cur with Config.tasks }
    | Ramp { prev; prev_thr } ->
        if power > target_watts then begin
          (* Overshoot: back off one thread and explore redistributions of
             the reduced total. *)
          let back =
            match prev with Some p -> p | None -> cur
          in
          st.phase <- Explore { candidates = same_total_alternatives region back; best = None };
          Morta.propose ~why:"power_overshoot" back
        end
        else if prev <> None && thr < prev_thr then begin
          st.phase <- Stable { thr = prev_thr; power };
          match prev with Some p -> Morta.propose ~why:"power_revert" p | None -> None
        end
        else begin
          match limiter region with
          | None ->
              st.phase <- Stable { thr; power };
              None
          | Some lim ->
              if total_dop cur < Region.budget region then begin
                st.phase <- Ramp { prev = Some cur; prev_thr = thr };
                Morta.propose ~why:"power_ramp"
                  (Config.with_dop cur lim ((Config.dops cur).(lim) + 1))
              end
              else begin
                st.phase <- Stable { thr; power };
                None
              end
        end
    | Explore { candidates; best } -> (
        (* Score the configuration that just ran. *)
        let best =
          if power <= target_watts then
            match best with
            | Some (_, bt) when bt >= thr -> best
            | _ -> Some (cur, thr)
          else best
        in
        match candidates with
        | next :: rest ->
            st.phase <- Explore { candidates = rest; best };
            Morta.propose ~why:"power_explore" next
        | [] -> (
            match best with
            | Some (cfg, bthr) ->
                st.phase <- Stable { thr = bthr; power };
                if Config.equal cfg cur then None else Morta.propose ~why:"power_adopt" cfg
            | None ->
                st.phase <- Stable { thr; power };
                None))
    | Stable { thr = sthr; power = spower } ->
        if power > target_watts then begin
          (* Shed a thread from the fastest task to get back under budget;
             stay in the stable state — re-ramping after every shed would
             oscillate around the power target. *)
          let par = parallel_indices (Region.scheme region) in
          let shrinkable = List.filter (fun i -> (Config.dops cur).(i) > 1) par in
          match shrinkable with
          | [] -> None
          | i :: _ ->
              st.phase <- Stable { thr = sthr; power = spower };
              Morta.propose ~why:"power_shed" (Config.with_dop cur i ((Config.dops cur).(i) - 1))
        end
        else if sthr > 0.0 && thr > 0.0 && abs_float (thr -. sthr) /. sthr > 0.5 then begin
          (* Throughput moved a lot: workload changed, re-ramp. *)
          st.phase <- Ramp { prev = None; prev_thr = 0.0 };
          None
        end
        else None
