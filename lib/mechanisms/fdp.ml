(* Feedback-Directed Pipelining (Suleman et al.), as re-implemented on the
   Parcae API (Section 6.3.2).

   FDP is proportional closed-loop control: starting from one thread per
   task, it repeatedly identifies the LIMITER task (lowest throughput),
   grants it one more thread, measures whether overall throughput improved,
   and keeps or reverts the grant.  When no free threads remain it frees one
   by shrinking the fastest task with DoP > 1 (the paper's FDP
   time-multiplexes the two fastest tasks on one thread; our executor
   models that as reclaiming a thread from the fastest task).  It converges
   when no grant improves throughput. *)

module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Region = Parcae_runtime.Region
module Decima = Parcae_runtime.Decima
module Morta = Parcae_runtime.Morta

type phase =
  | Start  (* reset every task to DoP 1 *)
  | Settle of { prev : Config.t option; prev_thr : float; granted : int }
      (* a trial configuration was just applied; the measurement window that
         ends now includes the pause/drain transient, so discard it and
         judge the trial on the next, clean window *)
  | Measure of { prev : Config.t option; prev_thr : float; granted : int }
      (* a trial configuration is running; judge it on this tick *)
  | Stable

type state = {
  mutable phase : phase;
  mutable last_snapshot : Decima.snapshot option;
}

let output_rate region snap =
  let d = Region.decima region in
  Decima.rate_since d snap (Decima.task_count d - 1)

let parallel_indices pd =
  List.mapi (fun i t -> (i, t)) pd.Task.tasks
  |> List.filter (fun (_, t) -> t.Task.ttype = Task.Par)
  |> List.map fst

(* The LIMITER: the parallel task with the lowest processing *capacity*.
   In a steady pipeline every stage completes items at the same rate, so
   the limiter must be identified from per-stage service capacity
   dop / exec_time, not from observed completion rates. *)
let capacity region cfg i =
  let d = Region.decima region in
  let t = Decima.exec_time d i in
  if t <= 0.0 then infinity else float_of_int (Config.dops cfg).(i) /. t

let total_dop cfg = Array.fold_left ( + ) 0 (Config.dops cfg)

(* The highest-capacity parallel task currently holding more than one
   thread: the donor when threads must be reclaimed. *)
let fastest_shrinkable region =
  let pd = Region.scheme region in
  let cfg = Region.config region in
  parallel_indices pd
  |> List.filter (fun i -> (Config.dops cfg).(i) > 1)
  |> List.fold_left
       (fun best i ->
         match best with
         | None -> Some i
         | Some b -> if capacity region cfg i > capacity region cfg b then Some i else best)
       None

(* The limiter among tasks not yet marked as failed grant targets. *)
let limiter_excluding region failed =
  let pd = Region.scheme region in
  let cfg = Region.config region in
  match List.filter (fun i -> not (Hashtbl.mem failed i)) (parallel_indices pd) with
  | [] -> None
  | par ->
      Some
        (List.fold_left
           (fun best i -> if capacity region cfg i < capacity region cfg best then i else best)
           (List.hd par) par)

let make ?(tolerance = 0.98) ?(max_flat = 8) () : Morta.mechanism =
  let st = { phase = Start; last_snapshot = None } in
  (* Tasks whose last grant made things worse; cleared on any clear
     improvement so a changed workload re-opens them. *)
  let failed : (int, unit) Hashtbl.t = Hashtbl.create 7 in
  let flat_streak = ref 0 in
  fun region ->
    let d = Region.decima region in
    let cur = Region.config region in
    let thr = match st.last_snapshot with None -> 0.0 | Some s -> output_rate region s in
    st.last_snapshot <- Some (Decima.snapshot d);
    let try_grant prev_thr =
      match limiter_excluding region failed with
      | None ->
          st.phase <- Stable;
          None
      | Some lim ->
          let budget = Region.budget region in
          if total_dop cur < budget then begin
            st.phase <- Settle { prev = Some cur; prev_thr; granted = lim };
            Morta.propose ~why:"limiter_grant"
              (Config.with_dop cur lim ((Config.dops cur).(lim) + 1))
          end
          else begin
            (* No free threads: reclaim one from the fastest task. *)
            match fastest_shrinkable region with
            | Some f when f <> lim ->
                let cfg = Config.with_dop cur f ((Config.dops cur).(f) - 1) in
                let cfg = Config.with_dop cfg lim ((Config.dops cfg).(lim) + 1) in
                st.phase <- Settle { prev = Some cur; prev_thr; granted = lim };
                Morta.propose ~why:"limiter_grant" cfg
            | _ ->
                st.phase <- Stable;
                None
          end
    in
    match st.phase with
    | Start ->
        (* Single thread per task. *)
        let tasks = Array.map (fun tc -> { tc with Config.dop = 1 }) cur.Config.tasks in
        st.phase <- Settle { prev = None; prev_thr = 0.0; granted = -1 };
        Morta.propose ~why:"limiter_reset" { cur with Config.tasks }
    | Stable -> None
    | Settle { prev; prev_thr; granted } ->
        (* Discard the transient window; judge on the next tick. *)
        st.phase <- Measure { prev; prev_thr; granted };
        None
    | Measure { prev; prev_thr; granted } ->
        if prev <> None && thr < tolerance *. prev_thr then begin
          (* The last grant hurt: revert, mark its target, and keep hunting
             among the remaining candidates on the next tick. *)
          if granted >= 0 then Hashtbl.replace failed granted ();
          st.phase <- Settle { prev = None; prev_thr = 0.0; granted = -1 };
          match prev with Some p -> Morta.propose ~why:"limiter_revert" p | None -> None
        end
        else begin
          (* Improvement clears the failure memory; a plateau keeps it and
             counts toward convergence. *)
          if prev_thr > 0.0 && thr > 1.02 *. prev_thr then begin
            Hashtbl.reset failed;
            flat_streak := 0
          end
          else incr flat_streak;
          if !flat_streak >= max_flat then begin
            st.phase <- Stable;
            None
          end
          else try_grant thr
        end
