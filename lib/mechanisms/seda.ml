(* Stage Event-Driven Architecture thread-pool sizing (Welsh et al.), as
   re-implemented on the Parcae API (Section 6.3.2).

   Each task adjusts its DoP locally, without coordinating with the other
   tasks: when its input-queue occupancy exceeds [threshold], it adds one
   thread, up to [max_per_stage].  Because control is local and open-loop,
   the total thread count can exceed the platform budget — the resulting
   oversubscription (handled by the OS scheduler) is exactly the behaviour
   the paper contrasts with TBF's globally coordinated allocation
   (Table 8.5). *)

module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Region = Parcae_runtime.Region
module Morta = Parcae_runtime.Morta

let make ?(threshold = 8.0) ?(max_per_stage = 24) () : Morta.mechanism =
 fun region ->
  let pd = Region.scheme region in
  let cur = Region.config region in
  let tasks = Array.of_list pd.Task.tasks in
  let changed = ref false in
  let new_tasks =
    Array.mapi
      (fun i tc ->
        if tasks.(i).Task.ttype <> Task.Par then tc
        else
          match tasks.(i).Task.load with
          | None -> tc
          | Some load ->
              if load () > threshold && tc.Config.dop < max_per_stage then begin
                changed := true;
                { tc with Config.dop = tc.Config.dop + 1 }
              end
              else tc)
      cur.Config.tasks
  in
  if !changed then Morta.propose ~why:"queue_threshold" { cur with Config.tasks = new_tasks }
  else None
