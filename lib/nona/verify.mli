(** Static legality verification of parallelization plans.

    Re-derives, from the loop and its PDG, the proof obligations each
    execution scheme must discharge, and checks an emitted plan against
    them.  The verifier trusts the PDG's dependence {e edges} but not its
    relax annotations nor the partitioners: relaxation legitimacy
    (induction, reduction, commutativity) is re-established from the loop
    itself, so a corrupted tag or a buggy code generator cannot smuggle a
    race past the check.

    Diagnostic code ranges: [V0xx] PDG integrity, [V1xx] DOANY, [V2xx]
    DOACROSS, [V3xx] PS-DSWP/MTCG. *)

open Parcae_analysis
open Parcae_pdg

type scheme =
  | Seq
  | Doany of Doany.plan
  | Doacross of Doacross.plan
  | Psdswp of Mtcg.pipeline

val scheme_name : scheme -> string

exception Illegal_plan of string * Diag.t list
(** Raised by {!check_or_raise} (and the compiler) when a plan fails
    verification: scheme name and the sorted diagnostics. *)

val pdg_integrity : Pdg.t -> Diag.t list
(** [V001]: a dependence annotated relaxable that the loop does not
    justify relaxing; [V002]: an edge referencing a non-existent node. *)

val plan : Pdg.t -> scheme -> Diag.t list
(** The scheme-specific obligations, sorted.  Empty for [Seq]. *)

val check_or_raise : Pdg.t -> scheme -> unit
(** Run {!pdg_integrity} and {!plan}; raise {!Illegal_plan} on any
    error. *)
