(* The Nona compiler driver (Section 3.2, Figure 3.2).

   compile: build the PDG of the region, profile it, form the DAG_SCC,
   apply each parallelizer (DOANY, PS-DSWP), and package the applicable
   versions — always including the sequential one — as the region's
   schemes.

   launch: instantiate the flexible code on a simulated platform as a
   Parcae region whose configuration (scheme choice and DoP vector) the
   Morta runtime can change during execution; the on_reset callback
   implements the epoch switch of the channel-arbitration protocol.

   result: extract the observable outcome of a finished run in the same
   shape the reference interpreter produces, so semantics preservation can
   be checked. *)

open Parcae_ir
open Parcae_pdg
module Engine = Parcae_platform.Engine
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Region = Parcae_runtime.Region
module Executor = Parcae_runtime.Executor

type compiled = {
  loop : Loop.t;
  pdg : Pdg.t;
  scc : Scc.t;
  profile : float array;
  doany : Doany.plan option;
  pipeline : Mtcg.pipeline option;
  doacross : Doacross.plan option;
}

(* The schemes of a compiled loop, as the verifier sees them. *)
let schemes c =
  [ Verify.Seq ]
  @ (match c.doany with Some p -> [ Verify.Doany p ] | None -> [])
  @ (match c.doacross with Some p -> [ Verify.Doacross p ] | None -> [])
  @ match c.pipeline with Some p -> [ Verify.Psdswp p ] | None -> []

(* Compile a loop: dependence analysis, profiling, and all applicable
   parallelizations. *)
let compile ?(profile_iters = 40) ?(verify = true) (loop : Loop.t) =
  Loop.validate loop;
  let pdg = Pdg.build loop in
  (* Profile a truncated run to estimate per-node weights (Section 4.3.2's
     "latency and execution profile weight"). *)
  let profile = Array.make (Array.length (Loop.nodes loop)) 1.0 in
  let truncated =
    match loop.Loop.trip with
    | Loop.Count n -> { loop with Loop.trip = Loop.Count (min n profile_iters) }
    | Loop.While -> loop
  in
  (try ignore (Interp.run ~profile ~max_iters:profile_iters truncated)
   with _ -> () (* profiling must never block compilation *));
  let scc = Scc.build ~weights:profile pdg in
  let doany = Doany.make_plan pdg in
  let pipeline =
    match Psdswp.partition scc with
    | None -> None
    | Some stages ->
        (* The execution protocol requires a sequential master stage; loops
           whose first stage would be parallel are fully DOANY-able and are
           served by that scheme instead. *)
        if (List.hd stages).Psdswp.par then None else Some (Mtcg.build pdg stages)
  in
  (* DOACROSS is the fallback for loops with hard recurrences; when DOANY
     applies it strictly dominates DOACROSS, so Nona does not emit both. *)
  let doacross =
    if doany = None && Doacross.applicable pdg then Some (Doacross.make_plan pdg) else None
  in
  let c = { loop; pdg; scc; profile; doany; pipeline; doacross } in
  (* Every emitted scheme must pass the independent legality check before
     Nona offers it to the runtime; a failure here is a compiler bug, not
     a property of the input program. *)
  if verify then List.iter (Verify.check_or_raise pdg) (schemes c);
  c

(* Names, in scheme-choice order. *)
let scheme_names c = List.map Verify.scheme_name (schemes c)

type handle = {
  compiled : compiled;
  rs : Flex.t;
  region : Region.t;
  names : string list;
}

(* Index of a named scheme in the region's scheme list. *)
let choice_of handle name =
  let rec find i = function
    | [] -> invalid_arg ("Compiler.choice_of: no scheme " ^ name)
    | n :: rest -> if n = name then i else find (i + 1) rest
  in
  find 0 handle.names

(* Build a configuration for a named scheme with the given DoP for parallel
   tasks. *)
let config_for handle ?(dop = 1) name =
  let choice = choice_of handle name in
  let pd = List.nth handle.region.Region.schemes choice in
  let tasks =
    List.map
      (fun (t : Task.t) -> if t.Task.ttype = Task.Par then Config.task dop else Config.seq_task)
      pd.Task.tasks
  in
  { (Config.make tasks) with Config.choice }

(* Instantiate the compiled loop on [eng] as a reconfigurable region.
   [budget] bounds the maximum DoP (channel matrices are sized to it). *)
let launch ?flags ?(budget = 24) ?(verify = true) ?config ?name eng (c : compiled) =
  (* Re-verify at the trust boundary: [c] may have been assembled or
     edited by hand, and an illegal plan must not reach the executor. *)
  if verify then List.iter (Verify.check_or_raise c.pdg) (schemes c);
  let rs = Flex.create ?flags eng c.pdg in
  let seq_pd = Task.descriptor ~name:"SEQ" [ Flex.make_seq_task rs ] in
  let schemes = ref [ seq_pd ] in
  let names = ref [ "SEQ" ] in
  let doany_hooks = ref None in
  if c.doany <> None then begin
    let task, resize_hook, sync_present = Flex.make_doany_task rs ~max_lanes:budget in
    doany_hooks := Some (resize_hook, sync_present);
    schemes := !schemes @ [ Task.descriptor ~name:"DOANY" [ task ] ];
    names := !names @ [ "DOANY" ]
  end;
  let reset_channels = ref (fun () -> ()) in
  (match c.doacross with
  | None -> ()
  | Some plan ->
      let task, reset_ring = Flex.make_doacross_task rs plan ~max_lanes:budget in
      let prev = !reset_channels in
      reset_channels := (fun () -> prev (); reset_ring ());
      schemes := !schemes @ [ Task.descriptor ~name:"DOACROSS" [ task ] ];
      names := !names @ [ "DOACROSS" ]);
  let psdswp_light = ref false in
  let psdswp_resize = ref (fun (_ : int array) -> ([] : (int * int) list)) in
  let psdswp_sync = ref (fun (_ : int array option) -> ()) in
  (match c.pipeline with
  | None -> ()
  | Some pipe ->
      let tasks, reset, alternating, resize_hook, sync_present =
        Flex.make_psdswp_tasks rs pipe ~max_lanes:budget
      in
      psdswp_light := alternating;
      psdswp_resize := resize_hook;
      psdswp_sync := sync_present;
      let prev = !reset_channels in
      reset_channels := (fun () -> prev (); reset ());
      schemes := !schemes @ [ Task.descriptor ~name:"PS-DSWP" tasks ];
      names := !names @ [ "PS-DSWP" ]);
  let names = !names in
  let region_ref = ref None in
  let choice_named n =
    let rec find i = function [] -> -1 | x :: rest -> if x = n then i else find (i + 1) rest in
    find 0 names
  in
  let psdswp_choice = choice_named "PS-DSWP" in
  let doany_choice = choice_named "DOANY" in
  (* Per-scheme barrier-less resize support (Section 7.2): DOANY lanes
     claim iterations from a shared counter, so resizing is a matter of
     spawning/retiring lanes; alternating PS-DSWP pipelines use the epoch
     protocol; SEQ and DOACROSS fall back to the full pause. *)
  let sync_light_resize r =
    let choice = (Region.config r).Config.choice in
    (* Lane-presence bookkeeping follows the workers the executor is about
       to start for the chosen scheme; the other schemes deactivate. *)
    (match !doany_hooks with
    | Some (_, sync) -> sync (if choice = doany_choice then (Config.dops (Region.config r)).(0) else 0)
    | None -> ());
    !psdswp_sync
      (if choice = psdswp_choice && psdswp_choice >= 0 then Some (Config.dops (Region.config r))
       else None);
    if choice = doany_choice && doany_choice >= 0 then begin
      r.Region.light_resizable <- true;
      r.Region.on_resize <-
        Some
          (fun cfg ->
            match !doany_hooks with Some (resize, _) -> resize (Config.dops cfg) | None -> [])
    end
    else if choice = psdswp_choice && psdswp_choice >= 0 && !psdswp_light then begin
      r.Region.light_resizable <- true;
      r.Region.on_resize <- Some (fun cfg -> !psdswp_resize (Config.dops cfg))
    end
    else begin
      r.Region.light_resizable <- false;
      r.Region.on_resize <- None
    end
  in
  let on_reset () =
    (* Full-pause epoch switch: stamp the iteration at which the new
       configuration takes effect, refresh the DoP vector the channel
       arbitration reads, and clear leftover control tokens. *)
    rs.Flex.epoch <- rs.Flex.epoch + 1;
    rs.Flex.epoch_base <- rs.Flex.next_iter;
    rs.Flex.psdswp_pending <- None;
    (match !region_ref with
    | Some r ->
        (if psdswp_choice >= 0 && (Region.config r).Config.choice = psdswp_choice then begin
           let d = Config.dops (Region.config r) in
           rs.Flex.dops <- d;
           let _, _, id = List.hd rs.Flex.epochs in
           rs.Flex.epochs <- [ (rs.Flex.next_iter, d, id + 1) ]
         end);
        sync_light_resize r
    | None -> ());
    !reset_channels ()
  in
  let initial =
    match config with
    | Some cfg -> cfg
    | None -> Task.default_config seq_pd
  in
  (* Seed the DoP vector for an initial PS-DSWP configuration. *)
  (match c.pipeline with
  | Some _ when psdswp_choice >= 0 && initial.Config.choice = psdswp_choice ->
      let d = Config.dops initial in
      rs.Flex.dops <- d;
      rs.Flex.epochs <- [ (0, d, 0) ]
  | _ -> ());
  let region =
    Executor.launch ~budget
      ~name:(match name with Some n -> n | None -> c.loop.Loop.name)
      eng !schemes initial ~on_reset
  in
  region_ref := Some region;
  sync_light_resize region;
  { compiled = c; rs; region; names }

(* Observable outcome of a finished run, comparable with [Interp.run]. *)
let result handle =
  let rs = handle.rs in
  {
    Interp.arrays = rs.Flex.arrays;
    live_out =
      List.map
        (fun r -> (r, Hashtbl.find rs.Flex.phi_heap r))
        handle.compiled.loop.Loop.live_out;
    externals = Externals.observe rs.Flex.ext;
    iterations = rs.Flex.next_iter;
    work_ns = 0;
  }

(* Compare against the sequential reference, ignoring the cost field. *)
let preserves_semantics handle =
  let reference = Interp.run handle.compiled.loop in
  let actual = { (result handle) with Interp.work_ns = reference.Interp.work_ns } in
  Interp.equal_observable reference actual
