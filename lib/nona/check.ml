(* The `check` diagnostics pass: everything Nona can tell a programmer
   about one loop without running it.

   Combines three sources into one coded, located report:
     - the legality verifier, run over every scheme the compiler emitted
       (clean on a healthy compiler; anything here is a compiler bug);
     - N4xx explanations of why DOANY does not apply, phrased in source
       terms (which access, which array, what reuse distance);
     - the W6xx lints.

   Exit-code contract for the CLI: errors mean the loop (or compiler) is
   broken; warnings and infos are advice. *)

open Parcae_ir
open Parcae_analysis
open Parcae_pdg

type report = {
  loop : Loop.t;
  compiled : Compiler.compiled;
  schemes : string list;
  diags : Diag.t list;
}

let loc_str (pdg : Pdg.t) id =
  match Loop.loc_of pdg.Pdg.loop id with
  | Some l -> Printf.sprintf " (%s)" (Loop.loc_to_string l)
  | None -> ""

let node_str (pdg : Pdg.t) id =
  Loop.node_to_string pdg.Pdg.nodes.(id) ^ loc_str pdg id

(* The array access of a node, if it is one. *)
let access_of (pdg : Pdg.t) id =
  match pdg.Pdg.nodes.(id) with
  | Loop.Instr_node (Instr.Load { arr; idx; _ }) -> Some (arr, idx)
  | Loop.Instr_node (Instr.Store { arr; idx; _ }) -> Some (arr, idx)
  | _ -> None

(* Re-run the index analysis on a memory dependence to recover the reuse
   distance for the explanation. *)
let mem_detail (pdg : Pdg.t) (d : Dep.t) =
  match (access_of pdg d.Dep.src, access_of pdg d.Dep.dst) with
  | Some (arr, i1), Some (_, i2) -> (
      let loop = pdg.Pdg.loop in
      let classify = Alias.classify_index ~facts:pdg.Pdg.facts loop pdg.Pdg.inductions in
      let trip = match loop.Loop.trip with Loop.Count n -> Some n | Loop.While -> None in
      match Alias.conflict ?trip pdg.Pdg.inductions (classify i1) (classify i2) with
      | Alias.Cross_iteration k ->
          Some (arr, Printf.sprintf "%d iteration(s) later" (abs k))
      | _ -> Some (arr, "in some later iteration"))
  | _ -> None

(* Explain one DOANY inhibitor in source terms. *)
let explain_dep (pdg : Pdg.t) (d : Dep.t) =
  let loc = Loop.loc_of pdg.Pdg.loop d.Dep.dst in
  match d.Dep.kind with
  | Dep.Mem_data -> (
      match mem_detail pdg d with
      | Some (arr, dist) ->
          Diag.info ?loc "N401"
            "carried memory dependence on %s[]: %s writes a cell that %s \
             touches %s"
            arr (node_str pdg d.Dep.src) (node_str pdg d.Dep.dst) dist
      | None ->
          Diag.info ?loc "N401" "carried memory dependence from %s to %s"
            (node_str pdg d.Dep.src) (node_str pdg d.Dep.dst))
  | Dep.Call_order ->
      let fn =
        match pdg.Pdg.nodes.(d.Dep.src) with
        | Loop.Instr_node (Instr.Call { fn; _ }) -> fn
        | _ -> "?"
      in
      Diag.info ?loc "N402"
        "calls to '%s'%s must stay in iteration order; mark them commutative \
         if any order is acceptable"
        fn (loc_str pdg d.Dep.src)
  | Dep.Control ->
      let loc = Loop.loc_of pdg.Pdg.loop d.Dep.src in
      Diag.info ?loc "N403"
        "%s makes every later iteration control-dependent on it; only \
         pipeline schemes can tolerate a data-dependent exit"
        (node_str pdg d.Dep.src)
  | Dep.Reg_data ->
      let what =
        if d.Dep.dst < pdg.Pdg.nphis then
          match List.nth_opt pdg.Pdg.loop.Loop.phis d.Dep.dst with
          | Some p -> Printf.sprintf "phi r%d" p.Instr.pdst
          | None -> "a phi"
        else "a register"
      in
      Diag.info ?loc "N404"
        "value recurrence through %s: each iteration consumes the previous \
         iteration's value from %s"
        what (node_str pdg d.Dep.src)

(* Inhibitor edges come in carried pairs (both directions) plus intra
   copies; collapse to one explanation per unordered endpoint pair and
   kind.  A break is control-dependence source for every node, so those
   collapse further to one explanation per break. *)
let dedup_inhibitors deps =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (d : Dep.t) ->
      let key =
        match d.Dep.kind with
        | Dep.Control -> (d.Dep.src, -1, d.Dep.kind)
        | _ -> (min d.Dep.src d.Dep.dst, max d.Dep.src d.Dep.dst, d.Dep.kind)
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    deps

let run (loop : Loop.t) =
  let c = Compiler.compile ~verify:false loop in
  let pdg = c.Compiler.pdg in
  let verifier =
    Verify.pdg_integrity pdg
    @ List.concat_map (Verify.plan pdg) (Compiler.schemes c)
  in
  let inhibitors =
    if c.Compiler.doany = None then
      List.map (explain_dep pdg) (dedup_inhibitors (Doany.inhibitors pdg))
    else []
  in
  let lints = Lint.run ~summary:pdg.Pdg.facts loop in
  {
    loop;
    compiled = c;
    schemes = Compiler.scheme_names c;
    diags = Diag.sort (verifier @ lints @ inhibitors);
  }

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: applicable schemes: %s\n" r.loop.Loop.name
       (String.concat ", " r.schemes));
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d ^ "\n")) r.diags;
  let errors = Diag.count_errors r.diags in
  let warnings =
    List.length (List.filter (fun d -> d.Diag.severity = Diag.Warning) r.diags)
  in
  Buffer.add_string b
    (Printf.sprintf "%d error(s), %d warning(s)\n" errors warnings);
  Buffer.contents b

let to_json r =
  Printf.sprintf "{\"loop\": \"%s\", \"schemes\": [%s], \"diagnostics\": %s}"
    (Diag.json_escape r.loop.Loop.name)
    (String.concat ", "
       (List.map (fun s -> "\"" ^ Diag.json_escape s ^ "\"") r.schemes))
    (Diag.list_to_json r.diags)
