open Parcae_pdg
(* The DOANY parallelization (Section 4.3.1).

   DOANY schedules loop iterations for fully parallel execution,
   synchronizing shared accesses through critical sections.  It applies
   when every loop-carried dependence is relaxable: induction variables
   (recomputed from the iteration number), reductions (privatized and
   merged, Section 7.4), and commutative operations (serialized under a
   global lock — the global locking discipline that guarantees deadlock
   freedom).  Loops with data-dependent exits have a hard carried control
   dependence and are rejected. *)

open Parcae_ir

let applicable (pdg : Pdg.t) =
  (match pdg.Pdg.loop.Loop.trip with Loop.Count _ -> true | Loop.While -> false)
  && Pdg.doany_inhibitors pdg = []

(* The dependencies Nona would report to the programmer as parallelization
   inhibitors (Section 3.2's "Report Inhibiting Dependencies"). *)
let inhibitors = Pdg.doany_inhibitors

(* The artifacts the scheme relies on at runtime, recorded explicitly so
   the legality verifier can check them instead of trusting the code
   generator: which opaque functions go under the global commutativity
   lock, and which reductions are privatized and merged. *)
type plan = {
  serialized_fns : string list;  (* sorted, distinct *)
  privatized : Pdg.reduction list;
}

let make_plan (pdg : Pdg.t) =
  if not (applicable pdg) then None
  else
    let fns =
      List.filter_map
        (function Instr.Call { fn; _ } -> Some fn | _ -> None)
        pdg.Pdg.loop.Loop.body
      |> List.sort_uniq compare
    in
    Some { serialized_fns = fns; privatized = pdg.Pdg.reductions }
