(** The DOANY parallelization test (the paper's Section 4.3.1): iterations
    run fully parallel with commutative operations in critical sections,
    induction variables recomputed, and reductions privatized.  Applies
    when every loop-carried dependence is relaxable and the loop is
    counted. *)

open Parcae_pdg

val applicable : Pdg.t -> bool

val inhibitors : Pdg.t -> Dep.t list
(** The dependencies Nona would report to the programmer as
    parallelization inhibitors (the paper's Figure 3.2 workflow). *)

type plan = {
  serialized_fns : string list;
      (** opaque functions serialized under the global commutativity lock
          (sorted, distinct) *)
  privatized : Pdg.reduction list;  (** reductions privatized and merged *)
}
(** The runtime obligations of the scheme, recorded explicitly so the
    legality verifier can check them instead of trusting the code
    generator. *)

val make_plan : Pdg.t -> plan option
(** [Some plan] iff {!applicable}. *)
