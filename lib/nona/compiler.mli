(** The Nona compiler driver (the paper's Section 3.2, Figure 3.2):
    dependence analysis, profiling, DAG_SCC, DOANY and PS-DSWP
    parallelization, and instantiation of the flexible code on a simulated
    platform as a Morta-reconfigurable region. *)

open Parcae_ir
open Parcae_pdg

type compiled = {
  loop : Loop.t;
  pdg : Pdg.t;
  scc : Scc.t;
  profile : float array;  (** profiled per-node weights *)
  doany : Doany.plan option;
  pipeline : Mtcg.pipeline option;
  doacross : Doacross.plan option;
      (** emitted only when DOANY does not apply (it dominates DOACROSS) *)
}

val compile : ?profile_iters:int -> ?verify:bool -> Loop.t -> compiled
(** Compile the loop and statically verify every emitted scheme (disable
    with [~verify:false]).
    @raise Verify.Illegal_plan when a produced plan fails the legality
    check — a compiler bug, not a property of the input program. *)

val schemes : compiled -> Verify.scheme list
(** The emitted schemes in choice order, always starting with
    [Verify.Seq]. *)

val scheme_names : compiled -> string list
(** Names in scheme-choice order: always ["SEQ"], plus ["DOANY"],
    ["DOACROSS"] and/or ["PS-DSWP"] when applicable. *)

type handle = {
  compiled : compiled;
  rs : Flex.t;
  region : Parcae_runtime.Region.t;
  names : string list;
}

val choice_of : handle -> string -> int
(** Scheme-choice index of a named scheme.
    @raise Invalid_argument if absent. *)

val config_for : handle -> ?dop:int -> string -> Parcae_core.Config.t
(** A configuration for the named scheme with the given DoP on every
    parallel task (default 1). *)

val launch :
  ?flags:Flex.flags ->
  ?budget:int ->
  ?verify:bool ->
  ?config:Parcae_core.Config.t ->
  ?name:string ->
  Parcae_platform.Engine.t ->
  compiled ->
  handle
(** Instantiate the compiled loop as a reconfigurable region.  [budget]
    bounds the maximum DoP (channel matrices are sized to it); the initial
    configuration defaults to sequential.  The schemes are re-verified at
    this trust boundary (disable with [~verify:false]).
    @raise Verify.Illegal_plan when a scheme fails the legality check. *)

val result : handle -> Interp.result
(** Observable outcome of a finished run (its [work_ns] is 0). *)

val preserves_semantics : handle -> bool
(** Compare against the sequential reference interpreter, ignoring cost. *)
