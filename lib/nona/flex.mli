(** Flexible code generation and execution (the paper's Sections 4.5-4.6):
    lowers a compiled loop onto the Parcae runtime as SEQ / DOANY /
    PS-DSWP task versions over shared run state.

    Key machinery: per-iteration yields to the worker loop; sequential
    tasks' cross-iteration registers saved to/restored from a heap table
    around pauses (per-iteration when the Section 7.1 optimization is
    off); privatized reductions merged at the pause (Section 7.4, or
    per-iteration critical sections when off); PS-DSWP stages on
    point-to-point channel matrices with deterministic round-robin
    iteration arbitration per epoch (Section 7.2's protocol); pause/exit
    tokens travelling in the same channels as data (Section 4.6). *)

open Parcae_ir
open Parcae_pdg

type flags = {
  hoist_state : bool;  (** Section 7.1: hoist phi save/restore out of the loop *)
  privatize_reductions : bool;  (** Section 7.4: privatize-and-merge *)
  heap_op_ns : int;  (** cost of one heap save or restore *)
}

val default_flags : flags
(** All Chapter 7 optimizations on; heap op 40 ns. *)

val identity : Instr.binop -> int
(** Identity element of a reduction operator.
    @raise Invalid_argument for non-reduction operators. *)

(** Message exchanged between pipeline stages.  [Reconf id] is the
    in-band epoch announcement of the barrier-less resize protocol
    (the paper's Section 7.2.2). *)
type msg = Go of int array | Stop_pause | Stop_exit | Reconf of int

(** Shared run state of one launched region.  Exposed so the compiler
    driver can manage epochs and experiments can read progress; fields are
    owned by the generated tasks. *)
type t = {
  loop : Loop.t;
  pdg : Pdg.t;
  eng : Parcae_platform.Engine.t;
  flags : flags;
  nodes : Loop.node array;
  arrays : (string * int array) list;  (** materialized working arrays *)
  ext : Externals.t;
  ext_lock : Parcae_platform.Lock.t;  (** the global commutative-call critical section *)
  red_lock : Parcae_platform.Lock.t;
  phi_heap : (Instr.reg, int) Hashtbl.t;  (** Section 4.5.2's heap state *)
  combine_of : (int, Pdg.reduction) Hashtbl.t;
  trip_n : int option;
  iter_mu : Mutex.t;
      (** guards DOANY's iteration claim (uncontended on the sim, required
          on the native backend's parallel lanes) *)
  mutable next_iter : int;  (** contiguous prefix of executed iterations *)
  mutable exited : bool;  (** a Break_if fired *)
  mutable epoch : int;
  mutable epoch_base : int;  (** iteration number at current epoch start *)
  mutable dops : int array;  (** current per-stage DoPs (PS-DSWP scheme) *)
  mutable epochs : (int * int array * int) list;
      (** (start iteration, per-stage DoPs, id), newest first: the epoch
          table of the barrier-less resize protocol (Section 7.2) *)
  mutable psdswp_pending : int array option;
      (** DoP vector of a requested light resize, stamped by the master *)
  mutable doany_dop : int;  (** current DOANY DoP; excess lanes retire *)
  max_reg : int;
}

val create : ?flags:flags -> Parcae_platform.Engine.t -> Pdg.t -> t

val make_seq_task : t -> Parcae_core.Task.t
(** The sequential version of the region. *)

val make_doany_task :
  t -> max_lanes:int -> Parcae_core.Task.t * (int array -> (int * int) list) * (int -> unit)
(** The DOANY version: a single parallel task claiming iterations from a
    shared counter.  Returns [(task, resize_hook, sync_present)]:
    [resize_hook dops] adjusts the retirement threshold for a barrier-less
    resize and reports the lanes needing fresh workers; [sync_present dop]
    re-synchronizes lane bookkeeping around a full pause (0 deactivates). *)

val make_psdswp_tasks :
  t ->
  Mtcg.pipeline ->
  max_lanes:int ->
  Parcae_core.Task.t list
  * (unit -> unit)
  * bool
  * (int array -> (int * int) list)
  * (int array option -> unit)
(** The PS-DSWP version: the stage tasks, the channel-reset function to
    run between full-pause epochs, whether the pipeline supports
    barrier-less DoP resizes (alternating sequential/parallel networks,
    the paper's Section 7.2), the resize-request hook (stamps the epoch
    request and returns the lanes needing fresh workers), and the
    presence synchronizer for full pauses ([None] deactivates). *)

val make_doacross_task :
  t -> Doacross.plan -> max_lanes:int -> Parcae_core.Task.t * (unit -> unit)
(** The DOACROSS version (an additional parallelizer, Section 3.2 of the
    paper): a single parallel task over a ring of point-to-point channels
    forwarding the hard recurrence values from each iteration to the next;
    the independent part of the body overlaps across lanes.  Returns the
    task and the ring-reset function to run between epochs. *)

val debug : bool ref
(** Temporary protocol tracing (development aid). *)
