(** The [check] diagnostics pass: everything Nona can tell a programmer
    about one loop without running it — legality verification of every
    emitted scheme, [N4xx] explanations (in source terms) of why DOANY
    does not apply, and the [W6xx] lints. *)

open Parcae_ir
open Parcae_analysis
open Parcae_pdg

type report = {
  loop : Loop.t;
  compiled : Compiler.compiled;
  schemes : string list;  (** scheme names in choice order *)
  diags : Diag.t list;  (** sorted: errors, then warnings, then infos *)
}

val explain_dep : Pdg.t -> Dep.t -> Diag.t
(** A source-level explanation of one DOANY-inhibiting dependence
    ([N401] memory, [N402] call order, [N403] control, [N404] register
    recurrence), with reuse distances recomputed by the index analysis. *)

val run : Loop.t -> report

val render : report -> string
(** Human-readable: scheme line, one diagnostic per line, totals. *)

val to_json : report -> string
