(** The race sanitizer's static↔dynamic differential auditor.

    Runs a compiled loop under every emitted scheme with the
    happens-before tracker ({!Parcae_obs.Hb}) installed, then
    cross-checks three claims against each other:

    - {b S701} (error): a dynamic race — two accesses to the same array
      cell, at least one a write, with no happens-before path — observed
      under a plan the legality verifier passed.  The static analysis the
      verifier trusted is unsound for this loop.
    - {b S702} (error): a dynamic same-cell collision between two IR
      nodes for which the PDG records {e no} memory dependence.  The
      alias analysis claimed independence the execution refutes, whether
      or not the accesses raced.
    - {b G711} (info): a PDG memory dependence derived from a
      [May_conflict] alias verdict that never materialized as a same-cell
      collision in any sanitized run — a precision gap, and the
      measurable input for future legal-if-monitored speculative plans.

    Exit-code contract matches [check]: errors mean a soundness
    violation, warnings and infos are advice. *)

open Parcae_ir
open Parcae_analysis

type backend = Sim_backend | Native_backend of int option

type scheme_run = {
  sr_scheme : string;
  sr_dop : int;
  sr_accesses : int;  (** loads/stores checked *)
  sr_tasks : int;  (** tasks the tracker saw *)
  sr_races : Parcae_obs.Hb.pair list;  (** unordered conflicting pairs *)
  sr_collisions : Parcae_obs.Hb.pair list;  (** all same-cell pairs *)
  sr_iterations : int;  (** iterations the run executed *)
  sr_semantics_ok : bool;
}

type report = {
  loop : Loop.t;
  compiled : Compiler.compiled;
  backend : string;
  schemes : string list;
  runs : scheme_run list;
  diags : Diag.t list;
}

val inject_unsound : Compiler.compiled -> Compiler.compiled
(** Simulate an unsound alias analysis: strip every loop-carried memory
    dependence from the PDG and rebuild the scheme plans from the doctored
    graph.  A loop whose DOANY was (rightly) rejected for carried memory
    dependences becomes a verifier-passed DOANY plan that races — the
    fault-injection input the sanitizer must catch with S701. *)

val run_compiled : ?backend:backend -> ?dop:int -> Compiler.compiled -> report
(** Sanitize every emitted scheme of an already-compiled loop.  [dop]
    defaults to 3 — coprime to power-of-two access strides, so aligned
    collision patterns cross lanes under the deterministic simulator. *)

val run : ?backend:backend -> ?dop:int -> ?inject:bool -> Loop.t -> report
(** Compile and sanitize.  [inject] (default false) applies
    {!inject_unsound} first. *)

val render : report -> string
val to_json : report -> string
