(* Flexible code generation and execution (Sections 4.5-4.6).

   This module lowers a compiled loop onto the Parcae runtime: it builds
   the SEQ / DOANY / PS-DSWP versions of the region as Parcae API tasks and
   executes the IR instructions against shared simulated state.  The
   machinery the paper describes is implemented directly:

   - every task yields to the runtime after each iteration (the worker
     loop of Algorithm 2 lives in [Parcae_runtime.Executor]);
   - cross-iteration register state of sequential tasks is saved to /
     restored from a heap table around pauses; with the Section 7.1
     optimization off, the save/restore cost is paid on every iteration;
   - parallel tasks keep no local cross-iteration state: reductions are
     privatized and merged at pause (Section 7.4), or updated under a lock
     per iteration when that optimization is off;
   - PS-DSWP stages communicate over point-to-point channels with
     round-robin iteration arbitration: iteration i of an epoch that began
     at iteration B flows through lane (i - B) mod p of each parallel
     stage, and a DoP change starts a new epoch so the channel selection
     stays deterministic (the protocol of Section 7.2);
   - pause and exit signals propagate down the pipeline as tokens in the
     same channels as data (Section 4.6), so a stage parks only after every
     in-flight iteration reaching it has been processed. *)

open Parcae_ir
open Parcae_pdg
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Task_status = Parcae_core.Task_status
module Hb = Parcae_obs.Hb

type flags = {
  hoist_state : bool;  (* Section 7.1: hoist phi save/restore out of the loop *)
  privatize_reductions : bool;  (* Section 7.4: privatize-and-merge *)
  heap_op_ns : int;  (* cost of one heap save or restore *)
}

let default_flags = { hoist_state = true; privatize_reductions = true; heap_op_ns = 40 }

(* Temporary tracing for protocol debugging. *)
let debug = ref false

(* Identity element of an associative-commutative reduction operator. *)
let identity = function
  | Instr.Add | Instr.Xor | Instr.Or -> 0
  | Instr.Mul -> 1
  | Instr.Min -> max_int
  | Instr.Max -> min_int
  | Instr.And -> -1
  | _ -> invalid_arg "Flex.identity: not a reduction operator"

(* Message exchanged between pipeline stages: one bundle of register values
   per iteration, or a control token.  [Reconf id] is the in-band epoch
   announcement of Section 7.2.2: it sits in each channel's FIFO exactly
   between the last old-epoch item and the first new-epoch item, so a
   consumer that pre-committed to the old channel mapping is woken and
   re-routed without any barrier. *)
type msg = Go of int array | Stop_pause | Stop_exit | Reconf of int

(* Per-worker-lane activation state ("registers and stack" of the task). *)
type lane_state = {
  mutable ls_epoch : int;  (* which epoch this state was initialized for *)
  mutable cursor : int;  (* next iteration this lane will execute *)
  phi_local : (Instr.reg, int) Hashtbl.t;  (* live cross-iteration values *)
  privates : (Instr.reg, int ref) Hashtbl.t;  (* privatized reduction accs *)
  env : int array;  (* per-iteration register file *)
  mutable pending : int;  (* accumulated compute cost not yet charged *)
}

type t = {
  loop : Loop.t;
  pdg : Pdg.t;
  eng : Engine.t;
  flags : flags;
  nodes : Loop.node array;
  arrays : (string * int array) list;
  ext : Externals.t;
  ext_lock : Lock.t;  (* the global commutative-call critical section *)
  red_lock : Lock.t;  (* guards reduction merges / unprivatized updates *)
  phi_heap : (Instr.reg, int) Hashtbl.t;  (* Section 4.5.2's heap state *)
  combine_of : (int, Pdg.reduction) Hashtbl.t;  (* combine node id -> red *)
  trip_n : int option;
  iter_mu : Mutex.t;
      (* guards DOANY's iteration claim: free of contention on the sim
         (cooperative scheduling already makes the claim atomic) but
         required on native, where lanes run on distinct domains *)
  mutable next_iter : int;  (* contiguous prefix of executed iterations *)
  mutable exited : bool;  (* a Break_if fired *)
  mutable epoch : int;
  mutable epoch_base : int;  (* iteration number at current epoch start *)
  mutable dops : int array;  (* current per-stage DoPs (PS-DSWP scheme) *)
  mutable epochs : (int * int array * int) list;
      (* (start iteration, per-stage DoPs, id), newest first: the epoch
         table of the barrier-less resize protocol (Section 7.2) *)
  mutable psdswp_pending : int array option;
      (* DoP vector of a requested light resize, stamped by the master *)
  mutable doany_dop : int;  (* current DOANY DoP; excess lanes retire *)
  max_reg : int;
}

let create ?(flags = default_flags) eng (pdg : Pdg.t) =
  let loop = pdg.Pdg.loop in
  let max_reg =
    let m = ref 0 in
    Array.iter
      (fun n ->
        (match Loop.node_defs n with Some r -> m := max !m r | None -> ());
        List.iter (fun r -> m := max !m r) (Loop.node_uses n))
      (Loop.nodes loop);
    List.iter (fun (p : Instr.phi) -> m := max !m (max p.Instr.pdst p.Instr.carry)) loop.Loop.phis;
    !m
  in
  let phi_heap = Hashtbl.create 8 in
  List.iter
    (fun (p : Instr.phi) ->
      match p.Instr.init with
      | Instr.Const c -> Hashtbl.replace phi_heap p.Instr.pdst c
      | Instr.Reg _ -> invalid_arg "Flex.create: phi init must be a constant")
    loop.Loop.phis;
  let combine_of = Hashtbl.create 4 in
  List.iter (fun r -> Hashtbl.replace combine_of r.Pdg.red_combine r) pdg.Pdg.reductions;
  {
    loop;
    pdg;
    eng;
    flags;
    nodes = Loop.nodes loop;
    arrays = List.map (fun (n, a) -> (n, Array.copy a)) loop.Loop.arrays;
    ext = Externals.create ();
    ext_lock = Lock.create eng "ext";
    red_lock = Lock.create eng "reduction";
    phi_heap;
    combine_of;
    trip_n = (match loop.Loop.trip with Loop.Count n -> Some n | Loop.While -> None);
    iter_mu = Mutex.create ();
    next_iter = 0;
    exited = false;
    epoch = 0;
    epoch_base = 0;
    dops = [||];
    epochs = [];
    psdswp_pending = None;
    doany_dop = max_int;
    max_reg;
  }

let is_reduction_phi rs r = List.exists (fun red -> red.Pdg.red_phi = r) rs.pdg.Pdg.reductions

(* ------------------------------------------------------------------ *)
(* Lane states.                                                        *)
(* ------------------------------------------------------------------ *)

let make_lane_state rs =
  {
    ls_epoch = -1;
    cursor = 0;
    phi_local = Hashtbl.create 8;
    privates = Hashtbl.create 4;
    env = Array.make (rs.max_reg + 1) 0;
    pending = 0;
  }

(* Charge a heap access cost (state save/restore, Section 7.1). *)
let charge_heap rs st n = st.pending <- st.pending + (n * rs.flags.heap_op_ns)

let flush rs st =
  ignore rs;
  if st.pending > 0 then begin
    Engine.compute st.pending;
    st.pending <- 0
  end

(* Load this lane's cross-iteration state from the heap (Tinit). *)
let restore_phis rs st ~owned =
  Hashtbl.reset st.phi_local;
  List.iter (fun r -> Hashtbl.replace st.phi_local r (Hashtbl.find rs.phi_heap r)) owned;
  charge_heap rs st (List.length owned)

(* Write it back (on pause or completion). *)
let save_phis rs st =
  Hashtbl.iter (fun r v -> Hashtbl.replace rs.phi_heap r v) st.phi_local;
  charge_heap rs st (Hashtbl.length st.phi_local)

let reset_privates _rs st ~reds =
  Hashtbl.reset st.privates;
  List.iter
    (fun red -> Hashtbl.replace st.privates red.Pdg.red_phi (ref (identity red.Pdg.red_op)))
    reds

(* Merge privatized reductions into the global heap value. *)
let merge_privates rs st =
  if Hashtbl.length st.privates > 0 then begin
    flush rs st;
    Lock.with_lock rs.red_lock (fun () ->
        Hashtbl.iter
          (fun r acc ->
            let red = List.find (fun red -> red.Pdg.red_phi = r) rs.pdg.Pdg.reductions in
            let v = Hashtbl.find rs.phi_heap r in
            Hashtbl.replace rs.phi_heap r (Instr.eval_binop red.Pdg.red_op v !acc);
            acc := identity red.Pdg.red_op)
          st.privates)
  end

(* ------------------------------------------------------------------ *)
(* Instruction execution.                                              *)
(* ------------------------------------------------------------------ *)

type red_mode =
  | Plain  (* reductions are ordinary phis (sequential execution) *)
  | Private  (* privatized accumulators, merged at park (Section 7.4) *)
  | Locked  (* read-modify-write of the global value under a lock *)

let operand rs st = function
  | Instr.Const c -> c
  | Instr.Reg r ->
      ignore rs;
      st.env.(r)

(* Report a dynamic array access to the installed race sanitizer, tagged
   with the IR node that performed it.  The task id is resolved once per
   iteration (lazily) — an ambient lookup per access would fire a sim
   effect on every load/store. *)
let hb_access hb_task ~write arr idx node =
  match Lazy.force hb_task with
  | Some task -> Hb.on_access ~task ~arr ~idx ~node ~write
  | None -> ()

(* Execute the body instructions among [members] (node ids, ascending) for
   one iteration.  phi nodes are skipped (their values are in [st.env]). *)
let exec_members rs st ~mode members =
  let hb_on = Hb.enabled () in
  let hb_task = lazy (Engine.current_task_id ()) in
  let result = ref `Ok in
  let rec go = function
    | [] -> ()
    | id :: rest ->
        (match rs.nodes.(id) with
        | Loop.Phi_node _ -> ()
        | Loop.Instr_node instr -> (
            st.pending <- st.pending + Instr.base_cost instr;
            match instr with
            | Instr.Binop { dst; op; a; b } -> (
                match (Hashtbl.find_opt rs.combine_of id, mode) with
                | Some red, Private ->
                    (* acc' = acc `op` x on the private accumulator. *)
                    let x =
                      if a = Instr.Reg red.Pdg.red_phi then operand rs st b else operand rs st a
                    in
                    let acc = Hashtbl.find st.privates red.Pdg.red_phi in
                    acc := Instr.eval_binop red.Pdg.red_op !acc x;
                    st.env.(dst) <- !acc
                | Some red, Locked ->
                    let x =
                      if a = Instr.Reg red.Pdg.red_phi then operand rs st b else operand rs st a
                    in
                    flush rs st;
                    Lock.with_lock rs.red_lock (fun () ->
                        (* The shared accumulator's cache line bounces
                           between cores: the read-modify-write holds the
                           lock for two heap accesses (Section 7.4's
                           per-iteration critical section). *)
                        Engine.compute (2 * rs.flags.heap_op_ns);
                        let v = Hashtbl.find rs.phi_heap red.Pdg.red_phi in
                        let v' = Instr.eval_binop red.Pdg.red_op v x in
                        Hashtbl.replace rs.phi_heap red.Pdg.red_phi v';
                        st.env.(dst) <- v')
                | _ -> st.env.(dst) <- Instr.eval_binop op (operand rs st a) (operand rs st b))
            | Instr.Load { dst; arr; idx } ->
                let a = List.assoc arr rs.arrays in
                let i = operand rs st idx in
                if i < 0 || i >= Array.length a then
                  invalid_arg (rs.loop.Loop.name ^ ": load out of bounds");
                if hb_on then hb_access hb_task ~write:false arr i id;
                st.env.(dst) <- a.(i)
            | Instr.Store { arr; idx; v } ->
                let a = List.assoc arr rs.arrays in
                let i = operand rs st idx in
                if i < 0 || i >= Array.length a then
                  invalid_arg (rs.loop.Loop.name ^ ": store out of bounds");
                if hb_on then hb_access hb_task ~write:true arr i id;
                a.(i) <- operand rs st v
            | Instr.Work { amount } -> st.pending <- st.pending + max 0 (operand rs st amount)
            | Instr.Call { dst; fn; arg; _ } ->
                let x = operand rs st arg in
                (* Don't fold the call's cost into the pending buffer: it is
                   spent *inside* the global critical section — the paper's
                   global locking discipline makes commutative calls a
                   serialization point. *)
                st.pending <- st.pending - Instr.base_cost instr;
                flush rs st;
                let v =
                  Lock.with_lock rs.ext_lock (fun () ->
                      Engine.compute (Instr.base_cost instr);
                      Externals.call rs.ext fn x)
                in
                Option.iter (fun d -> st.env.(d) <- v) dst
            | Instr.Break_if { cond } -> if operand rs st cond <> 0 then result := `Break));
        if !result = `Ok then go rest
  in
  go members;
  !result

(* Set up env phi values for an iteration from the lane's local state. *)
let load_phi_env st ~owned = List.iter (fun r -> st.env.(r) <- Hashtbl.find st.phi_local r) owned

(* Advance local phis to their carried values after an iteration. *)
let advance_phis rs st ~owned =
  List.iter
    (fun r ->
      let p = List.find (fun (p : Instr.phi) -> p.Instr.pdst = r) rs.loop.Loop.phis in
      Hashtbl.replace st.phi_local r st.env.(p.Instr.carry))
    owned;
  (* With the Section 7.1 optimization off, the state crosses the heap on
     every iteration: one store and one load per phi. *)
  if not rs.flags.hoist_state then charge_heap rs st (2 * List.length owned)

(* ------------------------------------------------------------------ *)
(* Scheme: SEQ.                                                        *)
(* ------------------------------------------------------------------ *)

let all_phi_regs rs = List.map (fun (p : Instr.phi) -> p.Instr.pdst) rs.loop.Loop.phis
let all_node_ids rs = List.init (Array.length rs.nodes) (fun i -> i)

let make_seq_task rs =
  let st = make_lane_state rs in
  let owned = all_phi_regs rs in
  let park () =
    save_phis rs st;
    flush rs st;
    st.ls_epoch <- -1
  in
  Task.sequential ~name:"seq" (fun ctx ->
      if st.ls_epoch <> rs.epoch then begin
        st.ls_epoch <- rs.epoch;
        restore_phis rs st ~owned
      end;
      if ctx.Task.get_status () = Task_status.Paused then begin
        park ();
        Task_status.Paused
      end
      else if rs.exited || (match rs.trip_n with Some n -> rs.next_iter >= n | None -> false)
      then begin
        park ();
        Task_status.Complete
      end
      else begin
        load_phi_env st ~owned;
        match exec_members rs st ~mode:Plain (all_node_ids rs) with
        | `Break ->
            rs.exited <- true;
            flush rs st;
            park ();
            Task_status.Complete
        | `Ok ->
            advance_phis rs st ~owned;
            rs.next_iter <- rs.next_iter + 1;
            flush rs st;
            Task_status.Iterating
      end)

(* ------------------------------------------------------------------ *)
(* Scheme: DOANY.                                                      *)
(* ------------------------------------------------------------------ *)

let make_doany_task rs ~max_lanes =
  let states = Array.init max_lanes (fun _ -> make_lane_state rs) in
  (* Which lanes currently have a live worker: a light grow must not spawn
     a duplicate for a lane whose previous worker has not exited yet. *)
  let present = Array.make max_lanes false in
  let reds = rs.pdg.Pdg.reductions in
  let mode = if rs.flags.privatize_reductions then Private else Locked in
  let park st =
    merge_privates rs st;
    (* Publish the induction values implied by the claimed prefix. *)
    List.iter
      (fun ii ->
        Hashtbl.replace rs.phi_heap ii.Alias.ind_phi
          (ii.Alias.ind_from + (rs.next_iter * ii.Alias.ind_step)))
      rs.pdg.Pdg.inductions;
    flush rs st;
    st.ls_epoch <- -1
  in
  let task =
    Task.parallel ~name:"doany" (fun ctx ->
      let st = states.(ctx.Task.lane) in
      if st.ls_epoch <> rs.epoch then begin
        st.ls_epoch <- rs.epoch;
        reset_privates rs st ~reds
      end;
      let park st =
        present.(ctx.Task.lane) <- false;
        park st
      in
      if ctx.Task.lane >= rs.doany_dop then begin
        (* A barrier-less shrink (Section 7.2) removed this lane: merge its
           private state (effectful — a concurrent resize may re-add the
           lane meanwhile), then decide for good. *)
        merge_privates rs st;
        flush rs st;
        if ctx.Task.lane >= rs.doany_dop then begin
          present.(ctx.Task.lane) <- false;
          st.ls_epoch <- -1;
          Task_status.Complete
        end
        else begin
          reset_privates rs st ~reds;
          Task_status.Iterating
        end
      end
      else if ctx.Task.get_status () = Task_status.Paused then begin
        park st;
        Task_status.Paused
      end
      else begin
        let n = match rs.trip_n with Some n -> n | None -> assert false in
        (* Claim the next iteration under the claim mutex: on the sim this
           never contends (claims are atomic between effects anyway), but
           on the native backend lanes run on distinct domains and an
           unguarded read-increment would let two lanes execute — and
           race on — the same iteration. *)
        let claimed =
          Mutex.lock rs.iter_mu;
          let i = rs.next_iter in
          if i < n then rs.next_iter <- i + 1;
          Mutex.unlock rs.iter_mu;
          if i < n then Some i else None
        in
        (if !debug then
           Printf.printf "[doany] lane %d tid %s claimed %s\n%!" ctx.Task.lane
             (match Engine.current_task_id () with Some t -> string_of_int t | None -> "?")
             (match claimed with Some i -> string_of_int i | None -> "none"));
        match claimed with
        | None ->
            park st;
            Task_status.Complete
        | Some i -> (
            (* Induction variables are recomputed from the iteration number
               (their carried dependence is relaxed). *)
            List.iter
              (fun ii ->
                st.env.(ii.Alias.ind_phi) <- ii.Alias.ind_from + (i * ii.Alias.ind_step))
              rs.pdg.Pdg.inductions;
            match exec_members rs st ~mode (all_node_ids rs) with
            | `Break -> assert false (* DOANY never applies to While loops *)
            | `Ok ->
                flush rs st;
                Task_status.Iterating)
      end)
  in
  (* Light-resize hook: adjust the retirement threshold and report which
     lanes need fresh workers. *)
  let resize_hook dops =
    rs.doany_dop <- dops.(0);
    let spawns = ref [] in
    for lane = 0 to dops.(0) - 1 do
      if not present.(lane) then begin
        present.(lane) <- true;
        spawns := (0, lane) :: !spawns
      end
    done;
    !spawns
  in
  (* Full-pause synchronization: mark exactly the lanes the executor is
     about to (re)start; [dop = 0] deactivates the scheme. *)
  let sync_present dop =
    rs.doany_dop <- (if dop > 0 then dop else max_int);
    Array.iteri (fun lane _ -> present.(lane) <- lane < dop) present
  in
  (task, resize_hook, sync_present)

(* ------------------------------------------------------------------ *)
(* Scheme: PS-DSWP.                                                    *)
(* ------------------------------------------------------------------ *)

(* Per-stage bookkeeping computed once from the MTCG pipeline. *)
type stage_info = {
  si : int;
  members : int list;
  par : bool;
  owned_phis : Instr.reg list;  (* non-reduction phis whose node is here *)
  owned_reds : Pdg.reduction list;
  in_edges : int list;
  out_edges : int list;
}

(* The PS-DSWP version.  Returns the stage tasks, the channel-reset
   function to run between full-pause epochs, whether the pipeline
   supports barrier-less DoP resizes (it does when every parallel stage
   communicates only with sequential stages — the alternating networks of
   the paper's Figure 7.7), and the resize-request hook.

   Channel arbitration follows the paper's Section 7.2 protocol: all
   round-robin decisions are made by the *sequential* stages from a shared
   epoch table; parallel-stage lanes simply drain their own dedicated
   channels in FIFO order.  On a light resize the master stamps a new
   epoch (start iteration I = its current cursor) and every sequential
   stage emits an in-band [Reconf] token into the old-epoch lanes' channels
   just before its first post-I send, so each consumer observes the
   boundary at exactly the right position in each FIFO — the ordering
   hazard of Figure 7.5 cannot occur, and no stage ever stops. *)
let make_psdswp_tasks rs (pipe : Mtcg.pipeline) ~max_lanes =
  let nstages = Array.length pipe.Mtcg.stages in
  rs.dops <- Array.make nstages 1;
  rs.epochs <- [ (0, Array.make nstages 1, 0) ];
  (* Channel matrix per edge: producer lane x consumer lane. *)
  let chans =
    Array.mapi
      (fun ei _ ->
        Array.init max_lanes (fun a ->
            Array.init max_lanes (fun b ->
                Chan.create ~capacity:8 rs.eng (Printf.sprintf "e%d.%d.%d" ei a b))))
      pipe.Mtcg.edges
  in
  let infos =
    Array.mapi
      (fun si (s : Psdswp.stage) ->
        (* A sequential stage keeps all its phis (reductions included) as
           ordinary local state; a parallel stage must privatize its
           reduction phis and can own no other phi (a hard phi cycle makes
           its SCC sequential). *)
        let stage_phis =
          List.filter_map
            (fun id ->
              match rs.nodes.(id) with Loop.Phi_node p -> Some p.Instr.pdst | _ -> None)
            s.Psdswp.members
        in
        let owned_phis =
          if s.Psdswp.par then
            List.filter (fun r -> not (is_reduction_phi rs r)) stage_phis
          else stage_phis
        in
        let owned_reds =
          if s.Psdswp.par then
            List.filter_map
              (fun r -> List.find_opt (fun red -> red.Pdg.red_phi = r) rs.pdg.Pdg.reductions)
              stage_phis
          else []
        in
        {
          si;
          members = s.Psdswp.members;
          par = s.Psdswp.par;
          owned_phis;
          owned_reds;
          in_edges = pipe.Mtcg.in_edges.(si);
          out_edges = pipe.Mtcg.out_edges.(si);
        })
      pipe.Mtcg.stages
  in
  let seq_stage si = not pipe.Mtcg.stages.(si).Psdswp.par in
  let alternating =
    Array.for_all
      (fun (e : Mtcg.edge) -> seq_stage e.Mtcg.e_from || seq_stage e.Mtcg.e_to)
      pipe.Mtcg.edges
  in
  (* Clear pipeline channels between full-pause epochs; at a legitimate
     park point they contain only leftover control tokens. *)
  let reset_channels () =
    Array.iter
      (fun per_a ->
        Array.iter (fun per_b -> Array.iter (fun ch -> ignore (Chan.drain ch : int)) per_b)
          per_a)
      chans
  in
  (* Epoch lookup (Section 7.2): by the time any stage handles iteration i,
     the master has stamped i's epoch, so the shared table is authoritative. *)
  let epoch_of i =
    match List.find_opt (fun (b, _, _) -> i >= b) rs.epochs with
    | Some e -> e
    | None -> List.nth rs.epochs (List.length rs.epochs - 1)
  in
  let epoch_by_id id = List.find_opt (fun (_, _, eid) -> eid = id) rs.epochs in
  let head_epoch () = List.hd rs.epochs in
  let consumer_lane ei i =
    let e = pipe.Mtcg.edges.(ei) in
    if seq_stage e.Mtcg.e_to then 0
    else begin
      let b, d, _ = epoch_of i in
      (i - b) mod d.(e.Mtcg.e_to)
    end
  in
  let producer_lane ei i =
    let e = pipe.Mtcg.edges.(ei) in
    if seq_stage e.Mtcg.e_from then 0
    else begin
      let b, d, _ = epoch_of i in
      (i - b) mod d.(e.Mtcg.e_from)
    end
  in
  (* Stops are broadcast to every possible consumer lane so that lanes
     spawned by a concurrent resize also drain; extra tokens are cleared by
     [reset_channels]. *)
  let send_stops info ~lane kind =
    let token = match kind with `Pause -> Stop_pause | `Exit -> Stop_exit in
    List.iter
      (fun ei ->
        for b = 0 to max_lanes - 1 do
          Chan.force_send chans.(ei).(lane).(b) token
        done)
      info.out_edges
  in
  (* Emit the in-band epoch announcements into the channels of the lanes of
     the epoch being left behind (one per epoch crossed). *)
  let emit_reconf info ~lane ~from_id ~to_id =
    for eid = from_id to to_id - 1 do
      match epoch_by_id eid with
      | None -> ()
      | Some (_, old_dops, _) ->
          List.iter
            (fun ei ->
              let e = pipe.Mtcg.edges.(ei) in
              let lanes = if seq_stage e.Mtcg.e_to then 1 else old_dops.(e.Mtcg.e_to) in
              for b = 0 to lanes - 1 do
                Chan.force_send chans.(ei).(lane).(b) (Reconf (eid + 1))
              done)
            info.out_edges
    done
  in
  let present = Array.make_matrix nstages max_lanes false in
  let make_stage_task info =
    let states = Array.init max_lanes (fun _ -> make_lane_state rs) in
    (* Highest epoch id this (sequential) stage has announced downstream. *)
    let sent_epoch = ref 0 in
    (* Highest epoch id each (parallel) lane has forwarded downstream. *)
    let forwarded = Array.make max_lanes 0 in
    let mode =
      if not info.par then Plain
      else if rs.flags.privatize_reductions then Private
      else Locked
    in
    let park ?(lane = 0) st =
      present.(info.si).(lane) <- false;
      if not info.par then save_phis rs st;
      merge_privates rs st;
      flush rs st;
      st.ls_epoch <- -1
    in
    let send_bundles st ~lane i =
      List.iter
        (fun ei ->
          let e = pipe.Mtcg.edges.(ei) in
          let vals = Array.of_list (List.map (fun r -> st.env.(r)) e.Mtcg.e_regs) in
          let b = consumer_lane ei i in
          Chan.send chans.(ei).(lane).(b) (Go vals))
        info.out_edges
    in
    (* ---- Sequential stages (the master is stage 0). ---- *)
    let seq_body (ctx : Task.ctx) =
      let st = states.(0) in
      if st.ls_epoch <> rs.epoch then begin
        st.ls_epoch <- rs.epoch;
        let b, _, id = head_epoch () in
        st.cursor <- b;
        sent_epoch := id;
        restore_phis rs st ~owned:info.owned_phis
      end;
      let i = st.cursor in
      (* The master stamps any pending light resize at its own iteration
         boundary: the new epoch begins at I = i. *)
      if info.si = 0 then begin
        match rs.psdswp_pending with
        | Some d ->
            let _, _, id = head_epoch () in
            if !debug then Printf.printf "[%s master] stamp epoch %d at i=%d\n%!" rs.loop.Loop.name (id + 1) i;
            rs.epochs <- (i, d, id + 1) :: rs.epochs;
            rs.dops <- d;
            rs.psdswp_pending <- None
        | None -> ()
      end;
      (* Announce any epoch crossing downstream before this iteration's
         data (the paper's "communicate I to the other tasks"). *)
      let _, _, cur_id = epoch_of i in
      if cur_id > !sent_epoch then begin
        emit_reconf info ~lane:0 ~from_id:!sent_epoch ~to_id:cur_id;
        sent_epoch := cur_id
      end;
      let park_with kind =
        if !debug then
          Printf.printf "[%s seq%d] park %s at i=%d\n%!" rs.loop.Loop.name info.si
            (match kind with `Pause -> "pause" | `Exit -> "exit")
            i;
        send_stops info ~lane:0 kind;
        park st;
        if kind = `Pause then Task_status.Paused else Task_status.Complete
      in
      if info.si = 0 && ctx.Task.get_status () = Task_status.Paused then park_with `Pause
      else if
        info.si = 0 && (rs.exited || match rs.trip_n with Some n -> i >= n | None -> false)
      then park_with `Exit
      else begin
        (* Receive this iteration's bundles (none for the master). *)
        let stop = ref None in
        let rec recv_edge = function
          | [] -> ()
          | ei :: rest -> (
              let a = producer_lane ei i in
              if !debug then
                Printf.printf "[%s seq%d] i=%d edge=%d wait lane %d (epochs=%s)\n%!" rs.loop.Loop.name info.si i ei a
                  (String.concat ";"
                     (List.map (fun (b, d, id) ->
                          Printf.sprintf "(%d,[%s],%d)" b
                            (String.concat "," (Array.to_list (Array.map string_of_int d))) id)
                        rs.epochs));
              match Chan.recv chans.(ei).(a).(0) with
              | Go vals ->
                  List.iteri (fun k r -> st.env.(r) <- vals.(k)) pipe.Mtcg.edges.(ei).Mtcg.e_regs;
                  recv_edge rest
              | Reconf id ->
                  if !debug then Printf.printf "[%s seq%d] i=%d got Reconf %d\n%!" rs.loop.Loop.name info.si i id;
                  (* Epoch boundary: the producer-lane mapping for i may
                     have changed; re-route and receive again. *)
                  recv_edge (ei :: rest)
              | Stop_pause -> stop := Some `Pause
              | Stop_exit -> stop := Some `Exit)
        in
        recv_edge info.in_edges;
        match !stop with
        | Some kind -> park_with kind
        | None -> (
            load_phi_env st ~owned:info.owned_phis;
            match exec_members rs st ~mode info.members with
            | `Break ->
                rs.exited <- true;
                flush rs st;
                park_with `Exit
            | `Ok ->
                advance_phis rs st ~owned:info.owned_phis;
                send_bundles st ~lane:0 i;
                if info.si = 0 then rs.next_iter <- i + 1;
                st.cursor <- i + 1;
                flush rs st;
                Task_status.Iterating)
      end
    in
    (* ---- Parallel stages in an alternating pipeline: each lane owns its
       channels outright and is oblivious to iteration numbering; the
       sequential neighbours do all the arbitration. ---- *)
    let par_body_alternating (ctx : Task.ctx) =
      let lane = ctx.Task.lane in
      let st = states.(lane) in
      if st.ls_epoch <> rs.epoch then begin
        st.ls_epoch <- rs.epoch;
        let _, _, id = head_epoch () in
        forwarded.(lane) <- id;
        reset_privates rs st ~reds:info.owned_reds
      end;
      let forward_token id =
        if id > forwarded.(lane) then begin
          List.iter
            (fun ei -> Chan.force_send chans.(ei).(lane).(0) (Reconf id))
            info.out_edges;
          forwarded.(lane) <- id
        end
      in
      (* Whether some epoch at or after [id] — or a resize not yet
         stamped — still needs this lane.  A lane excluded by epoch k but
         re-added by epoch k+1 must keep running: its channel continues
         directly with the newer epoch's data (no intermediate token is
         addressed to it). *)
      let needed_from id =
        (match rs.psdswp_pending with Some d -> lane < d.(info.si) | None -> false)
        || List.exists (fun (_, d, eid) -> eid >= id && lane < d.(info.si)) rs.epochs
      in
      let stop = ref None and retire = ref false in
      let rec recv_edge = function
        | [] -> ()
        | ei :: rest -> (
            match Chan.recv chans.(ei).(0).(lane) with
            | Go vals ->
                List.iteri (fun k r -> st.env.(r) <- vals.(k)) pipe.Mtcg.edges.(ei).Mtcg.e_regs;
                recv_edge rest
            | Reconf id ->
                if !debug then Printf.printf "[%s par%d.%d] got Reconf %d\n%!" rs.loop.Loop.name info.si lane id;
                forward_token id;
                if needed_from id then recv_edge (ei :: rest) else retire := true
            | Stop_pause -> stop := Some `Pause
            | Stop_exit -> stop := Some `Exit)
      in
      recv_edge info.in_edges;
      if !retire then begin
        (* Provisional retirement: merge private state (an effectful step
           during which a concurrent resize may re-add the lane), then
           decide for good. *)
        merge_privates rs st;
        flush rs st;
        if needed_from 0 then begin
          (* Re-added while retiring: continue as a fresh lane. *)
          reset_privates rs st ~reds:info.owned_reds;
          Task_status.Iterating
        end
        else begin
          present.(info.si).(lane) <- false;
          st.ls_epoch <- -1;
          Task_status.Complete
        end
      end
      else
        match !stop with
        | Some kind ->
            send_stops info ~lane kind;
            park ~lane st;
            if kind = `Pause then Task_status.Paused else Task_status.Complete
        | None -> (
            match exec_members rs st ~mode info.members with
            | `Break -> assert false (* Break_if lives in the master stage *)
            | `Ok ->
                List.iter
                  (fun ei ->
                    let e = pipe.Mtcg.edges.(ei) in
                    let vals = Array.of_list (List.map (fun r -> st.env.(r)) e.Mtcg.e_regs) in
                    Chan.send chans.(ei).(lane).(0) (Go vals))
                  info.out_edges;
                flush rs st;
                Task_status.Iterating)
    in
    (* ---- Parallel stages in a general (non-alternating) pipeline: the
       original cursor-based arbitration; light resizes are disabled, so a
       single epoch is live at any time. ---- *)
    let par_body_general (ctx : Task.ctx) =
      let st = states.(ctx.Task.lane) in
      if st.ls_epoch <> rs.epoch then begin
        st.ls_epoch <- rs.epoch;
        let b, _, _ = head_epoch () in
        st.cursor <- b + ctx.Task.lane;
        reset_privates rs st ~reds:info.owned_reds
      end;
      let i = st.cursor in
      let stop = ref None in
      let rec recv_edge = function
        | [] -> ()
        | ei :: rest -> (
            let a = producer_lane ei i in
            match Chan.recv chans.(ei).(a).(ctx.Task.lane) with
            | Go vals ->
                List.iteri (fun k r -> st.env.(r) <- vals.(k)) pipe.Mtcg.edges.(ei).Mtcg.e_regs;
                recv_edge rest
            | Reconf _ -> recv_edge (ei :: rest) (* never emitted here *)
            | Stop_pause -> stop := Some `Pause
            | Stop_exit -> stop := Some `Exit)
      in
      recv_edge info.in_edges;
      match !stop with
      | Some kind ->
          send_stops info ~lane:ctx.Task.lane kind;
          park ~lane:ctx.Task.lane st;
          if kind = `Pause then Task_status.Paused else Task_status.Complete
      | None -> (
          match exec_members rs st ~mode info.members with
          | `Break -> assert false
          | `Ok ->
              send_bundles st ~lane:ctx.Task.lane i;
              let _, d, _ = head_epoch () in
              st.cursor <- i + d.(info.si);
              flush rs st;
              Task_status.Iterating)
    in
    let body =
      if not info.par then seq_body
      else if alternating then par_body_alternating
      else par_body_general
    in
    Task.create
      ~ttype:(if info.par then Task.Par else Task.Seq)
      ~name:(Printf.sprintf "stage%d%s" info.si (if info.par then "p" else "s"))
      body
  in
  let tasks = Array.to_list (Array.map make_stage_task infos) in
  (* Light-resize hook: request the epoch stamp from the master and report
     which parallel lanes need fresh workers (lanes whose previous worker
     has not retired yet continue into the new epoch). *)
  let resize_hook dops =
    rs.psdswp_pending <- Some dops;
    let spawns = ref [] in
    Array.iteri
      (fun si (stage : Psdswp.stage) ->
        if stage.Psdswp.par then
          for lane = 0 to dops.(si) - 1 do
            if not present.(si).(lane) then begin
              present.(si).(lane) <- true;
              spawns := (si, lane) :: !spawns
            end
          done)
      pipe.Mtcg.stages;
    !spawns
  in
  (* Full-pause synchronization with the lanes the executor (re)starts;
     [None] deactivates the scheme. *)
  let sync_present dops =
    Array.iteri
      (fun si row ->
        Array.iteri
          (fun lane _ ->
            row.(lane) <- (match dops with Some d -> lane < d.(si) | None -> false))
          row)
      present
  in
  (tasks, reset_channels, alternating, resize_hook, sync_present)

(* ------------------------------------------------------------------ *)
(* Scheme: DOACROSS.                                                   *)
(* ------------------------------------------------------------------ *)

(* DOACROSS distributes iterations round-robin over the task's lanes and
   forwards the hard recurrence values point-to-point around a ring:
   the lane executing iteration i receives them from the lane that
   executed i-1 and, after running the recurrence chain, forwards its own
   carries to the lane that will execute i+1.  The independent "pre" part
   of the body runs before the receive, so consecutive iterations overlap;
   the chain length bounds the speedup.

   Pause/exit tokens travel in the same ring: a lane that parks sends the
   token to its successor instead of values, so the whole ring drains in
   one round and the executed iterations always form a contiguous prefix.
   The lane that executed the last iteration of the prefix publishes the
   recurrence values to the heap for the next epoch. *)
let make_doacross_task rs (plan : Doacross.plan) ~max_lanes =
  let ring =
    Array.init max_lanes (fun a ->
        Array.init max_lanes (fun b -> Chan.create ~capacity:4 rs.eng (Printf.sprintf "ring%d.%d" a b)))
  in
  let reset_ring () =
    Array.iter (fun per -> Array.iter (fun ch -> ignore (Chan.drain ch : int)) per) ring
  in
  let states = Array.init max_lanes (fun _ -> make_lane_state rs) in
  (* Highest iteration each lane has fully executed this epoch (-1 none). *)
  let last_done = Array.make max_lanes (-1) in
  let reds = rs.pdg.Pdg.reductions in
  let mode = if rs.flags.privatize_reductions then Private else Locked in
  let carry_regs = List.map (fun (p : Instr.phi) -> p.Instr.carry) plan.Doacross.hard_phis in
  let phi_regs = List.map (fun (p : Instr.phi) -> p.Instr.pdst) plan.Doacross.hard_phis in
  (* Park bookkeeping: publish the carries of the highest executed
     iteration (each lane remembers its own latest). *)
  let park st ~last_iter ~last_carries status =
    merge_privates rs st;
    if last_iter >= 0 && last_iter = rs.next_iter - 1 then begin
      List.iter2 (fun r v -> Hashtbl.replace rs.phi_heap r v) phi_regs last_carries;
      charge_heap rs st (List.length phi_regs)
    end;
    (* Induction values follow the prefix, as in DOANY. *)
    List.iter
      (fun ii ->
        Hashtbl.replace rs.phi_heap ii.Alias.ind_phi
          (ii.Alias.ind_from + (rs.next_iter * ii.Alias.ind_step)))
      rs.pdg.Pdg.inductions;
    flush rs st;
    st.ls_epoch <- -1;
    status
  in
  let task_body (ctx : Task.ctx) =
    let st = states.(ctx.Task.lane) in
    let p = ctx.Task.dop in
    if st.ls_epoch <> rs.epoch then begin
      st.ls_epoch <- rs.epoch;
      st.cursor <- rs.epoch_base + ctx.Task.lane;
      last_done.(ctx.Task.lane) <- -1;
      reset_privates rs st ~reds
    end;
    let i = st.cursor in
    let succ = (ctx.Task.lane + 1) mod p in
    let pred = (ctx.Task.lane + p - 1) mod p in
    let last_iter = last_done.(ctx.Task.lane) in
    let last_carries = List.map (fun r -> st.env.(r)) carry_regs in
    if ctx.Task.get_status () = Task_status.Paused then begin
      Chan.force_send ring.(ctx.Task.lane).(succ) Stop_pause;
      park st ~last_iter ~last_carries Task_status.Paused
    end
    else begin
      let n = match rs.trip_n with Some n -> n | None -> assert false in
      if i >= n then begin
        Chan.force_send ring.(ctx.Task.lane).(succ) Stop_exit;
        park st ~last_iter ~last_carries Task_status.Complete
      end
      else begin
        (* Induction values are recomputed from the iteration number. *)
        List.iter
          (fun ii -> st.env.(ii.Alias.ind_phi) <- ii.Alias.ind_from + (i * ii.Alias.ind_step))
          rs.pdg.Pdg.inductions;
        (* 1. The independent part overlaps across lanes. *)
        (match exec_members rs st ~mode plan.Doacross.pre with
        | `Break -> assert false (* While loops are rejected by applicability *)
        | `Ok -> ());
        flush rs st;
        (* 2. Obtain the recurrence values for this iteration. *)
        let stop = ref None in
        if i = rs.epoch_base then
          List.iter (fun r -> st.env.(r) <- Hashtbl.find rs.phi_heap r) phi_regs
        else begin
          match Chan.recv ring.(pred).(ctx.Task.lane) with
          | Go vals -> List.iteri (fun k r -> st.env.(r) <- vals.(k)) phi_regs
          | Reconf _ -> assert false (* DOACROSS does not light-resize *)
          | Stop_pause -> stop := Some `Pause
          | Stop_exit -> stop := Some `Exit
        end;
        match !stop with
        | Some kind ->
            Chan.force_send ring.(ctx.Task.lane).(succ)
              (match kind with `Pause -> Stop_pause | `Exit -> Stop_exit);
            park st ~last_iter ~last_carries
              (if kind = `Pause then Task_status.Paused else Task_status.Complete)
        | None -> (
            (* 3. The recurrence chain, then forward to the successor. *)
            match exec_members rs st ~mode plan.Doacross.chain with
            | `Break -> assert false
            | `Ok ->
                let vals = Array.of_list (List.map (fun r -> st.env.(r)) carry_regs) in
                Chan.send ring.(ctx.Task.lane).(succ) (Go vals);
                if i + 1 > rs.next_iter then rs.next_iter <- i + 1;
                last_done.(ctx.Task.lane) <- i;
                st.cursor <- i + p;
                flush rs st;
                Task_status.Iterating)
      end
    end
  in
  (Task.create ~ttype:Task.Par ~name:"doacross" task_body, reset_ring)
