(* The static↔dynamic differential auditor over the happens-before race
   sanitizer.

   Each emitted scheme is executed once under an installed Hb tracker;
   the tracker's observed collisions (same-cell access pairs with at
   least one write, attributed to IR nodes) are then compared against the
   static story:

     dynamic race      + verifier passed the plan  -> S701 soundness error
     dynamic collision + no PDG memory dependence  -> S702 soundness error
     PDG May-dependence + no dynamic collision     -> G711 precision gap

   S701 is the headline check: Nona's whole reconfiguration premise rests
   on the verifier's legality judgments, so a single unordered conflicting
   pair under a passed plan means the static alias classification lied.
   S702 catches the same lie even when the backend's schedule happened to
   order the accesses.  G711 measures the opposite failure — conservatism
   — and is the input for future legal-if-monitored speculative plans. *)

open Parcae_ir
open Parcae_analysis
open Parcae_pdg
module Engine = Parcae_platform.Engine
module Machine = Parcae_sim.Machine
module Executor = Parcae_runtime.Executor
module Region = Parcae_runtime.Region
module Hb = Parcae_obs.Hb

type backend = Sim_backend | Native_backend of int option

type scheme_run = {
  sr_scheme : string;
  sr_dop : int;
  sr_accesses : int;
  sr_tasks : int;
  sr_races : Hb.pair list;
  sr_collisions : Hb.pair list;
  sr_iterations : int;
  sr_semantics_ok : bool;
}

type report = {
  loop : Loop.t;
  compiled : Compiler.compiled;
  backend : string;
  schemes : string list;
  runs : scheme_run list;
  diags : Diag.t list;
}

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)
(* ------------------------------------------------------------------ *)

let inject_unsound (c : Compiler.compiled) =
  let pdg = c.Compiler.pdg in
  let deps =
    List.filter
      (fun (d : Dep.t) -> not (d.Dep.kind = Dep.Mem_data && d.Dep.carried))
      pdg.Pdg.deps
  in
  let pdg = { pdg with Pdg.deps } in
  (* Rebuild the plans the lying analysis would produce.  The verifier
     re-derives legality from this same doctored PDG, so the racy DOANY
     passes — exactly the failure mode the sanitizer exists to catch. *)
  { c with Compiler.pdg; doany = Doany.make_plan pdg; pipeline = None; doacross = None }

(* ------------------------------------------------------------------ *)
(* Source attribution.                                                 *)
(* ------------------------------------------------------------------ *)

let loc_str (pdg : Pdg.t) id =
  match Loop.loc_of pdg.Pdg.loop id with
  | Some l -> Printf.sprintf " (%s)" (Loop.loc_to_string l)
  | None -> ""

let node_str (pdg : Pdg.t) id = Loop.node_to_string pdg.Pdg.nodes.(id) ^ loc_str pdg id

let access_of (pdg : Pdg.t) id =
  match pdg.Pdg.nodes.(id) with
  | Loop.Instr_node (Instr.Load { arr; idx; _ }) -> Some (arr, idx)
  | Loop.Instr_node (Instr.Store { arr; idx; _ }) -> Some (arr, idx)
  | _ -> None

(* The static alias verdict for a pair of access nodes. *)
let static_verdict (pdg : Pdg.t) a b =
  match (access_of pdg a, access_of pdg b) with
  | Some (_, i1), Some (_, i2) ->
      let loop = pdg.Pdg.loop in
      let classify = Alias.classify_index ~facts:pdg.Pdg.facts loop pdg.Pdg.inductions in
      let trip = match loop.Loop.trip with Loop.Count n -> Some n | Loop.While -> None in
      Some (Alias.conflict ?trip pdg.Pdg.inductions (classify i1) (classify i2))
  | _ -> None

let verdict_str = function
  | Some Alias.No_conflict -> "no-conflict"
  | Some Alias.Same_iteration -> "same-iteration"
  | Some (Alias.Cross_iteration k) -> Printf.sprintf "cross-iteration(%d)" k
  | Some Alias.May_conflict -> "may-conflict"
  | None -> "not-an-access"

(* ------------------------------------------------------------------ *)
(* One scheme under the tracker.                                       *)
(* ------------------------------------------------------------------ *)

let run_one ~backend ~dop compiled scheme_name =
  let eng =
    match backend with
    | Sim_backend -> Engine.create Machine.xeon_x7460
    | Native_backend pool -> Engine.create_native ?pool ()
  in
  let dop = if scheme_name = "SEQ" then 1 else dop in
  let tr = Hb.create () in
  let h, semantics_ok =
    Hb.with_tracker tr (fun () ->
        let h = Compiler.launch ~budget:(max 8 dop) eng compiled in
        let cfg = Compiler.config_for h ~dop scheme_name in
        let _driver =
          Engine.spawn eng ~name:"sanitize-driver" (fun () ->
              Executor.reconfigure h.Compiler.region cfg;
              Executor.await h.Compiler.region)
        in
        ignore (Engine.run eng : int);
        Engine.shutdown eng;
        (h, Compiler.preserves_semantics h))
  in
  assert (Region.is_done h.Compiler.region);
  let pairs = Hb.pairs tr in
  {
    sr_scheme = scheme_name;
    sr_dop = dop;
    sr_accesses = Hb.access_count tr;
    sr_tasks = Hb.task_count tr;
    sr_races = List.filter (fun (p : Hb.pair) -> p.Hb.p_raced > 0) pairs;
    sr_collisions = pairs;
    sr_iterations = h.Compiler.rs.Flex.next_iter;
    sr_semantics_ok = semantics_ok;
  }

(* ------------------------------------------------------------------ *)
(* The differential.                                                   *)
(* ------------------------------------------------------------------ *)

let pair_key (p : Hb.pair) = (min p.Hb.p_src p.Hb.p_dst, max p.Hb.p_src p.Hb.p_dst)

let diagnose (compiled : Compiler.compiled) runs =
  let pdg = compiled.Compiler.pdg in
  (* Unordered node pairs the PDG connects with a memory dependence. *)
  let mem_pairs = Hashtbl.create 16 in
  List.iter
    (fun (d : Dep.t) ->
      if d.Dep.kind = Dep.Mem_data then
        Hashtbl.replace mem_pairs (min d.Dep.src d.Dep.dst, max d.Dep.src d.Dep.dst) ())
    pdg.Pdg.deps;
  let has_mem_dep a b = Hashtbl.mem mem_pairs (min a b, max a b) in
  let verified scheme =
    Diag.count_errors (Verify.pdg_integrity pdg @ Verify.plan pdg scheme) = 0
  in
  let scheme_of_name name =
    List.find_opt
      (fun s -> Verify.scheme_name s = name)
      (Compiler.schemes compiled)
  in
  let seen = Hashtbl.create 16 in
  let once key d = if Hashtbl.mem seen key then None else (Hashtbl.replace seen key (); Some d) in
  (* S701: raced pair under a verifier-passed plan. *)
  let s701 =
    List.concat_map
      (fun r ->
        let passed =
          match scheme_of_name r.sr_scheme with Some s -> verified s | None -> false
        in
        if not passed then []
        else
          List.filter_map
            (fun (p : Hb.pair) ->
              once
                ("S701", r.sr_scheme, p.Hb.p_arr, pair_key p)
                (Diag.error
                   ?loc:(Loop.loc_of pdg.Pdg.loop p.Hb.p_src)
                   "S701"
                   "soundness violation: %s and %s race on %s[%d] under \
                    verifier-passed %s (tasks %d/%d, %d of %d occurrence(s) \
                    unordered)"
                   (node_str pdg p.Hb.p_src) (node_str pdg p.Hb.p_dst) p.Hb.p_arr
                   p.Hb.p_idx r.sr_scheme p.Hb.p_task_src p.Hb.p_task_dst p.Hb.p_raced
                   p.Hb.p_count))
            r.sr_races)
      runs
  in
  (* S702: observed collision the PDG claims cannot exist. *)
  let s702 =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun (p : Hb.pair) ->
            if has_mem_dep p.Hb.p_src p.Hb.p_dst then None
            else
              once
                ("S702", "", p.Hb.p_arr, pair_key p)
                (Diag.error
                   ?loc:(Loop.loc_of pdg.Pdg.loop p.Hb.p_src)
                   "S702"
                   "soundness violation: %s and %s touched %s[%d] in the same \
                    run (%d time(s) under %s) but the PDG records no memory \
                    dependence between them (static verdict: %s)"
                   (node_str pdg p.Hb.p_src) (node_str pdg p.Hb.p_dst) p.Hb.p_arr
                   p.Hb.p_idx p.Hb.p_count r.sr_scheme
                   (verdict_str (static_verdict pdg p.Hb.p_src p.Hb.p_dst))))
          r.sr_collisions)
      runs
  in
  (* G711: a May-dependence no sanitized run ever saw materialize. *)
  let observed = Hashtbl.create 16 in
  List.iter
    (fun r -> List.iter (fun p -> Hashtbl.replace observed (pair_key p) ()) r.sr_collisions)
    runs;
  let g711 =
    List.filter_map
      (fun (d : Dep.t) ->
        if d.Dep.kind <> Dep.Mem_data then None
        else if static_verdict pdg d.Dep.src d.Dep.dst <> Some Alias.May_conflict then None
        else if Hashtbl.mem observed (min d.Dep.src d.Dep.dst, max d.Dep.src d.Dep.dst)
        then None
        else
          once
            ("G711", "", "", (min d.Dep.src d.Dep.dst, max d.Dep.src d.Dep.dst))
            (Diag.info
               ?loc:(Loop.loc_of pdg.Pdg.loop d.Dep.dst)
               "G711"
               "precision gap: may-dependence between %s and %s never \
                materialized in any sanitized run — a candidate for a \
                legal-if-monitored speculative plan"
               (node_str pdg d.Dep.src) (node_str pdg d.Dep.dst)))
      pdg.Pdg.deps
  in
  Diag.sort (s701 @ s702 @ g711)

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)
(* ------------------------------------------------------------------ *)

let backend_name = function Sim_backend -> "sim" | Native_backend _ -> "native"

(* Default DoP 3: deliberately coprime to the power-of-two strides common
   in kernels, so colliding iterations land on different lanes under the
   deterministic simulator's round-robin claims (64 apart with 4 lanes
   means the same lane touches both cells and the collision is trivially
   ordered). *)
let run_compiled ?(backend = Sim_backend) ?(dop = 3) (compiled : Compiler.compiled) =
  let names = Compiler.scheme_names compiled in
  let runs = List.map (run_one ~backend ~dop compiled) names in
  {
    loop = compiled.Compiler.loop;
    compiled;
    backend = backend_name backend;
    schemes = names;
    runs;
    diags = diagnose compiled runs;
  }

let run ?backend ?dop ?(inject = false) (loop : Loop.t) =
  let c = Compiler.compile ~verify:(not inject) loop in
  let c = if inject then inject_unsound c else c in
  run_compiled ?backend ?dop c

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)
(* ------------------------------------------------------------------ *)

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%s: sanitized schemes (%s backend): %s\n" r.loop.Loop.name r.backend
       (String.concat ", " r.schemes));
  List.iter
    (fun sr ->
      Buffer.add_string b
        (Printf.sprintf
           "  %-9s dop=%-2d iters=%-6d accesses=%-8d tasks=%-3d collisions=%-4d \
            races=%-4d semantics=%s\n"
           sr.sr_scheme sr.sr_dop sr.sr_iterations sr.sr_accesses sr.sr_tasks
           (List.length sr.sr_collisions)
           (List.length sr.sr_races)
           (if sr.sr_semantics_ok then "ok" else "VIOLATED")))
    r.runs;
  List.iter (fun d -> Buffer.add_string b (Diag.to_string d ^ "\n")) r.diags;
  let errors = Diag.count_errors r.diags in
  let warnings =
    List.length (List.filter (fun d -> d.Diag.severity = Diag.Warning) r.diags)
  in
  Buffer.add_string b (Printf.sprintf "%d error(s), %d warning(s)\n" errors warnings);
  Buffer.contents b

let to_json r =
  let run_json sr =
    Printf.sprintf
      "{\"scheme\": \"%s\", \"dop\": %d, \"iterations\": %d, \"accesses\": %d, \
       \"tasks\": %d, \"collision_pairs\": %d, \"race_pairs\": %d, \
       \"semantics_ok\": %b}"
      (Diag.json_escape sr.sr_scheme)
      sr.sr_dop sr.sr_iterations sr.sr_accesses sr.sr_tasks
      (List.length sr.sr_collisions)
      (List.length sr.sr_races)
      sr.sr_semantics_ok
  in
  Printf.sprintf
    "{\"loop\": \"%s\", \"backend\": \"%s\", \"schemes\": [%s], \"runs\": [%s], \
     \"errors\": %d, \"diagnostics\": %s}"
    (Diag.json_escape r.loop.Loop.name)
    (Diag.json_escape r.backend)
    (String.concat ", "
       (List.map (fun s -> "\"" ^ Diag.json_escape s ^ "\"") r.schemes))
    (String.concat ", " (List.map run_json r.runs))
    (Diag.count_errors r.diags)
    (Diag.list_to_json r.diags)
