(* Static legality verification of parallelization plans.

   Nona's partitioners (Doany/Doacross/Psdswp+Mtcg) produce plans; this
   module independently re-derives, from the loop and its PDG, the proof
   obligations each scheme must discharge and checks the emitted plan
   against them.  The verifier trusts the PDG's *edges* (they are the
   dependence ground truth) but not its relax annotations nor anything
   the partitioners computed: relaxation legitimacy (induction, reduction,
   commutativity) is re-established from the loop itself, so a corrupted
   tag or a buggy code generator cannot smuggle a race past the check.

   Diagnostic code ranges:
     V0xx  PDG integrity (bogus relax annotations, dangling edges)
     V1xx  DOANY obligations
     V2xx  DOACROSS obligations
     V3xx  PS-DSWP / MTCG obligations *)

open Parcae_ir
open Parcae_analysis
open Parcae_pdg

type scheme =
  | Seq
  | Doany of Doany.plan
  | Doacross of Doacross.plan
  | Psdswp of Mtcg.pipeline

let scheme_name = function
  | Seq -> "SEQ"
  | Doany _ -> "DOANY"
  | Doacross _ -> "DOACROSS"
  | Psdswp _ -> "PS-DSWP"

exception Illegal_plan of string * Diag.t list

(* ------------------------------------------------------------------ *)
(* Ground truth re-derived from the loop.                              *)

type ground = {
  inds : Alias.induction_info list;
  reds : Pdg.reduction list;
}

let ground (pdg : Pdg.t) =
  let inds = Alias.inductions pdg.Pdg.loop in
  { inds; reds = Pdg.detect_reductions pdg.Pdg.loop inds }

let is_induction_phi g r = List.exists (fun ii -> ii.Alias.ind_phi = r) g.inds
let reduction_of_phi g r = List.find_opt (fun red -> red.Pdg.red_phi = r) g.reds

let node_str (pdg : Pdg.t) id =
  let base = Loop.node_to_string pdg.Pdg.nodes.(id) in
  match Loop.loc_of pdg.Pdg.loop id with
  | Some l -> Printf.sprintf "%s (%s)" base (Loop.loc_to_string l)
  | None -> Printf.sprintf "%s (node %d)" base id

let dep_str pdg (d : Dep.t) =
  Printf.sprintf "%s%s dependence from %s to %s"
    (if d.Dep.carried then "carried " else "")
    (Dep.kind_to_string d.Dep.kind)
    (node_str pdg d.Dep.src) (node_str pdg d.Dep.dst)

let dep_loc (pdg : Pdg.t) (d : Dep.t) =
  match Loop.loc_of pdg.Pdg.loop d.Dep.dst with
  | Some _ as l -> l
  | None -> Loop.loc_of pdg.Pdg.loop d.Dep.src

(* Does the loop itself justify relaxing dependence [d]?  The relax tag
   on the edge is deliberately ignored except as a claim to be checked:
   a Hard tag is always honored (conservative), anything else must be
   re-proved here. *)
let justified_relaxable (pdg : Pdg.t) g (d : Dep.t) =
  d.Dep.relax <> Dep.Hard
  &&
  let phi_at id =
    if id < pdg.Pdg.nphis then Some (List.nth pdg.Pdg.loop.Loop.phis id) else None
  in
  match d.Dep.relax with
  | Dep.Hard -> false
  | Dep.Induction -> (
      (* the carried def-of-carry -> phi edge of a recognized induction *)
      d.Dep.carried && d.Dep.kind = Dep.Reg_data
      &&
      match phi_at d.Dep.dst with
      | Some p ->
          is_induction_phi g p.Instr.pdst
          && Loop.node_defs pdg.Pdg.nodes.(d.Dep.src) = Some p.Instr.carry
      | None -> false)
  | Dep.Reduction -> (
      d.Dep.carried && d.Dep.kind = Dep.Reg_data
      &&
      match phi_at d.Dep.dst with
      | Some p -> (
          match reduction_of_phi g p.Instr.pdst with
          | Some red -> d.Dep.src = red.Pdg.red_combine
          | None -> false)
      | None -> false)
  | Dep.Commutative -> (
      d.Dep.kind = Dep.Call_order
      &&
      match (pdg.Pdg.nodes.(d.Dep.src), pdg.Pdg.nodes.(d.Dep.dst)) with
      | ( Loop.Instr_node (Instr.Call { fn = f1; commutative = c1; _ }),
          Loop.Instr_node (Instr.Call { fn = f2; commutative = c2; _ }) ) ->
          f1 = f2 && c1 && c2
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* PDG integrity.                                                      *)

let pdg_integrity (pdg : Pdg.t) =
  let g = ground pdg in
  let n = Array.length pdg.Pdg.nodes in
  List.concat_map
    (fun (d : Dep.t) ->
      if d.Dep.src < 0 || d.Dep.src >= n || d.Dep.dst < 0 || d.Dep.dst >= n then
        [
          Diag.error "V002" "dependence edge %d -> %d references a node outside the loop"
            d.Dep.src d.Dep.dst;
        ]
      else if d.Dep.relax <> Dep.Hard && not (justified_relaxable pdg g d) then
        [
          Diag.error ?loc:(dep_loc pdg d) "V001"
            "%s is annotated %s but the loop does not justify relaxing it"
            (dep_str pdg d)
            (Dep.relax_to_string d.Dep.relax);
        ]
      else [])
    pdg.Pdg.deps

(* ------------------------------------------------------------------ *)
(* DOANY.                                                              *)

let verify_doany (pdg : Pdg.t) (plan : Doany.plan) =
  let g = ground pdg in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (match pdg.Pdg.loop.Loop.trip with
  | Loop.While ->
      emit
        (Diag.error "V101"
           "DOANY requires a counted loop; '%s' runs until a break fires"
           pdg.Pdg.loop.Loop.name)
  | Loop.Count _ -> ());
  (* Every carried dependence must be provably relaxable: lanes execute
     iterations in arbitrary, overlapping order. *)
  List.iter
    (fun (d : Dep.t) ->
      if d.Dep.carried && not (justified_relaxable pdg g d) then
        emit
          (Diag.error ?loc:(dep_loc pdg d) "V102"
             "%s is not relaxable and would race across DOANY lanes"
             (dep_str pdg d)))
    pdg.Pdg.deps;
  (* Every commutative call must run under the global lock. *)
  Array.iteri
    (fun id n ->
      match n with
      | Loop.Instr_node (Instr.Call { fn; commutative = true; _ }) ->
          if not (List.mem fn plan.Doany.serialized_fns) then
            emit
              (Diag.error
                 ?loc:(Loop.loc_of pdg.Pdg.loop id)
                 "V103"
                 "commutative call to '%s' is not serialized under the \
                  commutativity lock"
                 fn)
      | _ -> ())
    pdg.Pdg.nodes;
  (* Every reduction recurrence must be privatized with its own combine
     operator, and nothing else may be privatized. *)
  List.iter
    (fun (red : Pdg.reduction) ->
      let matching =
        List.exists
          (fun (p : Pdg.reduction) ->
            p.Pdg.red_phi = red.Pdg.red_phi && p.Pdg.red_op = red.Pdg.red_op)
          plan.Doany.privatized
      in
      if not matching then
        emit
          (Diag.error
             ?loc:(Loop.loc_of pdg.Pdg.loop red.Pdg.red_node)
             "V104"
             "reduction over r%d (%s) is not privatized with its combine \
              operator"
             red.Pdg.red_phi
             (Instr.binop_to_string red.Pdg.red_op)))
    g.reds;
  List.iter
    (fun (p : Pdg.reduction) ->
      if not (List.mem p g.reds) then
        emit
          (Diag.error "V105"
             "plan privatizes r%d as a %s-reduction, which the loop does not \
              justify"
             p.Pdg.red_phi
             (Instr.binop_to_string p.Pdg.red_op)))
    plan.Doany.privatized;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* DOACROSS.                                                           *)

let verify_doacross (pdg : Pdg.t) (plan : Doacross.plan) =
  let g = ground pdg in
  let loop = pdg.Pdg.loop in
  let nphis = pdg.Pdg.nphis in
  let nnodes = Array.length pdg.Pdg.nodes in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (match loop.Loop.trip with
  | Loop.While ->
      emit
        (Diag.error "V201"
           "DOACROSS requires a counted loop; '%s' runs until a break fires"
           loop.Loop.name)
  | Loop.Count _ -> ());
  let forwarded (p : Instr.phi) =
    List.exists (fun (q : Instr.phi) -> q.Instr.pdst = p.Instr.pdst) plan.Doacross.hard_phis
  in
  (* The forwarded phis must be phis of this loop; forwarding a relaxable
     one is redundant but harmless. *)
  List.iter
    (fun (p : Instr.phi) ->
      match
        List.find_opt (fun (q : Instr.phi) -> q.Instr.pdst = p.Instr.pdst) loop.Loop.phis
      with
      | None ->
          emit
            (Diag.error "V202" "plan forwards r%d, which is not a phi of '%s'"
               p.Instr.pdst loop.Loop.name)
      | Some q ->
          if q <> p then
            emit
              (Diag.error "V202"
                 "forwarded phi r%d does not match the loop's definition"
                 p.Instr.pdst)
          else if
            is_induction_phi g p.Instr.pdst || reduction_of_phi g p.Instr.pdst <> None
          then
            emit
              (Diag.warning "V207"
                 "forwarding relaxable phi r%d around the ring is redundant"
                 p.Instr.pdst))
    plan.Doacross.hard_phis;
  (* Every hard carried dependence must be a phi recurrence forwarded
     point-to-point around the ring; hard carried memory, call-order or
     control dependencies have no enforcement mechanism. *)
  List.iter
    (fun (d : Dep.t) ->
      if d.Dep.carried && not (justified_relaxable pdg g d) then
        if d.Dep.kind = Dep.Reg_data && d.Dep.dst < nphis then begin
          let p = List.nth loop.Loop.phis d.Dep.dst in
          if not (forwarded p) then
            emit
              (Diag.error ?loc:(dep_loc pdg d) "V203"
                 "hard recurrence through phi r%d is not forwarded around the \
                  ring"
                 p.Instr.pdst)
        end
        else
          emit
            (Diag.error ?loc:(dep_loc pdg d) "V204"
               "%s cannot be enforced by DOACROSS ring forwarding"
               (dep_str pdg d)))
    pdg.Pdg.deps;
  (* pre and chain must partition the body. *)
  let assigned = plan.Doacross.pre @ plan.Doacross.chain in
  let sorted = List.sort compare assigned in
  let expected = List.init (nnodes - nphis) (fun i -> nphis + i) in
  if sorted <> expected then
    emit
      (Diag.error "V205"
         "pre and chain do not partition the loop body (%d ids assigned, %d \
          body instructions)"
         (List.length assigned) (nnodes - nphis));
  (* Re-derive which nodes must stay in the recurrence chain: anything
     that (transitively) consumes a forwarded recurrence value, plus
     calls and reduction combines, whose side effects must not overlap or
     re-execute after a pause.  The pre part overlaps freely across
     lanes, so a tainted node scheduled there races. *)
  let tainted = Array.make nnodes false in
  List.iteri
    (fun pi (p : Instr.phi) ->
      if not (is_induction_phi g p.Instr.pdst || reduction_of_phi g p.Instr.pdst <> None)
      then tainted.(pi) <- true)
    loop.Loop.phis;
  Array.iteri
    (fun id n ->
      match n with
      | Loop.Instr_node (Instr.Call _) -> tainted.(id) <- true
      | _ -> ())
    pdg.Pdg.nodes;
  List.iter (fun (red : Pdg.reduction) -> tainted.(red.Pdg.red_combine) <- true) g.reds;
  let defined_by = Hashtbl.create 32 in
  Array.iteri
    (fun id n ->
      match Loop.node_defs n with
      | Some r -> Hashtbl.replace defined_by r id
      | None -> ())
    pdg.Pdg.nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun id n ->
        if not tainted.(id) && id >= nphis then
          let from_tainted r =
            match Hashtbl.find_opt defined_by r with
            | Some d -> tainted.(d)
            | None -> false
          in
          if List.exists from_tainted (Loop.node_uses n) then begin
            tainted.(id) <- true;
            changed := true
          end)
      pdg.Pdg.nodes
  done;
  List.iter
    (fun id ->
      if id >= 0 && id < nnodes && tainted.(id) then
        emit
          (Diag.error
             ?loc:(Loop.loc_of loop id)
             "V206"
             "%s depends on a recurrence (or has side effects) and cannot \
              overlap across lanes in the pre part"
             (node_str pdg id)))
    plan.Doacross.pre;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* PS-DSWP.                                                            *)

let verify_psdswp (pdg : Pdg.t) (pipe : Mtcg.pipeline) =
  let g = ground pdg in
  let loop = pdg.Pdg.loop in
  let nnodes = Array.length pdg.Pdg.nodes in
  let nstages = Array.length pipe.Mtcg.stages in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  if nstages = 0 then [ Diag.error "V301" "pipeline has no stages" ]
  else begin
    (* Invariant 4.3.1 part 1: every node in exactly one stage. *)
    let stage_of = Array.make nnodes (-1) in
    Array.iteri
      (fun si (s : Psdswp.stage) ->
        List.iter
          (fun id ->
            if id < 0 || id >= nnodes then
              emit (Diag.error "V301" "stage %d lists node %d, which does not exist" si id)
            else if stage_of.(id) >= 0 then
              emit
                (Diag.error "V301" "%s is assigned to both stage %d and stage %d"
                   (node_str pdg id) stage_of.(id) si)
            else stage_of.(id) <- si)
          s.Psdswp.members)
      pipe.Mtcg.stages;
    Array.iteri
      (fun id _ ->
        if stage_of.(id) < 0 then
          emit (Diag.error "V301" "%s is assigned to no stage" (node_str pdg id)))
      pdg.Pdg.nodes;
    if !diags <> [] then List.rev !diags
    else begin
      (* Channels must flow forward; every stage must be paced by the
         pipeline (reachable from stage 0 through channels), or it would
         never see iteration tokens, pauses or exit signals. *)
      let has_edge = Array.make_matrix nstages nstages false in
      Array.iter
        (fun (e : Mtcg.edge) ->
          if e.Mtcg.e_from >= e.Mtcg.e_to then
            emit
              (Diag.error "V310" "channel from stage %d to stage %d does not flow forward"
                 e.Mtcg.e_from e.Mtcg.e_to)
          else has_edge.(e.Mtcg.e_from).(e.Mtcg.e_to) <- true)
        pipe.Mtcg.edges;
      let reachable = Array.make nstages false in
      reachable.(0) <- true;
      for a = 0 to nstages - 1 do
        for b = a + 1 to nstages - 1 do
          if reachable.(a) && has_edge.(a).(b) then reachable.(b) <- true
        done
      done;
      for s = 1 to nstages - 1 do
        if not reachable.(s) then
          emit
            (Diag.error "V311"
               "stage %d is not reachable from stage 0 through channels and \
                would never be paced"
               s)
      done;
      let regs_on a b =
        Array.to_list pipe.Mtcg.edges
        |> List.concat_map (fun (e : Mtcg.edge) ->
               if e.Mtcg.e_from = a && e.Mtcg.e_to = b then e.Mtcg.e_regs else [])
      in
      let require_channel (d : Dep.t) a b =
        if not has_edge.(a).(b) then
          emit
            (Diag.error ?loc:(dep_loc pdg d) "V303"
               "%s crosses from stage %d to stage %d with no channel between \
                them"
               (dep_str pdg d) a b)
        else if d.Dep.kind = Dep.Reg_data && not d.Dep.carried then
          match Loop.node_defs pdg.Pdg.nodes.(d.Dep.src) with
          | Some r when not (List.mem r (regs_on a b)) ->
              emit
                (Diag.error ?loc:(dep_loc pdg d) "V304"
                   "r%d is consumed in stage %d but not communicated on the \
                    channel from stage %d"
                   r b a)
          | _ -> ()
      in
      List.iter
        (fun (d : Dep.t) ->
          let a = stage_of.(d.Dep.src) and b = stage_of.(d.Dep.dst) in
          let relaxed = justified_relaxable pdg g d in
          if not d.Dep.carried then begin
            (* Invariant 4.3.1 part 2: intra-iteration deps flow forward. *)
            if a > b then
              emit
                (Diag.error ?loc:(dep_loc pdg d) "V302"
                   "%s flows backward from stage %d to stage %d" (dep_str pdg d)
                   a b)
            else if a < b then require_channel d a b
          end
          else if relaxed then begin
            (* Commutative calls synchronize through the global lock and
               may sit anywhere; induction/reduction recurrences must stay
               within one stage so recomputation/privatization sees the
               whole cycle. *)
            match d.Dep.relax with
            | Dep.Induction | Dep.Reduction ->
                if a <> b then
                  emit
                    (Diag.error ?loc:(dep_loc pdg d) "V305"
                       "%s recurrence is split between stage %d and stage %d"
                       (Dep.relax_to_string d.Dep.relax)
                       a b)
            | _ -> ()
          end
          else if a > b then
            emit
              (Diag.error ?loc:(dep_loc pdg d) "V306"
                 "hard %s flows backward from stage %d to stage %d"
                 (dep_str pdg d) a b)
          else if a = b then begin
            if pipe.Mtcg.stages.(a).Psdswp.par then
              emit
                (Diag.error ?loc:(dep_loc pdg d) "V307"
                   "hard %s sits inside parallel stage %d, whose replicas run \
                    iterations concurrently"
                   (dep_str pdg d) a)
          end
          else begin
            (* Forward hard carried dependence: the source stage must be
               sequential (a parallel source may still be running iteration
               i when a later stage starts i+distance) and a channel must
               order the stages. *)
            if pipe.Mtcg.stages.(a).Psdswp.par then
              emit
                (Diag.error ?loc:(dep_loc pdg d) "V308"
                   "hard %s is sourced in parallel stage %d and cannot be \
                    ordered against later iterations"
                   (dep_str pdg d) a);
            require_channel d a b
          end)
        pdg.Pdg.deps;
      (* Breaks and induction updates belong to the sequential master. *)
      Array.iteri
        (fun id n ->
          let si = stage_of.(id) in
          if pipe.Mtcg.stages.(si).Psdswp.par then
            match n with
            | Loop.Instr_node (Instr.Break_if _) ->
                emit
                  (Diag.error
                     ?loc:(Loop.loc_of loop id)
                     "V309" "%s is scheduled in parallel stage %d"
                     (node_str pdg id) si)
            | Loop.Phi_node p when is_induction_phi g p.Instr.pdst ->
                emit
                  (Diag.error
                     ?loc:(Loop.loc_of loop id)
                     "V309"
                     "induction phi r%d is scheduled in parallel stage %d and \
                      cannot dole out iterations"
                     p.Instr.pdst si)
            | _ -> ())
        pdg.Pdg.nodes;
      List.rev !diags
    end
  end

(* ------------------------------------------------------------------ *)

let plan (pdg : Pdg.t) scheme =
  let diags =
    match scheme with
    | Seq -> []
    | Doany p -> verify_doany pdg p
    | Doacross p -> verify_doacross pdg p
    | Psdswp p -> verify_psdswp pdg p
  in
  Diag.sort diags

let check_or_raise pdg scheme =
  let diags = pdg_integrity pdg @ plan pdg scheme in
  if Diag.count_errors diags > 0 then
    raise (Illegal_plan (scheme_name scheme, Diag.sort diags))
