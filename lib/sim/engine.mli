(** The discrete-event multicore simulator.

    This substitutes for the paper's physical evaluation machines.
    Simulated threads are written in direct style and interact with the
    engine through OCaml effects: {!compute} consumes CPU time, {!wait_on}
    blocks on a condition variable, and so on.  The engine owns a virtual
    clock (nanoseconds), a preemptive round-robin scheduler over a finite
    number of cores, and integrates platform power over time.

    Determinism: the event queue breaks time ties by insertion order and
    all waiter sets are FIFO, so a simulation with a fixed seed always
    produces the same trace. *)

type time = int
(** Virtual nanoseconds since the simulation started. *)

type cond
(** A condition variable with Mesa semantics: a woken thread must re-check
    its predicate.  Waiters are FIFO. *)

type thread_state = Created | Runnable | Running | Blocked | Finished

type event
(** A scheduler event; each thread preallocates its two event values at
    spawn so the hot path never allocates one. *)

type thread = {
  tid : int;
  tname : string;
  mutable state : thread_state;
  mutable need : int;  (** remaining ns of the current compute burst *)
  mutable chunk : int;  (** ns of the slice currently executing *)
  mutable on_core : bool;
  mutable core : int;  (** core index while on a core, -1 otherwise *)
  mutable last_core : int;  (** last core occupied, -1 if never dispatched *)
  mutable cont : (unit -> unit) option;  (** first-turn closure *)
  mutable kont : Obj.t;
      (** suspended [(unit, unit) Effect.Deep.continuation], or the nil
          sentinel; stored raw so a suspension does not box an option *)
  mutable pending : int;
      (** deferred CPU ns accumulated by {!charge}, not yet a burst *)
  mutable busy_ns : int;  (** total CPU consumed; Decima's hooks read this *)
  mutable wake_at : time;  (** wake deadline staged for a sleep suspension *)
  mutable wait_cond : cond;  (** condition staged for a blocking suspension *)
  done_cond : cond;  (** broadcast when the thread finishes *)
  mutable failed : exn option;
  ev_slice : event;
  ev_wake : event;
  self_opt : thread option;  (** [Some this], allocated once at spawn *)
}
(** A simulated thread.  The record is exposed because the monitor reads
    [busy_ns] to measure pure compute time across preemptions; treat the
    other fields as read-only. *)

type t
(** An engine instance: one simulated platform. *)

exception Thread_failure of string * exn
(** Raised out of {!run} when a simulated thread raises: carries the
    thread's name and the original exception. *)

(** {1 Construction and execution} *)

val create : Machine.t -> t

val spawn : t -> name:string -> (unit -> unit) -> thread
(** Create a thread that will start executing [body] at the current
    virtual time.  Callable both from outside the engine (setup) and from
    inside a simulated thread. *)

val run : ?until:time -> t -> int
(** Process events until the queue is empty or virtual time would exceed
    [until]; unprocessed events remain, so [run] can be called again to
    continue.  Returns the number of events processed. *)

(** {1 Effects performed inside simulated threads}

    These functions may only be called from code running under a thread
    spawned on this engine. *)

val compute : int -> unit
(** Consume n nanoseconds of CPU, competing for cores and subject to
    preemption. *)

val charge : t -> int -> unit
(** Consume n nanoseconds of CPU {e eventually}: the cost accumulates on
    the calling thread and is folded into a real {!compute} burst once the
    total reaches the charge quantum (5µs), so sub-microsecond costs
    (channel and hook charges) do not each pay an effect suspension.
    Virtual-time skew of any deferred cost is bounded by the quantum.
    Outside a simulated thread this degrades to {!compute}. *)

val flush_charges : t -> bool
(** Convert any pending {!charge}d cost into a burst now; returns [true]
    if the thread suspended (it had pending cost).  Blocking primitives
    call this before their wait loops so a thread never sleeps owing CPU
    time — and because flushing suspends, the caller must re-check its
    wait predicate when this returns [true] before actually waiting, or a
    wakeup racing the flush would be lost. *)

val current_busy : t -> int
(** [busy_ns] of the thread whose turn is running, pending charges
    included — the allocation-free equivalent of reading {!self} to get
    [busy_ns]. *)

val compute_in : t -> int -> unit
(** {!compute}, engine-aware: the burst length is staged in a thread
    field and a constant payload-free effect is performed, so the
    suspension allocates no effect block.  Semantically identical to
    {!compute}; falls back to it outside a turn of [t]. *)

val wait_on_in : t -> cond -> unit
(** {!wait_on}, engine-aware, with the same staging trick (and the same
    Mesa re-check obligation). *)

val now : unit -> time
(** The current virtual time. *)

val yield : unit -> unit
(** Give up the core and requeue. *)

val sleep_until : time -> unit
val sleep : int -> unit

val wait_on : cond -> unit
(** Block until the condition is signalled.  Mesa semantics: re-check the
    predicate in a loop. *)

val signal : cond -> unit
(** Wake one waiter (FIFO). *)

val broadcast : cond -> unit
(** Wake every waiter. *)

val spawn_thread : name:string -> (unit -> unit) -> thread
(** Spawn a sibling thread from within a simulated thread. *)

val self : unit -> thread
val engine : unit -> t

val join : thread -> unit
(** Block the calling simulated thread until [th] finishes. *)

val cond_create : unit -> cond

(** {1 Introspection} *)

val time : t -> time
val busy_cores : t -> int

val runnable_count : t -> int
(** Threads ready to run but not on a core; together with {!busy_cores}
    this measures oversubscription pressure. *)

val online_cores : t -> int
val live_threads : t -> int
val spawned_threads : t -> int

val instant_power : t -> float
(** Platform power draw at the current busy-core count, watts. *)

val energy_joules : t -> float
(** Total energy consumed so far, integrated over busy-core changes. *)

val set_online_cores : t -> int -> unit
(** Change the number of cores the platform makes available, modelling
    resource-availability change (Section 8.3.4 of the paper).  Reducing
    below the busy count lets running slices finish first. *)

val machine : t -> Machine.t

val seconds_of_ns : int -> float
(** Convert virtual ns to seconds for reporting. *)

val live_thread_names : t -> string list
(** Names and states of the threads still alive — the diagnostic of choice
    for a simulation that fails to drain. *)
