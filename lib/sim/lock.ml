(* Mutual exclusion between simulated threads.  DOANY-parallelized loops use
   locks to guard critical sections around commutative operations; the
   [lock_op] cost plus queueing delay under contention is what makes
   fine-grained critical sections a measurable overhead (Section 7.4). *)

module Metrics = Parcae_obs.Metrics
module Hb = Parcae_obs.Hb

(* Per-lock metric handles, labeled by lock name; cached against the
   installed registry like the channel handles. *)
type lock_metrics = {
  lm_acquisitions : Metrics.counter;
  lm_contended : Metrics.counter;
  lm_wait : Metrics.histogram;
}

type t = {
  name : string;
  mutable held_by : Engine.thread option;
  available : Engine.cond;
  op_cost : int;
  mutable acquisitions : int;
  mutable contended : int;  (* acquisitions that had to wait *)
  mutable mx : (Metrics.t * lock_metrics) option;
}

let create ?(op_cost = -1) name =
  {
    name;
    held_by = None;
    available = Engine.cond_create ();
    op_cost;
    acquisitions = 0;
    contended = 0;
    mx = None;
  }

let handles l =
  let reg = Metrics.current () in
  match l.mx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let labels = [ ("lock", l.name) ] in
      let h =
        {
          lm_acquisitions =
            Metrics.counter reg "parcae_lock_acquisitions_total" ~labels
              ~help:"Successful lock acquisitions, per lock.";
          lm_contended =
            Metrics.counter reg "parcae_lock_contended_total" ~labels
              ~help:"Acquisitions that had to wait, per lock.";
          lm_wait =
            Metrics.histogram reg "parcae_lock_wait_ns" ~labels
              ~help:"Virtual time spent waiting for contended acquisitions.";
        }
      in
      l.mx <- Some (reg, h);
      h

let cost l = if l.op_cost >= 0 then l.op_cost else (Engine.machine (Engine.engine ())).Machine.lock_op

let acquire l =
  Engine.compute (cost l);
  let me = Engine.self () in
  let waited = ref false in
  let t0 = if Metrics.enabled () then Engine.now () else 0 in
  let rec loop () =
    match l.held_by with
    | None ->
        l.held_by <- Some me;
        l.acquisitions <- l.acquisitions + 1;
        if !waited then l.contended <- l.contended + 1
    | Some owner when owner == me -> invalid_arg (l.name ^ ": recursive acquire")
    | Some _ ->
        waited := true;
        Engine.wait_on l.available;
        loop ()
  in
  loop ();
  (* Acquire the lock's release clock: the previous critical section
     happens-before this one. *)
  if Hb.enabled () then Hb.on_acquire ~task:me.Engine.tid ~key:("lock:" ^ l.name);
  if Metrics.enabled () then begin
    let h = handles l in
    Metrics.inc h.lm_acquisitions;
    if !waited then begin
      Metrics.inc h.lm_contended;
      Metrics.observe_ns h.lm_wait (Engine.now () - t0)
    end
  end

let release l =
  (match l.held_by with
  | Some owner when owner == Engine.self () -> ()
  | _ -> invalid_arg (l.name ^ ": release by non-owner"));
  if Hb.enabled () then
    Hb.on_release ~task:(Engine.self ()).Engine.tid ~key:("lock:" ^ l.name);
  l.held_by <- None;
  Engine.signal l.available

(* Run [f] with the lock held; always releases, even on exception. *)
let with_lock l f =
  acquire l;
  match f () with
  | v ->
      release l;
      v
  | exception e ->
      release l;
      raise e

let acquisitions l = l.acquisitions
let contended l = l.contended
