(* Reusable synchronization barrier.  Morta's unoptimized pause protocol
   gathers all worker threads of a region at a barrier before reconfiguring
   (Section 4.5.1); the time fast threads spend here is the "barrier wait"
   overhead that Section 7.2 eliminates. *)

module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb

(* Explain the measured wait as Barrier_wait on the core the thread last
   computed on; while parked at the barrier it held no core, so the
   transfer relabels that lane's Park time. *)
let tl_wait dt =
  if dt > 0 then
    match Timeline.get () with
    | Some tl ->
        let th = Engine.self () in
        let core = if th.Engine.core >= 0 then th.Engine.core else th.Engine.last_core in
        if core >= 0 && core < Timeline.lanes tl then
          Timeline.attribute tl ~lane:core Timeline.Barrier_wait dt
    | None -> ()

type t = {
  name : string;
  mutable parties : int;
  mutable arrived : int;
  mutable generation : int;
  released : Engine.cond;
  mutable total_wait_ns : int;  (* aggregate time threads spent waiting *)
}

let create ~parties name =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { name; parties; arrived = 0; generation = 0; released = Engine.cond_create (); total_wait_ns = 0 }

(* Block until [parties] threads have arrived.  Returns [true] for the last
   thread to arrive (the "serial" thread, by analogy with pthread barriers). *)
let wait b =
  let t0 = Engine.now () in
  let gen = b.generation in
  (* Sanitizer edges: every arrival releases into the barrier's clock
     before anyone is let through, and every departure acquires it, so all
     pre-barrier work happens-before all post-barrier work. *)
  let hb_key = "barrier:" ^ b.name in
  let hb_tid () = (Engine.self ()).Engine.tid in
  if Hb.enabled () then Hb.on_release ~task:(hb_tid ()) ~key:hb_key;
  b.arrived <- b.arrived + 1;
  if b.arrived >= b.parties then begin
    b.arrived <- 0;
    b.generation <- b.generation + 1;
    if Hb.enabled () then Hb.on_acquire ~task:(hb_tid ()) ~key:hb_key;
    Engine.broadcast b.released;
    true
  end
  else begin
    while b.generation = gen do
      Engine.wait_on b.released
    done;
    if Hb.enabled () then Hb.on_acquire ~task:(hb_tid ()) ~key:hb_key;
    let dt = Engine.now () - t0 in
    b.total_wait_ns <- b.total_wait_ns + dt;
    tl_wait dt;
    false
  end

let total_wait_ns b = b.total_wait_ns
let parties b = b.parties
