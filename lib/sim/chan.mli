(** Blocking FIFO channels between simulated threads.

    MTCG-style pipelines use these as point-to-point communication
    channels; workloads use them as work queues.  Each operation charges
    the machine's [chan_op] cost to the calling thread — this is how
    communication overhead erodes parallel efficiency in the simulation.
    Channels are multi-producer multi-consumer; used single-producer
    single-consumer they preserve order, which the pause/reconfigure
    protocol relies on. *)

type 'a t

val create : ?capacity:int -> ?op_cost:int -> Engine.t -> string -> 'a t
(** [create eng name] makes an unbounded channel; [capacity > 0] bounds it
    (senders block when full).  [op_cost] overrides the machine's default
    per-operation cost, resolved once at creation.  Operation costs are
    deferred through {!Engine.charge}, so a single channel hop does not
    pay an effect suspension. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val total_sent : 'a t -> int
val total_received : 'a t -> int

val send : 'a t -> 'a -> unit
(** Enqueue, blocking while the channel is at capacity.  Must be called
    from a simulated thread. *)

val recv : 'a t -> 'a
(** Dequeue, blocking while the channel is empty. *)

val force_send : 'a t -> 'a -> unit
(** Enqueue regardless of capacity.  Control sentinels use this: a lane
    re-enqueueing a sentinel it just consumed must never block, or the
    pause/flush protocol could deadlock on a full channel. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking send; [false] if the channel is full. *)

val send_batch : 'a t -> 'a list -> unit
(** Enqueue the whole batch for a single [chan_op] charge (amortized
    communication, Section 2.3 of the paper); blocks whenever the next
    item would overflow a bounded channel. *)

val recv_batch : ?max:int -> 'a t -> 'a list
(** Dequeue at least one and at most [max] items (default: everything
    queued) for a single [chan_op] charge; blocks only while empty. *)

val filter : 'a t -> ('a -> bool) -> int
(** [filter ch keep] retains only the items satisfying [keep], preserving
    order; returns how many were removed.  Used to strip pause sentinels
    from work queues on resumption without dropping pending requests. *)

val drain : 'a t -> int
(** Discard all queued items; returns how many there were. *)
