(* Discrete-event multicore simulator.

   This module substitutes for the paper's physical evaluation machines
   (Table 8.1).  Simulated threads are written in direct style and interact
   with the engine through OCaml effects: [compute n] consumes [n]
   nanoseconds of CPU, [wait_on c] blocks on a condition, and so on.  The
   engine owns a virtual clock, a preemptive round-robin scheduler with a
   finite number of cores, and integrates platform power over time.

   Determinism: the event queue breaks time ties by insertion order
   (Pqueue's sequence numbers) and all waiter sets are FIFO queues, so a
   simulation with a fixed seed always produces the same trace. *)

module Pqueue = Parcae_util.Pqueue
module Ring = Parcae_util.Ring
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Metrics = Parcae_obs.Metrics
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb

(* Scheduler-level instruments.  Handle creation is memoized against the
   installed registry; every update is guarded by [Metrics.enabled ()] so
   disabled metrics cost one comparison per scheduling decision. *)
type scheduler_metrics = {
  m_busy_ns : Metrics.counter;
  m_idle_ns : Metrics.counter;
  m_ctx_switches : Metrics.counter;
  m_spawned : Metrics.counter;
  m_runnable : Metrics.gauge;
  m_busy_cores : Metrics.gauge;
  m_online_cores : Metrics.gauge;
  m_live_threads : Metrics.gauge;
}

let mx =
  Metrics.cached (fun reg ->
      {
        m_busy_ns =
          Metrics.counter reg "parcae_sim_busy_core_ns_total"
            ~help:"Core-nanoseconds spent executing simulated threads";
        m_idle_ns =
          Metrics.counter reg "parcae_sim_idle_core_ns_total"
            ~help:"Core-nanoseconds online cores spent idle";
        m_ctx_switches =
          Metrics.counter reg "parcae_sim_ctx_switches_total"
            ~help:"Context switches charged by the scheduler";
        m_spawned =
          Metrics.counter reg "parcae_sim_threads_spawned_total"
            ~help:"Simulated threads ever spawned";
        m_runnable =
          Metrics.gauge reg "parcae_sim_runnable_threads"
            ~help:"Threads ready to run but not on a core";
        m_busy_cores =
          Metrics.gauge reg "parcae_sim_busy_cores" ~help:"Cores currently executing a thread";
        m_online_cores =
          Metrics.gauge reg "parcae_sim_online_cores" ~help:"Cores the platform makes available";
        m_live_threads =
          Metrics.gauge reg "parcae_sim_live_threads" ~help:"Threads not yet finished";
      })

type time = int

(* A condition variable with Mesa semantics: a woken thread must re-check its
   predicate.  Waiters are FIFO for determinism and fairness. *)
type cond = { cwaiters : thread Ring.t }

and thread_state =
  | Created  (* spawned, first turn not yet scheduled *)
  | Runnable  (* wants CPU, waiting in the run queue *)
  | Running  (* currently assigned a core *)
  | Blocked  (* waiting on a condition or timer *)
  | Finished

and thread = {
  tid : int;
  tname : string;
  mutable state : thread_state;
  mutable need : int;  (* remaining ns of the current compute burst *)
  mutable chunk : int;  (* ns of the slice currently executing *)
  mutable on_core : bool;
  mutable core : int;  (* core index while on a core, -1 otherwise *)
  mutable last_core : int;  (* last core occupied; wait attribution lane *)
  mutable cont : (unit -> unit) option;  (* first-turn closure *)
  mutable kont : Obj.t;
      (* suspended [(unit, unit) Effect.Deep.continuation], or [kont_nil].
         Stored raw: a [Some k] box per suspension would tax every event
         on the serve path. *)
  mutable pending : int;  (* deferred CPU ns not yet folded into a burst *)
  mutable busy_ns : int;  (* total CPU consumed, for utilization stats *)
  mutable wake_at : time;  (* wake deadline staged for a Sleep suspension *)
  mutable wait_cond : cond;  (* condition staged for a Block suspension *)
  done_cond : cond;  (* broadcast when the thread finishes *)
  mutable failed : exn option;
  ev_slice : event;  (* this thread's Slice_end, allocated once at spawn *)
  ev_wake : event;  (* this thread's Wake, allocated once at spawn *)
  self_opt : thread option;
      (* [Some this], allocated once at spawn: [eng.current] is set from it
         on every turn, so building the option there would cost a box per
         event *)
}

and event = Slice_end of thread | Wake of thread

(* Sentinel for an absent suspended continuation (immediate, GC-inert). *)
let kont_nil : Obj.t = Obj.repr 0

type t = {
  machine : Machine.t;
  mutable all_threads : thread list;  (* every thread ever spawned *)
  events : event Pqueue.t;
  mutable now : time;
  run_queue : thread Ring.t;
  mutable online : int;  (* cores currently made available *)
  mutable busy : int;  (* cores currently executing a thread *)
  core_stack : int array;  (* free core indices, [0, core_top) *)
  mutable core_top : int;
  mutable live : int;  (* threads not yet finished *)
  mutable tid_counter : int;
  mutable current : thread option;
  (* Energy integration.  Power is linear in the busy-core count
     (Machine.power), so the integral needs only one int accumulator of
     busy-core-ns; joules are derived lazily in [energy_joules].  Keeping
     the hot-path accumulator an immediate int (not a boxed float field)
     matters: [set_busy] runs on every core acquire/release. *)
  mutable busy_core_ns : int;
  mutable last_energy_t : time;
  mutable spawned : int;  (* total threads ever spawned *)
}

(* ------------------------------------------------------------------ *)
(* Effects performed by simulated threads.                             *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Compute : int -> unit Effect.t
  | Now : time Effect.t
  | Yield : unit Effect.t
  | Sleep_until : time -> unit Effect.t
  | Wait_on : cond -> unit Effect.t
  | Signal : cond -> unit Effect.t
  | Broadcast : cond -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> thread Effect.t
  | Self : thread Effect.t
  | Engine_of : t Effect.t
  (* Payload-free twins of [Compute] and [Wait_on] for engine-aware hot
     paths: the argument is staged in a thread field ([need] / [wait_cond])
     before performing, so the effect value is a static constant instead of
     a fresh two-word block per suspension. *)
  | Burst : unit Effect.t
  | Block : unit Effect.t

(* Direct-style API used inside thread bodies. *)
let compute n = if n > 0 then Effect.perform (Compute n)
let now () = Effect.perform Now
let yield () = Effect.perform Yield
let sleep_until t = Effect.perform (Sleep_until t)
let sleep dt = if dt > 0 then Effect.perform (Sleep_until (Effect.perform Now + dt))
let wait_on c = Effect.perform (Wait_on c)

(* Waking an empty waiter set is a no-op, so skip the effect entirely: on
   the serve path most signals find nobody waiting, and each avoided
   effect saves a reified-continuation allocation. *)
let signal c = if not (Ring.is_empty c.cwaiters) then Effect.perform (Signal c)
let broadcast c = if not (Ring.is_empty c.cwaiters) then Effect.perform (Broadcast c)
let spawn_thread ~name body = Effect.perform (Spawn (name, body))
let self () = Effect.perform Self
let engine () = Effect.perform Engine_of

let cond_create () = { cwaiters = Ring.create () }

(* Placeholder for [thread.wait_cond] until the first Block suspension
   stages a real condition; never waited on. *)
let dummy_cond = { cwaiters = Ring.create () }

exception Thread_failure of string * exn

(* ------------------------------------------------------------------ *)
(* Engine internals.                                                   *)
(* ------------------------------------------------------------------ *)

let create machine =
  {
    machine;
    all_threads = [];
    events = Pqueue.create ();
    now = 0;
    run_queue = Ring.create ();
    online = machine.Machine.cores;
    busy = 0;
    core_stack = Array.init machine.Machine.cores (fun i -> i);
    core_top = machine.Machine.cores;
    live = 0;
    tid_counter = 0;
    current = None;
    busy_core_ns = 0;
    last_energy_t = 0;
    spawned = 0;
  }

let push_event eng at ev = Pqueue.push eng.events (max at eng.now) ev

(* ------------------------------------------------------------------ *)
(* Deferred micro-charging.                                            *)
(*                                                                     *)
(* Sub-microsecond costs (channel ops, monitor hooks) dominate effect  *)
(* traffic if each one becomes its own Compute suspension.  [charge]    *)
(* instead accumulates them on the calling thread and folds the total  *)
(* into a real burst once it reaches [charge_quantum], bounding the    *)
(* virtual-time skew of any deferred cost by the quantum.  Blocking    *)
(* primitives call [flush_charges] before entering their wait loops so *)
(* a thread never sleeps owing CPU time — and because flushing itself  *)
(* suspends, callers must re-check their predicate when it returns     *)
(* [true] (another thread may have run) before waiting.                *)
(* ------------------------------------------------------------------ *)

let charge_quantum = 5_000

let charge eng n =
  if n > 0 then
    match eng.current with
    | Some th ->
        let p = th.pending + n in
        if p >= charge_quantum then begin
          th.pending <- 0;
          th.need <- p;
          Effect.perform Burst
        end
        else th.pending <- p
    | None ->
        (* Not called from a turn of this engine: behave like [compute]
           always did (an unhandled effect outside simulated threads). *)
        Effect.perform (Compute n)

let flush_charges eng =
  match eng.current with
  | Some th when th.pending > 0 ->
      th.need <- th.pending;
      th.pending <- 0;
      Effect.perform Burst;
      true
  | _ -> false

(* Engine-aware twins of [compute] and [wait_on]: stage the payload in a
   thread field and perform a constant effect, avoiding the fresh effect
   block per suspension.  Outside a turn they fall back to the ambient
   forms. *)
let compute_in eng n =
  if n > 0 then
    match eng.current with
    | Some th ->
        th.need <- n;
        Effect.perform Burst
    | None -> Effect.perform (Compute n)

let wait_on_in eng c =
  match eng.current with
  | Some th ->
      th.wait_cond <- c;
      Effect.perform Block
  | None -> Effect.perform (Wait_on c)

(* CPU consumed by the thread of the current turn, deferred charges
   included — the allocation-free replacement for reading [busy_ns]
   through a [Self] effect. *)
let current_busy eng =
  match eng.current with Some th -> th.busy_ns + th.pending | None -> 0

(* Bring the busy-core-time integral up to [eng.now] at the current busy
   level — pure int arithmetic, no boxing (this runs on every core
   acquire/release). *)
let account_energy eng =
  let dt = eng.now - eng.last_energy_t in
  if dt > 0 then begin
    eng.busy_core_ns <- eng.busy_core_ns + (dt * eng.busy);
    eng.last_energy_t <- eng.now;
    (* Integrate core busy/idle time over the same interval the energy
       accumulator covers: [busy] was the level since [last_energy_t]. *)
    if Metrics.enabled () then begin
      let m = mx () in
      Metrics.inc_by m.m_busy_ns (dt * eng.busy);
      Metrics.inc_by m.m_idle_ns (dt * max 0 (eng.online - eng.busy))
    end
  end

let set_busy eng b =
  account_energy eng;
  eng.busy <- b;
  if Metrics.enabled () then begin
    let m = mx () in
    Metrics.set_gauge m.m_busy_cores (float_of_int b);
    Metrics.set_gauge m.m_online_cores (float_of_int eng.online)
  end

(* A core's timeline lane: Run while a thread holds it, Park otherwise.
   The simulator's cooperative single-threadedness makes this exact. *)
let tl_enter eng core st =
  if core >= 0 then
    match Timeline.get () with
    | Some tl when core < Timeline.lanes tl ->
        Timeline.enter tl ~lane:core ~now:eng.now st
    | _ -> ()

(* Assign cores to runnable threads while any are free. *)
let rec dispatch eng =
  if eng.busy < eng.online && not (Ring.is_empty eng.run_queue) then begin
    let th = Ring.pop eng.run_queue in
    if th.state = Runnable then begin
      th.state <- Running;
      th.on_core <- true;
      (if eng.core_top > 0 then begin
         eng.core_top <- eng.core_top - 1;
         let c = eng.core_stack.(eng.core_top) in
         th.core <- c;
         th.last_core <- c
       end
       else th.core <- -1 (* online oversubscribed past physical cores *));
      tl_enter eng th.core Timeline.Run;
      set_busy eng (eng.busy + 1);
      (* Charge the context switch, then run up to one scheduler quantum. *)
      let chunk = min th.need eng.machine.Machine.time_slice in
      th.chunk <- chunk;
      push_event eng (eng.now + eng.machine.Machine.ctx_switch + chunk) th.ev_slice;
      if Metrics.enabled () then begin
        let m = mx () in
        Metrics.inc m.m_ctx_switches;
        Metrics.set_gauge m.m_runnable (float_of_int (Ring.length eng.run_queue))
      end
    end;
    dispatch eng
  end

let make_runnable eng th =
  th.state <- Runnable;
  Ring.push eng.run_queue th;
  if Metrics.enabled () then
    Metrics.set_gauge (mx ()).m_runnable (float_of_int (Ring.length eng.run_queue));
  dispatch eng

let release_core eng th =
  if th.on_core then begin
    th.on_core <- false;
    tl_enter eng th.core Timeline.Park;
    if th.core >= 0 then begin
      eng.core_stack.(eng.core_top) <- th.core;
      eng.core_top <- eng.core_top + 1;
      th.core <- -1
    end;
    set_busy eng (eng.busy - 1);
    dispatch eng
  end

let wake eng th = push_event eng eng.now th.ev_wake

let do_signal eng c =
  if not (Ring.is_empty c.cwaiters) then wake eng (Ring.pop c.cwaiters)

let do_broadcast eng c =
  while not (Ring.is_empty c.cwaiters) do
    wake eng (Ring.pop c.cwaiters)
  done

(* Run one "turn" of a thread: resume it and let it execute OCaml code until
   it performs the next blocking effect (or returns). *)
let run_turn eng th =
  let saved = eng.current in
  eng.current <- th.self_opt;
  let k = th.kont in
  if k != kont_nil then begin
    th.kont <- kont_nil;
    Effect.Deep.continue (Obj.obj k : (unit, unit) Effect.Deep.continuation) ()
  end
  else (
    match th.cont with
    | None -> ()
    | Some go ->
        th.cont <- None;
        go ());
  eng.current <- saved

let finish eng th =
  if Trace.enabled () then
    Trace.emit ~t:eng.now (Event.Task_done { task = th.tid; busy_ns = th.busy_ns });
  if Hb.enabled () then Hb.on_task_done ~task:th.tid;
  th.state <- Finished;
  eng.live <- eng.live - 1;
  if Metrics.enabled () then
    Metrics.set_gauge (mx ()).m_live_threads (float_of_int eng.live);
  release_core eng th;
  do_broadcast eng th.done_cond

(* The handler's [effc] runs once per performed effect; anything it
   allocates is a per-suspension tax on the serve path.  So every arm's
   continuation-consumer is built ONCE here (per thread, at spawn) and the
   arms return the prebuilt [Some fn]; payload-carrying arms stash their
   payload in a thread field before returning.  The GADT refinement of
   each arm makes the monomorphic prebuilt closures typecheck. *)
let rec handler eng th : (unit, unit) Effect.Deep.handler =
  let open Effect.Deep in
  let on_now = Some (fun (k : (time, unit) continuation) -> continue k eng.now) in
  let on_self = Some (fun (k : (thread, unit) continuation) -> continue k th) in
  let on_engine = Some (fun (k : (t, unit) continuation) -> continue k eng) in
  let on_unit = Some (fun (k : (unit, unit) continuation) -> continue k ()) in
  let on_burst =
    Some
      (fun (k : (unit, unit) continuation) ->
        th.kont <- Obj.repr k;
        if th.on_core && eng.busy <= eng.online then begin
          (* Already holding a core (burst follows burst): keep it, no
             context switch charged. *)
          th.state <- Running;
          let chunk = min th.need eng.machine.Machine.time_slice in
          th.chunk <- chunk;
          push_event eng (eng.now + chunk) th.ev_slice
        end
        else begin
          (* Either between bursts without a core, or the platform shrank
             below the held cores: go through the scheduler. *)
          release_core eng th;
          make_runnable eng th
        end)
  in
  let on_yield =
    Some
      (fun (k : (unit, unit) continuation) ->
        th.kont <- Obj.repr k;
        th.need <- 0;
        release_core eng th;
        make_runnable eng th)
  in
  let on_sleep =
    Some
      (fun (k : (unit, unit) continuation) ->
        th.kont <- Obj.repr k;
        th.state <- Blocked;
        release_core eng th;
        push_event eng th.wake_at th.ev_wake)
  in
  let on_block =
    Some
      (fun (k : (unit, unit) continuation) ->
        th.kont <- Obj.repr k;
        th.state <- Blocked;
        release_core eng th;
        Ring.push th.wait_cond.cwaiters th)
  in
  {
    retc = (fun () -> finish eng th);
    exnc =
      (fun e ->
        th.failed <- Some e;
        finish eng th;
        raise (Thread_failure (th.tname, e)));
    effc =
      (fun (type a) (eff : a Effect.t) :
           ((a, unit) Effect.Deep.continuation -> unit) option ->
        match eff with
        | Now -> on_now
        | Self -> on_self
        | Engine_of -> on_engine
        | Signal c ->
            (* Pushing the wake event before the continuation is captured
               is equivalent: nothing runs until this turn suspends or
               continues. *)
            do_signal eng c;
            on_unit
        | Broadcast c ->
            do_broadcast eng c;
            on_unit
        | Spawn (name, body) ->
            (* Cold path: a fresh closure per spawn is fine. *)
            Some
              (fun (k : (a, unit) continuation) ->
                let child = spawn eng ~name body in
                continue k child)
        | Burst -> on_burst
        | Compute n ->
            th.need <- max 0 n;
            on_burst
        | Yield -> on_yield
        | Sleep_until t' ->
            th.wake_at <- max t' eng.now;
            on_sleep
        | Block -> on_block
        | Wait_on c ->
            th.wait_cond <- c;
            on_block
        | _ -> None);
  }

(* Create a thread whose first turn will run [body] under this engine's
   handler.  The thread starts Blocked and is woken immediately, so it begins
   execution at the current virtual time, after already-queued events. *)
and spawn eng ~name body : thread =
  eng.tid_counter <- eng.tid_counter + 1;
  eng.spawned <- eng.spawned + 1;
  let rec th =
    {
      tid = eng.tid_counter;
      tname = name;
      state = Created;
      need = 0;
      chunk = 0;
      on_core = false;
      core = -1;
      last_core = -1;
      cont = None;
      kont = kont_nil;
      pending = 0;
      busy_ns = 0;
      wake_at = 0;
      wait_cond = dummy_cond;
      done_cond = cond_create ();
      failed = None;
      ev_slice = Slice_end th;
      ev_wake = Wake th;
      self_opt = Some th;
    }
  in
  eng.live <- eng.live + 1;
  if Metrics.enabled () then begin
    let m = mx () in
    Metrics.inc m.m_spawned;
    Metrics.set_gauge m.m_live_threads (float_of_int eng.live)
  end;
  eng.all_threads <- th :: eng.all_threads;
  if Trace.enabled () then begin
    let parent = match eng.current with Some p -> p.tid | None -> -1 in
    Trace.emit ~t:eng.now (Event.Task_spawn { task = th.tid; parent; name })
  end;
  (if Hb.enabled () then
     match eng.current with
     | Some p -> Hb.on_spawn ~parent:p.tid ~child:th.tid
     | None -> ());
  (* Settle any deferred bookkeeping debt before the body returns, so a
     thread cannot exit owing virtual time. *)
  let body_settled () =
    body ();
    if th.pending > 0 then begin
      th.need <- th.pending;
      th.pending <- 0;
      Effect.perform Burst
    end
  in
  th.cont <- Some (fun () -> Effect.Deep.match_with body_settled () (handler eng th));
  th.state <- Blocked;
  push_event eng eng.now th.ev_wake;
  th

(* Block the calling simulated thread until [th] finishes. *)
let join th =
  while th.state <> Finished do
    wait_on th.done_cond
  done

let handle_event eng ev =
  match ev with
  | Wake th -> if th.state <> Finished then run_turn eng th
  | Slice_end th ->
      if th.state = Running then begin
        th.need <- th.need - th.chunk;
        th.busy_ns <- th.busy_ns + th.chunk;
        if th.need <= 0 then begin
          (* Burst complete: keep the core and resume the thread; its next
             effect decides whether the core is released. *)
          run_turn eng th
        end
        else if Ring.is_empty eng.run_queue && eng.busy <= eng.online then begin
          (* No competition: extend on the same core without a switch. *)
          let chunk = min th.need eng.machine.Machine.time_slice in
          th.chunk <- chunk;
          push_event eng (eng.now + chunk) th.ev_slice
        end
        else begin
          (* Preempt: go to the back of the run queue. *)
          release_core eng th;
          make_runnable eng th
        end
      end

(* Process events until the queue is empty or virtual time would exceed
   [until].  Returns the number of events processed. *)
let run ?until eng =
  let processed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if Pqueue.is_empty eng.events then continue_ := false
    else begin
      let t = Pqueue.top_key eng.events in
      match until with
      | Some limit when t > limit ->
          eng.now <- max eng.now limit;
          account_energy eng;
          continue_ := false
      | _ ->
          let ev = Pqueue.pop_exn eng.events in
          eng.now <- max eng.now t;
          incr processed;
          handle_event eng ev
    end
  done;
  account_energy eng;
  !processed

(* ------------------------------------------------------------------ *)
(* Introspection used by Decima and the benchmark harness.             *)
(* ------------------------------------------------------------------ *)

let time eng = eng.now
let busy_cores eng = eng.busy

(* Threads ready to run but not on a core; together with [busy_cores] this
   measures oversubscription pressure. *)
let runnable_count eng = Ring.length eng.run_queue
let online_cores eng = eng.online
let live_threads eng = eng.live
let spawned_threads eng = eng.spawned

(* Instantaneous power draw at the current busy-core count. *)
let instant_power eng = Machine.power eng.machine ~busy:eng.busy

(* Derive joules from the integral: the idle floor draws for the whole
   elapsed window, each busy core adds [core_power] for its busy span. *)
let energy_joules eng =
  account_energy eng;
  (eng.machine.Machine.idle_power *. (float_of_int eng.now *. 1e-9))
  +. (eng.machine.Machine.core_power *. (float_of_int eng.busy_core_ns *. 1e-9))

(* Change the number of cores the platform makes available, modelling
   resource-availability change (Section 8.3.4).  Reducing below the current
   busy count lets running slices finish; no new assignments happen until
   enough cores drain. *)
let set_online_cores eng n =
  if n < 0 then invalid_arg "Engine.set_online_cores: negative";
  account_energy eng;
  eng.online <- n;
  if Trace.enabled () then Trace.emit ~t:eng.now (Event.Cores_online { cores = n });
  dispatch eng

let machine eng = eng.machine

(* Convert virtual ns to seconds for reporting. *)
let seconds_of_ns ns = float_of_int ns *. 1e-9

(* Names and states of the threads still alive — the diagnostic of choice
   for a simulation that fails to drain. *)
let live_thread_names eng =
  List.filter_map
    (fun th ->
      if th.state = Finished then None
      else
        Some
          (Printf.sprintf "%s[%s]" th.tname
             (match th.state with
             | Created -> "created"
             | Runnable -> "runnable"
             | Running -> "running"
             | Blocked -> "blocked"
             | Finished -> "finished")))
    eng.all_threads
