(* Discrete-event multicore simulator.

   This module substitutes for the paper's physical evaluation machines
   (Table 8.1).  Simulated threads are written in direct style and interact
   with the engine through OCaml effects: [compute n] consumes [n]
   nanoseconds of CPU, [wait_on c] blocks on a condition, and so on.  The
   engine owns a virtual clock, a preemptive round-robin scheduler with a
   finite number of cores, and integrates platform power over time.

   Determinism: the event queue breaks time ties by insertion order
   (Pqueue's sequence numbers) and all waiter sets are FIFO queues, so a
   simulation with a fixed seed always produces the same trace. *)

module Pqueue = Parcae_util.Pqueue
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Metrics = Parcae_obs.Metrics
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb

(* Scheduler-level instruments.  Handle creation is memoized against the
   installed registry; every update is guarded by [Metrics.enabled ()] so
   disabled metrics cost one comparison per scheduling decision. *)
type scheduler_metrics = {
  m_busy_ns : Metrics.counter;
  m_idle_ns : Metrics.counter;
  m_ctx_switches : Metrics.counter;
  m_spawned : Metrics.counter;
  m_runnable : Metrics.gauge;
  m_busy_cores : Metrics.gauge;
  m_online_cores : Metrics.gauge;
  m_live_threads : Metrics.gauge;
}

let mx =
  Metrics.cached (fun reg ->
      {
        m_busy_ns =
          Metrics.counter reg "parcae_sim_busy_core_ns_total"
            ~help:"Core-nanoseconds spent executing simulated threads";
        m_idle_ns =
          Metrics.counter reg "parcae_sim_idle_core_ns_total"
            ~help:"Core-nanoseconds online cores spent idle";
        m_ctx_switches =
          Metrics.counter reg "parcae_sim_ctx_switches_total"
            ~help:"Context switches charged by the scheduler";
        m_spawned =
          Metrics.counter reg "parcae_sim_threads_spawned_total"
            ~help:"Simulated threads ever spawned";
        m_runnable =
          Metrics.gauge reg "parcae_sim_runnable_threads"
            ~help:"Threads ready to run but not on a core";
        m_busy_cores =
          Metrics.gauge reg "parcae_sim_busy_cores" ~help:"Cores currently executing a thread";
        m_online_cores =
          Metrics.gauge reg "parcae_sim_online_cores" ~help:"Cores the platform makes available";
        m_live_threads =
          Metrics.gauge reg "parcae_sim_live_threads" ~help:"Threads not yet finished";
      })

type time = int

(* A condition variable with Mesa semantics: a woken thread must re-check its
   predicate.  Waiters are FIFO for determinism and fairness. *)
type cond = { mutable cwaiters : thread Queue.t }

and thread_state =
  | Created  (* spawned, first turn not yet scheduled *)
  | Runnable  (* wants CPU, waiting in the run queue *)
  | Running  (* currently assigned a core *)
  | Blocked  (* waiting on a condition or timer *)
  | Finished

and thread = {
  tid : int;
  tname : string;
  mutable state : thread_state;
  mutable need : int;  (* remaining ns of the current compute burst *)
  mutable chunk : int;  (* ns of the slice currently executing *)
  mutable on_core : bool;
  mutable core : int;  (* core index while on a core, -1 otherwise *)
  mutable last_core : int;  (* last core occupied; wait attribution lane *)
  mutable cont : (unit -> unit) option;  (* resumption closure *)
  mutable busy_ns : int;  (* total CPU consumed, for utilization stats *)
  done_cond : cond;  (* broadcast when the thread finishes *)
  mutable failed : exn option;
}

type event = Slice_end of thread | Wake of thread

type t = {
  machine : Machine.t;
  mutable all_threads : thread list;  (* every thread ever spawned *)
  events : event Pqueue.t;
  mutable now : time;
  run_queue : thread Queue.t;
  mutable online : int;  (* cores currently made available *)
  mutable busy : int;  (* cores currently executing a thread *)
  mutable free_cores : int list;  (* core indices not executing a thread *)
  mutable live : int;  (* threads not yet finished *)
  mutable tid_counter : int;
  mutable current : thread option;
  (* Energy integration: [energy_j] accumulates joules; [last_energy_t] is
     the last time the accumulator was brought up to date. *)
  mutable energy_j : float;
  mutable last_energy_t : time;
  mutable spawned : int;  (* total threads ever spawned *)
}

(* ------------------------------------------------------------------ *)
(* Effects performed by simulated threads.                             *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Compute : int -> unit Effect.t
  | Now : time Effect.t
  | Yield : unit Effect.t
  | Sleep_until : time -> unit Effect.t
  | Wait_on : cond -> unit Effect.t
  | Signal : cond -> unit Effect.t
  | Broadcast : cond -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> thread Effect.t
  | Self : thread Effect.t
  | Engine_of : t Effect.t

(* Direct-style API used inside thread bodies. *)
let compute n = if n > 0 then Effect.perform (Compute n)
let now () = Effect.perform Now
let yield () = Effect.perform Yield
let sleep_until t = Effect.perform (Sleep_until t)
let sleep dt = if dt > 0 then Effect.perform (Sleep_until (Effect.perform Now + dt))
let wait_on c = Effect.perform (Wait_on c)
let signal c = Effect.perform (Signal c)
let broadcast c = Effect.perform (Broadcast c)
let spawn_thread ~name body = Effect.perform (Spawn (name, body))
let self () = Effect.perform Self
let engine () = Effect.perform Engine_of

let cond_create () = { cwaiters = Queue.create () }

exception Thread_failure of string * exn

(* ------------------------------------------------------------------ *)
(* Engine internals.                                                   *)
(* ------------------------------------------------------------------ *)

let create machine =
  {
    machine;
    all_threads = [];
    events = Pqueue.create ();
    now = 0;
    run_queue = Queue.create ();
    online = machine.Machine.cores;
    busy = 0;
    free_cores = List.init machine.Machine.cores (fun i -> i);
    live = 0;
    tid_counter = 0;
    current = None;
    energy_j = 0.0;
    last_energy_t = 0;
    spawned = 0;
  }

let push_event eng at ev = Pqueue.push eng.events (max at eng.now) ev

(* Bring the energy accumulator up to [eng.now] at the current busy level. *)
let account_energy eng =
  let dt = eng.now - eng.last_energy_t in
  if dt > 0 then begin
    let watts = Machine.power eng.machine ~busy:eng.busy in
    eng.energy_j <- eng.energy_j +. (watts *. (float_of_int dt *. 1e-9));
    eng.last_energy_t <- eng.now;
    (* Integrate core busy/idle time over the same interval the energy
       accumulator covers: [busy] was the level since [last_energy_t]. *)
    if Metrics.enabled () then begin
      let m = mx () in
      Metrics.inc_by m.m_busy_ns (dt * eng.busy);
      Metrics.inc_by m.m_idle_ns (dt * max 0 (eng.online - eng.busy))
    end
  end

let set_busy eng b =
  account_energy eng;
  eng.busy <- b;
  if Metrics.enabled () then begin
    let m = mx () in
    Metrics.set_gauge m.m_busy_cores (float_of_int b);
    Metrics.set_gauge m.m_online_cores (float_of_int eng.online)
  end

(* A core's timeline lane: Run while a thread holds it, Park otherwise.
   The simulator's cooperative single-threadedness makes this exact. *)
let tl_enter eng core st =
  if core >= 0 then
    match Timeline.get () with
    | Some tl when core < Timeline.lanes tl ->
        Timeline.enter tl ~lane:core ~now:eng.now st
    | _ -> ()

(* Assign cores to runnable threads while any are free. *)
let rec dispatch eng =
  if eng.busy < eng.online && not (Queue.is_empty eng.run_queue) then begin
    let th = Queue.pop eng.run_queue in
    if th.state = Runnable then begin
      th.state <- Running;
      th.on_core <- true;
      (match eng.free_cores with
      | c :: rest ->
          eng.free_cores <- rest;
          th.core <- c;
          th.last_core <- c
      | [] -> th.core <- -1 (* online oversubscribed past physical cores *));
      tl_enter eng th.core Timeline.Run;
      set_busy eng (eng.busy + 1);
      (* Charge the context switch, then run up to one scheduler quantum. *)
      let chunk = min th.need eng.machine.Machine.time_slice in
      th.chunk <- chunk;
      push_event eng (eng.now + eng.machine.Machine.ctx_switch + chunk) (Slice_end th);
      if Metrics.enabled () then begin
        let m = mx () in
        Metrics.inc m.m_ctx_switches;
        Metrics.set_gauge m.m_runnable (float_of_int (Queue.length eng.run_queue))
      end
    end;
    dispatch eng
  end

let make_runnable eng th =
  th.state <- Runnable;
  Queue.push th eng.run_queue;
  if Metrics.enabled () then
    Metrics.set_gauge (mx ()).m_runnable (float_of_int (Queue.length eng.run_queue));
  dispatch eng

let release_core eng th =
  if th.on_core then begin
    th.on_core <- false;
    tl_enter eng th.core Timeline.Park;
    if th.core >= 0 then begin
      eng.free_cores <- th.core :: eng.free_cores;
      th.core <- -1
    end;
    set_busy eng (eng.busy - 1);
    dispatch eng
  end

let wake eng th = push_event eng eng.now (Wake th)

let do_signal eng c =
  match Queue.take_opt c.cwaiters with None -> () | Some th -> wake eng th

let do_broadcast eng c =
  while not (Queue.is_empty c.cwaiters) do
    wake eng (Queue.pop c.cwaiters)
  done

(* Run one "turn" of a thread: resume it and let it execute OCaml code until
   it performs the next blocking effect (or returns). *)
let run_turn eng th =
  match th.cont with
  | None -> ()
  | Some go ->
      th.cont <- None;
      let saved = eng.current in
      eng.current <- Some th;
      go ();
      eng.current <- saved

let finish eng th =
  if Trace.enabled () then
    Trace.emit ~t:eng.now (Event.Task_done { task = th.tid; busy_ns = th.busy_ns });
  if Hb.enabled () then Hb.on_task_done ~task:th.tid;
  th.state <- Finished;
  eng.live <- eng.live - 1;
  if Metrics.enabled () then
    Metrics.set_gauge (mx ()).m_live_threads (float_of_int eng.live);
  release_core eng th;
  do_broadcast eng th.done_cond

let rec handler eng th : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> finish eng th);
    exnc =
      (fun e ->
        th.failed <- Some e;
        finish eng th;
        raise (Thread_failure (th.tname, e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        let open Effect.Deep in
        match eff with
        | Now -> Some (fun (k : (a, unit) continuation) -> continue k eng.now)
        | Self -> Some (fun (k : (a, unit) continuation) -> continue k th)
        | Engine_of -> Some (fun (k : (a, unit) continuation) -> continue k eng)
        | Signal c ->
            Some
              (fun (k : (a, unit) continuation) ->
                do_signal eng c;
                continue k ())
        | Broadcast c ->
            Some
              (fun (k : (a, unit) continuation) ->
                do_broadcast eng c;
                continue k ())
        | Spawn (name, body) ->
            Some
              (fun (k : (a, unit) continuation) ->
                let child = spawn eng ~name body in
                continue k child)
        | Compute n ->
            Some
              (fun (k : (a, unit) continuation) ->
                th.cont <- Some (fun () -> continue k ());
                th.need <- max 0 n;
                if th.on_core && eng.busy <= eng.online then begin
                  (* Already holding a core (burst follows burst): keep it,
                     no context switch charged. *)
                  th.state <- Running;
                  let chunk = min th.need eng.machine.Machine.time_slice in
                  th.chunk <- chunk;
                  push_event eng (eng.now + chunk) (Slice_end th)
                end
                else begin
                  (* Either between bursts without a core, or the platform
                     shrank below the held cores: go through the
                     scheduler. *)
                  release_core eng th;
                  make_runnable eng th
                end)
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                th.cont <- Some (fun () -> continue k ());
                th.need <- 0;
                release_core eng th;
                make_runnable eng th)
        | Sleep_until t' ->
            Some
              (fun (k : (a, unit) continuation) ->
                th.cont <- Some (fun () -> continue k ());
                th.state <- Blocked;
                release_core eng th;
                push_event eng (max t' eng.now) (Wake th))
        | Wait_on c ->
            Some
              (fun (k : (a, unit) continuation) ->
                th.cont <- Some (fun () -> continue k ());
                th.state <- Blocked;
                release_core eng th;
                Queue.push th c.cwaiters)
        | _ -> None);
  }

(* Create a thread whose first turn will run [body] under this engine's
   handler.  The thread starts Blocked and is woken immediately, so it begins
   execution at the current virtual time, after already-queued events. *)
and spawn eng ~name body : thread =
  eng.tid_counter <- eng.tid_counter + 1;
  eng.spawned <- eng.spawned + 1;
  let th =
    {
      tid = eng.tid_counter;
      tname = name;
      state = Created;
      need = 0;
      chunk = 0;
      on_core = false;
      core = -1;
      last_core = -1;
      cont = None;
      busy_ns = 0;
      done_cond = cond_create ();
      failed = None;
    }
  in
  eng.live <- eng.live + 1;
  if Metrics.enabled () then begin
    let m = mx () in
    Metrics.inc m.m_spawned;
    Metrics.set_gauge m.m_live_threads (float_of_int eng.live)
  end;
  eng.all_threads <- th :: eng.all_threads;
  if Trace.enabled () then begin
    let parent = match eng.current with Some p -> p.tid | None -> -1 in
    Trace.emit ~t:eng.now (Event.Task_spawn { task = th.tid; parent; name })
  end;
  (if Hb.enabled () then
     match eng.current with
     | Some p -> Hb.on_spawn ~parent:p.tid ~child:th.tid
     | None -> ());
  th.cont <- Some (fun () -> Effect.Deep.match_with body () (handler eng th));
  th.state <- Blocked;
  push_event eng eng.now (Wake th);
  th

(* Block the calling simulated thread until [th] finishes. *)
let join th =
  while th.state <> Finished do
    wait_on th.done_cond
  done

let handle_event eng ev =
  match ev with
  | Wake th -> if th.state <> Finished then run_turn eng th
  | Slice_end th ->
      if th.state = Running then begin
        th.need <- th.need - th.chunk;
        th.busy_ns <- th.busy_ns + th.chunk;
        if th.need <= 0 then begin
          (* Burst complete: keep the core and resume the thread; its next
             effect decides whether the core is released. *)
          run_turn eng th
        end
        else if Queue.is_empty eng.run_queue && eng.busy <= eng.online then begin
          (* No competition: extend on the same core without a switch. *)
          let chunk = min th.need eng.machine.Machine.time_slice in
          th.chunk <- chunk;
          push_event eng (eng.now + chunk) (Slice_end th)
        end
        else begin
          (* Preempt: go to the back of the run queue. *)
          release_core eng th;
          make_runnable eng th
        end
      end

(* Process events until the queue is empty or virtual time would exceed
   [until].  Returns the number of events processed. *)
let run ?until eng =
  let processed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Pqueue.peek_key eng.events with
    | None -> continue_ := false
    | Some t -> (
        match until with
        | Some limit when t > limit ->
            eng.now <- max eng.now limit;
            account_energy eng;
            continue_ := false
        | _ -> (
            match Pqueue.pop eng.events with
            | None -> continue_ := false
            | Some (t, ev) ->
                eng.now <- max eng.now t;
                incr processed;
                handle_event eng ev))
  done;
  account_energy eng;
  !processed

(* ------------------------------------------------------------------ *)
(* Introspection used by Decima and the benchmark harness.             *)
(* ------------------------------------------------------------------ *)

let time eng = eng.now
let busy_cores eng = eng.busy

(* Threads ready to run but not on a core; together with [busy_cores] this
   measures oversubscription pressure. *)
let runnable_count eng = Queue.length eng.run_queue
let online_cores eng = eng.online
let live_threads eng = eng.live
let spawned_threads eng = eng.spawned

(* Instantaneous power draw at the current busy-core count. *)
let instant_power eng = Machine.power eng.machine ~busy:eng.busy

let energy_joules eng =
  account_energy eng;
  eng.energy_j

(* Change the number of cores the platform makes available, modelling
   resource-availability change (Section 8.3.4).  Reducing below the current
   busy count lets running slices finish; no new assignments happen until
   enough cores drain. *)
let set_online_cores eng n =
  if n < 0 then invalid_arg "Engine.set_online_cores: negative";
  account_energy eng;
  eng.online <- n;
  if Trace.enabled () then Trace.emit ~t:eng.now (Event.Cores_online { cores = n });
  dispatch eng

let machine eng = eng.machine

(* Convert virtual ns to seconds for reporting. *)
let seconds_of_ns ns = float_of_int ns *. 1e-9

(* Names and states of the threads still alive — the diagnostic of choice
   for a simulation that fails to drain. *)
let live_thread_names eng =
  List.filter_map
    (fun th ->
      if th.state = Finished then None
      else
        Some
          (Printf.sprintf "%s[%s]" th.tname
             (match th.state with
             | Created -> "created"
             | Runnable -> "runnable"
             | Running -> "running"
             | Blocked -> "blocked"
             | Finished -> "finished")))
    eng.all_threads
