(* Blocking FIFO channels between simulated threads.

   MTCG-style pipelines use these as the point-to-point communication
   channels between tasks; workloads also use them as work queues.  Each
   operation charges the machine's [chan_op] cost to the calling thread,
   which is how communication overhead erodes parallel efficiency in the
   simulation (Section 2.3 of the paper).  Channels are multi-producer
   multi-consumer; used single-producer single-consumer they preserve
   sequential order, which the pause/reconfigure protocol relies on. *)

module Metrics = Parcae_obs.Metrics
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb

(* Per-channel metric handles, labeled by channel name.  Cached against the
   installed registry so the hot path pays one physical comparison, not a
   hashtable lookup per operation. *)
type chan_metrics = {
  cm_sends : Metrics.counter;
  cm_recvs : Metrics.counter;
  cm_depth : Metrics.gauge;
  cm_send_block : Metrics.histogram;
  cm_recv_block : Metrics.histogram;
  cm_flushed : Metrics.counter;
}

type 'a t = {
  name : string;
  capacity : int;  (* 0 = unbounded *)
  q : 'a Queue.t;
  nonempty : Engine.cond;
  nonfull : Engine.cond;
  op_cost : int;
  mutable total_sent : int;
  mutable total_received : int;
  mutable mx : (Metrics.t * chan_metrics) option;
}

let create ?(capacity = 0) ?(op_cost = -1) name =
  {
    name;
    capacity;
    q = Queue.create ();
    nonempty = Engine.cond_create ();
    nonfull = Engine.cond_create ();
    op_cost;
    total_sent = 0;
    total_received = 0;
    mx = None;
  }

let handles ch =
  let reg = Metrics.current () in
  match ch.mx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let labels = [ ("chan", ch.name) ] in
      let h =
        {
          cm_sends =
            Metrics.counter reg "parcae_chan_sends_total" ~labels
              ~help:"Items enqueued, per channel.";
          cm_recvs =
            Metrics.counter reg "parcae_chan_recvs_total" ~labels
              ~help:"Items dequeued, per channel.";
          cm_depth =
            Metrics.gauge reg "parcae_chan_depth" ~labels
              ~help:"Current queue occupancy, per channel.";
          cm_send_block =
            Metrics.histogram reg "parcae_chan_send_block_ns" ~labels
              ~help:"Virtual time senders spent blocked on a full channel.";
          cm_recv_block =
            Metrics.histogram reg "parcae_chan_recv_block_ns" ~labels
              ~help:"Virtual time receivers spent blocked on an empty channel.";
          cm_flushed =
            Metrics.counter reg "parcae_chan_flushed_total" ~labels
              ~help:"Items dropped by filter/drain on reconfiguration.";
        }
      in
      ch.mx <- Some (reg, h);
      h

let note_depth ch =
  if Metrics.enabled () then
    Metrics.set_gauge (handles ch).cm_depth (float_of_int (Queue.length ch.q))

let cost ch = if ch.op_cost >= 0 then ch.op_cost else (Engine.machine (Engine.engine ())).Machine.chan_op

(* The wait instruments want a start time when either sink is live. *)
let observing () = Metrics.enabled () || Timeline.enabled ()

(* Explain a measured block as Chan_wait on the core the thread last
   computed on (non-burst code runs off-core in the sim).  While blocked
   the thread held no core — the wait displaced Park time on that lane,
   which is exactly what the timeline's idle-first attribution transfer
   expresses. *)
let tl_wait waited t0 =
  if waited then
    match Timeline.get () with
    | Some tl ->
        let th = Engine.self () in
        let core = if th.Engine.core >= 0 then th.Engine.core else th.Engine.last_core in
        if core >= 0 && core < Timeline.lanes tl then
          Timeline.attribute tl ~lane:core Timeline.Chan_wait (Engine.now () - t0)
    | None -> ()

(* Sanitizer edges use the exact (chan, seq) FIFO pairing.  The send-side
   clock must be published before any other thread can observe the item:
   these run at the seq-assignment point, before the [signal] effect can
   transfer control to a consumer. *)
let hb_send ch seq =
  if Hb.enabled () then Hb.on_send ~task:(Engine.self ()).Engine.tid ~chan:ch.name ~seq

let hb_recv ch seq =
  if Hb.enabled () then Hb.on_recv ~task:(Engine.self ()).Engine.tid ~chan:ch.name ~seq

let emit_send ch seq =
  if Trace.enabled () then begin
    let th = Engine.self () in
    Trace.emit ~t:(Engine.now ())
      (Event.Chan_send_ev
         { chan = ch.name; seq; task = th.Engine.tid; busy_ns = th.Engine.busy_ns })
  end

let emit_recv ch seq =
  if Trace.enabled () then begin
    let th = Engine.self () in
    Trace.emit ~t:(Engine.now ())
      (Event.Chan_recv_ev
         { chan = ch.name; seq; task = th.Engine.tid; busy_ns = th.Engine.busy_ns })
  end

let length ch = Queue.length ch.q
let is_empty ch = Queue.is_empty ch.q
let total_sent ch = ch.total_sent
let total_received ch = ch.total_received

(* Enqueue [v], blocking while the channel is at capacity. *)
let send ch v =
  Engine.compute (cost ch);
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  let rec loop () =
    if ch.capacity > 0 && Queue.length ch.q >= ch.capacity then begin
      waited := true;
      Engine.wait_on ch.nonfull;
      loop ()
    end
    else begin
      let seq = ch.total_sent in
      Queue.push v ch.q;
      ch.total_sent <- seq + 1;
      hb_send ch seq;
      Engine.signal ch.nonempty;
      seq
    end
  in
  let seq = loop () in
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_sends;
    Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
    if !waited then Metrics.observe_ns h.cm_send_block (Engine.now () - t0)
  end;
  tl_wait !waited t0;
  emit_send ch seq

(* Dequeue, blocking while the channel is empty. *)
let recv ch =
  Engine.compute (cost ch);
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  let rec loop () =
    match Queue.take_opt ch.q with
    | Some v ->
        let seq = ch.total_received in
        ch.total_received <- seq + 1;
        hb_recv ch seq;
        Engine.signal ch.nonfull;
        (v, seq)
    | None ->
        waited := true;
        Engine.wait_on ch.nonempty;
        loop ()
  in
  let v, seq = loop () in
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_recvs;
    Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
    if !waited then Metrics.observe_ns h.cm_recv_block (Engine.now () - t0)
  end;
  tl_wait !waited t0;
  emit_recv ch seq;
  v

(* Enqueue [v] regardless of capacity.  Control sentinels use this: a lane
   re-enqueueing a sentinel it just consumed must never block, or the
   pause/flush protocol could deadlock on a full channel. *)
let force_send ch v =
  Engine.compute (cost ch);
  let seq = ch.total_sent in
  Queue.push v ch.q;
  ch.total_sent <- seq + 1;
  hb_send ch seq;
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_sends;
    Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q))
  end;
  emit_send ch seq;
  Engine.signal ch.nonempty

(* Non-blocking receive. *)
let try_recv ch =
  match Queue.take_opt ch.q with
  | Some v ->
      Engine.compute (cost ch);
      let seq = ch.total_received in
      ch.total_received <- seq + 1;
      hb_recv ch seq;
      if Metrics.enabled () then begin
        let h = handles ch in
        Metrics.inc h.cm_recvs;
        Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q))
      end;
      emit_recv ch seq;
      Engine.signal ch.nonfull;
      Some v
  | None -> None

(* Non-blocking send; [false] if the channel is full. *)
let try_send ch v =
  if ch.capacity > 0 && Queue.length ch.q >= ch.capacity then false
  else begin
    Engine.compute (cost ch);
    let seq = ch.total_sent in
    Queue.push v ch.q;
    ch.total_sent <- seq + 1;
    hb_send ch seq;
    if Metrics.enabled () then begin
      let h = handles ch in
      Metrics.inc h.cm_sends;
      Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q))
    end;
    emit_send ch seq;
    Engine.signal ch.nonempty;
    true
  end

(* Enqueue a whole batch for a single [chan_op] charge — the amortized
   communication of Section 2.3.  Blocks (after the charge) whenever the
   next item would overflow a bounded channel. *)
let send_batch ch vs =
  Engine.compute (cost ch);
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  List.iter
    (fun v ->
      while ch.capacity > 0 && Queue.length ch.q >= ch.capacity do
        waited := true;
        Engine.wait_on ch.nonfull
      done;
      let seq = ch.total_sent in
      Queue.push v ch.q;
      ch.total_sent <- seq + 1;
      hb_send ch seq;
      emit_send ch seq;
      Engine.signal ch.nonempty)
    vs;
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc_by h.cm_sends (List.length vs);
    Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
    if !waited then Metrics.observe_ns h.cm_send_block (Engine.now () - t0)
  end;
  tl_wait !waited t0

(* Dequeue at least one and at most [max] items (default: everything
   queued) for a single [chan_op] charge. *)
let recv_batch ?max ch =
  Engine.compute (cost ch);
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  while Queue.is_empty ch.q do
    waited := true;
    Engine.wait_on ch.nonempty
  done;
  let limit =
    match max with
    | Some m ->
        if m < 1 then invalid_arg "Chan.recv_batch: max must be >= 1";
        m
    | None -> Queue.length ch.q
  in
  let out = ref [] in
  let taken = ref 0 in
  let base = ch.total_received in
  while !taken < limit && not (Queue.is_empty ch.q) do
    out := Queue.pop ch.q :: !out;
    incr taken
  done;
  ch.total_received <- base + !taken;
  if Hb.enabled () then
    for i = 0 to !taken - 1 do
      hb_recv ch (base + i)
    done;
  if Trace.enabled () then
    for i = 0 to !taken - 1 do
      emit_recv ch (base + i)
    done;
  Engine.broadcast ch.nonfull;
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc_by h.cm_recvs !taken;
    Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
    if !waited then Metrics.observe_ns h.cm_recv_block (Engine.now () - t0)
  end;
  tl_wait !waited t0;
  List.rev !out

(* Keep only the items satisfying [keep], preserving order; returns how many
   were removed.  Used to strip pause sentinels from work queues on
   resumption without dropping pending requests. *)
let filter ch keep =
  (* A flush is a real channel operation: charge one op of virtual time so
     the reconfiguration overhead ledger sees a nonzero flush phase. *)
  Engine.compute (cost ch);
  let kept = Queue.create () in
  let removed = ref 0 in
  Queue.iter (fun v -> if keep v then Queue.push v kept else incr removed) ch.q;
  Queue.clear ch.q;
  Queue.transfer kept ch.q;
  if !removed > 0 then Engine.broadcast ch.nonfull;
  if Parcae_obs.Trace.enabled () then
    Parcae_obs.Trace.emit ~t:(Engine.now ())
      (Parcae_obs.Event.Chan_flush { chan = ch.name; dropped = !removed });
  if Metrics.enabled () then begin
    Metrics.inc_by (handles ch).cm_flushed !removed;
    note_depth ch
  end;
  !removed

(* Discard all queued items; used when the runtime resets communication
   channels on resumption after a reconfiguration (Section 4.5). *)
let drain ch =
  Engine.compute (cost ch);
  let n = Queue.length ch.q in
  Queue.clear ch.q;
  Engine.broadcast ch.nonfull;
  if Parcae_obs.Trace.enabled () then
    Parcae_obs.Trace.emit ~t:(Engine.now ())
      (Parcae_obs.Event.Chan_flush { chan = ch.name; dropped = n });
  if Metrics.enabled () then begin
    Metrics.inc_by (handles ch).cm_flushed n;
    note_depth ch
  end;
  n
