(* Blocking FIFO channels between simulated threads.

   MTCG-style pipelines use these as the point-to-point communication
   channels between tasks; workloads also use them as work queues.  Each
   operation charges the machine's [chan_op] cost to the calling thread,
   which is how communication overhead erodes parallel efficiency in the
   simulation (Section 2.3 of the paper).  Channels are multi-producer
   multi-consumer; used single-producer single-consumer they preserve
   sequential order, which the pause/reconfigure protocol relies on. *)

module Metrics = Parcae_obs.Metrics
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb
module Ring = Parcae_util.Ring

(* Per-channel metric handles, labeled by channel name.  Cached against the
   installed registry so the hot path pays one physical comparison, not a
   hashtable lookup per operation. *)
type chan_metrics = {
  cm_sends : Metrics.counter;
  cm_recvs : Metrics.counter;
  cm_depth : Metrics.gauge;
  cm_send_block : Metrics.histogram;
  cm_recv_block : Metrics.histogram;
  cm_flushed : Metrics.counter;
}

type 'a t = {
  name : string;
  capacity : int;  (* 0 = unbounded *)
  q : 'a Ring.t;  (* slot-reusing FIFO: no cell per message *)
  eng : Engine.t;
  nonempty : Engine.cond;
  nonfull : Engine.cond;
  op_cost : int;  (* resolved against the machine at creation *)
  mutable total_sent : int;
  mutable total_received : int;
  mutable mx : (Metrics.t * chan_metrics) option;
}

(* The operation cost is resolved once here — looking the machine up per
   operation needed an [Engine_of] effect on every send and receive. *)
let create ?(capacity = 0) ?op_cost eng name =
  {
    name;
    capacity;
    q = Ring.create ();
    eng;
    nonempty = Engine.cond_create ();
    nonfull = Engine.cond_create ();
    op_cost =
      (match op_cost with
      | Some c -> c
      | None -> (Engine.machine eng).Machine.chan_op);
    total_sent = 0;
    total_received = 0;
    mx = None;
  }

let handles ch =
  let reg = Metrics.current () in
  match ch.mx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let labels = [ ("chan", ch.name) ] in
      let h =
        {
          cm_sends =
            Metrics.counter reg "parcae_chan_sends_total" ~labels
              ~help:"Items enqueued, per channel.";
          cm_recvs =
            Metrics.counter reg "parcae_chan_recvs_total" ~labels
              ~help:"Items dequeued, per channel.";
          cm_depth =
            Metrics.gauge reg "parcae_chan_depth" ~labels
              ~help:"Current queue occupancy, per channel.";
          cm_send_block =
            Metrics.histogram reg "parcae_chan_send_block_ns" ~labels
              ~help:"Virtual time senders spent blocked on a full channel.";
          cm_recv_block =
            Metrics.histogram reg "parcae_chan_recv_block_ns" ~labels
              ~help:"Virtual time receivers spent blocked on an empty channel.";
          cm_flushed =
            Metrics.counter reg "parcae_chan_flushed_total" ~labels
              ~help:"Items dropped by filter/drain on reconfiguration.";
        }
      in
      ch.mx <- Some (reg, h);
      h

let note_depth ch =
  if Metrics.enabled () then
    Metrics.set_gauge (handles ch).cm_depth (float_of_int (Ring.length ch.q))

(* The wait instruments want a start time when either sink is live. *)
let observing () = Metrics.enabled () || Timeline.enabled ()

(* Any live sink (metrics, timeline, trace, sanitizer) routes operations
   through the fully instrumented paths.  With all sinks disabled — the
   serving steady state — the fast paths below run instead; they keep the
   counters and the blocking protocol bit-identical but allocate nothing
   (no closures, refs or options per operation). *)
let instrumented () =
  Metrics.enabled () || Timeline.enabled () || Trace.enabled () || Hb.enabled ()

(* Explain a measured block as Chan_wait on the core the thread last
   computed on (non-burst code runs off-core in the sim).  While blocked
   the thread held no core — the wait displaced Park time on that lane,
   which is exactly what the timeline's idle-first attribution transfer
   expresses. *)
let tl_wait waited t0 =
  if waited then
    match Timeline.get () with
    | Some tl ->
        let th = Engine.self () in
        let core = if th.Engine.core >= 0 then th.Engine.core else th.Engine.last_core in
        if core >= 0 && core < Timeline.lanes tl then
          Timeline.attribute tl ~lane:core Timeline.Chan_wait (Engine.now () - t0)
    | None -> ()

(* Sanitizer edges use the exact (chan, seq) FIFO pairing.  The send-side
   clock must be published before any other thread can observe the item:
   these run at the seq-assignment point, before the [signal] effect can
   transfer control to a consumer. *)
let hb_send ch seq =
  if Hb.enabled () then Hb.on_send ~task:(Engine.self ()).Engine.tid ~chan:ch.name ~seq

let hb_recv ch seq =
  if Hb.enabled () then Hb.on_recv ~task:(Engine.self ()).Engine.tid ~chan:ch.name ~seq

let emit_send ch seq =
  if Trace.enabled () then begin
    let th = Engine.self () in
    Trace.emit ~t:(Engine.now ())
      (Event.Chan_send_ev
         { chan = ch.name; seq; task = th.Engine.tid; busy_ns = th.Engine.busy_ns })
  end

let emit_recv ch seq =
  if Trace.enabled () then begin
    let th = Engine.self () in
    Trace.emit ~t:(Engine.now ())
      (Event.Chan_recv_ev
         { chan = ch.name; seq; task = th.Engine.tid; busy_ns = th.Engine.busy_ns })
  end

let length ch = Ring.length ch.q
let is_empty ch = Ring.is_empty ch.q
let total_sent ch = ch.total_sent
let total_received ch = ch.total_received

(* The blocking operations share a discipline: the op cost is computed
   immediately ([compute_in]) — a channel operation is a synchronization
   edge, so deferring its cost would shorten the simulated critical path
   and let dependent threads observe data before the communication was
   paid for.  Only thread-local bookkeeping debt (hook charges) stays
   deferred, and that debt is flushed before the thread would wait.
   Flushing suspends, so the wait predicate is always re-checked after a
   flush — waiting right after one could miss a signal sent while the
   thread was off the waiter queue.

   The wait helpers are top-level recursive functions on purpose: a local
   [let rec loop] closes over the operation's locals and is allocated per
   call, which the instrumentation-off fast paths must not do. *)
let rec wait_nonfull ch =
  if ch.capacity > 0 && Ring.length ch.q >= ch.capacity then begin
    if not (Engine.flush_charges ch.eng) then Engine.wait_on_in ch.eng ch.nonfull;
    wait_nonfull ch
  end

let rec wait_nonempty ch =
  if Ring.is_empty ch.q then begin
    if not (Engine.flush_charges ch.eng) then Engine.wait_on_in ch.eng ch.nonempty;
    wait_nonempty ch
  end

(* Enqueue [v], blocking while the channel is at capacity. *)
let send_slow ch v =
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  let rec loop () =
    if ch.capacity > 0 && Ring.length ch.q >= ch.capacity then begin
      waited := true;
      if not (Engine.flush_charges ch.eng) then Engine.wait_on_in ch.eng ch.nonfull;
      loop ()
    end
    else begin
      let seq = ch.total_sent in
      Ring.push ch.q v;
      ch.total_sent <- seq + 1;
      hb_send ch seq;
      Engine.signal ch.nonempty;
      seq
    end
  in
  let seq = loop () in
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_sends;
    Metrics.set_gauge h.cm_depth (float_of_int (Ring.length ch.q));
    if !waited then Metrics.observe_ns h.cm_send_block (Engine.now () - t0)
  end;
  tl_wait !waited t0;
  emit_send ch seq

let send ch v =
  Engine.compute_in ch.eng ch.op_cost;
  if instrumented () then send_slow ch v
  else begin
    wait_nonfull ch;
    Ring.push ch.q v;
    ch.total_sent <- ch.total_sent + 1;
    Engine.signal ch.nonempty
  end

(* Dequeue, blocking while the channel is empty. *)
let recv_slow ch =
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  let rec loop () =
    match Ring.pop_opt ch.q with
    | Some v ->
        let seq = ch.total_received in
        ch.total_received <- seq + 1;
        hb_recv ch seq;
        Engine.signal ch.nonfull;
        (v, seq)
    | None ->
        waited := true;
        if not (Engine.flush_charges ch.eng) then Engine.wait_on_in ch.eng ch.nonempty;
        loop ()
  in
  let v, seq = loop () in
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_recvs;
    Metrics.set_gauge h.cm_depth (float_of_int (Ring.length ch.q));
    if !waited then Metrics.observe_ns h.cm_recv_block (Engine.now () - t0)
  end;
  tl_wait !waited t0;
  emit_recv ch seq;
  v

let recv ch =
  Engine.charge ch.eng ch.op_cost;
  if instrumented () then recv_slow ch
  else begin
    wait_nonempty ch;
    let v = Ring.pop ch.q in
    ch.total_received <- ch.total_received + 1;
    Engine.signal ch.nonfull;
    v
  end

(* Enqueue [v] regardless of capacity.  Control sentinels use this: a lane
   re-enqueueing a sentinel it just consumed must never block, or the
   pause/flush protocol could deadlock on a full channel. *)
let force_send ch v =
  Engine.compute_in ch.eng ch.op_cost;
  let seq = ch.total_sent in
  Ring.push ch.q v;
  ch.total_sent <- seq + 1;
  hb_send ch seq;
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_sends;
    Metrics.set_gauge h.cm_depth (float_of_int (Ring.length ch.q))
  end;
  emit_send ch seq;
  Engine.signal ch.nonempty

(* Non-blocking receive. *)
let try_recv ch =
  match Ring.pop_opt ch.q with
  | Some v ->
      Engine.charge ch.eng ch.op_cost;
      let seq = ch.total_received in
      ch.total_received <- seq + 1;
      hb_recv ch seq;
      if Metrics.enabled () then begin
        let h = handles ch in
        Metrics.inc h.cm_recvs;
        Metrics.set_gauge h.cm_depth (float_of_int (Ring.length ch.q))
      end;
      emit_recv ch seq;
      Engine.signal ch.nonfull;
      Some v
  | None -> None

(* Non-blocking send; [false] if the channel is full. *)
let try_send ch v =
  if ch.capacity > 0 && Ring.length ch.q >= ch.capacity then false
  else begin
    Engine.compute_in ch.eng ch.op_cost;
    let seq = ch.total_sent in
    Ring.push ch.q v;
    ch.total_sent <- seq + 1;
    hb_send ch seq;
    if Metrics.enabled () then begin
      let h = handles ch in
      Metrics.inc h.cm_sends;
      Metrics.set_gauge h.cm_depth (float_of_int (Ring.length ch.q))
    end;
    emit_send ch seq;
    Engine.signal ch.nonempty;
    true
  end

(* Enqueue a whole batch for a single [chan_op] charge — the amortized
   communication of Section 2.3.  Blocks (after the charge) whenever the
   next item would overflow a bounded channel. *)
let send_batch_slow ch vs =
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  List.iter
    (fun v ->
      while ch.capacity > 0 && Ring.length ch.q >= ch.capacity do
        waited := true;
        if not (Engine.flush_charges ch.eng) then Engine.wait_on_in ch.eng ch.nonfull
      done;
      let seq = ch.total_sent in
      Ring.push ch.q v;
      ch.total_sent <- seq + 1;
      hb_send ch seq;
      emit_send ch seq;
      Engine.signal ch.nonempty)
    vs;
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc_by h.cm_sends (List.length vs);
    Metrics.set_gauge h.cm_depth (float_of_int (Ring.length ch.q));
    if !waited then Metrics.observe_ns h.cm_send_block (Engine.now () - t0)
  end;
  tl_wait !waited t0

let rec send_all ch = function
  | [] -> ()
  | v :: tl ->
      wait_nonfull ch;
      Ring.push ch.q v;
      ch.total_sent <- ch.total_sent + 1;
      Engine.signal ch.nonempty;
      send_all ch tl

let send_batch ch vs =
  Engine.compute_in ch.eng ch.op_cost;
  if instrumented () then send_batch_slow ch vs else send_all ch vs

(* Dequeue at least one and at most [max] items (default: everything
   queued) for a single [chan_op] charge. *)
let recv_batch_slow ~limit ch =
  let waited = ref false in
  let t0 = if observing () then Engine.now () else 0 in
  while Ring.is_empty ch.q do
    waited := true;
    if not (Engine.flush_charges ch.eng) then Engine.wait_on_in ch.eng ch.nonempty
  done;
  let limit = match limit with -1 -> Ring.length ch.q | m -> m in
  let out = ref [] in
  let taken = ref 0 in
  let base = ch.total_received in
  while !taken < limit && not (Ring.is_empty ch.q) do
    out := Ring.pop ch.q :: !out;
    incr taken
  done;
  ch.total_received <- base + !taken;
  if Hb.enabled () then
    for i = 0 to !taken - 1 do
      hb_recv ch (base + i)
    done;
  if Trace.enabled () then
    for i = 0 to !taken - 1 do
      emit_recv ch (base + i)
    done;
  Engine.broadcast ch.nonfull;
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc_by h.cm_recvs !taken;
    Metrics.set_gauge h.cm_depth (float_of_int (Ring.length ch.q));
    if !waited then Metrics.observe_ns h.cm_recv_block (Engine.now () - t0)
  end;
  tl_wait !waited t0;
  List.rev !out

(* Claim up to [n] queued items in FIFO order; the caller has ensured the
   queue is nonempty.  Builds the result front-first so no reversal (and
   no accumulator cells) is needed. *)
let rec take_n ch n =
  if n = 0 || Ring.is_empty ch.q then []
  else begin
    let v = Ring.pop ch.q in
    ch.total_received <- ch.total_received + 1;
    v :: take_n ch (n - 1)
  end

let recv_batch ?max ch =
  Engine.charge ch.eng ch.op_cost;
  let limit =
    match max with
    | Some m ->
        if m < 1 then invalid_arg "Chan.recv_batch: max must be >= 1";
        m
    | None -> -1
  in
  if instrumented () then recv_batch_slow ~limit ch
  else begin
    wait_nonempty ch;
    let out = take_n ch (if limit = -1 then Ring.length ch.q else limit) in
    Engine.broadcast ch.nonfull;
    out
  end

(* Keep only the items satisfying [keep], preserving order; returns how many
   were removed.  Used to strip pause sentinels from work queues on
   resumption without dropping pending requests. *)
let filter ch keep =
  (* A flush is a real channel operation: charge one op of virtual time so
     the reconfiguration overhead ledger sees a nonzero flush phase. *)
  Engine.compute_in ch.eng ch.op_cost;
  let removed = ref (Ring.filter_in_place keep ch.q) in
  if !removed > 0 then Engine.broadcast ch.nonfull;
  if Parcae_obs.Trace.enabled () then
    Parcae_obs.Trace.emit ~t:(Engine.now ())
      (Parcae_obs.Event.Chan_flush { chan = ch.name; dropped = !removed });
  if Metrics.enabled () then begin
    Metrics.inc_by (handles ch).cm_flushed !removed;
    note_depth ch
  end;
  !removed

(* Discard all queued items; used when the runtime resets communication
   channels on resumption after a reconfiguration (Section 4.5). *)
let drain ch =
  Engine.compute_in ch.eng ch.op_cost;
  let n = Ring.length ch.q in
  Ring.clear ch.q;
  Engine.broadcast ch.nonfull;
  if Parcae_obs.Trace.enabled () then
    Parcae_obs.Trace.emit ~t:(Engine.now ())
      (Parcae_obs.Event.Chan_flush { chan = ch.name; dropped = n });
  if Metrics.enabled () then begin
    Metrics.inc_by (handles ch).cm_flushed n;
    note_depth ch
  end;
  n
