(* The closed-loop run-time controller (Section 6.4).

   This is Morta's default optimization mechanism: a finite-state machine
   (Figure 6.3) that establishes a sequential baseline, calibrates each
   parallel scheme exposed by the compiler or programmer, optimizes the
   degrees of parallelism by finite-difference gradient ascent
   (Section 6.4.2, Algorithm 4), and then passively monitors for workload or
   resource change, re-entering calibration when the environment shifts.

   The controller optimizes:  maximize iteration throughput, and subject to
   that, minimize threads used (saving energy).  Optimized configurations
   are cached per (scheme, thread budget) and reused on re-entry
   (Section 6.4.2), and the thread count actually needed is reported to the
   platform-wide daemon so slack can be redistributed (Section 6.4.3). *)

module Engine = Parcae_platform.Engine
module Series = Parcae_util.Series
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Trace = Parcae_obs.Trace
module Metrics = Parcae_obs.Metrics
module Flight = Parcae_obs.Flight

type state = Init | Calibrate | Optimize | Monitor

(* The observability layer carries its own copy of the FSM state type (it
   sits below the runtime in the dependency order). *)
let obs_state : state -> Parcae_obs.Event.ctrl_state = function
  | Init -> Parcae_obs.Event.Init
  | Calibrate -> Parcae_obs.Event.Calibrate
  | Optimize -> Parcae_obs.Event.Optimize
  | Monitor -> Parcae_obs.Event.Monitor

let state_to_string = function
  | Init -> "INIT"
  | Calibrate -> "CALIB"
  | Optimize -> "OPT"
  | Monitor -> "MONITOR"

(* State encoding used in the recorded timeline (Figure 8.8). *)
let state_code = function Init -> 0 | Calibrate -> 1 | Optimize -> 2 | Monitor -> 3

(* The optimization objective (Section 6.4: "Morta could be re-targeted at
   minimizing the energy delay squared product, since delay can be measured
   directly and energy can be indirectly computed from running power and
   elapsed execution time measurements"). *)
type objective =
  | Max_throughput  (* iterations/second; ties prefer fewer threads *)
  | Min_energy_delay2
      (* minimize E*D^2 per iteration = avg_power / throughput^3; the
         fitness maximized is throughput^3 / avg_power *)

type params = {
  objective : objective;
  nseq : int;  (* baseline iterations measured in Init (paper: 10) *)
  npar_factor : int;
      (* iterations measured per DoP probe = max(nseq, npar_factor * dop);
         the paper uses 2, but short iterations need longer windows to
         smooth round-quantization noise *)
  poll_ns : int;  (* polling granularity while waiting for iterations *)
  monitor_ns : int;  (* sampling period in the Monitor state *)
  change_frac : float;  (* relative throughput change that re-triggers *)
  efficiency_floor : float;  (* minimum parallel efficiency to keep a scheme *)
  max_monitor_rounds : int;  (* 0 = unlimited *)
}

let default_params =
  {
    objective = Max_throughput;
    nseq = 10;
    npar_factor = 2;
    poll_ns = 20_000;
    monitor_ns = 50_000_000;
    change_frac = 0.25;
    efficiency_floor = 0.5;
    max_monitor_rounds = 0;
  }

type t = {
  region : Region.t;
  params : params;
  mutable state : state;
  mutable state_since : int;  (* virtual time of the last state entry *)
  mutable stop : bool;
  mutable resource_dirty : bool;  (* budget changed since last look *)
  mutable last_budget : int;
  mutable best_throughput : float;  (* T* *)
  mutable seq_throughput : float;  (* Tseq *)
  cache : (int * int, Config.t) Hashtbl.t;  (* (choice, budget) -> config *)
  states : Series.t;  (* (time s, state code) timeline *)
  throughputs : Series.t;  (* (time s, iterations/s) timeline *)
  mutable on_usage : int -> unit;  (* report optimized thread usage *)
}

let create ?(params = default_params) region =
  {
    region;
    params;
    state = Init;
    state_since = Engine.time region.Region.eng;
    stop = false;
    resource_dirty = false;
    last_budget = Region.budget region;
    best_throughput = 0.0;
    seq_throughput = 0.0;
    cache = Hashtbl.create 7;
    states = Series.create "controller-state";
    throughputs = Series.create "throughput";
    on_usage = ignore;
  }

let states t = t.states
let throughputs t = t.throughputs
let request_stop t = t.stop <- true

(* The daemon pokes this when it changes the region's budget. *)
let notify_resource_change t =
  t.resource_dirty <- true

let set_usage_callback t f = t.on_usage <- f

(* ------------------------------------------------------------------ *)
(* Scheme classification.                                              *)
(* ------------------------------------------------------------------ *)

let scheme_is_sequential (pd : Task.par_descriptor) =
  List.for_all (fun task -> task.Task.ttype = Task.Seq) pd.Task.tasks

(* Indices of the parallel tasks in a descriptor. *)
let parallel_tasks (pd : Task.par_descriptor) =
  List.mapi (fun i task -> (i, task)) pd.Task.tasks
  |> List.filter (fun (_, task) -> task.Task.ttype = Task.Par)
  |> List.map fst

let seq_task_count pd =
  List.length (List.filter (fun task -> task.Task.ttype = Task.Seq) pd.Task.tasks)

(* ------------------------------------------------------------------ *)
(* Measurement.                                                        *)
(* ------------------------------------------------------------------ *)

let now_s t = Engine.seconds_of_ns (Engine.time t.region.Region.eng)

let record_state t =
  Series.add t.states ~time:(now_s t) ~value:(float_of_int (state_code t.state))

(* Attribute the dwell time of the state being left to its counter series. *)
let note_dwell t ~now =
  if Metrics.enabled () && now > t.state_since then
    Metrics.inc_by
      (Metrics.counter (Metrics.current ()) "parcae_ctrl_state_dwell_ns_total"
         ~labels:[ ("region", t.region.Region.name); ("state", state_to_string t.state) ]
         ~help:"Virtual time the controller spent in each FSM state.")
      (now - t.state_since)

let enter t state =
  let now = Engine.time t.region.Region.eng in
  note_dwell t ~now;
  t.state_since <- now;
  t.state <- state;
  record_state t;
  if Trace.enabled () then
    Trace.emit
      ~t:(Engine.time t.region.Region.eng)
      (Parcae_obs.Event.Ctrl_state
         { region = t.region.Region.name; state = obs_state state })

let note_throughput t thr =
  Series.add t.throughputs ~time:(now_s t) ~value:thr;
  if Metrics.enabled () then
    Metrics.set_gauge
      (Metrics.gauge (Metrics.current ()) "parcae_ctrl_throughput"
         ~labels:[ ("region", t.region.Region.name) ]
         ~help:"Most recent throughput sample observed by the controller.")
      thr

let finished t = Region.is_done t.region || t.stop

(* Apply [cfg] if it differs from the current configuration. *)
let apply t cfg = Executor.reconfigure t.region cfg

(* One flight-recorder decision, stamped with the current FSM state and a
   Decima snapshot.  [candidate] is where the rule started, [chosen] where
   it settled; [probes] is the calibration table it consulted. *)
let record_flight t ?(probes = []) ?gradient ?(inputs = []) ~reason ~candidate ~chosen () =
  if Flight.enabled () then begin
    let region = t.region in
    Flight.decision
      ~t:(Engine.time region.Region.eng)
      ~actor:"controller" ~region:region.Region.name ~state:(obs_state t.state) ~reason
      ~tasks:(Decima.flight_tasks (Region.decima region))
      ~probes ?gradient ~inputs ~candidate ~chosen
      ~threads:(Config.threads (Region.config region))
      ~budget:(Region.budget region) ()
  end

(* Wait until the region's output task completes [n] more instances;
   returns the measured fitness (throughput for [Max_throughput];
   throughput^3 / average power for [Min_energy_delay2]), or None if the
   region completed / the controller was stopped meanwhile. *)
let measure_iters t n =
  let d = Region.decima t.region in
  let eng = t.region.Region.eng in
  let last = Decima.task_count d - 1 in
  let snap = Decima.snapshot d in
  let t0 = Engine.time eng and e0 = Engine.energy_joules eng in
  let rec wait () =
    if finished t then None
    else if Decima.iters_since d snap last >= n then begin
      let thr = Decima.rate_since d snap last in
      note_throughput t thr;
      match t.params.objective with
      | Max_throughput -> Some thr
      | Min_energy_delay2 ->
          let dt = Engine.seconds_of_ns (Engine.time eng - t0) in
          let avg_power =
            if dt > 0.0 then (Engine.energy_joules eng -. e0) /. dt else infinity
          in
          Some (thr *. thr *. thr /. Float.max 1.0 avg_power)
    end
    else begin
      Engine.sleep t.params.poll_ns;
      wait ()
    end
  in
  wait ()

(* Wait for [n] iterations without recording (the settle window: right
   after a reconfiguration the pipeline still carries mixed-configuration
   work, especially under barrier-less resizes). *)
let settle_iters t n =
  let d = Region.decima t.region in
  let last = Decima.task_count d - 1 in
  let snap = Decima.snapshot d in
  let rec wait () =
    if finished t then ()
    else if Decima.iters_since d snap last >= n then ()
    else begin
      Engine.sleep t.params.poll_ns;
      wait ()
    end
  in
  wait ()

(* Measure the throughput of configuration [cfg] over [n] iterations,
   after letting the configuration settle for half a window. *)
let measure_config t cfg n =
  let changed = not (Config.equal cfg (Region.config t.region)) in
  apply t cfg;
  if changed then settle_iters t (n / 2);
  measure_iters t n

(* Npar from Section 6.4.1: max(Nseq, npar_factor * current DoP). *)
let npar t d = max t.params.nseq (t.params.npar_factor * d)

(* ------------------------------------------------------------------ *)
(* Gradient ascent on one task's DoP (Section 6.4.2).                  *)
(* ------------------------------------------------------------------ *)

(* Optimize task [i]'s DoP within [1, cap], starting from the current
   configuration.  Returns the best (config, throughput) found, or None if
   the run ended.  The decision rule itself — probe both neighbours of the
   starting DoP to establish a direction, then climb while finite
   differences of measured fitness improve, implementing the unimodal
   assumption of Figure 6.4 — is the pure [Flight.Ascent.climb], shared
   with the offline replayer so recorded runs re-execute literally the
   same code.  Here its measurement function reconfigures the live region
   and samples Decima; offline it looks fitness up in the recorded probe
   table. *)
let gradient_ascent t i cap =
  let cfg0 = Region.config t.region in
  let d0 = (Config.dops cfg0).(i) in
  let d0 = min d0 cap in
  let thr_at d =
    if Metrics.enabled () then
      Metrics.inc
        (Metrics.counter (Metrics.current ()) "parcae_ctrl_gradient_steps_total"
           ~labels:[ ("region", t.region.Region.name) ]
           ~help:"Finite-difference DoP probes taken during gradient ascent.");
    let cfg = Config.with_dop cfg0 i d in
    measure_config t cfg (npar t d)
  in
  match Flight.Ascent.climb ~measure:thr_at ~d0 ~cap with
  | None -> None
  | Some oc ->
      let best = Config.with_dop cfg0 i oc.Flight.Ascent.chosen in
      apply t best;
      record_flight t ~reason:oc.Flight.Ascent.reason ~probes:oc.Flight.Ascent.probes
        ?gradient:(Flight.Ascent.gradient ~d0 oc.Flight.Ascent.probes)
        ~inputs:[ ("task", float_of_int i); ("cap", float_of_int cap) ]
        ~candidate:d0 ~chosen:oc.Flight.Ascent.chosen ();
      Some (best, oc.Flight.Ascent.fitness)

(* Algorithm 4: optimize every parallel task's DoP, prioritizing tasks with
   the lowest throughput, under the region budget.  Returns the optimized
   throughput, or None if the run ended. *)
let optimize_dops t =
  let region = t.region in
  let pd = Region.scheme region in
  let d = Region.decima region in
  let budget = Region.budget region in
  let par = parallel_tasks pd in
  let seqs = seq_task_count pd in
  let navail = max 1 (budget - seqs) in
  let opt = Hashtbl.create 7 and sat = Hashtbl.create 7 in
  let result = ref (Some 0.0) in
  let total_dop () =
    Array.fold_left ( + ) 0 (Config.dops (Region.config region))
    - seqs
  in
  let continue_ = ref true in
  while !continue_ && not (finished t) do
    continue_ := false;
    (* Sort parallel tasks by ascending measured throughput. *)
    let order =
      List.sort
        (fun a b -> compare (Decima.task_rate d a) (Decima.task_rate d b))
        par
    in
    let rec try_tasks = function
      | [] -> ()
      | i :: rest ->
          let cur = (Config.dops (Region.config region)).(i) in
          let cap = max 1 (navail - total_dop () + cur) in
          let needs_opt = not (Hashtbl.mem opt i) in
          let has_headroom = cur < cap && not (Hashtbl.mem sat i) in
          if needs_opt || has_headroom then begin
            (match gradient_ascent t i cap with
            | None -> result := None
            | Some (_, thr) ->
                Hashtbl.replace opt i true;
                let new_dop = (Config.dops (Region.config region)).(i) in
                if new_dop >= cap then Hashtbl.remove sat i else Hashtbl.replace sat i true;
                result := Some thr);
            if !result <> None then continue_ := true
          end
          else try_tasks rest
    in
    try_tasks order
  done;
  if finished t then None else !result

(* ------------------------------------------------------------------ *)
(* The finite-state machine (Figure 6.3).                              *)
(* ------------------------------------------------------------------ *)

(* Default parallel DoP vector for a scheme under the current budget:
   every parallel task starts at half its fair share (Section 6.4.2). *)
let default_parallel_config region choice =
  let pd = List.nth region.Region.schemes choice in
  let budget = Region.budget region in
  let par = parallel_tasks pd in
  let n_par = max 1 (List.length par) in
  let seqs = seq_task_count pd in
  let navail = max 1 (budget - seqs) in
  let fair = max 1 (navail / (2 * n_par)) in
  let tasks =
    List.map
      (fun task -> if task.Task.ttype = Task.Par then Config.task fair else Config.seq_task)
      pd.Task.tasks
  in
  { (Config.make tasks) with Config.choice }

(* One full pass: baseline, then calibrate+optimize every scheme, adopt the
   best.  [schemes_to_try] lists the choices to explore. *)
let optimize_pass t ~seq_choice ~par_choices =
  let region = t.region in
  (* State 1: sequential baseline. *)
  enter t Init;
  let run_baseline c =
    let pd = List.nth region.Region.schemes c in
    let cfg = { (Task.default_config pd) with Config.choice = c } in
    apply t cfg;
    match measure_iters t t.params.nseq with
    | Some thr ->
        t.seq_throughput <- thr;
        let threads = Config.threads cfg in
        record_flight t ~reason:"baseline"
          ~probes:[ (c, thr) ]
          ~inputs:[ ("choice", float_of_int c) ]
          ~candidate:threads ~chosen:threads ()
    | None -> ()
  in
  (match seq_choice with
  | Some c -> run_baseline c
  | None -> (
      (* No sequential version available: baseline is the default config of
         the first scheme to try. *)
      match par_choices with c :: _ -> run_baseline c | [] -> ()));
  if not (finished t) then begin
    (* (scheme choice, measured fitness) table feeding the final
       adopt-best decision; seeded with the baseline when it stands as a
       candidate. *)
    let scheme_probes = ref [] in
    let note_scheme_probe c thr = scheme_probes := (c, thr) :: !scheme_probes in
    let best : (Config.t * float) option ref =
      ref
        (match seq_choice with
        | Some c ->
            let pd = List.nth region.Region.schemes c in
            note_scheme_probe c t.seq_throughput;
            Some ({ (Task.default_config pd) with Config.choice = c }, t.seq_throughput)
        | None -> None)
    in
    List.iter
      (fun choice ->
        if not (finished t) then begin
          let budget = Region.budget region in
          match Hashtbl.find_opt t.cache (choice, budget) with
          | Some cached ->
              (* Cache hit: reuse the optimized configuration directly. *)
              if Metrics.enabled () then
                Metrics.inc
                  (Metrics.counter (Metrics.current ()) "parcae_ctrl_cache_hits_total"
                     ~labels:[ ("region", t.region.Region.name) ]
                     ~help:"Optimized configurations reused from the (scheme, budget) cache.");
              enter t Calibrate;
              apply t cached;
              let threads = Config.threads cached in
              record_flight t ~reason:"cache_hit"
                ~inputs:[ ("choice", float_of_int choice); ("budget", float_of_int budget) ]
                ~candidate:threads ~chosen:threads ();
              (match measure_iters t t.params.nseq with
              | Some thr -> (
                  note_scheme_probe choice thr;
                  match !best with
                  | Some (_, bt) when bt >= thr -> ()
                  | _ -> best := Some (cached, thr))
              | None -> ())
          | None ->
              (* State 2: calibrate the scheme's default configuration. *)
              enter t Calibrate;
              let cfg = default_parallel_config region choice in
              apply t cfg;
              let threads = Config.threads cfg in
              record_flight t ~reason:"calibration_point"
                ~inputs:[ ("choice", float_of_int choice) ]
                ~candidate:threads ~chosen:threads ();
              (match measure_iters t t.params.nseq with
              | None -> ()
              | Some _ -> (
                  (* State 3: optimize DoPs. *)
                  enter t Optimize;
                  match optimize_dops t with
                  | None -> ()
                  | Some thr ->
                      let optimized = Region.config region in
                      let used = Config.threads optimized in
                      (* Profitability: parallel efficiency must clear the
                         floor, else the scheme is not worth its threads. *)
                      let profitable =
                        t.seq_throughput <= 0.0
                        || thr
                           >= t.params.efficiency_floor *. float_of_int used *. t.seq_throughput
                      in
                      if profitable then begin
                        Hashtbl.replace t.cache (choice, budget) optimized;
                        note_scheme_probe choice thr;
                        match !best with
                        | Some (_, bt) when bt >= thr -> ()
                        | _ -> best := Some (optimized, thr)
                      end))
        end)
      par_choices;
    (* Adopt the best configuration found. *)
    match !best with
    | Some (cfg, thr) when not (finished t) ->
        apply t cfg;
        t.best_throughput <- thr;
        record_flight t ~reason:"adopt_best"
          ~probes:(List.rev !scheme_probes)
          ~inputs:[ ("choice", float_of_int cfg.Config.choice) ]
          ~candidate:(Config.threads cfg) ~chosen:(Config.threads cfg) ();
        t.on_usage (Config.threads cfg)
    | _ -> ()
  end

(* The Monitor state (State 4): passively watch throughput; detect workload
   change (relative drift beyond [change_frac]) and resource change (budget
   updates from the daemon).  Returns the reason monitoring ended. *)
let monitor t =
  enter t Monitor;
  let d = Region.decima t.region in
  let last = Decima.task_count d - 1 in
  let rounds = ref 0 in
  let reason = ref `Finished in
  (* Named scalars the exit rule depended on, recorded with the decision
     so the replayer can re-check it. *)
  let exit_inputs = ref [] in
  (* Workload drift is detected against the first clean monitor window's
     raw throughput (fitness units differ per objective, but workload
     change always shows in the iteration rate). *)
  let base = ref 0.0 in
  let continue_ = ref true in
  while !continue_ && not (finished t) do
    let snap = Decima.snapshot d in
    Engine.sleep t.params.monitor_ns;
    incr rounds;
    if finished t then continue_ := false
    else if t.resource_dirty then begin
      t.resource_dirty <- false;
      let old_budget = t.last_budget in
      let grew = Region.budget t.region > old_budget in
      t.last_budget <- Region.budget t.region;
      exit_inputs :=
        [ ("old_budget", float_of_int old_budget);
          ("new_budget", float_of_int t.last_budget) ];
      reason := (if grew then `Resources_grew else `Resources_shrank);
      continue_ := false
    end
    else begin
      let thr = Decima.rate_since d snap last in
      note_throughput t thr;
      if !base <= 0.0 then base := thr
      else if abs_float (thr -. !base) /. !base > t.params.change_frac then begin
        exit_inputs :=
          [ ("base", !base); ("thr", thr); ("change_frac", t.params.change_frac) ];
        reason := (if thr < !base then `Workload_slowed else `Workload_sped_up);
        continue_ := false
      end;
      if t.params.max_monitor_rounds > 0 && !rounds >= t.params.max_monitor_rounds then begin
        (* Overrides a drift detected in the same round, as before. *)
        exit_inputs := [];
        reason := `Rounds_exhausted;
        continue_ := false
      end
    end
  done;
  (let threads = Config.threads (Region.config t.region) in
   let tag =
     match !reason with
     | `Finished -> "finished"
     | `Rounds_exhausted -> "rounds_exhausted"
     | `Resources_grew -> "resources_grew"
     | `Resources_shrank -> "resources_shrank"
     | `Workload_slowed -> "workload_slowed"
     | `Workload_sped_up -> "workload_sped_up"
   in
   record_flight t ~reason:tag ~inputs:!exit_inputs ~candidate:threads ~chosen:threads ());
  !reason

(* Main controller loop: run as the body of a dedicated simulated thread. *)
let run t =
  let region = t.region in
  let seq_choice =
    List.mapi (fun i pd -> (i, pd)) region.Region.schemes
    |> List.find_opt (fun (_, pd) -> scheme_is_sequential pd)
    |> Option.map fst
  in
  let par_choices =
    List.mapi (fun i pd -> (i, pd)) region.Region.schemes
    |> List.filter (fun (_, pd) -> not (scheme_is_sequential pd))
    |> List.map fst
  in
  t.last_budget <- Region.budget region;
  let continue_ = ref true in
  while !continue_ && not (finished t) do
    optimize_pass t ~seq_choice ~par_choices;
    if finished t then continue_ := false
    else begin
      match monitor t with
      | `Finished -> continue_ := false
      | `Rounds_exhausted -> continue_ := false
      | `Resources_grew | `Workload_sped_up ->
          (* Keep the current DoP as a starting point; recalibrate. *)
          ()
      | `Resources_shrank | `Workload_slowed ->
          (* Reset: cached configurations for larger budgets do not apply. *)
          ()
    end
  done;
  (* Close out the dwell of the state the controller stopped in. *)
  let now = Engine.time region.Region.eng in
  note_dwell t ~now;
  t.state_since <- now

(* Spawn the controller on its own simulated thread. *)
let spawn eng t =
  Engine.spawn eng ~name:("controller:" ^ t.region.Region.name) (fun () -> run t)
