(** A parallel region under Morta's control: the runtime image of a
    launched ParDescriptor — worker threads, current configuration,
    pause/resume bookkeeping, and Decima statistics.

    The record is exposed because the executor (same library) drives its
    state machine directly; external code should treat the fields as
    read-only and use {!Executor} to act on a region. *)

type status =
  | Init  (** created, workers not yet started *)
  | Running
  | Pausing  (** pause signalled, waiting for workers to park *)
  | Paused  (** all workers parked; safe to reconfigure *)
  | Done  (** master task completed; region terminated *)

val status_to_string : status -> string

type t = {
  name : string;
  eng : Parcae_platform.Engine.t;
  schemes : Parcae_core.Task.par_descriptor list;
      (** alternative top-level parallelizations; [config.choice] picks *)
  mutable config : Parcae_core.Config.t;
  mutable status : status;
  mutable pause_requested : bool;
  mutable master_completed : bool;
  mutable budget : int;  (** thread budget assigned by the daemon *)
  decima : Decima.t;
  mon : Parcae_platform.Engine.monitor;
      (** control-plane monitor guarding the state machine on native;
          free on sim *)
  parked : Parcae_platform.Engine.cond;
  finished : Parcae_platform.Engine.cond;
  mutable active_workers : int;  (** workers currently running *)
  mutable worker_count : int;
  on_pause : (unit -> unit) option;
      (** application callback run when a pause begins (inject wake-up
          sentinels into input queues) *)
  on_reset : (unit -> unit) option;
      (** application callback run between pause and resume (drain
          sentinels, restore channel consistency — Section 4.5) *)
  mutable on_resize : (Parcae_core.Config.t -> (int * int) list) option;
      (** hook run when a light (barrier-less) DoP resize is applied
          (Section 7.2); stamps the epoch request and returns the
          (task index, lane) workers to spawn *)
  mutable light_resizable : bool;
  mutable light_resizes : int;
  mutable reconfig_count : int;
  mutable scheme_switches : int;
  mutable pause_wait_ns : int;
  mutable reconfig_t0 : int;
      (** overhead-ledger phase stamp: pause request time, -1 when idle *)
  mutable first_park_at : int;  (** first worker park time, -1 when idle *)
  mutable restart_mark : int;  (** resume completion time, -1 when idle *)
}

val create :
  ?budget:int ->
  ?on_pause:(unit -> unit) ->
  ?on_reset:(unit -> unit) ->
  name:string ->
  Parcae_platform.Engine.t ->
  Parcae_core.Task.par_descriptor list ->
  Parcae_core.Config.t ->
  t
(** Validate and create (does not start workers; see [Executor.launch]). *)

val scheme : t -> Parcae_core.Task.par_descriptor
(** The descriptor currently selected by the configuration. *)

val scheme_name : t -> string
val config : t -> Parcae_core.Config.t
val status : t -> status
val decima : t -> Decima.t
val budget : t -> int
val set_budget : t -> int -> unit
val threads_in_use : t -> int
val is_done : t -> bool

(** Overhead accounting (the paper's Section 8.3.6 / Chapter 7). *)

val reconfig_count : t -> int
val light_resizes : t -> int
val scheme_switches : t -> int
val pause_wait_ns : t -> int
