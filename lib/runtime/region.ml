(* A parallel region under Morta's control.

   A region is the runtime image of a launched ParDescriptor (Figure 5.1):
   the set of worker threads executing its tasks, the current parallelism
   configuration, pause/resume bookkeeping, and the Decima statistics for
   its tasks.  A region may expose several alternative top-level
   parallelization schemes (e.g. the SEQ / DOANY / PS-DSWP versions Nona
   emits, Section 3.2); [config.choice] selects among them. *)

module Engine = Parcae_platform.Engine
module Barrier = Parcae_platform.Barrier
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event

type status =
  | Init  (* created, workers not yet started *)
  | Running  (* workers executing task instances *)
  | Pausing  (* pause signalled, waiting for workers to park *)
  | Paused  (* all workers parked; safe to reconfigure *)
  | Done  (* master task completed; region terminated *)

let status_to_string = function
  | Init -> "INIT"
  | Running -> "RUNNING"
  | Pausing -> "PAUSING"
  | Paused -> "PAUSED"
  | Done -> "DONE"

type t = {
  name : string;
  eng : Engine.t;
  schemes : Task.par_descriptor list;
      (* alternative top-level parallelizations; config.choice picks one *)
  mutable config : Config.t;
  mutable status : status;
  mutable pause_requested : bool;
  mutable master_completed : bool;
  mutable budget : int;  (* thread budget assigned by the platform daemon *)
  decima : Decima.t;
  mon : Engine.monitor;
      (* control-plane monitor: guards status, active_workers,
         master_completed and the ledger stamps on the native backend
         (free on sim).  Workers' per-iteration fast paths stay outside
         it; only park/pause/resume/resize transitions take it. *)
  parked : Engine.cond;  (* broadcast when all workers have parked *)
  finished : Engine.cond;  (* broadcast when the region is Done *)
  mutable active_workers : int;  (* workers currently running *)
  mutable worker_count : int;
  on_pause : (unit -> unit) option;
      (* application callback run when a pause begins; typically injects
         wake-up sentinels into input queues so blocked workers notice *)
  on_reset : (unit -> unit) option;
      (* application callback run between pause and resume; drains leftover
         sentinels and restores channel consistency (Section 4.5, item 5) *)
  mutable on_resize : (Parcae_core.Config.t -> (int * int) list) option;
      (* hook run when a light (barrier-less) DoP resize is applied
         (Section 7.2); stamps the epoch request and returns the
         (task index, lane) workers that must be spawned — lanes whose
         previous worker has not retired yet are NOT re-spawned *)
  mutable light_resizable : bool;
      (* whether the current scheme supports barrier-less DoP changes *)
  mutable light_resizes : int;  (* count of barrier-less reconfigurations *)
  (* Overhead accounting for Section 8.3.6 / Chapter 7 ablations. *)
  mutable reconfig_count : int;
  mutable scheme_switches : int;
  mutable pause_wait_ns : int;  (* total time spent waiting for parks *)
  (* Phase timestamps for the overhead ledger (Chapter 7 decomposition).
     -1 means "not in a measured reconfiguration"; the executor stamps
     them only while Ledger.active (). *)
  mutable reconfig_t0 : int;  (* when the pause was requested *)
  mutable first_park_at : int;  (* when the first worker parked *)
  mutable restart_mark : int;  (* when resume finished relaunching workers *)
}

let create ?(budget = max_int) ?on_pause ?on_reset ~name eng schemes config =
  (match schemes with [] -> invalid_arg "Region.create: no schemes" | _ -> ());
  if config.Config.choice < 0 || config.Config.choice >= List.length schemes then
    invalid_arg "Region.create: config.choice out of range";
  Task.validate_config (List.nth schemes config.Config.choice) config;
  if Trace.enabled () then
    Trace.emit ~t:(Engine.time eng)
      (Event.Region_start
         {
           region = name;
           scheme = (List.nth schemes config.Config.choice).Task.pd_name;
           threads = Config.threads config;
           budget;
         });
  let pd = List.nth schemes config.Config.choice in
  let decima = Decima.create eng ~tasks:(Task.arity pd) in
  Decima.set_names decima ~region:name ~scheme:pd.Task.pd_name
    ~tasks:(Array.of_list (List.map (fun (tk : Task.t) -> tk.Task.name) pd.Task.tasks));
  let mon = Engine.monitor_create eng in
  {
    name;
    eng;
    schemes;
    config;
    status = Init;
    pause_requested = false;
    master_completed = false;
    budget;
    decima;
    mon;
    parked = Engine.cond_in mon;
    finished = Engine.cond_in mon;
    active_workers = 0;
    worker_count = 0;
    on_pause;
    on_reset;
    on_resize = None;
    light_resizable = false;
    light_resizes = 0;
    reconfig_count = 0;
    scheme_switches = 0;
    pause_wait_ns = 0;
    reconfig_t0 = -1;
    first_park_at = -1;
    restart_mark = -1;
  }

(* The ParDescriptor currently selected by the configuration. *)
let scheme t = List.nth t.schemes t.config.Config.choice

let scheme_name t = (scheme t).Task.pd_name
let config t = t.config
let status t = t.status
let decima t = t.decima
let budget t = t.budget
let set_budget t n =
  t.budget <- max 1 n;
  if Trace.enabled () then
    Trace.emit ~t:(Engine.time t.eng)
      (Event.Budget_grant { region = t.name; budget = t.budget })
let threads_in_use t = Config.threads t.config
let is_done t = t.status = Done
let reconfig_count t = t.reconfig_count
let light_resizes t = t.light_resizes
let scheme_switches t = t.scheme_switches
let pause_wait_ns t = t.pause_wait_ns
