(* The Decima monitor (Chapter 6, Section 4.7).

   Decima observes the application through the begin/end hooks Nona (or the
   programmer) inserts into task functors, and through load callbacks; it
   observes the platform through a registry of named feature callbacks
   ("SystemPower", ...).  Everything is per-region and cheap: hook costs are
   charged to the calling simulated thread at the machine's rdtsc-equivalent
   cost, and counters are plain mutable fields (the paper implements them in
   shared memory without synchronization).

   Telemetry is stored flat (DESIGN.md section 14): per-task iteration,
   compute and EWMA state live in parallel int arrays rather than one
   record per task, and the EWMA itself is integer fixed-point (whole
   nanoseconds) — a float-valued mixed record would box a float on every
   sample, taxing the serve path's hook_end with an allocation per
   instance.  Recent hook samples additionally land in a preallocated
   (task, dt) ring, like the event sink's, so observability keeps a
   bounded window of raw samples without per-sample list cells. *)

module Engine = Parcae_platform.Engine
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Metrics = Parcae_obs.Metrics

(* Registry handles, one set per task plus region-level completions.  The
   compute counter is labeled (region, scheme, task) — exactly the frames
   Obs.Profile folds into flamegraph stacks. *)
type task_metrics = {
  dm_compute : Metrics.counter;
  dm_hook : Metrics.histogram;
  dm_iters : Metrics.counter;
}

type decima_metrics = { dm_tasks : task_metrics array; dm_completions : Metrics.counter }

(* EWMA weight of the newest sample is 1/ewma_inv (alpha = 0.2). *)
let ewma_inv = 5

(* Capacity of the recent-sample ring (power of two for cheap wrap). *)
let ring_cap = 256

type t = {
  eng : Engine.t;
  mutable iters_a : int array;  (* completed dynamic instances across all lanes *)
  mutable compute_a : int array;  (* total CPU ns between begin/end hooks *)
  mutable ewma_a : int array;  (* per-instance compute estimate, ns; -1 = unprimed *)
  ring_task : int array;  (* recent hook samples: task index... *)
  ring_dt : int array;  (* ...and duration, ns *)
  mutable ring_next : int;  (* total samples ever ringed *)
  features : (string, unit -> float) Hashtbl.t;
  mutable hook_calls : int;
  mutable completions : int;  (* region-level unit-of-work completions *)
  mutable region_name : string;  (* label values for the registry series; *)
  mutable scheme_name : string;  (* set by Region.create / Executor.resume *)
  mutable task_names : string array;
  mutable mx : (Metrics.t * decima_metrics) option;
}

let create eng ~tasks =
  {
    eng;
    iters_a = Array.make tasks 0;
    compute_a = Array.make tasks 0;
    ewma_a = Array.make tasks (-1);
    ring_task = Array.make ring_cap (-1);
    ring_dt = Array.make ring_cap 0;
    ring_next = 0;
    features = Hashtbl.create 7;
    hook_calls = 0;
    completions = 0;
    region_name = "";
    scheme_name = "";
    task_names = [||];
    mx = None;
  }

(* Re-size and clear task statistics; used when the runtime switches to a
   parallelization scheme with a different task count. *)
let reset t ~tasks =
  t.iters_a <- Array.make tasks 0;
  t.compute_a <- Array.make tasks 0;
  t.ewma_a <- Array.make tasks (-1);
  t.mx <- None

let task_count t = Array.length t.iters_a

(* Name the label values under which this monitor's statistics appear in the
   metrics registry.  Registry series are cumulative across resets, so a
   scheme switch moves attribution to a fresh (region, scheme, task) series
   instead of clearing history. *)
let set_names t ~region ~scheme ~tasks =
  t.region_name <- region;
  t.scheme_name <- scheme;
  t.task_names <- tasks;
  t.mx <- None

let task_label t i =
  if i < Array.length t.task_names then t.task_names.(i) else Printf.sprintf "t%d" i

let handles t =
  let reg = Metrics.current () in
  match t.mx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let h =
        {
          dm_tasks =
            Array.init (task_count t) (fun i ->
                let name = task_label t i in
                {
                  dm_compute =
                    Metrics.counter reg "parcae_task_compute_ns_total"
                      ~labels:
                        [
                          ("region", t.region_name);
                          ("scheme", t.scheme_name);
                          ("task", name);
                        ]
                      ~help:"Hook-attributed compute ns per (region, scheme, task).";
                  dm_hook =
                    Metrics.histogram reg "parcae_decima_hook_ns"
                      ~labels:[ ("region", t.region_name); ("task", name) ]
                      ~help:"Per-instance compute time between begin/end hooks.";
                  dm_iters =
                    Metrics.counter reg "parcae_decima_iters_total"
                      ~labels:[ ("region", t.region_name); ("task", name) ]
                      ~help:"Completed dynamic task instances.";
                });
          dm_completions =
            Metrics.counter reg "parcae_decima_completions_total"
              ~labels:[ ("region", t.region_name) ]
              ~help:"Region-level unit-of-work completions.";
        }
      in
      t.mx <- Some (reg, h);
      h

(* ---- Hooks (Section 4.7) ---- *)

(* A hook pair measures the CPU consumed by a worker between begin and end,
   excluding time spent blocked on channels — the simulator's per-thread
   busy-time counter gives exactly that.  Each hook costs [machine.hook] ns,
   modelling the rdtsc reads whose overhead Section 8.3.6 reports. *)
type hook_slot = { mutable t0 : int; mutable open_ : bool }

let make_slot () = { t0 = 0; open_ = false }

(* Hook costs are sub-microsecond, so they go through [Engine.charge]
   (deferred, bounded-skew) rather than paying an effect suspension each;
   the busy read likewise avoids the ambient [Self] effect. *)
let hook_begin t slot =
  Engine.charge t.eng (Engine.hook_cost t.eng);
  t.hook_calls <- t.hook_calls + 1;
  slot.t0 <- Engine.busy_ns_in t.eng;
  slot.open_ <- true

let hook_end t ~task slot =
  Engine.charge t.eng (Engine.hook_cost t.eng);
  t.hook_calls <- t.hook_calls + 1;
  if slot.open_ then begin
    slot.open_ <- false;
    let dt = Engine.busy_ns_in t.eng - slot.t0 in
    if task >= 0 && task < task_count t then begin
      t.compute_a.(task) <- t.compute_a.(task) + dt;
      (* Integer EWMA, newest sample weighted 1/ewma_inv: whole-ns
         precision is far below hook noise, and the update touches no
         boxed float. *)
      let prev = t.ewma_a.(task) in
      t.ewma_a.(task) <-
        (if prev < 0 then dt else prev + ((dt - prev) / ewma_inv));
      let slot_i = t.ring_next land (ring_cap - 1) in
      t.ring_task.(slot_i) <- task;
      t.ring_dt.(slot_i) <- dt;
      t.ring_next <- t.ring_next + 1;
      if Trace.enabled () then
        Trace.emit ~t:(Engine.time t.eng) (Event.Hook_sample { task; dt_ns = dt });
      if Metrics.enabled () then begin
        let m = (handles t).dm_tasks.(task) in
        Metrics.inc_by m.dm_compute dt;
        Metrics.observe_ns m.dm_hook dt
      end
    end
  end

(* Record the completion of [n] dynamic instances of task [i] — a batch
   drain reports its whole claim in one call. *)
let tick_n t i n =
  if n > 0 && i >= 0 && i < task_count t then begin
    t.iters_a.(i) <- t.iters_a.(i) + n;
    if Metrics.enabled () then begin
      let c = (handles t).dm_tasks.(i).dm_iters in
      if n = 1 then Metrics.inc c else Metrics.inc_by c n
    end
  end

(* Record the completion of one dynamic instance of task [i]. *)
let tick t i = tick_n t i 1

(* Record the completion of one region-level unit of work (one transcoded
   video, one answered query, ...). *)
let complete t =
  t.completions <- t.completions + 1;
  if Metrics.enabled () then Metrics.inc (handles t).dm_completions

let iters t i = t.iters_a.(i)
let completions t = t.completions
let hook_calls t = t.hook_calls

(* Total hook-attributed compute ns of task [i] since the last reset —
   matches the [parcae_task_compute_ns_total] series one-for-one when the
   region never switched scheme. *)
let compute_ns t i = t.compute_a.(i)

(* Decima's estimate of a task's per-instance execution time in ns
   (Parcae::getExecTime). *)
let exec_time t i =
  let e = t.ewma_a.(i) in
  if e >= 0 then float_of_int e
  else if t.iters_a.(i) > 0 then float_of_int t.compute_a.(i) /. float_of_int t.iters_a.(i)
  else 0.0

(* Average observed throughput of task [i] in instances per second, over the
   whole run so far. *)
let task_rate t i =
  let now = Engine.time t.eng in
  if now = 0 then 0.0 else float_of_int t.iters_a.(i) /. Engine.seconds_of_ns now

(* Recent hook samples for task [i], oldest first — read out of the
   preallocated ring (cold path: allocates the result array). *)
let recent_samples t i =
  let len = min t.ring_next ring_cap in
  let start = t.ring_next - len in
  let out = ref [] in
  for k = len - 1 downto 0 do
    let slot_i = (start + k) land (ring_cap - 1) in
    if t.ring_task.(slot_i) = i then out := t.ring_dt.(slot_i) :: !out
  done;
  Array.of_list !out

(* ---- Snapshots for interval throughput ---- *)

(* The closed-loop controller compares configurations by the iteration
   throughput achieved between two snapshots. *)
type snapshot = { at : int; iters_v : int array; completions_v : int }

let snapshot t =
  { at = Engine.time t.eng; iters_v = Array.copy t.iters_a; completions_v = t.completions }

(* Iterations per second of task [i] between [a] and the present. *)
let rate_since t (a : snapshot) i =
  let dt = Engine.time t.eng - a.at in
  if dt <= 0 then 0.0
  else float_of_int (t.iters_a.(i) - a.iters_v.(i)) /. Engine.seconds_of_ns dt

(* Region-level completions per second since snapshot [a]. *)
let completion_rate_since t (a : snapshot) =
  let dt = Engine.time t.eng - a.at in
  if dt <= 0 then 0.0 else float_of_int (t.completions - a.completions_v) /. Engine.seconds_of_ns dt

let iters_since t (a : snapshot) i = t.iters_a.(i) - a.iters_v.(i)

(* ---- Platform feature registry (Figure 5.8) ---- *)

let register_feature t name cb = Hashtbl.replace t.features name cb

let feature t name =
  match Hashtbl.find_opt t.features name with
  | None -> None
  | Some cb ->
      let value = cb () in
      if Trace.enabled () then
        Trace.emit ~t:(Engine.time t.eng) (Event.Feature_sample { name; value });
      if Metrics.enabled () then
        Metrics.set_gauge
          (Metrics.gauge (Metrics.current ()) "parcae_decima_feature"
             ~labels:[ ("name", name) ]
             ~help:"Last sampled platform feature value.")
          value;
      Some value

(* ---- Flight-recorder snapshot ---- *)

(* The per-task measurement block every flight decision carries: what the
   monitor currently believes about each task's progress and cost. *)
let flight_tasks t =
  List.init (task_count t) (fun i ->
      {
        Parcae_obs.Flight.task = task_label t i;
        iters = iters t i;
        ips = task_rate t i;
        exec_ns = exec_time t i;
      })
