(* The Morta executive loop for administrator-selected mechanisms
   (Section 6.2, Figure 6.1).

   A mechanism is a reconfiguration policy: given a region (with its Decima
   statistics and thread budget), it proposes a new parallelism
   configuration or [None] to keep the current one.  [drive] runs the
   mechanism periodically on a simulated thread, pausing/reconfiguring/
   resuming the region when the mechanism asks for a change.  The FSM-based
   default optimizer lives in [Controller]; mechanism implementations live
   in the [Parcae_mechanisms] library. *)

module Engine = Parcae_platform.Engine
module Config = Parcae_core.Config

type mechanism = Region.t -> Config.t option

(* Run [mechanism] every [period_ns] until the region completes or [stop]
   returns true.  Intended as the body of a dedicated simulated thread:

     Engine.spawn eng ~name:"morta" (fun () -> Morta.drive region ...)
*)
let drive ?(stop = fun () -> false) ~period_ns ~mechanism (region : Region.t) =
  while (not (Region.is_done region)) && not (stop ()) do
    Engine.sleep period_ns;
    if (not (Region.is_done region)) && not (stop ()) then
      match mechanism region with
      | None -> ()
      | Some cfg -> Executor.reconfigure region cfg
  done

(* Spawn the executive thread for a region. *)
let spawn ?stop ~period_ns ~mechanism eng region =
  Engine.spawn eng
    ~name:("morta:" ^ region.Region.name)
    (fun () -> drive ?stop ~period_ns ~mechanism region)
