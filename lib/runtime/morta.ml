(* The Morta executive loop for administrator-selected mechanisms
   (Section 6.2, Figure 6.1).

   A mechanism is a reconfiguration policy: given a region (with its Decima
   statistics and thread budget), it proposes a new parallelism
   configuration — tagged with the reason that triggered it — or [None] to
   keep the current one.  [drive] runs the mechanism periodically on a
   simulated thread, pausing/reconfiguring/resuming the region when the
   mechanism asks for a change, and records every adopted proposal on the
   flight recorder.  The FSM-based default optimizer lives in [Controller];
   mechanism implementations live in the [Parcae_mechanisms] library. *)

module Engine = Parcae_platform.Engine
module Config = Parcae_core.Config
module Flight = Parcae_obs.Flight

type proposal = { cfg : Config.t; why : string }
type mechanism = Region.t -> proposal option

let propose ~why cfg = Some { cfg; why }

(* Flight-record an adopted proposal before applying it: the mechanism's
   reason, the Decima evidence it acted on, and the thread total it moves
   the region to. *)
let record_proposal (region : Region.t) { cfg; why } =
  if Flight.enabled () then begin
    let threads = Config.threads cfg in
    Flight.decision
      ~t:(Engine.time region.Region.eng)
      ~actor:"morta" ~region:region.Region.name ~reason:why
      ~tasks:(Decima.flight_tasks (Region.decima region))
      ~candidate:threads ~chosen:threads ~threads ~budget:(Region.budget region) ()
  end

(* Run [mechanism] every [period_ns] until the region completes or [stop]
   returns true.  Intended as the body of a dedicated simulated thread:

     Engine.spawn eng ~name:"morta" (fun () -> Morta.drive region ...)
*)
let drive ?(stop = fun () -> false) ~period_ns ~mechanism (region : Region.t) =
  while (not (Region.is_done region)) && not (stop ()) do
    Engine.sleep period_ns;
    if (not (Region.is_done region)) && not (stop ()) then
      match mechanism region with
      | None -> ()
      | Some p ->
          record_proposal region p;
          Executor.reconfigure region p.cfg
  done

(* Spawn the executive thread for a region. *)
let spawn ?stop ~period_ns ~mechanism eng region =
  Engine.spawn eng
    ~name:("morta:" ^ region.Region.name)
    (fun () -> drive ?stop ~period_ns ~mechanism region)
