(** Platform-wide control (the paper's Section 6.4.3, Algorithm 5).

    The daemon partitions the platform's hardware threads across the
    flexible parallel programs currently executing: an equal share on
    every membership change, slack redistribution as controllers report
    their optimized usage, and reclamation when programs terminate. *)

type t

val create : ?period_ns:int -> Parcae_platform.Engine.t -> total_threads:int -> t

val register : t -> Region.t -> Controller.t -> unit
(** Register a launched program: every active program gets a fresh equal
    share and its controller is notified of the resource change. *)

val repartition : t -> unit
val redistribute : t -> unit

val request_stop : t -> unit

val run : t -> unit
(** Daemon main loop (watch terminations, re-partition); the body of a
    simulated thread. *)

val spawn : Parcae_platform.Engine.t -> t -> Parcae_platform.Engine.thread
