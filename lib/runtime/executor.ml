(* The Morta executor (Chapters 3 and 6).

   Morta owns the worker threads of every region.  Each worker runs the
   task-instance loop of Algorithm 2: invoke the task functor; on
   [task_iterating] count the instance and continue; on [task_paused] or
   [task_complete] run the task's fini callback, wait for the region's other
   workers at a barrier, and exit.  Reconfiguration (Section 6.2) pauses the
   region at a consistent state, applies a new configuration — possibly a
   different parallelization scheme — and relaunches workers. *)

module Engine = Parcae_platform.Engine
module Barrier = Parcae_platform.Barrier
module Config = Parcae_core.Config
module Task = Parcae_core.Task
module Task_status = Parcae_core.Task_status
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Metrics = Parcae_obs.Metrics
module Ledger = Parcae_obs.Ledger
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb
module Span = Parcae_obs.Span

(* Pause and reconfiguration are rare (controller-period) events, so their
   metrics go through the registry's family lookup directly instead of a
   cached handle record. *)
let note_pause (r : Region.t) ~t0 =
  if Metrics.enabled () then
    Metrics.observe_ns
      (Metrics.histogram (Metrics.current ()) "parcae_exec_pause_ns"
         ~labels:[ ("region", r.Region.name) ]
         ~help:"Virtual time from pause request until all workers parked.")
      (Engine.time r.Region.eng - t0)

let note_reconfig (r : Region.t) ~kind ~t0 =
  if Metrics.enabled () then begin
    let reg = Metrics.current () in
    let labels = [ ("region", r.Region.name); ("kind", kind) ] in
    Metrics.inc
      (Metrics.counter reg "parcae_exec_reconfigs_total" ~labels
         ~help:"Applied reconfigurations by kind (light = barrier-less).");
    Metrics.observe_ns
      (Metrics.histogram reg "parcae_exec_reconfig_ns" ~labels
         ~help:"Virtual time each reconfiguration took end to end.")
      (Engine.time r.Region.eng - t0)
  end

(* Attribute [ns] of reconfiguration time to [phase] for the overhead
   ledger (Chapter 7 decomposition: signal propagation, barrier wait,
   channel flush, task restart). *)
let note_phase (r : Region.t) ~phase ns =
  Ledger.note ~t:(Engine.time r.Region.eng) ~region:r.Region.name ~phase ns

(* Explain measured control-plane time (pause protocol, flush window) as
   Reconfig on the lane executing it.  Works without the overhead ledger:
   the timeline's install cell is its own switch. *)
let tl_reconfig ns =
  if ns > 0 then
    match Timeline.get () with
    | Some tl -> (
        match Engine.current_lane () with
        | Some lane when lane < Timeline.lanes tl ->
            Timeline.attribute tl ~lane Timeline.Reconfig ns
        | _ -> ())
    | None -> ()

(* Mark the region Done, emit the trace event, and wake joiners — the
   single exit point for both completion paths and [terminate].  Runs
   under the region's control-plane monitor (reentrant, so callers that
   already hold it are fine). *)
let finish_region (r : Region.t) =
  Engine.locked r.Region.mon (fun () ->
      (* A reconfiguration interrupted by completion never closes its phases. *)
      r.Region.reconfig_t0 <- -1;
      r.Region.first_park_at <- -1;
      r.Region.restart_mark <- -1;
      r.Region.status <- Region.Done;
      if Trace.enabled () then
        Trace.emit ~t:(Engine.time r.Region.eng)
          (Event.Region_stop { region = r.Region.name });
      Engine.broadcast r.Region.finished)

(* ------------------------------------------------------------------ *)
(* Nested (inner-loop) regions: fixed configuration, run to completion. *)
(* ------------------------------------------------------------------ *)

(* Execute descriptor [pd] under [cfg] and return when every worker has
   completed.  Inner regions are not independently reconfigurable: the outer
   task re-launches them with a new configuration on its next instance,
   which is exactly how DoP changes reach inner loops in the paper's
   transcoding example. *)
let rec run_subregion eng (pd : Task.par_descriptor) (cfg : Config.t) =
  let tasks = Array.of_list pd.Task.tasks in
  if Array.length cfg.Config.tasks <> Array.length tasks then
    invalid_arg ("run_subregion " ^ pd.Task.pd_name ^ ": config arity mismatch");
  let threads = ref [] in
  Array.iteri
    (fun i task ->
      let tc = cfg.Config.tasks.(i) in
      for lane = 0 to tc.Config.dop - 1 do
        let th =
          Engine.spawn eng
            ~name:(Printf.sprintf "%s/%s.%d" pd.Task.pd_name task.Task.name lane)
            (fun () -> subregion_worker eng task tc lane)
        in
        threads := th :: !threads
      done)
    tasks;
  List.iter Engine.join (List.rev !threads)

and subregion_worker eng task tc lane =
  Option.iter (fun f -> f ()) task.Task.init;
  let continue_ = ref true in
  (* One context per worker activation, reused across instances: the
     per-instance fast path must not allocate (DESIGN.md section 14). *)
  let ctx =
    {
      Task.lane;
      dop = tc.Config.dop;
      iter = 0;
      items = -1;
      get_status = (fun () -> Task_status.Iterating);
      hook_begin = ignore;
      hook_end = ignore;
      nested_cfg = tc.Config.nested;
      run_nested = (fun inner -> run_nested eng task inner);
    }
  in
  while !continue_ do
    ctx.Task.items <- -1;
    match task.Task.body ctx with
    | Task_status.Iterating -> ctx.Task.iter <- ctx.Task.iter + 1
    | Task_status.Paused | Task_status.Complete -> continue_ := false
  done;
  Option.iter (fun f -> f ()) task.Task.fini

(* Instantiate and run the nested descriptor [cfg.choice] of [task]. *)
and run_nested eng (task : Task.t) (cfg : Config.t) =
  match List.nth_opt task.Task.nested cfg.Config.choice with
  | None -> invalid_arg (task.Task.name ^ ": nested choice out of range")
  | Some nc ->
      let pd = nc.Task.nc_make () in
      run_subregion eng pd cfg

(* ------------------------------------------------------------------ *)
(* Top-level managed regions.                                          *)
(* ------------------------------------------------------------------ *)

(* One worker executing lane [lane] of task [idx] under the region's
   current configuration.  When its task pauses, completes, or retires (a
   light resize shrank its lane away), the worker exits; the last active
   worker publishes the region's new status and wakes Morta. *)
(* Sanitizer edges for the region's park protocol: every worker releases
   into the region clock as it parks, and whoever waits the parks out
   (pause, await) acquires it.  Workers started afterwards inherit the
   joined clock through their spawn edge, so work before a reconfiguration
   happens-before work after it — the full-pause barrier, expressed
   causally.  The barrier-less light resize deliberately has no such edge:
   it provides no cross-lane ordering, and legal light-resizable schemes
   need none. *)
let hb_release r =
  if Hb.enabled () then
    match Engine.current_task_id () with
    | Some task -> Hb.on_release ~task ~key:("region:" ^ r.Region.name)
    | None -> ()

let hb_acquire r =
  if Hb.enabled () then
    match Engine.current_task_id () with
    | Some task -> Hb.on_acquire ~task ~key:("region:" ^ r.Region.name)
    | None -> ()

let region_worker (r : Region.t) (task : Task.t) idx tc lane =
  Option.iter (fun f -> f ()) task.Task.init;
  let slot = Decima.make_slot () in
  let outcome = ref Task_status.Complete in
  let continue_ = ref true in
  (* One context per worker activation, reused across instances: the
     per-instance fast path must not allocate a record or closures
     (DESIGN.md section 14).  [iter] and [items] are the mutable fields. *)
  let ctx =
    {
      Task.lane;
      dop = tc.Config.dop;
      iter = 0;
      items = -1;
      get_status =
        (fun () -> if r.Region.pause_requested then Task_status.Paused else Task_status.Iterating);
      hook_begin = (fun () -> Decima.hook_begin r.Region.decima slot);
      hook_end = (fun () -> Decima.hook_end r.Region.decima ~task:idx slot);
      nested_cfg = tc.Config.nested;
      run_nested = (fun inner -> run_nested r.Region.eng task inner);
    }
  in
  while !continue_ do
    ctx.Task.items <- -1;
    let status = task.Task.body ctx in
    (* Batch-draining bodies report their processed-item count through
       [ctx.items] regardless of status (a batch cut short by a sentinel
       still processed its prefix); classic bodies leave it at -1 and are
       counted one instance per Iterating, as before. *)
    if ctx.Task.items >= 0 then Decima.tick_n r.Region.decima idx ctx.Task.items
    else if status = Task_status.Iterating then Decima.tick r.Region.decima idx;
    match status with
    | Task_status.Iterating ->
        (* First completed iteration after a resume closes the restart and
           total phases of the reconfiguration being measured.  The plain
           read keeps the per-iteration fast path monitor-free (it is -1
           outside measured reconfigurations); the claim itself re-checks
           under the monitor so exactly one worker reports. *)
        if r.Region.restart_mark >= 0 then
          Engine.locked r.Region.mon (fun () ->
              let mark = r.Region.restart_mark in
              if mark >= 0 then begin
                r.Region.restart_mark <- -1;
                let t0r = r.Region.reconfig_t0 in
                r.Region.reconfig_t0 <- -1;
                let now = Engine.time r.Region.eng in
                note_phase r ~phase:"restart" (now - mark);
                if t0r >= 0 then note_phase r ~phase:"total" (now - t0r)
              end);
        ctx.Task.iter <- ctx.Task.iter + 1
    | Task_status.Paused ->
        outcome := Task_status.Paused;
        continue_ := false
    | Task_status.Complete ->
        outcome := Task_status.Complete;
        continue_ := false
  done;
  Option.iter (fun f -> f ()) task.Task.fini;
  (* The park transition runs under the control-plane monitor: worker
     counting, the first-park ledger stamp and the last-worker status
     decision must be atomic against pause/resume and each other. *)
  Engine.locked r.Region.mon (fun () ->
      hb_release r;
      if !outcome = Task_status.Complete && idx = 0 then r.Region.master_completed <- true;
      (* Overhead ledger: the first worker to park dates the end of signal
         propagation (pause request -> first park). *)
      if r.Region.pause_requested && r.Region.reconfig_t0 >= 0 && r.Region.first_park_at < 0
      then r.Region.first_park_at <- Engine.time r.Region.eng;
      r.Region.active_workers <- r.Region.active_workers - 1;
      if r.Region.active_workers = 0 then begin
        (* Last worker out: decide what the park means. *)
        if r.Region.master_completed && not r.Region.pause_requested then finish_region r
        else if r.Region.pause_requested then r.Region.status <- Region.Paused
        else
          (* All tasks completed without an explicit pause: region is done. *)
          finish_region r;
        Engine.broadcast r.Region.parked
      end)

(* Spawn one worker for lane [lane] of task [idx].  Caller holds the
   region monitor, so the active-worker count is raised before any
   spawned worker can run its park transition. *)
let spawn_worker (r : Region.t) (task : Task.t) idx tc lane =
  r.Region.active_workers <- r.Region.active_workers + 1;
  r.Region.worker_count <- r.Region.worker_count + 1;
  ignore
    (Engine.spawn r.Region.eng
       ~name:(Printf.sprintf "%s/%s.%d" r.Region.name task.Task.name lane)
       (fun () -> region_worker r task idx tc lane))

(* Spawn the worker teams for the region's current configuration.  The
   whole launch — counting every lane and publishing Running — is one
   critical section, so a worker that finishes instantly cannot observe a
   half-started region (its park transition blocks on the monitor until
   the full team is counted). *)
let start_workers (r : Region.t) =
  Engine.locked r.Region.mon (fun () ->
      let pd = Region.scheme r in
      let tasks = Array.of_list pd.Task.tasks in
      let cfg = r.Region.config in
      r.Region.worker_count <- 0;
      Array.iteri
        (fun i task ->
          let tc = cfg.Config.tasks.(i) in
          for lane = 0 to tc.Config.dop - 1 do
            spawn_worker r task i tc lane
          done)
        tasks;
      r.Region.status <- Region.Running)

(* Launch a region: validate, create, start workers.  Must be called either
   from outside the engine (before [Engine.run]) or from a simulated
   thread. *)
let launch ?budget ?on_pause ?on_reset ~name eng schemes config =
  let r = Region.create ?budget ?on_pause ?on_reset ~name eng schemes config in
  start_workers r;
  r

(* Signal the region to pause and block until every worker has parked.
   Returns [true] if the region parked in [Paused] (safe to reconfigure),
   [false] if it raced to completion.  Must run on a simulated thread that
   is not one of the region's workers (the Morta executive). *)
let pause (r : Region.t) =
  Engine.locked r.Region.mon (fun () ->
      match r.Region.status with
      | Region.Done -> false
      | Region.Paused -> true
      | Region.Init | Region.Pausing -> invalid_arg "Executor.pause: bad region state"
      | Region.Running ->
          let t0 = Engine.time r.Region.eng in
          if Ledger.active () then begin
            r.Region.reconfig_t0 <- t0;
            r.Region.first_park_at <- -1
          end;
          r.Region.pause_requested <- true;
          r.Region.status <- Region.Pausing;
          if Trace.enabled () then
            Trace.emit ~t:t0 (Event.Pause { region = r.Region.name });
          (* on_pause injects wake-up sentinels: channel monitors nest
             inside the region monitor (never the reverse), so this is
             deadlock-free. *)
          Option.iter (fun f -> f ()) r.Region.on_pause;
          while r.Region.status = Region.Pausing do
            (* Releases the region monitor while waiting, so workers can
               run their park transitions. *)
            Engine.wait_on r.Region.parked
          done;
          hb_acquire r;
          r.Region.pause_wait_ns <- r.Region.pause_wait_ns + (Engine.time r.Region.eng - t0);
          note_pause r ~t0;
          tl_reconfig (Engine.time r.Region.eng - t0);
          (* Requests in flight during this pause window were stalled, not
             waiting on work: feed the window to the span accumulator so
             completion-time carving can re-attribute it as Reconfig. *)
          Span.note_stall (Engine.time r.Region.eng - t0);
          let parked = r.Region.status = Region.Paused in
          if r.Region.reconfig_t0 >= 0 then
            if parked then begin
              let now = Engine.time r.Region.eng in
              let fp = if r.Region.first_park_at >= 0 then r.Region.first_park_at else now in
              note_phase r ~phase:"signal" (fp - t0);
              note_phase r ~phase:"barrier" (now - fp)
            end
            else r.Region.reconfig_t0 <- -1;
          parked)

(* Resume a paused region, optionally under a new configuration. *)
let resume ?config (r : Region.t) =
 Engine.locked r.Region.mon @@ fun () ->
  (match r.Region.status with
  | Region.Paused -> ()
  | _ -> invalid_arg "Executor.resume: region not paused");
  let prev_config = r.Region.config in
  let tl0 = if Timeline.enabled () then Engine.time r.Region.eng else min_int in
  let sp0 = if Span.enabled () then Engine.time r.Region.eng else min_int in
  let flush0 = if Ledger.active () then Engine.time r.Region.eng else min_int in
  (match config with
  | None -> ()
  | Some cfg ->
      if cfg.Config.choice < 0 || cfg.Config.choice >= List.length r.Region.schemes then
        invalid_arg "Executor.resume: config.choice out of range";
      Task.validate_config (List.nth r.Region.schemes cfg.Config.choice) cfg;
      if cfg.Config.choice <> r.Region.config.Config.choice then begin
        r.Region.scheme_switches <- r.Region.scheme_switches + 1;
        Decima.reset r.Region.decima ~tasks:(Array.length cfg.Config.tasks);
        let pd = List.nth r.Region.schemes cfg.Config.choice in
        Decima.set_names r.Region.decima ~region:r.Region.name ~scheme:pd.Task.pd_name
          ~tasks:(Array.of_list (List.map (fun (tk : Task.t) -> tk.Task.name) pd.Task.tasks))
      end;
      r.Region.config <- cfg);
  Option.iter (fun f -> f ()) r.Region.on_reset;
  (* The flush phase covers channel draining and statistics resets done
     while the region is quiescent. *)
  if flush0 > min_int then note_phase r ~phase:"flush" (Engine.time r.Region.eng - flush0);
  r.Region.pause_requested <- false;
  r.Region.master_completed <- false;
  r.Region.reconfig_count <- r.Region.reconfig_count + 1;
  if Trace.enabled () then begin
    let t = Engine.time r.Region.eng in
    let cfg = r.Region.config in
    if not (Config.equal cfg prev_config) then
      Trace.emit ~t
        (Event.Dop_change
           {
             region = r.Region.name;
             scheme = Region.scheme_name r;
             old_dop = Config.threads prev_config;
             new_dop = Config.threads cfg;
             budget = Region.budget r;
             light = false;
           });
    Trace.emit ~t
      (Event.Resume
         { region = r.Region.name; scheme = Region.scheme_name r; threads = Config.threads cfg })
  end;
  start_workers r;
  if tl0 > min_int then tl_reconfig (Engine.time r.Region.eng - tl0);
  if sp0 > min_int then Span.note_stall (Engine.time r.Region.eng - sp0);
  (* Restart phase: from here until the first worker completes an
     iteration (closed in [region_worker]). *)
  if Ledger.active () then r.Region.restart_mark <- Engine.time r.Region.eng

(* Whether [cfg] differs from the current configuration only in the DoPs
   of top-level tasks (same scheme, same nested choices). *)
let dop_only_change (r : Region.t) (cfg : Config.t) =
  let cur = r.Region.config in
  cfg.Config.choice = cur.Config.choice
  && Array.length cfg.Config.tasks = Array.length cur.Config.tasks
  && Array.for_all2
       (fun (a : Config.task_config) (b : Config.task_config) ->
         match (a.Config.nested, b.Config.nested) with
         | None, None -> true
         | Some x, Some y -> Config.equal x y
         | _ -> false)
       cfg.Config.tasks cur.Config.tasks

(* Barrier-less DoP reconfiguration (Section 7.2): grown tasks get extra
   workers immediately; shrunk tasks retire their excess lanes at the
   epoch boundary the code generator's resize hook establishes.  The
   sequential stages never stop.  Only valid for DoP-only changes on a
   scheme whose generated code opted in ([light_resizable]). *)
let resize (r : Region.t) cfg =
 Engine.locked r.Region.mon @@ fun () ->
  (match r.Region.status with
  | Region.Running when not r.Region.master_completed -> ()
  | _ -> invalid_arg "Executor.resize: region not running");
  if not (dop_only_change r cfg) then invalid_arg "Executor.resize: not a DoP-only change";
  Task.validate_config (Region.scheme r) cfg;
  let prev_config = r.Region.config in
  r.Region.config <- cfg;
  r.Region.light_resizes <- r.Region.light_resizes + 1;
  if Trace.enabled () then
    Trace.emit ~t:(Engine.time r.Region.eng)
      (Event.Dop_change
         {
           region = r.Region.name;
           scheme = Region.scheme_name r;
           old_dop = Config.threads prev_config;
           new_dop = Config.threads cfg;
           budget = Region.budget r;
           light = true;
         });
  (* The hook stamps the epoch boundary (the in-band tokens follow when the
     master crosses it) and says which lanes need new workers; lanes whose
     previous worker has not retired yet simply continue into the new
     epoch. *)
  let spawns = match r.Region.on_resize with Some f -> f cfg | None -> [] in
  let pd = Region.scheme r in
  let tasks = Array.of_list pd.Task.tasks in
  List.iter
    (fun (i, lane) -> spawn_worker r tasks.(i) i cfg.Config.tasks.(i) lane)
    spawns

(* The full reconfiguration sequence of Section 6.2: pause, swap the
   configuration, resume.  No-op if the region completed meanwhile.  If the
   new configuration equals the current one the region is left running;
   DoP-only changes on a light-resizable scheme avoid the barrier
   entirely (Section 7.2). *)
let reconfigure (r : Region.t) cfg =
 (* The whole decision + action sequence holds the control-plane monitor
    (released while [pause] waits for parks), so the status read cannot
    race a concurrent completion into an [invalid_arg]. *)
 Engine.locked r.Region.mon @@ fun () ->
  if not (Region.is_done r) && not (Config.equal cfg r.Region.config) then begin
    let t0 = Engine.time r.Region.eng in
    if
      r.Region.light_resizable
      && r.Region.status = Region.Running
      && (not r.Region.master_completed)
      && dop_only_change r cfg
    then begin
      resize r cfg;
      note_reconfig r ~kind:"light" ~t0
    end
    else if pause r then begin
      resume ~config:cfg r;
      note_reconfig r ~kind:"full" ~t0
    end
  end

(* Block until the region completes. *)
let await (r : Region.t) =
  Engine.locked r.Region.mon (fun () ->
      while r.Region.status <> Region.Done do
        Engine.wait_on r.Region.finished
      done;
      hb_acquire r)

(* Pause the region and terminate it without resuming (used to shut an
   experiment down cleanly). *)
let terminate (r : Region.t) = if pause r then finish_region r
