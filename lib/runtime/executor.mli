(** The Morta executor (the paper's Chapters 3 and 6).

    Each worker runs the task-instance loop of Algorithm 2: invoke the
    functor; on [task_iterating] count the instance and continue; on
    [task_paused]/[task_complete] run the fini callback, wait for the
    region's other workers at a barrier, and exit.  Reconfiguration pauses
    the region at a consistent state, applies a new configuration —
    possibly a different parallelization scheme — and relaunches. *)

val run_subregion :
  Parcae_platform.Engine.t -> Parcae_core.Task.par_descriptor -> Parcae_core.Config.t -> unit
(** Execute a nested (inner-loop) region under a fixed configuration and
    return when every worker has completed.  Inner regions are not
    independently reconfigurable: the outer task re-launches them with a
    new configuration on its next instance. *)

val run_nested : Parcae_platform.Engine.t -> Parcae_core.Task.t -> Parcae_core.Config.t -> unit
(** Instantiate and run the nested descriptor selected by the
    configuration's [choice] for the given task. *)

val launch :
  ?budget:int ->
  ?on_pause:(unit -> unit) ->
  ?on_reset:(unit -> unit) ->
  name:string ->
  Parcae_platform.Engine.t ->
  Parcae_core.Task.par_descriptor list ->
  Parcae_core.Config.t ->
  Region.t
(** Create a region over the given schemes, validate the configuration,
    and start its workers.  Callable from outside the engine or from a
    simulated thread. *)

val pause : Region.t -> bool
(** Signal the region to pause and block until every worker has parked.
    [true] if the region parked (safe to reconfigure), [false] if it raced
    to completion.  Must run on a simulated thread that is not one of the
    region's workers. *)

val resume : ?config:Parcae_core.Config.t -> Region.t -> unit
(** Resume a paused region, optionally under a new configuration.
    Switching schemes resets the region's Decima statistics.
    @raise Invalid_argument if the region is not paused. *)

val dop_only_change : Region.t -> Parcae_core.Config.t -> bool
(** Whether [cfg] differs from the current configuration only in top-level
    DoPs (same scheme, same nested choices). *)

val resize : Region.t -> Parcae_core.Config.t -> unit
(** Barrier-less DoP reconfiguration (the paper's Section 7.2): grown
    tasks get extra workers immediately; shrunk tasks retire excess lanes
    at the epoch boundary the code generator's [on_resize] hook
    establishes; sequential stages never stop.
    @raise Invalid_argument unless the region is running and the change is
    DoP-only. *)

val reconfigure : Region.t -> Parcae_core.Config.t -> unit
(** The full sequence of the paper's Section 6.2: pause, swap, resume.
    No-op if the region completed meanwhile or the configuration is
    unchanged.  DoP-only changes on a scheme that opted into barrier-less
    resizing ([Region.light_resizable]) go through {!resize} instead of
    the pause. *)

val await : Region.t -> unit
(** Block until the region completes. *)

val terminate : Region.t -> unit
(** Pause the region and mark it done without resuming. *)
