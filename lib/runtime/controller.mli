(** The closed-loop run-time controller (the paper's Section 6.4):
    Morta's default optimization mechanism.

    A finite-state machine (Figure 6.3) establishes a sequential baseline,
    calibrates each parallel scheme, optimizes degrees of parallelism by
    finite-difference gradient ascent (Algorithm 4), and then passively
    monitors for workload or resource change, re-entering calibration when
    the environment shifts.  Objective: maximize iteration throughput and,
    subject to that, minimize threads used.  Optimized configurations are
    cached per (scheme, budget); the thread count actually needed is
    reported to the platform daemon so slack can be redistributed. *)

type state = Init | Calibrate | Optimize | Monitor

val state_to_string : state -> string

val state_code : state -> int
(** Encoding used in the recorded timeline (Figure 8.8):
    INIT=0 CALIB=1 OPT=2 MONITOR=3. *)

(** The optimization objective; the paper's Section 6.4 notes the
    closed-loop schema retargets to any fitness whose parameters can be
    measured, giving energy-delay-squared as the example. *)
type objective =
  | Max_throughput
  | Min_energy_delay2
      (** maximize throughput^3 / average power == minimize E*D^2 per
          iteration *)

type params = {
  objective : objective;
  nseq : int;  (** baseline iterations measured in Init (paper: 10) *)
  npar_factor : int;
      (** iterations per DoP probe = max(nseq, npar_factor * dop); the
          paper uses 2, but short iterations need longer windows to smooth
          round-quantization noise *)
  poll_ns : int;  (** polling granularity while waiting for iterations *)
  monitor_ns : int;  (** sampling period in the Monitor state *)
  change_frac : float;  (** relative throughput drift that re-triggers *)
  efficiency_floor : float;  (** minimum parallel efficiency to keep a scheme *)
  max_monitor_rounds : int;  (** 0 = unlimited *)
}

val default_params : params

type t

val create : ?params:params -> Region.t -> t

val run : t -> unit
(** The controller main loop; the body of a dedicated simulated thread. *)

val spawn : Parcae_platform.Engine.t -> t -> Parcae_platform.Engine.thread

val request_stop : t -> unit

val notify_resource_change : t -> unit
(** Called by the daemon after changing the region's budget; the Monitor
    state picks it up and recalibrates. *)

val set_usage_callback : t -> (int -> unit) -> unit
(** Invoked with the optimized thread usage on reaching Monitor
    (transition T3->4); the daemon uses it to collect slack. *)

val states : t -> Parcae_util.Series.t
(** Timeline of (time s, {!state_code}) — the state track of Figure 8.8. *)

val throughputs : t -> Parcae_util.Series.t
(** Timeline of measured throughput samples (iterations/second). *)
