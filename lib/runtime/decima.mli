(** The Decima monitor (the paper's Chapter 6 and Section 4.7).

    Decima observes the application through begin/end hooks inserted into
    task functors and through load callbacks, and the platform through a
    registry of named feature callbacks.  Hooks cost the machine's
    rdtsc-equivalent; counters are plain shared-memory fields. *)

type t

val create : Parcae_platform.Engine.t -> tasks:int -> t

val reset : t -> tasks:int -> unit
(** Re-size and clear statistics (used on parallelization-scheme switch). *)

val task_count : t -> int

val set_names : t -> region:string -> scheme:string -> tasks:string array -> unit
(** Label values under which this monitor's statistics appear in the metrics
    registry ([parcae_task_compute_ns_total{region,scheme,task}] feeds the
    folded-stack profiler).  Called by [Region.create] and on scheme switch;
    registry series are cumulative, so a switch starts fresh series rather
    than clearing history. *)

(** {1 Hooks}

    A hook pair measures the CPU a worker consumed between begin and end,
    excluding time blocked on channels. *)

type hook_slot

val make_slot : unit -> hook_slot
val hook_begin : t -> hook_slot -> unit
val hook_end : t -> task:int -> hook_slot -> unit

val tick : t -> int -> unit
(** Record the completion of one dynamic instance of a task. *)

val tick_n : t -> int -> int -> unit
(** [tick_n t i n] records [n] completed instances of task [i] in one
    call — how a batch-draining stage reports its whole claim.  No-op for
    [n <= 0] or an out-of-range task. *)

val complete : t -> unit
(** Record the completion of one region-level unit of work. *)

val iters : t -> int -> int
val completions : t -> int
val hook_calls : t -> int

val compute_ns : t -> int -> int
(** Total hook-attributed compute ns of a task since the last reset. *)

val exec_time : t -> int -> float
(** Decima's estimate of a task's per-instance execution time in ns
    (the paper's [Parcae::getExecTime]). *)

val task_rate : t -> int -> float
(** Average observed completion rate of a task, instances/second, over the
    whole run. *)

val recent_samples : t -> int -> int array
(** The last hook samples of a task (dt in ns, oldest first) still present
    in the monitor's preallocated sample ring — a bounded raw-sample
    window for diagnostics.  Cold path: allocates the result. *)

(** {1 Interval throughput}

    The closed-loop controller compares configurations by the throughput
    achieved between two snapshots. *)

type snapshot

val snapshot : t -> snapshot
val rate_since : t -> snapshot -> int -> float
val completion_rate_since : t -> snapshot -> float
val iters_since : t -> snapshot -> int -> int

(** {1 Platform feature registry (Figure 5.8)} *)

val register_feature : t -> string -> (unit -> float) -> unit
val feature : t -> string -> float option

val flight_tasks : t -> Parcae_obs.Flight.task_obs list
(** Per-task measurement snapshot (label, iterations, rate, exec time)
    attached to flight-recorder decisions. *)
