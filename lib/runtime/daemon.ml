(* Platform-wide control (Section 6.4.3, Algorithm 5).

   The daemon partitions the platform's hardware threads across the flexible
   parallel programs currently executing.  Each program runs under its own
   controller; the daemon:

   - grants each newly registered program an equal share of the platform
     (N / P threads) and notifies every controller of the change;
   - collects the optimized thread usage each controller reports on reaching
     its Monitor state, and redistributes the slack N - sum(N'_p) to
     programs that saturated their budget;
   - reclaims threads when programs terminate.

   The daemon runs as a simulated thread, mirroring the paper's daemon
   launched at system boot. *)

module Engine = Parcae_platform.Engine
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Metrics = Parcae_obs.Metrics
module Flight = Parcae_obs.Flight

type program = {
  region : Region.t;
  controller : Controller.t;
  mutable usage : int option;  (* optimized usage reported by controller *)
}

type t = {
  eng : Engine.t;
  total : int;  (* platform thread budget *)
  mutable programs : program list;
  mutable generation : int;  (* bumped on membership change *)
  period_ns : int;
  mutable stop : bool;
}

let create ?(period_ns = 10_000_000) eng ~total_threads =
  { eng; total = total_threads; programs = []; generation = 0; period_ns; stop = false }

let active t = List.filter (fun p -> not (Region.is_done p.region)) t.programs

(* Record the post-change partitioning of the platform.  [reason] is the
   flight-recorder tag: "equal_share" for membership-driven repartitions,
   "slack_reclaimed" for usage-driven redistributions (Algorithm 5). *)
let trace_shares t ~reason act =
  let shares = List.map (fun p -> (p.region.Region.name, Region.budget p.region)) act in
  if Trace.enabled () then
    Trace.emit ~t:(Engine.time t.eng) (Event.Daemon_repartition { total = t.total; shares });
  if Flight.enabled () then begin
    let granted = List.fold_left (fun acc (_, b) -> acc + b) 0 shares in
    Flight.decision ~t:(Engine.time t.eng) ~actor:"daemon" ~region:"platform" ~reason
      ~slack:shares ~candidate:granted ~chosen:granted ~threads:granted ~budget:t.total ()
  end;
  if Metrics.enabled () then begin
    let reg = Metrics.current () in
    Metrics.inc
      (Metrics.counter reg "parcae_daemon_repartitions_total"
         ~help:"Platform-wide budget repartitions/redistributions applied.");
    List.iter
      (fun p ->
        Metrics.set_gauge
          (Metrics.gauge reg "parcae_daemon_share"
             ~labels:[ ("program", p.region.Region.name) ]
             ~help:"Current thread budget granted to each program.")
          (float_of_int (Region.budget p.region)))
      act
  end

(* Re-partition budgets equally among active programs and notify their
   controllers that resources changed. *)
let repartition t =
  let act = active t in
  let n = List.length act in
  if n > 0 then begin
    let share = max 1 (t.total / n) in
    List.iter
      (fun p ->
        p.usage <- None;
        if Region.budget p.region <> share then begin
          Region.set_budget p.region share;
          Controller.notify_resource_change p.controller
        end)
      act;
    trace_shares t ~reason:"equal_share" act
  end

(* Redistribute slack once every active program has reported its optimized
   usage.  Programs that used strictly less than their budget release the
   difference; programs that saturated their budget split the slack. *)
let redistribute t =
  let act = active t in
  if act <> [] && List.for_all (fun p -> p.usage <> None) act then begin
    let used p = match p.usage with Some u -> u | None -> Region.budget p.region in
    let total_used = List.fold_left (fun acc p -> acc + used p) 0 act in
    let slack = t.total - total_used in
    let saturated = List.filter (fun p -> used p >= Region.budget p.region) act in
    if slack > 0 && saturated <> [] then begin
      let share = slack / List.length saturated in
      if share > 0 then begin
        (* A program below its budget releases the difference: its grant
           becomes the usage it reported, so outstanding grants never sum
           above the platform total.  No notification — the new grant is
           exactly what the program said it needs. *)
        List.iter
          (fun p ->
            if used p < Region.budget p.region then Region.set_budget p.region (used p))
          act;
        List.iter
          (fun p ->
            Region.set_budget p.region (Region.budget p.region + share);
            p.usage <- None;
            Controller.notify_resource_change p.controller)
          saturated;
        trace_shares t ~reason:"slack_reclaimed" act
      end
    end
  end

(* Register a launched program: give every program a fresh equal share. *)
let register t region controller =
  let p = { region; controller; usage = None } in
  Controller.set_usage_callback controller (fun used ->
      p.usage <- Some used;
      redistribute t);
  t.programs <- p :: t.programs;
  t.generation <- t.generation + 1;
  repartition t

let request_stop t = t.stop <- true

(* Daemon main loop: watch for program terminations and re-partition.
   Run as the body of a simulated thread. *)
let run t =
  let last_active = ref (List.length (active t)) in
  while not t.stop do
    Engine.sleep t.period_ns;
    let n = List.length (active t) in
    if n <> !last_active then begin
      last_active := n;
      if n > 0 then repartition t
    end;
    if n = 0 && t.programs <> [] then t.stop <- true
  done

let spawn eng t = Engine.spawn eng ~name:"parcae-daemon" (fun () -> run t)
