(** The Morta executive loop for administrator-selected mechanisms
    (the paper's Section 6.2 and Figure 6.1).

    A mechanism is a reconfiguration policy: given a region (with its
    Decima statistics and thread budget) it proposes a new parallelism
    configuration tagged with the reason that triggered it, or [None] to
    keep the current one.  Adopted proposals are recorded on the
    {!Parcae_obs.Flight} recorder before being applied.  Implementations
    live in the [Parcae_mechanisms] library; the FSM-based default
    optimizer is {!Controller}. *)

type proposal = {
  cfg : Parcae_core.Config.t;
  why : string;  (** stable snake_case reason tag, e.g. ["queue_threshold"] *)
}

type mechanism = Region.t -> proposal option

val propose : why:string -> Parcae_core.Config.t -> proposal option
(** [propose ~why cfg = Some { cfg; why }] — mechanism convenience. *)

val drive :
  ?stop:(unit -> bool) -> period_ns:int -> mechanism:mechanism -> Region.t -> unit
(** Run the mechanism every [period_ns] until the region completes or
    [stop ()]; applies proposals via [Executor.reconfigure].  Intended as
    the body of a dedicated simulated thread. *)

val spawn :
  ?stop:(unit -> bool) ->
  period_ns:int ->
  mechanism:mechanism ->
  Parcae_platform.Engine.t ->
  Region.t ->
  Parcae_platform.Engine.thread
(** Spawn the executive thread for a region. *)
