(* Descriptive statistics over float samples.  Used by Decima for
   moving-average throughput estimates and by the benchmark harness for
   response-time percentiles. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

(* [percentile p xs] for p in [0, 100], by linear interpolation between
   closest ranks.  Does not mutate its argument. *)
let percentile p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: it gives NaNs a total order
     (before every number), so a sample containing NaN still sorts
     deterministically instead of depending on input order. *)
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let median xs = percentile 50.0 xs

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty sample";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

(* Exponentially-weighted moving average, the estimator Decima uses for task
   throughput: cheap, O(1) state, and responsive to workload change. *)
module Ewma = struct
  type t = { alpha : float; mutable value : float; mutable primed : bool }

  let create ~alpha =
    if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha in (0,1]";
    { alpha; value = 0.0; primed = false }

  let observe t x =
    if t.primed then t.value <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.value)
    else begin
      t.value <- x;
      t.primed <- true
    end

  let value t = t.value
  let primed t = t.primed
  let reset t = t.primed <- false
end

(* Bounded uniform sample of an unbounded observation stream (Vitter's
   Algorithm R) with exact running aggregates.  The benchmark harness keeps
   response times here so percentile reporting stays O(capacity) memory no
   matter how long a server run is.  Replacement indices come from a
   fixed-seed 64-bit LCG, so same-seed runs keep byte-identical samples. *)
module Reservoir = struct
  type t = {
    buf : float array;
    mutable n : int;  (* observations ever seen *)
    mutable len : int;  (* filled slots, <= capacity *)
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable state : int64;  (* LCG state *)
  }

  let default_capacity = 8192

  let create ?(capacity = default_capacity) ?(seed = 1) () =
    if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
    {
      buf = Array.make capacity 0.0;
      n = 0;
      len = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
      state = Int64.of_int seed;
    }

  (* Knuth's MMIX LCG; the high bits feed the bounded draw. *)
  let draw t bound =
    t.state <- Int64.add (Int64.mul t.state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical t.state 17) mod bound

  let observe t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    let cap = Array.length t.buf in
    if t.len < cap then begin
      t.buf.(t.len) <- x;
      t.len <- t.len + 1
    end
    else begin
      let j = draw t t.n in
      if j < cap then t.buf.(j) <- x
    end

  let count t = t.n
  let sample_count t = t.len
  let capacity t = Array.length t.buf
  let sum t = t.sum
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let samples t = Array.sub t.buf 0 t.len

  let percentile p t = percentile p (samples t)

  let min_max t =
    if t.n = 0 then invalid_arg "Stats.Reservoir.min_max: empty sample";
    (t.min_v, t.max_v)

  let reset t =
    t.n <- 0;
    t.len <- 0;
    t.sum <- 0.0;
    t.min_v <- infinity;
    t.max_v <- neg_infinity
end

(* Windowed mean over the last [capacity] observations; used where a bounded
   memory of recent iterations matters more than smooth decay. *)
module Window = struct
  type t = {
    buf : float array;
    mutable len : int;
    mutable next : int;
    mutable sum : float;
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Window.create: capacity must be positive";
    { buf = Array.make capacity 0.0; len = 0; next = 0; sum = 0.0 }

  let observe t x =
    let cap = Array.length t.buf in
    if t.len = cap then t.sum <- t.sum -. t.buf.(t.next) else t.len <- t.len + 1;
    t.buf.(t.next) <- x;
    t.sum <- t.sum +. x;
    t.next <- (t.next + 1) mod cap

  let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len
  let count t = t.len

  let reset t =
    t.len <- 0;
    t.next <- 0;
    t.sum <- 0.0
end
