(** Growable ring buffer: a FIFO whose steady-state [push]/[pop] allocate
    nothing (slots are reused in place; only doubling growth allocates),
    unlike [Queue.t]'s cell per push.  The serve path's channels, run
    queue and condition waiter queues are built on this.

    Not thread-safe; callers synchronize externally (the simulator is
    cooperative, the native backend wraps operations in monitors). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail.  O(1) amortized, allocation-free unless the ring
    must grow. *)

val pop : 'a t -> 'a
(** Remove and return the head.  Allocation-free.
    @raise Invalid_argument when empty. *)

val pop_opt : 'a t -> 'a option
val peek : 'a t -> 'a

val iter : ('a -> unit) -> 'a t -> unit
(** Head-to-tail iteration over the live elements. *)

val clear : 'a t -> unit

val filter_in_place : ('a -> bool) -> 'a t -> int
(** Keep only elements satisfying the predicate, preserving order;
    returns how many were dropped. *)
