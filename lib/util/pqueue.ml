(* Binary min-heap priority queue keyed by [(int, int)] pairs: primary key is
   the event time, secondary key a monotonically increasing sequence number.
   The sequence number makes the discrete-event simulator fully
   deterministic: two events at the same virtual time are processed in
   insertion order.

   Layout: three parallel arrays (key, sequence, payload) instead of an
   array of entry records.  The simulator pushes and pops one event per
   scheduling decision, so the per-entry record was pure allocator traffic
   on the serve path; the flat layout makes [push] and the [top_key] /
   [pop_exn] pair allocation-free. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let lt t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let k = t.keys.(i) and s = t.seqs.(i) and d = t.data.(i) in
  t.keys.(i) <- t.keys.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.data.(i) <- t.data.(j);
  t.keys.(j) <- k;
  t.seqs.(j) <- s;
  t.data.(j) <- d

(* The dummy slots of a fresh payload array are overwritten before any
   read: [size] never exceeds the number of slots actually written. *)
let grow t dummy =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nk = Array.make ncap 0 and ns = Array.make ncap 0 and nd = Array.make ncap dummy in
  Array.blit t.keys 0 nk 0 t.size;
  Array.blit t.seqs 0 ns 0 t.size;
  Array.blit t.data 0 nd 0 t.size;
  t.keys <- nk;
  t.seqs <- ns;
  t.data <- nd

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < t.size && lt t l i then l else i in
  let s = if r < t.size && lt t r s then r else s in
  if s <> i then begin
    swap t i s;
    sift_down t s
  end

(* Insert [payload] with priority [key]; ties resolve in insertion order. *)
let push t key payload =
  if t.size = Array.length t.data then grow t payload;
  t.keys.(t.size) <- key;
  t.seqs.(t.size) <- t.next_seq;
  t.data.(t.size) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_key t = if t.size = 0 then None else Some t.keys.(0)

let top_key t =
  if t.size = 0 then invalid_arg "Pqueue.top_key: empty";
  t.keys.(0)

(* Remove the minimum entry and return its payload.  The vacated tail slot
   keeps its old payload reference until overwritten by a later push —
   bounded retention, same as the previous record layout. *)
let pop_exn t =
  if t.size = 0 then invalid_arg "Pqueue.pop_exn: empty";
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.keys.(0) <- t.keys.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

(* Remove and return the minimum entry as [(key, payload)]. *)
let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    Some (key, pop_exn t)
  end

let clear t = t.size <- 0
