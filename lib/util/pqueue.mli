(** Binary min-heap priority queue with deterministic tie-breaking.

    Entries with equal keys pop in insertion order, which makes the
    discrete-event simulator built on top of it fully deterministic.

    Storage is three parallel arrays (key, sequence, payload), so [push]
    and the [top_key]/[pop_exn] pair allocate nothing — the simulator's
    event loop runs them once per scheduling decision. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push q key payload] inserts with priority [key]; ties resolve in
    insertion order.  Allocation-free outside of capacity doubling. *)

val peek_key : 'a t -> int option
(** Smallest key currently in the queue. *)

val top_key : 'a t -> int
(** Smallest key, allocation-free.
    @raise Invalid_argument when the queue is empty — guard with
    {!is_empty}. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry as [(key, payload)]. *)

val pop_exn : 'a t -> 'a
(** Remove the minimum entry and return its payload, allocation-free.
    @raise Invalid_argument when the queue is empty. *)

val clear : 'a t -> unit
