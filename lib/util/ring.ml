(* Growable ring buffer: FIFO with reusable slots.

   Stdlib [Queue.t] allocates a three-word cell per [push]; on the serve
   path every channel message, run-queue entry and condition waiter goes
   through such a queue, so the cells alone tax the allocator per
   request.  This ring stores elements in a slot array reused in place —
   steady-state push/pop allocates nothing; only growth (doubling,
   amortized) allocates.

   Slots hold [Obj.t] so one unparameterized buffer serves any element
   type without an ['a option] box per occupied slot.  The phantom
   parameter keeps the external interface typed; safety rests on the
   usual container invariant that only values pushed as ['a] are read
   back as ['a].  Vacated slots are overwritten with an immediate so the
   ring never pins dead values against the GC. *)

type 'a t = {
  mutable buf : Obj.t array;  (* capacity is always a power of two *)
  mutable head : int;  (* index of the oldest element *)
  mutable size : int;
}

let nil = Obj.repr 0
let initial_capacity = 16

let create () = { buf = Array.make initial_capacity nil; head = 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Double the slot array, unrolling the wrap so the live elements start at
   index 0 of the new buffer. *)
let grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (2 * cap) nil in
  let mask = cap - 1 in
  for i = 0 to t.size - 1 do
    nbuf.(i) <- t.buf.((t.head + i) land mask)
  done;
  t.buf <- nbuf;
  t.head <- 0

let push t v =
  if t.size = Array.length t.buf then grow t;
  t.buf.((t.head + t.size) land (Array.length t.buf - 1)) <- Obj.repr v;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then invalid_arg "Ring.pop: empty";
  let v : Obj.t = t.buf.(t.head) in
  t.buf.(t.head) <- nil;
  t.head <- (t.head + 1) land (Array.length t.buf - 1);
  t.size <- t.size - 1;
  (Obj.obj v : _)

let pop_opt t = if t.size = 0 then None else Some (pop t)

let peek t =
  if t.size = 0 then invalid_arg "Ring.peek: empty";
  (Obj.obj t.buf.(t.head) : _)

let iter f t =
  let mask = Array.length t.buf - 1 in
  for i = 0 to t.size - 1 do
    f (Obj.obj t.buf.((t.head + i) land mask))
  done

let clear t =
  let mask = Array.length t.buf - 1 in
  for i = 0 to t.size - 1 do
    t.buf.((t.head + i) land mask) <- nil
  done;
  t.head <- 0;
  t.size <- 0

(* In-place filter, preserving order: compact kept elements toward the
   head.  Returns how many were dropped.  Cold path (reconfiguration). *)
let filter_in_place keep t =
  let mask = Array.length t.buf - 1 in
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    let v = t.buf.((t.head + i) land mask) in
    if keep (Obj.obj v) then begin
      t.buf.((t.head + !kept) land mask) <- v;
      incr kept
    end
  done;
  (* Vacate the tail slots left behind by the compaction. *)
  for i = !kept to t.size - 1 do
    t.buf.((t.head + i) land mask) <- nil
  done;
  let dropped = t.size - !kept in
  t.size <- !kept;
  dropped
