(** Descriptive statistics over float samples, plus the moving-average
    estimators Decima uses for task throughput and execution time.

    {b Empty-input contract.}  Aggregates with a natural zero ({!mean},
    {!variance}, {!stddev}, {!geomean}) return [0.0] on an empty sample;
    order statistics with no meaningful default ({!percentile}, {!median},
    {!min_max}) raise [Invalid_argument] instead of inventing a value.
    Callers that may hold an empty sample must check before asking for a
    percentile. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty sample. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val percentile : float -> float array -> float
(** [percentile p xs] for [p] in [\[0, 100\]], by linear interpolation
    between closest ranks.  Does not mutate its argument.  A single-element
    sample returns that element for every [p].  Samples are ordered with
    [Float.compare], so NaNs sort before every number and the result is
    deterministic (though rarely meaningful) in their presence.
    @raise Invalid_argument on an empty sample or out-of-range [p]. *)

val median : float array -> float
(** [percentile 50.0]. *)

val min_max : float array -> float * float
(** Smallest and largest sample.
    @raise Invalid_argument on an empty sample. *)

val geomean : float array -> float
(** Geometric mean; 0 for an empty sample. *)

(** Exponentially-weighted moving average: O(1) state, responsive to
    workload change. *)
module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] in (0, 1]: weight of the newest observation. *)

  val observe : t -> float -> unit
  (** Fold in an observation; the first observation is taken as-is. *)

  val value : t -> float
  (** Current estimate (0 before any observation). *)

  val primed : t -> bool
  (** Whether at least one observation has been folded in. *)

  val reset : t -> unit
end

(** Bounded uniform sample of an unbounded stream (Vitter's Algorithm R)
    with exact running count/sum/min/max.  Replacement uses a fixed-seed
    LCG, so same-seed runs keep byte-identical samples. *)
module Reservoir : sig
  type t

  val default_capacity : int
  (** 8192 samples. *)

  val create : ?capacity:int -> ?seed:int -> unit -> t
  (** @raise Invalid_argument if [capacity] is not positive. *)

  val observe : t -> float -> unit

  val count : t -> int
  (** Observations ever seen (not capped). *)

  val sample_count : t -> int
  (** Retained samples, [min count capacity]. *)

  val capacity : t -> int

  val sum : t -> float
  (** Exact running sum over all observations. *)

  val mean : t -> float
  (** Exact mean over all observations; 0 when empty. *)

  val samples : t -> float array
  (** Copy of the retained sample, unsorted. *)

  val percentile : float -> t -> float
  (** Estimated from the retained sample; exact while [count <= capacity].
      @raise Invalid_argument on an empty reservoir or out-of-range [p]. *)

  val min_max : t -> float * float
  (** Exact extremes over all observations.
      @raise Invalid_argument on an empty reservoir. *)

  val reset : t -> unit
end

(** Mean over a sliding window of the last [capacity] observations. *)
module Window : sig
  type t

  val create : int -> t
  (** @raise Invalid_argument if the capacity is not positive. *)

  val observe : t -> float -> unit
  val mean : t -> float
  val count : t -> int
  val reset : t -> unit
end
