(** Blocking FIFO channels between native tasks.

    Same contract as {!Parcae_sim.Chan} — bounded or unbounded,
    multi-producer multi-consumer, order-preserving point-to-point, with
    the [force_send]/[filter]/[drain] operations the pause/flush protocol
    relies on — implemented as a lock-free Michael–Scott queue with a
    per-channel monitor used only to park and wake blocked callers.
    Single ops are one CAS; [send_batch]/[recv_batch] move a whole batch
    with one CAS (batched reservation).  Capacity is a soft bound: with k
    concurrent producers occupancy can transiently exceed it by at most
    k-1 items.  No virtual [chan_op] cost is charged: on real hardware
    the CAS and wake-up traffic {e is} the communication cost, and it
    lands in wall time where Decima can see it. *)

type 'a t

val create : ?capacity:int -> Engine.t -> string -> 'a t
(** [create eng name] makes an unbounded channel; [capacity > 0] bounds
    it (senders block when full). *)

val name : 'a t -> string
val length : 'a t -> int
val is_empty : 'a t -> bool
val total_sent : 'a t -> int
val total_received : 'a t -> int

val send : 'a t -> 'a -> unit
val recv : 'a t -> 'a

val force_send : 'a t -> 'a -> unit
(** Enqueue regardless of capacity; sentinel re-enqueue must never block. *)

val try_recv : 'a t -> 'a option
val try_send : 'a t -> 'a -> bool

val send_batch : 'a t -> 'a list -> unit
(** Enqueue a whole batch with one CAS per capacity-limited chunk (a
    single CAS on unbounded channels, so the batch appears contiguously);
    blocks while the channel cannot take the next chunk.  The empty batch
    is a no-op. *)

val recv_batch : ?max:int -> 'a t -> 'a list
(** Dequeue at least one and at most [max] items (default: all queued)
    with one CAS for the whole batch; blocks only while the channel is
    empty. *)

val filter : 'a t -> ('a -> bool) -> int
(** Keep only items satisfying the predicate, preserving order; emits the
    same [Chan_flush] trace event as the simulator. *)

val drain : 'a t -> int
