(** Blocking FIFO channels between native tasks.

    Same contract as {!Parcae_sim.Chan} — bounded or unbounded,
    multi-producer multi-consumer, order-preserving point-to-point, with
    the [force_send]/[filter]/[drain] operations the pause/flush protocol
    relies on — implemented as a monitor on the engine's big lock.  No
    virtual [chan_op] cost is charged: on real hardware the mutex and
    condition traffic {e is} the communication cost, and it lands in wall
    time where Decima can see it. *)

type 'a t

val create : ?capacity:int -> Engine.t -> string -> 'a t
(** [create eng name] makes an unbounded channel; [capacity > 0] bounds
    it (senders block when full). *)

val name : 'a t -> string
val length : 'a t -> int
val is_empty : 'a t -> bool
val total_sent : 'a t -> int
val total_received : 'a t -> int

val send : 'a t -> 'a -> unit
val recv : 'a t -> 'a

val force_send : 'a t -> 'a -> unit
(** Enqueue regardless of capacity; sentinel re-enqueue must never block. *)

val try_recv : 'a t -> 'a option
val try_send : 'a t -> 'a -> bool

val send_batch : 'a t -> 'a list -> unit
(** Enqueue a whole batch under one monitor entry (amortized
    communication); blocks while the channel cannot take the next item. *)

val recv_batch : ?max:int -> 'a t -> 'a list
(** Dequeue at least one and at most [max] items (default: all queued)
    under one monitor entry; blocks only while the channel is empty. *)

val filter : 'a t -> ('a -> bool) -> int
(** Keep only items satisfying the predicate, preserving order; emits the
    same [Chan_flush] trace event as the simulator. *)

val drain : 'a t -> int
