(* Host clock and the calibrated spin kernel.

   [compute n] on the native backend must consume ~n real nanoseconds of
   CPU.  We time a fixed arithmetic loop once at startup to learn
   iterations-per-ns, then replay it in slices with a cpu-relax hint
   between slices (an SMT-friendly pause; the fiber keeps its domain for
   the whole spin).  The measured (not the requested) duration is
   returned so busy-time accounting matches the clock even when the
   estimate drifts. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* The spin body: cheap integer arithmetic the compiler cannot delete
   ([Sys.opaque_identity] on the accumulator) and cannot strength-reduce
   into anything sublinear. *)
let spin_iters n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc + i) lxor (i lsl 1)
  done;
  ignore (Sys.opaque_identity !acc)

(* Measure iterations-per-ns over a window long enough (>= 2 ms) to
   amortize clock quantization.  Doubling the trial size until the window
   is reached keeps calibration under ~10 ms even on slow hosts. *)
let calibrate () =
  let rec grow iters =
    let t0 = now_ns () in
    spin_iters iters;
    let dt = now_ns () - t0 in
    if dt >= 2_000_000 then float_of_int iters /. float_of_int dt
    else grow (iters * 2)
  in
  (* Warm the loop (code + branch predictors) before the timed run. *)
  spin_iters 10_000;
  grow 100_000

let rate = ref nan
let calibrated () = not (Float.is_nan !rate)

let spins_per_ns () =
  if Float.is_nan !rate then rate := calibrate ();
  !rate

let slice_ns = 200_000

(* Burn ~[n] ns in ~slice_ns slices, and return measured elapsed ns.  Elapsed time includes any preemption suffered while
   spinning — on a saturated machine that is genuine scheduling delay and
   Decima should see it, exactly as it would on the paper's hardware. *)
let spin_ns n =
  if n <= 0 then 0
  else begin
    let per_ns = spins_per_ns () in
    let t0 = now_ns () in
    let remaining = ref n in
    while !remaining > 0 do
      let slice = min !remaining slice_ns in
      spin_iters (max 1 (int_of_float (float_of_int slice *. per_ns)));
      remaining := !remaining - slice;
      if !remaining > 0 then Domain.cpu_relax ()
    done;
    now_ns () - t0
  end
