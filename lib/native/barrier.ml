(* Generation-counted reusable barrier on its own monitor; waiting fibers
   suspend (their domains keep running other tasks), so a barrier across
   more parties than pool domains cannot deadlock the scheduler. *)

module Monitor = Engine.Monitor
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb

(* Explain the measured wait as Barrier_wait on this worker's lane; the
   suspended fiber freed its domain, so the transfer mostly relabels the
   lane's idle (Park/Steal_search) time. *)
let tl_wait dt =
  if dt > 0 then
    match Timeline.get () with
    | Some tl -> (
        match Engine.worker_id_opt () with
        | Some lane when lane < Timeline.lanes tl ->
            Timeline.attribute tl ~lane Timeline.Barrier_wait dt
        | _ -> ())
    | None -> ()

type t = {
  name : string;
  eng : Engine.t;
  parties : int;
  mon : Monitor.m;
  turn : Monitor.c;
  mutable arrived : int;  (* guarded by mon *)
  mutable generation : int;  (* guarded by mon *)
  mutable total_wait_ns : int;  (* guarded by mon *)
}

let create eng ~parties name =
  if parties <= 0 then invalid_arg (Printf.sprintf "Barrier.create %s: parties <= 0" name);
  let mon = Monitor.create () in
  {
    name;
    eng;
    parties;
    mon;
    turn = Monitor.cond mon;
    arrived = 0;
    generation = 0;
    total_wait_ns = 0;
  }

let wait b =
  Monitor.locked b.mon (fun () ->
      (* Sanitizer edges: arrivals release into the barrier clock under the
         monitor; departures acquire it, so all pre-barrier work
         happens-before all post-barrier work. *)
      let hb_key = "barrier:" ^ b.name in
      let hb_tid () =
        match Engine.self_opt () with Some t -> Some (Engine.task_id t) | None -> None
      in
      (if Hb.enabled () then
         match hb_tid () with
         | Some task -> Hb.on_release ~task ~key:hb_key
         | None -> ());
      b.arrived <- b.arrived + 1;
      if b.arrived = b.parties then begin
        b.arrived <- 0;
        b.generation <- b.generation + 1;
        (if Hb.enabled () then
           match hb_tid () with
           | Some task -> Hb.on_acquire ~task ~key:hb_key
           | None -> ());
        Monitor.broadcast b.turn;
        true
      end
      else begin
        let gen = b.generation in
        let t0 = Engine.now b.eng in
        while b.generation = gen do
          Monitor.wait b.turn
        done;
        (if Hb.enabled () then
           match hb_tid () with
           | Some task -> Hb.on_acquire ~task ~key:hb_key
           | None -> ());
        let dt = Engine.now b.eng - t0 in
        b.total_wait_ns <- b.total_wait_ns + dt;
        tl_wait dt;
        false
      end)

let total_wait_ns b = b.total_wait_ns
let parties b = b.parties
