(* Generation-counted reusable barrier on its own monitor; waiting fibers
   suspend (their domains keep running other tasks), so a barrier across
   more parties than pool domains cannot deadlock the scheduler. *)

module Monitor = Engine.Monitor
module Timeline = Parcae_obs.Timeline

(* Explain the measured wait as Barrier_wait on this worker's lane; the
   suspended fiber freed its domain, so the transfer mostly relabels the
   lane's idle (Park/Steal_search) time. *)
let tl_wait dt =
  if dt > 0 then
    match Timeline.get () with
    | Some tl -> (
        match Engine.worker_id_opt () with
        | Some lane when lane < Timeline.lanes tl ->
            Timeline.attribute tl ~lane Timeline.Barrier_wait dt
        | _ -> ())
    | None -> ()

type t = {
  name : string;
  eng : Engine.t;
  parties : int;
  mon : Monitor.m;
  turn : Monitor.c;
  mutable arrived : int;  (* guarded by mon *)
  mutable generation : int;  (* guarded by mon *)
  mutable total_wait_ns : int;  (* guarded by mon *)
}

let create eng ~parties name =
  if parties <= 0 then invalid_arg (Printf.sprintf "Barrier.create %s: parties <= 0" name);
  let mon = Monitor.create () in
  {
    name;
    eng;
    parties;
    mon;
    turn = Monitor.cond mon;
    arrived = 0;
    generation = 0;
    total_wait_ns = 0;
  }

let wait b =
  Monitor.locked b.mon (fun () ->
      b.arrived <- b.arrived + 1;
      if b.arrived = b.parties then begin
        b.arrived <- 0;
        b.generation <- b.generation + 1;
        Monitor.broadcast b.turn;
        true
      end
      else begin
        let gen = b.generation in
        let t0 = Engine.now b.eng in
        while b.generation = gen do
          Monitor.wait b.turn
        done;
        let dt = Engine.now b.eng - t0 in
        b.total_wait_ns <- b.total_wait_ns + dt;
        tl_wait dt;
        false
      end)

let total_wait_ns b = b.total_wait_ns
let parties b = b.parties
