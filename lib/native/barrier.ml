(* Generation-counted reusable barrier on the engine's big lock. *)

type t = {
  name : string;
  eng : Engine.t;
  parties : int;
  turn : Engine.cond;
  mutable arrived : int;
  mutable generation : int;
  mutable total_wait_ns : int;
}

let create eng ~parties name =
  if parties <= 0 then invalid_arg (Printf.sprintf "Barrier.create %s: parties <= 0" name);
  { name; eng; parties; turn = Engine.cond_create (); arrived = 0; generation = 0;
    total_wait_ns = 0 }

let wait b =
  Engine.locked b.eng (fun () ->
      b.arrived <- b.arrived + 1;
      if b.arrived = b.parties then begin
        b.arrived <- 0;
        b.generation <- b.generation + 1;
        Engine.broadcast b.eng b.turn;
        true
      end
      else begin
        let gen = b.generation in
        let t0 = Engine.now b.eng in
        while b.generation = gen do
          Engine.wait_on b.eng b.turn
        done;
        b.total_wait_ns <- b.total_wait_ns + (Engine.now b.eng - t0);
        false
      end)

let total_wait_ns b = b.total_wait_ns
let parties b = b.parties
