(** Reusable synchronization barrier between native tasks, mirroring
    {!Parcae_sim.Barrier}: generation-counted, [wait] returns [true] for
    the last arriver, [total_wait_ns] aggregates real blocked time. *)

type t

val create : Engine.t -> parties:int -> string -> t
val wait : t -> bool
val total_wait_ns : t -> int
val parties : t -> int
