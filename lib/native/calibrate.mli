(** Host clock and the calibrated spin kernel.

    The native backend replaces the simulator's virtual [compute n] with a
    busy loop tuned so that [spin_ns n] burns approximately [n] real
    nanoseconds of CPU.  Calibration runs once, lazily, the first time any
    spin executes; its result is shared by every native engine in the
    process.  Spins are sliced (about {!slice_ns} per slice) with a
    [Thread.yield] between slices so sibling systhreads multiplexed on the
    same domain keep interleaving at a much finer grain than the runtime's
    50 ms tick. *)

val now_ns : unit -> int
(** Host monotonic clock, nanoseconds.  Only differences are meaningful. *)

val spins_per_ns : unit -> float
(** Calibrated spin-loop iterations per nanosecond; forces calibration on
    first use. *)

val calibrated : unit -> bool
(** Whether calibration has already run (it never runs twice). *)

val slice_ns : int
(** Target duration of one spin slice between yields. *)

val spin_ns : int -> int
(** Burn approximately [n] ns of CPU and return the measured elapsed
    nanoseconds (which is what callers should account, so that clock and
    busy-time bookkeeping agree even when calibration is imperfect). *)
