(* Mutual exclusion between native tasks: a per-structure monitor (no
   shared engine lock), with the same owner bookkeeping as the
   simulator's Lock — owner identity, recursive-acquire and
   stranger-release checks, contention counters.  The owner is the
   *fiber* (task handle), so ownership survives a migration between
   domains while blocked elsewhere is impossible: lock holders never
   suspend inside acquire/release. *)

module Monitor = Engine.Monitor
module Hb = Parcae_obs.Hb

type t = {
  name : string;
  mon : Monitor.m;
  free : Monitor.c;
  mutable owner : Engine.task option;  (* guarded by mon *)
  mutable acquisitions : int;  (* guarded by mon *)
  mutable contended : int;  (* guarded by mon *)
}

let create _eng name =
  let mon = Monitor.create () in
  { name; mon; free = Monitor.cond mon; owner = None; acquisitions = 0; contended = 0 }

let acquire lk =
  Monitor.locked lk.mon (fun () ->
      let me =
        match Engine.self_opt () with
        | Some t -> t
        | None ->
            invalid_arg (Printf.sprintf "Lock.acquire %s: not called from a task" lk.name)
      in
      (match lk.owner with
      | Some o when o == me ->
          invalid_arg (Printf.sprintf "Lock.acquire %s: recursive acquisition" lk.name)
      | _ -> ());
      let waited = ref false in
      let rec loop () =
        match lk.owner with
        | Some _ ->
            waited := true;
            Monitor.wait lk.free;
            loop ()
        | None -> ()
      in
      loop ();
      lk.owner <- Some me;
      if Hb.enabled () then
        Hb.on_acquire ~task:(Engine.task_id me) ~key:("lock:" ^ lk.name);
      lk.acquisitions <- lk.acquisitions + 1;
      if !waited then lk.contended <- lk.contended + 1)

let release lk =
  Monitor.locked lk.mon (fun () ->
      (match (Engine.self_opt (), lk.owner) with
      | Some t, Some o when t == o -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf "Lock.release %s: caller does not hold the lock" lk.name));
      (if Hb.enabled () then
         match Engine.self_opt () with
         | Some t -> Hb.on_release ~task:(Engine.task_id t) ~key:("lock:" ^ lk.name)
         | None -> ());
      lk.owner <- None;
      Monitor.signal lk.free)

let with_lock lk f =
  acquire lk;
  Fun.protect ~finally:(fun () -> release lk) f

let acquisitions lk = lk.acquisitions
let contended lk = lk.contended
