(* Mutual exclusion between native tasks: a monitor on the engine's big
   lock, with the same owner bookkeeping as the simulator's Lock (owner
   identity, recursive-acquire and stranger-release checks, contention
   counters). *)

type t = {
  name : string;
  eng : Engine.t;
  free : Engine.cond;
  mutable owner : Engine.task option;
  mutable acquisitions : int;
  mutable contended : int;
}

let create eng name =
  { name; eng; free = Engine.cond_create (); owner = None; acquisitions = 0; contended = 0 }

let acquire lk =
  Engine.locked lk.eng (fun () ->
      let me =
        match Engine.self_opt () with
        | Some t -> t
        | None ->
            invalid_arg (Printf.sprintf "Lock.acquire %s: not called from a task" lk.name)
      in
      (match lk.owner with
      | Some o when o == me ->
          invalid_arg (Printf.sprintf "Lock.acquire %s: recursive acquisition" lk.name)
      | _ -> ());
      let waited = ref false in
      let rec loop () =
        match lk.owner with
        | Some _ ->
            waited := true;
            Engine.wait_on lk.eng lk.free;
            loop ()
        | None -> ()
      in
      loop ();
      lk.owner <- Some me;
      lk.acquisitions <- lk.acquisitions + 1;
      if !waited then lk.contended <- lk.contended + 1)

let release lk =
  Engine.locked lk.eng (fun () ->
      (match (Engine.self_opt (), lk.owner) with
      | Some t, Some o when t == o -> ()
      | _ -> invalid_arg (Printf.sprintf "Lock.release %s: caller does not hold the lock" lk.name));
      lk.owner <- None;
      Engine.signal lk.eng lk.free)

let with_lock lk f =
  acquire lk;
  Fun.protect ~finally:(fun () -> release lk) f

let acquisitions lk = lk.acquisitions
let contended lk = lk.contended
