(* Blocking FIFO channels between native tasks: a classic monitor on the
   engine's big lock.  Because every caller already holds the big lock
   (task code always does; [Engine.locked] covers the rest), each
   operation is atomic with respect to all other runtime code, exactly
   like the simulator's cooperative channels. *)

module Metrics = Parcae_obs.Metrics

type chan_metrics = {
  cm_sends : Metrics.counter;
  cm_recvs : Metrics.counter;
  cm_depth : Metrics.gauge;
  cm_send_block : Metrics.histogram;
  cm_recv_block : Metrics.histogram;
  cm_flushed : Metrics.counter;
}

type 'a t = {
  name : string;
  capacity : int;  (* 0 = unbounded *)
  eng : Engine.t;
  q : 'a Queue.t;
  nonempty : Engine.cond;
  nonfull : Engine.cond;
  mutable total_sent : int;
  mutable total_received : int;
  mutable mx : (Metrics.t * chan_metrics) option;
}

let create ?(capacity = 0) eng name =
  {
    name;
    capacity;
    eng;
    q = Queue.create ();
    nonempty = Engine.cond_create ();
    nonfull = Engine.cond_create ();
    total_sent = 0;
    total_received = 0;
    mx = None;
  }

(* Same metric families and labels as the sim channels, so dashboards and
   exporters work across backends; only the block-time histograms change
   meaning (real ns instead of virtual). *)
let handles ch =
  let reg = Metrics.current () in
  match ch.mx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let labels = [ ("chan", ch.name) ] in
      let h =
        {
          cm_sends =
            Metrics.counter reg "parcae_chan_sends_total" ~labels
              ~help:"Items enqueued, per channel.";
          cm_recvs =
            Metrics.counter reg "parcae_chan_recvs_total" ~labels
              ~help:"Items dequeued, per channel.";
          cm_depth =
            Metrics.gauge reg "parcae_chan_depth" ~labels
              ~help:"Current queue occupancy, per channel.";
          cm_send_block =
            Metrics.histogram reg "parcae_chan_send_block_ns" ~labels
              ~help:"Real time senders spent blocked on a full channel.";
          cm_recv_block =
            Metrics.histogram reg "parcae_chan_recv_block_ns" ~labels
              ~help:"Real time receivers spent blocked on an empty channel.";
          cm_flushed =
            Metrics.counter reg "parcae_chan_flushed_total" ~labels
              ~help:"Items dropped by filter/drain on reconfiguration.";
        }
      in
      ch.mx <- Some (reg, h);
      h

let note_depth ch =
  if Metrics.enabled () then
    Metrics.set_gauge (handles ch).cm_depth (float_of_int (Queue.length ch.q))

let name ch = ch.name
let length ch = Queue.length ch.q
let is_empty ch = Queue.is_empty ch.q
let total_sent ch = ch.total_sent
let total_received ch = ch.total_received

let note_send ch waited t0 =
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_sends;
    Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
    if waited then Metrics.observe_ns h.cm_send_block (Engine.now ch.eng - t0)
  end

let note_recv ch waited t0 =
  if Metrics.enabled () then begin
    let h = handles ch in
    Metrics.inc h.cm_recvs;
    Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
    if waited then Metrics.observe_ns h.cm_recv_block (Engine.now ch.eng - t0)
  end

let push ch v =
  Queue.push v ch.q;
  ch.total_sent <- ch.total_sent + 1;
  Engine.signal ch.eng ch.nonempty

let send ch v =
  Engine.locked ch.eng (fun () ->
      let waited = ref false in
      let t0 = if Metrics.enabled () then Engine.now ch.eng else 0 in
      while ch.capacity > 0 && Queue.length ch.q >= ch.capacity do
        waited := true;
        Engine.wait_on ch.eng ch.nonfull
      done;
      push ch v;
      note_send ch !waited t0)

let recv ch =
  Engine.locked ch.eng (fun () ->
      let waited = ref false in
      let t0 = if Metrics.enabled () then Engine.now ch.eng else 0 in
      let rec loop () =
        match Queue.take_opt ch.q with
        | Some v ->
            ch.total_received <- ch.total_received + 1;
            Engine.signal ch.eng ch.nonfull;
            v
        | None ->
            waited := true;
            Engine.wait_on ch.eng ch.nonempty;
            loop ()
      in
      let v = loop () in
      note_recv ch !waited t0;
      v)

let force_send ch v =
  Engine.locked ch.eng (fun () ->
      push ch v;
      note_send ch false 0)

let try_recv ch =
  Engine.locked ch.eng (fun () ->
      match Queue.take_opt ch.q with
      | Some v ->
          ch.total_received <- ch.total_received + 1;
          Engine.signal ch.eng ch.nonfull;
          note_recv ch false 0;
          Some v
      | None -> None)

let try_send ch v =
  Engine.locked ch.eng (fun () ->
      if ch.capacity > 0 && Queue.length ch.q >= ch.capacity then false
      else begin
        push ch v;
        note_send ch false 0;
        true
      end)

let send_batch ch vs =
  Engine.locked ch.eng (fun () ->
      let waited = ref false in
      let t0 = if Metrics.enabled () then Engine.now ch.eng else 0 in
      List.iter
        (fun v ->
          while ch.capacity > 0 && Queue.length ch.q >= ch.capacity do
            waited := true;
            Engine.wait_on ch.eng ch.nonfull
          done;
          push ch v)
        vs;
      if Metrics.enabled () then begin
        let h = handles ch in
        Metrics.inc_by h.cm_sends (List.length vs);
        Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
        if !waited then Metrics.observe_ns h.cm_send_block (Engine.now ch.eng - t0)
      end)

let recv_batch ?max ch =
  Engine.locked ch.eng (fun () ->
      let waited = ref false in
      let t0 = if Metrics.enabled () then Engine.now ch.eng else 0 in
      while Queue.is_empty ch.q do
        waited := true;
        Engine.wait_on ch.eng ch.nonempty
      done;
      let limit =
        match max with
        | Some m ->
            if m < 1 then invalid_arg "Chan.recv_batch: max must be >= 1";
            m
        | None -> Queue.length ch.q
      in
      let out = ref [] in
      let taken = ref 0 in
      while !taken < limit && not (Queue.is_empty ch.q) do
        out := Queue.pop ch.q :: !out;
        incr taken
      done;
      ch.total_received <- ch.total_received + !taken;
      Engine.broadcast ch.eng ch.nonfull;
      if Metrics.enabled () then begin
        let h = handles ch in
        Metrics.inc_by h.cm_recvs !taken;
        Metrics.set_gauge h.cm_depth (float_of_int (Queue.length ch.q));
        if !waited then Metrics.observe_ns h.cm_recv_block (Engine.now ch.eng - t0)
      end;
      List.rev !out)

let flush_note ch removed =
  if removed > 0 then Engine.broadcast ch.eng ch.nonfull;
  if Parcae_obs.Trace.enabled () then
    Parcae_obs.Trace.emit ~t:(Engine.now ch.eng)
      (Parcae_obs.Event.Chan_flush { chan = ch.name; dropped = removed });
  if Metrics.enabled () then begin
    Metrics.inc_by (handles ch).cm_flushed removed;
    note_depth ch
  end

let filter ch keep =
  Engine.locked ch.eng (fun () ->
      let kept = Queue.create () in
      let removed = ref 0 in
      Queue.iter (fun v -> if keep v then Queue.push v kept else incr removed) ch.q;
      Queue.clear ch.q;
      Queue.transfer kept ch.q;
      flush_note ch !removed;
      !removed)

let drain ch =
  Engine.locked ch.eng (fun () ->
      let n = Queue.length ch.q in
      Queue.clear ch.q;
      flush_note ch n;
      n)
