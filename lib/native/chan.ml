(* Blocking FIFO channels between native tasks, contention-free on the
   hot path.

   The queue itself is a lock-free Michael–Scott linked queue (GC makes
   the classic ABA hazard vanish: nodes are never reused).  Single sends
   and receives are one CAS each; [send_batch] links the whole batch into
   a private chain and appends it with a single CAS on [tail.next], and
   [recv_batch] walks up to [max] nodes and claims them all with a single
   CAS on [head] — the "batched CAS reservation" that makes batch cost
   O(1) synchronisation instead of one lock round-trip per item.

   Blocking is layered on top: each channel owns a small {!Engine.Monitor}
   used only when a caller must wait.  A waiter registers itself in an
   atomic waiter count *inside* the monitor before re-checking the queue;
   a producer enqueues first and reads the waiter count second.  Under
   sequentially consistent atomics one of the two must observe the other,
   so a wake-up can never be lost, and the uncontended path never touches
   the monitor at all.

   Capacity is a soft bound: senders check [qlen] before enqueueing, so
   with k concurrent producers occupancy can transiently overshoot the
   capacity by at most k-1 items.  The pause/flush protocol's guarantees
   are unaffected (its bound is the flush, not the capacity).

   [filter] and [drain] are only linearizable against concurrent senders
   in the weak sense that late arrivals may survive the flush; the
   runtime only calls them inside a pause window, where producers are
   parked. *)

module Metrics = Parcae_obs.Metrics
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Timeline = Parcae_obs.Timeline
module Monitor = Engine.Monitor
module Hb = Parcae_obs.Hb

type chan_metrics = {
  cm_sends : Metrics.counter;
  cm_recvs : Metrics.counter;
  cm_depth : Metrics.gauge;
  cm_send_block : Metrics.histogram;
  cm_recv_block : Metrics.histogram;
  cm_flushed : Metrics.counter;
}

type 'a node = { value : 'a option Atomic.t; next : 'a node option Atomic.t }

let node v = { value = Atomic.make v; next = Atomic.make None }

type 'a t = {
  name : string;
  capacity : int;  (* 0 = unbounded *)
  eng : Engine.t;
  head : 'a node Atomic.t;  (* dummy; items start at head.next *)
  tail : 'a node Atomic.t;
  qlen : int Atomic.t;
  sent : int Atomic.t;
  received : int Atomic.t;
  recv_waiters : int Atomic.t;
  send_waiters : int Atomic.t;
  mon : Monitor.m;
  nonempty : Monitor.c;
  nonfull : Monitor.c;
  mutable mx : (Metrics.t * chan_metrics) option;  (* benign racy cache *)
}

let create ?(capacity = 0) eng name =
  let dummy = node None in
  let mon = Monitor.create () in
  {
    name;
    capacity;
    eng;
    head = Atomic.make dummy;
    tail = Atomic.make dummy;
    qlen = Atomic.make 0;
    sent = Atomic.make 0;
    received = Atomic.make 0;
    recv_waiters = Atomic.make 0;
    send_waiters = Atomic.make 0;
    mon;
    nonempty = Monitor.cond mon;
    nonfull = Monitor.cond mon;
    mx = None;
  }

let name ch = ch.name
let length ch = max 0 (Atomic.get ch.qlen)
let is_empty ch = length ch = 0
let total_sent ch = Atomic.get ch.sent
let total_received ch = Atomic.get ch.received

(* ------------------------------------------------------------------ *)
(* The lock-free core.                                                 *)
(* ------------------------------------------------------------------ *)

(* Append the pre-linked chain [first..last] with one CAS on the live
   tail's [next]; then swing [tail] (cooperatively — a stalled swing is
   helped by the next enqueuer). *)
let rec enqueue_chain ch first last =
  let t = Atomic.get ch.tail in
  match Atomic.get t.next with
  | Some nxt ->
      (* Help a lagging enqueuer finish its tail swing. *)
      ignore (Atomic.compare_and_set ch.tail t nxt : bool);
      enqueue_chain ch first last
  | None ->
      if Atomic.compare_and_set t.next None (Some first) then
        ignore (Atomic.compare_and_set ch.tail t last : bool)
      else enqueue_chain ch first last

(* Returns the item's send sequence number (0-based FIFO position), the
   half of the (chan, seq) causal edge the trace exposes. *)
let enqueue ch v =
  let n = node (Some v) in
  enqueue_chain ch n n;
  Atomic.incr ch.qlen;
  Atomic.fetch_and_add ch.sent 1

(* One CAS on [head] claims the first node; the claimed node becomes the
   new dummy and its value slot is cleared for the GC.  Returns the value
   with its receive sequence number. *)
let rec try_dequeue ch =
  let h = Atomic.get ch.head in
  match Atomic.get h.next with
  | None -> None
  | Some n ->
      if Atomic.compare_and_set ch.head h n then begin
        let v = Atomic.get n.value in
        Atomic.set n.value None;
        Atomic.decr ch.qlen;
        let seq = Atomic.fetch_and_add ch.received 1 in
        match v with
        | Some v -> Some (v, seq)
        | None ->
            (* Unreachable: a node's value is written before it is linked,
               and cleared only by the unique claimant of that node. *)
            assert false
      end
      else try_dequeue ch

exception Race

(* Claim up to [limit] nodes with a single CAS on [head].  The walk reads
   values before the claim; if a competing dequeuer got there first we
   either see its cleared slot (abort, retry) or our CAS fails.  Returns
   the claimed values in FIFO order plus the receive sequence number of
   the first — two list reversals' worth of cells and nothing per item,
   so the result list can be forwarded downstream as-is (the zero-copy
   hand-off [Pipeline.drain_stage] relies on). *)
let rec try_dequeue_batch ch limit =
  if limit <= 0 then ([], 0)
  else begin
    let h = Atomic.get ch.head in
    let rec walk last acc k =
      if k = limit then (last, acc, k)
      else
        match Atomic.get last.next with
        | None -> (last, acc, k)
        | Some nx -> (
            match Atomic.get nx.value with
            | None -> raise_notrace Race
            | Some v -> walk nx (v :: acc) (k + 1))
    in
    match walk h [] 0 with
    | exception Race -> try_dequeue_batch ch limit
    | _, _, 0 -> ([], 0)
    | last, acc, k ->
        if Atomic.compare_and_set ch.head h last then begin
          Atomic.set last.value None;
          ignore (Atomic.fetch_and_add ch.qlen (-k) : int);
          let base = Atomic.fetch_and_add ch.received k in
          (List.rev acc, base)
        end
        else try_dequeue_batch ch limit
  end

(* ------------------------------------------------------------------ *)
(* Wake-ups (cross the monitor only when someone is actually parked).   *)
(* ------------------------------------------------------------------ *)

let wake_recv ch ~all =
  if Atomic.get ch.recv_waiters > 0 then
    if all then Monitor.broadcast ch.nonempty else Monitor.signal ch.nonempty

let wake_send ch ~all =
  if ch.capacity > 0 && Atomic.get ch.send_waiters > 0 then
    if all then Monitor.broadcast ch.nonfull else Monitor.signal ch.nonfull

(* ------------------------------------------------------------------ *)
(* Metrics (same families and labels as the sim channels).             *)
(* ------------------------------------------------------------------ *)

let handles ch =
  let reg = Metrics.current () in
  match ch.mx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let labels = [ ("chan", ch.name) ] in
      let h =
        {
          cm_sends =
            Metrics.counter reg "parcae_chan_sends_total" ~labels
              ~help:"Items enqueued, per channel.";
          cm_recvs =
            Metrics.counter reg "parcae_chan_recvs_total" ~labels
              ~help:"Items dequeued, per channel.";
          cm_depth =
            Metrics.gauge reg "parcae_chan_depth" ~labels
              ~help:"Current queue occupancy, per channel.";
          cm_send_block =
            Metrics.histogram reg "parcae_chan_send_block_ns" ~labels
              ~help:"Real time senders spent blocked on a full channel.";
          cm_recv_block =
            Metrics.histogram reg "parcae_chan_recv_block_ns" ~labels
              ~help:"Real time receivers spent blocked on an empty channel.";
          cm_flushed =
            Metrics.counter reg "parcae_chan_flushed_total" ~labels
              ~help:"Items dropped by filter/drain on reconfiguration.";
        }
      in
      ch.mx <- Some (reg, h);
      h

let note_depth ch =
  if Metrics.enabled () then
    Metrics.set_gauge (handles ch).cm_depth (float_of_int (length ch))

let note_send ch k waited t0 =
  if Metrics.enabled () then begin
    let h = handles ch in
    if k = 1 then Metrics.inc h.cm_sends else Metrics.inc_by h.cm_sends k;
    Metrics.set_gauge h.cm_depth (float_of_int (length ch));
    if waited then Metrics.observe_ns h.cm_send_block (Engine.now ch.eng - t0)
  end

let note_recv ch k waited t0 =
  if Metrics.enabled () then begin
    let h = handles ch in
    if k = 1 then Metrics.inc h.cm_recvs else Metrics.inc_by h.cm_recvs k;
    Metrics.set_gauge h.cm_depth (float_of_int (length ch));
    if waited then Metrics.observe_ns h.cm_recv_block (Engine.now ch.eng - t0)
  end

(* The wait instruments want a start time when either sink is live. *)
let observing () = Metrics.enabled () || Timeline.enabled ()

(* A measured block explains this worker lane's time as Chan_wait.  On the
   native engine the blocked *fiber* suspends and the domain may run other
   work meanwhile, so this can over-report; the timeline's clamped
   attribution transfer absorbs that (idle donor states first). *)
let tl_wait ch waited t0 =
  if waited then
    match Timeline.get () with
    | Some tl -> (
        match Engine.worker_id_opt () with
        | Some lane when lane < Timeline.lanes tl ->
            Timeline.attribute tl ~lane Timeline.Chan_wait (Engine.now ch.eng - t0)
        | _ -> ())
    | None -> ()

(* Sanitizer edges.  Native channels cannot use exact (chan, seq) pairing:
   the item becomes visible to consumers at the enqueue CAS, before its
   sequence number is assigned.  Instead the sender publishes into the
   channel's *cumulative* clock before enqueueing and the receiver
   acquires it after dequeueing — an over-approximation (a receive joins
   every earlier send on the channel) that can only add happens-before
   edges, never miss a real one, so it cannot produce false races. *)
let hb_send ch =
  if Hb.enabled () then
    match Engine.self_opt () with
    | Some t -> Hb.on_send ~task:(Engine.task_id t) ~chan:ch.name ~seq:(-1)
    | None -> ()

let hb_recv ch =
  if Hb.enabled () then
    match Engine.self_opt () with
    | Some t -> Hb.on_recv ~task:(Engine.task_id t) ~chan:ch.name ~seq:(-1)
    | None -> ()

let caller_ids () =
  match Engine.self_opt () with
  | Some task -> (Engine.task_id task, Engine.task_busy_ns task)
  | None -> (-1, 0)

let emit_send ch seq =
  if Trace.enabled () then begin
    let task, busy_ns = caller_ids () in
    Trace.emit ~t:(Engine.now ch.eng)
      (Event.Chan_send_ev { chan = ch.name; seq; task; busy_ns })
  end

let emit_recv ch seq =
  if Trace.enabled () then begin
    let task, busy_ns = caller_ids () in
    Trace.emit ~t:(Engine.now ch.eng)
      (Event.Chan_recv_ev { chan = ch.name; seq; task; busy_ns })
  end

let emit_send_range ch base k =
  if Trace.enabled () then
    for i = 0 to k - 1 do
      emit_send ch (base + i)
    done

(* ------------------------------------------------------------------ *)
(* Blocking protocol.                                                  *)
(* ------------------------------------------------------------------ *)

let has_room ch = ch.capacity = 0 || Atomic.get ch.qlen < ch.capacity

(* Park on [cond] until [ready ()].  The waiter count is raised inside
   the monitor and before the re-check: a producer that reads the old
   count must, by SC, have completed its enqueue before our re-check. *)
let await_inside ch waiters cond ready =
  Monitor.locked ch.mon (fun () ->
      Atomic.incr waiters;
      Fun.protect
        ~finally:(fun () -> Atomic.decr waiters)
        (fun () ->
          while not (ready ()) do
            Monitor.wait cond
          done))

let send ch v =
  let waited = (not (has_room ch)) && ch.capacity > 0 in
  let t0 = if waited && observing () then Engine.now ch.eng else 0 in
  if waited then await_inside ch ch.send_waiters ch.nonfull (fun () -> has_room ch);
  hb_send ch;
  let seq = enqueue ch v in
  wake_recv ch ~all:false;
  note_send ch 1 waited t0;
  tl_wait ch waited t0;
  emit_send ch seq

let force_send ch v =
  (* Sentinel re-enqueue must never block: ignore capacity. *)
  hb_send ch;
  let seq = enqueue ch v in
  wake_recv ch ~all:false;
  note_send ch 1 false 0;
  emit_send ch seq

let try_send ch v =
  if not (has_room ch) then false
  else begin
    hb_send ch;
    let seq = enqueue ch v in
    wake_recv ch ~all:false;
    note_send ch 1 false 0;
    emit_send ch seq;
    true
  end

let recv ch =
  match try_dequeue ch with
  | Some (v, seq) ->
      hb_recv ch;
      wake_send ch ~all:false;
      note_recv ch 1 false 0;
      emit_recv ch seq;
      v
  | None ->
      let t0 = if observing () then Engine.now ch.eng else 0 in
      let out = ref None in
      await_inside ch ch.recv_waiters ch.nonempty (fun () ->
          match try_dequeue ch with
          | Some vs ->
              out := Some vs;
              true
          | None -> false);
      let v, seq = Option.get !out in
      hb_recv ch;
      wake_send ch ~all:false;
      note_recv ch 1 true t0;
      tl_wait ch true t0;
      emit_recv ch seq;
      v

let try_recv ch =
  match try_dequeue ch with
  | Some (v, seq) ->
      hb_recv ch;
      wake_send ch ~all:false;
      note_recv ch 1 false 0;
      emit_recv ch seq;
      Some v
  | None -> None

let send_batch ch vs =
  if vs <> [] then begin
    let total = List.length vs in
    let t0 = if observing () then Engine.now ch.eng else 0 in
    let waited = ref false in
    (* Bounded channels take the batch in capacity-sized chunks, waiting
       for room between chunks, so a batch larger than the capacity wraps
       through the queue instead of overshooting it wholesale.  Each chunk
       is pre-linked privately and appended with ONE CAS. *)
    hb_send ch;
    let rec go vs =
      match vs with
      | [] -> ()
      | v :: _ ->
          if not (has_room ch) then begin
            waited := true;
            await_inside ch ch.send_waiters ch.nonfull (fun () -> has_room ch)
          end;
          let room =
            if ch.capacity = 0 then max_int
            else max 1 (ch.capacity - Atomic.get ch.qlen)
          in
          let first = node (Some v) in
          let rec link last k = function
            | vs when k >= room -> (last, k, vs)
            | [] -> (last, k, [])
            | v :: tl ->
                let n = node (Some v) in
                Atomic.set last.next (Some n);
                link n (k + 1) tl
          in
          let last, k, rest = link first 1 (List.tl vs) in
          enqueue_chain ch first last;
          ignore (Atomic.fetch_and_add ch.qlen k : int);
          let base = Atomic.fetch_and_add ch.sent k in
          wake_recv ch ~all:(k > 1);
          emit_send_range ch base k;
          go rest
    in
    go vs;
    note_send ch total !waited t0;
    tl_wait ch !waited t0
  end

let recv_batch ?max ch =
  let limit =
    match max with
    | Some m ->
        if m < 1 then invalid_arg "Chan.recv_batch: max must be >= 1";
        m
    | None -> max_int
  in
  (* Blocks only while the channel is empty; returns 1..limit items. *)
  let take () =
    let limit = if limit = max_int then Stdlib.max 1 (length ch) else limit in
    try_dequeue_batch ch limit
  in
  (* The claimed list is returned verbatim: the fast path re-sends these
     very cells downstream, so no copy is made here. *)
  let deliver items base waited t0 =
    hb_recv ch;
    wake_send ch ~all:true;
    note_recv ch (List.length items) waited t0;
    tl_wait ch waited t0;
    if Trace.enabled () then List.iteri (fun i _ -> emit_recv ch (base + i)) items;
    items
  in
  match take () with
  | (_ :: _ as items), base -> deliver items base false 0
  | [], _ ->
      let t0 = if observing () then Engine.now ch.eng else 0 in
      let out = ref ([], 0) in
      await_inside ch ch.recv_waiters ch.nonempty (fun () ->
          match take () with
          | [], _ -> false
          | items ->
              out := items;
              true);
      let items, base = !out in
      deliver items base true t0

(* ------------------------------------------------------------------ *)
(* Flush operations (pause-window protocol).                           *)
(* ------------------------------------------------------------------ *)

let flush_note ch removed =
  if removed > 0 then wake_send ch ~all:true;
  if Parcae_obs.Trace.enabled () then
    Parcae_obs.Trace.emit ~t:(Engine.now ch.eng)
      (Parcae_obs.Event.Chan_flush { chan = ch.name; dropped = removed });
  if Metrics.enabled () then begin
    Metrics.inc_by (handles ch).cm_flushed removed;
    note_depth ch
  end

let take_all ch =
  let rec go acc =
    match try_dequeue_batch ch 1024 with
    | [], _ -> List.concat (List.rev acc)
    | items, _ -> go (items :: acc)
  in
  go []

let filter ch keep =
  Monitor.locked ch.mon (fun () ->
      let items = take_all ch in
      let kept = List.filter keep items in
      let removed = List.length items - List.length kept in
      (* Re-enqueue survivors in order; counters net out to zero so the
         totals only reflect real traffic, not the flush round-trip
         (flushed items stay "sent but never received", like the sim). *)
      List.iter (fun v -> ignore (enqueue ch v : int)) kept;
      ignore (Atomic.fetch_and_add ch.sent (-List.length kept) : int);
      ignore (Atomic.fetch_and_add ch.received (-List.length items) : int);
      if kept <> [] then wake_recv ch ~all:true;
      flush_note ch removed;
      removed)

let drain ch =
  Monitor.locked ch.mon (fun () ->
      let n = List.length (take_all ch) in
      ignore (Atomic.fetch_and_add ch.received (-n) : int);
      flush_note ch n;
      n)
