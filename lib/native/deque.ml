(* Chase–Lev work-stealing deque.

   One owner domain pushes and pops at the bottom (LIFO); any number of
   thief domains steal from the top (FIFO).  The owner's push/pop are
   wait-free except for the single-element race, which is resolved by one
   CAS on [top]; steals are lock-free: a thief that loses the CAS returns
   [Contended] and is expected to pick another victim rather than spin.

   Memory model: [top], [bottom], the buffer pointer and every cell are
   OCaml atomics, so all accesses are data-race free and the standard
   Chase–Lev argument carries over unchanged: a cell is only reused after
   [top] has passed it, so a thief that read a stale value always fails
   its CAS and discards it.  Cells hold ['a option] so the owner can drop
   references on pop (bounded garbage: a stolen cell keeps its value alive
   only until the slot is reused).

   Grow-on-overflow: the buffer doubles when full.  The old buffer is
   immutable from the moment it is replaced; thieves still holding it read
   valid (copied) entries for any index their CAS can win. *)

type 'a t = {
  top : int Atomic.t;  (* next index to steal *)
  bottom : int Atomic.t;  (* next index to push *)
  buf : 'a option Atomic.t array Atomic.t;  (* circular, length a power of 2 *)
}

type 'a steal_result = Stolen of 'a | Empty | Contended

let min_capacity = 16

let make_buf n = Array.init n (fun _ -> Atomic.make None)

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buf min_capacity);
  }

(* Owner-side size; thieves may see it lag by their in-flight steals. *)
let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)
let is_empty d = size d = 0

let grow d b t =
  let old = Atomic.get d.buf in
  let n = Array.length old in
  let nw = make_buf (2 * n) in
  for i = t to b - 1 do
    Atomic.set nw.(i land ((2 * n) - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set d.buf nw

let push d v =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let buf = Atomic.get d.buf in
  if b - t >= Array.length buf - 1 then grow d b t;
  let buf = Atomic.get d.buf in
  Atomic.set buf.(b land (Array.length buf - 1)) (Some v);
  Atomic.set d.bottom (b + 1)

let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Empty: restore the canonical bottom = top. *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let buf = Atomic.get d.buf in
    let cell = buf.(b land (Array.length buf - 1)) in
    let v = Atomic.get cell in
    if b > t then begin
      (* More than one element: no thief can reach index b. *)
      Atomic.set cell None;
      v
    end
    else begin
      (* Last element: race the thieves for it with one CAS on top. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        Atomic.set cell None;
        v
      end
      else None
    end
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then Empty
  else begin
    let buf = Atomic.get d.buf in
    let v = Atomic.get buf.(t land (Array.length buf - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then
      match v with
      | Some x -> Stolen x
      | None ->
          (* Unreachable: a cell in [top, bottom) is always populated
             before bottom is published past it. *)
          assert false
    else Contended
  end
