(** Mutual exclusion between native tasks.

    Same contract as {!Parcae_sim.Lock}: non-recursive, owner-checked
    release, acquisition/contention counters.  Built on a per-structure
    {!Engine.Monitor}, so a Parcae lock costs one monitor entry on its
    own mutex — the real analogue of the simulator's [lock_op] charge —
    and contention on one lock never slows another. *)

type t

val create : Engine.t -> string -> t
val acquire : t -> unit
val release : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
val acquisitions : t -> int
val contended : t -> int
