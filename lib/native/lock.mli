(** Mutual exclusion between native tasks.

    Same contract as {!Parcae_sim.Lock}: non-recursive, owner-checked
    release, acquisition/contention counters.  Built on the engine's big
    lock, so a Parcae lock costs one monitor entry — the real analogue of
    the simulator's [lock_op] charge. *)

type t

val create : Engine.t -> string -> t
val acquire : t -> unit
val release : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
val acquisitions : t -> int
val contended : t -> int
