(** Chase–Lev work-stealing deque.

    The owner domain treats the deque as a LIFO stack through {!push} and
    {!pop}; thief domains take the oldest element through {!steal}.  All
    operations are lock-free; [steal] performs at most one CAS and reports
    {!Contended} instead of spinning so schedulers can rotate victims.

    Safety: {!push} and {!pop} must only be called from the single owner
    domain.  {!steal}, {!size} and {!is_empty} may be called from any
    domain. *)

type 'a t

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** no element was observable at the top *)
  | Contended  (** lost the CAS to the owner or another thief; retry elsewhere *)

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom.  Grows the internal buffer when full. *)

val pop : 'a t -> 'a option
(** Owner only: remove the most recently pushed remaining element (LIFO). *)

val steal : 'a t -> 'a steal_result
(** Any domain: attempt to take the oldest element (FIFO). *)

val size : 'a t -> int
(** Owner-accurate occupancy; an approximation when read by thieves. *)

val is_empty : 'a t -> bool
