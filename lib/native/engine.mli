(** The native OCaml 5 multicore engine: a work-stealing fiber scheduler.

    This is the real-hardware counterpart of {!Parcae_sim.Engine}.  Tasks
    are effect-based fibers multiplexed over a fixed pool of OCaml 5
    domains; [compute] runs the calibrated spin kernel of {!Calibrate};
    the clock is the host monotonic clock (ns since engine creation).

    {b Scheduling.}  Each pool domain owns a Chase–Lev deque ({!Deque}):
    it pushes and pops its own work LIFO for locality, and when empty it
    steals the oldest task from a victim chosen in randomized order,
    backing off exponentially to an idle park when the whole engine is
    quiet.  Blocking operations (condition wait, [sleep], [join]) suspend
    the fiber — the domain moves on to other work — and the wake-up may
    resume the fiber on a different domain.

    {b Concurrency model.}  There is {e no} big runtime lock: task code
    runs genuinely in parallel.  Code between two blocking points is NOT
    atomic (unlike both the simulator and the PR-4 native engine); shared
    state must be protected with {!Monitor}s, atomics, or channel
    operations.  Scheduling is not deterministic; protocol-level
    invariants (the trace oracle) still hold, and trace timestamps are
    real nanoseconds. *)

type t
(** One native engine: a domain pool with per-domain run queues. *)

type task
(** A native task: a fiber with an async/await-style join handle. *)

exception Thread_failure of string * exn
(** Raised out of {!run} when a task raises: carries the task's name and
    the original exception (first failure wins). *)

val create : ?pool:int -> unit -> t
(** Start an engine with [pool] worker domains (default
    [Domain.recommended_domain_count () - 1], at least 1).  Domains are
    spawned eagerly and live until {!shutdown}. *)

val pool_size : t -> int

val spawn : t -> name:string -> (unit -> unit) -> task
(** Create a fiber and enqueue it: onto the calling worker's own deque
    when spawning from task code, onto the injection queue otherwise.
    Work stealing balances it across the pool. *)

val run : ?until:int -> t -> int
(** Block until every live task has finished, a task fails (re-raised as
    {!Thread_failure}), or — when [until] is given — the engine clock
    passes [until].  Returns the number of tasks completed during the
    call.  On timeout, still-live tasks keep running; callers must make
    them drain (stop flags, Eos) before {!shutdown}. *)

val shutdown : t -> unit
(** Stop and join the pool domains.  Workers first drain every runnable
    task; fibers blocked on a condition or timer at that point are
    abandoned (their continuations are dropped — no OS thread leaks). *)

(** {1 Task-context operations} *)

val compute : task -> int -> unit
(** Burn ~[n] ns of real CPU on the hosting domain; accounts the measured
    time into the task's [busy_ns].  Runs without any lock held, so up to
    [pool] compute bursts proceed concurrently. *)

val now : t -> int
(** Host monotonic ns since engine creation. *)

val yield : t -> unit
(** From a fiber: reschedule through the (FIFO) injection queue so other
    runnable work gets the domain.  Elsewhere: a CPU relax hint. *)

val sleep : t -> int -> unit
(** From a fiber: suspend on the engine's timer list; the domain runs
    other work meanwhile.  From a system thread: a real [sleepf]. *)

val sleep_until : t -> int -> unit

val join : task -> unit
(** Await the task's completion.  From a fiber this suspends (the domain
    is not blocked) — this is what lets DOACROSS/PS-DSWP stage pipelines
    express ordering without burning a worker.  From a system thread it
    blocks on the task's condition variable. *)

val self_opt : unit -> task option
(** The fiber running on the calling domain, if any.  O(1): a
    domain-local lookup, [None] on any non-pool domain — this is what
    lets the platform layer dispatch ambient operations without taxing
    the simulator hot path. *)

(** {1 Monitors}

    The sharded replacement for the PR-4 big lock: each concurrent
    structure (channel, lock, barrier, region control-plane) owns one
    small monitor guarding only its own state.  [wait] is fiber-aware —
    a fiber waiter suspends and frees its domain; a system-thread waiter
    blocks on a host condition variable.  Mesa semantics: waiters re-check
    their predicate in a loop.  Rules: monitors do not nest across
    structures on hot paths, and a fiber must never suspend while holding
    one (the only suspension point, [wait], releases it first). *)
module Monitor : sig
  type m
  type c

  val create : unit -> m

  val locked : m -> (unit -> 'a) -> 'a
  (** Run [f] holding the monitor.  Reentrant: a no-op when the calling
      thread already holds it. *)

  val held : m -> bool
  val cond : m -> c
  val monitor_of : c -> m

  val wait : c -> unit
  (** Atomically release the monitor and wait; reacquire before
      returning.  Must be called with the monitor held. *)

  val signal : c -> unit
  (** Wake one waiter (fiber waiters first, FIFO).  Takes the monitor
      internally; callable with or without it held. *)

  val broadcast : c -> unit
end

val task_engine : task -> t
val task_name : task -> string

val task_id : task -> int
(** The engine-unique task id stamped into [Task_spawn]/[Task_done] and
    channel trace events. *)

val worker_id_opt : unit -> int option
(** The pool-domain index (timeline lane) of the calling domain, [None]
    off the pool.  O(1), domain-local. *)

val task_busy_ns : task -> int
(** Total measured compute ns, the native analogue of the sim thread's
    [busy_ns] field that Decima's hooks read. *)

(** {1 Introspection} *)

val time : t -> int

val busy_cores : t -> int
(** Tasks currently inside a [compute] spin. *)

val runnable_count : t -> int
(** Tasks sitting in the run queues (all deques plus the injection
    queue), ready but not yet executing. *)

val online_cores : t -> int
val live_threads : t -> int
val spawned_threads : t -> int

val steal_count : t -> int
(** Successful steals since engine creation (authoritative; the
    [parcae_steals_total] metric is a best-effort mirror). *)

val steal_attempt_count : t -> int

val instant_power : t -> float
val energy_joules : t -> float
(** Always 0.0: no power model on real hardware (no RAPL access). *)

val set_online_cores : t -> int -> unit
(** Records the request for {!online_cores} reporting but cannot revoke
    OS cores; mechanisms that model resource-availability changes only
    have real effect on the simulator. *)

val live_thread_names : t -> string list
val seconds_of_ns : int -> float
