(** The native OCaml 5 multicore engine.

    This is the real-hardware counterpart of {!Parcae_sim.Engine}: tasks
    are systhreads multiplexed over a fixed pool of OCaml 5 domains,
    [compute] runs the calibrated spin kernel of {!Calibrate}, and the
    clock is the host monotonic clock (ns since engine creation).

    {b Concurrency model.}  The engine serializes all task code behind one
    module-wide runtime lock (the "big lock" [G]): a task holds [G] from
    the moment its body starts except while it spins in [compute], sleeps,
    yields, or waits on a condition variable.  This reproduces the
    simulator's cooperative atomicity — code between two blocking points
    is atomic — so every shared-state protocol written against the sim
    (channels, pause/flush, barrier-less resize, Decima counters) is
    race-free on the native backend without modification.  Parallel
    speedup comes from [compute]: the spin runs with [G] released, on
    whichever domain hosts the task, so up to [pool] compute bursts
    proceed concurrently.

    Unlike the simulator, scheduling is {e not} deterministic: condition
    waiters wake in OS order, not FIFO.  Protocol-level invariants (the
    trace oracle) still hold; trace timestamps are real nanoseconds. *)

type t
(** One native engine: a domain pool plus the big runtime lock. *)

type task
(** A native task: a systhread pinned to one pool domain. *)

type cond = Condition.t
(** Condition variables are host conditions tied to the engine's big
    lock.  Mesa semantics, like the simulator: re-check the predicate. *)

exception Thread_failure of string * exn
(** Raised out of {!run} when a task raises: carries the task's name and
    the original exception (first failure wins). *)

val create : ?pool:int -> unit -> t
(** Start an engine with [pool] domains (default
    [Domain.recommended_domain_count () - 1], at least 1).  Domains are
    spawned eagerly and live until {!shutdown}. *)

val pool_size : t -> int

val spawn : t -> name:string -> (unit -> unit) -> task
(** Create a task; it is assigned to a pool domain round-robin and starts
    immediately.  Callable from outside the engine or from another task. *)

val run : ?until:int -> t -> int
(** Block until every live task has finished, a task fails (re-raised as
    {!Thread_failure}), or — when [until] is given — the engine clock
    passes [until].  Returns the number of tasks completed during the
    call.  On timeout, still-live tasks keep running; callers must make
    them drain (stop flags, Eos) before {!shutdown}. *)

val shutdown : t -> unit
(** Stop the domain pool.  Joins the pool domains only when no task is
    live; otherwise the domains are abandoned to the process exit
    (documented leak — native threads cannot be killed). *)

(** {1 Task-context operations}

    [compute] takes the task explicitly; the rest take the engine and may
    be called with or without the big lock held (they acquire it as
    needed), so the platform layer can drive them from any context. *)

val compute : task -> int -> unit
(** Burn ~[n] ns of real CPU with the big lock released; accounts the
    measured time into the task's [busy_ns]. *)

val now : t -> int
(** Host monotonic ns since engine creation. *)

val yield : t -> unit
val sleep : t -> int -> unit
val sleep_until : t -> int -> unit

val wait_on : t -> cond -> unit
(** Release the big lock, wait, reacquire.  Must be called from a context
    holding the big lock (task code always does). *)

val signal : t -> cond -> unit
val broadcast : t -> cond -> unit
val join : t -> task -> unit
val cond_create : unit -> cond

val self_opt : unit -> task option
(** The task hosting the calling systhread, if any.  O(1) fast path when
    no native task is live anywhere in the process — this is what lets the
    platform layer dispatch ambient operations (compute, now, ...) without
    taxing the simulator hot path. *)

val locked : t -> (unit -> 'a) -> 'a
(** Run [f] under the big lock (no-op if already held).  The monitor
    entry used by native channels, locks and barriers. *)

val task_engine : task -> t
val task_name : task -> string
val task_busy_ns : task -> int
(** Total measured compute ns, the native analogue of the sim thread's
    [busy_ns] field that Decima's hooks read. *)

(** {1 Introspection} *)

val time : t -> int
val busy_cores : t -> int
(** Tasks currently inside a [compute] spin. *)

val runnable_count : t -> int
(** Always 0: the host OS owns the run queue; oversubscription pressure
    is not observable from here. *)

val online_cores : t -> int
val live_threads : t -> int
val spawned_threads : t -> int

val instant_power : t -> float
val energy_joules : t -> float
(** Always 0.0: no power model on real hardware (no RAPL access). *)

val set_online_cores : t -> int -> unit
(** Records the request for {!online_cores} reporting but cannot revoke
    OS cores; mechanisms that model resource-availability changes only
    have real effect on the simulator. *)

val live_thread_names : t -> string list
val seconds_of_ns : int -> float
