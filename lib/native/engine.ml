(* The native OCaml 5 multicore engine.

   One module-wide runtime lock [G] per engine serializes all task code;
   tasks release G only while spinning in [compute], sleeping, yielding or
   waiting on a condition.  This preserves the simulator's cooperative
   atomicity, so channel/pause/resize protocols written for the sim run
   unmodified; parallelism comes exclusively from compute spins, which run
   with G released on the task's home domain.

   Tasks are systhreads: each pool domain runs a host loop that turns
   spawn requests into [Thread.create]d threads, so any number of blocked
   tasks can coexist on one domain while at most one runs OCaml code at a
   time per domain.  Threads never migrate domains, so placement at spawn
   (round-robin) is what determines compute balance. *)

type task = {
  tid : int;
  tname : string;
  eng : t;
  mutable busy_ns : int;  (* measured compute ns; Decima's hooks read this *)
  mutable finished : bool;
  mutable failed : exn option;
  done_c : Condition.t;
}

and t = {
  g : Mutex.t;  (* the big runtime lock *)
  mutable g_owner : int;  (* Thread.id of the holder, -1 if free *)
  pool : int;
  mutable domains : unit Domain.t list;
  queues : (task * (unit -> unit)) Queue.t array;  (* per-domain spawn queues *)
  spawn_conds : Condition.t array;
  mutable next_dom : int;  (* round-robin spawn placement *)
  mutable next_tid : int;
  mutable live : int;
  mutable spawned : int;
  mutable completed : int;
  mutable computing : int;  (* tasks currently inside a compute spin *)
  mutable online : int;  (* set_online_cores request, report-only *)
  all_done : Condition.t;
  mutable stop : bool;
  mutable first_failure : (string * exn) option;
  t0 : int;  (* monotonic ns at creation *)
  tasks : (int, task) Hashtbl.t;  (* tid -> task, for live_thread_names *)
}

exception Thread_failure of string * exn

type cond = Condition.t

(* Process-wide registry mapping systhread ids to their task, so ambient
   operations can discover their context from any domain.  Guarded by its
   own small mutex — never by G — and fronted by an atomic counter so the
   lookup is a single atomic load when no native task exists (the
   simulator hot path pays only that). *)
let reg_mu = Mutex.create ()
let reg : (int, task) Hashtbl.t = Hashtbl.create 64
let reg_live = Atomic.make 0

let reg_add id task =
  Mutex.lock reg_mu;
  Hashtbl.replace reg id task;
  Mutex.unlock reg_mu;
  Atomic.incr reg_live

let reg_remove id =
  Atomic.decr reg_live;
  Mutex.lock reg_mu;
  Hashtbl.remove reg id;
  Mutex.unlock reg_mu

let self_opt () =
  if Atomic.get reg_live = 0 then None
  else begin
    let id = Thread.id (Thread.self ()) in
    Mutex.lock reg_mu;
    let t = Hashtbl.find_opt reg id in
    Mutex.unlock reg_mu;
    t
  end

(* Big-lock discipline.  [g_owner] is only ever compared against the
   reader's own thread id; a thread observes its own writes in order, so
   the unsynchronized read cannot produce a false positive. *)
let my_id () = Thread.id (Thread.self ())
let g_held eng = eng.g_owner = my_id ()

let g_lock eng =
  Mutex.lock eng.g;
  eng.g_owner <- my_id ()

let g_unlock eng =
  eng.g_owner <- -1;
  Mutex.unlock eng.g

let g_wait eng c =
  eng.g_owner <- -1;
  Condition.wait c eng.g;
  eng.g_owner <- my_id ()

let locked eng f =
  if g_held eng then f ()
  else begin
    g_lock eng;
    match f () with
    | v ->
        g_unlock eng;
        v
    | exception e ->
        g_unlock eng;
        raise e
  end

(* A task body runs under G from first instruction to last; the unlock
   windows are all inside this module's own operations, which reacquire on
   every path, so the handler below always holds G when it runs. *)
let task_main eng task body () =
  let id = my_id () in
  reg_add id task;
  g_lock eng;
  (try body () with e -> if g_held eng then task.failed <- Some e
                         else begin g_lock eng; task.failed <- Some e end);
  task.finished <- true;
  eng.completed <- eng.completed + 1;
  (match task.failed with
  | Some e when eng.first_failure = None -> eng.first_failure <- Some (task.tname, e)
  | _ -> ());
  Condition.broadcast task.done_c;
  eng.live <- eng.live - 1;
  Hashtbl.remove eng.tasks task.tid;
  if eng.live = 0 || eng.first_failure <> None then Condition.broadcast eng.all_done;
  g_unlock eng;
  reg_remove id

(* Each pool domain turns spawn requests into threads.  Thread.create is
   non-blocking, so holding G across it is harmless; the new thread will
   queue on G until the host loop waits or unlocks. *)
let host_loop eng idx () =
  g_lock eng;
  let q = eng.queues.(idx) in
  let rec loop () =
    match Queue.take_opt q with
    | Some (task, body) ->
        ignore (Thread.create (task_main eng task body) () : Thread.t);
        loop ()
    | None ->
        if not eng.stop then begin
          g_wait eng eng.spawn_conds.(idx);
          loop ()
        end
  in
  loop ();
  g_unlock eng

let create ?pool () =
  let pool =
    match pool with
    | Some n ->
        if n < 1 then invalid_arg "Parcae_native.Engine.create: pool must be >= 1";
        n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* Calibrate before any task exists so the first compute isn't skewed. *)
  ignore (Calibrate.spins_per_ns () : float);
  let eng =
    {
      g = Mutex.create ();
      g_owner = -1;
      pool;
      domains = [];
      queues = Array.init pool (fun _ -> Queue.create ());
      spawn_conds = Array.init pool (fun _ -> Condition.create ());
      next_dom = 0;
      next_tid = 0;
      live = 0;
      spawned = 0;
      completed = 0;
      computing = 0;
      online = pool;
      all_done = Condition.create ();
      stop = false;
      first_failure = None;
      t0 = Calibrate.now_ns ();
      tasks = Hashtbl.create 32;
    }
  in
  eng.domains <- List.init pool (fun i -> Domain.spawn (host_loop eng i));
  eng

let pool_size eng = eng.pool

let spawn eng ~name body =
  locked eng (fun () ->
      if eng.stop then invalid_arg "Parcae_native.Engine.spawn: engine is shut down";
      let tid = eng.next_tid in
      eng.next_tid <- tid + 1;
      let task =
        { tid; tname = name; eng; busy_ns = 0; finished = false; failed = None;
          done_c = Condition.create () }
      in
      eng.live <- eng.live + 1;
      eng.spawned <- eng.spawned + 1;
      Hashtbl.replace eng.tasks tid task;
      let d = eng.next_dom in
      eng.next_dom <- (d + 1) mod eng.pool;
      Queue.push (task, body) eng.queues.(d);
      Condition.signal eng.spawn_conds.(d);
      task)

let now eng = Calibrate.now_ns () - eng.t0
let time = now

let compute task n =
  if n > 0 then begin
    let eng = task.eng in
    eng.computing <- eng.computing + 1;
    g_unlock eng;
    let dt = Calibrate.spin_ns n in
    g_lock eng;
    eng.computing <- eng.computing - 1;
    task.busy_ns <- task.busy_ns + dt
  end

let yield eng =
  if g_held eng then begin
    g_unlock eng;
    Thread.yield ();
    g_lock eng
  end
  else Thread.yield ()

let sleep eng ns =
  if ns > 0 then begin
    let held = g_held eng in
    if held then g_unlock eng;
    (try Unix.sleepf (float_of_int ns /. 1e9) with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if held then g_lock eng
  end

let sleep_until eng t = sleep eng (t - now eng)
let wait_on eng c = g_wait eng c
let signal eng c = locked eng (fun () -> Condition.signal c)
let broadcast eng c = locked eng (fun () -> Condition.broadcast c)
let cond_create () = Condition.create ()

let join eng task =
  locked eng (fun () ->
      while not task.finished do
        g_wait eng task.done_c
      done)

(* Wait for the engine to drain (or for the clock to pass [until]).
   Without a deadline we can sleep on [all_done]; with one we poll at a
   few-ms grain, which is far below any horizon callers use. *)
let run ?until eng =
  g_lock eng;
  let completed0 = eng.completed in
  (match until with
  | None ->
      while eng.live > 0 && eng.first_failure = None do
        g_wait eng eng.all_done
      done
  | Some deadline ->
      while eng.live > 0 && eng.first_failure = None && now eng < deadline do
        g_unlock eng;
        (try Unix.sleepf 0.002 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        g_lock eng
      done);
  let fail = eng.first_failure in
  let n = eng.completed - completed0 in
  g_unlock eng;
  match fail with
  | Some (name, e) -> raise (Thread_failure (name, e))
  | None -> n

let shutdown eng =
  let joinable =
    locked eng (fun () ->
        if eng.stop then false
        else begin
          eng.stop <- true;
          Array.iter Condition.broadcast eng.spawn_conds;
          eng.live = 0
        end)
  in
  (* Joining with live tasks would block forever (threads cannot be
     killed); abandon the domains to process exit in that case. *)
  if joinable then begin
    List.iter Domain.join eng.domains;
    eng.domains <- []
  end

let task_engine task = task.eng
let task_name task = task.tname
let task_busy_ns task = task.busy_ns
let busy_cores eng = eng.computing
let runnable_count _ = 0
let online_cores eng = eng.online
let live_threads eng = eng.live
let spawned_threads eng = eng.spawned
let instant_power _ = 0.0
let energy_joules _ = 0.0
let set_online_cores eng n = locked eng (fun () -> eng.online <- max 1 (min eng.pool n))

let live_thread_names eng =
  locked eng (fun () ->
      Hashtbl.fold (fun _ t acc -> t.tname :: acc) eng.tasks [] |> List.sort compare)

let seconds_of_ns ns = float_of_int ns /. 1e9
