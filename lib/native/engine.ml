(* The native OCaml 5 multicore engine: a work-stealing fiber scheduler.

   Tasks are effect-based fibers, not systhreads.  Each pool domain runs a
   scheduler loop over a private Chase–Lev deque ([Deque]): the owner
   pushes and pops LIFO for locality, idle domains steal FIFO from victims
   chosen in randomized order, and a domain that finds nothing backs off
   exponentially to an idle park (short sleeps bounded by the next timer
   deadline).  A blocking operation — condition wait, sleep, join — does
   not block the domain: it performs the [Suspend] effect, the scheduler
   captures the fiber's continuation, and a later [signal]/timer/finish
   re-enqueues it, possibly on a different domain.

   There is no big runtime lock.  The engine's own shared state is a set
   of atomics (live/spawned/completed counters, shutdown flag, steal
   statistics) plus three small mutexes with disjoint footprints: the
   global injection queue (spawns and wake-ups from outside the pool), the
   timer list, and the live-task registry.  Synchronisation *between*
   tasks lives in the structures that need it — each channel, lock,
   barrier and region carries its own [Monitor] — so the data plane of one
   structure never contends with another's.

   Consequence for client code: unlike the PR-4 big-lock engine, task code
   is NOT serialized between blocking points.  Shared mutable state must
   be protected by a [Monitor], atomics, or the channel operations; the
   runtime layer (executor, region, pipeline bookkeeping) does exactly
   that. *)

module Metrics = Parcae_obs.Metrics
module Trace = Parcae_obs.Trace
module Event = Parcae_obs.Event
module Timeline = Parcae_obs.Timeline
module Hb = Parcae_obs.Hb

type task = {
  tid : int;
  tname : string;
  eng : t;
  mutable busy_ns : int;  (* fiber-local; published by the scheduler handoff *)
  mutable unyielded_ns : int;
      (* compute ns since this fiber last gave up its domain; drives the
         cooperative preemption point in [compute] *)
  mutable finished : bool;  (* guarded by jmu *)
  mutable failed : exn option;  (* guarded by jmu *)
  jmu : Mutex.t;
  jcv : Condition.t;  (* wakes system-thread joiners *)
  mutable joiners : (unit -> unit) list;  (* fiber joiners, guarded by jmu *)
}

and runnable = { rtask : task; exec : unit -> unit }

and t = {
  pool : int;
  deques : runnable Deque.t array;  (* one per pool domain *)
  mutable domains : unit Domain.t list;
  (* Injection queue: work arriving from outside the pool (initial spawns,
     wake-ups from system threads, fiber yields for FIFO fairness). *)
  inj_mu : Mutex.t;
  inj_q : runnable Queue.t;
  inj_len : int Atomic.t;
  (* Timers for sleeping fibers: (deadline, resume), deadline-sorted. *)
  tim_mu : Mutex.t;
  mutable timers : (int * (unit -> unit)) list;
  tim_len : int Atomic.t;
  (* Sharded engine state: one atomic per concern, no shared lock. *)
  stop : bool Atomic.t;
  live : int Atomic.t;
  spawned : int Atomic.t;
  completed : int Atomic.t;
  computing : int Atomic.t;
  online : int Atomic.t;
  next_tid : int Atomic.t;
  steals : int Atomic.t;
  steal_attempts : int Atomic.t;
  failure : (string * exn) option Atomic.t;  (* first failure wins, via CAS *)
  (* Registry of live tasks, for [live_thread_names]. *)
  tasks_mu : Mutex.t;
  tasks : (int, task) Hashtbl.t;
  (* External waiters ([run] on a system thread). *)
  drain_mu : Mutex.t;
  drain_cv : Condition.t;
  t0 : int;  (* monotonic ns at creation *)
}

exception Thread_failure of string * exn

(* ------------------------------------------------------------------ *)
(* Worker identity.                                                    *)
(* ------------------------------------------------------------------ *)

type sched_metrics = {
  sm_steals : Metrics.counter;
  sm_attempts : Metrics.counter;
  sm_depth : Metrics.gauge array;  (* one labeled gauge per pool deque *)
}

type worker = {
  wid : int;
  weng : t;
  wdeque : runnable Deque.t;
  wrng : Random.State.t;  (* randomized steal order *)
  mutable cur : task option;  (* fiber currently executing on this domain *)
  mutable wmx : (Metrics.t * sched_metrics) option;
  mutable last_sample : int;  (* engine ns of the last periodic metric sweep *)
}

let worker_key : worker option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let self_opt () =
  match Domain.DLS.get worker_key with Some w -> w.cur | None -> None

let in_fiber () = self_opt () <> None

let worker_id_opt () =
  match Domain.DLS.get worker_key with Some w -> Some w.wid | None -> None

(* Timeline transition for this worker's lane: one load when disabled. *)
let tl_enter eng wid st =
  match Timeline.get () with
  | Some tl when wid < Timeline.lanes tl ->
      Timeline.enter tl ~lane:wid ~now:(Calibrate.now_ns () - eng.t0) st
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Yield_fiber : unit Effect.t

let suspend f = Effect.perform (Suspend f)

let inject eng r =
  Mutex.lock eng.inj_mu;
  Queue.push r eng.inj_q;
  Atomic.incr eng.inj_len;
  Mutex.unlock eng.inj_mu

(* Enqueue a runnable: onto the calling worker's own deque when the caller
   is a pool domain of this engine, otherwise onto the injection queue. *)
let schedule eng r =
  match Domain.DLS.get worker_key with
  | Some w when w.weng == eng -> Deque.push w.wdeque r
  | _ -> inject eng r

let take_inject eng =
  if Atomic.get eng.inj_len = 0 then None
  else begin
    Mutex.lock eng.inj_mu;
    let r = Queue.take_opt eng.inj_q in
    (match r with Some _ -> Atomic.decr eng.inj_len | None -> ());
    Mutex.unlock eng.inj_mu;
    r
  end

let now eng = Calibrate.now_ns () - eng.t0
let time = now

let add_timer eng deadline resume =
  Mutex.lock eng.tim_mu;
  let rec ins = function
    | [] -> [ (deadline, resume) ]
    | ((d, _) as hd) :: tl when d <= deadline -> hd :: ins tl
    | l -> (deadline, resume) :: l
  in
  eng.timers <- ins eng.timers;
  Atomic.incr eng.tim_len;
  Mutex.unlock eng.tim_mu

(* Fire due timers; their resumes enqueue the sleeping fibers. *)
let poll_timers eng =
  if Atomic.get eng.tim_len = 0 then false
  else begin
    let t = now eng in
    Mutex.lock eng.tim_mu;
    let due, rest = List.partition (fun (d, _) -> d <= t) eng.timers in
    eng.timers <- rest;
    List.iter (fun _ -> Atomic.decr eng.tim_len) due;
    Mutex.unlock eng.tim_mu;
    List.iter (fun (_, resume) -> resume ()) due;
    due <> []
  end

let next_deadline eng =
  if Atomic.get eng.tim_len = 0 then None
  else begin
    Mutex.lock eng.tim_mu;
    let d = match eng.timers with [] -> None | (d, _) :: _ -> Some d in
    Mutex.unlock eng.tim_mu;
    d
  end

(* ------------------------------------------------------------------ *)
(* Task lifecycle.                                                     *)
(* ------------------------------------------------------------------ *)

let record_failure eng name e =
  ignore (Atomic.compare_and_set eng.failure None (Some (name, e)) : bool)

let wake_drain eng =
  Mutex.lock eng.drain_mu;
  Condition.broadcast eng.drain_cv;
  Mutex.unlock eng.drain_mu

let finish_task task outcome =
  let eng = task.eng in
  if Trace.enabled () then
    Trace.emit
      ~t:(Calibrate.now_ns () - eng.t0)
      (Event.Task_done { task = task.tid; busy_ns = task.busy_ns });
  (* Publish the completion clock BEFORE joiners can observe [finished]. *)
  if Hb.enabled () then Hb.on_task_done ~task:task.tid;
  Mutex.lock task.jmu;
  task.failed <- outcome;
  task.finished <- true;
  let joiners = task.joiners in
  task.joiners <- [];
  Condition.broadcast task.jcv;
  Mutex.unlock task.jmu;
  (match outcome with Some e -> record_failure eng task.tname e | None -> ());
  Mutex.lock eng.tasks_mu;
  Hashtbl.remove eng.tasks task.tid;
  Mutex.unlock eng.tasks_mu;
  Atomic.incr eng.completed;
  List.iter (fun resume -> resume ()) joiners;
  let was_last = Atomic.fetch_and_add eng.live (-1) = 1 in
  if was_last || outcome <> None then wake_drain eng

(* Run a fresh fiber under the scheduler's effect handler.  Deep handlers
   travel with the captured continuation, so [retc]/[exnc] fire on the
   fiber's final segment no matter which domain resumes it. *)
let run_fiber task body () =
  Effect.Deep.match_with body ()
    {
      Effect.Deep.retc = (fun () -> finish_task task None);
      exnc = (fun e -> finish_task task (Some e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend f ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  f (fun () ->
                      schedule task.eng
                        { rtask = task; exec = (fun () -> Effect.Deep.continue k ()) }))
          | Yield_fiber ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  (* FIFO through the injection queue so a yielding fiber
                     actually cedes its domain. *)
                  inject task.eng
                    { rtask = task; exec = (fun () -> Effect.Deep.continue k ()) })
          | _ -> None);
    }

(* ------------------------------------------------------------------ *)
(* The scheduler loop.                                                 *)
(* ------------------------------------------------------------------ *)

let sched_metrics eng w =
  let reg = Metrics.current () in
  match w.wmx with
  | Some (r, h) when r == reg -> h
  | _ ->
      let h =
        {
          sm_steals =
            Metrics.counter reg "parcae_steals_total"
              ~help:"Tasks migrated between domains by work stealing.";
          sm_attempts =
            Metrics.counter reg "parcae_steal_attempts_total"
              ~help:"Steal attempts, successful or not (failed ratio = 1 - steals/attempts).";
          sm_depth =
            Array.init eng.pool (fun i ->
                Metrics.gauge reg "parcae_deque_depth"
                  ~help:"Run-queue depth per pool deque, sampled periodically."
                  ~labels:[ ("domain", string_of_int i) ]);
        }
      in
      w.wmx <- Some (reg, h);
      h

let note_steal eng w ~victim ~stolen =
  Atomic.incr eng.steals;
  if Metrics.enabled () then Metrics.inc (sched_metrics eng w).sm_steals;
  if Trace.enabled () then
    Trace.emit
      ~t:(Calibrate.now_ns () - eng.t0)
      (Event.Steal_ev
         { task = stolen.rtask.tid; from_lane = victim; to_lane = w.wid })

(* Periodic sweep, worker 0 only (single writer keeps the delta-publish of
   the attempts counter race-free): mirror the steal-attempt atomic into
   the registry and sample every deque's depth, at a ~1ms cadence. *)
let sample_period_ns = 1_000_000

let maybe_sample eng w =
  if w.wid = 0 && Metrics.enabled () then begin
    let t = Calibrate.now_ns () - eng.t0 in
    if t - w.last_sample >= sample_period_ns then begin
      w.last_sample <- t;
      let h = sched_metrics eng w in
      Metrics.inc_by h.sm_attempts
        (Atomic.get eng.steal_attempts - Metrics.counter_value h.sm_attempts);
      Array.iteri
        (fun i g -> Metrics.set_gauge g (float_of_int (Deque.size eng.deques.(i))))
        h.sm_depth
    end
  end

(* One steal sweep: random starting victim, then a linear scan.  A
   contended victim is skipped rather than retried — the next sweep
   re-randomizes. *)
let try_steal eng w =
  let n = eng.pool in
  if n <= 1 then None
  else begin
    let start = Random.State.int w.wrng n in
    let rec go i =
      if i >= n then None
      else
        let v = (start + i) mod n in
        if v = w.wid then go (i + 1)
        else begin
          Atomic.incr eng.steal_attempts;
          match Deque.steal eng.deques.(v) with
          | Deque.Stolen r ->
              note_steal eng w ~victim:v ~stolen:r;
              Some r
          | Deque.Empty | Deque.Contended -> go (i + 1)
        end
    in
    go 0
  end

let find_work eng w =
  match Deque.pop w.wdeque with
  | Some r -> Some r
  | None -> (
      let fired = poll_timers eng in
      match take_inject eng with
      | Some r -> Some r
      | None -> (
          match try_steal eng w with
          | Some r -> Some r
          | None -> if fired then Deque.pop w.wdeque else None))

let spin_rounds = 64
let max_park_ns = 1_000_000 (* 1 ms: bounds wake-up latency when fully idle *)

let sleep_ns ns =
  if ns > 0 then
    try Unix.sleepf (float_of_int ns /. 1e9)
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let worker_loop eng wid () =
  let w =
    {
      wid;
      weng = eng;
      wdeque = eng.deques.(wid);
      wrng = Random.State.make [| 0x5eed; wid |];
      cur = None;
      wmx = None;
      last_sample = 0;
    }
  in
  Domain.DLS.set worker_key (Some w);
  let backoff = ref 0 in
  let rec loop () =
    maybe_sample eng w;
    match find_work eng w with
    | Some r ->
        backoff := 0;
        tl_enter eng wid Timeline.Run;
        w.cur <- Some r.rtask;
        (* [exec] only raises if the runtime itself is broken — fiber
           exceptions are routed to [exnc]; keep the domain alive and
           surface the error through [run]. *)
        (try r.exec () with e -> record_failure eng "scheduler" e);
        w.cur <- None;
        loop ()
    | None ->
        if Atomic.get eng.stop then ()
        else begin
          (* Exponential backoff to idle-park: spin a little for latency,
             then sleep in doubling slices capped at [max_park_ns] and at
             the next timer deadline. *)
          incr backoff;
          if !backoff <= spin_rounds then begin
            tl_enter eng wid Timeline.Steal_search;
            Domain.cpu_relax ()
          end
          else begin
            tl_enter eng wid Timeline.Park;
            let exp = min 10 (!backoff - spin_rounds) in
            let park = min max_park_ns (1_000 * (1 lsl exp)) in
            let park =
              match next_deadline eng with
              | Some d -> max 0 (min park (d - now eng))
              | None -> park
            in
            if park > 0 then sleep_ns park else Domain.cpu_relax ()
          end;
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Construction, spawning, draining.                                   *)
(* ------------------------------------------------------------------ *)

let create ?pool () =
  let pool =
    match pool with
    | Some n ->
        if n < 1 then invalid_arg "Parcae_native.Engine.create: pool must be >= 1";
        n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* Calibrate before any fiber exists so the first compute isn't skewed
     and pool domains only ever read the calibration. *)
  ignore (Calibrate.spins_per_ns () : float);
  let eng =
    {
      pool;
      deques = Array.init pool (fun _ -> Deque.create ());
      domains = [];
      inj_mu = Mutex.create ();
      inj_q = Queue.create ();
      inj_len = Atomic.make 0;
      tim_mu = Mutex.create ();
      timers = [];
      tim_len = Atomic.make 0;
      stop = Atomic.make false;
      live = Atomic.make 0;
      spawned = Atomic.make 0;
      completed = Atomic.make 0;
      computing = Atomic.make 0;
      online = Atomic.make pool;
      next_tid = Atomic.make 0;
      steals = Atomic.make 0;
      steal_attempts = Atomic.make 0;
      failure = Atomic.make None;
      tasks_mu = Mutex.create ();
      tasks = Hashtbl.create 32;
      drain_mu = Mutex.create ();
      drain_cv = Condition.create ();
      t0 = Calibrate.now_ns ();
    }
  in
  eng.domains <- List.init pool (fun i -> Domain.spawn (worker_loop eng i));
  eng

let pool_size eng = eng.pool

let spawn eng ~name body =
  if Atomic.get eng.stop then
    invalid_arg "Parcae_native.Engine.spawn: engine is shut down";
  let tid = Atomic.fetch_and_add eng.next_tid 1 in
  let task =
    {
      tid;
      tname = name;
      eng;
      busy_ns = 0;
      unyielded_ns = 0;
      finished = false;
      failed = None;
      jmu = Mutex.create ();
      jcv = Condition.create ();
      joiners = [];
    }
  in
  Atomic.incr eng.live;
  Atomic.incr eng.spawned;
  if Trace.enabled () then begin
    let parent = match self_opt () with Some p -> p.tid | None -> -1 in
    Trace.emit ~t:(now eng) (Event.Task_spawn { task = tid; parent; name })
  end;
  (* The spawn edge must be published before the task is scheduled, or the
     child could start with an empty clock and report phantom races. *)
  (if Hb.enabled () then
     match self_opt () with
     | Some p -> Hb.on_spawn ~parent:p.tid ~child:tid
     | None -> ());
  Mutex.lock eng.tasks_mu;
  Hashtbl.replace eng.tasks tid task;
  Mutex.unlock eng.tasks_mu;
  schedule eng { rtask = task; exec = run_fiber task body };
  task

let run ?until eng =
  let completed0 = Atomic.get eng.completed in
  (match until with
  | None ->
      Mutex.lock eng.drain_mu;
      while Atomic.get eng.live > 0 && Atomic.get eng.failure = None do
        Condition.wait eng.drain_cv eng.drain_mu
      done;
      Mutex.unlock eng.drain_mu
  | Some deadline ->
      (* With a deadline we poll at a few-ms grain, far below any horizon
         callers use. *)
      while
        Atomic.get eng.live > 0 && Atomic.get eng.failure = None && now eng < deadline
      do
        sleep_ns 2_000_000
      done);
  let n = Atomic.get eng.completed - completed0 in
  match Atomic.get eng.failure with
  | Some (name, e) -> raise (Thread_failure (name, e))
  | None -> n

let shutdown eng =
  if not (Atomic.exchange eng.stop true) then begin
    (* Workers drain their runnable work and exit; fibers blocked on a
       condition or timer are abandoned (their continuations are simply
       dropped — no OS thread is stuck, so the domains always join). *)
    List.iter Domain.join eng.domains;
    eng.domains <- []
  end

(* ------------------------------------------------------------------ *)
(* Task-context operations.                                            *)
(* ------------------------------------------------------------------ *)

(* Fibers are cooperative: a task that computes forever without blocking
   would monopolize its domain and starve runnable fibers (the controller,
   watchers) that the old systhread engine relied on the OS to preempt.
   [compute] is the natural preemption point — after [yield_quantum_ns] of
   unyielded spin the fiber reschedules itself through the FIFO injection
   queue, bounding any runnable fiber's wait at roughly one quantum per
   busy domain. *)
let yield_quantum_ns = 200_000

let compute task n =
  if n > 0 then begin
    let eng = task.eng in
    Atomic.incr eng.computing;
    let dt = Calibrate.spin_ns n in
    Atomic.decr eng.computing;
    task.busy_ns <- task.busy_ns + dt;
    task.unyielded_ns <- task.unyielded_ns + dt;
    if task.unyielded_ns >= yield_quantum_ns && in_fiber () then begin
      task.unyielded_ns <- 0;
      Effect.perform Yield_fiber
    end
  end

let yield _eng = if in_fiber () then Effect.perform Yield_fiber else Domain.cpu_relax ()

let sleep eng ns =
  if ns > 0 then
    if in_fiber () then suspend (fun resume -> add_timer eng (now eng + ns) resume)
    else sleep_ns ns

let sleep_until eng t = sleep eng (t - now eng)

let join task =
  if in_fiber () then begin
    Mutex.lock task.jmu;
    let fin = task.finished in
    Mutex.unlock task.jmu;
    if not fin then
      suspend (fun resume ->
          Mutex.lock task.jmu;
          if task.finished then begin
            Mutex.unlock task.jmu;
            resume ()
          end
          else begin
            task.joiners <- resume :: task.joiners;
            Mutex.unlock task.jmu
          end)
  end
  else begin
    Mutex.lock task.jmu;
    while not task.finished do
      Condition.wait task.jcv task.jmu
    done;
    Mutex.unlock task.jmu
  end

(* ------------------------------------------------------------------ *)
(* Monitors: the sharded replacement for the big lock.                 *)
(* ------------------------------------------------------------------ *)

module Monitor = struct
  type m = { mu : Mutex.t; mutable owner : int (* Thread.id, -1 if free *) }

  type c = {
    mon : m;
    cv : Condition.t;  (* system-thread waiters *)
    fibers : (unit -> unit) Queue.t;  (* fiber waiters, FIFO *)
  }

  let create () = { mu = Mutex.create (); owner = -1 }

  (* Ownership is only ever compared against the reader's own thread id; a
     thread observes its own writes in order, so the unsynchronized read
     cannot produce a false positive.  A fiber never suspends while
     holding a monitor (the only suspension point, [wait], releases it),
     so thread identity is a faithful proxy for fiber identity here. *)
  let me () = Thread.id (Thread.self ())
  let held m = m.owner = me ()

  let lock m =
    Mutex.lock m.mu;
    m.owner <- me ()

  let unlock m =
    m.owner <- -1;
    Mutex.unlock m.mu

  let locked m f =
    if held m then f ()
    else begin
      lock m;
      match f () with
      | v ->
          unlock m;
          v
      | exception e ->
          unlock m;
          raise e
    end

  let cond m = { mon = m; cv = Condition.create (); fibers = Queue.create () }
  let monitor_of c = c.mon

  (* Atomically release the monitor and wait; reacquire before returning.
     Mesa semantics — the caller re-checks its predicate in a loop. *)
  let wait c =
    let m = c.mon in
    if not (held m) then invalid_arg "Monitor.wait: monitor not held";
    if in_fiber () then begin
      suspend (fun resume ->
          (* Runs after the continuation is captured, on this thread:
             register, then release the monitor.  A signaler needs the
             monitor to pop us, so the wakeup cannot be lost. *)
          Queue.push resume c.fibers;
          m.owner <- -1;
          Mutex.unlock m.mu);
      lock m
    end
    else begin
      m.owner <- -1;
      Condition.wait c.cv m.mu;
      m.owner <- me ()
    end

  let signal c =
    locked c.mon (fun () ->
        match Queue.take_opt c.fibers with
        | Some resume -> resume ()
        | None -> Condition.signal c.cv)

  let broadcast c =
    locked c.mon (fun () ->
        while not (Queue.is_empty c.fibers) do
          (Queue.pop c.fibers) ()
        done;
        Condition.broadcast c.cv)
end

(* ------------------------------------------------------------------ *)
(* Introspection.                                                      *)
(* ------------------------------------------------------------------ *)

let task_engine task = task.eng
let task_name task = task.tname
let task_id task = task.tid
let task_busy_ns task = task.busy_ns
let busy_cores eng = Atomic.get eng.computing

let runnable_count eng =
  Array.fold_left (fun acc d -> acc + Deque.size d) (Atomic.get eng.inj_len) eng.deques

let online_cores eng = Atomic.get eng.online
let live_threads eng = Atomic.get eng.live
let spawned_threads eng = Atomic.get eng.spawned
let steal_count eng = Atomic.get eng.steals
let steal_attempt_count eng = Atomic.get eng.steal_attempts
let instant_power _ = 0.0
let energy_joules _ = 0.0

let set_online_cores eng n = Atomic.set eng.online (max 1 (min eng.pool n))

let live_thread_names eng =
  Mutex.lock eng.tasks_mu;
  let names = Hashtbl.fold (fun _ t acc -> t.tname :: acc) eng.tasks [] in
  Mutex.unlock eng.tasks_mu;
  List.sort compare names

let seconds_of_ns ns = float_of_int ns /. 1e9
