(** Program Dependence Graph construction (the paper's Section 4.1).

    Nodes are the loop's phis and body instructions (phis first, matching
    [Loop.nodes]); edges are exact register def-use dependencies, memory
    dependencies from the index analysis, control dependencies from
    [Break_if], and call-ordering dependencies (relaxed when annotated
    commutative).  Induction and reduction phi cycles are recognized and
    their carried edges marked relaxable. *)

open Parcae_ir
open Parcae_analysis

type reduction = {
  red_phi : Instr.reg;  (** the accumulator phi *)
  red_node : int;  (** node id of the phi *)
  red_combine : int;  (** node id of the combining binop *)
  red_op : Instr.binop;
  red_init : int;  (** initial accumulator value *)
}

type t = {
  loop : Loop.t;
  nodes : Loop.node array;
  nphis : int;
  deps : Dep.t list;
  inductions : Alias.induction_info list;
  reductions : reduction list;
  facts : Dataflow.summary;  (** register value facts used by the alias queries *)
}

val associative_commutative : Instr.binop -> bool

val detect_reductions : Loop.t -> Alias.induction_info list -> reduction list
(** Reduction phis: [acc = phi \[c, acc `op` x\]] with an
    associative-commutative [op] whose accumulator has no other reader. *)

val build : Loop.t -> t

val carried : t -> Dep.t list
(** All loop-carried dependencies. *)

val doany_inhibitors : t -> Dep.t list
(** Carried and not relaxable: the dependencies Nona reports to the
    programmer as parallelization inhibitors (Figure 3.2). *)

val node_count : t -> int
val successors : t -> int -> int list
val pp : Format.formatter -> t -> unit
