(** Array-index analysis: the pointer-analysis stand-in for the IR.
    Classifies access indices as affine in an induction variable, constant,
    or unknown, and decides how two accesses to the same array may
    conflict across iterations. *)

open Parcae_ir
open Parcae_analysis

type induction_info = {
  ind_phi : Instr.reg;  (** the induction variable (phi destination) *)
  ind_from : int;
  ind_step : int;  (** non-zero *)
  ind_carry : Instr.reg;  (** the register holding i + step *)
}

type index =
  | Affine of { ind : Instr.reg; scale : int; offset : int; fct : Dataflow.fact }
      (** [scale * ind + offset], with the dataflow fact of the value *)
  | Fixed of int
  | Unknown of Dataflow.fact
      (** unclassifiable chain, but the fact still enables disjointness *)

val inductions : Loop.t -> induction_info list
(** Recognize induction phis: [i = phi \[c, i +/- const\]]. *)

val classify_index : ?facts:Dataflow.summary -> Loop.t -> induction_info list -> Instr.operand -> index
(** Chase affine chains ([+/- const], [Mul]/[Shl] by constants,
    dataflow-proven constant registers) back to an induction variable or a
    constant.  [facts] defaults to analyzing [loop] on the spot. *)

type conflict =
  | No_conflict
  | Same_iteration  (** conflict only within one iteration *)
  | Cross_iteration of int
      (** conflict across iterations at this distance (in iterations) *)
  | May_conflict  (** conservatively: any iterations may conflict *)

val conflict : ?trip:int -> induction_info list -> index -> index -> conflict
(** Decide how two accesses to the same array may conflict.  [trip], when
    known, rules out cross-iteration distances no pair of iterations can
    realize. *)
