(* Dependence edges of the Program Dependence Graph (Section 4.1).

   Each dependency is data (register or memory) or control, and is either
   intra-iteration or loop-carried.  Loop-carried dependencies inhibit
   parallel execution unless they can be *relaxed*: induction variables are
   recomputable, reductions are privatizable (Section 7.4), and calls the
   programmer annotated commutative may execute in any order inside a
   critical section (Section 4.3.1). *)

type kind =
  | Reg_data
  | Mem_data
  | Control
  | Call_order  (* ordering between calls to the same opaque function *)

type relax =
  | Hard  (* a true ordering constraint *)
  | Induction  (* i = i + c: recomputable per iteration *)
  | Reduction  (* associative-commutative update: privatize and merge *)
  | Commutative  (* programmer-annotated commutative operations *)

type t = {
  src : int;  (* node id of the producer *)
  dst : int;  (* node id of the consumer *)
  kind : kind;
  carried : bool;  (* crosses iterations *)
  relax : relax;
}

let is_relaxable d = d.relax <> Hard

let kind_to_string = function
  | Reg_data -> "reg"
  | Mem_data -> "mem"
  | Control -> "ctl"
  | Call_order -> "call"

let relax_to_string = function
  | Hard -> ""
  | Induction -> " [ind]"
  | Reduction -> " [red]"
  | Commutative -> " [comm]"

let to_string d =
  Printf.sprintf "%d -> %d (%s%s)%s" d.src d.dst (kind_to_string d.kind)
    (if d.carried then ", carried" else "")
    (relax_to_string d.relax)
