(** Dependence edges of the Program Dependence Graph (the paper's
    Section 4.1).  Loop-carried dependencies inhibit parallel execution
    unless relaxable: induction variables are recomputable, reductions
    privatizable (Section 7.4), and annotated-commutative calls may
    execute in any order inside a critical section (Section 4.3.1). *)

type kind =
  | Reg_data
  | Mem_data
  | Control
  | Call_order  (** ordering between calls to the same opaque function *)

type relax =
  | Hard  (** a true ordering constraint *)
  | Induction  (** i = i + c: recomputable per iteration *)
  | Reduction  (** associative-commutative update: privatize and merge *)
  | Commutative  (** programmer-annotated commutative operations *)

type t = {
  src : int;  (** node id of the producer *)
  dst : int;  (** node id of the consumer *)
  kind : kind;
  carried : bool;  (** crosses iterations *)
  relax : relax;
}

val is_relaxable : t -> bool
val kind_to_string : kind -> string
val relax_to_string : relax -> string
val to_string : t -> string
