(* Array-index analysis: the pointer-analysis stand-in for the IR.

   An access index is classified as
   - [Affine {ind; scale; offset}]: scale * i + offset for a canonical
     induction variable i (recognized through +/- constant chains, Mul and
     Shl by constants, and dataflow-proven constant registers),
   - [Fixed c]: a compile-time constant (including registers the dataflow
     analysis proves constant), or
   - [Unknown f]: anything else, carrying the dataflow fact of the index
     value so range/congruence disjointness can still separate accesses.

   Two accesses to the same array with affine indices on the same induction
   variable and the same scale conflict across iterations only if their
   offsets differ by a multiple of scale * step; same-offset accesses
   conflict only within an iteration.  An affine access hits a fixed cell
   in at most one iteration, which is decided exactly; any remaining pair
   is separated by interval or congruence disjointness of the index facts,
   or conservatively assumed to conflict. *)

open Parcae_ir
open Parcae_analysis

type induction_info = {
  ind_phi : Instr.reg;  (* phi destination: the induction variable *)
  ind_from : int;
  ind_step : int;  (* non-zero *)
  ind_carry : Instr.reg;  (* the register holding i + step *)
}

type index =
  | Affine of { ind : Instr.reg; scale : int; offset : int; fct : Dataflow.fact }
  | Fixed of int
  | Unknown of Dataflow.fact

(* Recognize induction phis: i = phi [c, j] where j = i +/- const. *)
let inductions (loop : Loop.t) =
  List.filter_map
    (fun (p : Instr.phi) ->
      match p.Instr.init with
      | Instr.Reg _ -> None
      | Instr.Const from -> (
          let def =
            List.find_opt
              (fun i -> match Instr.defs i with Some d -> d = p.Instr.carry | None -> false)
              loop.Loop.body
          in
          match def with
          | Some (Instr.Binop { op = Instr.Add; a = Instr.Reg r; b = Instr.Const c; _ })
            when r = p.Instr.pdst ->
              Some { ind_phi = p.Instr.pdst; ind_from = from; ind_step = c; ind_carry = p.Instr.carry }
          | Some (Instr.Binop { op = Instr.Add; a = Instr.Const c; b = Instr.Reg r; _ })
            when r = p.Instr.pdst ->
              Some { ind_phi = p.Instr.pdst; ind_from = from; ind_step = c; ind_carry = p.Instr.carry }
          | Some (Instr.Binop { op = Instr.Sub; a = Instr.Reg r; b = Instr.Const c; _ })
            when r = p.Instr.pdst ->
              Some
                { ind_phi = p.Instr.pdst; ind_from = from; ind_step = -c; ind_carry = p.Instr.carry }
          | _ -> None))
    loop.Loop.phis
  |> List.filter (fun i -> i.ind_step <> 0)

let max_scale = 1 lsl 20

(* Classify an index operand by chasing affine chains (+/- constants, Mul
   and Shl by constants, constant-valued registers via dataflow) back to
   an induction variable or a constant. *)
let classify_index ?facts (loop : Loop.t) (inds : induction_info list) (idx : Instr.operand) =
  let facts = match facts with Some s -> s | None -> Dataflow.analyze loop in
  let fct = Dataflow.operand_fact facts idx in
  let def_of r =
    List.find_opt (fun i -> match Instr.defs i with Some d -> d = r | None -> false) loop.Loop.body
  in
  let const_reg r = Dataflow.const_of (Dataflow.reg_fact facts r) in
  (* At register [r] the index is scale * r + offset. *)
  let rec chase r scale offset depth =
    if depth > 16 || abs scale > max_scale || abs offset > max_scale then Unknown fct
    else
      match const_reg r with
      | Some c -> Fixed ((scale * c) + offset)
      | None ->
          if List.exists (fun ii -> ii.ind_phi = r) inds then Affine { ind = r; scale; offset; fct }
          else begin
            (* The carry register (i + step) is the induction shifted by step. *)
            match List.find_opt (fun ii -> ii.ind_carry = r) inds with
            | Some ii -> Affine { ind = ii.ind_phi; scale; offset = offset + (scale * ii.ind_step); fct }
            | None -> (
                (* Fold constant-valued register operands into the chain so
                   mixed reg/reg arithmetic still classifies. *)
                let as_const = function
                  | Instr.Const c -> Some c
                  | Instr.Reg r' -> const_reg r'
                in
                match def_of r with
                | Some (Instr.Binop { op = Instr.Add; a; b; _ }) -> (
                    match ((a, as_const b), (b, as_const a)) with
                    | (Instr.Reg r', Some c), _ | _, (Instr.Reg r', Some c) ->
                        chase r' scale (offset + (scale * c)) (depth + 1)
                    | _ -> Unknown fct)
                | Some (Instr.Binop { op = Instr.Sub; a = Instr.Reg r'; b; _ }) -> (
                    match as_const b with
                    | Some c -> chase r' scale (offset - (scale * c)) (depth + 1)
                    | None -> Unknown fct)
                | Some (Instr.Binop { op = Instr.Sub; a; b = Instr.Reg r'; _ }) -> (
                    (* c - r': the scale flips sign *)
                    match as_const a with
                    | Some c -> chase r' (-scale) (offset + (scale * c)) (depth + 1)
                    | None -> Unknown fct)
                | Some (Instr.Binop { op = Instr.Mul; a; b; _ }) -> (
                    match ((a, as_const b), (b, as_const a)) with
                    | (_, Some 0), _ | _, (_, Some 0) -> Fixed offset
                    | (Instr.Reg r', Some c), _ | _, (Instr.Reg r', Some c) ->
                        chase r' (scale * c) offset (depth + 1)
                    | _ -> Unknown fct)
                | Some (Instr.Binop { op = Instr.Shl; a = Instr.Reg r'; b; _ }) -> (
                    match as_const b with
                    | Some c when c land 62 <= 20 -> chase r' (scale * (1 lsl (c land 62))) offset (depth + 1)
                    | _ -> Unknown fct)
                | _ -> Unknown fct)
          end
  in
  match idx with Instr.Const c -> Fixed c | Instr.Reg r -> chase r 1 0 0

(* How two accesses to the same array may conflict. *)
type conflict =
  | No_conflict
  | Same_iteration  (* conflict only within one iteration *)
  | Cross_iteration of int
      (* the access with the *larger* offset happens in an earlier
         iteration by this many iterations (positive distance) *)
  | May_conflict  (* conservatively: any iterations may conflict *)

let index_fact = function
  | Fixed c -> Dataflow.const c
  | Affine { fct; _ } -> fct
  | Unknown fct -> fct

let conflict ?trip inds a b =
  let find_ind i = List.find_opt (fun ii -> ii.ind_phi = i) inds in
  (* a cross-iteration distance d needs two iterations d apart *)
  let feasible d = match trip with Some n -> d < n | None -> true in
  match (a, b) with
  | Fixed x, Fixed y ->
      (* the same fixed cell is touched on *every* iteration, so the
         conflict is both intra- and cross-iteration at any distance *)
      if x = y then May_conflict else No_conflict
  | Affine { ind = i1; scale = m1; offset = o1; _ }, Affine { ind = i2; scale = m2; offset = o2; _ }
    when i1 = i2 && m1 = m2 -> (
      match find_ind i1 with
      | None -> May_conflict
      | Some ii ->
          let stride = m1 * ii.ind_step in
          if o1 = o2 then Same_iteration
          else if stride = 0 || (o1 - o2) mod stride <> 0 then No_conflict
          else
            let d = abs ((o1 - o2) / stride) in
            if feasible d then Cross_iteration d else No_conflict)
  | (Affine { ind; scale; offset; _ }, Fixed c | Fixed c, Affine { ind; scale; offset; _ }) -> (
      (* scale * i + offset = c has at most one solution over the
         induction's value sequence; if that iteration is never reached
         the accesses are disjoint, otherwise the hit races the fixed
         access of every other iteration. *)
      match find_ind ind with
      | None -> May_conflict
      | Some ii ->
          let num = c - offset in
          if scale = 0 || num mod scale <> 0 then No_conflict
          else
            let v = num / scale in
            let dv = v - ii.ind_from in
            if ii.ind_step = 0 || dv mod ii.ind_step <> 0 then No_conflict
            else
              let k = dv / ii.ind_step in
              if k < 0 then No_conflict
              else if match trip with Some n -> k >= n | None -> false then No_conflict
              else May_conflict)
  | _ ->
      (* different inductions, different scales, or unknown chains: fall
         back to interval/congruence disjointness of the index values *)
      if Dataflow.disjoint (index_fact a) (index_fact b) then No_conflict else May_conflict
