(* Program Dependence Graph construction (Section 4.1).

   Nodes are the loop's phis and body instructions (numbered phis first,
   matching [Loop.nodes]); edges are register data dependencies (computed
   exactly from def-use chains), memory data dependencies (from the index
   analysis in [Alias]), control dependencies (from [Break_if]), and call
   ordering dependencies (relaxed when the programmer marked the calls
   commutative).  Induction and reduction phi cycles are recognized and
   their carried edges marked relaxable. *)

open Parcae_ir
open Parcae_analysis

type reduction = {
  red_phi : Instr.reg;  (* the accumulator phi *)
  red_node : int;  (* node id of the phi *)
  red_combine : int;  (* node id of the combining binop *)
  red_op : Instr.binop;
  red_init : int;  (* initial accumulator value *)
}

type t = {
  loop : Loop.t;
  nodes : Loop.node array;
  nphis : int;
  deps : Dep.t list;
  inductions : Alias.induction_info list;
  reductions : reduction list;
  facts : Dataflow.summary;  (* register value facts used by the alias queries *)
}

let associative_commutative = function
  | Instr.Add | Instr.Mul | Instr.Min | Instr.Max | Instr.Xor | Instr.And | Instr.Or -> true
  | _ -> false

(* Detect reduction phis: acc = phi [c, acc `op` x] where op is
   associative-commutative and acc's only consumer is the combining op
   (so no instruction observes intermediate accumulator values). *)
let detect_reductions (loop : Loop.t) (inds : Alias.induction_info list) =
  let nphis = List.length loop.Loop.phis in
  let body = Array.of_list loop.Loop.body in
  loop.Loop.phis
  |> List.mapi (fun pi p -> (pi, p))
  |> List.filter_map (fun (pi, (p : Instr.phi)) ->
         if List.exists (fun ii -> ii.Alias.ind_phi = p.Instr.pdst) inds then None
         else begin
           let init =
             match p.Instr.init with Instr.Const c -> Some c | Instr.Reg _ -> None
           in
           let combine_idx =
             let found = ref None in
             Array.iteri
               (fun bi instr ->
                 match Instr.defs instr with
                 | Some d when d = p.Instr.carry -> found := Some bi
                 | _ -> ())
               body;
             !found
           in
           match (init, combine_idx) with
           | Some red_init, Some bi -> (
               match body.(bi) with
               | Instr.Binop { op; a; b; _ }
                 when associative_commutative op
                      && (a = Instr.Reg p.Instr.pdst || b = Instr.Reg p.Instr.pdst) ->
                   (* acc must not be read anywhere else. *)
                   let other_uses =
                     Array.exists
                       (fun instr ->
                         instr != body.(bi) && List.mem p.Instr.pdst (Instr.uses instr))
                       body
                   in
                   if other_uses then None
                   else
                     Some
                       {
                         red_phi = p.Instr.pdst;
                         red_node = pi;
                         red_combine = nphis + bi;
                         red_op = op;
                         red_init;
                       }
               | _ -> None)
           | _ -> None
         end)

let build (loop : Loop.t) =
  Loop.validate loop;
  let nodes = Loop.nodes loop in
  let nphis = List.length loop.Loop.phis in
  let body = Array.of_list loop.Loop.body in
  let inds = Alias.inductions loop in
  let reds = detect_reductions loop inds in
  let facts = Dataflow.analyze loop in
  let deps = ref [] in
  let add src dst kind carried relax =
    if src <> dst || carried then
      deps := { Dep.src; dst; kind; carried; relax } :: !deps
  in
  (* Map register -> defining node id. *)
  let def_node = Hashtbl.create 32 in
  Array.iteri
    (fun id n -> match Loop.node_defs n with Some r -> Hashtbl.replace def_node r id | None -> ())
    nodes;
  let is_induction_phi r = List.exists (fun ii -> ii.Alias.ind_phi = r) inds in
  let reduction_of_phi r = List.find_opt (fun red -> red.red_phi = r) reds in

  (* 1. Intra-iteration register dependencies (def-use). *)
  Array.iteri
    (fun id n ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt def_node r with
          | Some d -> add d id Dep.Reg_data false Dep.Hard
          | None -> ())
        (Loop.node_uses n))
    nodes;

  (* 2. Loop-carried register dependencies through phis, classified. *)
  List.iteri
    (fun pi (p : Instr.phi) ->
      match Hashtbl.find_opt def_node p.Instr.carry with
      | None -> ()
      | Some carry_def ->
          let relax =
            if is_induction_phi p.Instr.pdst then Dep.Induction
            else if reduction_of_phi p.Instr.pdst <> None then Dep.Reduction
            else Dep.Hard
          in
          add carry_def pi Dep.Reg_data true relax)
    loop.Loop.phis;

  (* 3. Memory dependencies. *)
  let accesses =
    Array.to_list body
    |> List.mapi (fun bi instr -> (nphis + bi, instr))
    |> List.filter_map (fun (id, instr) ->
           match instr with
           | Instr.Load { arr; idx; _ } -> Some (id, arr, idx, false)
           | Instr.Store { arr; idx; _ } -> Some (id, arr, idx, true)
           | _ -> None)
  in
  let idx_class = Alias.classify_index ~facts loop inds in
  let trip = match loop.Loop.trip with Loop.Count n -> Some n | Loop.While -> None in
  let step_of ind =
    match List.find_opt (fun ii -> ii.Alias.ind_phi = ind) inds with
    | Some ii -> ii.Alias.ind_step
    | None -> 1
  in
  List.iter
    (fun (id1, arr1, idx1, st1) ->
      List.iter
        (fun (id2, arr2, idx2, st2) ->
          if arr1 = arr2 && (st1 || st2) && id1 <= id2 then begin
            let c1 = idx_class idx1 and c2 = idx_class idx2 in
            match Alias.conflict ?trip inds c1 c2 with
            | Alias.No_conflict -> ()
            | Alias.Same_iteration -> if id1 < id2 then add id1 id2 Dep.Mem_data false Dep.Hard
            | Alias.Cross_iteration _ -> (
                (* Direction: the access whose offset maps an element to the
                   earlier iteration is the source of the carried dep. *)
                match (c1, c2) with
                | Alias.Affine { ind; scale; offset = o1; _ }, Alias.Affine { offset = o2; _ } ->
                    (* iteration touching element e: (e - o) / (scale *
                       step); larger offset means earlier iteration when
                       the per-iteration advance is positive. *)
                    let advance = scale * step_of ind in
                    let first_is_1 = (o1 - o2) * (if advance > 0 then 1 else -1) > 0 in
                    if first_is_1 then add id1 id2 Dep.Mem_data true Dep.Hard
                    else add id2 id1 Dep.Mem_data true Dep.Hard
                | _ ->
                    add id1 id2 Dep.Mem_data true Dep.Hard;
                    add id2 id1 Dep.Mem_data true Dep.Hard)
            | Alias.May_conflict ->
                if id1 < id2 then add id1 id2 Dep.Mem_data false Dep.Hard;
                add id1 id2 Dep.Mem_data true Dep.Hard;
                add id2 id1 Dep.Mem_data true Dep.Hard
          end)
        accesses)
    accesses;

  (* 4. Control dependencies from Break_if: later instructions in the same
     iteration, and everything in subsequent iterations. *)
  Array.iteri
    (fun bi instr ->
      match instr with
      | Instr.Break_if _ ->
          let bid = nphis + bi in
          Array.iteri
            (fun id _ ->
              if id > bid then add bid id Dep.Control false Dep.Hard;
              add bid id Dep.Control true Dep.Hard)
            nodes
      | _ -> ())
    body;

  (* 5. Call ordering dependencies per target function. *)
  let calls =
    Array.to_list body
    |> List.mapi (fun bi instr -> (nphis + bi, instr))
    |> List.filter_map (fun (id, instr) ->
           match instr with
           | Instr.Call { fn; commutative; _ } -> Some (id, fn, commutative)
           | _ -> None)
  in
  List.iter
    (fun (id1, fn1, comm1) ->
      List.iter
        (fun (id2, fn2, comm2) ->
          if fn1 = fn2 && id1 <= id2 then begin
            let relax = if comm1 && comm2 then Dep.Commutative else Dep.Hard in
            if id1 < id2 then add id1 id2 Dep.Call_order false relax;
            add id1 id2 Dep.Call_order true relax;
            add id2 id1 Dep.Call_order true relax
          end)
        calls)
    calls;

  { loop; nodes; nphis; deps = !deps; inductions = inds; reductions = reds; facts }

(* All carried dependencies. *)
let carried t = List.filter (fun d -> d.Dep.carried) t.deps

(* The dependencies that inhibit DOANY: carried and not relaxable
   (Section 4.3.1).  Nona reports these to the programmer. *)
let doany_inhibitors t = List.filter (fun d -> d.Dep.carried && not (Dep.is_relaxable d)) t.deps

let node_count t = Array.length t.nodes

(* Successors of node [id] considering every dependence edge. *)
let successors t id =
  List.filter_map (fun d -> if d.Dep.src = id then Some d.Dep.dst else None) t.deps

let pp fmt t =
  Format.fprintf fmt "PDG of %s (%d nodes):@." t.loop.Loop.name (Array.length t.nodes);
  Array.iteri (fun i n -> Format.fprintf fmt "  [%d] %s@." i (Loop.node_to_string n)) t.nodes;
  List.iter (fun d -> Format.fprintf fmt "  %s@." (Dep.to_string d)) (List.rev t.deps)
