(* Object-pool invariants and the batched stage protocol under
   reconfiguration (DESIGN.md section 14).

   The pool side checks the striped freelist against a reference model:
   acquire must be LIFO on the local stripe, steal from sibling stripes
   before falling back to the allocator, never alias two objects that are
   simultaneously held, and never retain an object lost to a failed task.
   The pipeline side hammers a drain_stage (batched recv/send) pipeline
   with repeated DoP changes on both backends: a claimed batch must not
   straddle the reconfiguration barrier — claimed-but-unprocessed items
   are given back and survive the DoP change, so every item is consumed
   exactly once. *)

open Parcae_sim
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
open Parcae_core
open Parcae_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- freelist model (qcheck) ---- *)

(* Single stripe, so the model is exact: the free list is a bounded LIFO
   stack.  Each op either acquires (true) or releases the most recently
   acquired object (false).  Run outside any engine, every call lands on
   stripe 0. *)
let prop_pool_model =
  QCheck.Test.make ~name:"pool matches bounded-LIFO freelist model" ~count:200
    QCheck.(pair (int_range 1 8) (list bool))
    (fun (cap, ops) ->
      let next = ref 0 in
      let make () =
        incr next;
        ref !next
      in
      let p = Pool.create ~stripes:1 ~capacity:cap ~name:"model" ~dummy:(ref (-1)) make in
      let model_free = ref [] and held = ref [] in
      let ok = ref true in
      List.iter
        (fun acquire ->
          if acquire then begin
            let h0 = Pool.hits p and m0 = Pool.misses p in
            let v = Pool.acquire p in
            (match !model_free with
            | top :: rest ->
                (* Hit: must return exactly the most recently retained
                   object, and count a hit. *)
                if v != top then ok := false;
                if Pool.hits p <> h0 + 1 then ok := false;
                model_free := rest
            | [] ->
                (* Miss: a fresh object, counted as such. *)
                if Pool.misses p <> m0 + 1 then ok := false);
            (* No aliasing among simultaneously-held objects. *)
            if List.memq v !held then ok := false;
            held := v :: !held
          end
          else
            match !held with
            | [] -> ()
            | v :: rest ->
                held := rest;
                Pool.release p v;
                (* Beyond capacity the pool drops the object to the GC. *)
                if List.length !model_free < cap then model_free := v :: !model_free)
        ops;
      !ok && Pool.free_count p = List.length !model_free)

(* ---- cross-stripe stealing ---- *)

let test_pool_cross_stripe_steal () =
  let next = ref 0 in
  let p =
    Pool.create ~stripes:4 ~capacity:16 ~name:"steal" ~dummy:(ref (-1)) (fun () ->
        incr next;
        ref !next)
  in
  (* Retain objects on stripe 0 (no engine running: plain context). *)
  let objs = List.init 6 (fun _ -> Pool.acquire p) in
  List.iter (Pool.release p) objs;
  let free0 = Pool.free_count p in
  check_int "freelist warmed" 6 free0;
  (* A simulated thread acquires from whichever core (= stripe) it occupies;
     whether or not that is stripe 0, every acquire must be served from the
     freelist — the producer and consumer lanes of a pipeline never match,
     so a pool that cannot steal would miss forever. *)
  let eng = Engine.create (Machine.test_machine ~cores:4 ()) in
  let h0 = Pool.hits p in
  ignore
    (Engine.spawn eng ~name:"consumer" (fun () ->
         Engine.compute 1_000;
         for _ = 1 to 6 do
           ignore (Pool.acquire p : int ref)
         done));
  ignore (Engine.run eng);
  Engine.shutdown eng;
  check_int "all acquires served from the freelist" (h0 + 6) (Pool.hits p);
  check_int "freelist drained" 0 (Pool.free_count p)

(* ---- no leak through failed tasks ---- *)

let test_pool_no_leak_on_task_failure () =
  let next = ref 0 in
  let p =
    Pool.create ~stripes:2 ~capacity:16 ~name:"crash" ~dummy:(ref (-1)) (fun () ->
        incr next;
        ref !next)
  in
  let objs = List.init 4 (fun _ -> Pool.acquire p) in
  List.iter (Pool.release p) objs;
  let free0 = Pool.free_count p in
  let eng = Engine.create (Machine.test_machine ~cores:4 ()) in
  ignore
    (Engine.spawn eng ~name:"crasher" (fun () ->
         let _v : int ref = Pool.acquire p in
         Engine.compute 100;
         failwith "boom"));
  (try ignore (Engine.run eng) with _ -> ());
  Engine.shutdown eng;
  (* The object died with the task: the pool holds no reference to objects
     in flight, so it neither leaks nor resurrects it. *)
  check_int "exactly the acquired object left the pool" (free0 - 1) (Pool.free_count p);
  check_bool "pool still serves after the failure" true (!(Pool.acquire p) > 0)

(* ---- batched drain under reconfiguration ---- *)

(* produce | transform (drain_stage, batched claims) | consume
   (drain_stage): the value list at the tail is the exactly-once
   witness. *)
let make_batched_pipeline ?(work = 2_000) eng n =
  let q1 = Chan.create ~capacity:8 eng "bq1" and q2 = Chan.create ~capacity:8 eng "bq2" in
  let produced = ref 0 and consumed = ref [] in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= n then Task_status.Complete
        else begin
          Engine.compute (work / 4);
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.drain_stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~next:q2
      ~forward:(Pipeline.forward_to q2)
      (fun ctx _v ->
        ctx.Task.hook_begin ();
        Engine.compute work;
        ctx.Task.hook_end ();
        Task_status.Iterating)
  in
  let consume =
    Pipeline.drain_stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx v ->
        consumed := v :: !consumed;
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"batched"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  (pd, on_reset, consumed)

let config dop = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ]

let check_exactly_once ~n consumed =
  check_int "all consumed" n (List.length consumed);
  Alcotest.(check (list int))
    "each item exactly once" (List.init n Fun.id)
    (List.sort compare consumed)

(* Reconfigure every 20 us across DoPs 1-6 while batches are in flight: a
   claim interrupted by the pause barrier must give its unprocessed tail
   back to the input, so nothing is lost or duplicated across the DoP
   change. *)
let test_batched_drain_reconfigure_sim () =
  let machine =
    { (Machine.test_machine ~cores:8 ()) with Machine.ctx_switch = 0; chan_op = 5 }
  in
  let eng = Engine.create machine in
  let n = 400 in
  let pd, on_reset, consumed = make_batched_pipeline eng n in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let r = Executor.launch ~name:"b" eng [ pd ] ~on_reset (config 1) in
        let dop = ref 1 in
        while not (Region.is_done r) do
          Engine.sleep 20_000;
          dop := (!dop mod 6) + 1;
          Executor.reconfigure r (config !dop)
        done)
  in
  ignore (Engine.run eng);
  check_exactly_once ~n !consumed

(* The same protocol on the native backend: real domains draining real
   batches through a pause barrier. *)
let test_batched_drain_reconfigure_native () =
  let eng = Engine.create_native ~pool:3 () in
  let n = 120 in
  let pd, on_reset, consumed = make_batched_pipeline ~work:200_000 eng n in
  let region = Executor.launch ~budget:3 ~name:"b" eng [ pd ] ~on_reset (config 1) in
  ignore
    (Engine.spawn eng ~name:"driver" (fun () ->
         let dop = ref 1 in
         for _ = 1 to 4 do
           Engine.sleep 3_000_000;
           if not (Region.is_done region) then begin
             dop := (!dop mod 3) + 1;
             Executor.reconfigure region (config !dop)
           end
         done));
  ignore (Engine.run ~until:60_000_000_000 eng);
  Engine.shutdown eng;
  check_bool "region finished" true (Region.is_done region);
  check_exactly_once ~n !consumed

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pool_model;
    Alcotest.test_case "pool: cross-stripe steal" `Quick test_pool_cross_stripe_steal;
    Alcotest.test_case "pool: no leak on task failure" `Quick test_pool_no_leak_on_task_failure;
    Alcotest.test_case "batched drain: reconfigure hammer (sim)" `Quick
      test_batched_drain_reconfigure_sim;
    Alcotest.test_case "batched drain: reconfigure hammer (native)" `Slow
      test_batched_drain_reconfigure_native;
  ]
