(* Test runner aggregating all suites. *)
let () =
  Alcotest.run "parcae"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("core", Test_core.suite);
      ("runtime", Test_runtime.suite);
      ("workloads", Test_workloads.suite);
      ("nona", Test_nona.suite);
      ("controller", Test_controller.suite);
      ("properties", Test_properties.suite);
      ("mechanisms", Test_mechanisms.suite);
      ("doacross", Test_doacross.suite);
      ("resize", Test_resize.suite);
      ("failures", Test_failures.suite);
      ("parser", Test_parser.suite);
      ("analysis", Test_analysis.suite);
      ("trace", Test_trace.suite);
      ("trace-oracle", Test_trace_oracle.suite);
      ("metrics", Test_metrics.suite);
      ("flight", Test_flight.suite);
      ("sched", Test_sched.suite);
      ("native", Test_native.suite);
      ("pool", Test_pool.suite);
      ("timeline", Test_timeline.suite);
      ("sanitize", Test_sanitize.suite);
      ("span", Test_span.suite);
    ]
